// Package repro is a from-scratch Go reproduction of "MCDB-R: Risk
// Analysis in the Database" (Arumugam, Jampani, Perez, Xu, Jermaine, Haas;
// PVLDB 3(1), 2010).
//
// The public API lives in package repro/mcdbr; see README.md for a
// quickstart, DESIGN.md for the system inventory, and EXPERIMENTS.md for
// the paper-versus-measured record. The root-level bench_test.go
// regenerates every table and figure of the paper's evaluation via the
// repro/internal/experiments package.
package repro
