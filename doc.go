// Package repro is a from-scratch Go reproduction of "MCDB-R: Risk
// Analysis in the Database" (Arumugam, Jampani, Perez, Xu, Jermaine, Haas;
// PVLDB 3(1), 2010).
//
// The public API lives in package repro/mcdbr; see README.md for a
// quickstart, DESIGN.md for the system inventory, and EXPERIMENTS.md for
// the paper-versus-measured record. The root-level bench_test.go
// regenerates every table and figure of the paper's evaluation via the
// repro/internal/experiments package.
//
// # Parallel execution
//
// The engine executes Monte Carlo work replicate-sharded across worker
// goroutines (mcdbr.WithParallelism; the -workers flag of cmd/mcdbr and
// cmd/mcdbr-bench). The design rests on the seed-substream sharding
// contract: MCDB-R represents random tables by TS-seeds, each TS-seed owns
// a counter-based pseudorandom stream (repro/internal/prng), and element i
// of a stream is a pure function of the SplitMix64-derived (seed, i) pair
// — never of the order elements are generated in or of the window they are
// materialized into. Replicate i of a query therefore depends only on
// stream positions i, so the N replicates can be split into contiguous
// per-worker windows; each worker re-runs the plan in a private
// exec.Workspace over the shared catalog (allocating the same seeds with
// the same streams, since seed allocation is a pure function of the
// deterministic pipeline), materializes only its window, and evaluates
// only its replicates. Merging shard outputs in replicate order yields
// results bit-for-bit identical to sequential execution for every worker
// count; tail sampling likewise recomputes its per-version aggregate
// states on a parallel fast path with identical results.
package repro
