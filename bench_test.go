package repro_test

// Benchmarks regenerating the paper's evaluation artifacts (one or more
// per table/figure; see DESIGN.md §2 and EXPERIMENTS.md). The benchmarks
// run the experiments at a reduced scale so `go test -bench=.` completes
// in minutes; use cmd/mcdbr-bench for paper-parameter runs and the full
// printed tables.
//
// Experiment map:
//
//	E1 (App. D timing)   BenchmarkE1_TailSampling, BenchmarkE1_NaiveMCDB
//	E2 (Figure 5)        BenchmarkE2_Fig5Accuracy
//	E3 (§1 motivation)   BenchmarkE3_NaiveTailHitRate
//	E4 (App. C params)   BenchmarkE4_ParamSelection
//	E5 (App. B regime)   BenchmarkE5_HeavyTailRejections
//	Ablations            BenchmarkAblation_*
import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/expr"
	"repro/internal/gibbs"
	"repro/internal/prng"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/tail"
	"repro/internal/types"
	"repro/internal/vg"
	"repro/internal/workload"
	"repro/mcdbr"
)

const benchScaleDiv = 1000 // 100 orders, 1000 lineitems

// BenchmarkE1_TailSampling measures one full MCDB-R tail-sampling run
// (m=5, N=500, l=100, p≈0.001) on the Appendix D timing workload.
func BenchmarkE1_TailSampling(b *testing.B) {
	b.ReportAllocs()
	p := math.Pow(0.25, 5)
	for i := 0; i < b.N; i++ {
		e, err := experiments.TPCHTimingEngine(benchScaleDiv, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		tr, err := experiments.TPCHQuery(e).TailSample(p, 100,
			mcdbr.TailSampleOptions{TotalSamples: 500, ForceM: 5})
		if err != nil {
			b.Fatal(err)
		}
		if len(tr.Samples) != 100 {
			b.Fatalf("samples = %d", len(tr.Samples))
		}
	}
}

// BenchmarkE1_NaiveMCDB measures 1000 naive Monte Carlo repetitions of the
// same query; obtaining 100 tail samples at p≈0.001 needs ~102400
// repetitions, so the per-op cost must be multiplied by ~102 for the
// apples-to-apples Appendix D comparison.
func BenchmarkE1_NaiveMCDB(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, err := experiments.TPCHTimingEngine(benchScaleDiv, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		d, err := experiments.TPCHQuery(e).MonteCarlo(1000)
		if err != nil {
			b.Fatal(err)
		}
		if len(d.Samples) != 1000 {
			b.Fatalf("samples = %d", len(d.Samples))
		}
	}
}

// BenchmarkE2_Fig5Accuracy measures one Figure 5 accuracy run (skewed-join
// workload, m=5, N=500, l=100) including the analytic-truth comparison.
func BenchmarkE2_Fig5Accuracy(b *testing.B) {
	b.ReportAllocs()
	p := math.Pow(0.25, 5)
	for i := 0; i < b.N; i++ {
		e, err := experiments.TPCHEngine(benchScaleDiv, 42)
		if err != nil {
			b.Fatal(err)
		}
		mu, sigma := experiments.TPCHAnalyticMoments(e)
		trueQ := stats.NormalQuantile(1-p, mu, sigma)
		tr, err := experiments.TPCHQuery(e).TailSample(p, 100,
			mcdbr.TailSampleOptions{TotalSamples: 500, ForceM: 5})
		if err != nil {
			b.Fatal(err)
		}
		if relErr := math.Abs(tr.Min()-trueQ) / trueQ; relErr > 0.25 {
			b.Fatalf("estimate %g vs analytic %g", tr.Min(), trueQ)
		}
	}
}

// BenchmarkE3_NaiveTailHitRate measures the naive engine's repetition
// throughput and verifies the §1 hit-rate arithmetic: tail hits arrive at
// rate p.
func BenchmarkE3_NaiveTailHitRate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := mcdbr.New(mcdbr.WithSeed(uint64(i)), mcdbr.WithWindow(6000))
		e.RegisterTable(workload.LossMeans(20, 2, 8, 3))
		if err := e.DefineRandomTable(mcdbr.RandomTable{
			Name: "losses", ParamTable: "means", VG: "Normal",
			VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
			Columns:  []mcdbr.RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
		}); err != nil {
			b.Fatal(err)
		}
		d, err := e.Query().From("losses", "").SelectSum(expr.C("val")).MonteCarlo(5000)
		if err != nil {
			b.Fatal(err)
		}
		_ = d.Quantile(0.999)
	}
}

// BenchmarkE4_ParamSelection measures Appendix C parameter selection:
// Theorem 1 m*, budget choice, and a simulated-MSRE validation pass.
func BenchmarkE4_ParamSelection(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		params, err := tail.Choose(500, 0.001)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tail.ChooseN(0.001, 0.05, 0); err != nil {
			b.Fatal(err)
		}
		sim := tail.SimulateMSRE(500, params.M, 0.001, 500, uint64(i))
		if sim <= 0 {
			b.Fatal("degenerate simulated MSRE")
		}
	}
}

// BenchmarkE5_HeavyTailRejections measures the full Appendix B regime
// sweep (Normal vs Lognormal vs Pareto rejection cost).
func BenchmarkE5_HeavyTailRejections(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunE5(uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// parallelBenchEngine builds the replicate-sharding benchmark workload: a
// 200-customer loss SUM evaluated under 2000 Monte Carlo replicates.
func parallelBenchEngine(b *testing.B, seed uint64, workers int) *mcdbr.Engine {
	b.Helper()
	e := mcdbr.New(mcdbr.WithSeed(seed), mcdbr.WithParallelism(workers))
	e.RegisterTable(workload.LossMeans(200, 2, 8, 5))
	if err := e.DefineRandomTable(mcdbr.RandomTable{
		Name: "losses", ParamTable: "means", VG: "Normal",
		VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
		Columns:  []mcdbr.RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
	}); err != nil {
		b.Fatal(err)
	}
	return e
}

func benchParallelMonteCarlo(b *testing.B, workers int) {
	const reps = 2000
	for i := 0; i < b.N; i++ {
		d, err := parallelBenchEngine(b, uint64(i), workers).
			Query().From("losses", "").SelectSum(expr.C("val")).MonteCarlo(reps)
		if err != nil {
			b.Fatal(err)
		}
		if len(d.Samples) != reps {
			b.Fatalf("samples = %d", len(d.Samples))
		}
	}
}

// BenchmarkParallel_MonteCarloSequential is the workers=1 baseline for the
// replicate-sharded executor.
func BenchmarkParallel_MonteCarloSequential(b *testing.B) {
	b.ReportAllocs()
	benchParallelMonteCarlo(b, 1)
}

// BenchmarkParallel_MonteCarloWorkers runs the same 2000-replicate query
// replicate-sharded across NumCPU workers; output is bit-identical to the
// sequential baseline.
func BenchmarkParallel_MonteCarloWorkers(b *testing.B) {
	b.ReportAllocs()
	benchParallelMonteCarlo(b, runtime.NumCPU())
}

// BenchmarkParallel_Speedup times sequential and replicate-sharded
// execution of the same 2000-replicate query back to back and reports
// their ratio as the "speedup" metric (×; ~NumCPU on an otherwise idle
// multi-core machine, 1.0 on a single-core one). It also re-checks
// bit-identity of the two sample vectors on every iteration.
func BenchmarkParallel_Speedup(b *testing.B) {
	b.ReportAllocs()
	const reps = 2000
	workers := runtime.NumCPU()
	var seqDur, parDur time.Duration
	for i := 0; i < b.N; i++ {
		q := func(w int) []float64 {
			d, err := parallelBenchEngine(b, uint64(i), w).
				Query().From("losses", "").SelectSum(expr.C("val")).MonteCarlo(reps)
			if err != nil {
				b.Fatal(err)
			}
			return d.Samples
		}
		start := time.Now()
		seq := q(1)
		seqDur += time.Since(start)
		start = time.Now()
		par := q(workers)
		parDur += time.Since(start)
		for j := range seq {
			if seq[j] != par[j] {
				b.Fatalf("replicate %d: sequential %v vs parallel %v", j, seq[j], par[j])
			}
		}
	}
	if parDur > 0 {
		b.ReportMetric(seqDur.Seconds()/parDur.Seconds(), "speedup")
		b.ReportMetric(float64(workers), "workers")
	}
}

// servingBenchEngine builds the serving-path benchmark workload: the §2
// quickstart loss model with a small stream window so per-run execution
// cost does not drown out the parse+plan cost being compared.
func servingBenchEngine(b *testing.B) *mcdbr.Engine {
	b.Helper()
	e := mcdbr.New(mcdbr.WithSeed(42), mcdbr.WithWindow(8), mcdbr.WithParallelism(1))
	e.RegisterTable(workload.LossMeans(10, 2, 8, 7))
	if _, err := e.Exec(`
CREATE TABLE Losses (CID, val) AS
FOR EACH CID IN means
WITH myVal AS Normal(VALUES(m, 1.0))
SELECT CID, myVal.* FROM myVal`); err != nil {
		b.Fatal(err)
	}
	return e
}

const servingBenchSQL = `SELECT SUM(val) AS totalLoss FROM Losses WHERE CID < 10008
WITH RESULTDISTRIBUTION MONTECARLO(8)`

// BenchmarkPrepared_Reexec measures re-running a prepared quickstart query:
// the plan is built once, each iteration only executes it.
func BenchmarkPrepared_Reexec(b *testing.B) {
	b.ReportAllocs()
	e := servingBenchEngine(b)
	pq, err := e.Prepare(servingBenchSQL)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pq.Run(mcdbr.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Dist.Samples) != 8 {
			b.Fatalf("samples = %d", len(res.Dist.Samples))
		}
	}
}

// BenchmarkPrepared_ParsePlanPerCall is the Exec baseline: the same query
// pays sqlish parsing and internal/plan rewriting/lowering on every call.
// Prepared re-execution must beat this (ISSUE 3 acceptance).
func BenchmarkPrepared_ParsePlanPerCall(b *testing.B) {
	b.ReportAllocs()
	e := servingBenchEngine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Exec(servingBenchSQL)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Dist.Samples) != 8 {
			b.Fatalf("samples = %d", len(res.Dist.Samples))
		}
	}
}

// BenchmarkPrepared_PrepareOnly measures Prepare itself with a warm plan
// cache (the server's steady-state cost of routing a repeated statement).
func BenchmarkPrepared_PrepareOnly(b *testing.B) {
	b.ReportAllocs()
	e := servingBenchEngine(b)
	if _, err := e.Prepare(servingBenchSQL); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pq, err := e.Prepare(servingBenchSQL)
		if err != nil {
			b.Fatal(err)
		}
		if !pq.CacheHit() {
			b.Fatal("cache miss on repeated Prepare")
		}
	}
}

// BenchmarkServe_ConcurrentQueries measures end-to-end HTTP throughput of
// the query service under parallel clients, reporting queries/sec.
func BenchmarkServe_ConcurrentQueries(b *testing.B) {
	b.ReportAllocs()
	e := servingBenchEngine(b)
	srv := server.New(e, server.Options{MaxConcurrent: runtime.NumCPU()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body, err := json.Marshal(server.QueryRequest{SQL: servingBenchSQL})
	if err != nil {
		b.Fatal(err)
	}
	start := time.Now()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				// FailNow must not be called off the benchmark goroutine.
				b.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
			}
			_, _ = bytes.NewBuffer(nil).ReadFrom(resp.Body)
			resp.Body.Close()
		}
	})
	b.StopTimer()
	if d := time.Since(start).Seconds(); d > 0 {
		b.ReportMetric(float64(b.N)/d, "queries/s")
	}
}

// hotpathEngine builds the quickstart workload at the hot-path benchmark
// scale: 100 customers, sequential execution so allocation counts are
// stable across runs.
func hotpathEngine(b *testing.B) *mcdbr.Engine {
	b.Helper()
	e := mcdbr.New(mcdbr.WithSeed(42), mcdbr.WithParallelism(1))
	e.RegisterTable(workload.LossMeans(100, 2, 8, 7))
	if _, err := e.Exec(`
CREATE TABLE Losses (CID, val) AS
FOR EACH CID IN means
WITH myVal AS Normal(VALUES(m, 1.0))
SELECT CID, myVal.* FROM myVal`); err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkHotpath_QuickstartAggregate measures the §2 quickstart SUM
// aggregate on the prepared-query hot path (plan built once, executed per
// iteration), reporting allocs/op for the slab-allocation trajectory.
func BenchmarkHotpath_QuickstartAggregate(b *testing.B) {
	e := hotpathEngine(b)
	pq, err := e.Prepare(`SELECT SUM(val) AS totalLoss FROM Losses WHERE CID < 10090
WITH RESULTDISTRIBUTION MONTECARLO(256)`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pq.Run(mcdbr.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Dist.Samples) != 256 {
			b.Fatalf("samples = %d", len(res.Dist.Samples))
		}
	}
}

// BenchmarkHotpath_Fig2SelfJoin measures the paper's Fig. 2 salary
// inversion self-join (two scans of one random table, cross-seed final
// predicate in the looper) on the prepared hot path.
func BenchmarkHotpath_Fig2SelfJoin(b *testing.B) {
	e := mcdbr.New(mcdbr.WithSeed(77), mcdbr.WithParallelism(1))
	sup, empmeans := workload.SalaryDB()
	e.RegisterTable(sup)
	e.RegisterTable(empmeans)
	if err := e.DefineRandomTable(mcdbr.RandomTable{
		Name: "emp", ParamTable: "empmeans", VG: "Normal",
		VGParams: []expr.Expr{expr.C("msal"), expr.F(4e6)},
		Columns:  []mcdbr.RandomCol{{Name: "eid", FromParam: "eid"}, {Name: "sal", VGOut: 0}},
	}); err != nil {
		b.Fatal(err)
	}
	pq, err := e.Prepare(`SELECT SUM(emp2.sal - emp1.sal) AS inv
FROM emp AS emp1, emp AS emp2, sup
WHERE sup.boss = emp1.eid AND sup.peon = emp2.eid AND emp2.sal > emp1.sal
WITH RESULTDISTRIBUTION MONTECARLO(128)`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pq.Run(mcdbr.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Dist.Samples) != 128 {
			b.Fatalf("samples = %d", len(res.Dist.Samples))
		}
	}
}

// BenchmarkHotpath_TailSampling measures one small Gibbs tail-sampling run
// (the MCDB-R core loop: bootstrapping, rejection sampling, replenishing)
// with allocation reporting.
func BenchmarkHotpath_TailSampling(b *testing.B) {
	e := mcdbr.New(mcdbr.WithSeed(5), mcdbr.WithWindow(2048), mcdbr.WithParallelism(1))
	e.RegisterTable(workload.LossMeans(50, 2, 8, 5))
	if err := e.DefineRandomTable(mcdbr.RandomTable{
		Name: "losses", ParamTable: "means", VG: "Normal",
		VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
		Columns:  []mcdbr.RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
	}); err != nil {
		b.Fatal(err)
	}
	pq, err := e.Prepare(`SELECT SUM(val) AS totalLoss FROM losses
WITH RESULTDISTRIBUTION MONTECARLO(50) DOMAIN totalLoss >= QUANTILE(0.99)`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pq.Run(mcdbr.RunOptions{Tail: mcdbr.TailSampleOptions{TotalSamples: 200, ForceM: 3}})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tail.Samples) != 50 {
			b.Fatalf("samples = %d", len(res.Tail.Samples))
		}
	}
}

// detPrefixEngine builds a workload whose query has a non-trivial
// deterministic prefix: accounts joined to regions is a purely
// deterministic two-table join below the random loss table. With the
// deterministic-prefix materialization cache, prepared re-execution skips
// that join entirely.
func detPrefixEngine(b *testing.B) *mcdbr.Engine {
	b.Helper()
	e := mcdbr.New(mcdbr.WithSeed(11), mcdbr.WithParallelism(1))
	e.RegisterTable(workload.LossMeans(400, 2, 8, 9))
	regions := storage.NewTable("regions", types.NewSchema(
		types.Column{Name: "rid", Kind: types.KindInt},
		types.Column{Name: "weight", Kind: types.KindFloat},
	))
	for r := 0; r < 8; r++ {
		regions.MustAppend(types.Row{types.NewInt(int64(r)), types.NewFloat(1 + float64(r)/8)})
	}
	e.RegisterTable(regions)
	accounts := storage.NewTable("accounts", types.NewSchema(
		types.Column{Name: "aid", Kind: types.KindInt},
		types.Column{Name: "rid", Kind: types.KindInt},
	))
	for i := 0; i < 400; i++ {
		accounts.MustAppend(types.Row{types.NewInt(int64(10000 + i)), types.NewInt(int64(i % 8))})
	}
	e.RegisterTable(accounts)
	if err := e.DefineRandomTable(mcdbr.RandomTable{
		Name: "losses", ParamTable: "means", VG: "Normal",
		VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
		Columns:  []mcdbr.RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
	}); err != nil {
		b.Fatal(err)
	}
	return e
}

const detPrefixSQL = `SELECT SUM(losses.val * regions.weight) AS wloss
FROM losses, accounts, regions
WHERE losses.cid = accounts.aid AND accounts.rid = regions.rid
WITH RESULTDISTRIBUTION MONTECARLO(64)`

// BenchmarkHotpath_PreparedDetPrefix measures prepared re-execution of a
// query with a non-trivial deterministic prefix (accounts ⋈ regions). The
// engine-level materialization cache makes re-executions skip the
// deterministic join; this benchmark is the ISSUE 4 acceptance measurement.
func BenchmarkHotpath_PreparedDetPrefix(b *testing.B) {
	e := detPrefixEngine(b)
	pq, err := e.Prepare(detPrefixSQL)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pq.Run(mcdbr.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Dist.Samples) != 64 {
			b.Fatalf("samples = %d", len(res.Dist.Samples))
		}
	}
}

// benchTailOnce runs a small tail sampling with the given knobs; shared by
// the ablation benchmarks.
func benchTailOnce(b *testing.B, seed uint64, window int, opts mcdbr.TailSampleOptions) {
	b.Helper()
	e := mcdbr.New(mcdbr.WithSeed(seed), mcdbr.WithWindow(window))
	e.RegisterTable(workload.LossMeans(50, 2, 8, 5))
	if err := e.DefineRandomTable(mcdbr.RandomTable{
		Name: "losses", ParamTable: "means", VG: "Normal",
		VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
		Columns:  []mcdbr.RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
	}); err != nil {
		b.Fatal(err)
	}
	if _, err := e.Query().From("losses", "").SelectSum(expr.C("val")).
		TailSample(0.001, 100, opts); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAblation_WindowSmall vs WindowLarge quantifies the §5 tradeoff:
// small windows carry less data through the plan but force more
// replenishing runs.
func BenchmarkAblation_WindowSmall(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchTailOnce(b, uint64(i), 256, mcdbr.TailSampleOptions{TotalSamples: 500, ForceM: 5})
	}
}

// BenchmarkAblation_WindowLarge is the large-window counterpart.
func BenchmarkAblation_WindowLarge(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchTailOnce(b, uint64(i), 8192, mcdbr.TailSampleOptions{TotalSamples: 500, ForceM: 5})
	}
}

// BenchmarkAblation_K1 vs K3 quantifies extra Gibbs updating steps (the
// paper finds k=1 suffices).
func BenchmarkAblation_K1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchTailOnce(b, uint64(i), 2048, mcdbr.TailSampleOptions{TotalSamples: 500, ForceM: 5, K: 1})
	}
}

// BenchmarkAblation_K3 is the k=3 counterpart.
func BenchmarkAblation_K3(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchTailOnce(b, uint64(i), 2048, mcdbr.TailSampleOptions{TotalSamples: 500, ForceM: 5, K: 3})
	}
}

// BenchmarkAblation_M2 vs the Theorem 1 m*: fewer bootstrapping steps mean
// each step must estimate a much more extreme per-step quantile.
func BenchmarkAblation_M2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchTailOnce(b, uint64(i), 2048, mcdbr.TailSampleOptions{TotalSamples: 500, ForceM: 2})
	}
}

// BenchmarkAblation_MStar uses the Appendix C optimum.
func BenchmarkAblation_MStar(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchTailOnce(b, uint64(i), 2048, mcdbr.TailSampleOptions{TotalSamples: 500})
	}
}

// BenchmarkAblation_DeltaAggregates vs FullRecompute quantifies the §4.3
// delta-maintenance optimization: without it every rejection-sampling
// candidate recomputes the aggregate over all tuples.
func BenchmarkAblation_DeltaAggregates(b *testing.B) {
	b.ReportAllocs()
	benchDeltaAblation(b, false)
}

// BenchmarkAblation_FullRecompute is the naive counterpart.
func BenchmarkAblation_FullRecompute(b *testing.B) {
	b.ReportAllocs()
	benchDeltaAblation(b, true)
}

func benchDeltaAblation(b *testing.B, disable bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cat := storage.NewCatalog()
		cat.Put(workload.LossMeans(200, 2, 8, 5))
		normal, _ := vg.NewRegistry().Lookup("Normal")
		ws := exec.NewWorkspace(cat, prng.NewStream(uint64(i)), 2048)
		scan, err := exec.NewScan(cat, "means", "means")
		if err != nil {
			b.Fatal(err)
		}
		seed, err := exec.NewSeed(scan, normal,
			[]expr.Expr{expr.C("m"), expr.F(1)}, []string{"val"})
		if err != nil {
			b.Fatal(err)
		}
		plan := &exec.Instantiate{Child: seed}
		_, err = gibbs.Run(ws, plan,
			gibbs.Query{Agg: exec.AggSpec{Kind: exec.AggSum, Expr: expr.C("val")}},
			gibbs.Config{N: 50, M: 3, P: 0.01, L: 25, DisableDeltaAggregates: disable})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// groupedBenchEngine builds the ISSUE 5 grouped-aggregation workload:
// losses(cid, val) ~ Normal(m, 1) over nCustomers customers joined to a
// grp table assigning customers round-robin to nGroups groups.
func groupedBenchEngine(b *testing.B, seed uint64, nCustomers, nGroups int) *mcdbr.Engine {
	b.Helper()
	e := mcdbr.New(mcdbr.WithSeed(seed), mcdbr.WithParallelism(1))
	e.RegisterTable(workload.LossMeans(nCustomers, 2, 8, 5))
	if err := e.DefineRandomTable(mcdbr.RandomTable{
		Name: "losses", ParamTable: "means", VG: "Normal",
		VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
		Columns:  []mcdbr.RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
	}); err != nil {
		b.Fatal(err)
	}
	grp := storage.NewTable("grp", types.NewSchema(
		types.Column{Name: "cid", Kind: types.KindInt},
		types.Column{Name: "g", Kind: types.KindInt},
	))
	m, _ := e.Table("means")
	for i, r := range m.Rows() {
		grp.MustAppend(types.Row{r[0], types.NewInt(int64(i % nGroups))})
	}
	e.RegisterTable(grp)
	return e
}

const (
	groupedBenchGroups    = 8
	groupedBenchCustomers = 64
	groupedBenchReps      = 500
)

// groupedBenchPerGroupLoop reconstructs the pre-ISSUE-5 architecture for
// comparison: one full query per group — the grouped query re-planned
// and re-executed with a per-group selection predicate, exactly what the
// deleted GroupedMonteCarlo outer loop did.
func groupedBenchPerGroupLoop(b *testing.B, e *mcdbr.Engine) map[int][]float64 {
	out := make(map[int][]float64, groupedBenchGroups)
	for g := 0; g < groupedBenchGroups; g++ {
		d, err := e.Query().
			From("losses", "l").From("grp", "grp").
			Where(expr.B(expr.OpEq, expr.C("l.cid"), expr.C("grp.cid"))).
			Where(expr.B(expr.OpEq, expr.C("grp.g"), expr.I(int64(g)))).
			SelectSum(expr.C("l.val")).
			MonteCarlo(groupedBenchReps)
		if err != nil {
			b.Fatal(err)
		}
		out[g] = d.Samples
	}
	return out
}

// groupedBenchSinglePass runs the same workload through the ISSUE 5
// grouped Aggregate operator: one plan run, one pass per repetition.
func groupedBenchSinglePass(b *testing.B, e *mcdbr.Engine) *mcdbr.GroupedDistribution {
	gd, err := e.Query().
		From("losses", "l").From("grp", "grp").
		Where(expr.B(expr.OpEq, expr.C("l.cid"), expr.C("grp.cid"))).
		SelectSum(expr.C("l.val")).
		GroupBy(expr.C("grp.g")).
		MonteCarloGrouped(groupedBenchReps)
	if err != nil {
		b.Fatal(err)
	}
	if len(gd.Groups) != groupedBenchGroups {
		b.Fatalf("groups = %d", len(gd.Groups))
	}
	return gd
}

// BenchmarkGrouped_PerGroupLoop is the pre-ISSUE-5 baseline: GROUP BY
// over 8 groups executed as 8 full per-group queries.
func BenchmarkGrouped_PerGroupLoop(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		groupedBenchPerGroupLoop(b, groupedBenchEngine(b, uint64(i), groupedBenchCustomers, groupedBenchGroups))
	}
}

// BenchmarkGrouped_SinglePass is the ISSUE 5 pipeline: the same GROUP BY
// workload in one plan run with per-repetition aggregate vectors.
func BenchmarkGrouped_SinglePass(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		groupedBenchSinglePass(b, groupedBenchEngine(b, uint64(i), groupedBenchCustomers, groupedBenchGroups))
	}
}

// BenchmarkGrouped_Speedup times both architectures back to back,
// reports their ratio as the "speedup" metric, and re-checks per-group
// bit-identity of the sample vectors on every iteration.
func BenchmarkGrouped_Speedup(b *testing.B) {
	b.ReportAllocs()
	var loopDur, passDur time.Duration
	for i := 0; i < b.N; i++ {
		e := groupedBenchEngine(b, uint64(i), groupedBenchCustomers, groupedBenchGroups)
		start := time.Now()
		perGroup := groupedBenchPerGroupLoop(b, e)
		loopDur += time.Since(start)
		start = time.Now()
		gd := groupedBenchSinglePass(b, e)
		passDur += time.Since(start)
		for gi := range gd.Groups {
			g := &gd.Groups[gi]
			want := perGroup[int(g.Key[0].Int())]
			for j := range want {
				if g.Dists[0].Samples[j] != want[j] {
					b.Fatalf("group %s sample %d: single-pass %v vs per-group %v",
						g.KeyString(), j, g.Dists[0].Samples[j], want[j])
				}
			}
		}
	}
	if passDur > 0 {
		b.ReportMetric(loopDur.Seconds()/passDur.Seconds(), "speedup")
		b.ReportMetric(groupedBenchGroups, "groups")
	}
}

// measurePeakBytes runs f once and returns the peak live-heap growth over
// the pre-run baseline, sampled by a background goroutine while f runs.
// The GC growth target is lowered during the measurement so dead garbage
// is reclaimed promptly and HeapAlloc tracks the live set — without this,
// a streaming executor's recycled batches would be indistinguishable from
// a materializing executor's retained relation.
func measurePeakBytes(f func()) float64 {
	defer debug.SetGCPercent(debug.SetGCPercent(10))
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	stop := make(chan struct{})
	peakc := make(chan uint64, 1)
	go func() {
		var peak uint64
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
			select {
			case <-stop:
				peakc <- peak
				return
			default:
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	f()
	close(stop)
	peak := <-peakc
	if peak <= base.HeapAlloc {
		return 0
	}
	return float64(peak - base.HeapAlloc)
}

// BenchmarkStreaming_QuickstartAggregate is the streaming-executor
// measurement of the §2 quickstart SUM (same workload as
// BenchmarkHotpath_QuickstartAggregate): wall-clock and allocs on the
// prepared hot path, plus the sampled peak-live-bytes of one run as the
// "peak-B" metric. BENCH_6.json compares these numbers against the
// materializing executor's.
func BenchmarkStreaming_QuickstartAggregate(b *testing.B) {
	e := hotpathEngine(b)
	pq, err := e.Prepare(`SELECT SUM(val) AS totalLoss FROM Losses WHERE CID < 10090
WITH RESULTDISTRIBUTION MONTECARLO(256)`)
	if err != nil {
		b.Fatal(err)
	}
	run := func() {
		res, err := pq.Run(mcdbr.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Dist.Samples) != 256 {
			b.Fatalf("samples = %d", len(res.Dist.Samples))
		}
	}
	peak := measurePeakBytes(run)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.ReportMetric(peak, "peak-B")
}

// BenchmarkStreaming_Fig2SelfJoin is the streaming-executor measurement of
// the Fig. 2 salary-inversion self-join (same workload as
// BenchmarkHotpath_Fig2SelfJoin), with the "peak-B" metric.
func BenchmarkStreaming_Fig2SelfJoin(b *testing.B) {
	e := mcdbr.New(mcdbr.WithSeed(77), mcdbr.WithParallelism(1))
	sup, empmeans := workload.SalaryDB()
	e.RegisterTable(sup)
	e.RegisterTable(empmeans)
	if err := e.DefineRandomTable(mcdbr.RandomTable{
		Name: "emp", ParamTable: "empmeans", VG: "Normal",
		VGParams: []expr.Expr{expr.C("msal"), expr.F(4e6)},
		Columns:  []mcdbr.RandomCol{{Name: "eid", FromParam: "eid"}, {Name: "sal", VGOut: 0}},
	}); err != nil {
		b.Fatal(err)
	}
	pq, err := e.Prepare(`SELECT SUM(emp2.sal - emp1.sal) AS inv
FROM emp AS emp1, emp AS emp2, sup
WHERE sup.boss = emp1.eid AND sup.peon = emp2.eid AND emp2.sal > emp1.sal
WITH RESULTDISTRIBUTION MONTECARLO(128)`)
	if err != nil {
		b.Fatal(err)
	}
	run := func() {
		res, err := pq.Run(mcdbr.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Dist.Samples) != 128 {
			b.Fatalf("samples = %d", len(res.Dist.Samples))
		}
	}
	peak := measurePeakBytes(run)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.ReportMetric(peak, "peak-B")
}

// streamingLargeScanRows sizes the large-scan workload: the accounts table
// is two thousand times larger than what survives its filter, so run
// footprint is dominated by how the executor carries the scan.
const streamingLargeScanRows = 200000

// streamingLargeScanEngine builds the large-scan workload: a 200k-row
// deterministic accounts table filtered down to 2k rows and joined under a
// 100-customer random loss table. The deterministic-prefix cache is
// disabled so every run pays the scan — a materializing executor holds
// every scanned tuple at once, a streaming one only the current batch plus
// the filter survivors.
func streamingLargeScanEngine(b *testing.B) *mcdbr.Engine {
	b.Helper()
	e := mcdbr.New(mcdbr.WithSeed(23), mcdbr.WithParallelism(1), mcdbr.WithPrefixCacheSize(-1))
	e.RegisterTable(workload.LossMeans(100, 2, 8, 7))
	accounts := storage.NewTable("accounts", types.NewSchema(
		types.Column{Name: "aid", Kind: types.KindInt},
		types.Column{Name: "flag", Kind: types.KindInt},
		types.Column{Name: "w", Kind: types.KindFloat},
	))
	for i := 0; i < streamingLargeScanRows; i++ {
		flag := int64(0)
		if i%100 == 0 {
			flag = 1
		}
		accounts.MustAppend(types.Row{
			types.NewInt(int64(10000 + i%100)),
			types.NewInt(flag),
			types.NewFloat(1 + float64(i%7)/8),
		})
	}
	e.RegisterTable(accounts)
	if err := e.DefineRandomTable(mcdbr.RandomTable{
		Name: "losses", ParamTable: "means", VG: "Normal",
		VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
		Columns:  []mcdbr.RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
	}); err != nil {
		b.Fatal(err)
	}
	return e
}

const streamingLargeScanSQL = `SELECT SUM(losses.val * accounts.w) AS wloss
FROM losses, accounts
WHERE losses.cid = accounts.aid AND accounts.flag = 1
WITH RESULTDISTRIBUTION MONTECARLO(16)`

// adaptiveBenchEngine builds the adaptive-stopping benchmark workload: a
// low-variance 200-customer loss SUM (relative sd ≈ 1.4%), where a tight
// confidence interval needs only a few dozen replicates but a fixed
// budget would burn thousands.
func adaptiveBenchEngine(b *testing.B, seed uint64) *mcdbr.Engine {
	b.Helper()
	e := mcdbr.New(mcdbr.WithSeed(seed), mcdbr.WithParallelism(1))
	e.RegisterTable(workload.LossMeans(200, 2, 8, 5))
	if err := e.DefineRandomTable(mcdbr.RandomTable{
		Name: "losses", ParamTable: "means", VG: "Normal",
		VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
		Columns:  []mcdbr.RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
	}); err != nil {
		b.Fatal(err)
	}
	return e
}

const (
	adaptiveBenchTarget = 0.005 // relative CI half-width the run must reach
	adaptiveBenchMaxN   = 8192  // fixed budget / adaptive cap
)

// BenchmarkAdaptive_FixedBudget is the baseline: the low-variance SUM at
// the full fixed replicate budget, the cost a caller pays without a
// stopping rule.
func BenchmarkAdaptive_FixedBudget(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := adaptiveBenchEngine(b, uint64(i)).
			Query().From("losses", "").SelectSum(expr.C("val")).
			MonteCarlo(adaptiveBenchMaxN)
		if err != nil {
			b.Fatal(err)
		}
		if len(d.Samples) != adaptiveBenchMaxN {
			b.Fatalf("samples = %d", len(d.Samples))
		}
	}
}

// BenchmarkAdaptive_UntilError runs the same query with UNTIL ERROR early
// stopping at the same cap, reporting how many replicates the confidence
// interval actually needed as "samples_used".
func BenchmarkAdaptive_UntilError(b *testing.B) {
	b.ReportAllocs()
	var used int
	for i := 0; i < b.N; i++ {
		_, rep, err := adaptiveBenchEngine(b, uint64(i)).
			Query().From("losses", "").SelectSum(expr.C("val")).
			Until(adaptiveBenchTarget, 0.95, adaptiveBenchMaxN).
			MonteCarloAdaptive()
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Converged {
			b.Fatalf("did not converge: %+v", rep)
		}
		used = rep.SamplesUsed
	}
	b.ReportMetric(float64(used), "samples_used")
}

// BenchmarkAdaptive_Speedup times the fixed budget and the adaptive run
// back to back at equal target accuracy (the fixed budget also reaches the
// target) and reports their wall-clock ratio as "speedup" plus the
// adaptive stopping point as "samples_used". It re-checks on every
// iteration that the adaptive replicates are a bit-identical prefix of the
// fixed run's — the ISSUE 7 determinism guarantee.
func BenchmarkAdaptive_Speedup(b *testing.B) {
	b.ReportAllocs()
	var fixedDur, adaptDur time.Duration
	var used int
	for i := 0; i < b.N; i++ {
		start := time.Now()
		d, err := adaptiveBenchEngine(b, uint64(i)).
			Query().From("losses", "").SelectSum(expr.C("val")).
			MonteCarlo(adaptiveBenchMaxN)
		if err != nil {
			b.Fatal(err)
		}
		fixedDur += time.Since(start)
		start = time.Now()
		gd, rep, err := adaptiveBenchEngine(b, uint64(i)).
			Query().From("losses", "").SelectSum(expr.C("val")).
			Until(adaptiveBenchTarget, 0.95, adaptiveBenchMaxN).
			MonteCarloAdaptive()
		if err != nil {
			b.Fatal(err)
		}
		adaptDur += time.Since(start)
		if !rep.Converged {
			b.Fatalf("did not converge: %+v", rep)
		}
		used = rep.SamplesUsed
		adaptive := gd.Groups[0].Dists[0].Samples
		for j, s := range adaptive {
			if s != d.Samples[j] {
				b.Fatalf("replicate %d: adaptive %v vs fixed %v", j, s, d.Samples[j])
			}
		}
	}
	if adaptDur > 0 {
		b.ReportMetric(fixedDur.Seconds()/adaptDur.Seconds(), "speedup")
		b.ReportMetric(float64(used), "samples_used")
	}
}

// BenchmarkStreaming_LargeScan is the bounded-memory acceptance benchmark:
// the 200k-row filtered scan under a Monte Carlo aggregate, prefix cache
// off. The "peak-B" metric must drop by at least half when the executor
// streams (ISSUE 6 acceptance; see BENCH_6.json).
func BenchmarkStreaming_LargeScan(b *testing.B) {
	e := streamingLargeScanEngine(b)
	pq, err := e.Prepare(streamingLargeScanSQL)
	if err != nil {
		b.Fatal(err)
	}
	run := func() {
		res, err := pq.Run(mcdbr.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Dist.Samples) != 16 {
			b.Fatalf("samples = %d", len(res.Dist.Samples))
		}
	}
	peak := measurePeakBytes(run)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.ReportMetric(peak, "peak-B")
}

// kernelGroupedEngine builds the ISSUE 10 vectorized-kernel workload:
// the grouped loss SUM with the expression kernels switched on or off,
// sequential execution, and a window large enough that the window-major
// EvalWindow pass applies (the kernels-off run takes the version-major
// interpreter loop over the same layout).
func kernelGroupedEngine(b *testing.B, seed uint64, kernels bool) *mcdbr.Engine {
	b.Helper()
	e := mcdbr.New(mcdbr.WithSeed(seed), mcdbr.WithParallelism(1),
		mcdbr.WithWindow(4096), mcdbr.WithVectorizedKernels(kernels))
	e.RegisterTable(workload.LossMeans(groupedBenchCustomers, 2, 8, 5))
	if err := e.DefineRandomTable(mcdbr.RandomTable{
		Name: "losses", ParamTable: "means", VG: "Normal",
		VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
		Columns:  []mcdbr.RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
	}); err != nil {
		b.Fatal(err)
	}
	grp := storage.NewTable("grp", types.NewSchema(
		types.Column{Name: "cid", Kind: types.KindInt},
		types.Column{Name: "g", Kind: types.KindInt},
	))
	m, _ := e.Table("means")
	for i, r := range m.Rows() {
		grp.MustAppend(types.Row{r[0], types.NewInt(int64(i % groupedBenchGroups))})
	}
	e.RegisterTable(grp)
	return e
}

// kernelBenchReps sizes the grouped Monte Carlo kernel benchmarks so the
// per-version inner loop dominates the one-time plan run.
const kernelBenchReps = 2048

// kernelGroupedRun executes the grouped kernel workload: a random-
// attribute filter (evaluated per version as the looper final predicate)
// under a grouped SUM.
func kernelGroupedRun(b *testing.B, e *mcdbr.Engine) *mcdbr.GroupedDistribution {
	b.Helper()
	gd, err := e.Query().
		From("losses", "l").From("grp", "grp").
		Where(expr.B(expr.OpEq, expr.C("l.cid"), expr.C("grp.cid"))).
		Where(expr.B(expr.OpGt, expr.C("l.val"), expr.F(0.5))).
		SelectSum(expr.C("l.val")).
		GroupBy(expr.C("grp.g")).
		MonteCarloGrouped(kernelBenchReps)
	if err != nil {
		b.Fatal(err)
	}
	if len(gd.Groups) != groupedBenchGroups {
		b.Fatalf("groups = %d", len(gd.Groups))
	}
	return gd
}

// BenchmarkKernel_GroupedMC_Interp is the interpreter baseline: the
// grouped Monte Carlo inner loop with kernels disabled (version-major
// interpreter evaluation of the same layout).
func BenchmarkKernel_GroupedMC_Interp(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		kernelGroupedRun(b, kernelGroupedEngine(b, uint64(i), false))
	}
}

// BenchmarkKernel_GroupedMC_Vec is the same workload through the
// window-major kernel pass (ISSUE 10 headline measurement).
func BenchmarkKernel_GroupedMC_Vec(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		kernelGroupedRun(b, kernelGroupedEngine(b, uint64(i), true))
	}
}

// BenchmarkKernel_GroupedMC_Speedup times the interpreter and kernel
// paths back to back, reports their wall-clock ratio as the "speedup"
// metric (ISSUE 10 acceptance: >= 2x), and re-checks bit-identity of
// every per-group sample vector on each iteration.
func BenchmarkKernel_GroupedMC_Speedup(b *testing.B) {
	b.ReportAllocs()
	var interpDur, vecDur time.Duration
	for i := 0; i < b.N; i++ {
		// Engine construction (table registration) is untimed; the timed
		// region is the query run — plan execution plus the Monte Carlo
		// version loop the kernels accelerate.
		eInterp := kernelGroupedEngine(b, uint64(i), false)
		eVec := kernelGroupedEngine(b, uint64(i), true)
		start := time.Now()
		interp := kernelGroupedRun(b, eInterp)
		interpDur += time.Since(start)
		start = time.Now()
		vec := kernelGroupedRun(b, eVec)
		vecDur += time.Since(start)
		for gi := range vec.Groups {
			iv, vv := interp.Groups[gi].Dists[0].Samples, vec.Groups[gi].Dists[0].Samples
			for j := range vv {
				if iv[j] != vv[j] {
					b.Fatalf("group %d sample %d: interp %v vs vec %v", gi, j, iv[j], vv[j])
				}
			}
		}
	}
	if vecDur > 0 {
		b.ReportMetric(interpDur.Seconds()/vecDur.Seconds(), "speedup")
	}
}

// kernelQuickstartEngine is the §2 quickstart workload with the kernel
// switch exposed: a deterministic-column filter (the Select det-batch
// kernel) under an ungrouped SUM.
func kernelQuickstartEngine(b *testing.B, kernels bool) *mcdbr.Engine {
	b.Helper()
	e := mcdbr.New(mcdbr.WithSeed(42), mcdbr.WithParallelism(1),
		mcdbr.WithWindow(4096), mcdbr.WithVectorizedKernels(kernels))
	e.RegisterTable(workload.LossMeans(100, 2, 8, 7))
	if err := e.DefineRandomTable(mcdbr.RandomTable{
		Name: "losses", ParamTable: "means", VG: "Normal",
		VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
		Columns:  []mcdbr.RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
	}); err != nil {
		b.Fatal(err)
	}
	return e
}

func benchKernelQuickstart(b *testing.B, kernels bool) {
	b.Helper()
	e := kernelQuickstartEngine(b, kernels)
	pq, err := e.Prepare(`SELECT SUM(val) AS totalLoss FROM losses WHERE cid < 10090
WITH RESULTDISTRIBUTION MONTECARLO(1024)`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pq.Run(mcdbr.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Dist.Samples) != 1024 {
			b.Fatalf("samples = %d", len(res.Dist.Samples))
		}
	}
}

// BenchmarkKernel_Quickstart_Interp measures the quickstart SUM with
// kernels disabled.
func BenchmarkKernel_Quickstart_Interp(b *testing.B) {
	b.ReportAllocs()
	benchKernelQuickstart(b, false)
}

// BenchmarkKernel_Quickstart_Vec is the kernel counterpart.
func BenchmarkKernel_Quickstart_Vec(b *testing.B) {
	b.ReportAllocs()
	benchKernelQuickstart(b, true)
}

func benchKernelFig2(b *testing.B, kernels bool) {
	b.Helper()
	e := mcdbr.New(mcdbr.WithSeed(77), mcdbr.WithParallelism(1),
		mcdbr.WithWindow(4096), mcdbr.WithVectorizedKernels(kernels))
	sup, empmeans := workload.SalaryDB()
	e.RegisterTable(sup)
	e.RegisterTable(empmeans)
	if err := e.DefineRandomTable(mcdbr.RandomTable{
		Name: "emp", ParamTable: "empmeans", VG: "Normal",
		VGParams: []expr.Expr{expr.C("msal"), expr.F(4e6)},
		Columns:  []mcdbr.RandomCol{{Name: "eid", FromParam: "eid"}, {Name: "sal", VGOut: 0}},
	}); err != nil {
		b.Fatal(err)
	}
	pq, err := e.Prepare(`SELECT SUM(emp2.sal - emp1.sal) AS inv
FROM emp AS emp1, emp AS emp2, sup
WHERE sup.boss = emp1.eid AND sup.peon = emp2.eid AND emp2.sal > emp1.sal
WITH RESULTDISTRIBUTION MONTECARLO(512)`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pq.Run(mcdbr.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Dist.Samples) != 512 {
			b.Fatalf("samples = %d", len(res.Dist.Samples))
		}
	}
}

// BenchmarkKernel_Fig2SelfJoin_Interp measures the Fig. 2 salary
// inversion self-join (cross-seed final predicate) with kernels
// disabled.
func BenchmarkKernel_Fig2SelfJoin_Interp(b *testing.B) {
	b.ReportAllocs()
	benchKernelFig2(b, false)
}

// BenchmarkKernel_Fig2SelfJoin_Vec is the kernel counterpart.
func BenchmarkKernel_Fig2SelfJoin_Vec(b *testing.B) {
	b.ReportAllocs()
	benchKernelFig2(b, true)
}
