// Command mcdbr-lint runs the project's invariant analyzers
// (DESIGN.md §11) over Go packages. It is both a standalone
// multichecker and a `go vet` tool:
//
//	go run ./cmd/mcdbr-lint ./...          # standalone, as in CI
//	go vet -vettool=$(which mcdbr-lint) ./...
//
// Standalone mode loads packages itself (including _test.go files via
// test variants) and exits 1 if any analyzer reports a finding. As a
// vettool it speaks the go vet unit-checker protocol: the go command
// invokes it once per package with a JSON .cfg file describing the
// compiled package, and once with -V=full for the build cache.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/load"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// `go vet` probes its tool with -V=full before anything else and
	// caches on the reply; answer in the "<name> version <x>" shape
	// the go command checks for.
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "-V") {
		// The go command parses `<name> version devel ... buildID=<id>`
		// and caches vet results under the id, so derive it from the
		// binary's content: a rebuilt tool must invalidate old results.
		fmt.Printf("%s version devel buildID=%s\n", progName(), selfID())
		return 0
	}
	// `go vet` also asks which analyzer flags the tool supports (JSON
	// array of {Name,Bool,Usage}); the mcdbr suite exposes none.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return 0
	}

	fs := flag.NewFlagSet("mcdbr-lint", flag.ExitOnError)
	listOnly := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: mcdbr-lint [-list] [package pattern ...]\n")
		fmt.Fprintf(fs.Output(), "       mcdbr-lint <vet-config>.cfg   (go vet -vettool protocol)\n\n")
		fmt.Fprintf(fs.Output(), "Analyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listOnly {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	rest := fs.Args()

	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVet(rest[0])
	}
	return runStandalone(rest)
}

func progName() string {
	return strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
}

// selfID hashes the running executable for the -V=full handshake.
func selfID() string {
	exe, err := os.Executable()
	if err == nil {
		if data, rerr := os.ReadFile(exe); rerr == nil {
			sum := sha256.Sum256(data)
			h := fmt.Sprintf("%x", sum[:12])
			return h + "/" + h
		}
	}
	return "unknown/unknown"
}

// runStandalone is multichecker mode: load, analyze, print findings.
func runStandalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := load.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcdbr-lint:", err)
		return 2
	}
	pkgs, err := load.Dir(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcdbr-lint:", err)
		return 2
	}
	diags, err := load.Run(pkgs, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcdbr-lint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mcdbr-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// runVet is the unit-checker protocol: one package per invocation,
// described by a vet config, with an (empty) facts file written for
// the go command.
func runVet(cfgPath string) int {
	cfg, err := load.ReadVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcdbr-lint:", err)
		return 2
	}
	// Dependencies are visited facts-only; the mcdbr analyzers keep no
	// facts, so only the facts file is owed.
	if cfg.VetxOnly {
		if err := cfg.FinishVetx(); err != nil {
			fmt.Fprintln(os.Stderr, "mcdbr-lint:", err)
			return 2
		}
		return 0
	}
	pkg, err := load.LoadVetPackage(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			_ = cfg.FinishVetx()
			return 0
		}
		fmt.Fprintln(os.Stderr, "mcdbr-lint:", err)
		return 2
	}
	diags, err := load.Run([]*load.Package{pkg}, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcdbr-lint:", err)
		return 2
	}
	if err := cfg.FinishVetx(); err != nil {
		fmt.Fprintln(os.Stderr, "mcdbr-lint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
