package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/load"
)

// TestTreeClean is the acceptance gate in test form: the whole tree —
// including _test.go files via test variants — must pass every
// analyzer. A fresh violation anywhere fails this test before CI even
// reaches the dedicated lint step.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	root, err := load.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := load.Dir(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the sweep is not seeing the tree", len(pkgs))
	}
	diags, err := load.Run(pkgs, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// buildLint compiles the mcdbr-lint binary once per test run.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mcdbr-lint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building mcdbr-lint: %v\n%s", err, out)
	}
	return bin
}

// writeModule lays out a throwaway module named repro (so the
// deterministic-package paths match) with the given files.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module repro\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const badGibbs = `package gibbs

import "time"

func Stamp() time.Time { return time.Now() }
`

const goodGibbs = `package gibbs

import "time"

func Stamp() time.Time {
	return time.Now() //mcdbr:nondet ok(synthetic fixture)
}
`

// TestStandaloneFindsSyntheticViolation seeds the ISSUE's example —
// time.Now() in internal/gibbs — into a scratch module and checks the
// standalone multichecker fails on it and passes once suppressed.
func TestStandaloneFindsSyntheticViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to the go tool")
	}
	bin := buildLint(t)
	dir := writeModule(t, map[string]string{
		"internal/gibbs/bad.go": badGibbs,
		"bench_test.go": `package repro

import "testing"

func BenchmarkNoAllocs(b *testing.B) {
	for i := 0; i < b.N; i++ {
	}
}
`,
	})

	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("expected findings, got success:\n%s", out)
	}
	for _, want := range []string{"detsource", "time.Now", "benchallocs", "BenchmarkNoAllocs"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// Suppress the violation: the tree must go green.
	if err := os.WriteFile(filepath.Join(dir, "internal/gibbs/bad.go"), []byte(goodGibbs), 0o666); err != nil {
		t.Fatal(err)
	}
	cmd = exec.Command(bin, "./internal/...")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("expected clean run after suppression: %v\n%s", err, out)
	}
}

// TestVettool exercises the `go vet -vettool` unit-checker protocol
// end to end: -V=full handshake, per-package .cfg invocations
// (including facts-only dependency visits), and diagnostic reporting
// through the go command.
func TestVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to the go tool")
	}
	bin := buildLint(t)

	// The version handshake the go command caches on.
	var verOut bytes.Buffer
	ver := exec.Command(bin, "-V=full")
	ver.Stdout = &verOut
	if err := ver.Run(); err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	if !strings.Contains(verOut.String(), "mcdbr-lint version") {
		t.Fatalf("-V=full output %q lacks the name/version shape the go command checks", verOut.String())
	}

	dir := writeModule(t, map[string]string{"internal/gibbs/bad.go": badGibbs})
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet expected to fail on the synthetic violation:\n%s", out)
	}
	if !strings.Contains(string(out), "time.Now") || !strings.Contains(string(out), "detsource") {
		t.Errorf("go vet output missing the detsource finding:\n%s", out)
	}

	if err := os.WriteFile(filepath.Join(dir, "internal/gibbs/bad.go"), []byte(goodGibbs), 0o666); err != nil {
		t.Fatal(err)
	}
	cmd = exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet expected clean after suppression: %v\n%s", err, out)
	}
}
