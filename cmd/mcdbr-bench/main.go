// Command mcdbr-bench regenerates the paper's evaluation artifacts (see
// DESIGN.md §2 and EXPERIMENTS.md):
//
//	mcdbr-bench -exp E1            Appendix D timing (MCDB-R vs naive MCDB)
//	mcdbr-bench -exp E2            Figure 5 accuracy study
//	mcdbr-bench -exp E2 -ecdf f.csv  ... also dump the Figure 5 plot data
//	mcdbr-bench -exp E3            §1 naive-Monte-Carlo cost numbers
//	mcdbr-bench -exp E4            Appendix C parameter selection
//	mcdbr-bench -exp E5            Appendix B heavy-tail regime
//	mcdbr-bench -exp E6            adaptive stopping vs fixed budget
//	mcdbr-bench -exp all           everything
//
// -scalediv shrinks the TPC-H-like workload (paper scale / scalediv);
// -runs sets the number of Figure 5 repetitions (paper: 20).
//
// -benchjson converts `go test -bench` output piped on stdin into a JSON
// array for the performance trajectory:
//
//	go test -bench 'Prepared|Serve' -benchtime=1x -run '^$' . | mcdbr-bench -benchjson
//
// -compare gates a new benchmark artifact against a committed baseline:
//
//	mcdbr-bench -compare BENCH_10.json new.json
//
// Every benchmark in the baseline must be present in the new artifact,
// must not regress ns/op by more than -tolerance (fractional, default
// 0.15), and must not grow allocs/op at all. With -min-speedup > 0,
// benchmarks reporting a "speedup" metric must stay at or above it —
// the portable check CI leans on, since ns/op varies across runners
// while a same-process speedup ratio and exact allocation counts do
// not.
//
// -trace out.json emits an mcdbr-loadgen replayable trace of the
// benchmark's TPC-H-like statements (fixed at -fixed-n plus the
// -target-err adaptive variant), linking the experiment harness to the
// serving load harness:
//
//	mcdbr-bench -trace trace.json && mcdbr-loadgen -replay trace.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/loadgen"
	"repro/mcdbr"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: E1, E2, E3, E4, E5, E6, or all")
	scaleDiv := flag.Int("scalediv", 100, "TPC-H-like workload is paper scale divided by this")
	runs := flag.Int("runs", 20, "number of Figure 5 repetitions (E2)")
	seed := flag.Uint64("seed", 42, "master PRNG seed")
	workers := flag.Int("workers", 0, "worker goroutines for replicate-sharded execution (1 = sequential, 0 = NumCPU)")
	targetErr := flag.Float64("target-err", 0.005, "E6 adaptive stopping target: relative CI half-width")
	confidence := flag.Float64("confidence", 0.95, "E6 confidence level for the stopping CI")
	fixedN := flag.Int("fixed-n", 16384, "E6 fixed replicate budget the adaptive run is compared against (also its cap)")
	ecdfOut := flag.String("ecdf", "", "write Figure 5 ECDF series to this CSV file (E2)")
	benchJSON := flag.Bool("benchjson", false, "read `go test -bench` output from stdin and write JSON results to stdout")
	compare := flag.Bool("compare", false, "compare two -benchjson artifacts (old new) and fail on regression")
	tolerance := flag.Float64("tolerance", 0.15, "-compare: allowed fractional ns/op regression")
	minSpeedup := flag.Float64("min-speedup", 0, "-compare: required value of the speedup metric where reported (0 = off)")
	traceOut := flag.String("trace", "", "write an mcdbr-loadgen replayable trace of the benchmark statements to this file and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	if *benchJSON {
		if err := emitBenchJSON(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mcdbr-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "mcdbr-bench: -compare needs exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		if err := compareBench(flag.Arg(0), flag.Arg(1), *tolerance, *minSpeedup, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mcdbr-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *traceOut != "" {
		if err := emitTrace(*traceOut, *runs, *fixedN, *targetErr, *confidence, *scaleDiv, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "mcdbr-bench:", err)
			os.Exit(1)
		}
		return
	}

	// flushProfiles finalizes both profiles; it runs on normal exit via
	// defer AND from fail(), since os.Exit skips defers and a truncated
	// CPU profile is unreadable by go tool pprof.
	flushed := false
	flushProfiles := func() {
		if flushed {
			return
		}
		flushed = true
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mcdbr-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle accounting before the heap snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mcdbr-bench:", err)
			}
		}
	}
	defer flushProfiles()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcdbr-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "mcdbr-bench:", err)
			os.Exit(1)
		}
	}

	engineOpts := []mcdbr.Option{mcdbr.WithParallelism(*workers)}
	want := strings.ToUpper(*exp)
	run := func(name string) bool { return want == "ALL" || want == name }
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "mcdbr-bench:", err)
		flushProfiles()
		os.Exit(1)
	}

	if run("E1") {
		res, err := experiments.RunE1(*scaleDiv, *seed, engineOpts...)
		if err != nil {
			fail(err)
		}
		res.Print(os.Stdout)
		fmt.Println()
	}
	if run("E2") {
		res, err := experiments.RunE2(*scaleDiv, *runs, *seed, engineOpts...)
		if err != nil {
			fail(err)
		}
		res.Print(os.Stdout)
		if *ecdfOut != "" {
			f, err := os.Create(*ecdfOut)
			if err != nil {
				fail(err)
			}
			res.PrintECDFs(f)
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Printf("  wrote Figure 5 plot data to %s\n", *ecdfOut)
		}
		fmt.Println()
	}
	if run("E3") {
		res, err := experiments.RunE3(*seed, engineOpts...)
		if err != nil {
			fail(err)
		}
		res.Print(os.Stdout)
		fmt.Println()
	}
	if run("E4") {
		rows, err := experiments.RunE4(*seed)
		if err != nil {
			fail(err)
		}
		experiments.PrintE4(os.Stdout, rows)
		fmt.Println()
	}
	if run("E5") {
		rows, err := experiments.RunE5(*seed, engineOpts...)
		if err != nil {
			fail(err)
		}
		experiments.PrintE5(os.Stdout, rows)
		fmt.Println()
	}
	if run("E6") {
		res, err := experiments.RunE6(*scaleDiv, *fixedN, *targetErr, *confidence, *seed, engineOpts...)
		if err != nil {
			fail(err)
		}
		res.Print(os.Stdout)
		fmt.Println()
	}
}

// emitTrace writes a loadgen trace over the Appendix D benchmark
// statements: the fixed -fixed-n run and the -target-err adaptive
// variant, mixed 2:1 at a gentle uniform rate so the trace replays
// against the loadgen "tpch" smoke-scale preset out of the box.
// Replays use the preset's engine, so the trace records the bench
// parameters in its note rather than the full dataset.
func emitTrace(path string, runs, fixedN int, targetErr, confidence float64, scaleDiv int, seed uint64) error {
	const where = `WHERE r.o_orderkey = l.l_orderkey AND (r.o_yr = 1994 OR r.o_yr = 1995)`
	queries := []loadgen.QuerySpec{
		{
			SQL:    fmt.Sprintf("SELECT SUM(r.val) FROM random_ord AS r, lineitem AS l\n%s\nWITH RESULTDISTRIBUTION MONTECARLO(%d)", where, fixedN),
			Weight: 2,
		},
		{
			SQL: fmt.Sprintf("SELECT SUM(r.val) FROM random_ord AS r, lineitem AS l\n%s\nWITH RESULTDISTRIBUTION MONTECARLO(UNTIL ERROR < %g AT %g%%, MAX %d)",
				where, targetErr, confidence*100, fixedN),
			Weight:   1,
			Priority: "batch",
		},
	}
	if runs < 1 {
		runs = 1
	}
	// Uniform 2 qps: runs events take runs/2 seconds of replay.
	dur := time.Duration(runs) * 500 * time.Millisecond
	tr, err := loadgen.GenerateMix("tpch", queries, loadgen.ArrivalUniform, 2, dur+time.Millisecond, seed)
	if err != nil {
		return err
	}
	tr.Note = fmt.Sprintf("mcdbr-bench -scalediv %d -fixed-n %d -target-err %g -confidence %g -seed %d (replay runs at the tpch preset's smoke scale)",
		scaleDiv, fixedN, targetErr, confidence, seed)
	if err := tr.WriteFile(path); err != nil {
		return err
	}
	fmt.Printf("wrote %d-event loadgen trace to %s (replay: mcdbr-loadgen -replay %s)\n", len(tr.Events), path, path)
	return nil
}

// benchResult is one parsed `go test -bench` line.
type benchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// emitBenchJSON parses benchmark lines of the form
//
//	BenchmarkName-8   123   4567 ns/op   9.9 queries/s   2 allocs/op
//
// from r and writes them to w as a JSON array, so CI can archive serving
// and experiment benchmarks as machine-readable trajectory points.
// Non-benchmark lines are ignored.
func emitBenchJSON(r io.Reader, w io.Writer) error {
	var results []benchResult
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := benchResult{
			Name:       strings.TrimSuffix(fields[0], "-"+lastDashSuffix(fields[0])),
			Iterations: iters,
		}
		// The remainder alternates value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if fields[i+1] == "ns/op" {
				res.NsPerOp = v
				continue
			}
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[fields[i+1]] = v
		}
		results = append(results, res)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// lastDashSuffix returns the GOMAXPROCS suffix of a benchmark name
// ("BenchmarkX-8" -> "8"), or "" when absent.
func lastDashSuffix(name string) string {
	if i := strings.LastIndexByte(name, '-'); i >= 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[i+1:]
		}
	}
	return ""
}
