// Command mcdbr-bench regenerates the paper's evaluation artifacts (see
// DESIGN.md §2 and EXPERIMENTS.md):
//
//	mcdbr-bench -exp E1            Appendix D timing (MCDB-R vs naive MCDB)
//	mcdbr-bench -exp E2            Figure 5 accuracy study
//	mcdbr-bench -exp E2 -ecdf f.csv  ... also dump the Figure 5 plot data
//	mcdbr-bench -exp E3            §1 naive-Monte-Carlo cost numbers
//	mcdbr-bench -exp E4            Appendix C parameter selection
//	mcdbr-bench -exp E5            Appendix B heavy-tail regime
//	mcdbr-bench -exp all           everything
//
// -scalediv shrinks the TPC-H-like workload (paper scale / scalediv);
// -runs sets the number of Figure 5 repetitions (paper: 20).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/mcdbr"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: E1, E2, E3, E4, E5, or all")
	scaleDiv := flag.Int("scalediv", 100, "TPC-H-like workload is paper scale divided by this")
	runs := flag.Int("runs", 20, "number of Figure 5 repetitions (E2)")
	seed := flag.Uint64("seed", 42, "master PRNG seed")
	workers := flag.Int("workers", 0, "worker goroutines for replicate-sharded execution (1 = sequential, 0 = NumCPU)")
	ecdfOut := flag.String("ecdf", "", "write Figure 5 ECDF series to this CSV file (E2)")
	flag.Parse()

	engineOpts := []mcdbr.Option{mcdbr.WithParallelism(*workers)}
	want := strings.ToUpper(*exp)
	run := func(name string) bool { return want == "ALL" || want == name }
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "mcdbr-bench:", err)
		os.Exit(1)
	}

	if run("E1") {
		res, err := experiments.RunE1(*scaleDiv, *seed, engineOpts...)
		if err != nil {
			fail(err)
		}
		res.Print(os.Stdout)
		fmt.Println()
	}
	if run("E2") {
		res, err := experiments.RunE2(*scaleDiv, *runs, *seed, engineOpts...)
		if err != nil {
			fail(err)
		}
		res.Print(os.Stdout)
		if *ecdfOut != "" {
			f, err := os.Create(*ecdfOut)
			if err != nil {
				fail(err)
			}
			res.PrintECDFs(f)
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Printf("  wrote Figure 5 plot data to %s\n", *ecdfOut)
		}
		fmt.Println()
	}
	if run("E3") {
		res, err := experiments.RunE3(*seed, engineOpts...)
		if err != nil {
			fail(err)
		}
		res.Print(os.Stdout)
		fmt.Println()
	}
	if run("E4") {
		rows, err := experiments.RunE4(*seed)
		if err != nil {
			fail(err)
		}
		experiments.PrintE4(os.Stdout, rows)
		fmt.Println()
	}
	if run("E5") {
		rows, err := experiments.RunE5(*seed, engineOpts...)
		if err != nil {
			fail(err)
		}
		experiments.PrintE5(os.Stdout, rows)
		fmt.Println()
	}
}
