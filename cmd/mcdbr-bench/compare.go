package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// compareBench is the CI regression gate over two -benchjson artifacts.
// Every baseline benchmark must appear in the new artifact; for each,
// ns/op may regress by at most the tolerance fraction, allocs/op may
// not grow at all (allocation counts are deterministic, so any growth
// is a real code change, not noise), and — when minSpeedup > 0 — a
// reported "speedup" metric must stay at or above it. Benchmarks only
// in the new artifact pass through unchecked: adding coverage is not a
// regression.
func compareBench(oldPath, newPath string, tolerance, minSpeedup float64, w io.Writer) error {
	oldRes, err := loadBenchJSON(oldPath)
	if err != nil {
		return err
	}
	newRes, err := loadBenchJSON(newPath)
	if err != nil {
		return err
	}
	byName := make(map[string]benchResult, len(newRes))
	for _, r := range newRes {
		byName[r.Name] = r
	}
	var failures []string
	fail := func(format string, args ...interface{}) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}
	for _, old := range oldRes {
		cur, ok := byName[old.Name]
		if !ok {
			fail("%s: present in %s but missing from %s", old.Name, oldPath, newPath)
			continue
		}
		status := "ok"
		if old.NsPerOp > 0 && cur.NsPerOp > old.NsPerOp*(1+tolerance) {
			fail("%s: ns/op regressed %.0f -> %.0f (+%.1f%%, tolerance %.1f%%)",
				old.Name, old.NsPerOp, cur.NsPerOp,
				100*(cur.NsPerOp/old.NsPerOp-1), 100*tolerance)
			status = "FAIL"
		}
		if oldAllocs, ok := old.Metrics["allocs/op"]; ok {
			curAllocs, ok := cur.Metrics["allocs/op"]
			if !ok {
				fail("%s: baseline reports allocs/op but the new artifact does not (ReportAllocs dropped?)", old.Name)
				status = "FAIL"
			} else if curAllocs > oldAllocs {
				fail("%s: allocs/op grew %.0f -> %.0f", old.Name, oldAllocs, curAllocs)
				status = "FAIL"
			}
		}
		if minSpeedup > 0 {
			if _, ok := old.Metrics["speedup"]; ok {
				if sp, ok := cur.Metrics["speedup"]; !ok || sp < minSpeedup {
					fail("%s: speedup %.2fx below required %.2fx", old.Name, sp, minSpeedup)
					status = "FAIL"
				}
			}
		}
		fmt.Fprintf(w, "%-4s %s: %.0f -> %.0f ns/op\n", status, old.Name, old.NsPerOp, cur.NsPerOp)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark regression(s):\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(w, "all %d baseline benchmarks within tolerance\n", len(oldRes))
	return nil
}

// loadBenchJSON reads one -benchjson artifact.
func loadBenchJSON(path string) ([]benchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var res []benchResult
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return res, nil
}
