package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeArtifact marshals results to a temp -benchjson file.
func writeArtifact(t *testing.T, name string, res []benchResult) string {
	t.Helper()
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareBench(t *testing.T) {
	base := []benchResult{
		{Name: "BenchmarkA", Iterations: 10, NsPerOp: 1000, Metrics: map[string]float64{"allocs/op": 4}},
		{Name: "BenchmarkB", Iterations: 10, NsPerOp: 2000, Metrics: map[string]float64{"speedup": 2.5}},
	}
	old := writeArtifact(t, "old.json", base)

	cases := []struct {
		name       string
		next       []benchResult
		tolerance  float64
		minSpeedup float64
		wantErr    string
	}{
		{
			name: "within tolerance",
			next: []benchResult{
				{Name: "BenchmarkA", NsPerOp: 1100, Metrics: map[string]float64{"allocs/op": 4}},
				{Name: "BenchmarkB", NsPerOp: 2100, Metrics: map[string]float64{"speedup": 2.4}},
			},
			tolerance: 0.15, minSpeedup: 2.0,
		},
		{
			name: "ns/op regression",
			next: []benchResult{
				{Name: "BenchmarkA", NsPerOp: 1300, Metrics: map[string]float64{"allocs/op": 4}},
				{Name: "BenchmarkB", NsPerOp: 2000, Metrics: map[string]float64{"speedup": 2.5}},
			},
			tolerance: 0.15,
			wantErr:   "ns/op regressed",
		},
		{
			name: "allocs growth fails even inside tolerance",
			next: []benchResult{
				{Name: "BenchmarkA", NsPerOp: 1000, Metrics: map[string]float64{"allocs/op": 5}},
				{Name: "BenchmarkB", NsPerOp: 2000, Metrics: map[string]float64{"speedup": 2.5}},
			},
			tolerance: 0.15,
			wantErr:   "allocs/op grew",
		},
		{
			name: "missing benchmark",
			next: []benchResult{
				{Name: "BenchmarkA", NsPerOp: 1000, Metrics: map[string]float64{"allocs/op": 4}},
			},
			tolerance: 0.15,
			wantErr:   "missing from",
		},
		{
			name: "speedup below floor",
			next: []benchResult{
				{Name: "BenchmarkA", NsPerOp: 1000, Metrics: map[string]float64{"allocs/op": 4}},
				{Name: "BenchmarkB", NsPerOp: 2000, Metrics: map[string]float64{"speedup": 1.2}},
			},
			tolerance: 0.15, minSpeedup: 1.5,
			wantErr: "speedup",
		},
		{
			name: "speedup ignored when gate is off",
			next: []benchResult{
				{Name: "BenchmarkA", NsPerOp: 1000, Metrics: map[string]float64{"allocs/op": 4}},
				{Name: "BenchmarkB", NsPerOp: 2000, Metrics: map[string]float64{"speedup": 1.2}},
			},
			tolerance: 0.15,
		},
		{
			name: "extra new benchmarks pass through",
			next: []benchResult{
				{Name: "BenchmarkA", NsPerOp: 1000, Metrics: map[string]float64{"allocs/op": 4}},
				{Name: "BenchmarkB", NsPerOp: 2000, Metrics: map[string]float64{"speedup": 2.5}},
				{Name: "BenchmarkC", NsPerOp: 99999},
			},
			tolerance: 0.15, minSpeedup: 2.0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			next := writeArtifact(t, "new.json", tc.next)
			err := compareBench(old, next, tc.tolerance, tc.minSpeedup, io.Discard)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected failure: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
			}
		})
	}
}
