// Command mcdbr-serve runs the MCDB-R engine as a concurrent HTTP JSON
// query service (see internal/server):
//
//	mcdbr-serve -addr :8080 -load means=means.csv -init schema.sql
//
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/tables
//	curl -s -d '{"sql":"SELECT SUM(val) AS t FROM Losses WITH RESULTDISTRIBUTION MONTECARLO(200)"}' localhost:8080/query
//	curl -s -d '{"sql":"EXPLAIN SELECT SUM(val) AS t FROM Losses WITH RESULTDISTRIBUTION MONTECARLO(200)"}' localhost:8080/explain
//
// -init points at a semicolon-separated SQL-ish script (typically CREATE
// TABLE ... FOR EACH statements defining random tables) executed before
// the listener starts. The server stops gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/sqlish"
	"repro/internal/storage"
	"repro/mcdbr"
)

type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }
func (l *loadFlags) Set(s string) error {
	*l = append(*l, s)
	return nil
}

func main() {
	var loads loadFlags
	flag.Var(&loads, "load", "load a CSV table: name=path (repeatable)")
	addr := flag.String("addr", ":8080", "listen address")
	initScript := flag.String("init", "", "SQL-ish script executed at startup (CREATE TABLE ... statements)")
	seed := flag.Uint64("seed", 42, "master PRNG seed")
	window := flag.Int("window", 1024, "stream values materialized per TS-seed per run")
	workers := flag.Int("workers", 0, "worker goroutines per query for replicate-sharded execution (1 = sequential, 0 = NumCPU)")
	maxConcurrent := flag.Int("max-concurrent", 0, "simultaneously executing queries (0 = NumCPU)")
	maxQueue := flag.Int("max-queue", 0, "admission queue depth; requests beyond it are shed with 429 (0 = 4x max-concurrent, <0 = no queue)")
	queueWait := flag.Duration("queue-wait", 2*time.Second, "longest a request may wait in the admission queue before a 429")
	defaultDeadline := flag.Duration("default-deadline", 0, "per-query execution deadline, also the cap on request deadline_ms (0 = none)")
	maxSamplesCap := flag.Int("max-samples-cap", 0, "server-wide cap on per-request sample budgets: fixed-N requests above it are rejected, adaptive budgets are clamped (0 = none)")
	planCache := flag.Int("plan-cache", 0, "prepared-plan LRU capacity (0 = default 64)")
	samples := flag.Int("samples", 0, "default tail-sampling budget N (0 = choose via Appendix C)")
	maxQueryBytes := flag.Int64("max-query-bytes", 0, "per-query executor memory budget in bytes; queries exceeding it fail instead of exhausting memory (0 = unbounded)")
	grace := flag.Duration("grace", 10*time.Second, "graceful-shutdown timeout")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	flag.Parse()

	sopts := server.Options{
		MaxConcurrent:   *maxConcurrent,
		MaxQueue:        *maxQueue,
		QueueWait:       *queueWait,
		DefaultDeadline: *defaultDeadline,
		MaxSamplesCap:   *maxSamplesCap,
		Tail:            mcdbr.TailSampleOptions{TotalSamples: *samples},
	}
	if err := run(loads, *addr, *initScript, *pprofAddr, *seed, *window, *workers, *planCache, *maxQueryBytes, *grace, sopts); err != nil {
		fmt.Fprintln(os.Stderr, "mcdbr-serve:", err)
		os.Exit(1)
	}
}

// servePprof starts the opt-in profiling listener on its own mux (never
// the query mux, so profiles are not exposed on the public address).
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			fmt.Fprintln(os.Stderr, "mcdbr-serve: pprof:", err)
		}
	}()
}

func run(loads loadFlags, addr, initScript, pprofAddr string, seed uint64, window, workers, planCache int, maxQueryBytes int64, grace time.Duration, sopts server.Options) error {
	engine := mcdbr.New(
		mcdbr.WithSeed(seed),
		mcdbr.WithWindow(window),
		mcdbr.WithParallelism(workers),
		mcdbr.WithPlanCacheSize(planCache),
		mcdbr.WithMaxQueryBytes(maxQueryBytes),
	)
	for _, spec := range loads {
		parts := strings.SplitN(spec, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad -load %q, want name=path", spec)
		}
		t, err := storage.LoadCSV(parts[0], parts[1])
		if err != nil {
			return err
		}
		engine.RegisterTable(t)
		fmt.Printf("loaded %s\n", t)
	}
	if initScript != "" {
		src, err := os.ReadFile(initScript)
		if err != nil {
			return err
		}
		for _, stmt := range sqlish.SplitStatements(string(src)) {
			if _, err := engine.Exec(stmt); err != nil {
				return fmt.Errorf("init script: %w", err)
			}
		}
		fmt.Printf("ran init script %s\n", initScript)
	}

	srv := server.New(engine, sopts)

	if pprofAddr != "" {
		servePprof(pprofAddr)
		fmt.Printf("pprof listening on http://%s/debug/pprof/\n", pprofAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	fmt.Printf("mcdbr-serve listening on %s (max %d concurrent queries)\n", addr, srv.MaxConcurrent())
	return srv.Serve(ctx, addr, grace)
}
