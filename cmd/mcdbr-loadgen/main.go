// Command mcdbr-loadgen drives an mcdbr-serve instance (or an
// in-process server) with a deterministic open-loop workload and
// reports latency percentiles, throughput, shed rate and degraded rate
// (DESIGN.md §12).
//
// Generate-and-run against an in-process server:
//
//	mcdbr-loadgen -preset quickstart -arrival poisson -rate 40 -duration 2s
//
// Record a trace, then replay it (regression runs replay the same file
// forever):
//
//	mcdbr-loadgen -preset fig2 -arrival burst -rate 30 -record trace.json
//	mcdbr-loadgen -replay trace.json -max-concurrent 2 -out BENCH_9.json
//
// Run the PR 9 acceptance suite (steady / burst / degrade scenarios):
//
//	mcdbr-loadgen -suite -out BENCH_9.json
//
// Against a live server: add -url http://host:port.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/loadgen"
	"repro/internal/server"
)

func main() {
	preset := flag.String("preset", "quickstart", "workload preset: "+strings.Join(loadgen.PresetNames(), ", "))
	arrival := flag.String("arrival", "poisson", "arrival process: poisson, uniform, burst")
	rate := flag.Float64("rate", 20, "nominal arrival rate (queries/s)")
	duration := flag.Duration("duration", 2*time.Second, "length of the generated trace")
	seed := flag.Uint64("seed", 7, "trace PRNG seed")
	record := flag.String("record", "", "write the generated trace to this file before running")
	replay := flag.String("replay", "", "replay this trace file instead of generating one")
	url := flag.String("url", "", "target server base URL (empty: serve the preset in-process)")
	out := flag.String("out", "", "write the JSON report to this file")
	failOnShed := flag.Bool("fail-on-shed", false, "exit nonzero if the report shows any shed requests")
	suite := flag.Bool("suite", false, "run the steady/burst/degrade acceptance suite instead of a single trace")
	timeout := flag.Duration("timeout", 0, "client-side per-request timeout (0: none)")
	maxConcurrent := flag.Int("max-concurrent", 4, "in-process server: concurrent query slots")
	maxQueue := flag.Int("max-queue", 0, "in-process server: admission queue depth (0: 4x slots, <0: no queue)")
	queueWait := flag.Duration("queue-wait", 2*time.Second, "in-process server: max time a request may queue")
	defaultDeadline := flag.Duration("default-deadline", 0, "in-process server: per-query execution deadline (0: none)")
	maxSamplesCap := flag.Int("max-samples-cap", 0, "in-process server: hard cap on per-request sample budgets (0: none)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *suite {
		rep, ok, err := loadgen.RunSuite(ctx, os.Stdout)
		if err != nil {
			fail(err)
		}
		if *out != "" {
			if err := rep.WriteFile(*out); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *out)
		}
		if !ok {
			fail(fmt.Errorf("acceptance suite failed (see checks above)"))
		}
		return
	}

	var tr *loadgen.Trace
	var err error
	if *replay != "" {
		tr, err = loadgen.ReadTrace(*replay)
	} else {
		var p *loadgen.Preset
		var arr loadgen.Arrival
		if p, err = loadgen.LookupPreset(*preset); err == nil {
			if arr, err = loadgen.ParseArrival(*arrival); err == nil {
				tr, err = loadgen.Generate(p, arr, *rate, *duration, *seed)
			}
		}
	}
	if err != nil {
		fail(err)
	}
	if *record != "" {
		if err := tr.WriteFile(*record); err != nil {
			fail(err)
		}
		fmt.Printf("recorded %d events to %s\n", len(tr.Events), *record)
	}

	target := *url
	if target == "" {
		p, err := loadgen.LookupPreset(tr.Preset)
		if err != nil {
			fail(err)
		}
		engine, err := p.Setup()
		if err != nil {
			fail(err)
		}
		ts := httptest.NewServer(server.New(engine, server.Options{
			MaxConcurrent:   *maxConcurrent,
			MaxQueue:        *maxQueue,
			QueueWait:       *queueWait,
			DefaultDeadline: *defaultDeadline,
			MaxSamplesCap:   *maxSamplesCap,
		}).Handler())
		defer ts.Close()
		target = ts.URL
	}

	rep, err := loadgen.Run(ctx, tr, loadgen.Options{URL: target, Timeout: *timeout})
	if err != nil {
		fail(err)
	}
	rep.Print(os.Stdout)
	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if rep.Errors > 0 {
		fail(fmt.Errorf("%d requests failed outright", rep.Errors))
	}
	if *failOnShed && rep.Shed > 0 {
		fail(fmt.Errorf("-fail-on-shed: %d requests shed (rate %.3f)", rep.Shed, rep.ShedRate))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mcdbr-loadgen:", err)
	os.Exit(1)
}
