package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/workload"
)

func TestSplitStatements(t *testing.T) {
	src := "CREATE TABLE x (a) AS FOR EACH a IN p WITH v AS Normal(VALUES(1,1)) SELECT v.*;\nSELECT SUM(a) FROM x WITH RESULTDISTRIBUTION MONTECARLO(5);\n-- done\n"
	stmts := splitStatements(src)
	if len(stmts) != 2 {
		t.Fatalf("statements = %d: %q", len(stmts), stmts)
	}
	// Semicolons inside strings must not split.
	stmts = splitStatements("SELECT COUNT(*) FROM t WHERE a = 'x;y'")
	if len(stmts) != 1 {
		t.Fatalf("string-embedded semicolon split: %q", stmts)
	}
	if got := splitStatements("   \n  "); got != nil {
		t.Fatalf("blank input = %q", got)
	}
}

func TestRunScript(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "means.csv")
	if err := workload.LossMeans(10, 2, 8, 3).SaveCSV(csvPath); err != nil {
		t.Fatal(err)
	}
	script := filepath.Join(dir, "script.sql")
	sql := `
CREATE TABLE Losses (CID, val) AS
FOR EACH CID IN means
WITH myVal AS Normal(VALUES(m, 1.0))
SELECT CID, myVal.* FROM myVal;

SELECT SUM(val) AS totalLoss
FROM Losses
WITH RESULTDISTRIBUTION MONTECARLO(50)
DOMAIN totalLoss >= QUANTILE(0.95)
FREQUENCYTABLE totalLoss;

SELECT MIN(totalLoss) FROM FTABLE;
`
	if err := os.WriteFile(script, []byte(sql), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(loadFlags{"means=" + csvPath}, 42, 1024, 200, 2, []string{script})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(loadFlags{"bad"}, 1, 64, 0, 1, nil); err == nil {
		t.Fatal("bad -load must error")
	}
	if err := run(nil, 1, 64, 0, 1, []string{"/nonexistent/file.sql"}); err == nil {
		t.Fatal("missing script must error")
	}
}
