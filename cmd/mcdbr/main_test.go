package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestSplitStatements(t *testing.T) {
	src := "CREATE TABLE x (a) AS FOR EACH a IN p WITH v AS Normal(VALUES(1,1)) SELECT v.*;\nSELECT SUM(a) FROM x WITH RESULTDISTRIBUTION MONTECARLO(5);\n-- done\n"
	stmts := splitStatements(src)
	if len(stmts) != 2 {
		t.Fatalf("statements = %d: %q", len(stmts), stmts)
	}
	// Semicolons inside strings must not split.
	stmts = splitStatements("SELECT COUNT(*) FROM t WHERE a = 'x;y'")
	if len(stmts) != 1 {
		t.Fatalf("string-embedded semicolon split: %q", stmts)
	}
	if got := splitStatements("   \n  "); got != nil {
		t.Fatalf("blank input = %q", got)
	}
}

func TestRunScript(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "means.csv")
	if err := workload.LossMeans(10, 2, 8, 3).SaveCSV(csvPath); err != nil {
		t.Fatal(err)
	}
	script := filepath.Join(dir, "script.sql")
	sql := `
CREATE TABLE Losses (CID, val) AS
FOR EACH CID IN means
WITH myVal AS Normal(VALUES(m, 1.0))
SELECT CID, myVal.* FROM myVal;

SELECT SUM(val) AS totalLoss
FROM Losses
WITH RESULTDISTRIBUTION MONTECARLO(50)
DOMAIN totalLoss >= QUANTILE(0.95)
FREQUENCYTABLE totalLoss;

SELECT MIN(totalLoss) FROM FTABLE;
`
	if err := os.WriteFile(script, []byte(sql), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(loadFlags{"means=" + csvPath}, 42, 1024, 200, 2, adaptiveFlags{}, []string{script})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunExplain: an EXPLAIN statement in a script prints the plan
// description instead of executing the query.
func TestRunExplain(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "means.csv")
	if err := workload.LossMeans(10, 2, 8, 3).SaveCSV(csvPath); err != nil {
		t.Fatal(err)
	}
	script := filepath.Join(dir, "explain.sql")
	sql := `
CREATE TABLE Losses (CID, val) AS
FOR EACH CID IN means
WITH myVal AS Normal(VALUES(m, 1.0))
SELECT CID, myVal.* FROM myVal;

EXPLAIN SELECT SUM(val) AS totalLoss
FROM Losses
WITH RESULTDISTRIBUTION MONTECARLO(50);
`
	if err := os.WriteFile(script, []byte(sql), 0o644); err != nil {
		t.Fatal(err)
	}
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	saved := os.Stdout
	os.Stdout = w
	runErr := run(loadFlags{"means=" + csvPath}, 42, 1024, 0, 1, adaptiveFlags{}, []string{script})
	os.Stdout = saved
	w.Close()
	out, _ := io.ReadAll(r)
	if runErr != nil {
		t.Fatal(runErr)
	}
	for _, want := range []string{"logical plan:", "rules fired:", "physical plan:", "Seed(Normal)"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunAdaptiveFlags: -target-err runs SELECTs adaptively and the
// report (samples used, CI half-width) is printed.
func TestRunAdaptiveFlags(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "means.csv")
	if err := workload.LossMeans(10, 2, 8, 3).SaveCSV(csvPath); err != nil {
		t.Fatal(err)
	}
	script := filepath.Join(dir, "adaptive.sql")
	sql := `
CREATE TABLE Losses (CID, val) AS
FOR EACH CID IN means
WITH myVal AS Normal(VALUES(m, 1.0))
SELECT CID, myVal.* FROM myVal;

SELECT SUM(val) AS totalLoss
FROM Losses
WITH RESULTDISTRIBUTION MONTECARLO(65536);
`
	if err := os.WriteFile(script, []byte(sql), 0o644); err != nil {
		t.Fatal(err)
	}
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	saved := os.Stdout
	os.Stdout = w
	ad := adaptiveFlags{targetErr: 0.01, confidence: 0.95, maxSamples: 16384}
	runErr := run(loadFlags{"means=" + csvPath}, 42, 1024, 0, 2, ad, []string{script})
	os.Stdout = saved
	w.Close()
	out, _ := io.ReadAll(r)
	if runErr != nil {
		t.Fatal(runErr)
	}
	for _, want := range []string{"adaptive: converged after", "totalLoss: mean"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(loadFlags{"bad"}, 1, 64, 0, 1, adaptiveFlags{}, nil); err == nil {
		t.Fatal("bad -load must error")
	}
	if err := run(nil, 1, 64, 0, 1, adaptiveFlags{}, []string{"/nonexistent/file.sql"}); err == nil {
		t.Fatal("missing script must error")
	}
}
