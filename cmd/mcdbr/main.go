// Command mcdbr is an interactive/scripted front end to the MCDB-R engine:
// it loads CSV tables, executes SQL-ish statements (the paper's §2
// syntax), and prints result distributions.
//
//	mcdbr -load means=means.csv script.sql
//	echo "SELECT SUM(val) AS t FROM Losses WITH RESULTDISTRIBUTION MONTECARLO(100)" | mcdbr -load means=means.csv
//
// Statements are separated by semicolons. Tail-sampling budgets are set
// with -samples.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/sqlish"
	"repro/internal/storage"
	"repro/mcdbr"
)

type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }
func (l *loadFlags) Set(s string) error {
	*l = append(*l, s)
	return nil
}

func main() {
	var loads loadFlags
	flag.Var(&loads, "load", "load a CSV table: name=path (repeatable)")
	seed := flag.Uint64("seed", 42, "master PRNG seed")
	window := flag.Int("window", 1024, "stream values materialized per TS-seed per run")
	samples := flag.Int("samples", 0, "tail-sampling budget N (0 = choose via Appendix C)")
	workers := flag.Int("workers", 0, "worker goroutines for replicate-sharded execution (1 = sequential, 0 = NumCPU); results are identical for any value")
	targetErr := flag.Float64("target-err", 0, "run SELECTs adaptively: stop once every estimate's relative CI half-width is below this (0 = fixed-N; overrides UNTIL ERROR in the statement)")
	confidence := flag.Float64("confidence", 0, "CI level for -target-err, e.g. 0.95 (0 = statement value or 95%)")
	maxSamples := flag.Int("max-samples", 0, "cap on adaptive replicates for -target-err (0 = statement value or 65536)")
	flag.Parse()

	ad := adaptiveFlags{targetErr: *targetErr, confidence: *confidence, maxSamples: *maxSamples}
	if err := run(loads, *seed, *window, *samples, *workers, ad, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "mcdbr:", err)
		os.Exit(1)
	}
}

// adaptiveFlags are the CLI's per-run stopping-rule overrides.
type adaptiveFlags struct {
	targetErr  float64
	confidence float64
	maxSamples int
}

func (a adaptiveFlags) set() bool { return a.targetErr > 0 }

func run(loads loadFlags, seed uint64, window, samples, workers int, ad adaptiveFlags, args []string) error {
	engine := mcdbr.New(mcdbr.WithSeed(seed), mcdbr.WithWindow(window), mcdbr.WithParallelism(workers))
	for _, spec := range loads {
		parts := strings.SplitN(spec, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad -load %q, want name=path", spec)
		}
		t, err := storage.LoadCSV(parts[0], parts[1])
		if err != nil {
			return err
		}
		engine.RegisterTable(t)
		fmt.Printf("loaded %s\n", t)
	}

	var src []byte
	var err error
	if len(args) > 0 {
		src, err = os.ReadFile(args[0])
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		return err
	}

	opts := mcdbr.TailSampleOptions{TotalSamples: samples}
	for _, stmt := range splitStatements(string(src)) {
		fmt.Printf("> %s\n", condense(stmt))
		res, err := execStatement(engine, stmt, opts, ad)
		if err != nil {
			return err
		}
		printResult(res)
	}
	return nil
}

// execStatement runs one statement, routing SELECTs through a prepared
// query when the -target-err flags ask for an adaptive override (CREATE
// statements are not preparable and never adaptive).
func execStatement(engine *mcdbr.Engine, stmt string, opts mcdbr.TailSampleOptions, ad adaptiveFlags) (*mcdbr.ExecResult, error) {
	if !ad.set() {
		return engine.ExecWithOptions(stmt, opts)
	}
	parsed, err := sqlish.Parse(stmt)
	if err != nil {
		return nil, err
	}
	if _, ok := parsed.(*sqlish.SelectStmt); !ok {
		return engine.ExecWithOptions(stmt, opts)
	}
	pq, err := engine.Prepare(stmt)
	if err != nil {
		return nil, err
	}
	return pq.Run(mcdbr.RunOptions{
		Tail:           opts,
		TargetRelError: ad.targetErr,
		Confidence:     ad.confidence,
		MaxSamples:     ad.maxSamples,
	})
}

// splitStatements splits on semicolons outside single-quoted strings.
func splitStatements(src string) []string { return sqlish.SplitStatements(src) }

func condense(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

func printResult(res *mcdbr.ExecResult) {
	defer printAdaptive(res.Adaptive)
	switch res.Kind {
	case mcdbr.ExecCreated:
		fmt.Println("random table defined")
	case mcdbr.ExecScalar:
		fmt.Printf("%g\n", res.Scalar)
	case mcdbr.ExecTable:
		cols := res.Table.Schema().Columns()
		names := make([]string, len(cols))
		for i, c := range cols {
			names[i] = c.Name
		}
		fmt.Println(strings.Join(names, " | "))
		for _, r := range res.Table.Rows() {
			parts := make([]string, len(r))
			for i, v := range r {
				parts[i] = v.String()
			}
			fmt.Println(strings.Join(parts, " | "))
		}
	case mcdbr.ExecDistribution:
		d := res.Dist
		fmt.Printf("result distribution: n=%d mean=%g sd=%g min=%g max=%g cvar95=%g\n",
			len(d.Samples), d.Mean(), d.Std(), d.ECDF().Min(), d.ECDF().Max(), d.CVaR(0.95))
	case mcdbr.ExecGroupedDistribution:
		g := res.Grouped
		fmt.Printf("grouped result distribution: %d group(s), aggregates: %s\n",
			len(g.Groups), strings.Join(g.AggCols, ", "))
		for i := range g.Groups {
			grp := &g.Groups[i]
			key := grp.KeyString()
			if key == "" {
				key = "(all)"
			}
			for a, d := range grp.Dists {
				fmt.Printf("  %s %s: n=%d mean=%g sd=%g cvar95=%g",
					key, g.AggCols[a], len(d.Samples), d.Mean(), d.Std(), d.CVaR(0.95))
				if grp.Inclusion < 1 {
					fmt.Printf(" (HAVING held in %.0f%% of runs)", 100*grp.Inclusion)
				}
				fmt.Println()
			}
		}
	case mcdbr.ExecGroupedTail:
		gt := res.GroupedTail
		fmt.Printf("grouped tail distribution: %d group(s), aggregate %s\n", len(gt.Groups), gt.AggCol)
		for i := range gt.Groups {
			grp := &gt.Groups[i]
			t := grp.Tail
			fmt.Printf("  %s: quantile estimate %g, expected shortfall %g, %d samples\n",
				grp.KeyString(), t.QuantileEstimate, t.ExpectedShortfall, len(t.Samples))
		}
	case mcdbr.ExecExplained:
		fmt.Print(res.Explain)
	case mcdbr.ExecTail:
		t := res.Tail
		dir := ">="
		if t.Lower {
			dir = "<="
		}
		fmt.Printf("tail distribution (%s quantile, p=%g): quantile estimate %g, expected shortfall (CVaR) %g, %d samples\n",
			dir, t.P, t.QuantileEstimate, t.ExpectedShortfall, len(t.Samples))
		fmt.Printf("  iterations: %d, replenishing runs: %d\n", len(t.Diag.Iters), t.Diag.Replenishments)
	}
}

// printAdaptive summarizes an adaptive run's stopping report: replicates
// actually used and the confidence interval of every (group, aggregate)
// estimate at the stop.
func printAdaptive(rep *mcdbr.AdaptiveReport) {
	if rep == nil {
		return
	}
	status := "converged"
	if !rep.Converged {
		status = "hit max samples"
	}
	fmt.Printf("adaptive: %s after %d samples in %d rounds (target rel err %g at %.0f%% confidence, max %d)\n",
		status, rep.SamplesUsed, rep.Rounds, rep.TargetRelError, 100*rep.Confidence, rep.MaxSamples)
	for _, ci := range rep.CIs {
		label := ci.Agg
		if ci.Group != "" {
			label = ci.Group + " " + ci.Agg
		}
		fmt.Printf("  %s: mean %g +/- %g (rel err %g, n=%d)\n", label, ci.Mean, ci.HalfWidth, ci.RelError, ci.N)
	}
}
