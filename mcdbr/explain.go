package mcdbr

import (
	"fmt"
	"strings"

	"repro/internal/exec"
	"repro/internal/gibbs"
	"repro/internal/plan"
	"repro/internal/sqlish"
)

// Explain describes how the engine would execute a query: the rewritten
// logical plan, the rewrite rules that fired, and the physical operator
// tree it lowers to. Produce one with Engine.Explain, QueryBuilder.Explain,
// or an `EXPLAIN <query>` statement through Exec.
type Explain struct {
	// Logical is the logical plan (internal/plan operators, indented),
	// annotated with row estimates and deterministic-subtree marks.
	Logical string
	// Rules lists the rewrite rules that changed the plan, in order.
	Rules []string
	// Physical is the lowered exec operator tree, with [det] marking
	// subtrees served from the materialization cache on re-execution.
	Physical string
	// FinalPred is the conjunction the Gibbs looper evaluates as its
	// final predicate (paper App. A); empty when nothing was extracted.
	FinalPred string
	// Aggregate renders the looper's aggregate.
	Aggregate string
	// Notes carries execution-strategy remarks: GROUP BY expansion, tail
	// sampling, Monte Carlo repetitions.
	Notes []string
}

// String renders the explanation as the multi-line text printed by
// cmd/mcdbr.
func (x *Explain) String() string {
	var b strings.Builder
	b.WriteString("logical plan:\n")
	writeIndented(&b, x.Logical)
	b.WriteString("rules fired:\n")
	for _, r := range x.Rules {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	b.WriteString("physical plan:\n")
	writeIndented(&b, x.Physical)
	if x.FinalPred != "" {
		fmt.Fprintf(&b, "final predicate (Gibbs looper): %s\n", x.FinalPred)
	}
	fmt.Fprintf(&b, "aggregate: %s\n", x.Aggregate)
	for _, n := range x.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func writeIndented(b *strings.Builder, block string) {
	for _, line := range strings.Split(strings.TrimRight(block, "\n"), "\n") {
		b.WriteString("  ")
		b.WriteString(line)
		b.WriteByte('\n')
	}
}

// Explain compiles the fluent query without executing it.
func (q *QueryBuilder) Explain() (x *Explain, err error) {
	defer recoverToError("Explain", &err)
	c, err := q.compile()
	if err != nil {
		return nil, err
	}
	aggs := make([]string, len(c.agg.Aggs))
	for i, s := range c.agg.Aggs {
		aggs[i] = s.String()
	}
	x = &Explain{
		Logical:   plan.Format(c.lp.Root),
		Rules:     append([]string(nil), c.lp.Fired...),
		Physical:  exec.FormatPlan(c.plan),
		Aggregate: strings.Join(aggs, ", "),
	}
	if c.gq.FinalPred != nil {
		x.FinalPred = c.gq.FinalPred.String()
	}
	bs := q.e.batchSize
	if bs <= 0 {
		bs = exec.DefaultBatchSize
	}
	x.Notes = append(x.Notes, fmt.Sprintf("streaming executor: pull-based batches of %d tuples", bs))
	return x, nil
}

// Explain parses one SQL-ish SELECT statement (a leading EXPLAIN keyword
// is optional) and returns its plan description without executing it.
func (e *Engine) Explain(sql string) (x *Explain, err error) {
	defer recoverToError("Explain", &err)
	stmt, err := sqlish.Parse(sql)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *sqlish.ExplainStmt:
		return e.explainSelect(s.Stmt)
	case *sqlish.SelectStmt:
		return e.explainSelect(s)
	default:
		return nil, fmt.Errorf("mcdbr: EXPLAIN supports SELECT statements, got %T", stmt)
	}
}

// explainSelect plans a parsed SELECT through the same builder path the
// executor uses and attaches execution-strategy notes.
func (e *Engine) explainSelect(s *sqlish.SelectStmt) (*Explain, error) {
	qb, err := e.selectBuilder(s)
	if err != nil {
		return nil, fmt.Errorf("mcdbr: EXPLAIN: %w", err)
	}
	x, err := qb.Explain()
	if err != nil {
		return nil, err
	}
	if len(s.GroupBy) > 0 {
		keys := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			keys[i] = g.String()
		}
		if s.Domain != nil {
			x.Notes = append(x.Notes,
				fmt.Sprintf("GROUP BY %s: one conditioned Gibbs run per group over one shared plan (paper App. A)", strings.Join(keys, ", ")))
		} else {
			x.Notes = append(x.Notes,
				fmt.Sprintf("GROUP BY %s: single-pass grouped aggregation (one plan run, per-group aggregate vectors)", strings.Join(keys, ", ")))
		}
	}
	reps := fmt.Sprintf("%d", s.MCReps)
	if a := s.Adaptive; a != nil {
		r := gibbs.StopRule{TargetRelError: a.TargetRelError, Confidence: a.Confidence, MaxSamples: a.MaxSamples}.Normalized()
		reps = fmt.Sprintf("adaptive UNTIL ERROR < %g AT %g%% (MAX %d)", r.TargetRelError, 100*r.Confidence, r.MaxSamples)
	}
	switch {
	case s.Domain != nil:
		dir := ">="
		if s.Domain.Lower {
			dir = "<="
		}
		x.Notes = append(x.Notes,
			fmt.Sprintf("DOMAIN %s %s QUANTILE(%g): Gibbs tail sampling, %s conditioned samples", s.Domain.Name, dir, s.Domain.Quantile, reps))
	case s.With:
		x.Notes = append(x.Notes, fmt.Sprintf("plain Monte Carlo, %s repetitions", reps))
	default:
		x.Notes = append(x.Notes, "deterministic aggregate (no RESULTDISTRIBUTION): executes as a scalar query")
	}
	return x, nil
}
