package mcdbr_test

import (
	"runtime"
	"testing"

	"repro/internal/expr"
	"repro/internal/workload"
	"repro/mcdbr"
)

const preparedSQL = `SELECT SUM(val) AS totalLoss FROM Losses WHERE CID < 10030
WITH RESULTDISTRIBUTION MONTECARLO(120)`

// TestPreparedRunMatchesExec: with the same seed, Prepare+Run must be
// bit-for-bit identical to a direct Exec, for every worker count.
func TestPreparedRunMatchesExec(t *testing.T) {
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		e := lossEngine(t, workers)
		direct, err := e.Exec(preparedSQL)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		pq, err := e.Prepare(preparedSQL)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for run := 0; run < 3; run++ {
			res, err := pq.Run(mcdbr.RunOptions{})
			if err != nil {
				t.Fatalf("workers=%d run=%d: %v", workers, run, err)
			}
			if res.Kind != mcdbr.ExecDistribution {
				t.Fatalf("kind = %v", res.Kind)
			}
			if len(res.Dist.Samples) != len(direct.Dist.Samples) {
				t.Fatalf("workers=%d: %d samples, want %d", workers, len(res.Dist.Samples), len(direct.Dist.Samples))
			}
			for i := range direct.Dist.Samples {
				if res.Dist.Samples[i] != direct.Dist.Samples[i] {
					t.Fatalf("workers=%d run=%d: sample %d = %v, want %v",
						workers, run, i, res.Dist.Samples[i], direct.Dist.Samples[i])
				}
			}
		}
	}
}

// TestPreparedSeedOverride: Run with an explicit seed matches Exec on an
// engine created with that seed, and differs from the default-seed run.
func TestPreparedSeedOverride(t *testing.T) {
	const seed = 977
	want, err := mustEngineWithSeed(t, seed).Exec(preparedSQL)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := lossEngine(t, 2).Prepare(preparedSQL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pq.Run(mcdbr.RunOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Dist.Samples {
		if res.Dist.Samples[i] != want.Dist.Samples[i] {
			t.Fatalf("sample %d = %v, want %v", i, res.Dist.Samples[i], want.Dist.Samples[i])
		}
	}
	def, err := pq.Run(mcdbr.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range def.Dist.Samples {
		if def.Dist.Samples[i] != res.Dist.Samples[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical sample vectors")
	}
}

// mustEngineWithSeed is lossEngine with a caller-chosen master seed.
func mustEngineWithSeed(t *testing.T, seed uint64) *mcdbr.Engine {
	t.Helper()
	e := mcdbr.New(mcdbr.WithSeed(seed), mcdbr.WithParallelism(2))
	e.RegisterTable(workload.LossMeans(40, 2, 8, 5))
	if err := e.DefineRandomTable(mcdbr.RandomTable{
		Name: "losses", ParamTable: "means", VG: "Normal",
		VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
		Columns:  []mcdbr.RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestPreparedSamplesAndWorkersOverride: per-run Samples replaces the
// statement's MONTECARLO count; per-run Workers changes nothing about the
// values.
func TestPreparedSamplesAndWorkersOverride(t *testing.T) {
	pq, err := lossEngine(t, 1).Prepare(preparedSQL)
	if err != nil {
		t.Fatal(err)
	}
	a, err := pq.Run(mcdbr.RunOptions{Samples: 37, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Dist.Samples) != 37 {
		t.Fatalf("samples = %d, want 37", len(a.Dist.Samples))
	}
	b, err := pq.Run(mcdbr.RunOptions{Samples: 37, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Dist.Samples {
		if a.Dist.Samples[i] != b.Dist.Samples[i] {
			t.Fatalf("worker override changed sample %d", i)
		}
	}
}

// TestPlanCacheAccounting: normalized-SQL keying, hit/miss counts, and
// DDL-epoch invalidation.
func TestPlanCacheAccounting(t *testing.T) {
	e := lossEngine(t, 1)
	h0, m0, s0 := e.PlanCacheStats()
	if h0 != 0 || m0 != 0 || s0 != 0 {
		t.Fatalf("fresh cache stats = %d/%d/%d", h0, m0, s0)
	}

	p1, err := e.Prepare(preparedSQL)
	if err != nil {
		t.Fatal(err)
	}
	if p1.CacheHit() {
		t.Fatal("first Prepare reported a cache hit")
	}
	// Same statement, different whitespace and keyword case: must hit.
	p2, err := e.Prepare(`select  SUM(val) AS totalLoss
		FROM Losses WHERE CID < 10030 with RESULTDISTRIBUTION MONTECARLO(120);`)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.CacheHit() {
		t.Fatalf("reformatted statement missed the cache (key %q vs %q)", p2.SQL(), p1.SQL())
	}
	hits, misses, size := e.PlanCacheStats()
	if hits != 1 || misses != 1 || size != 1 {
		t.Fatalf("stats = %d hits / %d misses / %d entries, want 1/1/1", hits, misses, size)
	}

	// DDL bumps the epoch: the cached plan is stale and must be re-planned.
	means, ok := e.Table("means")
	if !ok {
		t.Fatal("means missing")
	}
	e.RegisterTable(means)
	p3, err := e.Prepare(preparedSQL)
	if err != nil {
		t.Fatal(err)
	}
	if p3.CacheHit() {
		t.Fatal("Prepare after DDL must re-plan")
	}
	// And the refreshed entry serves hits again.
	p4, err := e.Prepare(preparedSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !p4.CacheHit() {
		t.Fatal("re-planned entry not cached")
	}
}

// TestPrepareRejectsNonSelect: CREATE statements are not preparable and
// must say so.
func TestPrepareRejectsNonSelect(t *testing.T) {
	e := lossEngine(t, 1)
	if _, err := e.Prepare(`CREATE TABLE x (CID, v) AS
FOR EACH CID IN means
WITH w AS Normal(VALUES(m, 1.0))
SELECT CID, w.* FROM w`); err == nil {
		t.Fatal("CREATE TABLE prepared without error")
	}
}

// TestPreparedGroupByMatchesExec: GROUP BY queries prepare like any other
// SELECT (aggregation is part of the compiled plan since ISSUE 5) and
// re-execute bit-identically to Exec.
func TestPreparedGroupByMatchesExec(t *testing.T) {
	const sql = `SELECT SUM(val) AS x, AVG(val) FROM Losses GROUP BY cid
WITH RESULTDISTRIBUTION MONTECARLO(50)`
	e := lossEngine(t, 2)
	direct, err := e.Exec(sql)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Kind != mcdbr.ExecGroupedDistribution || len(direct.Grouped.Groups) != 40 {
		t.Fatalf("direct = kind %v, %d groups", direct.Kind, len(direct.Grouped.Groups))
	}
	pq, err := e.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pq.Run(mcdbr.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Grouped.Groups) != len(direct.Grouped.Groups) {
		t.Fatalf("groups = %d, want %d", len(res.Grouped.Groups), len(direct.Grouped.Groups))
	}
	for g := range direct.Grouped.Groups {
		dg, rg := &direct.Grouped.Groups[g], &res.Grouped.Groups[g]
		if dg.KeyString() != rg.KeyString() {
			t.Fatalf("group %d key %q vs %q", g, rg.KeyString(), dg.KeyString())
		}
		for a := range dg.Dists {
			for i := range dg.Dists[a].Samples {
				if rg.Dists[a].Samples[i] != dg.Dists[a].Samples[i] {
					t.Fatalf("group %s agg %d sample %d diverged", dg.KeyString(), a, i)
				}
			}
		}
	}
	// A second Prepare of the same text hits the plan cache.
	pq2, err := e.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !pq2.CacheHit() {
		t.Fatal("grouped statement missed the plan cache on re-Prepare")
	}
}

// TestPreparedScalarFollowsCatalog: a prepared deterministic aggregate
// re-reads the catalog each run, so it sees an FTABLE registered after
// Prepare.
func TestPreparedScalarFollowsCatalog(t *testing.T) {
	e := lossEngine(t, 1)
	if _, err := e.Exec(`SELECT SUM(val) AS totalLoss FROM Losses
WITH RESULTDISTRIBUTION MONTECARLO(25)
FREQUENCYTABLE totalLoss`); err != nil {
		t.Fatal(err)
	}
	pq, err := e.Prepare(`SELECT COUNT(*) FROM FTABLE`)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := pq.Run(mcdbr.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Kind != mcdbr.ExecScalar || r1.Scalar < 1 {
		t.Fatalf("r1 = %+v", r1)
	}
}

// TestPreparedTailMatchesExec covers DOMAIN queries through the prepared
// path.
func TestPreparedTailMatchesExec(t *testing.T) {
	const sql = `SELECT SUM(val) AS totalLoss FROM Losses
WITH RESULTDISTRIBUTION MONTECARLO(30)
DOMAIN totalLoss >= QUANTILE(0.95)`
	opts := mcdbr.TailSampleOptions{TotalSamples: 120, ForceM: 2}
	e := lossEngine(t, 2)
	direct, err := e.ExecWithOptions(sql, opts)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := e.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pq.Run(mcdbr.RunOptions{Tail: opts})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tail.QuantileEstimate != direct.Tail.QuantileEstimate {
		t.Fatalf("quantile %v, want %v", res.Tail.QuantileEstimate, direct.Tail.QuantileEstimate)
	}
	for i := range direct.Tail.Samples {
		if res.Tail.Samples[i] != direct.Tail.Samples[i] {
			t.Fatalf("tail sample %d diverged", i)
		}
	}
}
