package mcdbr

// Correctness tests for the engine-level deterministic-prefix
// materialization cache (ISSUE 4): bit-identity with the cache on and
// off at every worker count, invalidation by every DDL path (CREATE
// TABLE / RegisterTable, RegisterVG, FTABLE registration), strict
// per-engine isolation, and a concurrent SELECT/DDL hammer for -race.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/expr"
	"repro/internal/prng"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/vg"
	"repro/internal/workload"
)

// prefixTestEngine builds the accounts ⋈ regions workload whose query has
// a non-trivial deterministic prefix below the random losses table.
// regionWeight parameterizes the deterministic data so invalidation tests
// can change it and observe whether results follow.
func prefixTestEngine(t testing.TB, regionWeight float64, opts ...Option) *Engine {
	t.Helper()
	e := New(append([]Option{WithSeed(11)}, opts...)...)
	e.RegisterTable(workload.LossMeans(60, 2, 8, 9))
	e.RegisterTable(regionsTable(regionWeight))
	accounts := storage.NewTable("accounts", types.NewSchema(
		types.Column{Name: "aid", Kind: types.KindInt},
		types.Column{Name: "rid", Kind: types.KindInt},
	))
	for i := 0; i < 60; i++ {
		accounts.MustAppend(types.Row{types.NewInt(int64(10000 + i)), types.NewInt(int64(i % 4))})
	}
	e.RegisterTable(accounts)
	if err := e.DefineRandomTable(RandomTable{
		Name: "losses", ParamTable: "means", VG: "Normal",
		VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
		Columns:  []RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	return e
}

func regionsTable(weight float64) *storage.Table {
	regions := storage.NewTable("regions", types.NewSchema(
		types.Column{Name: "rid", Kind: types.KindInt},
		types.Column{Name: "weight", Kind: types.KindFloat},
	))
	for r := 0; r < 4; r++ {
		regions.MustAppend(types.Row{types.NewInt(int64(r)), types.NewFloat(weight)})
	}
	return regions
}

const prefixTestSQL = `SELECT SUM(losses.val * regions.weight) AS wloss
FROM losses, accounts, regions
WHERE losses.cid = accounts.aid AND accounts.rid = regions.rid
WITH RESULTDISTRIBUTION MONTECARLO(40)`

func runPrefixQuery(t testing.TB, e *Engine, workers int) []float64 {
	t.Helper()
	pq, err := e.Prepare(prefixTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pq.Run(RunOptions{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return res.Dist.Samples
}

// TestPrefixCacheBitIdentity: equal seeds produce bit-identical samples
// with the cache enabled and disabled, at workers {1, 2, 3, NumCPU}, on
// first runs and cache-hit re-runs alike.
func TestPrefixCacheBitIdentity(t *testing.T) {
	ref := runPrefixQuery(t, prefixTestEngine(t, 1.5, WithPrefixCacheSize(-1), WithParallelism(1)), 1)
	for _, workers := range []int{1, 2, 3, runtime.NumCPU()} {
		cached := prefixTestEngine(t, 1.5)
		for round := 0; round < 3; round++ {
			got := runPrefixQuery(t, cached, workers)
			if len(got) != len(ref) {
				t.Fatalf("workers=%d round=%d: %d samples, want %d", workers, round, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("workers=%d round=%d sample %d: %v != %v", workers, round, i, got[i], ref[i])
				}
			}
		}
		hits, misses, size := cached.PrefixCacheStats()
		if hits == 0 || misses == 0 || size == 0 {
			t.Fatalf("workers=%d: prefix cache unused (hits=%d misses=%d size=%d)", workers, hits, misses, size)
		}
	}
}

// TestPrefixCacheInvalidatedByRegisterTable: replacing a table the
// deterministic prefix reads must change the results to match a fresh
// engine over the new data — a stale cached prefix would keep the old
// weights.
func TestPrefixCacheInvalidatedByRegisterTable(t *testing.T) {
	e := prefixTestEngine(t, 1.0, WithParallelism(1))
	before := runPrefixQuery(t, e, 1)
	runPrefixQuery(t, e, 1) // populate + hit

	e.RegisterTable(regionsTable(3.0))
	after := runPrefixQuery(t, e, 1)
	want := runPrefixQuery(t, prefixTestEngine(t, 3.0, WithPrefixCacheSize(-1), WithParallelism(1)), 1)
	for i := range after {
		if after[i] != want[i] {
			t.Fatalf("sample %d after DDL: %v, want %v (stale prefix?)", i, after[i], want[i])
		}
		if after[i] == before[i] {
			t.Fatalf("sample %d unchanged after weights tripled: %v", i, after[i])
		}
	}
}

// TestPrefixCacheInvalidatedByCreateAndRegisterVG: CREATE TABLE ... FOR
// EACH and RegisterVG both advance the epoch, so cached prefixes are
// recomputed (observable as extra misses, never stale data).
func TestPrefixCacheInvalidatedByCreateAndRegisterVG(t *testing.T) {
	e := prefixTestEngine(t, 1.0, WithParallelism(1))
	runPrefixQuery(t, e, 1)
	_, missesBefore, _ := e.PrefixCacheStats()

	if _, err := e.Exec(`
CREATE TABLE Extra (CID, v) AS
FOR EACH CID IN means
WITH x AS Normal(VALUES(m, 2.0))
SELECT CID, x.* FROM x`); err != nil {
		t.Fatal(err)
	}
	runPrefixQuery(t, e, 1)
	_, missesAfterCreate, _ := e.PrefixCacheStats()
	if missesAfterCreate <= missesBefore {
		t.Fatalf("CREATE TABLE did not invalidate the prefix cache (misses %d -> %d)", missesBefore, missesAfterCreate)
	}

	e.RegisterVG(constVG{})
	runPrefixQuery(t, e, 1)
	_, missesAfterVG, _ := e.PrefixCacheStats()
	if missesAfterVG <= missesAfterCreate {
		t.Fatalf("RegisterVG did not invalidate the prefix cache (misses %d -> %d)", missesAfterCreate, missesAfterVG)
	}
}

type constVG struct{}

func (constVG) Name() string           { return "ConstSeven" }
func (constVG) Arity() int             { return 0 }
func (constVG) OutKinds() []types.Kind { return []types.Kind{types.KindFloat} }
func (constVG) Generate([]types.Value, *prng.Sub) ([]types.Value, error) {
	return []types.Value{types.NewFloat(7)}, nil
}

var _ vg.Func = constVG{}

// TestPrefixCacheInvalidatedByFTableRegistration: FREQUENCYTABLE
// re-registration keeps the schema (so plans stay cached) but changes
// FTABLE's contents; a prefix materialized over FTABLE must be recomputed,
// not served stale.
func TestPrefixCacheInvalidatedByFTableRegistration(t *testing.T) {
	e := New(WithSeed(3), WithParallelism(1))
	e.RegisterTable(workload.LossMeans(20, 2, 8, 3))
	if err := e.DefineRandomTable(RandomTable{
		Name: "losses", ParamTable: "means", VG: "Normal",
		VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
		Columns:  []RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	freqSQL := func(n int) string {
		return fmt.Sprintf(`SELECT SUM(val) AS totalLoss FROM losses
WITH RESULTDISTRIBUTION MONTECARLO(%d) FREQUENCYTABLE totalLoss`, n)
	}
	if _, err := e.Exec(freqSQL(16)); err != nil {
		t.Fatal(err)
	}
	// A deterministic filter over FTABLE forces a materialized prefix
	// whose contents depend on FTABLE's rows.
	countTail := func() float64 {
		res, err := e.Exec(`SELECT SUM(frac) AS f FROM ftable WHERE frac > 0
WITH RESULTDISTRIBUTION MONTECARLO(4)`)
		if err != nil {
			t.Fatal(err)
		}
		return res.Dist.Samples[0]
	}
	first := countTail()
	if first <= 0.999 || first >= 1.001 {
		t.Fatalf("fracs should sum to ~1, got %v", first)
	}
	// Re-register FTABLE with a different sample count: same schema, new
	// contents. The prefix must follow the new relation.
	if _, err := e.Exec(freqSQL(64)); err != nil {
		t.Fatal(err)
	}
	second := countTail()
	if second <= 0.999 || second >= 1.001 {
		t.Fatalf("fracs over re-registered FTABLE should still sum to ~1, got %v (stale prefix?)", second)
	}
	ft, ok := e.Table("ftable")
	if !ok {
		t.Fatal("ftable not registered")
	}
	if ft.NumRows() < 17 {
		t.Fatalf("ftable should hold the 64-sample run, has %d rows", ft.NumRows())
	}
}

// TestPrefixCacheNotSharedAcrossEngines: two engines with identical SQL
// (identical fingerprints) but different catalog contents must never see
// each other's materialized prefixes.
func TestPrefixCacheNotSharedAcrossEngines(t *testing.T) {
	e1 := prefixTestEngine(t, 1.0, WithParallelism(1))
	e2 := prefixTestEngine(t, 5.0, WithParallelism(1))
	s1 := runPrefixQuery(t, e1, 1)
	s2 := runPrefixQuery(t, e2, 1)
	for i := range s1 {
		if s1[i] == s2[i] {
			t.Fatalf("sample %d identical across engines with different weights: %v", i, s1[i])
		}
		// Weight-5 must scale weight-1 by ~5 (up to float summation order).
		if ratio := s2[i] / s1[i]; ratio < 4.999999 || ratio > 5.000001 {
			t.Fatalf("sample %d: weight-5 engine should scale weight-1 by 5, ratio %v", i, ratio)
		}
	}
}

// TestConcurrentPrefixCacheDDLHammer mixes cached SELECTs with DDL that
// keeps results stable (re-registering identical tables, registering
// unrelated VGs) on one engine. Under -race this exercises the
// cache's locking and single-flight; every result must stay bit-identical
// to the sequential reference.
func TestConcurrentPrefixCacheDDLHammer(t *testing.T) {
	e := prefixTestEngine(t, 1.5)
	ref := runPrefixQuery(t, e, 1)

	const goroutines = 8
	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				switch {
				case g%4 == 0:
					// DDL: replace regions with identical contents (epoch
					// bumps, results must not change).
					e.RegisterTable(regionsTable(1.5))
				case g%4 == 1 && r%2 == 0:
					e.RegisterVG(constVG{})
				default:
					got := runPrefixQuery(t, e, 1+g%3)
					for i := range ref {
						if got[i] != ref[i] {
							errs <- fmt.Errorf("goroutine %d round %d sample %d: %v != %v", g, r, i, got[i], ref[i])
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestDistributionQuantileCache: repeated Quantile/Min/ECDF calls on one
// Distribution reuse the sorted sample and stay identical to freshly
// sorting the raw samples (the internal/stats satellite regression).
func TestDistributionQuantileCache(t *testing.T) {
	e := prefixTestEngine(t, 1.0, WithParallelism(1))
	pq, err := e.Prepare(prefixTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pq.Run(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Dist
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.999, 1} {
		fresh := stats.NewECDF(d.Samples).Quantile(q)
		if a := d.Quantile(q); a != fresh {
			t.Fatalf("Quantile(%g): cached %v != fresh %v", q, a, fresh)
		}
		if a, b := d.Quantile(q), d.Quantile(q); a != b {
			t.Fatalf("Quantile(%g) not stable across calls: %v vs %v", q, a, b)
		}
	}
	if d.Min() != stats.NewECDF(d.Samples).Min() {
		t.Fatal("Min differs from fresh sort")
	}
	if d.ECDF() != d.ECDF() {
		t.Fatal("ECDF must return the cached instance")
	}
	// Zero-constructed Distributions still work (lazy sort fallback).
	lit := &Distribution{Samples: []float64{3, 1, 2}}
	if lit.Quantile(0.5) != 2 || lit.Min() != 1 {
		t.Fatalf("literal distribution: q50=%v min=%v", lit.Quantile(0.5), lit.Min())
	}
}
