// Package mcdbr is the public API of the MCDB-R reproduction: a Monte
// Carlo database engine with in-database risk analysis (tail sampling) as
// described in "MCDB-R: Risk Analysis in the Database" (Arumugam et al.,
// PVLDB 3(1), 2010).
//
// An Engine holds ordinary ("parameter") tables, VG functions, and random
// table definitions (the paper's CREATE TABLE ... FOR EACH statements).
// Queries are posed either through the fluent QueryBuilder or as SQL-ish
// text (the §2 surface syntax) via Exec. Results are either a plain Monte
// Carlo result distribution (original MCDB semantics) or a conditioned
// tail distribution with an extreme-quantile estimate (MCDB-R's DOMAIN ...
// QUANTILE clause).
package mcdbr

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/prng"
	"repro/internal/storage"
	"repro/internal/vg"
)

// ErrMemoryBudget is the sentinel wrapped by query errors when a run's
// tuple arenas exceed the memory budget set by WithMaxQueryBytes or
// RunOptions.MaxBytes; test with errors.Is.
var ErrMemoryBudget = exec.ErrMemoryBudget

// Engine is a Monte Carlo database instance. Create one with New.
//
// An Engine is safe for concurrent use: any number of goroutines may call
// Exec, ExecWithOptions, Prepare, PreparedQuery.Run, Explain, and the
// QueryBuilder execution methods on one shared Engine. Per-query state
// (workspaces, TS-seed stores, materialization caches) is private to each
// call; the shared catalog, VG registry, and random-table definitions are
// guarded by locks. DDL (RegisterTable, DefineRandomTable, CREATE TABLE
// statements, FREQUENCYTABLE registration) is atomic: a concurrent query
// sees the state either before or after a definition, never a partial one.
// Registered tables must not be mutated after registration — replace them
// with RegisterTable instead.
type Engine struct {
	cat *storage.Catalog
	vgs *vg.Registry

	// seed, window, parallelism, batchSize, maxQueryBytes, and noKernels
	// are set by New options only and are immutable afterwards, so queries
	// read them without locking.
	seed          uint64
	window        int
	parallelism   int
	batchSize     int
	maxQueryBytes int64
	noKernels     bool

	// mu guards rand and ddlEpoch. The catalog and VG registry carry their
	// own locks; mu is the engine-level lock for definition state and is
	// always acquired before (never inside) the catalog lock.
	mu       sync.RWMutex
	rand     map[string]*RandomTable
	ddlEpoch uint64
	// dataEpoch advances at least as often as ddlEpoch: it additionally
	// counts catalog content changes that keep the schema (an FTABLE
	// re-registration with new values). The plan cache keys on ddlEpoch
	// (plans embed no data); the deterministic-prefix cache keys on
	// dataEpoch (materialized results embed table contents).
	dataEpoch uint64

	plans *planCache
	// prefixes caches materialized deterministic-prefix results (see
	// exec.PrefixCache) behind the same DDL-epoch invalidation as the plan
	// cache; nil when disabled via WithPrefixCacheSize.
	prefixes *exec.PrefixCache
	// slabs recycles per-operator scratch slabs across runs, so a short
	// query opens with warm arena chunks instead of growing fresh ones.
	slabs *exec.SlabPool
}

// Option configures an Engine.
type Option func(*Engine)

// WithSeed fixes the engine's master PRNG seed; runs with equal seeds are
// bit-for-bit reproducible.
func WithSeed(seed uint64) Option { return func(e *Engine) { e.seed = seed } }

// WithWindow sets how many stream values each TS-seed materializes per
// query-plan run (the paper's "1000 random values initially"); larger
// windows mean fewer replenishing runs but more memory.
func WithWindow(n int) Option { return func(e *Engine) { e.window = n } }

// WithParallelism sets how many worker goroutines query execution may use:
// Monte Carlo repetitions are replicate-sharded across workers, and tail
// sampling recomputes version states in parallel. Results are bit-for-bit
// identical for every worker count. 1 selects sequential execution; n <= 0
// selects runtime.NumCPU() (the default).
func WithParallelism(n int) Option {
	return func(e *Engine) {
		if n <= 0 {
			n = runtime.NumCPU()
		}
		e.parallelism = n
	}
}

// Parallelism reports the engine's worker count.
func (e *Engine) Parallelism() int { return e.parallelism }

// WithBatchSize sets how many tuples the streaming executor carries per
// batch (see DESIGN.md §9); n <= 0 selects the default of 1024. Batch
// boundaries are semantically invisible: results are bit-for-bit identical
// for every batch size.
func WithBatchSize(n int) Option {
	return func(e *Engine) {
		if n <= 0 {
			n = 0 // executor default
		}
		e.batchSize = n
	}
}

// WithMaxQueryBytes bounds the executor memory one query run may hold in
// tuple arenas. A run that would exceed the budget fails with an error
// wrapping ErrMemoryBudget instead of exhausting process memory; n <= 0
// (the default) disables the bound. Per-run overrides are available via
// RunOptions.MaxBytes.
func WithMaxQueryBytes(n int64) Option {
	return func(e *Engine) {
		if n < 0 {
			n = 0
		}
		e.maxQueryBytes = n
	}
}

// WithVectorizedKernels toggles the typed vectorized expression kernels
// (DESIGN.md §13). On by default; off forces the closure-tree interpreter
// everywhere. Results are bit-for-bit identical either way — the switch
// exists for differential testing and interpreter-vs-kernel benchmarks.
func WithVectorizedKernels(on bool) Option {
	return func(e *Engine) { e.noKernels = !on }
}

// WithPlanCacheSize sets how many prepared plans the engine's LRU plan
// cache retains (see Prepare); n <= 0 selects the default of 64.
func WithPlanCacheSize(n int) Option {
	return func(e *Engine) { e.plans = newPlanCache(n) }
}

// WithPrefixCacheSize sets how many materialized deterministic-prefix
// results the engine retains (LRU, invalidated by DDL). n == 0 selects
// the default of 64; n < 0 disables the cache entirely — results stay
// bit-identical either way, the cache only changes how often the
// deterministic part of a plan is recomputed.
func WithPrefixCacheSize(n int) Option {
	return func(e *Engine) {
		if n < 0 {
			e.prefixes = nil
			return
		}
		e.prefixes = exec.NewPrefixCache(n)
	}
}

// PrefixCacheStats reports the deterministic-prefix cache's lifetime hit
// and miss counts and its current size; all zero when the cache is
// disabled.
func (e *Engine) PrefixCacheStats() (hits, misses uint64, size int) {
	if e.prefixes == nil {
		return 0, 0, 0
	}
	return e.prefixes.Stats()
}

// newRunWorkspace builds the per-run workspace with the engine's
// streaming configuration attached: the deterministic-prefix cache
// handle, the engine batch size, and the run's memory budget (0 = no
// bound). ShardWorkspace propagates batch size and budget to replicate
// workers, which charge the run's shared gauge.
func (e *Engine) newRunWorkspace(seed uint64, window int, maxBytes int64) *exec.Workspace {
	ws := exec.NewWorkspace(e.cat, prng.NewStream(seed), window)
	ws.Prefix = e.prefixHandle()
	ws.BatchSize = e.batchSize
	ws.Slabs = e.slabs
	ws.MaxBytes = maxBytes
	ws.DisableKernels = e.noKernels
	return ws
}

// prefixHandle returns the per-run view of the deterministic-prefix cache,
// pinned to the current data epoch; nil when the cache is disabled.
func (e *Engine) prefixHandle() *exec.PrefixHandle {
	if e.prefixes == nil {
		return nil
	}
	e.mu.RLock()
	epoch := e.dataEpoch
	e.mu.RUnlock()
	return e.prefixes.Handle(epoch)
}

// New creates an empty engine with all built-in VG functions registered.
func New(opts ...Option) *Engine {
	e := &Engine{
		cat:         storage.NewCatalog(),
		vgs:         vg.NewRegistry(),
		rand:        make(map[string]*RandomTable),
		seed:        0x6d636462, // "mcdb"
		window:      1024,
		parallelism: runtime.NumCPU(),
		plans:       newPlanCache(0),
		prefixes:    exec.NewPrefixCache(0),
		slabs:       exec.NewSlabPool(),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// RegisterTable adds (or replaces) an ordinary table. The table must not
// be mutated afterwards; concurrent queries read it without locking.
func (e *Engine) RegisterTable(t *storage.Table) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cat.Put(t)
	e.ddlEpoch++
	e.dataEpoch++
}

// RegisterVG adds a user-defined VG function (the paper's black-box
// variable-generation functions).
func (e *Engine) RegisterVG(f vg.Func) {
	e.vgs.Register(f)
	e.mu.Lock()
	e.ddlEpoch++
	e.dataEpoch++
	e.mu.Unlock()
}

// VGNames returns the registered VG function names, sorted.
func (e *Engine) VGNames() []string { return e.vgs.Names() }

// epoch returns the DDL epoch: a counter bumped by every definition change
// that can invalidate a cached plan (table or VG registration, random-table
// definition, FTABLE schema change).
func (e *Engine) epoch() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.ddlEpoch
}

// randomDef looks up a random-table definition under the engine lock.
func (e *Engine) randomDef(name string) (*RandomTable, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	rt, ok := e.rand[strings.ToLower(name)]
	return rt, ok
}

// RandomTableNames returns the names of all defined random tables, sorted.
func (e *Engine) RandomTableNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.rand))
	for n := range e.rand {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Table looks up an ordinary table.
func (e *Engine) Table(name string) (*storage.Table, bool) { return e.cat.Get(name) }

// Catalog exposes the table catalog (read-mostly helper for tools).
func (e *Engine) Catalog() *storage.Catalog { return e.cat }

// RandomCol maps one column of a random table to its source: either a
// column of the parameter table (FromParam) or an output of the VG
// function (VGOut, used when FromParam is empty).
type RandomCol struct {
	Name      string
	FromParam string
	VGOut     int
}

// RandomTable is the engine-level form of the paper's §2 statement
//
//	CREATE TABLE Losses(CID, val) AS
//	FOR EACH CID IN means
//	WITH myVal AS Normal(VALUES(m, 1.0))
//	SELECT CID, myVal.* FROM myVal
//
// Name="losses", ParamTable="means", VG="Normal",
// VGParams=[C("m"), F(1.0)], Columns=[{CID, "cid", 0}, {val, "", 0}].
type RandomTable struct {
	Name       string
	ParamTable string
	VG         string
	// VGParams are evaluated against each parameter-table row.
	VGParams []expr.Expr
	Columns  []RandomCol
}

// DefineRandomTable registers an uncertain table definition. Only the
// schema is stored — instances are generated at query time, exactly as in
// the paper.
func (e *Engine) DefineRandomTable(rt RandomTable) error {
	if rt.Name == "" {
		return fmt.Errorf("mcdbr: random table needs a name")
	}
	if _, ok := e.cat.Get(rt.ParamTable); !ok {
		return fmt.Errorf("mcdbr: parameter table %q not registered", rt.ParamTable)
	}
	gen, ok := e.vgs.Lookup(rt.VG)
	if !ok {
		return fmt.Errorf("mcdbr: VG function %q not registered", rt.VG)
	}
	if gen.Arity() >= 0 && len(rt.VGParams) != gen.Arity() {
		return fmt.Errorf("mcdbr: VG %s needs %d parameters, got %d", rt.VG, gen.Arity(), len(rt.VGParams))
	}
	if len(rt.Columns) == 0 {
		return fmt.Errorf("mcdbr: random table %q needs at least one column", rt.Name)
	}
	param, _ := e.cat.Get(rt.ParamTable)
	nOut := len(gen.OutKinds())
	hasRandom := false
	for _, c := range rt.Columns {
		if c.FromParam != "" {
			if param.Schema().Lookup(c.FromParam) < 0 {
				return fmt.Errorf("mcdbr: column %q of %q maps to unknown parameter column %q", c.Name, rt.Name, c.FromParam)
			}
			continue
		}
		if c.VGOut < 0 || c.VGOut >= nOut {
			return fmt.Errorf("mcdbr: column %q of %q maps to VG output %d of %d", c.Name, rt.Name, c.VGOut, nOut)
		}
		hasRandom = true
	}
	if !hasRandom {
		return fmt.Errorf("mcdbr: random table %q exposes no VG output; use an ordinary table", rt.Name)
	}
	e.mu.Lock()
	e.rand[strings.ToLower(rt.Name)] = &rt
	e.ddlEpoch++
	e.dataEpoch++
	e.mu.Unlock()
	return nil
}

// RandomTableDef looks up a random-table definition.
func (e *Engine) RandomTableDef(name string) (*RandomTable, bool) {
	return e.randomDef(name)
}
