package mcdbr

// Adaptive Monte Carlo at the public API layer: the engine-side drivers
// behind MONTECARLO(UNTIL ERROR < eps AT conf%, MAX n) and the
// RunOptions.TargetRelError override. Plain (non-DOMAIN) queries run
// through the round-based driver in internal/gibbs, which executes
// replicates in geometrically growing replicate-sharded windows and stops
// once every (group, aggregate) confidence interval is relatively tighter
// than the target; stopping after m replicates is bit-identical to a fixed
// MONTECARLO(m) run at every worker count. DOMAIN tail queries instead
// double the conditioned chain length per attempt until the expected-
// shortfall interval meets the target — the final attempt is literally a
// fixed-length tail run, so its samples match MONTECARLO(L) exactly.

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/gibbs"
	"repro/internal/plan"
	"repro/internal/sqlish"
	"repro/internal/stats"
	"repro/internal/types"
)

// AggregateCI is the confidence-interval state of one (group, aggregate)
// estimate when an adaptive run stopped (or, in a ProgressUpdate, after a
// round). The interval is the normal approximation mean ± HalfWidth at the
// rule's confidence level, computed over HAVING-included replicates.
type AggregateCI struct {
	// Group is the formatted group key ("" for ungrouped queries).
	Group string
	// Agg names the aggregate output column.
	Agg string
	// N is the number of replicates folded in.
	N int64
	// Mean is the running point estimate.
	Mean float64
	// HalfWidth is the CI half-width at the rule's confidence level.
	HalfWidth float64
	// RelError is HalfWidth / |Mean| (+Inf when undefined).
	RelError float64
	// Converged reports whether RelError met the target.
	Converged bool
	// ConvergedAt is the cumulative replicate count at which the estimate
	// first converged (0 if it never did).
	ConvergedAt int
}

// AdaptiveReport summarizes how an adaptive run stopped: the effective
// stopping rule, the replicates actually spent, and the final interval per
// (group, aggregate) pair. Attached to the ExecResult of every adaptive
// execution (and of progressive fixed-N runs, where Converged is always
// false because no target is set).
type AdaptiveReport struct {
	// TargetRelError, Confidence, and MaxSamples echo the effective rule
	// (defaults filled in).
	TargetRelError float64
	Confidence     float64
	MaxSamples     int
	// SamplesUsed is the number of Monte Carlo replicates executed (for
	// DOMAIN queries: conditioned tail samples retained, summed over
	// groups).
	SamplesUsed int
	// Rounds is the number of rounds (plain MC) or chain attempts (tails).
	Rounds int
	// Converged reports whether every estimate met the target before
	// MaxSamples.
	Converged bool
	// Degraded reports that the run's deadline fired before the rule was
	// satisfied and the report describes the partial prefix accumulated by
	// then (RunOptions.DegradeOnDeadline). For grouped tails a degraded
	// report may cover only the groups whose chains completed in time.
	Degraded bool
	// CIs holds the final interval per (group, aggregate) pair, groups in
	// key order, aggregates in select-list order.
	CIs []AggregateCI
}

// ProgressUpdate is the progressive-result payload delivered to
// RunOptions.Progress after every adaptive round — the engine-level form
// of the SSE events the serving layer streams. The CIs slice is freshly
// allocated per call and may be retained.
type ProgressUpdate struct {
	// Round counts completed rounds (1-based).
	Round int
	// SamplesUsed is the cumulative replicate count (for tails: the
	// current chain length).
	SamplesUsed int
	// Converged reports whether every estimate has met the target.
	Converged bool
	// CIs snapshots every (group, aggregate) interval.
	CIs []AggregateCI
}

// runParams bundles the per-run execution knobs threaded from the public
// entry points (Exec, PreparedQuery.RunCtx) into runSelectCompiled, so
// adding a knob does not grow every signature on the path.
type runParams struct {
	// ctx carries run cancellation; nil means "never cancelled".
	ctx      context.Context
	seed     uint64
	workers  int
	n        int
	maxBytes int64
	// stop, when non-nil, is the resolved adaptive stopping rule (RunOptions
	// overrides already folded in). nil falls back to the statement's rule.
	stop *gibbs.StopRule
	// degrade opts adaptive runs into graceful deadline degradation
	// (RunOptions.DegradeOnDeadline); fixed-N runs ignore it.
	degrade bool
	// progress, when non-nil, selects progressive execution: the round
	// driver runs even for fixed-N statements (with convergence disabled)
	// and invokes the callback after every round.
	progress func(ProgressUpdate)
}

// stopRule resolves the effective stopping rule: the per-run override if
// set, else the statement/builder rule compiled into the plan, else nil
// (fixed-N execution).
func (rp runParams) stopRule(c *compiled) *gibbs.StopRule {
	if rp.stop != nil {
		return rp.stop
	}
	if c.stop != nil {
		r := stopRuleFromSpec(c.stop)
		return &r
	}
	return nil
}

// stopRuleFromSpec converts the plan-layer stopping rule to the executor
// form (defaults still unfilled; Normalized applies them).
func stopRuleFromSpec(s *plan.StopSpec) gibbs.StopRule {
	return gibbs.StopRule{
		TargetRelError: s.TargetRelError,
		Confidence:     s.Confidence,
		MaxSamples:     s.MaxSamples,
	}
}

// snapshotCIs flattens the driver's per-(group, aggregate) snapshots into
// the public shape, labelling each with its group key and aggregate column.
func snapshotCIs(aggCols []string, keys []types.Row, cis [][]gibbs.CISnapshot) []AggregateCI {
	var out []AggregateCI
	for g := range cis {
		group := ""
		if g < len(keys) {
			group = formatGroupKey(keys[g])
		}
		for a := range cis[g] {
			s := cis[g][a]
			name := ""
			if a < len(aggCols) {
				name = aggCols[a]
			}
			out = append(out, AggregateCI{
				Group:       group,
				Agg:         name,
				N:           s.N,
				Mean:        s.Mean,
				HalfWidth:   s.HalfWidth,
				RelError:    s.RelError,
				Converged:   s.Converged,
				ConvergedAt: s.ConvergedAt,
			})
		}
	}
	return out
}

// adaptiveReport builds the public report from the driver's result.
func adaptiveReport(c *compiled, res *gibbs.AdaptiveResult, rule gibbs.StopRule) *AdaptiveReport {
	return &AdaptiveReport{
		TargetRelError: rule.TargetRelError,
		Confidence:     rule.Confidence,
		MaxSamples:     rule.MaxSamples,
		SamplesUsed:    res.SamplesUsed,
		Rounds:         res.Rounds,
		Converged:      res.Converged,
		Degraded:       res.Degraded,
		CIs:            snapshotCIs(c.agg.AggColNames(), res.Runs.Keys, res.CIs),
	}
}

// runAdaptiveRuns executes the round-based driver for a compiled plan in a
// fresh per-run workspace (with cancellation attached) and returns the raw
// result plus the normalized rule it ran under.
func (e *Engine) runAdaptiveRuns(ctx context.Context, c *compiled, rule gibbs.StopRule, seed uint64, workers int, maxBytes int64, progress func(ProgressUpdate)) (*gibbs.AdaptiveResult, gibbs.StopRule, error) {
	rule = rule.Normalized()
	// The prototype workspace is never evaluated itself — every round
	// window runs in a ShardWorkspace with its own base and window — so
	// the window here only sizes the prototype's (unused) default.
	ws := e.newRunWorkspace(seed, rule.FirstRound, maxBytes)
	ws.Ctx = ctx
	var gp func(gibbs.RoundUpdate)
	if progress != nil {
		aggCols := c.agg.AggColNames()
		gp = func(u gibbs.RoundUpdate) {
			progress(ProgressUpdate{
				Round:       u.Round,
				SamplesUsed: u.SamplesUsed,
				Converged:   u.Converged,
				CIs:         snapshotCIs(aggCols, u.Keys, u.CIs),
			})
		}
	}
	res, err := gibbs.MonteCarloGroupedAdaptive(ws, c.agg, c.gq.FinalPred, rule, workers, gp)
	return res, rule, err
}

// runAdaptiveSelect executes a plain (non-DOMAIN) query through the round
// driver and packages the result exactly like the fixed-N paths — same
// ExecResult kinds, same Distribution contents for the replicates actually
// run — plus the AdaptiveReport. With rule == nil (fixed-N progressive
// streaming) the driver runs to exactly rp.n replicates with convergence
// disabled, so the final result is bit-identical to the non-progressive
// path.
func (e *Engine) runAdaptiveSelect(c *compiled, s *sqlish.SelectStmt, rp runParams, rule *gibbs.StopRule) (*ExecResult, error) {
	var r gibbs.StopRule
	if rule != nil {
		r = *rule
	} else {
		r.MaxSamples = rp.n
	}
	res, norm, err := e.runAdaptiveRuns(rp.ctx, c, r, rp.seed, rp.workers, rp.maxBytes, rp.progress)
	if err != nil {
		return nil, err
	}
	gd, err := buildGroupedDistribution(c, res.Runs, res.SamplesUsed)
	if err != nil {
		return nil, err
	}
	report := adaptiveReport(c, res, norm)
	if c.grouped() || len(c.agg.Aggs) > 1 {
		out := &ExecResult{Kind: ExecGroupedDistribution, Grouped: gd, Adaptive: report}
		if len(c.agg.Aggs) == 1 {
			out.GroupDists = gd.DistMap()
		}
		return out, nil
	}
	d := gd.Groups[0].Dists[0]
	if s != nil {
		e.registerFTable(s, d)
	}
	return &ExecResult{Kind: ExecDistribution, Dist: d, Adaptive: report}, nil
}

// runTailAdaptive runs one conditioned Gibbs tail chain under an adaptive
// stopping rule by doubling the chain length per attempt: L, 2L, 4L, ...
// up to rule.MaxSamples, stopping once the expected-shortfall interval
// (normal approximation over the conditioned samples, which the estimator
// treats as equally weighted) is relatively tighter than the target. Each
// attempt is a complete fixed-length run, so the returned TailResult is
// bit-identical to MONTECARLO(L) DOMAIN execution at the final L. It
// returns the tail, its final interval, the attempt count, and whether the
// result is a deadline-degraded earlier attempt (rule.DegradeOnDeadline:
// when a longer chain's deadline fires, the last completed attempt — still
// a full fixed-length run — is returned instead of the error).
func (e *Engine) runTailAdaptive(ctx context.Context, c *compiled, gq gibbs.Query, p float64, rule gibbs.StopRule, opts TailSampleOptions, seed uint64, maxBytes int64, group string, progress func(ProgressUpdate)) (*TailResult, AggregateCI, int, bool, error) {
	rule = rule.Normalized()
	L := rule.FirstRound
	if L > rule.MaxSamples {
		L = rule.MaxSamples
	}
	aggName := c.agg.AggColNames()[0]
	var lastTR *TailResult
	var lastCI AggregateCI
	for attempt := 1; ; attempt++ {
		tr, err := e.runTailWith(ctx, c, gq, p, L, opts, seed, maxBytes)
		if err != nil {
			if rule.DegradeOnDeadline && lastTR != nil && errors.Is(err, context.DeadlineExceeded) {
				return lastTR, lastCI, attempt, true, nil
			}
			return nil, AggregateCI{}, attempt, false, err
		}
		var w stats.Welford
		w.AddAll(tr.Samples)
		ci := AggregateCI{
			Group:     group,
			Agg:       aggName,
			N:         w.N(),
			Mean:      w.Mean(),
			HalfWidth: w.HalfWidth(rule.Confidence),
			RelError:  w.RelHalfWidth(rule.Confidence),
		}
		ci.Converged = rule.TargetRelError > 0 && ci.RelError <= rule.TargetRelError
		if ci.Converged {
			ci.ConvergedAt = L
		}
		if progress != nil {
			progress(ProgressUpdate{Round: attempt, SamplesUsed: L, Converged: ci.Converged, CIs: []AggregateCI{ci}})
		}
		if ci.Converged || L >= rule.MaxSamples {
			return tr, ci, attempt, false, nil
		}
		lastTR, lastCI = tr, ci
		L *= 2
		if L > rule.MaxSamples {
			L = rule.MaxSamples
		}
	}
}

// runGroupedTailAdaptive is the per-group form: groups are discovered from
// one plan run (as in runGroupedTail), then every group's chain stops
// independently — a low-variance group settles at a short chain while a
// heavy-tailed one keeps doubling, which is where grouped tail queries
// recover most of their adaptive savings.
func (e *Engine) runGroupedTailAdaptive(ctx context.Context, c *compiled, p float64, rule gibbs.StopRule, opts TailSampleOptions, seed uint64, maxBytes int64, progress func(ProgressUpdate)) (*GroupedTail, *AdaptiveReport, error) {
	rule = rule.Normalized()
	dws := e.newRunWorkspace(seed, e.window, maxBytes)
	dws.Ctx = ctx
	keys, err := c.agg.StreamGroupKeys(dws)
	if err != nil {
		return nil, nil, err
	}
	out := &GroupedTail{
		GroupCols: c.agg.GroupColNames(),
		AggCol:    c.agg.AggColNames()[0],
	}
	report := &AdaptiveReport{
		TargetRelError: rule.TargetRelError,
		Confidence:     rule.Confidence,
		MaxSamples:     rule.MaxSamples,
		Converged:      true,
	}
	round := 0
	gp := progress
	if progress != nil {
		// Renumber rounds globally across groups so the progressive stream
		// stays monotone.
		gp = func(u ProgressUpdate) {
			round++
			u.Round = round
			progress(u)
		}
	}
	for _, key := range keys {
		gq := c.gq
		gq.LowerTail = opts.Lower
		gq.GroupBy = c.agg.GroupBy
		gq.GroupKey = key
		tr, ci, attempts, degraded, err := e.runTailAdaptive(ctx, c, gq, p, rule, opts, seed, maxBytes, formatGroupKey(key), gp)
		if err != nil {
			// Deadline degradation for grouped tails: if at least one group's
			// chain completed, report those groups partially instead of
			// failing the whole query.
			if rule.DegradeOnDeadline && len(out.Groups) > 0 && errors.Is(err, context.DeadlineExceeded) {
				report.Degraded = true
				report.Converged = false
				break
			}
			return nil, nil, fmt.Errorf("mcdbr: group %s: %w", formatGroupKey(key), err)
		}
		out.Groups = append(out.Groups, GroupTail{Key: key, Tail: tr})
		report.SamplesUsed += len(tr.Samples)
		report.Rounds += attempts
		report.CIs = append(report.CIs, ci)
		if !ci.Converged {
			report.Converged = false
		}
		if degraded {
			// The deadline already fired mid-chain; later groups would only
			// burn their first attempt against an expired context.
			report.Degraded = true
			report.Converged = false
			break
		}
	}
	return out, report, nil
}
