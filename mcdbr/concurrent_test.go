package mcdbr_test

// Concurrency regression tests for the shared Engine: run with -race.
// Before the engine-level locks, maybeRegisterFTable mutated the shared
// catalog mid-Exec and random-table definitions lived in an unsynchronized
// map, so two concurrent Execs raced and corrupted state.

import (
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/expr"
	"repro/internal/prng"
	"repro/internal/types"
	"repro/internal/vg"
	"repro/internal/workload"
	"repro/mcdbr"
)

const hammerMCSQL = `SELECT SUM(val) AS totalLoss FROM Losses
WITH RESULTDISTRIBUTION MONTECARLO(40)`

// TestConcurrentExecHammer drives one shared engine from many goroutines
// mixing Exec, Prepare-ed runs, Explain, scalar queries, and DDL — the
// ISSUE 3 acceptance scenario (>= 8 goroutines).
func TestConcurrentExecHammer(t *testing.T) {
	e := lossEngine(t, 2)
	want, err := e.Exec(hammerMCSQL)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 12
	const iters = 8
	var wg sync.WaitGroup
	errc := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch g % 6 {
				case 0: // plain Exec; deterministic, so compare to the baseline
					res, err := e.Exec(hammerMCSQL)
					if err != nil {
						errc <- err
						return
					}
					for j := range want.Dist.Samples {
						if res.Dist.Samples[j] != want.Dist.Samples[j] {
							t.Errorf("goroutine %d: sample %d diverged under concurrency", g, j)
							return
						}
					}
				case 1: // prepared runs with per-run seeds
					pq, err := e.Prepare(hammerMCSQL)
					if err != nil {
						errc <- err
						return
					}
					if _, err := pq.Run(mcdbr.RunOptions{Seed: uint64(g*100 + i + 1)}); err != nil {
						errc <- err
						return
					}
				case 2: // EXPLAIN
					if _, err := e.Explain(hammerMCSQL); err != nil {
						errc <- err
						return
					}
				case 3: // deterministic scalar over the parameter table
					if _, err := e.Exec(`SELECT COUNT(*) FROM means`); err != nil {
						errc <- err
						return
					}
				case 4: // DDL: (re)define a goroutine-private random table
					err := e.DefineRandomTable(mcdbr.RandomTable{
						Name: "scratch", ParamTable: "means", VG: "Normal",
						VGParams: []expr.Expr{expr.C("m"), expr.F(2.0)},
						Columns:  []mcdbr.RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "v", VGOut: 0}},
					})
					if err != nil {
						errc <- err
						return
					}
				case 5: // catalog reads
					if _, ok := e.Table("means"); !ok {
						t.Error("means table vanished")
						return
					}
					e.RandomTableNames()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestConcurrentFTableRegistration is the regression test for the
// maybeRegisterFTable catalog-mutation race: goroutines hammer the same
// engine with FREQUENCYTABLE queries while others issue follow-up scalar
// queries over FTABLE. Registration must be atomic — a follow-up sees a
// complete FTABLE (or none at all), never a partial one.
func TestConcurrentFTableRegistration(t *testing.T) {
	e := lossEngine(t, 1)
	const ftSQL = `SELECT SUM(val) AS totalLoss FROM Losses
WITH RESULTDISTRIBUTION MONTECARLO(25)
FREQUENCYTABLE totalLoss`
	if _, err := e.Exec(ftSQL); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if g%2 == 0 {
					if _, err := e.Exec(ftSQL); err != nil {
						errc <- err
						return
					}
					continue
				}
				res, err := e.Exec(`SELECT SUM(totalLoss * frac) FROM FTABLE`)
				if err != nil {
					errc <- err
					return
				}
				// A complete FTABLE's fracs sum to 1, so the weighted sum is
				// a finite expected value; a torn registration would break
				// this.
				if math.IsNaN(res.Scalar) || math.IsInf(res.Scalar, 0) {
					t.Errorf("weighted FTABLE sum is %g", res.Scalar)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// panicVG is a user VG function that panics on every invocation.
type panicVG struct{}

func (panicVG) Name() string           { return "PanicVG" }
func (panicVG) Arity() int             { return 1 }
func (panicVG) OutKinds() []types.Kind { return []types.Kind{types.KindFloat} }
func (panicVG) Generate(params []types.Value, sub *prng.Sub) ([]types.Value, error) {
	panic("panicVG: deliberate test panic")
}

// nanVG always generates NaN, poisoning the Monte Carlo outputs.
type nanVG struct{}

func (nanVG) Name() string           { return "NaNVG" }
func (nanVG) Arity() int             { return 1 }
func (nanVG) OutKinds() []types.Kind { return []types.Kind{types.KindFloat} }
func (nanVG) Generate(params []types.Value, sub *prng.Sub) ([]types.Value, error) {
	return []types.Value{types.NewFloat(math.NaN())}, nil
}

func vgEngine(t *testing.T, f vg.Func, workers int) *mcdbr.Engine {
	t.Helper()
	e := mcdbr.New(mcdbr.WithSeed(7), mcdbr.WithParallelism(workers))
	e.RegisterVG(f)
	e.RegisterTable(workload.LossMeans(20, 2, 8, 5))
	if err := e.DefineRandomTable(mcdbr.RandomTable{
		Name: "bad", ParamTable: "means", VG: f.Name(),
		VGParams: []expr.Expr{expr.C("m")},
		Columns:  []mcdbr.RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestExecPanicBecomesError: a panicking VG function must surface as an
// error from Exec — sequentially and through the replicate-sharded worker
// goroutines — never crash the process.
func TestExecPanicBecomesError(t *testing.T) {
	const sql = `SELECT SUM(val) AS x FROM bad WITH RESULTDISTRIBUTION MONTECARLO(30)`
	for _, workers := range []int{1, 4} {
		e := vgEngine(t, panicVG{}, workers)
		res, err := e.Exec(sql)
		if err == nil {
			t.Fatalf("workers=%d: expected error, got %+v", workers, res)
		}
		if !strings.Contains(err.Error(), "panic") {
			t.Fatalf("workers=%d: error does not mention the panic: %v", workers, err)
		}
	}
}

// TestPreparedRunPanicBecomesError covers the prepared path.
func TestPreparedRunPanicBecomesError(t *testing.T) {
	e := vgEngine(t, panicVG{}, 2)
	pq, err := e.Prepare(`SELECT SUM(val) AS x FROM bad WITH RESULTDISTRIBUTION MONTECARLO(30)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Run(mcdbr.RunOptions{}); err == nil {
		t.Fatal("expected error from prepared run of a panicking VG")
	}
}

// TestNaNResultsRejected: NaN Monte Carlo outputs must be reported as a
// descriptive error instead of silently corrupting quantile and
// tail-boundary estimates (they sort to the front of the ECDF).
func TestNaNResultsRejected(t *testing.T) {
	e := vgEngine(t, nanVG{}, 1)
	_, err := e.Exec(`SELECT SUM(val) AS x FROM bad WITH RESULTDISTRIBUTION MONTECARLO(20)`)
	if err == nil {
		t.Fatal("expected non-finite-result error")
	}
	if !strings.Contains(err.Error(), "NaN") {
		t.Fatalf("error does not name NaN: %v", err)
	}
	if !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("error is not descriptive: %v", err)
	}
}

// TestNaNTailRejected covers the tail-sampling path.
func TestNaNTailRejected(t *testing.T) {
	e := vgEngine(t, nanVG{}, 1)
	_, err := e.ExecWithOptions(`SELECT SUM(val) AS x FROM bad
WITH RESULTDISTRIBUTION MONTECARLO(10)
DOMAIN x >= QUANTILE(0.9)`, mcdbr.TailSampleOptions{TotalSamples: 60})
	if err == nil {
		t.Fatal("expected non-finite-result error from tail sampling")
	}
	if !strings.Contains(err.Error(), "NaN") && !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("error not descriptive: %v", err)
	}
}

// TestConcurrentMixedWithTail exercises the full acceptance mix with
// NumCPU-bounded goroutine count to keep -race runtime sane.
func TestConcurrentMixedWithTail(t *testing.T) {
	if testing.Short() {
		t.Skip("tail sampling under -race is slow")
	}
	e := lossEngine(t, runtime.NumCPU())
	const tailSQL = `SELECT SUM(val) AS totalLoss FROM Losses
WITH RESULTDISTRIBUTION MONTECARLO(20)
DOMAIN totalLoss >= QUANTILE(0.9)`
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				if _, err := e.ExecWithOptions(tailSQL, mcdbr.TailSampleOptions{TotalSamples: 80}); err != nil {
					errc <- err
				}
				return
			}
			pq, err := e.Prepare(hammerMCSQL)
			if err != nil {
				errc <- err
				return
			}
			if _, err := pq.Run(mcdbr.RunOptions{Seed: uint64(g)}); err != nil {
				errc <- err
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
