package mcdbr

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/gibbs"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/tail"
	"repro/internal/types"
)

// Distribution is a Monte Carlo result distribution: the paper's
// RESULTDISTRIBUTION, materialized as samples plus the FREQUENCYTABLE.
type Distribution struct {
	// Samples are the Monte Carlo query results (conditioned to the tail
	// for TailResult).
	Samples []float64
	// FTable is the paper's FTABLE(value, FRAC) relation.
	FTable *stats.FrequencyTable

	// ecdf caches the sorted sample: building the frequency table already
	// sorts a copy of the samples, so Quantile/Min/ECDF reuse it instead
	// of re-sorting per call. nil for zero-constructed Distributions,
	// which fall back to sorting on demand.
	ecdf *stats.ECDF
}

func newDistribution(samples []float64) *Distribution {
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	return &Distribution{
		Samples: samples,
		FTable:  stats.NewFrequencyTableSorted(sorted),
		ecdf:    stats.NewECDFSorted(sorted),
	}
}

// dist returns the cached ECDF. Distributions built literally rather
// than by the engine have no cache; they sort per call (the pre-cache
// behavior) instead of lazily writing d.ecdf, which would race when one
// Distribution is read from several goroutines.
func (d *Distribution) dist() *stats.ECDF {
	if d.ecdf == nil {
		return stats.NewECDF(d.Samples)
	}
	return d.ecdf
}

// Mean estimates the expected query result.
func (d *Distribution) Mean() float64 { return stats.Summarize(d.Samples).Mean }

// Std estimates the standard deviation of the query result.
func (d *Distribution) Std() float64 { return stats.Summarize(d.Samples).Std }

// Quantile estimates the q-quantile of the (possibly conditioned)
// query-result distribution.
func (d *Distribution) Quantile(q float64) float64 {
	return d.dist().Quantile(q)
}

// CVaR returns the expected shortfall at level q: the conditional mean
// of the query result beyond its q-quantile, E[X | X >= Quantile(q)] —
// the standard risk measure paired with VaR. Computed through
// stats.ConditionalMean over the sample.
func (d *Distribution) CVaR(q float64) float64 {
	return stats.ConditionalMean(d.Samples, d.Quantile(q), false)
}

// CVaRLower is CVaR for the loss-is-small tail: E[X | X <= Quantile(q)].
func (d *Distribution) CVaRLower(q float64) float64 {
	return stats.ConditionalMean(d.Samples, d.Quantile(q), true)
}

// Min returns the smallest sample — for a tail distribution, the paper's
// SELECT MIN(totalLoss) FROM FTABLE tail-boundary estimate.
func (d *Distribution) Min() float64 { return d.dist().Min() }

// ExpectedValue returns SUM(value*FRAC) over the frequency table; on a
// tail distribution this is the expected shortfall.
func (d *Distribution) ExpectedValue() float64 { return d.FTable.WeightedSum() }

// ECDF returns the empirical CDF of the samples.
func (d *Distribution) ECDF() *stats.ECDF { return d.dist() }

// FTableRelation materializes the frequency table as an ordinary relation
// FTABLE(value FLOAT, frac FLOAT) that can be registered and re-queried,
// as in the paper's follow-up queries over FTABLE.
func (d *Distribution) FTableRelation(name string) *storage.Table {
	t := storage.NewTable(name, types.NewSchema(
		types.Column{Name: "value", Kind: types.KindFloat},
		types.Column{Name: "frac", Kind: types.KindFloat},
	))
	for i, v := range d.FTable.Values {
		t.MustAppend(types.Row{types.NewFloat(v), types.NewFloat(d.FTable.Fracs[i])})
	}
	return t
}

// TailResult is the output of MCDB-R tail sampling: a conditioned result
// distribution over the tail plus the extreme-quantile estimate.
type TailResult struct {
	Distribution
	// QuantileEstimate is theta-hat, the estimated (1-P)-quantile (or
	// P-quantile for lower tails).
	QuantileEstimate float64
	// P is the tail probability defining the quantile.
	P float64
	// Lower reports whether this is a lower tail.
	Lower bool
	// ExpectedShortfall is E[result | result in tail] — the CVaR paired
	// with the QuantileEstimate VaR (stats.ConditionalMean over the
	// conditioned sample).
	ExpectedShortfall float64
	// Diag exposes the Gibbs looper's per-iteration statistics.
	Diag *gibbs.Result
}

// GroupedDistribution is the result of a grouped and/or multi-aggregate
// Monte Carlo query: one Distribution per (group, aggregate) pair, with
// groups in ascending key order. Ungrouped multi-aggregate queries have
// exactly one group with an empty key.
type GroupedDistribution struct {
	// GroupCols name the grouping output columns (empty when ungrouped).
	GroupCols []string
	// AggCols name the aggregate output columns, in select-list order.
	AggCols []string
	// Groups holds the per-group results, sorted by key.
	Groups []GroupDistribution
}

// GroupDistribution is one group's result.
type GroupDistribution struct {
	// Key holds the group's grouping-expression values.
	Key types.Row
	// Dists holds one result distribution per aggregate, in select-list
	// order.
	Dists []*Distribution
	// Inclusion is the fraction of Monte Carlo runs in which the group
	// satisfied the HAVING clause (1 when the query has none). Samples
	// from excluded runs do not appear in Dists.
	Inclusion float64
}

// KeyString renders the group key the way the legacy per-group maps are
// keyed: the single value's string form, or comma-joined values for
// multi-column keys.
func (g *GroupDistribution) KeyString() string { return formatGroupKey(g.Key) }

// Group returns the group with the given KeyString, or nil.
func (gd *GroupedDistribution) Group(key string) *GroupDistribution {
	for i := range gd.Groups {
		if gd.Groups[i].KeyString() == key {
			return &gd.Groups[i]
		}
	}
	return nil
}

// DistMap flattens a single-aggregate grouped result into the legacy
// map[key]*Distribution shape.
func (gd *GroupedDistribution) DistMap() map[string]*Distribution {
	out := make(map[string]*Distribution, len(gd.Groups))
	for i := range gd.Groups {
		out[gd.Groups[i].KeyString()] = gd.Groups[i].Dists[0]
	}
	return out
}

// GroupedTail is the result of a GROUP BY ... DOMAIN query: one
// conditioned tail distribution per group (paper App. A), produced by one
// Gibbs run per group over a single shared compiled plan.
type GroupedTail struct {
	// GroupCols name the grouping output columns.
	GroupCols []string
	// AggCol names the conditioned aggregate.
	AggCol string
	// Groups holds the per-group tails, sorted by key.
	Groups []GroupTail
}

// GroupTail is one group's conditioned tail result.
type GroupTail struct {
	Key  types.Row
	Tail *TailResult
}

// KeyString renders the group key (see GroupDistribution.KeyString).
func (g *GroupTail) KeyString() string { return formatGroupKey(g.Key) }

// TailMap flattens the grouped tails into the legacy
// map[key]*TailResult shape.
func (gt *GroupedTail) TailMap() map[string]*TailResult {
	out := make(map[string]*TailResult, len(gt.Groups))
	for i := range gt.Groups {
		out[gt.Groups[i].KeyString()] = gt.Groups[i].Tail
	}
	return out
}

func formatGroupKey(key types.Row) string {
	parts := make([]string, len(key))
	for i, v := range key {
		parts[i] = v.String()
	}
	return strings.Join(parts, ",")
}

// MonteCarlo runs the query with n plain Monte Carlo repetitions (original
// MCDB semantics) and returns the unconditioned result distribution. The
// repetitions are replicate-sharded across the engine's worker count (see
// WithParallelism); samples are identical for every worker count. The
// query must have a single aggregate and no GROUP BY — use
// MonteCarloGrouped otherwise.
func (q *QueryBuilder) MonteCarlo(n int) (d *Distribution, err error) {
	defer recoverToError("MonteCarlo", &err)
	c, err := q.compile()
	if err != nil {
		return nil, err
	}
	if c.grouped() || len(c.agg.Aggs) > 1 {
		return nil, fmt.Errorf("mcdbr: query has GROUP BY or multiple aggregates; use MonteCarloGrouped")
	}
	return q.e.runMonteCarlo(nil, c, n, q.e.seed, q.e.parallelism, q.e.maxQueryBytes)
}

// MonteCarloGrouped runs a grouped and/or multi-aggregate query with n
// plain Monte Carlo repetitions in a single pass: the plan executes once
// per run, tuples are partitioned by their deterministic group key once,
// and every repetition produces the whole per-group aggregate vector in
// one sweep — no per-group re-execution.
func (q *QueryBuilder) MonteCarloGrouped(n int) (gd *GroupedDistribution, err error) {
	defer recoverToError("MonteCarloGrouped", &err)
	c, err := q.compile()
	if err != nil {
		return nil, err
	}
	return q.e.runGroupedMonteCarlo(nil, c, n, q.e.seed, q.e.parallelism, q.e.maxQueryBytes)
}

// MonteCarloAdaptive runs the query under the builder's Until stopping
// rule: replicates execute in geometrically growing replicate-sharded
// rounds and stop as soon as every (group, aggregate) estimate's relative
// CI half-width meets the target (or at the rule's MaxSamples). The
// replicates actually run are bit-identical to MonteCarloGrouped of the
// same count, at every worker count. Ungrouped single-aggregate queries
// return one group with an empty key.
func (q *QueryBuilder) MonteCarloAdaptive() (gd *GroupedDistribution, report *AdaptiveReport, err error) {
	defer recoverToError("MonteCarloAdaptive", &err)
	c, err := q.compile()
	if err != nil {
		return nil, nil, err
	}
	if c.stop == nil {
		return nil, nil, fmt.Errorf("mcdbr: MonteCarloAdaptive needs a stopping rule; call Until first")
	}
	res, rule, err := q.e.runAdaptiveRuns(nil, c, stopRuleFromSpec(c.stop), q.e.seed, q.e.parallelism, q.e.maxQueryBytes, nil)
	if err != nil {
		return nil, nil, err
	}
	if gd, err = buildGroupedDistribution(c, res.Runs, res.SamplesUsed); err != nil {
		return nil, nil, err
	}
	return gd, adaptiveReport(c, res, rule), nil
}

// runMonteCarlo executes a compiled single-aggregate ungrouped plan for n
// Monte Carlo repetitions through the grouped single-pass evaluator (one
// group, one aggregate — the per-repetition arithmetic is bit-for-bit
// the pre-ISSUE-5 path). It is the shared execution path of
// QueryBuilder.MonteCarlo and PreparedQuery.Run; seed and workers are
// per-run so prepared queries can override them.
func (e *Engine) runMonteCarlo(ctx context.Context, c *compiled, n int, seed uint64, workers int, maxBytes int64) (*Distribution, error) {
	gr, err := e.runGroupedRuns(ctx, c, n, seed, workers, maxBytes)
	if err != nil {
		return nil, err
	}
	samples := gr.Samples[0][0]
	if err := stats.CheckFinite(samples); err != nil {
		return nil, fmt.Errorf("mcdbr: Monte Carlo produced a non-finite query result (%w); check VG parameters and aggregate expressions", err)
	}
	return newDistribution(samples), nil
}

// runGroupedRuns is the raw single-pass grouped execution shared by the
// Distribution-building paths.
func (e *Engine) runGroupedRuns(ctx context.Context, c *compiled, n int, seed uint64, workers int, maxBytes int64) (*gibbs.GroupedRuns, error) {
	// Plain Monte Carlo evaluates exactly positions [0, n) of every
	// stream, so the window is n — not the engine window, which exists to
	// amortize tail-sampling replenishment. (Shard workers already
	// materialize exactly their replicate range; stream values depend only
	// on (seed, position), so the window size never changes results.)
	ws := e.newRunWorkspace(seed, n, maxBytes)
	ws.Ctx = ctx
	return gibbs.MonteCarloGroupedParallel(ws, c.agg, c.gq.FinalPred, n, workers)
}

// runGroupedMonteCarlo executes a compiled grouped/multi-aggregate plan
// and builds the per-group result distributions. With a HAVING clause,
// each group keeps only the repetitions in which the predicate held;
// groups that never satisfy it are dropped.
func (e *Engine) runGroupedMonteCarlo(ctx context.Context, c *compiled, n int, seed uint64, workers int, maxBytes int64) (*GroupedDistribution, error) {
	gr, err := e.runGroupedRuns(ctx, c, n, seed, workers, maxBytes)
	if err != nil {
		return nil, err
	}
	return buildGroupedDistribution(c, gr, n)
}

// buildGroupedDistribution turns raw grouped runs into the per-group
// result distributions; n is the replicate count the runs hold (shared by
// the fixed-N and adaptive paths, where n is the replicates actually run).
func buildGroupedDistribution(c *compiled, gr *gibbs.GroupedRuns, n int) (*GroupedDistribution, error) {
	out := &GroupedDistribution{
		GroupCols: c.agg.GroupColNames(),
		AggCols:   c.agg.AggColNames(),
	}
	for g := range gr.Keys {
		kept := n
		samples := gr.Samples[g]
		if gr.Include != nil {
			samples = make([][]float64, len(gr.Samples[g]))
			kept = 0
			for _, inc := range gr.Include[g] {
				if inc {
					kept++
				}
			}
			if kept == 0 {
				continue // the group never satisfied HAVING
			}
			for a := range samples {
				filtered := make([]float64, 0, kept)
				for r, inc := range gr.Include[g] {
					if inc {
						filtered = append(filtered, gr.Samples[g][a][r])
					}
				}
				samples[a] = filtered
			}
		}
		gd := GroupDistribution{
			Key:       gr.Keys[g],
			Dists:     make([]*Distribution, len(samples)),
			Inclusion: float64(kept) / float64(n),
		}
		for a := range samples {
			if err := stats.CheckFinite(samples[a]); err != nil {
				return nil, fmt.Errorf("mcdbr: group %s aggregate %s produced a non-finite query result (%w); check VG parameters and aggregate expressions",
					formatGroupKey(gr.Keys[g]), c.agg.Aggs[a].Name, err)
			}
			gd.Dists[a] = newDistribution(samples[a])
		}
		out.Groups = append(out.Groups, gd)
	}
	return out, nil
}

// TailSampleOptions tunes tail sampling; the zero value uses the Appendix C
// defaults.
type TailSampleOptions struct {
	// TotalSamples is the budget N over all bootstrapping steps (0 =
	// derive from MSRETarget, default target 0.05).
	TotalSamples int
	// MSRETarget selects N when TotalSamples is 0.
	MSRETarget float64
	// K is the number of Gibbs updating steps (default 1).
	K int
	// ForceM overrides the Theorem 1 step count.
	ForceM int
	// MaxTriesPerUpdate bounds rejection sampling per update.
	MaxTriesPerUpdate int
	// Lower samples the lower tail (small-value risk) instead of the upper.
	Lower bool
	// Parallelism overrides the engine's worker count for this query's
	// batch version recomputation (0 = engine default, 1 = sequential).
	Parallelism int
}

// TailSample estimates the (1-p)-quantile of the query-result distribution
// and returns l samples conditioned to lie beyond it — the paper's
//
//	WITH RESULTDISTRIBUTION MONTECARLO(l)
//	DOMAIN result >= QUANTILE(1-p)
//
// clause. For Lower tails the DOMAIN is result <= QUANTILE(p). The query
// must have a single aggregate and no GROUP BY — use TailSampleGrouped
// for per-group tails.
func (q *QueryBuilder) TailSample(p float64, l int, opts TailSampleOptions) (tr *TailResult, err error) {
	defer recoverToError("TailSample", &err)
	c, err := q.compile()
	if err != nil {
		return nil, err
	}
	if c.grouped() || len(c.agg.Aggs) > 1 {
		return nil, fmt.Errorf("mcdbr: query has GROUP BY or multiple aggregates; use TailSampleGrouped")
	}
	return q.e.runTail(nil, c, p, l, opts, q.e.seed, q.e.maxQueryBytes)
}

// TailSampleGrouped runs per-group tail sampling for a GROUP BY query:
// the plan is compiled once, the groups are discovered from one plan run,
// and each group gets its own conditioned Gibbs run restricted to its
// tuples (paper App. A treats GROUP BY over g groups as g conditioned
// queries) — without re-parsing, re-planning, or re-filtering per group,
// and with deterministic prefixes shared through the engine's prefix
// cache. The query must have exactly one aggregate and no HAVING.
func (q *QueryBuilder) TailSampleGrouped(p float64, l int, opts TailSampleOptions) (gt *GroupedTail, err error) {
	defer recoverToError("TailSampleGrouped", &err)
	c, err := q.compile()
	if err != nil {
		return nil, err
	}
	if !c.grouped() {
		return nil, fmt.Errorf("mcdbr: TailSampleGrouped needs GROUP BY; use TailSample")
	}
	return q.e.runGroupedTail(nil, c, p, l, opts, q.e.seed, q.e.maxQueryBytes)
}

// runTail executes a compiled plan's tail sampling in a fresh per-run
// workspace; the shared execution path of QueryBuilder.TailSample and
// PreparedQuery.Run. The looper query is copied, never mutated, so one
// compiled plan can serve concurrent runs.
func (e *Engine) runTail(ctx context.Context, c *compiled, p float64, l int, opts TailSampleOptions, seed uint64, maxBytes int64) (*TailResult, error) {
	gq := c.gq
	gq.LowerTail = opts.Lower
	return e.runTailWith(ctx, c, gq, p, l, opts, seed, maxBytes)
}

// runTailWith is runTail with an explicit looper query — the per-group
// conditioned runs of runGroupedTail pass a group-restricted copy.
func (e *Engine) runTailWith(ctx context.Context, c *compiled, gq gibbs.Query, p float64, l int, opts TailSampleOptions, seed uint64, maxBytes int64) (*TailResult, error) {
	if len(c.agg.Aggs) > 1 {
		return nil, fmt.Errorf("mcdbr: DOMAIN tail sampling conditions on a single aggregate; the query has %d", len(c.agg.Aggs))
	}
	if c.agg.Having != nil {
		return nil, fmt.Errorf("mcdbr: HAVING is not supported with DOMAIN tail sampling; drop the DOMAIN clause or the HAVING clause")
	}
	parallelism := opts.Parallelism
	if parallelism == 0 {
		parallelism = e.parallelism
	}
	cfg, err := tail.Configure(p, l, tail.Options{
		TotalSamples:      opts.TotalSamples,
		MSRETarget:        opts.MSRETarget,
		K:                 opts.K,
		ForceM:            opts.ForceM,
		MaxTriesPerUpdate: opts.MaxTriesPerUpdate,
		Parallelism:       parallelism,
	})
	if err != nil {
		return nil, err
	}
	window := e.window
	if need := cfg.N + cfg.L; need > window {
		window = need
	}
	ws := e.newRunWorkspace(seed, window, maxBytes)
	ws.Ctx = ctx
	res, err := gibbs.Run(ws, c.agg.Child, gq, cfg)
	if err != nil {
		return nil, err
	}
	if err := stats.CheckFinite(res.TailSamples); err != nil {
		return nil, fmt.Errorf("mcdbr: tail sampling produced a non-finite query result (%w); check VG parameters and aggregate expressions", err)
	}
	return &TailResult{
		Distribution:      *newDistribution(res.TailSamples),
		QuantileEstimate:  res.Quantile,
		P:                 p,
		Lower:             gq.LowerTail,
		ExpectedShortfall: stats.ExpectedShortfall(res.TailSamples),
		Diag:              res,
	}, nil
}

// runGroupedTail runs one conditioned Gibbs chain per group of a compiled
// GROUP BY query. Groups are discovered from a single plan run (shared
// with the per-group runs through the deterministic-prefix cache); each
// group's looper then executes in a fresh workspace restricted to the
// group's tuples, exactly as if the query had been run with a per-group
// selection predicate — samples are bit-identical to that formulation.
func (e *Engine) runGroupedTail(ctx context.Context, c *compiled, p float64, l int, opts TailSampleOptions, seed uint64, maxBytes int64) (*GroupedTail, error) {
	if c.agg.Having != nil {
		return nil, fmt.Errorf("mcdbr: HAVING is not supported with DOMAIN tail sampling; drop the DOMAIN clause or the HAVING clause")
	}
	dws := e.newRunWorkspace(seed, e.window, maxBytes)
	dws.Ctx = ctx
	keys, err := c.agg.StreamGroupKeys(dws)
	if err != nil {
		return nil, err
	}
	out := &GroupedTail{
		GroupCols: c.agg.GroupColNames(),
		AggCol:    c.agg.AggColNames()[0],
	}
	for _, key := range keys {
		gq := c.gq
		gq.LowerTail = opts.Lower
		gq.GroupBy = c.agg.GroupBy
		gq.GroupKey = key
		tr, err := e.runTailWith(ctx, c, gq, p, l, opts, seed, maxBytes)
		if err != nil {
			return nil, fmt.Errorf("mcdbr: group %s: %w", formatGroupKey(key), err)
		}
		out.Groups = append(out.Groups, GroupTail{Key: key, Tail: tr})
	}
	return out, nil
}

// Histogram bins the samples into nBins equal-width buckets; a convenience
// for text plots in examples and the bench harness.
func (d *Distribution) Histogram(nBins int) (edges []float64, counts []int) {
	if nBins < 1 || len(d.Samples) == 0 {
		return nil, nil
	}
	s := stats.Summarize(d.Samples)
	lo, hi := s.Min, s.Max
	if hi == lo {
		hi = lo + 1
	}
	width := (hi - lo) / float64(nBins)
	edges = make([]float64, nBins+1)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	counts = make([]int, nBins)
	for _, x := range d.Samples {
		b := int(math.Floor((x - lo) / width))
		if b >= nBins {
			b = nBins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return edges, counts
}
