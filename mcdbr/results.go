package mcdbr

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/gibbs"
	"repro/internal/prng"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/tail"
	"repro/internal/types"
)

// Distribution is a Monte Carlo result distribution: the paper's
// RESULTDISTRIBUTION, materialized as samples plus the FREQUENCYTABLE.
type Distribution struct {
	// Samples are the Monte Carlo query results (conditioned to the tail
	// for TailResult).
	Samples []float64
	// FTable is the paper's FTABLE(value, FRAC) relation.
	FTable *stats.FrequencyTable

	// ecdf caches the sorted sample: building the frequency table already
	// sorts a copy of the samples, so Quantile/Min/ECDF reuse it instead
	// of re-sorting per call. nil for zero-constructed Distributions,
	// which fall back to sorting on demand.
	ecdf *stats.ECDF
}

func newDistribution(samples []float64) *Distribution {
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	return &Distribution{
		Samples: samples,
		FTable:  stats.NewFrequencyTableSorted(sorted),
		ecdf:    stats.NewECDFSorted(sorted),
	}
}

// dist returns the cached ECDF. Distributions built literally rather
// than by the engine have no cache; they sort per call (the pre-cache
// behavior) instead of lazily writing d.ecdf, which would race when one
// Distribution is read from several goroutines.
func (d *Distribution) dist() *stats.ECDF {
	if d.ecdf == nil {
		return stats.NewECDF(d.Samples)
	}
	return d.ecdf
}

// Mean estimates the expected query result.
func (d *Distribution) Mean() float64 { return stats.Summarize(d.Samples).Mean }

// Std estimates the standard deviation of the query result.
func (d *Distribution) Std() float64 { return stats.Summarize(d.Samples).Std }

// Quantile estimates the q-quantile of the (possibly conditioned)
// query-result distribution.
func (d *Distribution) Quantile(q float64) float64 {
	return d.dist().Quantile(q)
}

// Min returns the smallest sample — for a tail distribution, the paper's
// SELECT MIN(totalLoss) FROM FTABLE tail-boundary estimate.
func (d *Distribution) Min() float64 { return d.dist().Min() }

// ExpectedValue returns SUM(value*FRAC) over the frequency table; on a
// tail distribution this is the expected shortfall.
func (d *Distribution) ExpectedValue() float64 { return d.FTable.WeightedSum() }

// ECDF returns the empirical CDF of the samples.
func (d *Distribution) ECDF() *stats.ECDF { return d.dist() }

// FTableRelation materializes the frequency table as an ordinary relation
// FTABLE(value FLOAT, frac FLOAT) that can be registered and re-queried,
// as in the paper's follow-up queries over FTABLE.
func (d *Distribution) FTableRelation(name string) *storage.Table {
	t := storage.NewTable(name, types.NewSchema(
		types.Column{Name: "value", Kind: types.KindFloat},
		types.Column{Name: "frac", Kind: types.KindFloat},
	))
	for i, v := range d.FTable.Values {
		t.MustAppend(types.Row{types.NewFloat(v), types.NewFloat(d.FTable.Fracs[i])})
	}
	return t
}

// TailResult is the output of MCDB-R tail sampling: a conditioned result
// distribution over the tail plus the extreme-quantile estimate.
type TailResult struct {
	Distribution
	// QuantileEstimate is theta-hat, the estimated (1-P)-quantile (or
	// P-quantile for lower tails).
	QuantileEstimate float64
	// P is the tail probability defining the quantile.
	P float64
	// Lower reports whether this is a lower tail.
	Lower bool
	// ExpectedShortfall is E[result | result in tail].
	ExpectedShortfall float64
	// Diag exposes the Gibbs looper's per-iteration statistics.
	Diag *gibbs.Result
}

// MonteCarlo runs the query with n plain Monte Carlo repetitions (original
// MCDB semantics) and returns the unconditioned result distribution. The
// repetitions are replicate-sharded across the engine's worker count (see
// WithParallelism); samples are identical for every worker count.
func (q *QueryBuilder) MonteCarlo(n int) (d *Distribution, err error) {
	defer recoverToError("MonteCarlo", &err)
	c, err := q.compile()
	if err != nil {
		return nil, err
	}
	return q.e.runMonteCarlo(c, n, q.e.seed, q.e.parallelism)
}

// runMonteCarlo executes a compiled plan for n Monte Carlo repetitions in
// a fresh per-run workspace. It is the shared execution path of
// QueryBuilder.MonteCarlo and PreparedQuery.Run; seed and workers are
// per-run so prepared queries can override them.
func (e *Engine) runMonteCarlo(c *compiled, n int, seed uint64, workers int) (*Distribution, error) {
	// Plain Monte Carlo evaluates exactly positions [0, n) of every
	// stream, so the window is n — not the engine window, which exists to
	// amortize tail-sampling replenishment. (Shard workers already
	// materialize exactly their replicate range; stream values depend only
	// on (seed, position), so the window size never changes results.)
	ws := exec.NewWorkspace(e.cat, prng.NewStream(seed), n)
	ws.Prefix = e.prefixHandle()
	samples, err := gibbs.MonteCarloParallel(ws, c.plan, c.gq, n, workers)
	if err != nil {
		return nil, err
	}
	if err := stats.CheckFinite(samples); err != nil {
		return nil, fmt.Errorf("mcdbr: Monte Carlo produced a non-finite query result (%w); check VG parameters and aggregate expressions", err)
	}
	return newDistribution(samples), nil
}

// TailSampleOptions tunes tail sampling; the zero value uses the Appendix C
// defaults.
type TailSampleOptions struct {
	// TotalSamples is the budget N over all bootstrapping steps (0 =
	// derive from MSRETarget, default target 0.05).
	TotalSamples int
	// MSRETarget selects N when TotalSamples is 0.
	MSRETarget float64
	// K is the number of Gibbs updating steps (default 1).
	K int
	// ForceM overrides the Theorem 1 step count.
	ForceM int
	// MaxTriesPerUpdate bounds rejection sampling per update.
	MaxTriesPerUpdate int
	// Lower samples the lower tail (small-value risk) instead of the upper.
	Lower bool
	// Parallelism overrides the engine's worker count for this query's
	// batch version recomputation (0 = engine default, 1 = sequential).
	Parallelism int
}

// TailSample estimates the (1-p)-quantile of the query-result distribution
// and returns l samples conditioned to lie beyond it — the paper's
//
//	WITH RESULTDISTRIBUTION MONTECARLO(l)
//	DOMAIN result >= QUANTILE(1-p)
//
// clause. For Lower tails the DOMAIN is result <= QUANTILE(p).
func (q *QueryBuilder) TailSample(p float64, l int, opts TailSampleOptions) (tr *TailResult, err error) {
	defer recoverToError("TailSample", &err)
	c, err := q.compile()
	if err != nil {
		return nil, err
	}
	return q.e.runTail(c, p, l, opts, q.e.seed)
}

// runTail executes a compiled plan's tail sampling in a fresh per-run
// workspace; the shared execution path of QueryBuilder.TailSample and
// PreparedQuery.Run. The looper query is copied, never mutated, so one
// compiled plan can serve concurrent runs.
func (e *Engine) runTail(c *compiled, p float64, l int, opts TailSampleOptions, seed uint64) (*TailResult, error) {
	parallelism := opts.Parallelism
	if parallelism == 0 {
		parallelism = e.parallelism
	}
	cfg, err := tail.Configure(p, l, tail.Options{
		TotalSamples:      opts.TotalSamples,
		MSRETarget:        opts.MSRETarget,
		K:                 opts.K,
		ForceM:            opts.ForceM,
		MaxTriesPerUpdate: opts.MaxTriesPerUpdate,
		Parallelism:       parallelism,
	})
	if err != nil {
		return nil, err
	}
	window := e.window
	if need := cfg.N + cfg.L; need > window {
		window = need
	}
	ws := exec.NewWorkspace(e.cat, prng.NewStream(seed), window)
	ws.Prefix = e.prefixHandle()
	gq := c.gq
	gq.LowerTail = opts.Lower
	res, err := gibbs.Run(ws, c.plan, gq, cfg)
	if err != nil {
		return nil, err
	}
	if err := stats.CheckFinite(res.TailSamples); err != nil {
		return nil, fmt.Errorf("mcdbr: tail sampling produced a non-finite query result (%w); check VG parameters and aggregate expressions", err)
	}
	return &TailResult{
		Distribution:      *newDistribution(res.TailSamples),
		QuantileEstimate:  res.Quantile,
		P:                 p,
		Lower:             opts.Lower,
		ExpectedShortfall: stats.ExpectedShortfall(res.TailSamples),
		Diag:              res,
	}, nil
}

// GroupedTailSample implements the paper's App. A footnote: a GROUP BY
// query over g groups is treated as g separate queries, each with a
// selection predicate limiting it to one group. groupCol must be a
// deterministic column; its distinct values are taken from table
// groupTable in the engine catalog.
func (q *QueryBuilder) GroupedTailSample(groupTable, groupCol string, p float64, l int, opts TailSampleOptions) (map[string]*TailResult, error) {
	values, qualCol, err := q.groupValues(groupTable, groupCol)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*TailResult, len(values))
	for _, v := range values {
		gq := q.cloneWith(expr.B(expr.OpEq, expr.C(qualCol), &expr.Const{Val: v}))
		res, err := gq.TailSample(p, l, opts)
		if err != nil {
			return nil, fmt.Errorf("mcdbr: group %s: %w", v, err)
		}
		out[v.String()] = res
	}
	return out, nil
}

// GroupedMonteCarlo runs one plain Monte Carlo query per distinct value of
// groupCol in groupTable (the GROUP BY treatment of paper App. A, without
// conditioning).
func (q *QueryBuilder) GroupedMonteCarlo(groupTable, groupCol string, n int) (map[string]*Distribution, error) {
	values, qualCol, err := q.groupValues(groupTable, groupCol)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*Distribution, len(values))
	for _, v := range values {
		gq := q.cloneWith(expr.B(expr.OpEq, expr.C(qualCol), &expr.Const{Val: v}))
		d, err := gq.MonteCarlo(n)
		if err != nil {
			return nil, fmt.Errorf("mcdbr: group %s: %w", v, err)
		}
		out[v.String()] = d
	}
	return out, nil
}

// groupValues resolves the distinct grouping values and the qualified
// predicate column for grouped execution.
func (q *QueryBuilder) groupValues(groupTable, groupCol string) ([]types.Value, string, error) {
	t, ok := q.e.cat.Get(groupTable)
	if !ok {
		return nil, "", fmt.Errorf("mcdbr: group table %q not registered", groupTable)
	}
	idx := t.Schema().Lookup(groupCol)
	if idx < 0 {
		return nil, "", fmt.Errorf("mcdbr: group column %q not in %s", groupCol, groupTable)
	}
	var values []types.Value
	seen := map[string]bool{}
	for _, r := range t.Rows() {
		key := r[idx].String()
		if !seen[key] {
			seen[key] = true
			values = append(values, r[idx])
		}
	}
	sort.Slice(values, func(i, j int) bool { return values[i].Compare(values[j]) < 0 })
	qualCol := groupCol
	if !strings.Contains(groupCol, ".") {
		for _, f := range q.froms {
			if strings.EqualFold(f.table, groupTable) {
				qualCol = f.alias + "." + groupCol
				break
			}
		}
	}
	return values, qualCol, nil
}

// cloneWith copies the builder and appends one predicate.
func (q *QueryBuilder) cloneWith(pred expr.Expr) *QueryBuilder {
	gq := &QueryBuilder{e: q.e, agg: q.agg, aggE: q.aggE}
	gq.froms = append(gq.froms, q.froms...)
	gq.where = append(gq.where, q.where...)
	gq.where = append(gq.where, pred)
	return gq
}

// Histogram bins the samples into nBins equal-width buckets; a convenience
// for text plots in examples and the bench harness.
func (d *Distribution) Histogram(nBins int) (edges []float64, counts []int) {
	if nBins < 1 || len(d.Samples) == 0 {
		return nil, nil
	}
	s := stats.Summarize(d.Samples)
	lo, hi := s.Min, s.Max
	if hi == lo {
		hi = lo + 1
	}
	width := (hi - lo) / float64(nBins)
	edges = make([]float64, nBins+1)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	counts = make([]int, nBins)
	for _, x := range d.Samples {
		b := int(math.Floor((x - lo) / width))
		if b >= nBins {
			b = nBins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return edges, counts
}
