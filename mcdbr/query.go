package mcdbr

import (
	"fmt"
	"strings"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/gibbs"
)

// Agg names the supported aggregates.
type Agg = gibbs.AggKind

// Aggregate kinds re-exported for the public API.
const (
	Sum   = gibbs.AggSum
	Count = gibbs.AggCount
	Avg   = gibbs.AggAvg
)

// QueryBuilder assembles an aggregation query over ordinary and random
// tables. Build one with Engine.Query, chain the fluent methods, then call
// MonteCarlo or TailSample.
type QueryBuilder struct {
	e     *Engine
	froms []fromItem
	where []expr.Expr
	agg   Agg
	aggE  expr.Expr
	err   error
}

type fromItem struct {
	table, alias string
}

// Query starts a new query.
func (e *Engine) Query() *QueryBuilder { return &QueryBuilder{e: e} }

// From adds a table (ordinary or random) under an alias; an empty alias
// defaults to the table name. Self-joins use distinct aliases, as in the
// paper's salary-inversion query (emp AS emp1, emp AS emp2).
func (q *QueryBuilder) From(table, alias string) *QueryBuilder {
	if alias == "" {
		alias = table
	}
	q.froms = append(q.froms, fromItem{table: table, alias: alias})
	return q
}

// Where adds a conjunct to the WHERE clause.
func (q *QueryBuilder) Where(pred expr.Expr) *QueryBuilder {
	q.where = append(q.where, expr.SplitConjuncts(pred)...)
	return q
}

// SelectSum sets the aggregate to SUM(e).
func (q *QueryBuilder) SelectSum(e expr.Expr) *QueryBuilder {
	q.agg, q.aggE = Sum, e
	return q
}

// SelectCount sets the aggregate to COUNT(*).
func (q *QueryBuilder) SelectCount() *QueryBuilder {
	q.agg, q.aggE = Count, nil
	return q
}

// SelectAvg sets the aggregate to AVG(e).
func (q *QueryBuilder) SelectAvg(e expr.Expr) *QueryBuilder {
	q.agg, q.aggE = Avg, e
	return q
}

// plan compiles the builder into an executable plan plus the looper query.
type compiled struct {
	ws   *exec.Workspace
	plan exec.Node
	gq   gibbs.Query
}

// compile builds the physical plan: one subplan per FROM item (random
// tables expand to Scan -> Seed -> Instantiate -> ProjectAs -> Rename),
// left-deep hash joins over WHERE equi-conjuncts (inserting Split before
// joins on random attributes, paper §8), per-alias selections pushed below
// the join, cross-alias deterministic selections above it, and predicates
// spanning random attributes of several aliases pulled into the looper's
// final predicate (paper App. A).
func (q *QueryBuilder) compile(window int) (*compiled, error) {
	if len(q.froms) == 0 {
		return nil, fmt.Errorf("mcdbr: query has no FROM items")
	}
	if q.aggE == nil && q.agg != Count {
		return nil, fmt.Errorf("mcdbr: query has no aggregate; call SelectSum/SelectCount/SelectAvg")
	}
	seen := map[string]bool{}
	for _, f := range q.froms {
		key := strings.ToLower(f.alias)
		if seen[key] {
			return nil, fmt.Errorf("mcdbr: duplicate alias %q", f.alias)
		}
		seen[key] = true
	}
	if window <= 0 {
		window = q.e.window
	}
	ws := exec.NewWorkspace(q.e.cat, q.e.masterStream(), window)

	// Classify WHERE conjuncts.
	aliasOf := func(col string) (string, bool) {
		i := strings.IndexByte(col, '.')
		if i < 0 {
			return "", false
		}
		return strings.ToLower(col[:i]), true
	}
	tableOf := map[string]string{}
	for _, f := range q.froms {
		tableOf[strings.ToLower(f.alias)] = f.table
	}
	colIsRandom := func(col string) bool {
		a, ok := aliasOf(col)
		if !ok {
			return false
		}
		t, ok := tableOf[a]
		if !ok {
			return false
		}
		base := col[strings.IndexByte(col, '.')+1:]
		return q.e.isRandomColumn(t, base)
	}
	type conjunct struct {
		e           expr.Expr
		aliases     map[string]bool
		randAliases map[string]bool
		used        bool
	}
	conjs := make([]conjunct, len(q.where))
	for i, c := range q.where {
		cj := conjunct{e: c, aliases: map[string]bool{}, randAliases: map[string]bool{}}
		for _, col := range expr.Columns(c) {
			a, ok := aliasOf(col)
			if !ok {
				// Unqualified columns: resolve by probing each alias later;
				// for classification, treat as belonging to all aliases
				// that can resolve it. Conservative: require qualified
				// names in multi-table queries.
				if len(q.froms) > 1 {
					return nil, fmt.Errorf("mcdbr: unqualified column %q in multi-table query; qualify as alias.column", col)
				}
				a = strings.ToLower(q.froms[0].alias)
			}
			cj.aliases[a] = true
			if colIsRandom(qualify(a, col)) {
				cj.randAliases[a] = true
			}
		}
		conjs[i] = cj
	}

	// Build per-alias subplans with single-alias selections pushed down.
	subplans := make([]exec.Node, len(q.froms))
	randCols := make([]map[string]bool, len(q.froms))
	for i, f := range q.froms {
		sub, rc, err := q.e.buildFromItem(ws, f)
		if err != nil {
			return nil, err
		}
		randCols[i] = rc
		for j := range conjs {
			cj := &conjs[j]
			if cj.used || len(cj.aliases) != 1 || !cj.aliases[strings.ToLower(f.alias)] {
				continue
			}
			// Defer single-alias predicates spanning... impossible: one
			// alias means at most one seed per tuple here, except multi-VG
			// tables; exec.Select validates per tuple.
			sub = &exec.Select{Child: sub, Pred: cj.e}
			cj.used = true
		}
		subplans[i] = sub
	}

	// Left-deep joins over equi-conjuncts.
	plan := subplans[0]
	joined := map[string]bool{strings.ToLower(q.froms[0].alias): true}
	joinedIdx := []int{0}
	remaining := make([]int, 0, len(q.froms)-1)
	for i := 1; i < len(q.froms); i++ {
		remaining = append(remaining, i)
	}
	for len(remaining) > 0 {
		progress := false
		for ri, idx := range remaining {
			alias := strings.ToLower(q.froms[idx].alias)
			var lKeys, rKeys []string
			for j := range conjs {
				cj := &conjs[j]
				if cj.used || len(cj.aliases) != 2 || !cj.aliases[alias] {
					continue
				}
				other := ""
				for a := range cj.aliases {
					if a != alias {
						other = a
					}
				}
				if !joined[other] {
					continue
				}
				l, r, ok := expr.EquiJoinSides(cj.e)
				if !ok {
					continue
				}
				// Order sides: l belongs to the joined plan, r to the new one.
				la, _ := aliasOf(l)
				if la == alias {
					l, r = r, l
				}
				lKeys = append(lKeys, l)
				rKeys = append(rKeys, r)
				cj.used = true
			}
			if len(lKeys) == 0 {
				continue
			}
			// Split random join keys (paper §8) on either side.
			left := plan
			right := subplans[idx]
			for _, k := range lKeys {
				if colIsRandom(k) {
					left = &exec.Split{Child: left, Col: k}
				}
			}
			for _, k := range rKeys {
				if colIsRandom(k) {
					right = &exec.Split{Child: right, Col: k}
				}
			}
			j, err := exec.NewHashJoin(left, right, lKeys, rKeys, nil)
			if err != nil {
				return nil, err
			}
			plan = j
			joined[alias] = true
			joinedIdx = append(joinedIdx, idx)
			remaining = append(remaining[:ri], remaining[ri+1:]...)
			progress = true
			break
		}
		if !progress {
			// No connecting equi-join: fall back to a cross product with
			// the first remaining item.
			idx := remaining[0]
			plan = exec.NewCross(plan, subplans[idx], nil)
			joined[strings.ToLower(q.froms[idx].alias)] = true
			joinedIdx = append(joinedIdx, idx)
			remaining = remaining[1:]
		}
	}

	// Remaining conjuncts: deterministic or single-random-alias ones become
	// a Select above the join; conjuncts touching random columns of >= 2
	// aliases go to the looper's final predicate.
	var selects, finals []expr.Expr
	for j := range conjs {
		cj := &conjs[j]
		if cj.used {
			continue
		}
		if len(cj.randAliases) >= 2 {
			finals = append(finals, cj.e)
		} else {
			selects = append(selects, cj.e)
		}
	}
	if len(selects) > 0 {
		plan = &exec.Select{Child: plan, Pred: expr.And(selects...)}
	}
	gq := gibbs.Query{Agg: q.agg, AggExpr: q.aggE}
	if len(finals) > 0 {
		gq.FinalPred = expr.And(finals...)
	}
	return &compiled{ws: ws, plan: plan, gq: gq}, nil
}

func qualify(alias, col string) string {
	if strings.IndexByte(col, '.') >= 0 {
		return col
	}
	return alias + "." + col
}

// buildFromItem expands one FROM entry into a subplan; for random tables
// this is the paper's Scan -> Seed -> Instantiate pipeline plus projection
// to the declared columns.
func (e *Engine) buildFromItem(ws *exec.Workspace, f fromItem) (exec.Node, map[string]bool, error) {
	if rt, ok := e.rand[strings.ToLower(f.table)]; ok {
		scan, err := exec.NewScan(e.cat, rt.ParamTable, "__param")
		if err != nil {
			return nil, nil, err
		}
		gen, ok := e.vgs.Lookup(rt.VG)
		if !ok {
			return nil, nil, fmt.Errorf("mcdbr: VG function %q not registered", rt.VG)
		}
		// Qualify VG parameter expressions against the param scan.
		params := make([]expr.Expr, len(rt.VGParams))
		for i, p := range rt.VGParams {
			params[i] = p
		}
		outNames := make([]string, len(gen.OutKinds()))
		for i := range outNames {
			outNames[i] = fmt.Sprintf("__vg%d", i)
		}
		seed, err := exec.NewSeed(scan, gen, params, outNames)
		if err != nil {
			return nil, nil, err
		}
		inst := &exec.Instantiate{Child: seed}
		cols := make([]string, len(rt.Columns))
		names := make([]string, len(rt.Columns))
		randSet := map[string]bool{}
		for i, c := range rt.Columns {
			if c.FromParam != "" {
				cols[i] = "__param." + c.FromParam
			} else {
				cols[i] = fmt.Sprintf("__vg%d", c.VGOut)
				randSet[strings.ToLower(c.Name)] = true
			}
			names[i] = c.Name
		}
		proj, err := exec.NewProjectAs(inst, cols, names)
		if err != nil {
			return nil, nil, err
		}
		return exec.NewRename(proj, f.alias), randSet, nil
	}
	scan, err := exec.NewScan(e.cat, f.table, f.alias)
	if err != nil {
		return nil, nil, err
	}
	return scan, map[string]bool{}, nil
}
