package mcdbr

import (
	"fmt"
	"strings"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/gibbs"
	"repro/internal/plan"
)

// Agg names the supported Monte Carlo aggregates. Aggregation is a
// first-class plan/exec operator (internal/exec.Aggregate) since ISSUE 5;
// the kinds live in internal/exec and are re-exported here.
type Agg = exec.AggKind

// Aggregate kinds re-exported for the public API.
const (
	Sum   = exec.AggSum
	Count = exec.AggCount
	Avg   = exec.AggAvg
)

// QueryBuilder assembles an aggregation query over ordinary and random
// tables: a multi-item aggregate select list, optional GROUP BY over
// deterministic expressions, and an optional HAVING predicate. Build one
// with Engine.Query, chain the fluent methods, then call MonteCarlo,
// MonteCarloGrouped, TailSample, TailSampleGrouped, or Explain.
type QueryBuilder struct {
	e       *Engine
	froms   []fromItem
	where   []expr.Expr
	aggs    []plan.AggItem
	groupBy []expr.Expr
	having  expr.Expr
	stop    *plan.StopSpec
	err     error
}

type fromItem struct {
	table, alias string
}

// Query starts a new query.
func (e *Engine) Query() *QueryBuilder { return &QueryBuilder{e: e} }

// From adds a table (ordinary or random) under an alias; an empty alias
// defaults to the table name. Self-joins use distinct aliases, as in the
// paper's salary-inversion query (emp AS emp1, emp AS emp2).
func (q *QueryBuilder) From(table, alias string) *QueryBuilder {
	if alias == "" {
		alias = table
	}
	q.froms = append(q.froms, fromItem{table: table, alias: alias})
	return q
}

// Where adds a conjunct to the WHERE clause.
func (q *QueryBuilder) Where(pred expr.Expr) *QueryBuilder {
	q.where = append(q.where, expr.SplitConjuncts(pred)...)
	return q
}

// SelectSum appends SUM(e) to the select list.
func (q *QueryBuilder) SelectSum(e expr.Expr) *QueryBuilder { return q.SelectSumAs(e, "") }

// SelectSumAs appends SUM(e) AS alias to the select list.
func (q *QueryBuilder) SelectSumAs(e expr.Expr, alias string) *QueryBuilder {
	q.aggs = append(q.aggs, plan.AggItem{Kind: Sum, Expr: e, Alias: alias})
	return q
}

// SelectCount appends COUNT(*) to the select list.
func (q *QueryBuilder) SelectCount() *QueryBuilder { return q.SelectCountAs("") }

// SelectCountAs appends COUNT(*) AS alias to the select list.
func (q *QueryBuilder) SelectCountAs(alias string) *QueryBuilder {
	q.aggs = append(q.aggs, plan.AggItem{Kind: Count, Alias: alias})
	return q
}

// SelectAvg appends AVG(e) to the select list.
func (q *QueryBuilder) SelectAvg(e expr.Expr) *QueryBuilder { return q.SelectAvgAs(e, "") }

// SelectAvgAs appends AVG(e) AS alias to the select list.
func (q *QueryBuilder) SelectAvgAs(e expr.Expr, alias string) *QueryBuilder {
	q.aggs = append(q.aggs, plan.AggItem{Kind: Avg, Expr: e, Alias: alias})
	return q
}

// GroupBy adds grouping expressions; they must evaluate over
// deterministic attributes only (paper App. A).
func (q *QueryBuilder) GroupBy(exprs ...expr.Expr) *QueryBuilder {
	q.groupBy = append(q.groupBy, exprs...)
	return q
}

// Having sets the HAVING predicate, evaluated per group per Monte Carlo
// run over the aggregation output row (grouping columns and aggregate
// aliases). Requires GroupBy; not supported with tail sampling.
func (q *QueryBuilder) Having(pred expr.Expr) *QueryBuilder {
	q.having = pred
	return q
}

// Until sets an adaptive stopping rule — the builder form of
// MONTECARLO(UNTIL ERROR < targetRelError AT confidence, MAX maxSamples).
// Execution (MonteCarloAdaptive, or Exec-style runs of the compiled plan)
// stops as soon as every (group, aggregate) estimate's relative CI
// half-width at the given confidence reaches targetRelError, or after
// maxSamples replicates. confidence <= 0 and maxSamples <= 0 select the
// engine defaults (95%, 65536). The rule is part of the plan's identity:
// two queries differing only in their rule fingerprint differently.
func (q *QueryBuilder) Until(targetRelError, confidence float64, maxSamples int) *QueryBuilder {
	q.stop = &plan.StopSpec{TargetRelError: targetRelError, Confidence: confidence, MaxSamples: maxSamples}
	return q
}

// compiled is a planned query: the physical plan rooted in the grouped
// aggregation operator, the looper query template, and the logical plan
// it was lowered from (for EXPLAIN). A compiled plan holds no per-run
// state — exec nodes are stateless at Run time (mutable state lives in
// the per-run exec.Workspace) — so one compiled plan may be executed by
// many goroutines concurrently; that is what PreparedQuery relies on.
// Callers must copy gq before mutating it.
type compiled struct {
	plan exec.Node       // full physical tree (EXPLAIN)
	agg  *exec.Aggregate // the aggregation root of plan
	gq   gibbs.Query
	lp   *plan.Plan
	// stop is the adaptive stopping rule compiled into the plan (from the
	// statement's UNTIL clause or QueryBuilder.Until); nil for fixed-N.
	stop *plan.StopSpec
}

// compile validates the builder, plans it through the logical-plan layer
// (internal/plan: predicate classification and pushdown, Split insertion,
// greedy join ordering, looper-predicate extraction, aggregate placement
// — see plan.Rules), and lowers the result to physical exec operators.
func (q *QueryBuilder) compile() (*compiled, error) {
	if len(q.froms) == 0 {
		return nil, fmt.Errorf("mcdbr: query has no FROM items")
	}
	if len(q.aggs) == 0 {
		return nil, fmt.Errorf("mcdbr: query has no aggregate; call SelectSum/SelectCount/SelectAvg")
	}
	if q.having != nil && len(q.groupBy) == 0 {
		return nil, fmt.Errorf("mcdbr: HAVING requires GROUP BY")
	}
	seen := map[string]bool{}
	for _, f := range q.froms {
		key := strings.ToLower(f.alias)
		if seen[key] {
			return nil, fmt.Errorf("mcdbr: duplicate alias %q", f.alias)
		}
		seen[key] = true
	}
	froms := make([]plan.From, len(q.froms))
	for i, f := range q.froms {
		froms[i] = plan.From{Table: f.table, Alias: f.alias}
	}
	lp, err := plan.Build(planCatalog{q.e}, plan.Query{
		Froms:   froms,
		Where:   q.where,
		GroupBy: q.groupBy,
		Aggs:    q.aggs,
		Having:  q.having,
		Stop:    q.stop,
	})
	if err != nil {
		return nil, err
	}
	node, err := plan.Lower(lp.Root, q.e.cat, q.e.vgs)
	if err != nil {
		return nil, err
	}
	root, ok := node.(*exec.Aggregate)
	if !ok {
		return nil, fmt.Errorf("mcdbr: internal: lowered plan root is %T, want *exec.Aggregate", node)
	}
	gq := gibbs.Query{Agg: root.Aggs[0]}
	if len(lp.Final) > 0 {
		gq.FinalPred = expr.And(lp.Final...)
	}
	return &compiled{plan: node, agg: root, gq: gq, lp: lp, stop: q.stop}, nil
}

// grouped reports whether the compiled query has grouping expressions.
func (c *compiled) grouped() bool { return len(c.agg.GroupBy) > 0 }

// planCatalog adapts the engine's catalog and random-table definitions to
// the planner's metadata interface.
type planCatalog struct {
	e *Engine
}

// TableRows implements plan.Catalog.
func (c planCatalog) TableRows(name string) (int, bool) {
	t, ok := c.e.cat.Get(name)
	if !ok {
		// Row counts of random tables are those of their parameter table.
		if rt, isRand := c.e.randomDef(name); isRand {
			if pt, ok := c.e.cat.Get(rt.ParamTable); ok {
				return pt.NumRows(), true
			}
		}
		return 0, false
	}
	return t.NumRows(), true
}

// TableColumns implements plan.Catalog.
func (c planCatalog) TableColumns(name string) ([]string, bool) {
	t, ok := c.e.cat.Get(name)
	if !ok {
		return nil, false
	}
	cols := t.Schema().Columns()
	names := make([]string, len(cols))
	for i, col := range cols {
		names[i] = col.Name
	}
	return names, true
}

// Random implements plan.Catalog.
func (c planCatalog) Random(name string) (*plan.RandomMeta, bool) {
	rt, ok := c.e.randomDef(name)
	if !ok {
		return nil, false
	}
	gen, ok := c.e.vgs.Lookup(rt.VG)
	if !ok {
		return nil, false
	}
	meta := &plan.RandomMeta{
		ParamTable: rt.ParamTable,
		VG:         rt.VG,
		VGParams:   rt.VGParams,
		NumOuts:    len(gen.OutKinds()),
		Columns:    make([]plan.RandomColMeta, len(rt.Columns)),
	}
	for i, col := range rt.Columns {
		meta.Columns[i] = plan.RandomColMeta{Name: col.Name, FromParam: col.FromParam, VGOut: col.VGOut}
	}
	return meta, true
}
