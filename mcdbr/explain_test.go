package mcdbr

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/workload"
)

// checkGolden compares an EXPLAIN rendering against its expected text,
// pointing at the first differing line.
func checkGolden(t *testing.T, name, got, want string) {
	t.Helper()
	if got == want {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("%s: line %d differs:\n got: %q\nwant: %q\n\nfull output:\n%s", name, i+1, gl[i], wl[i], got)
		}
	}
	t.Fatalf("%s: length differs (%d vs %d lines):\n%s", name, len(gl), len(wl), got)
}

// TestExplainGoldenQuickstart pins the plan shape of the §2 quickstart
// aggregate: pushdown of the CID filter below the generation pipeline and
// the deterministic parameter scan marked for materialization caching.
func TestExplainGoldenQuickstart(t *testing.T) {
	e := New(WithSeed(42))
	e.RegisterTable(workload.LossMeans(100, 2, 8, 7))
	if _, err := e.Exec(`
CREATE TABLE Losses (CID, val) AS
FOR EACH CID IN means
WITH myVal AS Normal(VALUES(m, 1.0))
SELECT CID, myVal.* FROM myVal`); err != nil {
		t.Fatal(err)
	}
	x, err := e.Explain(`EXPLAIN SELECT SUM(val) AS totalLoss FROM Losses WHERE CID < 10050 WITH RESULTDISTRIBUTION MONTECARLO(1000)`)
	if err != nil {
		t.Fatal(err)
	}
	want := `logical plan:
  Aggregate[SUM(Losses.val) AS totalLoss] [rows~1]
    Filter((Losses.CID < 10050)) [rows~30]
      Rename(Losses) [rows~100]
        Project[CID, val] [rows~100]
          Instantiate [rows~100]
            Seed(Normal) [rows~100]
              Rel(means AS __param) [rows~100 det]
rules fired:
  resolve-columns
  expand-random-tables
  push-filters-below-joins
  place-aggregate
  mark-deterministic
physical plan:
  Aggregate[SUM(Losses.val) AS totalLoss] [sink] [vectorized=true]
    Select((Losses.CID < 10050)) [stream] [vectorized=true]
      Rename(Losses) [stream]
        Project[__param.CID __vg0] [stream]
          Instantiate [stream]
            Seed(Normal) [stream]
              Scan(means AS __param) [det] [stream]
aggregate: SUM(Losses.val) AS totalLoss
note: streaming executor: pull-based batches of 1024 tuples
note: plain Monte Carlo, 1000 repetitions
`
	checkGolden(t, "quickstart", x.String(), want)
}

// TestExplainGoldenSalaryInversion pins the Fig. 2 self-join: joins are
// ordered smallest-first (sup, 4 rows, not FROM order), and the cross-seed
// predicate emp2.sal > emp1.sal leaves the plan for the looper's final
// predicate (paper App. A).
func TestExplainGoldenSalaryInversion(t *testing.T) {
	e := New(WithSeed(77))
	sup, empmeans := workload.SalaryDB()
	e.RegisterTable(sup)
	e.RegisterTable(empmeans)
	if err := e.DefineRandomTable(RandomTable{
		Name: "emp", ParamTable: "empmeans", VG: "Normal",
		VGParams: []expr.Expr{expr.C("msal"), expr.F(4e6)},
		Columns:  []RandomCol{{Name: "eid", FromParam: "eid"}, {Name: "sal", VGOut: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	x, err := e.Explain(`EXPLAIN SELECT SUM(emp2.sal - emp1.sal) AS inv
FROM emp AS emp1, emp AS emp2, sup
WHERE sup.boss = emp1.eid AND sup.peon = emp2.eid AND emp2.sal > emp1.sal
WITH RESULTDISTRIBUTION MONTECARLO(100)`)
	if err != nil {
		t.Fatal(err)
	}
	want := `logical plan:
  Aggregate[SUM((emp2.sal - emp1.sal)) AS inv] [rows~1]
    Join(sup.peon = emp2.eid) [rows~4]
      Join(sup.boss = emp1.eid) [rows~4]
        Rel(sup AS sup) [rows~4 det]
        Rename(emp1) [rows~5]
          Project[eid, sal] [rows~5]
            Instantiate [rows~5]
              Seed(Normal) [rows~5]
                Rel(empmeans AS __param) [rows~5 det]
      Rename(emp2) [rows~5]
        Project[eid, sal] [rows~5]
          Instantiate [rows~5]
            Seed(Normal) [rows~5]
              Rel(empmeans AS __param) [rows~5 det]
rules fired:
  expand-random-tables
  order-joins-greedy
  extract-looper-predicates
  place-aggregate
  mark-deterministic
physical plan:
  Aggregate[SUM((emp2.sal - emp1.sal)) AS inv] [sink] [vectorized=true]
    HashJoin([sup.peon] = [emp2.eid]) [build+stream] [vectorized=true]
      HashJoin([sup.boss] = [emp1.eid]) [build+stream] [vectorized=true]
        Scan(sup AS sup) [det] [stream]
        Rename(emp1) [stream]
          Project[__param.eid __vg0] [stream]
            Instantiate [stream]
              Seed(Normal) [stream]
                Scan(empmeans AS __param) [det] [stream]
      Rename(emp2) [stream]
        Project[__param.eid __vg0] [stream]
          Instantiate [stream]
            Seed(Normal) [stream]
              Scan(empmeans AS __param) [det] [stream]
final predicate (Gibbs looper): (emp2.sal > emp1.sal)
aggregate: SUM((emp2.sal - emp1.sal)) AS inv
note: streaming executor: pull-based batches of 1024 tuples
note: plain Monte Carlo, 100 repetitions
`
	checkGolden(t, "salary-inversion", x.String(), want)
}

// TestExplainGoldenSplitJoin pins the §8 rewrite: a join keyed on a
// VG-generated attribute gets a Split below the join, converting the
// random key into a deterministic one.
func TestExplainGoldenSplitJoin(t *testing.T) {
	e := New(WithSeed(31))
	rc := storage.NewTable("riskclass", types.NewSchema(
		types.Column{Name: "rid", Kind: types.KindFloat},
		types.Column{Name: "premium", Kind: types.KindFloat},
	))
	rc.MustAppend(types.Row{types.NewFloat(0), types.NewFloat(10)})
	rc.MustAppend(types.Row{types.NewFloat(1), types.NewFloat(100)})
	e.RegisterTable(rc)
	cust := storage.NewTable("cust", types.NewSchema(
		types.Column{Name: "cid", Kind: types.KindInt},
		types.Column{Name: "p", Kind: types.KindFloat},
	))
	for i := 0; i < 12; i++ {
		cust.MustAppend(types.Row{types.NewInt(int64(i)), types.NewFloat(0.25)})
	}
	e.RegisterTable(cust)
	if err := e.DefineRandomTable(RandomTable{
		Name: "assignment", ParamTable: "cust", VG: "Bernoulli",
		VGParams: []expr.Expr{expr.C("p")},
		Columns:  []RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "class", VGOut: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	x, err := e.Explain(`EXPLAIN SELECT SUM(r.premium) AS total FROM assignment AS a, riskclass AS r
WHERE a.class = r.rid WITH RESULTDISTRIBUTION MONTECARLO(4000)`)
	if err != nil {
		t.Fatal(err)
	}
	want := `logical plan:
  Aggregate[SUM(r.premium) AS total] [rows~1]
    Join(r.rid = a.class) [rows~2]
      Rel(riskclass AS r) [rows~2 det]
      Split(a.class) [rows~48]
        Rename(a) [rows~12]
          Project[cid, class] [rows~12]
            Instantiate [rows~12]
              Seed(Bernoulli) [rows~12]
                Rel(cust AS __param) [rows~12 det]
rules fired:
  expand-random-tables
  order-joins-greedy
  split-random-join-keys
  place-aggregate
  mark-deterministic
physical plan:
  Aggregate[SUM(r.premium) AS total] [sink] [vectorized=true]
    HashJoin([r.rid] = [a.class]) [build+stream] [vectorized=true]
      Scan(riskclass AS r) [det] [stream]
      Split(a.class) [stream]
        Rename(a) [stream]
          Project[__param.cid __vg0] [stream]
            Instantiate [stream]
              Seed(Bernoulli) [stream]
                Scan(cust AS __param) [det] [stream]
aggregate: SUM(r.premium) AS total
note: streaming executor: pull-based batches of 1024 tuples
note: plain Monte Carlo, 4000 repetitions
`
	checkGolden(t, "split-join", x.String(), want)
}

// TestExplainGoldenGroupByTail pins the App. A GROUP BY treatment: the
// grouped Aggregate root plus notes for the per-group conditioned Gibbs
// runs and tail sampling.
func TestExplainGoldenGroupByTail(t *testing.T) {
	e := New(WithSeed(42))
	e.RegisterTable(workload.LossMeans(100, 2, 8, 7))
	if _, err := e.Exec(`
CREATE TABLE Losses (CID, val) AS
FOR EACH CID IN means
WITH myVal AS Normal(VALUES(m, 1.0))
SELECT CID, myVal.* FROM myVal`); err != nil {
		t.Fatal(err)
	}
	x, err := e.Explain(`EXPLAIN SELECT SUM(val) AS x FROM Losses GROUP BY CID
WITH RESULTDISTRIBUTION MONTECARLO(20) DOMAIN x >= QUANTILE(0.9)`)
	if err != nil {
		t.Fatal(err)
	}
	want := `logical plan:
  Aggregate[SUM(Losses.val) AS x; group by Losses.CID] [rows~10]
    Rename(Losses) [rows~100]
      Project[CID, val] [rows~100]
        Instantiate [rows~100]
          Seed(Normal) [rows~100]
            Rel(means AS __param) [rows~100 det]
rules fired:
  resolve-columns
  expand-random-tables
  place-aggregate
  mark-deterministic
physical plan:
  Aggregate[SUM(Losses.val) AS x; group by Losses.CID] [sink] [vectorized=true]
    Rename(Losses) [stream]
      Project[__param.CID __vg0] [stream]
        Instantiate [stream]
          Seed(Normal) [stream]
            Scan(means AS __param) [det] [stream]
aggregate: SUM(Losses.val) AS x
note: streaming executor: pull-based batches of 1024 tuples
note: GROUP BY CID: one conditioned Gibbs run per group over one shared plan (paper App. A)
note: DOMAIN x >= QUANTILE(0.9): Gibbs tail sampling, 20 conditioned samples
`
	checkGolden(t, "group-by-tail", x.String(), want)
}

// TestExplainFromBuilder: the fluent API exposes the same explanation.
func TestExplainFromBuilder(t *testing.T) {
	e := New(WithSeed(1))
	e.RegisterTable(workload.LossMeans(10, 2, 8, 3))
	if err := e.DefineRandomTable(RandomTable{
		Name: "losses", ParamTable: "means", VG: "Normal",
		VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
		Columns:  []RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	x, err := e.Query().From("losses", "l").
		Where(expr.B(expr.OpLt, expr.C("cid"), expr.I(10005))).
		SelectSum(expr.C("val")).
		Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(x.Logical, "Filter((l.cid < 10005))") {
		t.Fatalf("builder explain missing resolved filter:\n%s", x.Logical)
	}
	if len(x.Rules) == 0 || x.Rules[0] != "resolve-columns" {
		t.Fatalf("rules = %v", x.Rules)
	}
	if !strings.Contains(x.Physical, "Seed(Normal)") {
		t.Fatalf("physical plan missing Seed:\n%s", x.Physical)
	}
}

// TestExplainErrors: EXPLAIN rejects what it cannot plan.
func TestExplainErrors(t *testing.T) {
	e := New(WithSeed(1))
	e.RegisterTable(workload.LossMeans(5, 2, 8, 3))
	if _, err := e.Explain(`EXPLAIN SELECT MIN(m) FROM means`); err == nil {
		t.Fatal("MIN must not be plannable")
	}
	if _, err := e.Explain(`SELECT SUM(x) FROM nope WITH RESULTDISTRIBUTION MONTECARLO(5)`); err == nil {
		t.Fatal("unknown table must error")
	}
	if _, err := e.Exec(`EXPLAIN CREATE TABLE x (a) AS FOR EACH a IN means WITH v AS Normal(VALUES(m,1)) SELECT v.*`); err == nil {
		t.Fatal("EXPLAIN CREATE must be rejected")
	}
}

// TestExecExplainKind: EXPLAIN through Exec produces ExecExplained without
// running the query.
func TestExecExplainKind(t *testing.T) {
	e := New(WithSeed(42))
	e.RegisterTable(workload.LossMeans(10, 2, 8, 7))
	if _, err := e.Exec(`
CREATE TABLE Losses (CID, val) AS
FOR EACH CID IN means
WITH myVal AS Normal(VALUES(m, 1.0))
SELECT CID, myVal.* FROM myVal`); err != nil {
		t.Fatal(err)
	}
	res, err := e.Exec(`EXPLAIN SELECT SUM(val) AS t FROM Losses WITH RESULTDISTRIBUTION MONTECARLO(999999999)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != ExecExplained || res.Explain == nil {
		t.Fatalf("res = %+v", res)
	}
	if !strings.Contains(res.Explain.String(), "Seed(Normal)") {
		t.Fatalf("explain text:\n%s", res.Explain)
	}
}

// groupedPrefixEngine builds the det-grouped-prefix workload: random
// losses joined through two deterministic tables (grp: cid->rid,
// regions: rid->name) and grouped by region name. The planner joins the
// two deterministic tables first (smallest-first greedy order), so the
// grouped query has a non-leaf deterministic prefix that lowers under
// Materialize and lands in the engine's prefix cache.
func groupedPrefixEngine(t testing.TB) *Engine {
	t.Helper()
	e := New(WithSeed(123), WithWindow(2048))
	e.RegisterTable(workload.LossMeans(8, 2, 8, 11))
	if err := e.DefineRandomTable(RandomTable{
		Name: "losses", ParamTable: "means", VG: "Normal",
		VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
		Columns:  []RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	regions := storage.NewTable("regions", types.NewSchema(
		types.Column{Name: "rid", Kind: types.KindInt},
		types.Column{Name: "name", Kind: types.KindString},
	))
	regions.MustAppend(types.Row{types.NewInt(0), types.NewString("east")})
	regions.MustAppend(types.Row{types.NewInt(1), types.NewString("west")})
	e.RegisterTable(regions)
	grp := storage.NewTable("grp", types.NewSchema(
		types.Column{Name: "cid", Kind: types.KindInt},
		types.Column{Name: "rid", Kind: types.KindInt},
	))
	m, _ := e.Table("means")
	for i, r := range m.Rows() {
		grp.MustAppend(types.Row{r[0], types.NewInt(int64(i % 2))})
	}
	e.RegisterTable(grp)
	return e
}

const groupedPrefixSQL = `SELECT SUM(l.val) AS s, COUNT(*) AS n FROM losses l, grp g, regions r
WHERE g.cid = l.cid AND g.rid = r.rid
GROUP BY r.name
WITH RESULTDISTRIBUTION MONTECARLO(40)`

// TestExplainGoldenGroupedDetPrefix pins the ISSUE 5 grouped plan shape:
// a multi-aggregate Aggregate root, and the deterministic regions-grp
// join materialized below it (Materialize node, PR-4 prefix cache).
func TestExplainGoldenGroupedDetPrefix(t *testing.T) {
	e := groupedPrefixEngine(t)
	x, err := e.Explain(`EXPLAIN ` + groupedPrefixSQL)
	if err != nil {
		t.Fatal(err)
	}
	want := `logical plan:
  Aggregate[SUM(l.val) AS s, COUNT(*) AS n; group by r.name] [rows~1]
    Join(g.cid = l.cid) [rows~2]
      Join(r.rid = g.rid) [rows~2 det]
        Rel(regions AS r) [rows~2 det]
        Rel(grp AS g) [rows~8 det]
      Rename(l) [rows~8]
        Project[cid, val] [rows~8]
          Instantiate [rows~8]
            Seed(Normal) [rows~8]
              Rel(means AS __param) [rows~8 det]
rules fired:
  expand-random-tables
  order-joins-greedy
  place-aggregate
  mark-deterministic
physical plan:
  Aggregate[SUM(l.val) AS s, COUNT(*) AS n; group by r.name] [sink] [vectorized=true]
    HashJoin([g.cid] = [l.cid]) [build+stream] [vectorized=true]
      Materialize [det] [sink]
        HashJoin([r.rid] = [g.rid]) [det] [build+stream] [vectorized=true]
          Scan(regions AS r) [det] [stream]
          Scan(grp AS g) [det] [stream]
      Rename(l) [stream]
        Project[__param.cid __vg0] [stream]
          Instantiate [stream]
            Seed(Normal) [stream]
              Scan(means AS __param) [det] [stream]
aggregate: SUM(l.val) AS s, COUNT(*) AS n
note: streaming executor: pull-based batches of 1024 tuples
note: GROUP BY r.name: single-pass grouped aggregation (one plan run, per-group aggregate vectors)
note: plain Monte Carlo, 40 repetitions
`
	checkGolden(t, "grouped-det-prefix", x.String(), want)
}

// TestGroupedDetPrefixHitsCache: re-executing the grouped query serves
// the materialized deterministic join from the engine prefix cache.
func TestGroupedDetPrefixHitsCache(t *testing.T) {
	e := groupedPrefixEngine(t)
	r1, err := e.Exec(groupedPrefixSQL)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Kind != ExecGroupedDistribution || len(r1.Grouped.Groups) != 2 {
		t.Fatalf("kind=%v groups=%d", r1.Kind, len(r1.Grouped.Groups))
	}
	_, misses0, _ := e.PrefixCacheStats()
	if misses0 == 0 {
		t.Fatal("first run should have populated the prefix cache")
	}
	r2, err := e.Exec(groupedPrefixSQL)
	if err != nil {
		t.Fatal(err)
	}
	hits, _, _ := e.PrefixCacheStats()
	if hits == 0 {
		t.Fatal("second run did not hit the prefix cache")
	}
	// Cache reuse never changes samples.
	for g := range r1.Grouped.Groups {
		a, b := r1.Grouped.Groups[g], r2.Grouped.Groups[g]
		for i := range a.Dists[0].Samples {
			if a.Dists[0].Samples[i] != b.Dists[0].Samples[i] {
				t.Fatalf("group %s sample %d changed across cached runs", a.KeyString(), i)
			}
		}
	}
}
