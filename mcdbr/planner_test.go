package mcdbr

import (
	"math"
	"testing"

	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/workload"
)

// TestJoinOnRandomAttributeUsesSplit exercises the §8 path end to end: a
// join whose key is a VG-generated (random) attribute. The planner must
// insert a Split so the join runs on a deterministic value with the
// nondeterminism transferred to isPres.
func TestJoinOnRandomAttributeUsesSplit(t *testing.T) {
	e := New(WithSeed(31), WithWindow(2048))

	// riskclass(rid, premium): class 0 costs 10, class 1 costs 100.
	rc := storage.NewTable("riskclass", types.NewSchema(
		types.Column{Name: "rid", Kind: types.KindFloat},
		types.Column{Name: "premium", Kind: types.KindFloat},
	))
	rc.MustAppend(types.Row{types.NewFloat(0), types.NewFloat(10)})
	rc.MustAppend(types.Row{types.NewFloat(1), types.NewFloat(100)})
	e.RegisterTable(rc)

	// Each of 12 customers draws an uncertain risk class ~ Bernoulli(0.25).
	cust := storage.NewTable("cust", types.NewSchema(
		types.Column{Name: "cid", Kind: types.KindInt},
		types.Column{Name: "p", Kind: types.KindFloat},
	))
	for i := 0; i < 12; i++ {
		cust.MustAppend(types.Row{types.NewInt(int64(i)), types.NewFloat(0.25)})
	}
	e.RegisterTable(cust)
	if err := e.DefineRandomTable(RandomTable{
		Name: "assignment", ParamTable: "cust", VG: "Bernoulli",
		VGParams: []expr.Expr{expr.C("p")},
		Columns: []RandomCol{
			{Name: "cid", FromParam: "cid"},
			{Name: "class", VGOut: 0},
		},
	}); err != nil {
		t.Fatal(err)
	}

	// Total premium = join the random class with the premium table.
	d, err := e.Query().
		From("assignment", "a").
		From("riskclass", "r").
		Where(expr.B(expr.OpEq, expr.C("a.class"), expr.C("r.rid"))).
		SelectSum(expr.C("r.premium")).
		MonteCarlo(4000)
	if err != nil {
		t.Fatal(err)
	}
	// E[premium per customer] = 0.75*10 + 0.25*100 = 32.5; 12 customers.
	want := 12 * 32.5
	if math.Abs(d.Mean()-want) > 5 {
		t.Fatalf("mean total premium = %g, want %g", d.Mean(), want)
	}
	// Sanity on the support: min possible 120, max 1200.
	if d.ECDF().Min() < 120-1e-9 || d.ECDF().Max() > 1200+1e-9 {
		t.Fatalf("support violated: [%g, %g]", d.ECDF().Min(), d.ECDF().Max())
	}

	// Tail sampling over the random-attr join: the upper tail is "many
	// customers in the expensive class".
	res, err := e.Query().
		From("assignment", "a").
		From("riskclass", "r").
		Where(expr.B(expr.OpEq, expr.C("a.class"), expr.C("r.rid"))).
		SelectSum(expr.C("r.premium")).
		TailSample(0.02, 40, TailSampleOptions{TotalSamples: 300})
	if err != nil {
		t.Fatal(err)
	}
	// Binomial(12, 0.25): 0.98-quantile is ~6 expensive customers ->
	// premium 6*100 + 6*10 = 660.
	if res.QuantileEstimate < 400 || res.QuantileEstimate > 1000 {
		t.Fatalf("tail quantile = %g", res.QuantileEstimate)
	}
	for _, s := range res.Samples {
		if s < res.QuantileEstimate {
			t.Fatalf("tail sample %g below quantile", s)
		}
	}
}

// TestCrossJoinFallback: FROM items with no connecting equi-join become a
// cross product.
func TestCrossJoinFallback(t *testing.T) {
	e := New(WithSeed(32), WithWindow(1024))
	e.RegisterTable(workload.LossMeans(3, 2, 8, 1))
	scale := storage.NewTable("scale", types.NewSchema(
		types.Column{Name: "f", Kind: types.KindFloat},
	))
	scale.MustAppend(types.Row{types.NewFloat(2)})
	e.RegisterTable(scale)
	if err := e.DefineRandomTable(RandomTable{
		Name: "losses", ParamTable: "means", VG: "Normal",
		VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
		Columns:  []RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	d, err := e.Query().
		From("losses", "l").
		From("scale", "s").
		SelectSum(expr.B(expr.OpMul, expr.C("l.val"), expr.C("s.f"))).
		MonteCarlo(1500)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := e.Table("means")
	mu := 0.0
	for _, r := range tbl.Rows() {
		mu += r[1].Float()
	}
	if math.Abs(d.Mean()-2*mu) > 0.6 {
		t.Fatalf("cross-scaled mean = %g, want %g", d.Mean(), 2*mu)
	}
}

// TestMultiOutputVGTable: a random table exposing both outputs of the
// correlated MultiNormal2 VG function.
func TestMultiOutputVGTable(t *testing.T) {
	e := New(WithSeed(33), WithWindow(2048))
	params := storage.NewTable("pairs", types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
	))
	for i := 0; i < 8; i++ {
		params.MustAppend(types.Row{types.NewInt(int64(i))})
	}
	e.RegisterTable(params)
	if err := e.DefineRandomTable(RandomTable{
		Name: "xy", ParamTable: "pairs", VG: "MultiNormal2",
		VGParams: []expr.Expr{expr.F(1), expr.F(2), expr.F(1), expr.F(1), expr.F(0.9)},
		Columns: []RandomCol{
			{Name: "id", FromParam: "id"},
			{Name: "x", VGOut: 0},
			{Name: "y", VGOut: 1},
		},
	}); err != nil {
		t.Fatal(err)
	}
	// SUM(y - x): mean 8*(2-1) = 8, and the strong positive correlation
	// shrinks the variance: Var(y-x) = 1+1-2*0.9 = 0.2 per row.
	d, err := e.Query().From("xy", "").
		SelectSum(expr.B(expr.OpSub, expr.C("y"), expr.C("x"))).
		MonteCarlo(4000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Mean()-8) > 0.15 {
		t.Fatalf("mean = %g, want 8", d.Mean())
	}
	wantSD := math.Sqrt(8 * 0.2)
	if math.Abs(d.Std()-wantSD) > 0.15 {
		t.Fatalf("sd = %g, want %g (correlation lost?)", d.Std(), wantSD)
	}
}

// TestEngineReproducibility: identical seeds give bit-identical results;
// different seeds differ.
func TestEngineReproducibility(t *testing.T) {
	build := func(seed uint64) *TailResult {
		e := New(WithSeed(seed), WithWindow(1024))
		e.RegisterTable(workload.LossMeans(10, 2, 8, 1))
		if err := e.DefineRandomTable(RandomTable{
			Name: "losses", ParamTable: "means", VG: "Normal",
			VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
			Columns:  []RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
		}); err != nil {
			t.Fatal(err)
		}
		res, err := e.Query().From("losses", "").SelectSum(expr.C("val")).
			TailSample(0.02, 30, TailSampleOptions{TotalSamples: 200})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := build(7), build(7)
	if a.QuantileEstimate != b.QuantileEstimate {
		t.Fatalf("same seed diverged: %g vs %g", a.QuantileEstimate, b.QuantileEstimate)
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d diverged", i)
		}
	}
	c := build(8)
	if a.QuantileEstimate == c.QuantileEstimate {
		t.Fatal("different seeds should (almost surely) differ")
	}
}

// TestTailSamplePropertyAcrossConfigs is a whole-engine property test:
// across random small configurations, every upper-tail sample is at least
// the quantile estimate, the estimate is finite, and the sample count is
// exactly l.
func TestTailSamplePropertyAcrossConfigs(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		seed := uint64(9000 + trial)
		nCust := 3 + trial%5
		p := []float64{0.2, 0.05, 0.02}[trial%3]
		l := 5 + trial%20
		e := New(WithSeed(seed), WithWindow(512))
		e.RegisterTable(workload.LossMeans(nCust, 1, 9, seed))
		if err := e.DefineRandomTable(RandomTable{
			Name: "losses", ParamTable: "means", VG: "Normal",
			VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
			Columns:  []RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
		}); err != nil {
			t.Fatal(err)
		}
		res, err := e.Query().From("losses", "").SelectSum(expr.C("val")).
			TailSample(p, l, TailSampleOptions{TotalSamples: 120})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(res.Samples) != l {
			t.Fatalf("trial %d: %d samples, want %d", trial, len(res.Samples), l)
		}
		if math.IsNaN(res.QuantileEstimate) || math.IsInf(res.QuantileEstimate, 0) {
			t.Fatalf("trial %d: quantile %g", trial, res.QuantileEstimate)
		}
		for _, s := range res.Samples {
			if s < res.QuantileEstimate {
				t.Fatalf("trial %d: sample %g below quantile %g", trial, s, res.QuantileEstimate)
			}
		}
	}
}

// TestQueryTimeVGFailureSurfaces: invalid VG parameters coming from table
// data (not caught at definition time) must produce an error, not a panic.
func TestQueryTimeVGFailureSurfaces(t *testing.T) {
	e := New(WithSeed(44), WithWindow(256))
	bad := storage.NewTable("params", types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "shape", Kind: types.KindFloat},
	))
	bad.MustAppend(types.Row{types.NewInt(1), types.NewFloat(2)})
	bad.MustAppend(types.Row{types.NewInt(2), types.NewFloat(-3)}) // invalid Gamma shape
	e.RegisterTable(bad)
	if err := e.DefineRandomTable(RandomTable{
		Name: "vals", ParamTable: "params", VG: "Gamma",
		VGParams: []expr.Expr{expr.C("shape"), expr.F(1.0)},
		Columns:  []RandomCol{{Name: "id", FromParam: "id"}, {Name: "v", VGOut: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	_, err := e.Query().From("vals", "").SelectSum(expr.C("v")).MonteCarlo(10)
	if err == nil {
		t.Fatal("invalid per-row VG parameter must surface as an error")
	}
}
