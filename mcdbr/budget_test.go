package mcdbr

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/workload"
)

// budgetScanRows sizes the bounded-memory workload: far more scanned
// tuples than the generous budget could hold at once, with only 1% of
// them surviving the filter.
const budgetScanRows = 100000

// budgetEngine builds the bounded-memory workload: a 100k-row
// deterministic accounts table filtered down to 1k rows under a
// 100-customer random loss table, with the prefix cache disabled so
// every run pays the scan.
func budgetEngine(t testing.TB, opts ...Option) *Engine {
	t.Helper()
	opts = append([]Option{WithSeed(23), WithParallelism(1), WithPrefixCacheSize(-1)}, opts...)
	e := New(opts...)
	e.RegisterTable(workload.LossMeans(100, 2, 8, 7))
	accounts := storage.NewTable("accounts", types.NewSchema(
		types.Column{Name: "aid", Kind: types.KindInt},
		types.Column{Name: "flag", Kind: types.KindInt},
		types.Column{Name: "w", Kind: types.KindFloat},
	))
	for i := 0; i < budgetScanRows; i++ {
		flag := int64(0)
		if i%100 == 0 {
			flag = 1
		}
		accounts.MustAppend(types.Row{
			types.NewInt(int64(10000 + i%100)),
			types.NewInt(flag),
			types.NewFloat(1 + float64(i%7)/8),
		})
	}
	e.RegisterTable(accounts)
	if err := e.DefineRandomTable(RandomTable{
		Name: "losses", ParamTable: "means", VG: "Normal",
		VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
		Columns:  []RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	return e
}

const budgetSQL = `SELECT SUM(losses.val * accounts.w) AS wloss
FROM losses, accounts
WHERE losses.cid = accounts.aid AND accounts.flag = 1
WITH RESULTDISTRIBUTION MONTECARLO(16)`

// TestMemoryBudgetStreamsLargeScan: the streaming executor completes a
// scan far larger than the budget, because batches recycle their arenas
// and only filter survivors are retained. A materializing executor would
// hold all 100k scanned tuple headers at once and blow the budget.
func TestMemoryBudgetStreamsLargeScan(t *testing.T) {
	e := budgetEngine(t, WithMaxQueryBytes(4<<20))
	res, err := e.Exec(budgetSQL)
	if err != nil {
		t.Fatalf("large scan under 4 MiB budget failed: %v", err)
	}
	if len(res.Dist.Samples) != 16 {
		t.Fatalf("samples = %d", len(res.Dist.Samples))
	}
}

// TestMemoryBudgetExceeded: a budget smaller than one batch's arenas
// fails descriptively with ErrMemoryBudget instead of OOMing.
func TestMemoryBudgetExceeded(t *testing.T) {
	e := budgetEngine(t, WithMaxQueryBytes(2048))
	_, err := e.Exec(budgetSQL)
	if err == nil {
		t.Fatal("2 KiB budget did not fail")
	}
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("error does not wrap ErrMemoryBudget: %v", err)
	}
	for _, want := range []string{"memory budget", "bytes", "max-query-bytes"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

// TestMemoryBudgetRunOptionsOverride: RunOptions.MaxBytes overrides the
// engine budget per run — negative disables it, positive replaces it,
// zero keeps it.
func TestMemoryBudgetRunOptionsOverride(t *testing.T) {
	e := budgetEngine(t, WithMaxQueryBytes(2048))
	pq, err := e.Prepare(budgetSQL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Run(RunOptions{}); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("engine budget not applied: %v", err)
	}
	if _, err := pq.Run(RunOptions{MaxBytes: -1}); err != nil {
		t.Fatalf("MaxBytes=-1 did not disable the budget: %v", err)
	}
	if _, err := pq.Run(RunOptions{MaxBytes: 4 << 20}); err != nil {
		t.Fatalf("MaxBytes=4MiB override failed: %v", err)
	}
}
