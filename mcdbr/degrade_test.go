package mcdbr

// Deadline degradation at the public API (DESIGN.md §12): an adaptive run
// whose deadline fires mid-run returns the partial prefix — bit-identical
// to a fixed run of the same count — with AdaptiveReport.Degraded, while
// fixed-N runs keep their strict contract and error. The deadline is
// injected deterministically by cancelling with cause DeadlineExceeded
// from the Progress callback, so every assertion is exact.

import (
	"context"
	"errors"
	"testing"
)

func TestRunCtxDegradeOnDeadline(t *testing.T) {
	e := lossEngine(t, 20, 7)
	p, err := e.Prepare(`SELECT SUM(val) FROM Losses
WITH RESULTDISTRIBUTION MONTECARLO(UNTIL ERROR < 0.000001 AT 95%, MAX 8192)`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	res, err := p.RunCtx(ctx, RunOptions{
		DegradeOnDeadline: true,
		Progress: func(u ProgressUpdate) {
			if u.Round == 2 {
				cancel(context.DeadlineExceeded)
			}
		},
	})
	if err != nil {
		t.Fatalf("degradable deadline returned error: %v", err)
	}
	rep := res.Adaptive
	if rep == nil || !rep.Degraded || rep.Converged {
		t.Fatalf("report = %+v, want degraded non-converged", rep)
	}
	// Rounds are 32 then 64 more: the partial prefix is the 96-replicate run.
	if rep.SamplesUsed != 96 {
		t.Fatalf("SamplesUsed = %d, want 96 (two completed rounds)", rep.SamplesUsed)
	}
	if len(rep.CIs) != 1 || rep.CIs[0].HalfWidth <= 0 {
		t.Fatalf("degraded report missing CI: %+v", rep.CIs)
	}
	// Bit-identity of the partial: same engine seed, fixed MONTECARLO(96).
	eF := lossEngine(t, 20, 7)
	fixed, err := eF.Exec(`SELECT SUM(val) FROM Losses WITH RESULTDISTRIBUTION MONTECARLO(96)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dist.Samples) != len(fixed.Dist.Samples) {
		t.Fatalf("partial has %d samples, fixed 96-run has %d", len(res.Dist.Samples), len(fixed.Dist.Samples))
	}
	for i := range fixed.Dist.Samples {
		if res.Dist.Samples[i] != fixed.Dist.Samples[i] {
			t.Fatalf("sample %d: partial %v != fixed %v", i, res.Dist.Samples[i], fixed.Dist.Samples[i])
		}
	}
}

func TestRunCtxDeadlineStrictWithoutOptIn(t *testing.T) {
	e := lossEngine(t, 20, 7)
	p, err := e.Prepare(`SELECT SUM(val) FROM Losses
WITH RESULTDISTRIBUTION MONTECARLO(UNTIL ERROR < 0.000001 AT 95%, MAX 8192)`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	_, err = p.RunCtx(ctx, RunOptions{
		Progress: func(u ProgressUpdate) {
			if u.Round == 2 {
				cancel(context.DeadlineExceeded)
			}
		},
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded without the opt-in", err)
	}
}

// TestRunCtxFixedNNeverDegrades: the fixed-N contract is strict even when
// the caller asks for degradation — a truncated fixed-N result would
// silently break bit-identity with MONTECARLO(n).
func TestRunCtxFixedNNeverDegrades(t *testing.T) {
	e := lossEngine(t, 20, 7)
	p, err := e.Prepare(`SELECT SUM(val) FROM Losses WITH RESULTDISTRIBUTION MONTECARLO(2000)`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(context.DeadlineExceeded)
	if _, err := p.RunCtx(ctx, RunOptions{DegradeOnDeadline: true}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("plain fixed-N err = %v, want DeadlineExceeded", err)
	}
	// Progressive fixed-N (Progress set, no rule) is fixed-N too: after the
	// first streamed round the deadline must still be an error.
	ctx2, cancel2 := context.WithCancelCause(context.Background())
	_, err = p.RunCtx(ctx2, RunOptions{
		DegradeOnDeadline: true,
		Progress: func(u ProgressUpdate) {
			if u.Round == 2 {
				cancel2(context.DeadlineExceeded)
			}
		},
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("progressive fixed-N err = %v, want DeadlineExceeded", err)
	}
}

// TestGroupedTailDegradePartialGroups: a grouped DOMAIN query whose
// deadline fires while a later group's chain is still doubling reports the
// completed groups with Degraded set instead of failing outright.
func TestGroupedTailDegradePartialGroups(t *testing.T) {
	e := lossEngine(t, 4, 9)
	p, err := e.Prepare(`SELECT SUM(val) AS s FROM Losses GROUP BY cid
WITH RESULTDISTRIBUTION MONTECARLO(UNTIL ERROR < 0.0000001, MAX 128)
DOMAIN s >= QUANTILE(0.8)`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	firstGroup := ""
	res, err := p.RunCtx(ctx, RunOptions{
		DegradeOnDeadline: true,
		Progress: func(u ProgressUpdate) {
			if len(u.CIs) == 0 {
				return
			}
			if firstGroup == "" {
				firstGroup = u.CIs[0].Group
			} else if u.CIs[0].Group != firstGroup {
				// The run has moved on to a later group's chain: the next
				// attempt hits the expired deadline.
				cancel(context.DeadlineExceeded)
			}
		},
	})
	if err != nil {
		t.Fatalf("degradable grouped tail returned error: %v", err)
	}
	rep := res.Adaptive
	if rep == nil || !rep.Degraded {
		t.Fatalf("report = %+v, want Degraded", rep)
	}
	got := len(res.GroupedTail.Groups)
	if got == 0 || got >= 4 {
		t.Fatalf("degraded run kept %d of 4 groups, want a proper nonempty subset", got)
	}
	if len(rep.CIs) != got {
		t.Fatalf("report has %d CIs for %d groups", len(rep.CIs), got)
	}
}
