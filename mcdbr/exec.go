package mcdbr

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/sqlish"
	"repro/internal/storage"
	"repro/internal/types"
)

// ExecKind tags what an Exec call produced.
type ExecKind uint8

const (
	// ExecCreated: a CREATE TABLE ... FOR EACH statement defined a random
	// table.
	ExecCreated ExecKind = iota
	// ExecScalar: a deterministic single-aggregate query (e.g. over
	// FTABLE) produced a single number.
	ExecScalar
	// ExecTable: a deterministic multi-aggregate and/or GROUP BY query
	// produced a relation (group columns followed by aggregate columns).
	ExecTable
	// ExecDistribution: a single-aggregate WITH RESULTDISTRIBUTION query
	// without DOMAIN produced a Monte Carlo distribution.
	ExecDistribution
	// ExecTail: a DOMAIN ... QUANTILE query produced a tail distribution.
	ExecTail
	// ExecGroupedDistribution: a GROUP BY and/or multi-aggregate query
	// without DOMAIN produced per-group, per-aggregate distributions in a
	// single pass.
	ExecGroupedDistribution
	// ExecGroupedTail: a GROUP BY ... DOMAIN query produced one tail
	// distribution per group (paper App. A: g conditioned runs over one
	// shared plan).
	ExecGroupedTail
	// ExecExplained: an EXPLAIN statement produced a plan description
	// without executing the query.
	ExecExplained
)

// String names the result kind (used by the HTTP serving layer).
func (k ExecKind) String() string {
	switch k {
	case ExecCreated:
		return "created"
	case ExecScalar:
		return "scalar"
	case ExecTable:
		return "table"
	case ExecDistribution:
		return "distribution"
	case ExecTail:
		return "tail"
	case ExecGroupedDistribution:
		return "grouped_distribution"
	case ExecGroupedTail:
		return "grouped_tail"
	case ExecExplained:
		return "explained"
	default:
		return fmt.Sprintf("ExecKind(%d)", uint8(k))
	}
}

// ExecResult is the outcome of Engine.Exec.
type ExecResult struct {
	Kind   ExecKind
	Scalar float64
	// Table holds the relation produced by a deterministic grouped or
	// multi-aggregate query (ExecTable).
	Table *storage.Table
	Dist  *Distribution
	Tail  *TailResult
	// Grouped holds the per-group, per-aggregate distributions of an
	// ExecGroupedDistribution result.
	Grouped *GroupedDistribution
	// GroupedTail holds the ordered per-group tails of an ExecGroupedTail
	// result.
	GroupedTail *GroupedTail
	// GroupDists and GroupTails are the legacy map views, populated for
	// single-aggregate grouped queries.
	GroupDists map[string]*Distribution
	GroupTails map[string]*TailResult
	// Adaptive reports how an adaptive (UNTIL ERROR) or progressive run
	// stopped: replicates used, rounds, and per-aggregate confidence
	// intervals. nil for plain fixed-N execution.
	Adaptive *AdaptiveReport
	Explain  *Explain
}

// Exec parses and executes one SQL-ish statement (the paper's §2 surface
// syntax). Tail-sampling parameters use the Appendix C defaults; use
// ExecWithOptions to override them.
func (e *Engine) Exec(sql string) (*ExecResult, error) {
	return e.ExecWithOptions(sql, TailSampleOptions{})
}

// PanicError is a panic recovered at an engine entry point, surfaced as
// an error. Callers (e.g. the HTTP serving layer) can errors.As on it to
// distinguish engine faults from bad-input errors.
type PanicError struct {
	// Op names the entry point that recovered the panic.
	Op string
	// Value is the recovered panic value.
	Value any
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("mcdbr: %s: internal panic: %v", p.Op, p.Value)
}

// recoverToError converts a panic escaping a public entry point into a
// *PanicError, so one bad query (a type-confused expression, VG misuse,
// or a panicking user VG function) cannot crash a process serving other
// queries. Parallel execution installs the same net in its worker
// goroutines, where a panic would otherwise be fatal regardless of
// deferred recovery on the calling goroutine.
func recoverToError(op string, err *error) {
	if r := recover(); r != nil {
		*err = &PanicError{Op: op, Value: r}
	}
}

// ExecWithOptions is Exec with explicit tail-sampling options.
func (e *Engine) ExecWithOptions(sql string, opts TailSampleOptions) (res *ExecResult, err error) {
	defer recoverToError("Exec", &err)
	stmt, err := sqlish.Parse(sql)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *sqlish.CreateRandomTable:
		if err := e.execCreate(s); err != nil {
			return nil, err
		}
		return &ExecResult{Kind: ExecCreated}, nil
	case *sqlish.ExplainStmt:
		x, err := e.explainSelect(s.Stmt)
		if err != nil {
			return nil, err
		}
		return &ExecResult{Kind: ExecExplained, Explain: x}, nil
	case *sqlish.SelectStmt:
		if !s.With {
			return e.execScalar(s)
		}
		c, err := e.compileSelect(s)
		if err != nil {
			return nil, err
		}
		return e.runSelectCompiled(c, s, opts, runParams{
			seed:     e.seed,
			workers:  e.parallelism,
			n:        s.MCReps,
			maxBytes: e.maxQueryBytes,
		})
	default:
		return nil, fmt.Errorf("mcdbr: unsupported statement %T", stmt)
	}
}

// execCreate turns the parsed CREATE TABLE ... FOR EACH into a RandomTable
// definition.
func (e *Engine) execCreate(s *sqlish.CreateRandomTable) error {
	gen, ok := e.vgs.Lookup(s.VGName)
	if !ok {
		return fmt.Errorf("mcdbr: VG function %q not registered", s.VGName)
	}
	nOut := len(gen.OutKinds())
	var cols []RandomCol
	colIdx := 0
	takeName := func() (string, error) {
		if colIdx >= len(s.Cols) {
			return "", fmt.Errorf("mcdbr: CREATE TABLE %s: more select items than columns", s.Name)
		}
		n := s.Cols[colIdx]
		colIdx++
		return n, nil
	}
	for _, item := range s.SelectItems {
		switch {
		case strings.HasSuffix(item, ".*"):
			alias := strings.TrimSuffix(item, ".*")
			if !strings.EqualFold(alias, s.VGAlias) {
				return fmt.Errorf("mcdbr: CREATE TABLE %s: %s.* does not match VG alias %s", s.Name, alias, s.VGAlias)
			}
			for o := 0; o < nOut; o++ {
				name, err := takeName()
				if err != nil {
					return err
				}
				cols = append(cols, RandomCol{Name: name, VGOut: o})
			}
		case strings.Contains(item, "."):
			parts := strings.SplitN(item, ".", 2)
			name, err := takeName()
			if err != nil {
				return err
			}
			if strings.EqualFold(parts[0], s.VGAlias) {
				// A single VG output referenced by position: myVal.valueN
				// (1-based), or the bare myVal.value for the first output.
				ref := strings.ToLower(parts[1])
				out := 0
				switch {
				case ref == "value":
				case strings.HasPrefix(ref, "value"):
					n, err := strconv.Atoi(ref[len("value"):])
					if err != nil {
						return fmt.Errorf("mcdbr: CREATE TABLE %s: unknown VG output reference %s (use %s.value1..value%d or %s.*)",
							s.Name, item, s.VGAlias, nOut, s.VGAlias)
					}
					if n < 1 || n > nOut {
						return fmt.Errorf("mcdbr: CREATE TABLE %s: %s references VG output %d, but %s has %d output(s)",
							s.Name, item, n, s.VGName, nOut)
					}
					out = n - 1
				default:
					return fmt.Errorf("mcdbr: CREATE TABLE %s: unknown VG output reference %s (use %s.value1..value%d or %s.*)",
						s.Name, item, s.VGAlias, nOut, s.VGAlias)
				}
				cols = append(cols, RandomCol{Name: name, VGOut: out})
			} else {
				cols = append(cols, RandomCol{Name: name, FromParam: parts[1]})
			}
		default:
			name, err := takeName()
			if err != nil {
				return err
			}
			cols = append(cols, RandomCol{Name: name, FromParam: item})
		}
	}
	if colIdx != len(s.Cols) {
		return fmt.Errorf("mcdbr: CREATE TABLE %s: %d columns declared, %d produced", s.Name, len(s.Cols), colIdx)
	}
	return e.DefineRandomTable(RandomTable{
		Name:       s.Name,
		ParamTable: s.ParamTable,
		VG:         s.VGName,
		VGParams:   s.VGParams,
		Columns:    cols,
	})
}

// scalarAccum accumulates one deterministic aggregate over rows.
type scalarAccum struct {
	sum  float64
	n    int
	rows int
	best float64
}

func (a *scalarAccum) value(agg string, hasExpr bool) float64 {
	switch agg {
	case "SUM":
		return a.sum
	case "COUNT":
		if !hasExpr {
			return float64(a.rows)
		}
		return float64(a.n)
	case "AVG":
		if a.n == 0 {
			return math.NaN()
		}
		return a.sum / float64(a.n)
	default: // MIN, MAX
		return a.best
	}
}

// execScalar evaluates deterministic aggregates over a single ordinary
// table — the paper's follow-up queries such as SELECT MIN(totalLoss)
// FROM FTABLE — now with multi-item select lists, GROUP BY over arbitrary
// deterministic expressions, and HAVING. A single ungrouped aggregate
// yields ExecScalar; anything else yields an ExecTable relation (group
// columns followed by aggregate columns, sorted by group key).
func (e *Engine) execScalar(s *sqlish.SelectStmt) (*ExecResult, error) {
	if len(s.Froms) != 1 {
		return nil, fmt.Errorf("mcdbr: deterministic aggregates support exactly one table, got %d", len(s.Froms))
	}
	if _, isRandom := e.randomDef(s.Froms[0].Table); isRandom {
		return nil, fmt.Errorf("mcdbr: query over random table %q needs WITH RESULTDISTRIBUTION", s.Froms[0].Table)
	}
	t, ok := e.cat.Get(s.Froms[0].Table)
	if !ok {
		return nil, fmt.Errorf("mcdbr: table %q not registered", s.Froms[0].Table)
	}
	rows, err := e.filterRows(t, s.Where)
	if err != nil {
		return nil, err
	}
	schema := t.Schema()
	groupExprs := make([]*expr.Compiled, len(s.GroupBy))
	for i, g := range s.GroupBy {
		if groupExprs[i], err = expr.Compile(g, schema); err != nil {
			return nil, fmt.Errorf("mcdbr: GROUP BY expression %s: %w", g, err)
		}
	}
	aggExprs := make([]*expr.Compiled, len(s.Items))
	for i, it := range s.Items {
		if it.Expr == nil {
			if it.Agg != "COUNT" {
				return nil, fmt.Errorf("mcdbr: %s requires an aggregate expression", it.Agg)
			}
			continue
		}
		if aggExprs[i], err = expr.Compile(it.Expr, schema); err != nil {
			return nil, fmt.Errorf("mcdbr: aggregate %s: %w", it, err)
		}
	}
	type group struct {
		key    types.Row
		accums []scalarAccum
	}
	var groups []group
	index := map[uint64][]int{}
	findGroup := func(key types.Row) *group {
		h := key.Hash()
		for _, gi := range index[h] {
			if groups[gi].key.Equal(key) {
				return &groups[gi]
			}
		}
		g := group{key: key.Clone(), accums: make([]scalarAccum, len(s.Items))}
		for i := range g.accums {
			g.accums[i].best = math.NaN()
		}
		groups = append(groups, g)
		index[h] = append(index[h], len(groups)-1)
		return &groups[len(groups)-1]
	}
	if len(groupExprs) == 0 {
		findGroup(types.Row{})
	}
	keyBuf := make(types.Row, len(groupExprs))
	for _, r := range rows {
		for i, ge := range groupExprs {
			keyBuf[i] = ge.Eval(r)
		}
		g := findGroup(keyBuf)
		for i, it := range s.Items {
			acc := &g.accums[i]
			acc.rows++
			if it.Expr == nil {
				continue
			}
			v := aggExprs[i].Eval(r)
			if v.IsNull() {
				continue
			}
			f, ok := v.AsFloat()
			if !ok {
				return nil, fmt.Errorf("mcdbr: aggregate over non-numeric value %s", v.Kind())
			}
			acc.sum += f
			acc.n++
			switch it.Agg {
			case "MIN":
				if math.IsNaN(acc.best) || f < acc.best {
					acc.best = f
				}
			case "MAX":
				if math.IsNaN(acc.best) || f > acc.best {
					acc.best = f
				}
			}
		}
	}
	sort.SliceStable(groups, func(i, j int) bool { return exec.LessRow(groups[i].key, groups[j].key) })

	// Output schema: group columns (named after the expression), then
	// aggregate columns, disambiguated exactly like exec.NewAggregate.
	outCols := make([]types.Column, 0, len(s.GroupBy)+len(s.Items))
	uniq := exec.UniqueNamer()
	for _, g := range s.GroupBy {
		kind := types.KindFloat
		name := g.String()
		if c, ok := g.(*expr.Col); ok {
			name = c.Name
			if i := strings.LastIndexByte(name, '.'); i >= 0 {
				name = name[i+1:]
			}
			if j := schema.Lookup(c.Name); j >= 0 {
				kind = schema.Col(j).Kind
			}
		}
		outCols = append(outCols, types.Column{Name: uniq(name), Kind: kind})
	}
	for _, it := range s.Items {
		name := it.Alias
		if name == "" {
			name = it.String()
		}
		outCols = append(outCols, types.Column{Name: uniq(name), Kind: types.KindFloat})
	}
	outSchema := types.NewSchema(outCols...)
	var having *expr.Compiled
	if s.Having != nil {
		if having, err = expr.Compile(s.Having, outSchema); err != nil {
			return nil, fmt.Errorf("mcdbr: HAVING may reference grouping columns and aggregate aliases %s: %w", outSchema, err)
		}
	}
	out := storage.NewTable("result", outSchema)
	for gi := range groups {
		g := &groups[gi]
		row := make(types.Row, 0, outSchema.Len())
		row = append(row, g.key...)
		for i, it := range s.Items {
			row = append(row, types.NewFloat(g.accums[i].value(it.Agg, it.Expr != nil)))
		}
		if having != nil && !having.EvalBool(row) {
			continue
		}
		out.MustAppend(row)
	}
	if len(s.GroupBy) == 0 && len(s.Items) == 1 && s.Having == nil {
		return &ExecResult{Kind: ExecScalar, Scalar: out.Row(0)[0].Float()}, nil
	}
	return &ExecResult{Kind: ExecTable, Table: out}, nil
}

func (e *Engine) filterRows(t *storage.Table, where expr.Expr) ([]types.Row, error) {
	if where == nil {
		return t.Rows(), nil
	}
	c, err := expr.Compile(where, t.Schema())
	if err != nil {
		return nil, err
	}
	var out []types.Row
	for _, r := range t.Rows() {
		if c.EvalBool(r) {
			out = append(out, r)
		}
	}
	return out, nil
}

// selectBuilder turns a parsed SELECT into a QueryBuilder; shared by Exec,
// EXPLAIN, and Prepare.
func (e *Engine) selectBuilder(s *sqlish.SelectStmt) (*QueryBuilder, error) {
	qb := e.Query()
	for _, f := range s.Froms {
		qb.From(f.Table, f.Alias)
	}
	if s.Where != nil {
		qb.Where(s.Where)
	}
	for _, it := range s.Items {
		switch it.Agg {
		case "SUM":
			qb.SelectSumAs(it.Expr, it.Alias)
		case "AVG":
			qb.SelectAvgAs(it.Expr, it.Alias)
		case "COUNT":
			// The Monte Carlo layers count tuples passing the final
			// predicate; a COUNT(expr) argument is ignored, as it always
			// was on this path.
			qb.SelectCountAs(it.Alias)
		default:
			return nil, fmt.Errorf("mcdbr: aggregate %s is not supported with RESULTDISTRIBUTION (use SUM, COUNT, or AVG)", it.Agg)
		}
	}
	qb.GroupBy(s.GroupBy...)
	if s.Having != nil {
		qb.Having(s.Having)
	}
	if s.Adaptive != nil {
		qb.Until(s.Adaptive.TargetRelError, s.Adaptive.Confidence, s.Adaptive.MaxSamples)
	}
	return qb, nil
}

// compileSelect plans a parsed SELECT through the builder path.
func (e *Engine) compileSelect(s *sqlish.SelectStmt) (*compiled, error) {
	qb, err := e.selectBuilder(s)
	if err != nil {
		return nil, err
	}
	return qb.compile()
}

// domainTailProbability maps the DOMAIN clause to the looper's upper/lower
// tail probability, validating the aggregate alias reference.
func domainTailProbability(s *sqlish.SelectStmt) (float64, error) {
	if alias := s.Items[0].Alias; alias != "" && !strings.EqualFold(s.Domain.Name, alias) {
		return 0, fmt.Errorf("mcdbr: DOMAIN references %q but the aggregate is named %q", s.Domain.Name, alias)
	}
	return domainP(s.Domain), nil
}

func domainP(d *sqlish.Domain) float64 {
	if d.Lower {
		return d.Quantile
	}
	return 1 - d.Quantile
}

// validateSelect rejects statement/plan combinations that can never
// execute — multi-aggregate DOMAIN conditioning, HAVING under tail
// sampling, FREQUENCYTABLE on grouped or multi-aggregate queries, and a
// DOMAIN name that does not match the aggregate alias. Prepare runs it
// too, so an impossible statement fails at preparation instead of
// caching a plan whose every Run errors.
func validateSelect(c *compiled, s *sqlish.SelectStmt) error {
	grouped := c.grouped()
	multi := len(c.agg.Aggs) > 1
	if s.FreqTable != "" && (grouped || multi) {
		return fmt.Errorf("mcdbr: FREQUENCYTABLE needs a single ungrouped aggregate; the query has %d aggregates and %d grouping expressions", len(c.agg.Aggs), len(c.agg.GroupBy))
	}
	if s.Domain != nil {
		if multi {
			return fmt.Errorf("mcdbr: DOMAIN tail sampling conditions on a single aggregate; the query has %d", len(c.agg.Aggs))
		}
		if c.agg.Having != nil {
			return fmt.Errorf("mcdbr: HAVING is not supported with DOMAIN tail sampling; drop the DOMAIN clause or the HAVING clause")
		}
		if _, err := domainTailProbability(s); err != nil {
			return err
		}
	}
	return nil
}

// runSelectCompiled dispatches an already-compiled WITH RESULTDISTRIBUTION
// statement: plain Monte Carlo without DOMAIN (single-pass grouped when
// the query has GROUP BY or several aggregates), tail sampling with it
// (one conditioned Gibbs run per group when grouped). An adaptive stopping
// rule — from the statement's UNTIL clause or a per-run override — routes
// plain queries through the round-based driver and tail queries through
// per-group chain doubling; a progress callback alone routes fixed-N plain
// queries through the round driver too (progressive streaming, convergence
// disabled). It is the shared execution path of Exec and
// PreparedQuery.Run; the runParams knobs are per-run so prepared queries
// can override them.
func (e *Engine) runSelectCompiled(c *compiled, s *sqlish.SelectStmt, opts TailSampleOptions, rp runParams) (*ExecResult, error) {
	if err := validateSelect(c, s); err != nil {
		return nil, err
	}
	grouped := c.grouped()
	multi := len(c.agg.Aggs) > 1
	rule := rp.stopRule(c)
	if rule != nil {
		// Deadline degradation is an adaptive-only contract: fixed-N runs
		// (rule == nil, including the progressive fixed-N streaming shape,
		// which never sets rule) stay strict and error on deadline.
		rule.DegradeOnDeadline = rp.degrade
	}
	if s.Domain != nil {
		p, err := domainTailProbability(s)
		if err != nil {
			return nil, err
		}
		opts.Lower = s.Domain.Lower
		if rule != nil {
			if grouped {
				gt, report, err := e.runGroupedTailAdaptive(rp.ctx, c, p, *rule, opts, rp.seed, rp.maxBytes, rp.progress)
				if err != nil {
					return nil, err
				}
				return &ExecResult{Kind: ExecGroupedTail, GroupedTail: gt, GroupTails: gt.TailMap(), Adaptive: report}, nil
			}
			gq := c.gq
			gq.LowerTail = opts.Lower
			norm := rule.Normalized()
			tr, ci, attempts, degraded, err := e.runTailAdaptive(rp.ctx, c, gq, p, norm, opts, rp.seed, rp.maxBytes, "", rp.progress)
			if err != nil {
				return nil, err
			}
			e.registerFTable(s, &tr.Distribution)
			report := &AdaptiveReport{
				TargetRelError: norm.TargetRelError,
				Confidence:     norm.Confidence,
				MaxSamples:     norm.MaxSamples,
				SamplesUsed:    len(tr.Samples),
				Rounds:         attempts,
				Converged:      ci.Converged,
				Degraded:       degraded,
				CIs:            []AggregateCI{ci},
			}
			return &ExecResult{Kind: ExecTail, Tail: tr, Adaptive: report}, nil
		}
		if grouped {
			gt, err := e.runGroupedTail(rp.ctx, c, p, rp.n, opts, rp.seed, rp.maxBytes)
			if err != nil {
				return nil, err
			}
			return &ExecResult{Kind: ExecGroupedTail, GroupedTail: gt, GroupTails: gt.TailMap()}, nil
		}
		tr, err := e.runTail(rp.ctx, c, p, rp.n, opts, rp.seed, rp.maxBytes)
		if err != nil {
			return nil, err
		}
		e.registerFTable(s, &tr.Distribution)
		return &ExecResult{Kind: ExecTail, Tail: tr}, nil
	}
	if rule != nil || rp.progress != nil {
		return e.runAdaptiveSelect(c, s, rp, rule)
	}
	if grouped || multi {
		gd, err := e.runGroupedMonteCarlo(rp.ctx, c, rp.n, rp.seed, rp.workers, rp.maxBytes)
		if err != nil {
			return nil, err
		}
		res := &ExecResult{Kind: ExecGroupedDistribution, Grouped: gd}
		if !multi {
			res.GroupDists = gd.DistMap()
		}
		return res, nil
	}
	d, err := e.runMonteCarlo(rp.ctx, c, rp.n, rp.seed, rp.workers, rp.maxBytes)
	if err != nil {
		return nil, err
	}
	e.registerFTable(s, d)
	return &ExecResult{Kind: ExecDistribution, Dist: d}, nil
}

// registerFTable is the explicit post-execution step that materializes a
// FREQUENCYTABLE clause as the catalog table FTABLE(<name>, FRAC). It runs
// only after the query has fully completed (never mid-query) and swaps the
// table in atomically under the engine lock: a concurrent query sees the
// previous FTABLE or the new one, never a half-built relation. The DDL
// epoch is bumped only when the FTABLE schema changes (a different
// aggregate name), so repeated runs of the same query do not invalidate
// cached plans.
func (e *Engine) registerFTable(s *sqlish.SelectStmt, d *Distribution) {
	if s.FreqTable == "" {
		return
	}
	t := storage.NewTable("ftable", types.NewSchema(
		types.Column{Name: s.FreqTable, Kind: types.KindFloat},
		types.Column{Name: "frac", Kind: types.KindFloat},
	))
	for i, v := range d.FTable.Values {
		t.MustAppend(types.Row{types.NewFloat(v), types.NewFloat(d.FTable.Fracs[i])})
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if old, ok := e.cat.Get("ftable"); !ok || !sameSchema(old.Schema(), t.Schema()) {
		e.ddlEpoch++
	}
	// The data epoch always advances: cached plans stay valid across
	// same-schema re-registrations, but materialized prefixes over FTABLE
	// embed its contents and must be recomputed.
	e.dataEpoch++
	e.cat.Put(t)
}

// sameSchema reports whether two schemas have identical column names and
// kinds.
func sameSchema(a, b *types.Schema) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		ca, cb := a.Col(i), b.Col(i)
		if !strings.EqualFold(ca.Name, cb.Name) || ca.Kind != cb.Kind {
			return false
		}
	}
	return true
}
