package mcdbr

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/sqlish"
	"repro/internal/storage"
	"repro/internal/types"
)

// ExecKind tags what an Exec call produced.
type ExecKind uint8

const (
	// ExecCreated: a CREATE TABLE ... FOR EACH statement defined a random
	// table.
	ExecCreated ExecKind = iota
	// ExecScalar: a deterministic aggregate (e.g. over FTABLE) produced a
	// single number.
	ExecScalar
	// ExecDistribution: a WITH RESULTDISTRIBUTION query without DOMAIN
	// produced a Monte Carlo distribution.
	ExecDistribution
	// ExecTail: a DOMAIN ... QUANTILE query produced a tail distribution.
	ExecTail
	// ExecGroupedDistribution: a GROUP BY query without DOMAIN produced
	// one distribution per group.
	ExecGroupedDistribution
	// ExecGroupedTail: a GROUP BY ... DOMAIN query produced one tail
	// distribution per group (paper App. A: g conditioned queries).
	ExecGroupedTail
	// ExecExplained: an EXPLAIN statement produced a plan description
	// without executing the query.
	ExecExplained
)

// String names the result kind (used by the HTTP serving layer).
func (k ExecKind) String() string {
	switch k {
	case ExecCreated:
		return "created"
	case ExecScalar:
		return "scalar"
	case ExecDistribution:
		return "distribution"
	case ExecTail:
		return "tail"
	case ExecGroupedDistribution:
		return "grouped_distribution"
	case ExecGroupedTail:
		return "grouped_tail"
	case ExecExplained:
		return "explained"
	default:
		return fmt.Sprintf("ExecKind(%d)", uint8(k))
	}
}

// ExecResult is the outcome of Engine.Exec.
type ExecResult struct {
	Kind       ExecKind
	Scalar     float64
	Dist       *Distribution
	Tail       *TailResult
	GroupDists map[string]*Distribution
	GroupTails map[string]*TailResult
	Explain    *Explain
}

// Exec parses and executes one SQL-ish statement (the paper's §2 surface
// syntax). Tail-sampling parameters use the Appendix C defaults; use
// ExecWithOptions to override them.
func (e *Engine) Exec(sql string) (*ExecResult, error) {
	return e.ExecWithOptions(sql, TailSampleOptions{})
}

// PanicError is a panic recovered at an engine entry point, surfaced as
// an error. Callers (e.g. the HTTP serving layer) can errors.As on it to
// distinguish engine faults from bad-input errors.
type PanicError struct {
	// Op names the entry point that recovered the panic.
	Op string
	// Value is the recovered panic value.
	Value any
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("mcdbr: %s: internal panic: %v", p.Op, p.Value)
}

// recoverToError converts a panic escaping a public entry point into a
// *PanicError, so one bad query (a type-confused expression, VG misuse,
// or a panicking user VG function) cannot crash a process serving other
// queries. Parallel execution installs the same net in its worker
// goroutines, where a panic would otherwise be fatal regardless of
// deferred recovery on the calling goroutine.
func recoverToError(op string, err *error) {
	if r := recover(); r != nil {
		*err = &PanicError{Op: op, Value: r}
	}
}

// ExecWithOptions is Exec with explicit tail-sampling options.
func (e *Engine) ExecWithOptions(sql string, opts TailSampleOptions) (res *ExecResult, err error) {
	defer recoverToError("Exec", &err)
	stmt, err := sqlish.Parse(sql)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *sqlish.CreateRandomTable:
		if err := e.execCreate(s); err != nil {
			return nil, err
		}
		return &ExecResult{Kind: ExecCreated}, nil
	case *sqlish.ExplainStmt:
		x, err := e.explainSelect(s.Stmt)
		if err != nil {
			return nil, err
		}
		return &ExecResult{Kind: ExecExplained, Explain: x}, nil
	case *sqlish.SelectStmt:
		if !s.With {
			v, err := e.execScalar(s)
			if err != nil {
				return nil, err
			}
			return &ExecResult{Kind: ExecScalar, Scalar: v}, nil
		}
		return e.execResultDistribution(s, opts)
	default:
		return nil, fmt.Errorf("mcdbr: unsupported statement %T", stmt)
	}
}

// execCreate turns the parsed CREATE TABLE ... FOR EACH into a RandomTable
// definition.
func (e *Engine) execCreate(s *sqlish.CreateRandomTable) error {
	gen, ok := e.vgs.Lookup(s.VGName)
	if !ok {
		return fmt.Errorf("mcdbr: VG function %q not registered", s.VGName)
	}
	nOut := len(gen.OutKinds())
	var cols []RandomCol
	colIdx := 0
	takeName := func() (string, error) {
		if colIdx >= len(s.Cols) {
			return "", fmt.Errorf("mcdbr: CREATE TABLE %s: more select items than columns", s.Name)
		}
		n := s.Cols[colIdx]
		colIdx++
		return n, nil
	}
	for _, item := range s.SelectItems {
		switch {
		case strings.HasSuffix(item, ".*"):
			alias := strings.TrimSuffix(item, ".*")
			if !strings.EqualFold(alias, s.VGAlias) {
				return fmt.Errorf("mcdbr: CREATE TABLE %s: %s.* does not match VG alias %s", s.Name, alias, s.VGAlias)
			}
			for o := 0; o < nOut; o++ {
				name, err := takeName()
				if err != nil {
					return err
				}
				cols = append(cols, RandomCol{Name: name, VGOut: o})
			}
		case strings.Contains(item, "."):
			parts := strings.SplitN(item, ".", 2)
			name, err := takeName()
			if err != nil {
				return err
			}
			if strings.EqualFold(parts[0], s.VGAlias) {
				// A single VG output referenced by position: myVal.valueN
				// (1-based), or the bare myVal.value for the first output.
				ref := strings.ToLower(parts[1])
				out := 0
				switch {
				case ref == "value":
				case strings.HasPrefix(ref, "value"):
					n, err := strconv.Atoi(ref[len("value"):])
					if err != nil {
						return fmt.Errorf("mcdbr: CREATE TABLE %s: unknown VG output reference %s (use %s.value1..value%d or %s.*)",
							s.Name, item, s.VGAlias, nOut, s.VGAlias)
					}
					if n < 1 || n > nOut {
						return fmt.Errorf("mcdbr: CREATE TABLE %s: %s references VG output %d, but %s has %d output(s)",
							s.Name, item, n, s.VGName, nOut)
					}
					out = n - 1
				default:
					return fmt.Errorf("mcdbr: CREATE TABLE %s: unknown VG output reference %s (use %s.value1..value%d or %s.*)",
						s.Name, item, s.VGAlias, nOut, s.VGAlias)
				}
				cols = append(cols, RandomCol{Name: name, VGOut: out})
			} else {
				cols = append(cols, RandomCol{Name: name, FromParam: parts[1]})
			}
		default:
			name, err := takeName()
			if err != nil {
				return err
			}
			cols = append(cols, RandomCol{Name: name, FromParam: item})
		}
	}
	if colIdx != len(s.Cols) {
		return fmt.Errorf("mcdbr: CREATE TABLE %s: %d columns declared, %d produced", s.Name, len(s.Cols), colIdx)
	}
	return e.DefineRandomTable(RandomTable{
		Name:       s.Name,
		ParamTable: s.ParamTable,
		VG:         s.VGName,
		VGParams:   s.VGParams,
		Columns:    cols,
	})
}

// execScalar evaluates a deterministic aggregate over a single ordinary
// table — the paper's follow-up queries such as
// SELECT MIN(totalLoss) FROM FTABLE.
func (e *Engine) execScalar(s *sqlish.SelectStmt) (float64, error) {
	if len(s.Froms) != 1 {
		return 0, fmt.Errorf("mcdbr: deterministic aggregates support exactly one table, got %d", len(s.Froms))
	}
	if _, isRandom := e.randomDef(s.Froms[0].Table); isRandom {
		return 0, fmt.Errorf("mcdbr: query over random table %q needs WITH RESULTDISTRIBUTION", s.Froms[0].Table)
	}
	t, ok := e.cat.Get(s.Froms[0].Table)
	if !ok {
		return 0, fmt.Errorf("mcdbr: table %q not registered", s.Froms[0].Table)
	}
	rows, err := e.filterRows(t, s.Where)
	if err != nil {
		return 0, err
	}
	if s.Agg == "COUNT" && s.AggExpr == nil {
		return float64(len(rows)), nil
	}
	c, err := expr.Compile(s.AggExpr, t.Schema())
	if err != nil {
		return 0, err
	}
	var sum float64
	var n int
	best := math.NaN()
	for _, r := range rows {
		v := c.Eval(r)
		if v.IsNull() {
			continue
		}
		f, ok := v.AsFloat()
		if !ok {
			return 0, fmt.Errorf("mcdbr: aggregate over non-numeric value %s", v.Kind())
		}
		sum += f
		n++
		switch s.Agg {
		case "MIN":
			if math.IsNaN(best) || f < best {
				best = f
			}
		case "MAX":
			if math.IsNaN(best) || f > best {
				best = f
			}
		}
	}
	switch s.Agg {
	case "SUM":
		return sum, nil
	case "COUNT":
		return float64(n), nil
	case "AVG":
		if n == 0 {
			return math.NaN(), nil
		}
		return sum / float64(n), nil
	case "MIN", "MAX":
		return best, nil
	}
	return 0, fmt.Errorf("mcdbr: unsupported aggregate %q", s.Agg)
}

func (e *Engine) filterRows(t *storage.Table, where expr.Expr) ([]types.Row, error) {
	if where == nil {
		return t.Rows(), nil
	}
	c, err := expr.Compile(where, t.Schema())
	if err != nil {
		return nil, err
	}
	var out []types.Row
	for _, r := range t.Rows() {
		if c.EvalBool(r) {
			out = append(out, r)
		}
	}
	return out, nil
}

// selectBuilder turns a parsed SELECT into a QueryBuilder; shared by Exec,
// EXPLAIN, and Prepare.
func (e *Engine) selectBuilder(s *sqlish.SelectStmt) (*QueryBuilder, error) {
	qb := e.Query()
	for _, f := range s.Froms {
		qb.From(f.Table, f.Alias)
	}
	if s.Where != nil {
		qb.Where(s.Where)
	}
	switch s.Agg {
	case "SUM":
		qb.SelectSum(s.AggExpr)
	case "AVG":
		qb.SelectAvg(s.AggExpr)
	case "COUNT":
		qb.SelectCount()
	default:
		return nil, fmt.Errorf("mcdbr: aggregate %s is not supported with RESULTDISTRIBUTION (use SUM, COUNT, or AVG)", s.Agg)
	}
	return qb, nil
}

// domainTailProbability maps the DOMAIN clause to the looper's upper/lower
// tail probability, validating the aggregate alias reference.
func domainTailProbability(s *sqlish.SelectStmt) (float64, error) {
	if s.AggAlias != "" && !strings.EqualFold(s.Domain.Name, s.AggAlias) {
		return 0, fmt.Errorf("mcdbr: DOMAIN references %q but the aggregate is named %q", s.Domain.Name, s.AggAlias)
	}
	if s.Domain.Lower {
		return s.Domain.Quantile, nil
	}
	return 1 - s.Domain.Quantile, nil
}

// execResultDistribution runs a WITH RESULTDISTRIBUTION query: plain Monte
// Carlo without DOMAIN, tail sampling with it. A FREQUENCYTABLE clause
// registers the table FTABLE(<name>, FRAC) in the catalog for follow-up
// queries.
func (e *Engine) execResultDistribution(s *sqlish.SelectStmt, opts TailSampleOptions) (*ExecResult, error) {
	qb, err := e.selectBuilder(s)
	if err != nil {
		return nil, err
	}
	var groupTable, groupCol string
	if s.GroupBy != "" {
		var err error
		groupTable, groupCol, err = e.resolveGroupBy(s)
		if err != nil {
			return nil, err
		}
	}
	if s.Domain != nil {
		p, err := domainTailProbability(s)
		if err != nil {
			return nil, err
		}
		opts.Lower = s.Domain.Lower
		if s.GroupBy != "" {
			groups, err := qb.GroupedTailSample(groupTable, groupCol, p, s.MCReps, opts)
			if err != nil {
				return nil, err
			}
			return &ExecResult{Kind: ExecGroupedTail, GroupTails: groups}, nil
		}
		res, err := qb.TailSample(p, s.MCReps, opts)
		if err != nil {
			return nil, err
		}
		e.registerFTable(s, &res.Distribution)
		return &ExecResult{Kind: ExecTail, Tail: res}, nil
	}
	if s.GroupBy != "" {
		groups, err := qb.GroupedMonteCarlo(groupTable, groupCol, s.MCReps)
		if err != nil {
			return nil, err
		}
		return &ExecResult{Kind: ExecGroupedDistribution, GroupDists: groups}, nil
	}
	d, err := qb.MonteCarlo(s.MCReps)
	if err != nil {
		return nil, err
	}
	e.registerFTable(s, d)
	return &ExecResult{Kind: ExecDistribution, Dist: d}, nil
}

// resolveGroupBy maps a GROUP BY column reference to the catalog table
// holding its distinct values: for a deterministic table it is the table
// itself; for a random table the column must be parameter-derived and the
// values come from the parameter table.
func (e *Engine) resolveGroupBy(s *sqlish.SelectStmt) (table, col string, err error) {
	name := s.GroupBy
	alias := ""
	if i := strings.IndexByte(name, '.'); i >= 0 {
		alias, col = name[:i], name[i+1:]
	} else {
		col = name
		if len(s.Froms) != 1 {
			return "", "", fmt.Errorf("mcdbr: GROUP BY %q needs an alias qualifier in multi-table queries", name)
		}
		alias = s.Froms[0].Alias
	}
	var tableName string
	for _, f := range s.Froms {
		if strings.EqualFold(f.Alias, alias) {
			tableName = f.Table
			break
		}
	}
	if tableName == "" {
		return "", "", fmt.Errorf("mcdbr: GROUP BY alias %q not in FROM clause", alias)
	}
	if rt, ok := e.randomDef(tableName); ok {
		for _, c := range rt.Columns {
			if strings.EqualFold(c.Name, col) {
				if c.FromParam == "" {
					return "", "", fmt.Errorf("mcdbr: GROUP BY column %q of %q is VG-generated; grouping columns must be deterministic", col, tableName)
				}
				return rt.ParamTable, c.FromParam, nil
			}
		}
		return "", "", fmt.Errorf("mcdbr: GROUP BY column %q not in random table %q", col, tableName)
	}
	return tableName, col, nil
}

// registerFTable is the explicit post-execution step that materializes a
// FREQUENCYTABLE clause as the catalog table FTABLE(<name>, FRAC). It runs
// only after the query has fully completed (never mid-query) and swaps the
// table in atomically under the engine lock: a concurrent query sees the
// previous FTABLE or the new one, never a half-built relation. The DDL
// epoch is bumped only when the FTABLE schema changes (a different
// aggregate name), so repeated runs of the same query do not invalidate
// cached plans.
func (e *Engine) registerFTable(s *sqlish.SelectStmt, d *Distribution) {
	if s.FreqTable == "" {
		return
	}
	t := storage.NewTable("ftable", types.NewSchema(
		types.Column{Name: s.FreqTable, Kind: types.KindFloat},
		types.Column{Name: "frac", Kind: types.KindFloat},
	))
	for i, v := range d.FTable.Values {
		t.MustAppend(types.Row{types.NewFloat(v), types.NewFloat(d.FTable.Fracs[i])})
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if old, ok := e.cat.Get("ftable"); !ok || !sameSchema(old.Schema(), t.Schema()) {
		e.ddlEpoch++
	}
	// The data epoch always advances: cached plans stay valid across
	// same-schema re-registrations, but materialized prefixes over FTABLE
	// embed its contents and must be recomputed.
	e.dataEpoch++
	e.cat.Put(t)
}

// sameSchema reports whether two schemas have identical column names and
// kinds.
func sameSchema(a, b *types.Schema) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		ca, cb := a.Col(i), b.Col(i)
		if !strings.EqualFold(ca.Name, cb.Name) || ca.Kind != cb.Kind {
			return false
		}
	}
	return true
}
