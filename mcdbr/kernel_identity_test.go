package mcdbr_test

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/workload"
	"repro/mcdbr"
)

// kernelEngine builds the grouped loss workload with explicit control
// over every execution knob the vectorized kernels must be invisible to:
// kernels on/off, worker count, batch size, prefix cache, and window
// size (a window smaller than the replicate count forces the
// version-major fallback plus replenishing runs).
func kernelEngine(t *testing.T, kernels bool, workers, batch, prefixCache, window int) *mcdbr.Engine {
	t.Helper()
	e := mcdbr.New(mcdbr.WithSeed(1234), mcdbr.WithWindow(window),
		mcdbr.WithParallelism(workers), mcdbr.WithBatchSize(batch),
		mcdbr.WithPrefixCacheSize(prefixCache), mcdbr.WithVectorizedKernels(kernels))
	means := workload.LossMeans(40, 2, 8, 5)
	e.RegisterTable(means)
	if err := e.DefineRandomTable(mcdbr.RandomTable{
		Name: "losses", ParamTable: "means", VG: "Normal",
		VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
		Columns:  []mcdbr.RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	grp := storage.NewTable("grp", types.NewSchema(
		types.Column{Name: "cid", Kind: types.KindInt},
		types.Column{Name: "g", Kind: types.KindString},
	))
	for i, r := range means.Rows() {
		g := "a"
		if i%2 == 1 {
			g = "b"
		}
		grp.MustAppend(types.Row{r[0], types.NewString(g)})
	}
	e.RegisterTable(grp)
	return e
}

// kernelSig fingerprints a query result down to the bit pattern of every
// sample, so two runs compare equal iff they are bit-for-bit identical.
func kernelSig(t *testing.T, res *mcdbr.ExecResult) string {
	t.Helper()
	var sb strings.Builder
	bits := func(samples []float64) {
		fmt.Fprintf(&sb, "#%d:", len(samples))
		for _, s := range samples {
			fmt.Fprintf(&sb, "%016x,", math.Float64bits(s))
		}
	}
	switch res.Kind {
	case mcdbr.ExecDistribution:
		bits(res.Dist.Samples)
	case mcdbr.ExecGroupedDistribution:
		for i := range res.Grouped.Groups {
			g := &res.Grouped.Groups[i]
			fmt.Fprintf(&sb, "\ngroup %s incl=%016x ", g.KeyString(), math.Float64bits(g.Inclusion))
			for _, d := range g.Dists {
				bits(d.Samples)
			}
		}
	default:
		t.Fatalf("unexpected result kind %v", res.Kind)
	}
	return sb.String()
}

// kernelIdentityQueries cover the vectorized surfaces: a grouped
// multi-aggregate query with a random-attribute WHERE (Select presence
// vectors + the window-major EvalWindow pass), the same with HAVING
// (which stays version-major), and an ungrouped aggregate.
var kernelIdentityQueries = []struct{ name, sql string }{
	{"grouped", `SELECT SUM(l.val) AS s, AVG(l.val * 2.0 + 1.0) AS a2, COUNT(*) AS c
FROM losses l, grp grp WHERE l.cid = grp.cid AND l.val > 0.5
GROUP BY grp.g WITH RESULTDISTRIBUTION MONTECARLO(201)`},
	{"having", `SELECT SUM(l.val) AS s FROM losses l, grp grp
WHERE l.cid = grp.cid AND l.val > 0.5 GROUP BY grp.g
HAVING s > 50.0 WITH RESULTDISTRIBUTION MONTECARLO(201)`},
	{"ungrouped", `SELECT SUM(val) AS s FROM losses WHERE val > 0.0
WITH RESULTDISTRIBUTION MONTECARLO(201)`},
}

// TestKernelBitIdentity pins the acceptance criterion of the vectorized
// kernel layer: results are bit-for-bit identical with kernels on and
// off, at worker counts {1, 2, 3, NumCPU} and batch sizes {1, 7, 1024},
// with the prefix cache enabled and disabled, and when a small window
// forces the version-major fallback with replenishing runs.
func TestKernelBitIdentity(t *testing.T) {
	for _, q := range kernelIdentityQueries {
		t.Run(q.name, func(t *testing.T) {
			var want string
			check := func(label string, kernels bool, workers, batch, cache, window int) {
				t.Helper()
				e := kernelEngine(t, kernels, workers, batch, cache, window)
				res, err := e.Exec(q.sql)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				got := kernelSig(t, res)
				if want == "" {
					want = got
					return
				}
				if got != want {
					t.Fatalf("%s: result bits diverge from baseline", label)
				}
			}
			for _, kernels := range []bool{true, false} {
				for _, workers := range []int{1, 2, 3, runtime.NumCPU()} {
					for _, batch := range []int{1, 7, 1024} {
						check(fmt.Sprintf("kernels=%v workers=%d batch=%d", kernels, workers, batch),
							kernels, workers, batch, 0, 512)
					}
				}
				// Prefix cache off, and a window smaller than the replicate
				// count (version-major fallback + replenishing runs).
				check(fmt.Sprintf("kernels=%v cache=off", kernels), kernels, 2, 0, -1, 512)
				check(fmt.Sprintf("kernels=%v window=64", kernels), kernels, 1, 0, 0, 64)
			}
		})
	}
}
