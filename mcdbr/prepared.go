package mcdbr

// Prepared queries: parse and plan a SELECT once, execute it many times
// with per-run options. This is the serving-path counterpart of Exec —
// a query service handling the same risk-analysis statement for many
// requests pays the sqlish parse and internal/plan rewrite/lowering cost
// once, then only the Monte Carlo (or tail-sampling) execution per run.
// The engine keeps an LRU cache of prepared plans keyed by normalized SQL
// and invalidated by the DDL epoch, so even callers that only use Exec-style
// round trips through Prepare get plan reuse.

import (
	"container/list"
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/gibbs"
	"repro/internal/sqlish"
)

// RunOptions are the per-run knobs of a prepared query. The zero value
// reruns the statement exactly as Exec would: engine seed, the statement's
// MONTECARLO(n) repetition count, and the engine's worker count.
type RunOptions struct {
	// Seed overrides the engine's master PRNG seed for this run; 0 selects
	// the engine seed. Runs with equal seeds are bit-for-bit identical to
	// an Exec of the same statement on an engine with that seed.
	Seed uint64
	// Samples overrides the statement's MONTECARLO(n) count: the number of
	// Monte Carlo repetitions, or of conditioned tail samples for DOMAIN
	// queries. 0 keeps the statement's value.
	Samples int
	// Workers overrides the engine's replicate-sharding worker count
	// (0 = engine default, 1 = sequential). Results are identical for
	// every value.
	Workers int
	// Tail tunes tail sampling for DOMAIN queries; ignored otherwise.
	Tail TailSampleOptions
	// MaxBytes overrides the engine's WithMaxQueryBytes memory budget for
	// this run: the most bytes the run's tuple arenas may hold before it
	// fails with an error wrapping ErrMemoryBudget. 0 keeps the engine
	// budget; negative disables the bound for this run.
	MaxBytes int64
	// TargetRelError, when > 0, turns the run adaptive (or overrides the
	// statement's UNTIL ERROR target): execution stops once every (group,
	// aggregate) estimate's relative CI half-width reaches the target. The
	// replicates actually run stay bit-identical to a fixed run of the
	// same count.
	TargetRelError float64
	// Confidence overrides the CI level of an adaptive run (0 keeps the
	// statement's value or the 95% default). Ignored for fixed-N runs.
	Confidence float64
	// MaxSamples caps an adaptive run's total replicates (0 keeps the
	// statement's value or the 65536 default). Ignored for fixed-N runs.
	MaxSamples int
	// DegradeOnDeadline selects graceful degradation for adaptive runs:
	// when ctx's deadline fires after at least one completed round (or tail
	// attempt), RunCtx returns the partial estimate accumulated so far —
	// bit-identical to a fixed run of that count — with
	// AdaptiveReport.Degraded set, instead of context.DeadlineExceeded.
	// Fixed-N runs ignore it and keep their strict contract: a deadline is
	// always an error, never a silently truncated result.
	DegradeOnDeadline bool
	// Progress, when non-nil, streams progressive partial results: it is
	// invoked after every adaptive round (or tail-chain attempt) with the
	// cumulative estimates and CI half-widths, from the run's goroutine.
	// Setting it on a fixed-N statement runs the round driver with
	// convergence disabled, so partial estimates stream while the final
	// result stays bit-identical to a plain run.
	Progress func(ProgressUpdate)
}

// PreparedQuery is a SELECT statement parsed and planned once, executable
// many times. Values are safe for concurrent use: Run creates a private
// workspace per call and never mutates the shared plan.
type PreparedQuery struct {
	e    *Engine
	key  string
	stmt *sqlish.SelectStmt
	c    *compiled // nil for deterministic (non-WITH) aggregates
	hit  bool
}

// cachedPlan is the plan-cache entry behind one normalized SQL key.
type cachedPlan struct {
	stmt  *sqlish.SelectStmt
	c     *compiled
	epoch uint64
}

// Prepare parses and plans one SQL-ish SELECT statement for repeated
// execution. CREATE TABLE statements are not preparable; use Exec for
// those. GROUP BY queries prepare like any other SELECT since ISSUE 5:
// aggregation (grouped or not) is part of the single compiled plan.
// Prepared plans are cached per engine in an LRU keyed by
// whitespace/case-normalized SQL and invalidated whenever a definition
// changes (RegisterTable, RegisterVG, DefineRandomTable, or an FTABLE
// schema change), so a later Prepare of the same text re-plans against
// the current catalog.
func (e *Engine) Prepare(sql string) (p *PreparedQuery, err error) {
	defer recoverToError("Prepare", &err)
	key := normalizeSQL(sql)
	epoch := e.epoch()
	if cp, ok := e.plans.get(key, epoch); ok {
		return &PreparedQuery{e: e, key: key, stmt: cp.stmt, c: cp.c, hit: true}, nil
	}
	stmt, err := sqlish.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqlish.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("mcdbr: only SELECT statements can be prepared, got %T; use Exec", stmt)
	}
	var c *compiled
	if sel.With {
		if c, err = e.compileSelect(sel); err != nil {
			return nil, err
		}
		// Fail statements that could never run at Prepare time (bad DOMAIN
		// alias, multi-aggregate DOMAIN, grouped FREQUENCYTABLE, ...) so
		// they never pollute the plan cache.
		if err := validateSelect(c, sel); err != nil {
			return nil, err
		}
	} else if len(sel.Froms) == 1 {
		if _, isRandom := e.randomDef(sel.Froms[0].Table); isRandom {
			return nil, fmt.Errorf("mcdbr: query over random table %q needs WITH RESULTDISTRIBUTION", sel.Froms[0].Table)
		}
	}
	e.plans.put(key, &cachedPlan{stmt: sel, c: c, epoch: epoch})
	return &PreparedQuery{e: e, key: key, stmt: sel, c: c}, nil
}

// CacheHit reports whether this PreparedQuery was served from the
// engine's plan cache rather than parsed and planned anew.
func (p *PreparedQuery) CacheHit() bool { return p.hit }

// SQL returns the normalized statement text (the plan-cache key).
func (p *PreparedQuery) SQL() string { return p.key }

// Explain returns the plan description of the prepared statement.
func (p *PreparedQuery) Explain() (*Explain, error) {
	return p.e.explainSelect(p.stmt)
}

// Run executes the prepared statement once with the given per-run
// options. With a zero RunOptions the result is bit-for-bit identical to
// Engine.Exec of the same statement. Run is safe to call from many
// goroutines on one PreparedQuery.
func (p *PreparedQuery) Run(opts RunOptions) (*ExecResult, error) {
	return p.RunCtx(context.Background(), opts)
}

// RunCtx is Run with cancellation: when ctx is cancelled the run stops at
// the next unit of work — between replicates, Gibbs versions, and
// bootstrapping steps — and returns ctx's cause (errors.Is
// context.Canceled or DeadlineExceeded). Partial work is discarded; a
// cancelled run never returns a truncated result. The HTTP serving layer
// passes the request context so a disconnected client aborts its query.
func (p *PreparedQuery) RunCtx(ctx context.Context, opts RunOptions) (res *ExecResult, err error) {
	defer recoverToError("PreparedQuery.Run", &err)
	s := p.stmt
	if !s.With {
		// Deterministic aggregate: re-executes against the current catalog
		// (FTABLE contents may have changed since Prepare).
		return p.e.execScalar(s)
	}
	seed := opts.Seed
	if seed == 0 {
		seed = p.e.seed
	}
	workers := opts.Workers
	if workers == 0 {
		workers = p.e.parallelism
	}
	n := s.MCReps
	if opts.Samples > 0 {
		n = opts.Samples
	}
	topts := opts.Tail
	if topts.Parallelism == 0 {
		topts.Parallelism = workers
	}
	maxBytes := opts.MaxBytes
	switch {
	case maxBytes == 0:
		maxBytes = p.e.maxQueryBytes
	case maxBytes < 0:
		maxBytes = 0 // explicit override: unbounded
	}
	// Fold the per-run adaptive overrides over the statement's rule: a
	// TargetRelError turns any statement adaptive; Confidence and
	// MaxSamples refine a rule that exists (from either source).
	var stop *gibbs.StopRule
	if p.c != nil && p.c.stop != nil {
		r := stopRuleFromSpec(p.c.stop)
		stop = &r
	}
	if opts.TargetRelError > 0 {
		if stop == nil {
			stop = &gibbs.StopRule{}
		}
		stop.TargetRelError = opts.TargetRelError
	}
	if stop != nil {
		if opts.Confidence > 0 {
			stop.Confidence = opts.Confidence
		}
		if opts.MaxSamples > 0 {
			stop.MaxSamples = opts.MaxSamples
		}
	}
	return p.e.runSelectCompiled(p.c, s, topts, runParams{
		ctx:      ctx,
		seed:     seed,
		workers:  workers,
		n:        n,
		maxBytes: maxBytes,
		stop:     stop,
		degrade:  opts.DegradeOnDeadline,
		progress: opts.Progress,
	})
}

// PlanCacheStats reports the engine plan cache's lifetime hit and miss
// counts and its current size.
func (e *Engine) PlanCacheStats() (hits, misses uint64, size int) {
	return e.plans.stats()
}

// normalizeSQL is the plan-cache key function: it lowercases the
// statement outside single-quoted strings, collapses whitespace runs to
// one space, and drops a trailing semicolon, so reformatted copies of one
// query share a cache entry.
func normalizeSQL(sql string) string {
	var b strings.Builder
	b.Grow(len(sql))
	inStr := false
	pendingSpace := false
	for i := 0; i < len(sql); i++ {
		c := sql[i]
		if inStr {
			b.WriteByte(c)
			if c == '\'' {
				inStr = false
			}
			continue
		}
		switch c {
		case ' ', '\t', '\n', '\r':
			pendingSpace = true
		default:
			if pendingSpace && b.Len() > 0 {
				b.WriteByte(' ')
			}
			pendingSpace = false
			if c == '\'' {
				inStr = true
			} else if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			b.WriteByte(c)
		}
	}
	return strings.TrimSuffix(strings.TrimSpace(b.String()), ";")
}

// planCache is a mutex-guarded LRU of prepared plans. Entries carry the
// DDL epoch they were planned under; a lookup from a later epoch misses
// (and evicts), so definition changes invalidate stale plans without a
// full flush of still-valid ones being observable by callers.
type planCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // *cacheItem, most recently used first
	entries map[string]*list.Element
	hits    uint64
	misses  uint64
}

type cacheItem struct {
	key string
	p   *cachedPlan
}

// newPlanCache builds an empty cache; cap <= 0 selects 64.
func newPlanCache(cap int) *planCache {
	if cap <= 0 {
		cap = 64
	}
	return &planCache{cap: cap, order: list.New(), entries: make(map[string]*list.Element)}
}

func (pc *planCache) get(key string, epoch uint64) (*cachedPlan, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.entries[key]
	if ok {
		item := el.Value.(*cacheItem)
		if item.p.epoch == epoch {
			pc.order.MoveToFront(el)
			pc.hits++
			return item.p, true
		}
		// Planned under an older catalog: evict.
		pc.order.Remove(el)
		delete(pc.entries, key)
	}
	pc.misses++
	return nil, false
}

func (pc *planCache) put(key string, p *cachedPlan) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.entries[key]; ok {
		el.Value.(*cacheItem).p = p
		pc.order.MoveToFront(el)
		return
	}
	pc.entries[key] = pc.order.PushFront(&cacheItem{key: key, p: p})
	for pc.order.Len() > pc.cap {
		back := pc.order.Back()
		pc.order.Remove(back)
		delete(pc.entries, back.Value.(*cacheItem).key)
	}
}

func (pc *planCache) stats() (hits, misses uint64, size int) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.hits, pc.misses, pc.order.Len()
}
