package mcdbr

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/types"
)

// groupedEngine builds losses(cid, val) ~ Normal(m, 1) joined to a grp
// table assigning the first half of the customers to group "a" and the
// rest to "b". prefixCache <0 disables the deterministic-prefix cache.
func groupedEngine(t testing.TB, nCustomers, workers, prefixCache int) *Engine {
	t.Helper()
	e := lossEngine(t, nCustomers, 99)
	if workers > 0 {
		eOpts := []Option{WithSeed(99), WithWindow(2048), WithParallelism(workers), WithPrefixCacheSize(prefixCache)}
		e = New(eOpts...)
		tbl := lossEngine(t, nCustomers, 99)
		m, _ := tbl.Table("means")
		e.RegisterTable(m)
		if err := e.DefineRandomTable(RandomTable{
			Name: "losses", ParamTable: "means", VG: "Normal",
			VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
			Columns:  []RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	grp := storage.NewTable("grp", types.NewSchema(
		types.Column{Name: "cid", Kind: types.KindInt},
		types.Column{Name: "g", Kind: types.KindString},
	))
	m, _ := e.Table("means")
	for i, r := range m.Rows() {
		g := "a"
		if i >= nCustomers/2 {
			g = "b"
		}
		grp.MustAppend(types.Row{r[0], types.NewString(g)})
	}
	e.RegisterTable(grp)
	return e
}

// TestGroupedMonteCarloBitIdenticalToPerGroupLoop pins the ISSUE 5
// acceptance criterion: the single-pass grouped pipeline returns, for
// every group, samples bit-identical to the pre-refactor per-group outer
// loop — which ran one full query per group with a group-selection
// predicate appended — at several worker counts, with the prefix cache
// on and off.
func TestGroupedMonteCarloBitIdenticalToPerGroupLoop(t *testing.T) {
	const n = 200
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		for _, cache := range []int{0, -1} {
			e := groupedEngine(t, 10, workers, cache)
			res, err := e.Exec(fmt.Sprintf(`SELECT SUM(l.val) AS x FROM losses l, grp grp
WHERE l.cid = grp.cid GROUP BY grp.g
WITH RESULTDISTRIBUTION MONTECARLO(%d)`, n))
			if err != nil {
				t.Fatalf("workers=%d cache=%d: %v", workers, cache, err)
			}
			if res.Kind != ExecGroupedDistribution || len(res.Grouped.Groups) != 2 {
				t.Fatalf("workers=%d: kind=%v groups=%d", workers, res.Kind, len(res.Grouped.Groups))
			}
			for _, g := range []string{"a", "b"} {
				// The old loop's formulation: the same query restricted to one
				// group by a WHERE predicate.
				single, err := e.Exec(fmt.Sprintf(`SELECT SUM(l.val) AS x FROM losses l, grp grp
WHERE l.cid = grp.cid AND grp.g = '%s'
WITH RESULTDISTRIBUTION MONTECARLO(%d)`, g, n))
				if err != nil {
					t.Fatalf("group %s: %v", g, err)
				}
				grouped := res.GroupDists[g]
				if grouped == nil {
					t.Fatalf("group %s missing from %v", g, res.GroupDists)
				}
				if len(grouped.Samples) != len(single.Dist.Samples) {
					t.Fatalf("group %s: %d vs %d samples", g, len(grouped.Samples), len(single.Dist.Samples))
				}
				for i := range single.Dist.Samples {
					if grouped.Samples[i] != single.Dist.Samples[i] {
						t.Fatalf("workers=%d cache=%d group %s sample %d: grouped %v vs per-group %v",
							workers, cache, g, i, grouped.Samples[i], single.Dist.Samples[i])
					}
				}
			}
		}
	}
}

// TestGroupedTailBitIdenticalToPerGroupLoop is the DOMAIN counterpart:
// each group's conditioned Gibbs run over the shared plan matches the
// query re-run with that group's selection predicate, bit for bit.
func TestGroupedTailBitIdenticalToPerGroupLoop(t *testing.T) {
	opts := TailSampleOptions{TotalSamples: 150}
	e := groupedEngine(t, 8, 2, 0)
	res, err := e.ExecWithOptions(`SELECT SUM(l.val) AS x FROM losses l, grp grp
WHERE l.cid = grp.cid GROUP BY grp.g
WITH RESULTDISTRIBUTION MONTECARLO(20)
DOMAIN x >= QUANTILE(0.9)`, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != ExecGroupedTail || len(res.GroupedTail.Groups) != 2 {
		t.Fatalf("kind=%v", res.Kind)
	}
	for _, g := range []string{"a", "b"} {
		single, err := e.ExecWithOptions(fmt.Sprintf(`SELECT SUM(l.val) AS x FROM losses l, grp grp
WHERE l.cid = grp.cid AND grp.g = '%s'
WITH RESULTDISTRIBUTION MONTECARLO(20)
DOMAIN x >= QUANTILE(0.9)`, g), opts)
		if err != nil {
			t.Fatalf("group %s: %v", g, err)
		}
		gt := res.GroupTails[g]
		if gt == nil {
			t.Fatalf("group %s missing", g)
		}
		if gt.QuantileEstimate != single.Tail.QuantileEstimate {
			t.Fatalf("group %s quantile %v vs %v", g, gt.QuantileEstimate, single.Tail.QuantileEstimate)
		}
		for i := range single.Tail.Samples {
			if gt.Samples[i] != single.Tail.Samples[i] {
				t.Fatalf("group %s tail sample %d: %v vs %v", g, i, gt.Samples[i], single.Tail.Samples[i])
			}
		}
	}
}

// TestMultiAggregateSelectList: SELECT SUM(x), AVG(x), COUNT(*) works
// end-to-end through SQL, and the per-run identities SUM = AVG*COUNT
// hold sample by sample — all three aggregates are evaluated in the same
// Monte Carlo world.
func TestMultiAggregateSelectList(t *testing.T) {
	e := lossEngine(t, 8, 31)
	res, err := e.Exec(`SELECT SUM(val) AS s, AVG(val) AS a, COUNT(*) AS c FROM losses
WITH RESULTDISTRIBUTION MONTECARLO(100)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != ExecGroupedDistribution {
		t.Fatalf("kind = %v", res.Kind)
	}
	g := res.Grouped
	if len(g.GroupCols) != 0 || len(g.Groups) != 1 || len(g.AggCols) != 3 {
		t.Fatalf("grouped shape: cols=%v aggs=%v groups=%d", g.GroupCols, g.AggCols, len(g.Groups))
	}
	if g.AggCols[0] != "s" || g.AggCols[1] != "a" || g.AggCols[2] != "c" {
		t.Fatalf("agg cols = %v", g.AggCols)
	}
	sum, avg, count := g.Groups[0].Dists[0], g.Groups[0].Dists[1], g.Groups[0].Dists[2]
	for i := range sum.Samples {
		if count.Samples[i] != 8 {
			t.Fatalf("rep %d: count = %g", i, count.Samples[i])
		}
		if diff := sum.Samples[i] - avg.Samples[i]*count.Samples[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("rep %d: SUM %g != AVG*COUNT %g", i, sum.Samples[i], avg.Samples[i]*count.Samples[i])
		}
	}
	// The single-aggregate slice of a multi-aggregate run is bit-identical
	// to running that aggregate alone (same seeds, same worlds).
	alone, err := e.Exec(`SELECT SUM(val) AS s FROM losses WITH RESULTDISTRIBUTION MONTECARLO(100)`)
	if err != nil {
		t.Fatal(err)
	}
	for i := range alone.Dist.Samples {
		if sum.Samples[i] != alone.Dist.Samples[i] {
			t.Fatalf("rep %d: multi-agg SUM %v vs single-agg %v", i, sum.Samples[i], alone.Dist.Samples[i])
		}
	}
	// Multi-aggregate GROUP BY, through the fluent API.
	gd, err := e.Query().From("losses", "l").
		SelectSumAs(expr.C("l.val"), "s").
		SelectCountAs("c").
		GroupBy(expr.C("l.cid")).
		MonteCarloGrouped(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(gd.Groups) != 8 || len(gd.AggCols) != 2 {
		t.Fatalf("groups=%d aggs=%v", len(gd.Groups), gd.AggCols)
	}
	// MonteCarlo on a multi-aggregate or grouped builder is a descriptive
	// error pointing at MonteCarloGrouped.
	_, err = e.Query().From("losses", "l").SelectSum(expr.C("l.val")).
		GroupBy(expr.C("l.cid")).MonteCarlo(10)
	if err == nil || !strings.Contains(err.Error(), "MonteCarloGrouped") {
		t.Fatalf("grouped MonteCarlo: err = %v", err)
	}
}

// TestHavingPerRunSemantics: HAVING is evaluated per group per Monte
// Carlo run over the aggregation output; a group's distribution keeps
// only the runs in which the predicate held, Inclusion records the kept
// fraction, and groups that never qualify are dropped.
func TestHavingPerRunSemantics(t *testing.T) {
	e := lossEngine(t, 6, 41)
	// Per-customer SUM(val) ~ N(m, 1) with m in [2, 8]; a cutoff near the
	// middle keeps some runs of mid groups, all runs of high-mean groups,
	// and (for extreme cutoffs) drops low groups entirely.
	res, err := e.Exec(`SELECT SUM(val) AS x FROM losses GROUP BY cid HAVING x > 5
WITH RESULTDISTRIBUTION MONTECARLO(300)`)
	if err != nil {
		t.Fatal(err)
	}
	g := res.Grouped
	if len(g.Groups) == 0 || len(g.Groups) > 6 {
		t.Fatalf("groups = %d", len(g.Groups))
	}
	for _, grp := range g.Groups {
		if grp.Inclusion <= 0 || grp.Inclusion > 1 {
			t.Fatalf("group %s inclusion = %g", grp.KeyString(), grp.Inclusion)
		}
		d := grp.Dists[0]
		if len(d.Samples) == 0 {
			t.Fatalf("group %s kept no samples", grp.KeyString())
		}
		wantN := int(grp.Inclusion*300 + 0.5)
		if len(d.Samples) != wantN {
			t.Fatalf("group %s: %d samples vs inclusion %g", grp.KeyString(), len(d.Samples), grp.Inclusion)
		}
		for _, s := range d.Samples {
			if s <= 5 {
				t.Fatalf("group %s kept sample %g <= 5 despite HAVING x > 5", grp.KeyString(), s)
			}
		}
	}
	// HAVING with DOMAIN tail sampling is a descriptive error.
	_, err = e.ExecWithOptions(`SELECT SUM(val) AS x FROM losses GROUP BY cid HAVING x > 5
WITH RESULTDISTRIBUTION MONTECARLO(10) DOMAIN x >= QUANTILE(0.9)`, TailSampleOptions{TotalSamples: 100})
	if err == nil || !strings.Contains(err.Error(), "HAVING is not supported with DOMAIN") {
		t.Fatalf("HAVING+DOMAIN: err = %v", err)
	}
	// HAVING referencing an unknown name errors descriptively.
	_, err = e.Exec(`SELECT SUM(val) AS x FROM losses GROUP BY cid HAVING nope > 5
WITH RESULTDISTRIBUTION MONTECARLO(10)`)
	if err == nil || !strings.Contains(err.Error(), "HAVING") {
		t.Fatalf("bad HAVING column: err = %v", err)
	}
}

// TestScalarGroupByAndMultiAggregate: the deterministic (non-WITH) path
// supports multi-item select lists, GROUP BY, and HAVING, producing an
// ExecTable relation.
func TestScalarGroupByAndMultiAggregate(t *testing.T) {
	e := New()
	tb := storage.NewTable("sales", types.NewSchema(
		types.Column{Name: "region", Kind: types.KindString},
		types.Column{Name: "amt", Kind: types.KindFloat},
	))
	for i, row := range []struct {
		r string
		a float64
	}{{"east", 10}, {"east", 20}, {"west", 5}, {"west", 7}, {"north", 100}} {
		_ = i
		tb.MustAppend(types.Row{types.NewString(row.r), types.NewFloat(row.a)})
	}
	e.RegisterTable(tb)
	res, err := e.Exec(`SELECT SUM(amt) AS total, COUNT(*) AS n, MAX(amt) AS biggest FROM sales GROUP BY region HAVING total > 20`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != ExecTable {
		t.Fatalf("kind = %v", res.Kind)
	}
	rows := res.Table.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	// Sorted by key: east before north... string compare: east < north.
	if rows[0][0].Str() != "east" || rows[0][1].Float() != 30 || rows[0][2].Float() != 2 || rows[0][3].Float() != 20 {
		t.Fatalf("east row = %v", rows[0])
	}
	if rows[1][0].Str() != "north" || rows[1][1].Float() != 100 {
		t.Fatalf("north row = %v", rows[1])
	}
	// Ungrouped multi-aggregate: one-row table.
	res, err = e.Exec(`SELECT MIN(amt), MAX(amt) FROM sales`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != ExecTable || len(res.Table.Rows()) != 1 {
		t.Fatalf("res = %+v", res)
	}
	if r := res.Table.Rows()[0]; r[0].Float() != 5 || r[1].Float() != 100 {
		t.Fatalf("min/max row = %v", r)
	}
	// Single ungrouped aggregate keeps the scalar fast path.
	res, err = e.Exec(`SELECT SUM(amt) FROM sales`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != ExecScalar || res.Scalar != 142 {
		t.Fatalf("scalar = %+v", res)
	}
}

// TestGroupedErrorsAreDescriptive: the plan-time and exec-time guards of
// the grouped pipeline name the offending construct.
func TestGroupedErrorsAreDescriptive(t *testing.T) {
	e := lossEngine(t, 4, 51)
	cases := []struct {
		sql, want string
	}{
		{`SELECT SUM(val) AS x FROM losses GROUP BY val WITH RESULTDISTRIBUTION MONTECARLO(5)`,
			"must be deterministic"},
		{`SELECT SUM(val) AS x, AVG(val) FROM losses WITH RESULTDISTRIBUTION MONTECARLO(5) DOMAIN x >= QUANTILE(0.9)`,
			"single aggregate"},
		{`SELECT SUM(val) AS x, AVG(val) FROM losses WITH RESULTDISTRIBUTION MONTECARLO(5) FREQUENCYTABLE x`,
			"FREQUENCYTABLE"},
	}
	for _, c := range cases {
		_, err := e.ExecWithOptions(c.sql, TailSampleOptions{TotalSamples: 100})
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s:\n  err = %v, want substring %q", c.sql, err, c.want)
		}
	}
}

// TestDistributionCVaR: CVaR is the conditional mean beyond the
// q-quantile and exceeds both the quantile and the mean for an upper
// tail.
func TestDistributionCVaR(t *testing.T) {
	d := newDistribution([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	q90 := d.Quantile(0.9)
	cvar := d.CVaR(0.9)
	want := (9.0 + 10.0) / 2
	if q90 != 9 || cvar != want {
		t.Fatalf("q90=%g cvar=%g want %g", q90, cvar, want)
	}
	if lo := d.CVaRLower(0.2); lo != 1.5 {
		t.Fatalf("cvar lower = %g", lo)
	}
	// On a tail result, ExpectedShortfall is the sample mean (threshold
	// -Inf): identical to the FTABLE-weighted expected value.
	e := lossEngine(t, 6, 61)
	res, err := e.ExecWithOptions(`SELECT SUM(val) AS x FROM losses
WITH RESULTDISTRIBUTION MONTECARLO(40) DOMAIN x >= QUANTILE(0.9)`, TailSampleOptions{TotalSamples: 150})
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.Tail.ExpectedShortfall - res.Tail.ExpectedValue(); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("ES %g vs FTABLE mean %g", res.Tail.ExpectedShortfall, res.Tail.ExpectedValue())
	}
}

// TestPrepareRejectsNeverRunnableStatements: statements that compile but
// can never execute fail at Prepare, not on first Run (they must not
// pollute the plan cache).
func TestPrepareRejectsNeverRunnableStatements(t *testing.T) {
	e := lossEngine(t, 4, 71)
	bad := []struct{ sql, want string }{
		{`SELECT SUM(val) AS a, AVG(val) FROM losses WITH RESULTDISTRIBUTION MONTECARLO(10) DOMAIN a >= QUANTILE(0.9)`,
			"single aggregate"},
		{`SELECT SUM(val) AS x FROM losses GROUP BY cid WITH RESULTDISTRIBUTION MONTECARLO(10) FREQUENCYTABLE x`,
			"FREQUENCYTABLE"},
		{`SELECT SUM(val) AS x FROM losses GROUP BY cid HAVING x > 1 WITH RESULTDISTRIBUTION MONTECARLO(10) DOMAIN x >= QUANTILE(0.9)`,
			"HAVING is not supported with DOMAIN"},
		{`SELECT SUM(val) AS a FROM losses WITH RESULTDISTRIBUTION MONTECARLO(10) DOMAIN b >= QUANTILE(0.9)`,
			"DOMAIN references"},
	}
	for _, c := range bad {
		if _, err := e.Prepare(c.sql); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Prepare(%s):\n  err = %v, want substring %q", c.sql, err, c.want)
		}
	}
	if _, _, size := e.PlanCacheStats(); size != 0 {
		t.Fatalf("rejected statements left %d plan-cache entries", size)
	}
}

// TestAggregateOutputNameCollisions: duplicate output names are suffixed
// until genuinely unique, even when a user alias occupies the suffixed
// form.
func TestAggregateOutputNameCollisions(t *testing.T) {
	e := lossEngine(t, 4, 81)
	res, err := e.Exec(`SELECT SUM(val) AS x_2, SUM(val) AS x, AVG(val) AS x FROM losses
WITH RESULTDISTRIBUTION MONTECARLO(10)`)
	if err != nil {
		t.Fatal(err)
	}
	cols := res.Grouped.AggCols
	if len(cols) != 3 {
		t.Fatalf("cols = %v", cols)
	}
	seen := map[string]bool{}
	for _, c := range cols {
		if seen[strings.ToLower(c)] {
			t.Fatalf("duplicate output column %q in %v", c, cols)
		}
		seen[strings.ToLower(c)] = true
	}
}
