package mcdbr

import (
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
)

// paperEngine sets up the full §2 flow via SQL: means table + CREATE TABLE
// Losses.
func paperEngine(t *testing.T, nCustomers int, seed uint64) *Engine {
	t.Helper()
	e := New(WithSeed(seed), WithWindow(2048))
	e.RegisterTable(workload.LossMeans(nCustomers, 2, 8, 13))
	res, err := e.Exec(`
CREATE TABLE Losses (CID, val) AS
FOR EACH CID IN means
WITH myVal AS Normal(VALUES(m, 1.0))
SELECT CID, myVal.* FROM myVal`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != ExecCreated {
		t.Fatalf("kind = %v", res.Kind)
	}
	return e
}

func TestExecPaperSection2Flow(t *testing.T) {
	e := paperEngine(t, 15, 21)
	mu := 0.0
	tbl, _ := e.Table("means")
	for _, r := range tbl.Rows() {
		mu += r[1].Float()
	}
	sigma := math.Sqrt(15)

	// The paper's tail query (smaller MC count for test speed).
	res, err := e.ExecWithOptions(`
SELECT SUM(val) AS totalLoss
FROM Losses
WITH RESULTDISTRIBUTION MONTECARLO(100)
DOMAIN totalLoss >= QUANTILE(0.99)
FREQUENCYTABLE totalLoss`, TailSampleOptions{TotalSamples: 400})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != ExecTail || res.Tail == nil {
		t.Fatalf("kind = %v", res.Kind)
	}
	want := stats.NormalQuantile(0.99, mu, sigma)
	if math.Abs(res.Tail.QuantileEstimate-want) > 3 {
		t.Fatalf("quantile = %g, want ≈ %g", res.Tail.QuantileEstimate, want)
	}

	// Follow-up: SELECT MIN(totalLoss) FROM FTABLE estimates the
	// tail boundary.
	minRes, err := e.Exec(`SELECT MIN(totalLoss) FROM FTABLE`)
	if err != nil {
		t.Fatal(err)
	}
	if minRes.Kind != ExecScalar {
		t.Fatalf("kind = %v", minRes.Kind)
	}
	if math.Abs(minRes.Scalar-res.Tail.Min()) > 1e-9 {
		t.Fatalf("MIN(FTABLE) = %g vs %g", minRes.Scalar, res.Tail.Min())
	}

	// Follow-up: expected shortfall via SUM(totalLoss * FRAC).
	esRes, err := e.Exec(`SELECT SUM(totalLoss * frac) FROM FTABLE`)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(esRes.Scalar-res.Tail.ExpectedShortfall) > 1e-6 {
		t.Fatalf("SUM(totalLoss*FRAC) = %g vs ES %g", esRes.Scalar, res.Tail.ExpectedShortfall)
	}
}

func TestExecMonteCarloWithoutDomain(t *testing.T) {
	e := paperEngine(t, 10, 22)
	res, err := e.Exec(`
SELECT SUM(val) AS totalLoss FROM Losses
WITH RESULTDISTRIBUTION MONTECARLO(500)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != ExecDistribution || len(res.Dist.Samples) != 500 {
		t.Fatalf("res = %+v", res)
	}
}

func TestExecWherePredicate(t *testing.T) {
	e := paperEngine(t, 20, 23)
	res, err := e.Exec(`
SELECT SUM(val) AS x FROM Losses
WHERE CID < 10010
WITH RESULTDISTRIBUTION MONTECARLO(400)`)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := e.Table("means")
	mu := 0.0
	for _, r := range tbl.Rows() {
		if r[0].Int() < 10010 {
			mu += r[1].Float()
		}
	}
	if math.Abs(res.Dist.Mean()-mu) > 0.6 {
		t.Fatalf("mean = %g, want %g", res.Dist.Mean(), mu)
	}
}

func TestExecLowerDomain(t *testing.T) {
	e := paperEngine(t, 10, 24)
	res, err := e.ExecWithOptions(`
SELECT SUM(val) AS x FROM Losses
WITH RESULTDISTRIBUTION MONTECARLO(40)
DOMAIN x <= QUANTILE(0.05)`, TailSampleOptions{TotalSamples: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != ExecTail || !res.Tail.Lower {
		t.Fatalf("res = %+v", res)
	}
	for _, s := range res.Tail.Samples {
		if s > res.Tail.QuantileEstimate {
			t.Fatalf("lower-tail sample above quantile")
		}
	}
}

func TestExecScalarAggregates(t *testing.T) {
	e := New()
	e.RegisterTable(workload.LossMeans(4, 2, 8, 3)) // means(cid, m)
	cases := map[string]string{
		"count": `SELECT COUNT(*) FROM means`,
		"sum":   `SELECT SUM(m) FROM means`,
		"avg":   `SELECT AVG(m) FROM means`,
		"min":   `SELECT MIN(m) FROM means`,
		"max":   `SELECT MAX(m) FROM means`,
	}
	vals := map[string]float64{}
	for name, sql := range cases {
		res, err := e.Exec(sql)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		vals[name] = res.Scalar
	}
	if vals["count"] != 4 {
		t.Fatalf("count = %g", vals["count"])
	}
	if math.Abs(vals["avg"]-vals["sum"]/4) > 1e-12 {
		t.Fatalf("avg inconsistent with sum")
	}
	if vals["min"] > vals["avg"] || vals["max"] < vals["avg"] {
		t.Fatalf("min/avg/max ordering violated: %v", vals)
	}
	// WHERE on scalar query.
	res, err := e.Exec(`SELECT COUNT(*) FROM means WHERE cid >= 10002`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar != 2 {
		t.Fatalf("filtered count = %g", res.Scalar)
	}
}

func TestExecErrors(t *testing.T) {
	e := paperEngine(t, 5, 25)
	bad := []string{
		`SELECT SUM(val) FROM Losses`,                                       // random table without WITH
		`SELECT MIN(val) FROM Losses WITH RESULTDISTRIBUTION MONTECARLO(5)`, // MIN not MC-able
		`SELECT SUM(x) FROM nope WITH RESULTDISTRIBUTION MONTECARLO(5)`,
		`SELECT SUM(m) FROM means, means WITH RESULTDISTRIBUTION MONTECARLO(5)`, // dup alias
		`SELECT SUM(val) AS a FROM Losses WITH RESULTDISTRIBUTION MONTECARLO(5) DOMAIN b >= QUANTILE(0.9)`,
		`CREATE TABLE l2 (a, b) AS FOR EACH x IN means WITH v AS NoSuchVG(VALUES(1)) SELECT a, v.*`,
		`CREATE TABLE l2 (a) AS FOR EACH x IN means WITH v AS Normal(VALUES(m, 1)) SELECT other.* FROM v`,
	}
	for _, sql := range bad {
		if _, err := e.Exec(sql); err == nil {
			t.Errorf("expected error for %q", sql)
		}
	}
}

// TestExecCreateValueNOutOfRange: a myVal.valueN select item referencing
// a VG output the function does not produce must be a descriptive error,
// not a silent fallback to output 0.
func TestExecCreateValueNOutOfRange(t *testing.T) {
	e := New()
	e.RegisterTable(workload.LossMeans(5, 2, 8, 3))
	// Normal has exactly one output; value3 is out of range.
	_, err := e.Exec(`
CREATE TABLE bad (CID, val) AS
FOR EACH CID IN means
WITH myVal AS Normal(VALUES(m, 1.0))
SELECT CID, myVal.value3 FROM myVal`)
	if err == nil {
		t.Fatal("out-of-range valueN must error")
	}
	if !strings.Contains(err.Error(), "output 3") || !strings.Contains(err.Error(), "1 output") {
		t.Fatalf("error must name the bad output and the VG arity, got: %v", err)
	}
	// value0 is below range (outputs are 1-based).
	if _, err := e.Exec(`
CREATE TABLE bad (CID, val) AS
FOR EACH CID IN means
WITH myVal AS Normal(VALUES(m, 1.0))
SELECT CID, myVal.value0 FROM myVal`); err == nil {
		t.Fatal("valueN below range must error")
	}
	// A typo'd VG-alias reference must error, not silently bind output 0.
	if _, err := e.Exec(`
CREATE TABLE bad (CID, val) AS
FOR EACH CID IN means
WITH myVal AS Normal(VALUES(m, 1.0))
SELECT CID, myVal.vaule1 FROM myVal`); err == nil {
		t.Fatal("unknown VG output reference must error")
	}
	// Trailing garbage after valueN must error too.
	if _, err := e.Exec(`
CREATE TABLE bad (CID, val) AS
FOR EACH CID IN means
WITH myVal AS Normal(VALUES(m, 1.0))
SELECT CID, myVal.value1x FROM myVal`); err == nil {
		t.Fatal("malformed valueN must error")
	}
	// In-range valueN still works: MultiNormal2 has two outputs.
	if _, err := e.Exec(`
CREATE TABLE ok (CID, y) AS
FOR EACH CID IN means
WITH v AS MultiNormal2(VALUES(1, 2, 1, 1, 0.5))
SELECT CID, v.value2 FROM v`); err != nil {
		t.Fatalf("in-range valueN must work: %v", err)
	}
	rt, ok := e.RandomTableDef("ok")
	if !ok || rt.Columns[1].VGOut != 1 {
		t.Fatalf("value2 must map to VG output index 1, got %+v", rt)
	}
}

func TestExecCreateDefinitionVisible(t *testing.T) {
	e := paperEngine(t, 5, 26)
	rt, ok := e.RandomTableDef("losses")
	if !ok {
		t.Fatal("definition missing")
	}
	if rt.ParamTable != "means" || rt.VG != "Normal" || len(rt.Columns) != 2 {
		t.Fatalf("rt = %+v", rt)
	}
	if rt.Columns[0].FromParam == "" || rt.Columns[1].FromParam != "" {
		t.Fatalf("columns = %+v", rt.Columns)
	}
}

func TestExecGroupBy(t *testing.T) {
	e := paperEngine(t, 8, 27)
	// Group customers by parity via a registered dept table... simplest:
	// group by the parameter-derived cid itself is too fine; use a region
	// table joined in.
	res, err := e.ExecWithOptions(`
SELECT SUM(val) AS x FROM Losses
GROUP BY CID
WITH RESULTDISTRIBUTION MONTECARLO(20)
DOMAIN x >= QUANTILE(0.9)`, TailSampleOptions{TotalSamples: 150})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != ExecGroupedTail || len(res.GroupTails) != 8 {
		t.Fatalf("kind=%v groups=%d", res.Kind, len(res.GroupTails))
	}
	for g, tr := range res.GroupTails {
		if len(tr.Samples) != 20 {
			t.Fatalf("group %s samples = %d", g, len(tr.Samples))
		}
		// Each group is a single N(m,1) customer; quantile ≈ m + 1.28.
		if tr.QuantileEstimate < 2 || tr.QuantileEstimate > 11 {
			t.Fatalf("group %s quantile = %g", g, tr.QuantileEstimate)
		}
	}

	// GROUP BY without DOMAIN: one distribution per group.
	res, err = e.Exec(`
SELECT SUM(val) AS x FROM Losses
GROUP BY CID
WITH RESULTDISTRIBUTION MONTECARLO(200)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != ExecGroupedDistribution || len(res.GroupDists) != 8 {
		t.Fatalf("kind=%v groups=%d", res.Kind, len(res.GroupDists))
	}
}

func TestExecGroupByErrors(t *testing.T) {
	e := paperEngine(t, 4, 28)
	bad := []string{
		`SELECT SUM(val) AS x FROM Losses GROUP BY val WITH RESULTDISTRIBUTION MONTECARLO(5)`,    // VG column
		`SELECT SUM(val) AS x FROM Losses GROUP BY nope WITH RESULTDISTRIBUTION MONTECARLO(5)`,   // unknown col
		`SELECT SUM(val) AS x FROM Losses GROUP BY zz.cid WITH RESULTDISTRIBUTION MONTECARLO(5)`, // unknown alias
	}
	for _, sql := range bad {
		if _, err := e.ExecWithOptions(sql, TailSampleOptions{TotalSamples: 100}); err == nil {
			t.Errorf("expected error for %q", sql)
		}
	}
}
