package mcdbr

import (
	"math"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/workload"
)

// lossEngine builds the §2 example: means(cid, m) and the random table
// losses(cid, val) with val ~ Normal(m, 1).
func lossEngine(t testing.TB, nCustomers int, seed uint64) *Engine {
	t.Helper()
	e := New(WithSeed(seed), WithWindow(2048))
	e.RegisterTable(workload.LossMeans(nCustomers, 2, 8, 11))
	err := e.DefineRandomTable(RandomTable{
		Name:       "losses",
		ParamTable: "means",
		VG:         "Normal",
		VGParams:   []expr.Expr{expr.C("m"), expr.F(1.0)},
		Columns: []RandomCol{
			{Name: "cid", FromParam: "cid"},
			{Name: "val", VGOut: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// analyticLoss returns mean/variance of SUM(val) over all customers.
func analyticLoss(e *Engine) (mu, sigma2 float64) {
	t, _ := e.Table("means")
	for _, r := range t.Rows() {
		mu += r[1].Float()
		sigma2 += 1
	}
	return mu, sigma2
}

func TestDefineRandomTableValidation(t *testing.T) {
	e := New()
	e.RegisterTable(workload.LossMeans(5, 2, 8, 1))
	cases := []RandomTable{
		{}, // no name
		{Name: "x", ParamTable: "nope", VG: "Normal"},                                                 // missing param
		{Name: "x", ParamTable: "means", VG: "NoVG"},                                                  // missing VG
		{Name: "x", ParamTable: "means", VG: "Normal"},                                                // wrong arity
		{Name: "x", ParamTable: "means", VG: "Normal", VGParams: []expr.Expr{expr.C("m"), expr.F(1)}}, // no cols
		{Name: "x", ParamTable: "means", VG: "Normal", VGParams: []expr.Expr{expr.C("m"), expr.F(1)},
			Columns: []RandomCol{{Name: "a", FromParam: "zzz"}}}, // bad param col
		{Name: "x", ParamTable: "means", VG: "Normal", VGParams: []expr.Expr{expr.C("m"), expr.F(1)},
			Columns: []RandomCol{{Name: "a", VGOut: 5}}}, // bad VG out
		{Name: "x", ParamTable: "means", VG: "Normal", VGParams: []expr.Expr{expr.C("m"), expr.F(1)},
			Columns: []RandomCol{{Name: "a", FromParam: "cid"}}}, // no VG output exposed
	}
	for i, rt := range cases {
		if err := e.DefineRandomTable(rt); err == nil {
			t.Errorf("case %d should fail: %+v", i, rt)
		}
	}
}

func TestMonteCarloDistribution(t *testing.T) {
	e := lossEngine(t, 20, 1)
	mu, sigma2 := analyticLoss(e)
	d, err := e.Query().From("losses", "").SelectSum(expr.C("val")).MonteCarlo(3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Samples) != 3000 {
		t.Fatalf("samples = %d", len(d.Samples))
	}
	if math.Abs(d.Mean()-mu) > 4*math.Sqrt(sigma2/3000) {
		t.Fatalf("mean = %g, want %g", d.Mean(), mu)
	}
	if math.Abs(d.Std()-math.Sqrt(sigma2)) > 0.4 {
		t.Fatalf("std = %g, want %g", d.Std(), math.Sqrt(sigma2))
	}
	// FTable sums to 1 and its expected value matches the mean.
	if math.Abs(d.ExpectedValue()-d.Mean()) > 1e-9 {
		t.Fatalf("FTable mean %g vs sample mean %g", d.ExpectedValue(), d.Mean())
	}
}

func TestMonteCarloWithPredicate(t *testing.T) {
	e := lossEngine(t, 30, 2)
	// Only customers with cid < 10015 (the paper's WHERE CID < 10010 shape).
	d, err := e.Query().From("losses", "").
		Where(expr.B(expr.OpLt, expr.C("cid"), expr.I(10015))).
		SelectSum(expr.C("val")).
		MonteCarlo(2000)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := e.Table("means")
	mu := 0.0
	for _, r := range tbl.Rows() {
		if r[0].Int() < 10015 {
			mu += r[1].Float()
		}
	}
	if math.Abs(d.Mean()-mu) > 0.5 {
		t.Fatalf("mean = %g, want %g", d.Mean(), mu)
	}
}

func TestTailSampleUpperMatchesAnalytic(t *testing.T) {
	e := lossEngine(t, 25, 3)
	mu, sigma2 := analyticLoss(e)
	res, err := e.Query().From("losses", "").SelectSum(expr.C("val")).
		TailSample(0.01, 100, TailSampleOptions{TotalSamples: 400})
	if err != nil {
		t.Fatal(err)
	}
	want := stats.NormalQuantile(0.99, mu, math.Sqrt(sigma2))
	if math.Abs(res.QuantileEstimate-want) > 2.5 {
		t.Fatalf("quantile = %g, want ≈ %g", res.QuantileEstimate, want)
	}
	if len(res.Samples) != 100 {
		t.Fatalf("tail samples = %d", len(res.Samples))
	}
	if res.Min() < res.QuantileEstimate {
		t.Fatalf("min tail sample %g below quantile %g", res.Min(), res.QuantileEstimate)
	}
	// Expected shortfall exceeds the quantile and tracks the analytic value.
	wantES := stats.NormalExpectedShortfall(0.01, mu, math.Sqrt(sigma2))
	if res.ExpectedShortfall <= res.QuantileEstimate {
		t.Fatal("ES must exceed VaR")
	}
	if math.Abs(res.ExpectedShortfall-wantES) > 3 {
		t.Fatalf("ES = %g, want ≈ %g", res.ExpectedShortfall, wantES)
	}
}

func TestTailSampleLower(t *testing.T) {
	e := lossEngine(t, 25, 4)
	mu, sigma2 := analyticLoss(e)
	res, err := e.Query().From("losses", "").SelectSum(expr.C("val")).
		TailSample(0.01, 50, TailSampleOptions{TotalSamples: 400, Lower: true})
	if err != nil {
		t.Fatal(err)
	}
	want := stats.NormalQuantile(0.01, mu, math.Sqrt(sigma2))
	if math.Abs(res.QuantileEstimate-want) > 2.5 {
		t.Fatalf("lower quantile = %g, want ≈ %g", res.QuantileEstimate, want)
	}
	for _, s := range res.Samples {
		if s > res.QuantileEstimate {
			t.Fatalf("lower-tail sample %g above quantile", s)
		}
	}
}

func TestJoinQueryWithRandomTable(t *testing.T) {
	// losses ⋈ dept on cid: each customer weighted by dept membership.
	e := lossEngine(t, 10, 5)
	dept := storage.NewTable("dept", types.NewSchema(
		types.Column{Name: "cid", Kind: types.KindInt},
		types.Column{Name: "w", Kind: types.KindFloat},
	))
	tbl, _ := e.Table("means")
	mu := 0.0
	n := 0
	for i, r := range tbl.Rows() {
		if i%2 == 0 {
			dept.MustAppend(types.Row{r[0], types.NewFloat(1)})
			mu += r[1].Float()
			n++
		}
	}
	e.RegisterTable(dept)
	d, err := e.Query().
		From("losses", "l").
		From("dept", "d").
		Where(expr.B(expr.OpEq, expr.C("l.cid"), expr.C("d.cid"))).
		SelectSum(expr.C("l.val")).
		MonteCarlo(2000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Mean()-mu) > 4*math.Sqrt(float64(n)/2000)+0.2 {
		t.Fatalf("join mean = %g, want %g", d.Mean(), mu)
	}
}

func TestSalaryInversionSelfJoin(t *testing.T) {
	// The paper's Fig. 2 query: total salary inversion via a self-join on
	// the random emp table, with the cross-seed predicate sal2 > sal1
	// pulled into the looper.
	e := New(WithSeed(6), WithWindow(2048))
	sup, em := workload.SalaryDB()
	e.RegisterTable(sup)
	e.RegisterTable(em)
	if err := e.DefineRandomTable(RandomTable{
		Name:       "emp",
		ParamTable: "empmeans",
		VG:         "Normal",
		VGParams:   []expr.Expr{expr.C("msal"), expr.F(4e6)}, // sd 2000
		Columns: []RandomCol{
			{Name: "eid", FromParam: "eid"},
			{Name: "sal", VGOut: 0},
		},
	}); err != nil {
		t.Fatal(err)
	}
	q := e.Query().
		From("emp", "emp1").
		From("emp", "emp2").
		From("sup", "sup").
		Where(expr.B(expr.OpEq, expr.C("sup.boss"), expr.C("emp1.eid"))).
		Where(expr.B(expr.OpEq, expr.C("sup.peon"), expr.C("emp2.eid"))).
		Where(expr.B(expr.OpLt, expr.C("emp1.sal"), expr.F(90000))).
		Where(expr.B(expr.OpGt, expr.C("emp2.sal"), expr.F(25000))).
		Where(expr.B(expr.OpGt, expr.C("emp2.sal"), expr.C("emp1.sal"))).
		SelectSum(expr.B(expr.OpSub, expr.C("emp2.sal"), expr.C("emp1.sal")))
	d, err := q.MonteCarlo(1500)
	if err != nil {
		t.Fatal(err)
	}
	// Most repetitions have no inversion (bosses earn much more), so the
	// distribution has an atom at 0 and a positive tail.
	if d.Mean() < 0 {
		t.Fatalf("mean inversion = %g", d.Mean())
	}
	zeroFrac := 0.0
	for _, s := range d.Samples {
		if s == 0 {
			zeroFrac++
		}
	}
	zeroFrac /= float64(len(d.Samples))
	if zeroFrac < 0.2 {
		t.Fatalf("expected a large zero atom, got %g", zeroFrac)
	}
	// Tail sampling must walk into the inversion tail.
	res, err := q.TailSample(0.02, 40, TailSampleOptions{TotalSamples: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.QuantileEstimate <= 0 {
		t.Fatalf("tail quantile = %g, want > 0", res.QuantileEstimate)
	}
	for _, s := range res.Samples {
		if s < res.QuantileEstimate {
			t.Fatalf("tail sample %g below quantile", s)
		}
	}
}

func TestGroupedTailSample(t *testing.T) {
	e := lossEngine(t, 8, 7)
	// Group customers into two halves via a dept table.
	dept := storage.NewTable("grp", types.NewSchema(
		types.Column{Name: "cid", Kind: types.KindInt},
		types.Column{Name: "g", Kind: types.KindString},
	))
	tbl, _ := e.Table("means")
	for i, r := range tbl.Rows() {
		g := "a"
		if i >= 4 {
			g = "b"
		}
		dept.MustAppend(types.Row{r[0], types.NewString(g)})
	}
	e.RegisterTable(dept)
	q := e.Query().
		From("losses", "l").
		From("grp", "grp").
		Where(expr.B(expr.OpEq, expr.C("l.cid"), expr.C("grp.cid"))).
		SelectSum(expr.C("l.val")).
		GroupBy(expr.C("grp.g"))
	out, err := q.TailSampleGrouped(0.05, 20, TailSampleOptions{TotalSamples: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Groups) != 2 {
		t.Fatalf("groups = %d", len(out.Groups))
	}
	for g, res := range out.TailMap() {
		if len(res.Samples) != 20 {
			t.Fatalf("group %s samples = %d", g, len(res.Samples))
		}
	}
}

func TestQueryValidationErrors(t *testing.T) {
	e := lossEngine(t, 5, 8)
	if _, err := e.Query().SelectSum(expr.C("x")).MonteCarlo(10); err == nil {
		t.Fatal("no FROM must error")
	}
	if _, err := e.Query().From("losses", "").MonteCarlo(10); err == nil {
		t.Fatal("no aggregate must error")
	}
	if _, err := e.Query().From("losses", "a").From("means", "a").SelectCount().MonteCarlo(10); err == nil {
		t.Fatal("duplicate alias must error")
	}
	if _, err := e.Query().From("nope", "").SelectCount().MonteCarlo(10); err == nil {
		t.Fatal("unknown table must error")
	}
	// cid exists in both losses and means: ambiguous, and the error must
	// name the candidate aliases.
	_, err := e.Query().From("losses", "l").From("means", "m").
		Where(expr.B(expr.OpGt, expr.C("cid"), expr.F(0))).
		SelectCount().MonteCarlo(10)
	if err == nil {
		t.Fatal("ambiguous unqualified column must error")
	}
	if !strings.Contains(err.Error(), "l.cid") || !strings.Contains(err.Error(), "m.cid") {
		t.Fatalf("ambiguity error must name candidates, got: %v", err)
	}
	// val exists only in losses: unqualified reference resolves to l.val.
	if _, err := e.Query().From("losses", "l").From("means", "m").
		Where(expr.B(expr.OpEq, expr.C("l.cid"), expr.C("m.cid"))).
		Where(expr.B(expr.OpGt, expr.C("val"), expr.F(-1e12))).
		SelectCount().MonteCarlo(10); err != nil {
		t.Fatalf("unambiguous unqualified column must resolve: %v", err)
	}
}

func TestHistogram(t *testing.T) {
	d := newDistribution([]float64{1, 2, 2, 3, 9})
	edges, counts := d.Histogram(4)
	if len(edges) != 5 || len(counts) != 4 {
		t.Fatalf("histogram shape: %v %v", edges, counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 5 {
		t.Fatalf("histogram total = %d", total)
	}
	if _, c := d.Histogram(0); c != nil {
		t.Fatal("0 bins must be nil")
	}
}

func TestFTableRelation(t *testing.T) {
	d := newDistribution([]float64{5, 5, 7})
	tbl := d.FTableRelation("ftable")
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	if tbl.Row(0)[0].Float() != 5 || math.Abs(tbl.Row(0)[1].Float()-2.0/3) > 1e-12 {
		t.Fatalf("row = %v", tbl.Row(0))
	}
}
