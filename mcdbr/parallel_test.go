package mcdbr_test

import (
	"runtime"
	"testing"

	"repro/internal/expr"
	"repro/internal/workload"
	"repro/mcdbr"
)

// lossEngine builds the §2 loss workload with the given worker count.
func lossEngine(t *testing.T, workers int) *mcdbr.Engine {
	t.Helper()
	e := mcdbr.New(mcdbr.WithSeed(42), mcdbr.WithParallelism(workers))
	e.RegisterTable(workload.LossMeans(40, 2, 8, 5))
	if err := e.DefineRandomTable(mcdbr.RandomTable{
		Name: "losses", ParamTable: "means", VG: "Normal",
		VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
		Columns:  []mcdbr.RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestEngineParallelismMonteCarloDeterminism runs the same SQL aggregate
// query under worker counts {1, 2, 3, NumCPU} and requires byte-identical
// sample vectors — the public-API face of the sharded executor's contract.
func TestEngineParallelismMonteCarloDeterminism(t *testing.T) {
	const sql = `SELECT SUM(val) AS totalLoss FROM Losses WHERE CID < 10030
WITH RESULTDISTRIBUTION MONTECARLO(301)`
	var want []float64
	for _, workers := range []int{1, 2, 3, runtime.NumCPU()} {
		res, err := lossEngine(t, workers).Exec(sql)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := res.Dist.Samples
		if want == nil {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d samples, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: sample %d = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestEngineParallelismTailDeterminism runs a Gibbs tail-sampling query
// under worker counts {1, 2, 3, NumCPU} and requires identical quantile
// estimates and tail samples.
func TestEngineParallelismTailDeterminism(t *testing.T) {
	const sql = `SELECT SUM(val) AS totalLoss FROM Losses
WITH RESULTDISTRIBUTION MONTECARLO(50)
DOMAIN totalLoss >= QUANTILE(0.95)`
	opts := mcdbr.TailSampleOptions{TotalSamples: 200, ForceM: 2}
	var want *mcdbr.TailResult
	for _, workers := range []int{1, 2, 3, runtime.NumCPU()} {
		res, err := lossEngine(t, workers).ExecWithOptions(sql, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := res.Tail
		if want == nil {
			want = got
			continue
		}
		if got.QuantileEstimate != want.QuantileEstimate {
			t.Errorf("workers=%d: quantile %v, want %v", workers, got.QuantileEstimate, want.QuantileEstimate)
		}
		if len(got.Samples) != len(want.Samples) {
			t.Fatalf("workers=%d: %d tail samples, want %d", workers, len(got.Samples), len(want.Samples))
		}
		for i := range want.Samples {
			if got.Samples[i] != want.Samples[i] {
				t.Fatalf("workers=%d: tail sample %d = %v, want %v", workers, i, got.Samples[i], want.Samples[i])
			}
		}
	}
}

// TestEngineParallelismJoinDeterminism shards the salary-inversion
// self-join — Split-rewritten joins, presence vectors, and a cross-seed
// final predicate evaluated inside the looper — and requires identical
// samples for every worker count.
func TestEngineParallelismJoinDeterminism(t *testing.T) {
	build := func(workers int) *mcdbr.QueryBuilder {
		e := mcdbr.New(mcdbr.WithSeed(77), mcdbr.WithParallelism(workers))
		sup, empmeans := workload.SalaryDB()
		e.RegisterTable(sup)
		e.RegisterTable(empmeans)
		if err := e.DefineRandomTable(mcdbr.RandomTable{
			Name:       "emp",
			ParamTable: "empmeans",
			VG:         "Normal",
			VGParams:   []expr.Expr{expr.C("msal"), expr.F(4e6)},
			Columns: []mcdbr.RandomCol{
				{Name: "eid", FromParam: "eid"},
				{Name: "sal", VGOut: 0},
			},
		}); err != nil {
			t.Fatal(err)
		}
		return e.Query().
			From("emp", "emp1").
			From("emp", "emp2").
			From("sup", "sup").
			Where(expr.B(expr.OpEq, expr.C("sup.boss"), expr.C("emp1.eid"))).
			Where(expr.B(expr.OpEq, expr.C("sup.peon"), expr.C("emp2.eid"))).
			Where(expr.B(expr.OpGt, expr.C("emp2.sal"), expr.C("emp1.sal"))).
			SelectSum(expr.B(expr.OpSub, expr.C("emp2.sal"), expr.C("emp1.sal")))
	}
	const n = 83
	var want []float64
	for _, workers := range []int{1, 2, 3, runtime.NumCPU()} {
		d, err := build(workers).MonteCarlo(n)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = d.Samples
			continue
		}
		for i := range want {
			if d.Samples[i] != want[i] {
				t.Fatalf("workers=%d: sample %d = %v, want %v", workers, i, d.Samples[i], want[i])
			}
		}
	}
}
