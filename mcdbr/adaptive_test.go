package mcdbr

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"

	"repro/internal/expr"
)

const adaptiveSQL = `SELECT SUM(val) FROM Losses
WITH RESULTDISTRIBUTION MONTECARLO(UNTIL ERROR < 0.01 AT 95%, MAX 8192)`

func TestExecAdaptiveSQL(t *testing.T) {
	e := lossEngine(t, 20, 7)
	mu, _ := analyticLoss(e)
	res, err := e.Exec(adaptiveSQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != ExecDistribution {
		t.Fatalf("kind = %v", res.Kind)
	}
	rep := res.Adaptive
	if rep == nil {
		t.Fatal("adaptive run returned no report")
	}
	if !rep.Converged {
		t.Fatalf("did not converge within MAX: %+v", rep)
	}
	if rep.SamplesUsed >= rep.MaxSamples {
		t.Fatalf("no early stop: used %d of %d", rep.SamplesUsed, rep.MaxSamples)
	}
	if len(res.Dist.Samples) != rep.SamplesUsed {
		t.Fatalf("distribution holds %d samples, report says %d", len(res.Dist.Samples), rep.SamplesUsed)
	}
	if len(rep.CIs) != 1 {
		t.Fatalf("CIs = %+v", rep.CIs)
	}
	ci := rep.CIs[0]
	if ci.RelError > rep.TargetRelError || !ci.Converged {
		t.Fatalf("final CI not converged: %+v", ci)
	}
	// The interval should cover the analytic mean at this tight a target.
	if math.Abs(ci.Mean-mu) > 4*ci.HalfWidth {
		t.Fatalf("CI mean %g implausibly far from analytic %g (hw %g)", ci.Mean, mu, ci.HalfWidth)
	}
}

// TestAdaptiveBitIdentityAcrossWorkers: an adaptive run that stops at m
// replicates is bit-identical to MONTECARLO(m), at every worker count.
func TestAdaptiveBitIdentityAcrossWorkers(t *testing.T) {
	e := lossEngine(t, 12, 3)
	p, err := e.Prepare(adaptiveSQL)
	if err != nil {
		t.Fatal(err)
	}
	var ref *ExecResult
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		res, err := p.Run(RunOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Adaptive.SamplesUsed != ref.Adaptive.SamplesUsed {
			t.Fatalf("workers=%d used %d samples, want %d", workers, res.Adaptive.SamplesUsed, ref.Adaptive.SamplesUsed)
		}
		for i, s := range res.Dist.Samples {
			if s != ref.Dist.Samples[i] {
				t.Fatalf("workers=%d sample %d = %v, want %v", workers, i, s, ref.Dist.Samples[i])
			}
		}
	}
	// And identical to a fixed run of the same count.
	m := ref.Adaptive.SamplesUsed
	fixed, err := e.Query().From("losses", "").SelectSum(expr.C("val")).MonteCarlo(m)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range fixed.Samples {
		if s != ref.Dist.Samples[i] {
			t.Fatalf("fixed MONTECARLO(%d) sample %d = %v, adaptive %v", m, i, s, ref.Dist.Samples[i])
		}
	}
}

// TestAdaptiveCoverage: across many independent seeds, the reported 95%
// interval covers the analytic mean at roughly the nominal rate. The test
// is fully deterministic (fixed seed list); the 85% floor leaves room for
// normal-approximation slack at small stopping times.
func TestAdaptiveCoverage(t *testing.T) {
	covered, runs := 0, 40
	for seed := 1; seed <= runs; seed++ {
		e := lossEngine(t, 10, uint64(seed))
		mu, _ := analyticLoss(e)
		gd, rep, err := e.Query().From("losses", "").
			SelectSum(expr.C("val")).
			Until(0.02, 0.95, 8192).
			MonteCarloAdaptive()
		if err != nil {
			t.Fatal(err)
		}
		if len(gd.Groups) != 1 || len(rep.CIs) != 1 {
			t.Fatalf("seed %d: groups %d, CIs %d", seed, len(gd.Groups), len(rep.CIs))
		}
		ci := rep.CIs[0]
		if math.Abs(ci.Mean-mu) <= ci.HalfWidth {
			covered++
		}
	}
	if frac := float64(covered) / float64(runs); frac < 0.85 {
		t.Fatalf("95%% CI covered the true mean in only %d/%d runs (%.0f%%)", covered, runs, 100*frac)
	}
}

func TestRunCtxCancellation(t *testing.T) {
	e := lossEngine(t, 50, 5)
	p, err := e.Prepare(`SELECT SUM(val) FROM Losses WITH RESULTDISTRIBUTION MONTECARLO(2000)`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RunCtx(ctx, RunOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Adaptive runs are cancellable too.
	if _, err := p.RunCtx(ctx, RunOptions{TargetRelError: 0.01}); !errors.Is(err, context.Canceled) {
		t.Fatalf("adaptive err = %v, want context.Canceled", err)
	}
	// A live context still runs to completion.
	if _, err := p.RunCtx(context.Background(), RunOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestProgressiveFixedN: a Progress callback on a fixed-N statement streams
// partial estimates while the final result stays bit-identical to a plain
// run.
func TestProgressiveFixedN(t *testing.T) {
	e := lossEngine(t, 15, 9)
	p, err := e.Prepare(`SELECT SUM(val) FROM Losses WITH RESULTDISTRIBUTION MONTECARLO(500)`)
	if err != nil {
		t.Fatal(err)
	}
	var updates []ProgressUpdate
	res, err := p.Run(RunOptions{Progress: func(u ProgressUpdate) { updates = append(updates, u) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) == 0 {
		t.Fatal("no progress updates")
	}
	prev := 0
	for _, u := range updates {
		if u.SamplesUsed <= prev {
			t.Fatalf("samples not increasing: %+v", updates)
		}
		prev = u.SamplesUsed
	}
	if last := updates[len(updates)-1]; last.SamplesUsed != 500 {
		t.Fatalf("final update at %d samples, want 500", last.SamplesUsed)
	}
	if res.Adaptive == nil || res.Adaptive.Converged {
		t.Fatalf("progressive fixed-N report = %+v", res.Adaptive)
	}
	plain, err := p.Run(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Dist.Samples) != len(res.Dist.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(plain.Dist.Samples), len(res.Dist.Samples))
	}
	for i := range plain.Dist.Samples {
		if plain.Dist.Samples[i] != res.Dist.Samples[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, plain.Dist.Samples[i], res.Dist.Samples[i])
		}
	}
}

func TestAdaptiveGroupedSQL(t *testing.T) {
	e := lossEngine(t, 8, 11)
	res, err := e.Exec(`SELECT SUM(val) AS s FROM Losses
GROUP BY CID
WITH RESULTDISTRIBUTION MONTECARLO(UNTIL ERROR < 0.05, MAX 4096)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != ExecGroupedDistribution || res.Adaptive == nil {
		t.Fatalf("kind = %v, adaptive = %v", res.Kind, res.Adaptive)
	}
	if got := len(res.Grouped.Groups); got != 8 {
		t.Fatalf("groups = %d, want 8", got)
	}
	if got := len(res.Adaptive.CIs); got != 8 {
		t.Fatalf("CIs = %d, want 8 (one per group)", got)
	}
	for _, g := range res.Grouped.Groups {
		if len(g.Dists[0].Samples) != res.Adaptive.SamplesUsed {
			t.Fatalf("group %s has %d samples, report says %d", g.KeyString(), len(g.Dists[0].Samples), res.Adaptive.SamplesUsed)
		}
	}
}

// TestAdaptiveTailSQL: DOMAIN queries stop chain-doubling once the
// expected-shortfall interval meets the target, and the final tail is
// bit-identical to a fixed MONTECARLO(L) DOMAIN run at the stopping L.
func TestAdaptiveTailSQL(t *testing.T) {
	e := lossEngine(t, 10, 2)
	res, err := e.ExecWithOptions(`SELECT SUM(val) AS totalLoss FROM Losses
WITH RESULTDISTRIBUTION MONTECARLO(UNTIL ERROR < 0.05, MAX 256)
DOMAIN totalLoss >= QUANTILE(0.9)`, TailSampleOptions{TotalSamples: 400})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != ExecTail || res.Adaptive == nil {
		t.Fatalf("kind = %v, adaptive = %v", res.Kind, res.Adaptive)
	}
	L := res.Adaptive.SamplesUsed
	if L != len(res.Tail.Samples) {
		t.Fatalf("report says %d samples, tail holds %d", L, len(res.Tail.Samples))
	}
	fixed, err := e.ExecWithOptions(`SELECT SUM(val) AS totalLoss FROM Losses
WITH RESULTDISTRIBUTION MONTECARLO(`+itoa(L)+`)
DOMAIN totalLoss >= QUANTILE(0.9)`, TailSampleOptions{TotalSamples: 400})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range fixed.Tail.Samples {
		if s != res.Tail.Samples[i] {
			t.Fatalf("tail sample %d differs: fixed %v, adaptive %v", i, s, res.Tail.Samples[i])
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestUntilChangesFingerprint: the stopping rule is part of the plan's
// identity, so the plan cache never serves an adaptive plan for a fixed
// statement or vice versa.
func TestUntilChangesFingerprint(t *testing.T) {
	e := lossEngine(t, 5, 1)
	p1, err := e.Prepare(adaptiveSQL)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.Prepare(`SELECT SUM(val) FROM Losses WITH RESULTDISTRIBUTION MONTECARLO(100)`)
	if err != nil {
		t.Fatal(err)
	}
	if p1.SQL() == p2.SQL() {
		t.Fatal("adaptive and fixed statements share a cache key")
	}
	if p1.c.stop == nil || p2.c.stop != nil {
		t.Fatalf("stop specs: adaptive %+v, fixed %+v", p1.c.stop, p2.c.stop)
	}
}
