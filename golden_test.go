package repro_test

// Bit-identity goldens for the streaming executor refactor (ISSUE 6).
//
// The non-negotiable invariant of the batch-iterator pipeline is that
// batch boundaries are semantically invisible: every query produces
// samples bit-identical to the materializing executor, for every worker
// count, batch size, and prefix-cache setting. This suite pins absolute
// sample values captured from the materializing executor into
// testdata/golden6.json and replays representative query shapes
// (quickstart aggregate, Fig. 2 self-join, grouped aggregation with
// HAVING, tail sampling, deterministic-prefix join) across the full
// configuration grid.
//
// Regenerate the golden file with MCDBR_UPDATE_GOLDEN=1 go test -run
// TestBitIdentityGolden — only ever from a known-good executor.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/workload"
	"repro/mcdbr"
)

const goldenPath = "testdata/golden6.json"

// goldenCfg is one point of the bit-identity grid.
type goldenCfg struct {
	workers   int
	prefix    bool
	batchSize int // 0 = engine default
}

func (c goldenCfg) String() string {
	return fmt.Sprintf("workers=%d/prefix=%v/batch=%d", c.workers, c.prefix, c.batchSize)
}

func (c goldenCfg) opts(base ...mcdbr.Option) []mcdbr.Option {
	opts := append([]mcdbr.Option{}, base...)
	opts = append(opts, mcdbr.WithParallelism(c.workers))
	if !c.prefix {
		opts = append(opts, mcdbr.WithPrefixCacheSize(-1))
	}
	opts = append(opts, goldenBatchOpts(c.batchSize)...)
	return opts
}

// goldenBatchSizes lists the batch sizes the grid covers (0 = engine
// default of 1024) and goldenBatchOpts maps one to engine options. The
// tiny sizes force many batch boundaries through every operator; the
// goldens were captured from the materializing executor, so passing at
// every size proves batch boundaries are semantically invisible.
var goldenBatchSizes = []int{0, 1, 7}

func goldenBatchOpts(n int) []mcdbr.Option {
	if n <= 0 {
		return nil
	}
	return []mcdbr.Option{mcdbr.WithBatchSize(n)}
}

// goldenQuickstart runs the §2 quickstart SUM.
func goldenQuickstart(t testing.TB, cfg goldenCfg) []float64 {
	t.Helper()
	e := mcdbr.New(cfg.opts(mcdbr.WithSeed(42))...)
	e.RegisterTable(workload.LossMeans(100, 2, 8, 7))
	if _, err := e.Exec(`
CREATE TABLE Losses (CID, val) AS
FOR EACH CID IN means
WITH myVal AS Normal(VALUES(m, 1.0))
SELECT CID, myVal.* FROM myVal`); err != nil {
		t.Fatal(err)
	}
	res, err := e.Exec(`SELECT SUM(val) AS totalLoss FROM Losses WHERE CID < 10090
WITH RESULTDISTRIBUTION MONTECARLO(64)`)
	if err != nil {
		t.Fatal(err)
	}
	return res.Dist.Samples
}

// goldenFig2 runs the salary-inversion self-join (cross-seed final
// predicate through the Gibbs looper's plain Monte Carlo path).
func goldenFig2(t testing.TB, cfg goldenCfg) []float64 {
	t.Helper()
	e := mcdbr.New(cfg.opts(mcdbr.WithSeed(77))...)
	sup, empmeans := workload.SalaryDB()
	e.RegisterTable(sup)
	e.RegisterTable(empmeans)
	if err := e.DefineRandomTable(mcdbr.RandomTable{
		Name: "emp", ParamTable: "empmeans", VG: "Normal",
		VGParams: []expr.Expr{expr.C("msal"), expr.F(4e6)},
		Columns:  []mcdbr.RandomCol{{Name: "eid", FromParam: "eid"}, {Name: "sal", VGOut: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Exec(`SELECT SUM(emp2.sal - emp1.sal) AS inv
FROM emp AS emp1, emp AS emp2, sup
WHERE sup.boss = emp1.eid AND sup.peon = emp2.eid AND emp2.sal > emp1.sal
WITH RESULTDISTRIBUTION MONTECARLO(32)`)
	if err != nil {
		t.Fatal(err)
	}
	return res.Dist.Samples
}

// goldenGroupedEngine is the grouped-aggregation fixture: losses joined to
// a round-robin group assignment.
func goldenGroupedEngine(t testing.TB, cfg goldenCfg) *mcdbr.Engine {
	t.Helper()
	e := mcdbr.New(cfg.opts(mcdbr.WithSeed(9))...)
	e.RegisterTable(workload.LossMeans(24, 2, 8, 5))
	if err := e.DefineRandomTable(mcdbr.RandomTable{
		Name: "losses", ParamTable: "means", VG: "Normal",
		VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
		Columns:  []mcdbr.RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	grp := storage.NewTable("grp", types.NewSchema(
		types.Column{Name: "cid", Kind: types.KindInt},
		types.Column{Name: "g", Kind: types.KindInt},
	))
	m, _ := e.Table("means")
	for i, r := range m.Rows() {
		grp.MustAppend(types.Row{r[0], types.NewInt(int64(i % 4))})
	}
	e.RegisterTable(grp)
	return e
}

// goldenGrouped runs a grouped multi-aggregate query with HAVING and
// flattens keys, inclusion fractions, and every per-group sample vector
// into one float slice (keys and inclusions participate in bit-identity).
func goldenGrouped(t testing.TB, cfg goldenCfg) []float64 {
	t.Helper()
	e := goldenGroupedEngine(t, cfg)
	gd, err := e.Query().
		From("losses", "l").From("grp", "grp").
		Where(expr.B(expr.OpEq, expr.C("l.cid"), expr.C("grp.cid"))).
		SelectSumAs(expr.C("l.val"), "s").
		SelectAvgAs(expr.C("l.val"), "a").
		GroupBy(expr.C("grp.g")).
		Having(expr.B(expr.OpGt, expr.C("s"), expr.F(10))).
		MonteCarloGrouped(48)
	if err != nil {
		t.Fatal(err)
	}
	var out []float64
	for i := range gd.Groups {
		g := &gd.Groups[i]
		out = append(out, float64(g.Key[0].Int()), g.Inclusion)
		for _, d := range g.Dists {
			out = append(out, d.Samples...)
		}
	}
	return out
}

// goldenTail runs Gibbs tail sampling (bootstrapping, rejection sampling,
// replenishment) and appends the quantile estimate to the sample vector.
func goldenTail(t testing.TB, cfg goldenCfg) []float64 {
	t.Helper()
	e := mcdbr.New(cfg.opts(mcdbr.WithSeed(5), mcdbr.WithWindow(512))...)
	e.RegisterTable(workload.LossMeans(30, 2, 8, 5))
	if err := e.DefineRandomTable(mcdbr.RandomTable{
		Name: "losses", ParamTable: "means", VG: "Normal",
		VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
		Columns:  []mcdbr.RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	tr, err := e.Query().From("losses", "").SelectSum(expr.C("val")).
		TailSample(0.01, 30, mcdbr.TailSampleOptions{TotalSamples: 120, ForceM: 3, Parallelism: cfg.workers})
	if err != nil {
		t.Fatal(err)
	}
	return append(append([]float64(nil), tr.Samples...), tr.QuantileEstimate)
}

// goldenDetPrefix runs a query with a deterministic join prefix twice on
// one engine, so the second run exercises the prefix cache when enabled;
// both runs' samples participate in bit-identity.
func goldenDetPrefix(t testing.TB, cfg goldenCfg) []float64 {
	t.Helper()
	e := mcdbr.New(cfg.opts(mcdbr.WithSeed(11))...)
	e.RegisterTable(workload.LossMeans(40, 2, 8, 9))
	regions := storage.NewTable("regions", types.NewSchema(
		types.Column{Name: "rid", Kind: types.KindInt},
		types.Column{Name: "weight", Kind: types.KindFloat},
	))
	for r := 0; r < 4; r++ {
		regions.MustAppend(types.Row{types.NewInt(int64(r)), types.NewFloat(1 + float64(r)/8)})
	}
	e.RegisterTable(regions)
	accounts := storage.NewTable("accounts", types.NewSchema(
		types.Column{Name: "aid", Kind: types.KindInt},
		types.Column{Name: "rid", Kind: types.KindInt},
	))
	for i := 0; i < 40; i++ {
		accounts.MustAppend(types.Row{types.NewInt(int64(10000 + i)), types.NewInt(int64(i % 4))})
	}
	e.RegisterTable(accounts)
	if err := e.DefineRandomTable(mcdbr.RandomTable{
		Name: "losses", ParamTable: "means", VG: "Normal",
		VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
		Columns:  []mcdbr.RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	const sql = `SELECT SUM(losses.val * regions.weight) AS wloss
FROM losses, accounts, regions
WHERE losses.cid = accounts.aid AND accounts.rid = regions.rid
WITH RESULTDISTRIBUTION MONTECARLO(32)`
	var out []float64
	for run := 0; run < 2; run++ {
		res, err := e.Exec(sql)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, res.Dist.Samples...)
	}
	return out
}

var goldenCases = []struct {
	name string
	run  func(t testing.TB, cfg goldenCfg) []float64
}{
	{"quickstart", goldenQuickstart},
	{"fig2_selfjoin", goldenFig2},
	{"grouped_having", goldenGrouped},
	{"tail_sampling", goldenTail},
	{"det_prefix", goldenDetPrefix},
}

// encodeBits renders samples as hex float64 bit patterns: the golden file
// must pin exact bits, not a decimal rendering.
func encodeBits(samples []float64) []string {
	out := make([]string, len(samples))
	for i, v := range samples {
		out[i] = fmt.Sprintf("%016x", math.Float64bits(v))
	}
	return out
}

// TestBitIdentityGolden replays every golden query across worker counts
// {1, 2, NumCPU}, prefix cache on/off, and batch sizes {1, 7, 1024} (0 =
// engine default before the streaming executor existed) and requires the
// exact bit pattern captured in testdata/golden6.json.
func TestBitIdentityGolden(t *testing.T) {
	update := os.Getenv("MCDBR_UPDATE_GOLDEN") != ""
	golden := map[string][]string{}
	if !update {
		raw, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("missing golden file (run with MCDBR_UPDATE_GOLDEN=1 to create): %v", err)
		}
		if err := json.Unmarshal(raw, &golden); err != nil {
			t.Fatal(err)
		}
	}

	workerGrid := []int{1, 2, runtime.NumCPU()}
	batchGrid := goldenBatchSizes
	if update {
		// Goldens are captured from the canonical configuration only.
		workerGrid = []int{1}
		batchGrid = batchGrid[:1]
	}
	for _, tc := range goldenCases {
		var want []string
		if !update {
			var ok bool
			if want, ok = golden[tc.name]; !ok {
				t.Fatalf("golden file has no entry %q (regenerate with MCDBR_UPDATE_GOLDEN=1)", tc.name)
			}
		}
		for _, w := range workerGrid {
			for _, prefix := range []bool{true, false} {
				for _, bs := range batchGrid {
					cfg := goldenCfg{workers: w, prefix: prefix, batchSize: bs}
					if update && !prefix {
						continue
					}
					got := encodeBits(tc.run(t, cfg))
					if update {
						golden[tc.name] = got
						continue
					}
					if len(got) != len(want) {
						t.Fatalf("%s %s: %d samples, golden has %d", tc.name, cfg, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%s %s: sample %d = %s, golden %s", tc.name, cfg, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
	if update {
		raw, err := json.MarshalIndent(golden, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
	}
}
