// Command supplychain models uncertain shipment delays — the paper's
// "transportation times for future shipments under alternative shipping
// schemes" motivation. Each shipment's delay is Gamma-distributed with
// route-specific shape/scale; the risk question is the upper tail of the
// COUNT of late shipments (delay > SLA) and of the total penalty cost, and
// the comparison between two shipping schemes uses grouped tail sampling
// (the paper's GROUP BY treatment, Appendix A).
package main

import (
	"fmt"
	"log"

	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/mcdbr"
)

func buildShipments() *storage.Table {
	t := storage.NewTable("shipments", types.NewSchema(
		types.Column{Name: "sid", Kind: types.KindInt},
		types.Column{Name: "scheme", Kind: types.KindString},
		types.Column{Name: "shape", Kind: types.KindFloat},
		types.Column{Name: "scale", Kind: types.KindFloat},
		types.Column{Name: "penalty", Kind: types.KindFloat},
	))
	// Scheme "express" has tighter delay distributions but higher penalty
	// exposure per late shipment than scheme "ground".
	for i := 0; i < 60; i++ {
		scheme, shape, scale, penalty := "ground", 4.0, 1.0, 100.0
		if i%2 == 0 {
			scheme, shape, scale, penalty = "express", 2.0, 0.8, 250.0
		}
		t.MustAppend(types.Row{
			types.NewInt(int64(i)),
			types.NewString(scheme),
			types.NewFloat(shape + float64(i%3)*0.3),
			types.NewFloat(scale),
			types.NewFloat(penalty),
		})
	}
	return t
}

func main() {
	engine := mcdbr.New(mcdbr.WithSeed(2718))
	engine.RegisterTable(buildShipments())

	if err := engine.DefineRandomTable(mcdbr.RandomTable{
		Name:       "delays",
		ParamTable: "shipments",
		VG:         "Gamma",
		VGParams:   []expr.Expr{expr.C("shape"), expr.C("scale")},
		Columns: []mcdbr.RandomCol{
			{Name: "sid", FromParam: "sid"},
			{Name: "scheme", FromParam: "scheme"},
			{Name: "penalty", FromParam: "penalty"},
			{Name: "delay", VGOut: 0},
		},
	}); err != nil {
		log.Fatal(err)
	}

	const sla = 6.0 // days

	// Risk measure 1: distribution of the number of late shipments.
	late, err := engine.Query().
		From("delays", "d").
		Where(expr.B(expr.OpGt, expr.C("d.delay"), expr.F(sla))).
		SelectCount().
		MonteCarlo(2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("late shipments (of 60): mean=%.1f sd=%.1f\n", late.Mean(), late.Std())

	// Risk measure 2: upper 1% tail of total penalty cost.
	penalty := engine.Query().
		From("delays", "d").
		Where(expr.B(expr.OpGt, expr.C("d.delay"), expr.F(sla))).
		SelectSum(expr.C("d.penalty"))
	res, err := penalty.TailSample(0.01, 100, mcdbr.TailSampleOptions{TotalSamples: 400})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total penalty 0.99-quantile: $%.0f, expected shortfall $%.0f\n",
		res.QuantileEstimate, res.ExpectedShortfall)

	// Alternative schemes compared: GROUP BY runs one conditioned Gibbs
	// chain per scheme over a single compiled plan (the paper's GROUP BY
	// treatment, Appendix A) — no per-group re-planning.
	bySch, err := engine.Query().
		From("delays", "d").
		Where(expr.B(expr.OpGt, expr.C("d.delay"), expr.F(sla))).
		SelectSum(expr.C("d.penalty")).
		GroupBy(expr.C("d.scheme")).
		TailSampleGrouped(0.05, 50, mcdbr.TailSampleOptions{TotalSamples: 300})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-scheme 0.95-quantile of penalty cost:")
	for _, g := range bySch.Groups {
		r := g.Tail
		fmt.Printf("  %-8s VaR $%.0f, shortfall $%.0f\n",
			g.KeyString(), r.QuantileEstimate, r.ExpectedShortfall)
	}
}
