// Command quickstart reproduces the paper's §2 walkthrough end to end:
// define a stochastic loss model over a parameter table, run a SUM query
// under 1000 Monte Carlo repetitions, then condition the result
// distribution to the upper 1% tail with MCDB-R tail sampling and report
// the value at risk and expected shortfall.
package main

import (
	"fmt"
	"log"

	"repro/internal/workload"
	"repro/mcdbr"
)

func main() {
	engine := mcdbr.New(mcdbr.WithSeed(42))

	// Parameter table: per-customer mean losses (the paper's means(CID,m)).
	engine.RegisterTable(workload.LossMeans(100, 2, 8, 7))

	// Step 1 (paper §2): define the uncertain Losses table. Only the
	// schema is stored; instances are generated at query time.
	if _, err := engine.Exec(`
CREATE TABLE Losses (CID, val) AS
FOR EACH CID IN means
WITH myVal AS Normal(VALUES(m, 1.0))
SELECT CID, myVal.* FROM myVal`); err != nil {
		log.Fatal(err)
	}

	// Step 2: plain Monte Carlo exploration of the query-result
	// distribution (original MCDB semantics).
	res, err := engine.Exec(`
SELECT SUM(val) AS totalLoss
FROM Losses
WHERE CID < 10050
WITH RESULTDISTRIBUTION MONTECARLO(1000)`)
	if err != nil {
		log.Fatal(err)
	}
	dist := res.Dist
	fmt.Printf("unconditioned totalLoss: mean=%.2f sd=%.2f [%d samples]\n",
		dist.Mean(), dist.Std(), len(dist.Samples))

	// Step 3: risk analysis — condition on the top 1% of losses.
	res, err = engine.ExecWithOptions(`
SELECT SUM(val) AS totalLoss
FROM Losses
WHERE CID < 10050
WITH RESULTDISTRIBUTION MONTECARLO(100)
DOMAIN totalLoss >= QUANTILE(0.99)
FREQUENCYTABLE totalLoss`, mcdbr.TailSampleOptions{TotalSamples: 500})
	if err != nil {
		log.Fatal(err)
	}
	tailRes := res.Tail
	fmt.Printf("value at risk (0.99-quantile estimate): %.2f\n", tailRes.QuantileEstimate)
	fmt.Printf("expected shortfall E[loss | tail]:      %.2f\n", tailRes.ExpectedShortfall)

	// The frequency table is an ordinary relation; re-query it as in the
	// paper.
	minRes, err := engine.Exec(`SELECT MIN(totalLoss) FROM FTABLE`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tail boundary via SELECT MIN(totalLoss) FROM FTABLE: %.2f\n", minRes.Scalar)

	fmt.Printf("tail-sampling iterations: %d, replenishing runs: %d\n",
		len(tailRes.Diag.Iters), tailRes.Diag.Replenishments)
}
