// Command portfoliorisk estimates value at risk for a book of instruments
// whose future prices follow Euler-discretized random walks — the paper's
// motivating "future values of financial assets" scenario. The uncertain
// future portfolio value is SUM(qty * price), price ~ RandomWalk(start,
// drift, vol, steps); risk lives in the LOWER tail (value collapse), so
// the query conditions on DOMAIN value <= QUANTILE(p).
package main

import (
	"fmt"
	"log"

	"repro/internal/expr"
	"repro/internal/workload"
	"repro/mcdbr"
)

func main() {
	engine := mcdbr.New(mcdbr.WithSeed(1234))
	engine.RegisterTable(workload.Portfolio(50, 99))

	// futureprices(iid, qty, price): price simulated by the RandomWalk VG
	// function from each instrument's start/drift/vol over 16 steps.
	if err := engine.DefineRandomTable(mcdbr.RandomTable{
		Name:       "futureprices",
		ParamTable: "instruments",
		VG:         "RandomWalk",
		VGParams: []expr.Expr{
			expr.C("start"), expr.C("drift"), expr.C("vol"), expr.F(16),
		},
		Columns: []mcdbr.RandomCol{
			{Name: "iid", FromParam: "iid"},
			{Name: "qty", FromParam: "qty"},
			{Name: "price", VGOut: 0},
		},
	}); err != nil {
		log.Fatal(err)
	}

	value := expr.B(expr.OpMul, expr.C("qty"), expr.C("price"))

	// Unconditioned distribution of the future portfolio value.
	dist, err := engine.Query().
		From("futureprices", "fp").
		SelectSum(value).
		MonteCarlo(2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("future portfolio value: mean=%.0f sd=%.0f\n", dist.Mean(), dist.Std())

	// Walk out to the lower 0.1% tail: the 99.9% value at risk.
	res, err := engine.Query().
		From("futureprices", "fp").
		SelectSum(value).
		TailSample(0.001, 100, mcdbr.TailSampleOptions{TotalSamples: 500, Lower: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("0.001-quantile (99.9%% VaR):  %.0f\n", res.QuantileEstimate)
	fmt.Printf("expected shortfall below it: %.0f\n", res.ExpectedShortfall)
	fmt.Printf("loss vs mean at VaR: %.0f\n", dist.Mean()-res.QuantileEstimate)

	// Conditional tail distribution histogram.
	edges, counts := res.Histogram(8)
	fmt.Println("tail histogram:")
	for i, c := range counts {
		fmt.Printf("  [%8.0f, %8.0f) %s\n", edges[i], edges[i+1], bar(c))
	}
}

func bar(n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += "#"
	}
	return out
}
