// Command retaildemand models "customer order quantities under
// hypothetical price changes ... specified via Bayesian demand models" —
// the paper's second motivating workload. Each product's demand under a
// proposed price change is PoissonGamma (negative binomial): demand ~
// Poisson(lambda) with a Gamma prior on lambda whose mean shrinks with the
// price elasticity. Revenue risk is the LOWER tail of total revenue; the
// GROUP BY clause compares product categories with one conditioned query
// per group, as in the paper's Appendix A.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/storage"
	"repro/internal/types"
	"repro/mcdbr"
)

func buildProducts() *storage.Table {
	t := storage.NewTable("products", types.NewSchema(
		types.Column{Name: "pid", Kind: types.KindInt},
		types.Column{Name: "category", Kind: types.KindString},
		types.Column{Name: "price", Kind: types.KindFloat},
		types.Column{Name: "dshape", Kind: types.KindFloat},
		types.Column{Name: "dscale", Kind: types.KindFloat},
	))
	cats := []string{"grocery", "electronics", "apparel"}
	for i := 0; i < 45; i++ {
		cat := cats[i%3]
		price := 5 + float64(i%3)*45 + float64(i%7)
		// Posterior-predictive demand: mean shape*scale shrinks as price
		// rises (a crude constant-elasticity prior).
		shape := 4.0 + float64(i%5)
		scale := 60 / (shape * (1 + price/50))
		t.MustAppend(types.Row{
			types.NewInt(int64(i)),
			types.NewString(cat),
			types.NewFloat(price),
			types.NewFloat(shape),
			types.NewFloat(scale),
		})
	}
	return t
}

func main() {
	engine := mcdbr.New(mcdbr.WithSeed(314))
	engine.RegisterTable(buildProducts())

	// demand(pid, category, price, qty): qty ~ PoissonGamma(dshape, dscale).
	if _, err := engine.Exec(`
CREATE TABLE demand (pid, category, price, qty) AS
FOR EACH pid IN products
WITH q AS PoissonGamma(VALUES(dshape, dscale))
SELECT pid, category, price, q.* FROM q`); err != nil {
		log.Fatal(err)
	}

	// Unconditioned revenue distribution under the hypothetical prices.
	res, err := engine.Exec(`
SELECT SUM(qty * price) AS revenue
FROM demand
WITH RESULTDISTRIBUTION MONTECARLO(2000)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total revenue: mean=$%.0f sd=$%.0f\n", res.Dist.Mean(), res.Dist.Std())

	// Revenue at risk: the lower 1% tail.
	res, err = engine.ExecWithOptions(`
SELECT SUM(qty * price) AS revenue
FROM demand
WITH RESULTDISTRIBUTION MONTECARLO(100)
DOMAIN revenue <= QUANTILE(0.01)`, mcdbr.TailSampleOptions{TotalSamples: 500})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("0.01-quantile of revenue (99%% revenue-at-risk): $%.0f\n", res.Tail.QuantileEstimate)
	fmt.Printf("expected revenue given that shortfall:          $%.0f\n", res.Tail.ExpectedShortfall)

	// Which category drives the downside? One conditioned query per group.
	res, err = engine.ExecWithOptions(`
SELECT SUM(qty * price) AS revenue
FROM demand
GROUP BY category
WITH RESULTDISTRIBUTION MONTECARLO(50)
DOMAIN revenue <= QUANTILE(0.05)`, mcdbr.TailSampleOptions{TotalSamples: 300})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-category 5% revenue-at-risk:")
	cats := make([]string, 0, len(res.GroupTails))
	for c := range res.GroupTails {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, c := range cats {
		tr := res.GroupTails[c]
		fmt.Printf("  %-12s VaR $%.0f, shortfall $%.0f\n", c, tr.QuantileEstimate, tr.ExpectedShortfall)
	}
}
