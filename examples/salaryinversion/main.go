// Command salaryinversion runs the paper's Fig. 2 query: a company's total
// salary "inversion" — how much more certain employees earn than their
// managers — over an uncertain emp table, via a three-way self-join with a
// cross-seed predicate (emp2.sal > emp1.sal) that must be evaluated inside
// the GibbsLooper (paper Appendix A).
package main

import (
	"fmt"
	"log"

	"repro/internal/expr"
	"repro/internal/workload"
	"repro/mcdbr"
)

func main() {
	engine := mcdbr.New(mcdbr.WithSeed(77))
	sup, empmeans := workload.SalaryDB()
	engine.RegisterTable(sup)
	engine.RegisterTable(empmeans)

	// emp(eid, sal): salaries are uncertain around each employee's mean,
	// sd $2000.
	if err := engine.DefineRandomTable(mcdbr.RandomTable{
		Name:       "emp",
		ParamTable: "empmeans",
		VG:         "Normal",
		VGParams:   []expr.Expr{expr.C("msal"), expr.F(4e6)},
		Columns: []mcdbr.RandomCol{
			{Name: "eid", FromParam: "eid"},
			{Name: "sal", VGOut: 0},
		},
	}); err != nil {
		log.Fatal(err)
	}

	q := engine.Query().
		From("emp", "emp1").
		From("emp", "emp2").
		From("sup", "sup").
		Where(expr.B(expr.OpEq, expr.C("sup.boss"), expr.C("emp1.eid"))).
		Where(expr.B(expr.OpEq, expr.C("sup.peon"), expr.C("emp2.eid"))).
		Where(expr.B(expr.OpLt, expr.C("emp1.sal"), expr.F(90000))).
		Where(expr.B(expr.OpGt, expr.C("emp2.sal"), expr.F(25000))).
		Where(expr.B(expr.OpGt, expr.C("emp2.sal"), expr.C("emp1.sal"))).
		SelectSum(expr.B(expr.OpSub, expr.C("emp2.sal"), expr.C("emp1.sal")))

	dist, err := q.MonteCarlo(2000)
	if err != nil {
		log.Fatal(err)
	}
	zero := 0
	for _, s := range dist.Samples {
		if s == 0 {
			zero++
		}
	}
	fmt.Printf("total inversion: mean=$%.0f, P(no inversion)=%.2f\n",
		dist.Mean(), float64(zero)/float64(len(dist.Samples)))

	// How bad can it get? The upper 1% of inversion totals.
	res, err := q.TailSample(0.01, 100, mcdbr.TailSampleOptions{TotalSamples: 400})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("0.99-quantile of total inversion: $%.0f\n", res.QuantileEstimate)
	fmt.Printf("expected inversion given tail:    $%.0f\n", res.ExpectedShortfall)
	for i, it := range res.Diag.Iters {
		fmt.Printf("  iteration %d: cutoff $%.0f (tail prob %.3f), %d candidates, %d accepts\n",
			i+1, it.Cutoff, it.CurQuantile, it.Candidates, it.Accepts)
	}
}
