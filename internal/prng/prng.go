// Package prng provides the counter-based pseudorandom streams that back
// MCDB-R's TS-seeds, plus the distribution samplers used by VG functions.
//
// MCDB-R requires random access into a stream of random data: the Gibbs
// rejection sampler consumes stream elements out of order, cloning copies
// stream positions between DB versions, and replenishment (paper §9) must
// regenerate exactly the values already assigned. Sequential generators
// cannot do this cheaply, so element i of stream s is a pure function of
// (s, i): we derive an independent SplitMix64-seeded substream for each
// element, and samplers that need a variable number of uniforms (gamma
// rejection, Poisson inversion) draw as many as they like from that
// substream without disturbing neighbouring elements.
package prng

import "math"

// splitmix64 advances the SplitMix64 state and returns the next output.
// Reference: Steele, Lea, Flood, "Fast Splittable Pseudorandom Number
// Generators", OOPSLA 2014.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mix64 is a stateless finalizer used to combine seed material.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Stream is an infinite, randomly addressable sequence of random elements.
// The zero value is a valid stream with seed 0.
type Stream struct {
	seed uint64
}

// NewStream returns the stream identified by seed. Streams with distinct
// seeds are (statistically) independent.
func NewStream(seed uint64) Stream { return Stream{seed: seed} }

// Seed returns the stream's identifying seed.
func (s Stream) Seed() uint64 { return s.seed }

// At returns the substream for element i of the stream. The substream is
// deterministic: At(i) always yields the same sequence of draws, regardless
// of the order in which elements are visited.
func (s Stream) At(i uint64) *Sub {
	sub := s.SubAt(i)
	return &sub
}

// SubAt is At by value: hot loops that materialize thousands of stream
// elements keep the substream on the stack instead of allocating one per
// element. SubAt(i) and At(i) yield identical draw sequences.
func (s Stream) SubAt(i uint64) Sub {
	return Sub{state: mix64(s.seed+0x632be59bd9b4e019) ^ mix64(i*0x9e3779b97f4a7c15+0x2545f4914f6cdd1d)}
}

// Derive returns a child stream; used to give each TS-seed its own stream
// from an engine-level master seed, and each VG output column its own lane.
func (s Stream) Derive(n uint64) Stream {
	return Stream{seed: mix64(s.seed ^ mix64(n+0xd1b54a32d192ed03))}
}

// Sub is a sequential generator scoped to one stream element.
type Sub struct {
	state uint64
}

// NewSub returns a standalone substream; handy for tests and ad-hoc
// simulation that does not need stream addressing.
func NewSub(seed uint64) *Sub { return &Sub{state: mix64(seed)} }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Sub) Uint64() uint64 { return splitmix64(&r.state) }

// Float64 returns a uniform float in [0, 1) with 53 bits of precision.
func (r *Sub) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float in (0, 1); never exactly 0 or 1.
// Samplers that take logarithms or inverse-CDFs use this form.
func (r *Sub) Float64Open() float64 {
	for {
		f := (float64(r.Uint64()>>11) + 0.5) / (1 << 53)
		if f > 0 && f < 1 {
			return f
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Sub) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul128(x, bound)
	if lo < bound {
		thresh := (-bound) % bound
		for lo < thresh {
			x = r.Uint64()
			hi, lo = mul128(x, bound)
		}
	}
	return int(hi)
}

func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aHi * bLo
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Norm returns a standard normal draw using the Marsaglia polar method.
func (r *Sub) Norm() float64 {
	for {
		u := 2*r.Float64Open() - 1
		v := 2*r.Float64Open() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Exp returns an Exponential(1) draw.
func (r *Sub) Exp() float64 { return -math.Log(r.Float64Open()) }

// Gamma returns a Gamma(shape, scale) draw using Marsaglia–Tsang for
// shape >= 1 and the boost transform for shape < 1. It panics on
// non-positive parameters.
func (r *Sub) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("prng: Gamma requires positive shape and scale")
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^{1/a}
		u := r.Float64Open()
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64Open()
		if u < 1-0.0331*x*x*x*x {
			return scale * d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return scale * d * v
		}
	}
}

// Poisson returns a Poisson(lambda) draw. It uses inversion for small
// lambda and the PTRS transformed-rejection method of Hörmann for large.
func (r *Sub) Poisson(lambda float64) int64 {
	if lambda <= 0 {
		panic("prng: Poisson requires positive lambda")
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := int64(0)
		p := 1.0
		for {
			p *= r.Float64Open()
			if p <= l {
				return k
			}
			k++
		}
	}
	// PTRS (Hörmann 1993).
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	for {
		u := r.Float64Open() - 0.5
		v := r.Float64Open()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int64(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*math.Log(lambda)-lambda-lg {
			return int64(k)
		}
	}
}
