package prng

import (
	"fmt"
	"math"
)

// Dist is a real-valued distribution that can be sampled from a substream
// and interrogated analytically where a closed form exists. VG functions
// wrap Dists; the tail-sampling benchmarks use the analytic methods to
// validate walked-out quantiles against ground truth.
type Dist interface {
	// Sample draws one variate, consuming as many uniforms as needed.
	Sample(r *Sub) float64
	// Mean returns the distribution mean (NaN if undefined).
	Mean() float64
	// Var returns the distribution variance (NaN if undefined/infinite).
	Var() float64
	// String names the distribution with its parameters.
	String() string
}

// Normal is the N(Mu, Sigma^2) distribution.
type Normal struct {
	Mu, Sigma float64
}

// Sample draws a normal variate.
func (d Normal) Sample(r *Sub) float64 { return d.Mu + d.Sigma*r.Norm() }

// Mean returns Mu.
func (d Normal) Mean() float64 { return d.Mu }

// Var returns Sigma^2.
func (d Normal) Var() float64 { return d.Sigma * d.Sigma }

func (d Normal) String() string { return fmt.Sprintf("Normal(%g,%g)", d.Mu, d.Sigma) }

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample draws a uniform variate.
func (d Uniform) Sample(r *Sub) float64 { return d.Lo + (d.Hi-d.Lo)*r.Float64() }

// Mean returns the midpoint.
func (d Uniform) Mean() float64 { return (d.Lo + d.Hi) / 2 }

// Var returns (Hi-Lo)^2/12.
func (d Uniform) Var() float64 { w := d.Hi - d.Lo; return w * w / 12 }

func (d Uniform) String() string { return fmt.Sprintf("Uniform(%g,%g)", d.Lo, d.Hi) }

// Exponential has rate Lambda.
type Exponential struct {
	Lambda float64
}

// Sample draws an exponential variate.
func (d Exponential) Sample(r *Sub) float64 { return r.Exp() / d.Lambda }

// Mean returns 1/Lambda.
func (d Exponential) Mean() float64 { return 1 / d.Lambda }

// Var returns 1/Lambda^2.
func (d Exponential) Var() float64 { return 1 / (d.Lambda * d.Lambda) }

func (d Exponential) String() string { return fmt.Sprintf("Exponential(%g)", d.Lambda) }

// Gamma has the given Shape and Scale (mean Shape*Scale).
type Gamma struct {
	Shape, Scale float64
}

// Sample draws a gamma variate.
func (d Gamma) Sample(r *Sub) float64 { return r.Gamma(d.Shape, d.Scale) }

// Mean returns Shape*Scale.
func (d Gamma) Mean() float64 { return d.Shape * d.Scale }

// Var returns Shape*Scale^2.
func (d Gamma) Var() float64 { return d.Shape * d.Scale * d.Scale }

func (d Gamma) String() string { return fmt.Sprintf("Gamma(%g,%g)", d.Shape, d.Scale) }

// InverseGamma has the given Shape and Scale; used by the paper's Appendix D
// accuracy experiment to draw per-tuple means and variances.
type InverseGamma struct {
	Shape, Scale float64
}

// Sample draws 1/Gamma(Shape, 1/Scale).
func (d InverseGamma) Sample(r *Sub) float64 { return 1 / r.Gamma(d.Shape, 1/d.Scale) }

// Mean returns Scale/(Shape-1) for Shape > 1, else NaN.
func (d InverseGamma) Mean() float64 {
	if d.Shape <= 1 {
		return math.NaN()
	}
	return d.Scale / (d.Shape - 1)
}

// Var returns Scale^2/((Shape-1)^2 (Shape-2)) for Shape > 2, else NaN.
func (d InverseGamma) Var() float64 {
	if d.Shape <= 2 {
		return math.NaN()
	}
	a := d.Shape - 1
	return d.Scale * d.Scale / (a * a * (d.Shape - 2))
}

func (d InverseGamma) String() string { return fmt.Sprintf("InverseGamma(%g,%g)", d.Shape, d.Scale) }

// Lognormal is exp(N(Mu, Sigma^2)); a subexponential (heavy-tailed)
// distribution used in the Appendix B regime experiments.
type Lognormal struct {
	Mu, Sigma float64
}

// Sample draws a lognormal variate.
func (d Lognormal) Sample(r *Sub) float64 { return math.Exp(d.Mu + d.Sigma*r.Norm()) }

// Mean returns exp(Mu + Sigma^2/2).
func (d Lognormal) Mean() float64 { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }

// Var returns (exp(Sigma^2)-1) exp(2Mu+Sigma^2).
func (d Lognormal) Var() float64 {
	s2 := d.Sigma * d.Sigma
	return (math.Exp(s2) - 1) * math.Exp(2*d.Mu+s2)
}

func (d Lognormal) String() string { return fmt.Sprintf("Lognormal(%g,%g)", d.Mu, d.Sigma) }

// Pareto is the Pareto distribution with scale Xm and shape Alpha;
// the canonical heavy tail for the Appendix B experiments.
type Pareto struct {
	Xm, Alpha float64
}

// Sample draws by inversion.
func (d Pareto) Sample(r *Sub) float64 {
	return d.Xm / math.Pow(r.Float64Open(), 1/d.Alpha)
}

// Mean returns Alpha*Xm/(Alpha-1) for Alpha > 1, else NaN (infinite).
func (d Pareto) Mean() float64 {
	if d.Alpha <= 1 {
		return math.NaN()
	}
	return d.Alpha * d.Xm / (d.Alpha - 1)
}

// Var returns the variance for Alpha > 2, else NaN (infinite).
func (d Pareto) Var() float64 {
	if d.Alpha <= 2 {
		return math.NaN()
	}
	a := d.Alpha
	return d.Xm * d.Xm * a / ((a - 1) * (a - 1) * (a - 2))
}

func (d Pareto) String() string { return fmt.Sprintf("Pareto(%g,%g)", d.Xm, d.Alpha) }

// Bernoulli takes value 1 with probability P and 0 otherwise.
type Bernoulli struct {
	P float64
}

// Sample draws 0 or 1.
func (d Bernoulli) Sample(r *Sub) float64 {
	if r.Float64() < d.P {
		return 1
	}
	return 0
}

// Mean returns P.
func (d Bernoulli) Mean() float64 { return d.P }

// Var returns P(1-P).
func (d Bernoulli) Var() float64 { return d.P * (1 - d.P) }

func (d Bernoulli) String() string { return fmt.Sprintf("Bernoulli(%g)", d.P) }

// PoissonDist is the Poisson distribution with mean Lambda.
type PoissonDist struct {
	Lambda float64
}

// Sample draws a Poisson count as a float.
func (d PoissonDist) Sample(r *Sub) float64 { return float64(r.Poisson(d.Lambda)) }

// Mean returns Lambda.
func (d PoissonDist) Mean() float64 { return d.Lambda }

// Var returns Lambda.
func (d PoissonDist) Var() float64 { return d.Lambda }

func (d PoissonDist) String() string { return fmt.Sprintf("Poisson(%g)", d.Lambda) }

// Discrete samples index i with probability Weights[i]/sum(Weights) and
// returns Values[i]. Weights must be non-negative with a positive sum.
type Discrete struct {
	Values  []float64
	Weights []float64
}

// NewDiscrete validates and constructs a Discrete distribution.
func NewDiscrete(values, weights []float64) (Discrete, error) {
	if len(values) == 0 || len(values) != len(weights) {
		return Discrete{}, fmt.Errorf("prng: Discrete needs equal-length non-empty values/weights (%d vs %d)", len(values), len(weights))
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return Discrete{}, fmt.Errorf("prng: Discrete weight %g is negative or NaN", w)
		}
		total += w
	}
	if total <= 0 {
		return Discrete{}, fmt.Errorf("prng: Discrete weights sum to %g, need > 0", total)
	}
	return Discrete{Values: values, Weights: weights}, nil
}

// Sample draws by linear scan over the CDF; value lists in VG parameter
// tables are short, so no alias table is needed.
func (d Discrete) Sample(r *Sub) float64 {
	total := 0.0
	for _, w := range d.Weights {
		total += w
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range d.Weights {
		acc += w
		if u < acc {
			return d.Values[i]
		}
	}
	return d.Values[len(d.Values)-1]
}

// Mean returns the weighted mean.
func (d Discrete) Mean() float64 {
	total, m := 0.0, 0.0
	for i, w := range d.Weights {
		total += w
		m += w * d.Values[i]
	}
	return m / total
}

// Var returns the weighted variance.
func (d Discrete) Var() float64 {
	mean := d.Mean()
	total, v := 0.0, 0.0
	for i, w := range d.Weights {
		total += w
		dv := d.Values[i] - mean
		v += w * dv * dv
	}
	return v / total
}

func (d Discrete) String() string { return fmt.Sprintf("Discrete(%d values)", len(d.Values)) }

// Mixture samples component i with probability Weights[i]/sum and then
// samples from Components[i].
type Mixture struct {
	Components []Dist
	Weights    []float64
}

// Sample draws from a randomly chosen component.
func (d Mixture) Sample(r *Sub) float64 {
	total := 0.0
	for _, w := range d.Weights {
		total += w
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range d.Weights {
		acc += w
		if u < acc {
			return d.Components[i].Sample(r)
		}
	}
	return d.Components[len(d.Components)-1].Sample(r)
}

// Mean returns the weighted mean of component means.
func (d Mixture) Mean() float64 {
	total, m := 0.0, 0.0
	for i, w := range d.Weights {
		total += w
		m += w * d.Components[i].Mean()
	}
	return m / total
}

// Var returns the mixture variance via the law of total variance.
func (d Mixture) Var() float64 {
	mean := d.Mean()
	total, v := 0.0, 0.0
	for i, w := range d.Weights {
		total += w
		mi := d.Components[i].Mean()
		v += w * (d.Components[i].Var() + (mi-mean)*(mi-mean))
	}
	return v / total
}

func (d Mixture) String() string { return fmt.Sprintf("Mixture(%d components)", len(d.Components)) }
