package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamRandomAccessEqualsRepeatedAccess(t *testing.T) {
	// Property: At(i) is a pure function of (seed, i); revisiting an element
	// in any order reproduces the identical draw sequence.
	f := func(seed, i uint64) bool {
		s := NewStream(seed)
		a1 := s.At(i)
		a2 := s.At(i)
		for k := 0; k < 8; k++ {
			if a1.Uint64() != a2.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStreamElementsIndependentOfVisitOrder(t *testing.T) {
	s := NewStream(42)
	forward := make([]float64, 100)
	for i := range forward {
		forward[i] = s.At(uint64(i)).Float64()
	}
	for i := 99; i >= 0; i-- {
		if got := s.At(uint64(i)).Float64(); got != forward[i] {
			t.Fatalf("element %d differs on reverse visit: %v vs %v", i, got, forward[i])
		}
	}
}

func TestStreamDistinctSeedsDiffer(t *testing.T) {
	a, b := NewStream(1).At(0), NewStream(2).At(0)
	same := 0
	for i := 0; i < 16; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds collided %d/16 times", same)
	}
}

func TestDeriveIsDeterministicAndSpreads(t *testing.T) {
	s := NewStream(7)
	if s.Derive(3).Seed() != s.Derive(3).Seed() {
		t.Fatal("Derive must be deterministic")
	}
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		seen[s.Derive(i).Seed()] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("Derive collisions: %d distinct of 1000", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewSub(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		g := r.Float64Open()
		if g <= 0 || g >= 1 {
			t.Fatalf("Float64Open out of range: %v", g)
		}
	}
}

func TestIntnBoundsAndUniformity(t *testing.T) {
	r := NewSub(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		k := r.Intn(n)
		if k < 0 || k >= n {
			t.Fatalf("Intn out of range: %d", k)
		}
		counts[k]++
	}
	want := float64(trials) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %g", k, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSub(1).Intn(0)
}

// checkMoments samples n variates and verifies the sample mean and variance
// are within tol standard errors of the analytic values.
func checkMoments(t *testing.T, d Dist, n int, seed uint64) {
	t.Helper()
	r := NewSub(seed)
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := d.Sample(r)
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(n)
	varEst := sumSq/float64(n) - mean*mean
	if m := d.Mean(); !math.IsNaN(m) {
		se := math.Sqrt(d.Var() / float64(n))
		if math.Abs(mean-m) > 6*se {
			t.Errorf("%s: sample mean %g vs analytic %g (se %g)", d, mean, m, se)
		}
	}
	if v := d.Var(); !math.IsNaN(v) && v > 0 {
		if math.Abs(varEst-v)/v > 0.15 {
			t.Errorf("%s: sample var %g vs analytic %g", d, varEst, v)
		}
	}
}

func TestDistributionMoments(t *testing.T) {
	const n = 200000
	disc, err := NewDiscrete([]float64{1, 2, 5}, []float64{0.2, 0.3, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	dists := []Dist{
		Normal{Mu: 3, Sigma: 2},
		Uniform{Lo: -1, Hi: 5},
		Exponential{Lambda: 0.5},
		Gamma{Shape: 3, Scale: 2},
		Gamma{Shape: 0.5, Scale: 1.5},
		InverseGamma{Shape: 3, Scale: 1},
		Lognormal{Mu: 0, Sigma: 0.5},
		Pareto{Xm: 1, Alpha: 4},
		Bernoulli{P: 0.3},
		PoissonDist{Lambda: 4},
		PoissonDist{Lambda: 60},
		disc,
		Mixture{Components: []Dist{Normal{0, 1}, Normal{10, 1}}, Weights: []float64{0.5, 0.5}},
	}
	for i, d := range dists {
		checkMoments(t, d, n, uint64(1000+i))
	}
}

func TestNormalTailProbability(t *testing.T) {
	// P(Z > 2) ≈ 0.02275 for standard normal.
	r := NewSub(77)
	d := Normal{Mu: 0, Sigma: 1}
	const n = 400000
	hits := 0
	for i := 0; i < n; i++ {
		if d.Sample(r) > 2 {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.02275) > 0.002 {
		t.Fatalf("P(Z>2) estimate %g, want ~0.02275", p)
	}
}

func TestParetoHeavyTail(t *testing.T) {
	// Pareto(1, 1.5): P(X > x) = x^{-1.5}.
	r := NewSub(123)
	d := Pareto{Xm: 1, Alpha: 1.5}
	const n = 300000
	hits := 0
	for i := 0; i < n; i++ {
		if d.Sample(r) > 10 {
			hits++
		}
	}
	want := math.Pow(10, -1.5)
	got := float64(hits) / n
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("P(X>10) = %g, want %g", got, want)
	}
	if !math.IsNaN(Pareto{Xm: 1, Alpha: 0.9}.Mean()) {
		t.Fatal("Pareto mean should be NaN for alpha <= 1")
	}
}

func TestDiscreteValidation(t *testing.T) {
	if _, err := NewDiscrete(nil, nil); err == nil {
		t.Error("empty discrete must fail")
	}
	if _, err := NewDiscrete([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, err := NewDiscrete([]float64{1}, []float64{-1}); err == nil {
		t.Error("negative weight must fail")
	}
	if _, err := NewDiscrete([]float64{1, 2}, []float64{0, 0}); err == nil {
		t.Error("zero-sum weights must fail")
	}
}

func TestDiscreteOnlySamplesGivenValues(t *testing.T) {
	d, _ := NewDiscrete([]float64{2, 4, 8}, []float64{1, 1, 1})
	r := NewSub(5)
	for i := 0; i < 1000; i++ {
		v := d.Sample(r)
		if v != 2 && v != 4 && v != 8 {
			t.Fatalf("sampled %v not in value set", v)
		}
	}
}

func TestGammaPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSub(1).Gamma(-1, 1)
}

func TestPoissonSmallLambdaExact(t *testing.T) {
	// P(X = 0) = e^{-lambda}.
	r := NewSub(31)
	const lambda, n = 2.0, 200000
	zeros := 0
	for i := 0; i < n; i++ {
		if r.Poisson(lambda) == 0 {
			zeros++
		}
	}
	want := math.Exp(-lambda)
	got := float64(zeros) / n
	if math.Abs(got-want) > 0.005 {
		t.Fatalf("P(X=0) = %g, want %g", got, want)
	}
}

func BenchmarkStreamAt(b *testing.B) {
	b.ReportAllocs()
	s := NewStream(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.At(uint64(i)).Float64()
	}
	_ = sink
}

func BenchmarkNormalSample(b *testing.B) {
	b.ReportAllocs()
	r := NewSub(1)
	d := Normal{Mu: 0, Sigma: 1}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += d.Sample(r)
	}
	_ = sink
}
