package prng

import (
	"fmt"
	"math"
)

// This file adds the heavier-tailed and bounded distributions used in
// quantitative risk management (McNeil, Frey, Embrechts — the paper's
// reference [16]): Student-t for fat-tailed returns, Weibull for failure
// and delay times, Beta for bounded fractions, and the Poisson-Gamma
// compound behind Bayesian demand models.

// StudentT is the location-scale Student-t distribution with Nu degrees of
// freedom; for small Nu it is heavy-tailed (infinite variance at Nu <= 2).
type StudentT struct {
	Nu, Mu, Sigma float64
}

// Sample draws via the normal/chi-square representation.
func (d StudentT) Sample(r *Sub) float64 {
	z := r.Norm()
	// Chi-square(nu) = Gamma(nu/2, 2).
	w := r.Gamma(d.Nu/2, 2)
	return d.Mu + d.Sigma*z/math.Sqrt(w/d.Nu)
}

// Mean returns Mu for Nu > 1, else NaN.
func (d StudentT) Mean() float64 {
	if d.Nu <= 1 {
		return math.NaN()
	}
	return d.Mu
}

// Var returns Sigma^2 * Nu/(Nu-2) for Nu > 2, else NaN.
func (d StudentT) Var() float64 {
	if d.Nu <= 2 {
		return math.NaN()
	}
	return d.Sigma * d.Sigma * d.Nu / (d.Nu - 2)
}

func (d StudentT) String() string {
	return fmt.Sprintf("StudentT(%g,%g,%g)", d.Nu, d.Mu, d.Sigma)
}

// Weibull has the given Shape (k) and Scale (lambda).
type Weibull struct {
	Shape, Scale float64
}

// Sample draws by inversion.
func (d Weibull) Sample(r *Sub) float64 {
	return d.Scale * math.Pow(r.Exp(), 1/d.Shape)
}

// Mean returns lambda * Gamma(1 + 1/k).
func (d Weibull) Mean() float64 {
	return d.Scale * math.Gamma(1+1/d.Shape)
}

// Var returns lambda^2 (Gamma(1+2/k) - Gamma(1+1/k)^2).
func (d Weibull) Var() float64 {
	g1 := math.Gamma(1 + 1/d.Shape)
	g2 := math.Gamma(1 + 2/d.Shape)
	return d.Scale * d.Scale * (g2 - g1*g1)
}

func (d Weibull) String() string { return fmt.Sprintf("Weibull(%g,%g)", d.Shape, d.Scale) }

// Beta is the Beta(A, B) distribution on (0, 1).
type Beta struct {
	A, B float64
}

// Sample draws via two gammas.
func (d Beta) Sample(r *Sub) float64 {
	x := r.Gamma(d.A, 1)
	y := r.Gamma(d.B, 1)
	return x / (x + y)
}

// Mean returns A/(A+B).
func (d Beta) Mean() float64 { return d.A / (d.A + d.B) }

// Var returns AB/((A+B)^2 (A+B+1)).
func (d Beta) Var() float64 {
	s := d.A + d.B
	return d.A * d.B / (s * s * (s + 1))
}

func (d Beta) String() string { return fmt.Sprintf("Beta(%g,%g)", d.A, d.B) }

// PoissonGamma is the compound used in Bayesian demand modeling: demand ~
// Poisson(lambda) with lambda ~ Gamma(Shape, Scale). Marginally this is
// negative binomial, over-dispersed relative to Poisson.
type PoissonGamma struct {
	Shape, Scale float64
}

// Sample draws lambda then the count.
func (d PoissonGamma) Sample(r *Sub) float64 {
	lambda := r.Gamma(d.Shape, d.Scale)
	if lambda <= 0 {
		return 0
	}
	return float64(r.Poisson(lambda))
}

// Mean returns Shape*Scale.
func (d PoissonGamma) Mean() float64 { return d.Shape * d.Scale }

// Var returns the negative-binomial variance mean*(1+Scale).
func (d PoissonGamma) Var() float64 { return d.Shape * d.Scale * (1 + d.Scale) }

func (d PoissonGamma) String() string {
	return fmt.Sprintf("PoissonGamma(%g,%g)", d.Shape, d.Scale)
}

// Triangular is the triangular distribution on [Lo, Hi] with mode at Mode;
// the standard "expert judgment" distribution for logistics times.
type Triangular struct {
	Lo, Mode, Hi float64
}

// Sample draws by inversion.
func (d Triangular) Sample(r *Sub) float64 {
	u := r.Float64()
	fc := (d.Mode - d.Lo) / (d.Hi - d.Lo)
	if u < fc {
		return d.Lo + math.Sqrt(u*(d.Hi-d.Lo)*(d.Mode-d.Lo))
	}
	return d.Hi - math.Sqrt((1-u)*(d.Hi-d.Lo)*(d.Hi-d.Mode))
}

// Mean returns (Lo+Mode+Hi)/3.
func (d Triangular) Mean() float64 { return (d.Lo + d.Mode + d.Hi) / 3 }

// Var returns the triangular variance.
func (d Triangular) Var() float64 {
	a, c, b := d.Lo, d.Mode, d.Hi
	return (a*a + b*b + c*c - a*b - a*c - b*c) / 18
}

func (d Triangular) String() string {
	return fmt.Sprintf("Triangular(%g,%g,%g)", d.Lo, d.Mode, d.Hi)
}
