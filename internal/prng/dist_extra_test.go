package prng

import (
	"math"
	"testing"
)

func TestExtraDistributionMoments(t *testing.T) {
	const n = 200000
	dists := []Dist{
		StudentT{Nu: 8, Mu: 2, Sigma: 1.5},
		Weibull{Shape: 2, Scale: 3},
		Weibull{Shape: 0.8, Scale: 1},
		Beta{A: 2, B: 5},
		Beta{A: 0.5, B: 0.5},
		PoissonGamma{Shape: 3, Scale: 2},
		Triangular{Lo: 1, Mode: 2, Hi: 6},
	}
	for i, d := range dists {
		checkMoments(t, d, n, uint64(5000+i))
	}
}

func TestStudentTHeavyTails(t *testing.T) {
	// t with nu=3 has much fatter tails than a variance-matched normal:
	// P(|T| > 5) for t3 = 2 * 0.0077 ≈ 0.0154 vs ~4e-3 for N(0, sqrt(3)).
	r := NewSub(61)
	d := StudentT{Nu: 3, Mu: 0, Sigma: 1}
	const n = 300000
	hits := 0
	for i := 0; i < n; i++ {
		if math.Abs(d.Sample(r)) > 5 {
			hits++
		}
	}
	p := float64(hits) / n
	if p < 0.012 || p > 0.019 {
		t.Fatalf("P(|T3| > 5) = %g, want ≈ 0.0154", p)
	}
	if !math.IsNaN(StudentT{Nu: 2, Mu: 0, Sigma: 1}.Var()) {
		t.Fatal("variance must be undefined at nu <= 2")
	}
	if !math.IsNaN(StudentT{Nu: 1, Mu: 0, Sigma: 1}.Mean()) {
		t.Fatal("mean must be undefined at nu <= 1")
	}
}

func TestBetaSupport(t *testing.T) {
	r := NewSub(62)
	d := Beta{A: 2, B: 3}
	for i := 0; i < 10000; i++ {
		x := d.Sample(r)
		if x <= 0 || x >= 1 {
			t.Fatalf("Beta sample %g outside (0,1)", x)
		}
	}
}

func TestTriangularSupport(t *testing.T) {
	r := NewSub(63)
	d := Triangular{Lo: -1, Mode: 0, Hi: 4}
	for i := 0; i < 10000; i++ {
		x := d.Sample(r)
		if x < -1 || x > 4 {
			t.Fatalf("Triangular sample %g outside [-1,4]", x)
		}
	}
	// CDF at the mode is (mode-lo)/(hi-lo) = 0.2.
	below := 0
	for i := 0; i < 100000; i++ {
		if d.Sample(r) < 0 {
			below++
		}
	}
	if p := float64(below) / 100000; math.Abs(p-0.2) > 0.01 {
		t.Fatalf("P(X < mode) = %g, want 0.2", p)
	}
}

func TestPoissonGammaOverdispersion(t *testing.T) {
	// Negative binomial: Var = mean * (1 + scale) > mean.
	r := NewSub(64)
	d := PoissonGamma{Shape: 4, Scale: 3}
	const n = 150000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := d.Sample(r)
		if x != math.Trunc(x) || x < 0 {
			t.Fatalf("count sample %g not a non-negative integer", x)
		}
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 1.5*mean {
		t.Fatalf("no overdispersion: var %g vs mean %g", variance, mean)
	}
}
