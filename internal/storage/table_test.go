package storage

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/expr"
	"repro/internal/types"
)

func sampleTable(t *testing.T) *Table {
	t.Helper()
	tbl := NewTable("emp", types.NewSchema(
		types.Column{Name: "eid", Kind: types.KindInt},
		types.Column{Name: "name", Kind: types.KindString},
		types.Column{Name: "sal", Kind: types.KindFloat},
	))
	rows := []types.Row{
		{types.NewInt(1), types.NewString("Joe"), types.NewFloat(28000)},
		{types.NewInt(2), types.NewString("Sue"), types.NewFloat(24000)},
		{types.NewInt(3), types.NewString("Jim"), types.NewFloat(77000)},
	}
	for _, r := range rows {
		if err := tbl.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestAppendArityCheck(t *testing.T) {
	tbl := sampleTable(t)
	if err := tbl.Append(types.Row{types.NewInt(9)}); err == nil {
		t.Fatal("arity mismatch must error")
	}
	if tbl.NumRows() != 3 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
}

func TestSelect(t *testing.T) {
	tbl := sampleTable(t)
	out, err := tbl.Select(expr.B(expr.OpGt, expr.C("sal"), expr.F(25000)))
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("Select rows = %d, want 2", out.NumRows())
	}
	if _, err := tbl.Select(expr.C("missing")); err == nil {
		t.Fatal("bad predicate column must error")
	}
}

func TestProject(t *testing.T) {
	tbl := sampleTable(t)
	out, err := tbl.Project("name", "sal")
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema().Len() != 2 || out.Schema().Col(0).Name != "name" {
		t.Fatalf("Project schema = %s", out.Schema())
	}
	if out.Row(0)[0].Str() != "Joe" || out.Row(0)[1].Float() != 28000 {
		t.Fatalf("Project row = %v", out.Row(0))
	}
	if _, err := tbl.Project("nope"); err == nil {
		t.Fatal("bad projection must error")
	}
}

func TestSortBy(t *testing.T) {
	tbl := sampleTable(t)
	if err := tbl.SortBy("sal"); err != nil {
		t.Fatal(err)
	}
	if tbl.Row(0)[1].Str() != "Sue" || tbl.Row(2)[1].Str() != "Jim" {
		t.Fatalf("sorted order wrong: %v %v", tbl.Row(0), tbl.Row(2))
	}
	if err := tbl.SortBy("missing"); err == nil {
		t.Fatal("SortBy on missing column must error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tbl := sampleTable(t)
	cp := tbl.Clone()
	cp.Row(0)[0] = types.NewInt(99)
	if tbl.Row(0)[0].Int() == 99 {
		t.Fatal("Clone must not alias rows")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := sampleTable(t)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("emp", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tbl.NumRows() {
		t.Fatalf("round-trip rows = %d", back.NumRows())
	}
	for i := 0; i < tbl.NumRows(); i++ {
		if !back.Row(i).Equal(tbl.Row(i)) {
			t.Fatalf("row %d mismatch: %v vs %v", i, back.Row(i), tbl.Row(i))
		}
	}
	if back.Schema().Col(2).Kind != types.KindFloat {
		t.Fatalf("kind lost in round trip: %s", back.Schema())
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	tbl := sampleTable(t)
	path := filepath.Join(t.TempDir(), "emp.csv")
	if err := tbl.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV("emp", path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 3 {
		t.Fatalf("rows = %d", back.NumRows())
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("x", bytes.NewBufferString("badheader\n1\n")); err == nil {
		t.Fatal("header without kind must error")
	}
	if _, err := ReadCSV("x", bytes.NewBufferString("a:WAT\n1\n")); err == nil {
		t.Fatal("unknown kind must error")
	}
	if _, err := ReadCSV("x", bytes.NewBufferString("a:INT\nnotanint\n")); err == nil {
		t.Fatal("bad value must error")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	tbl := sampleTable(t)
	c.Put(tbl)
	got, ok := c.Get("EMP") // case-insensitive
	if !ok || got != tbl {
		t.Fatal("Get failed")
	}
	if names := c.Names(); len(names) != 1 || names[0] != "emp" {
		t.Fatalf("Names = %v", names)
	}
	if !c.Drop("emp") || c.Drop("emp") {
		t.Fatal("Drop semantics wrong")
	}
	if _, ok := c.Get("emp"); ok {
		t.Fatal("table should be gone")
	}
}

func TestCatalogMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCatalog().MustGet("missing")
}
