// Package storage provides the deterministic relational substrate: in-memory
// tables, a catalog, and CSV import/export. Parameter tables for VG
// functions (the paper's means(CID,m) and the TPC-H-like orders table) live
// here, as do materialized results such as FTABLE.
package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"

	"repro/internal/expr"
	"repro/internal/types"
)

// Table is an ordered, in-memory relation.
type Table struct {
	name   string
	schema *types.Schema
	rows   []types.Row
}

// NewTable creates an empty table with the given name and schema.
func NewTable(name string, schema *types.Schema) *Table {
	return &Table{name: name, schema: schema}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *types.Schema { return t.schema }

// NumRows returns the row count.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns the i-th row without copying; callers must not mutate it.
func (t *Table) Row(i int) types.Row { return t.rows[i] }

// Append adds a row after checking arity against the schema.
func (t *Table) Append(r types.Row) error {
	if len(r) != t.schema.Len() {
		return fmt.Errorf("storage: row arity %d does not match schema %s of %s", len(r), t.schema, t.name)
	}
	t.rows = append(t.rows, r)
	return nil
}

// MustAppend appends and panics on arity mismatch; for generator code.
func (t *Table) MustAppend(r types.Row) {
	if err := t.Append(r); err != nil {
		panic(err)
	}
}

// Rows returns the backing slice; callers must not mutate it.
func (t *Table) Rows() []types.Row { return t.rows }

// Select returns a new table containing rows satisfying pred.
func (t *Table) Select(pred expr.Expr) (*Table, error) {
	c, err := expr.Compile(pred, t.schema)
	if err != nil {
		return nil, err
	}
	out := NewTable(t.name, t.schema)
	for _, r := range t.rows {
		if c.EvalBool(r) {
			out.rows = append(out.rows, r)
		}
	}
	return out, nil
}

// Project returns a new table with only the named columns.
func (t *Table) Project(names ...string) (*Table, error) {
	idx := make([]int, len(names))
	for i, n := range names {
		j := t.schema.Lookup(n)
		if j < 0 {
			return nil, fmt.Errorf("storage: column %q not in %s%s", n, t.name, t.schema)
		}
		idx[i] = j
	}
	out := NewTable(t.name, t.schema.Project(idx))
	for _, r := range t.rows {
		nr := make(types.Row, len(idx))
		for i, j := range idx {
			nr[i] = r[j]
		}
		out.rows = append(out.rows, nr)
	}
	return out, nil
}

// SortBy sorts rows in place by the named column, ascending.
func (t *Table) SortBy(col string) error {
	j := t.schema.Lookup(col)
	if j < 0 {
		return fmt.Errorf("storage: column %q not in %s", col, t.name)
	}
	sort.SliceStable(t.rows, func(a, b int) bool {
		return t.rows[a][j].Compare(t.rows[b][j]) < 0
	})
	return nil
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	out := NewTable(t.name, t.schema)
	out.rows = make([]types.Row, len(t.rows))
	for i, r := range t.rows {
		out.rows[i] = r.Clone()
	}
	return out
}

// String renders a short description.
func (t *Table) String() string {
	return fmt.Sprintf("%s%s [%d rows]", t.name, t.schema, len(t.rows))
}

// WriteCSV writes the table with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, t.schema.Len())
	for i := 0; i < t.schema.Len(); i++ {
		c := t.schema.Col(i)
		header[i] = fmt.Sprintf("%s:%s", c.Name, c.Kind)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, t.schema.Len())
	for _, r := range t.rows {
		for i, v := range r {
			rec[i] = v.String()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a table written by WriteCSV; the header carries name:kind.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("storage: read CSV header: %w", err)
	}
	cols := make([]types.Column, len(header))
	for i, h := range header {
		parts := strings.SplitN(h, ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("storage: CSV header %q missing :kind suffix", h)
		}
		var k types.Kind
		switch strings.ToUpper(parts[1]) {
		case "INT":
			k = types.KindInt
		case "FLOAT":
			k = types.KindFloat
		case "STRING":
			k = types.KindString
		case "BOOL":
			k = types.KindBool
		default:
			return nil, fmt.Errorf("storage: unknown kind %q in CSV header", parts[1])
		}
		cols[i] = types.Column{Name: parts[0], Kind: k}
	}
	t := NewTable(name, types.NewSchema(cols...))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("storage: read CSV row: %w", err)
		}
		row := make(types.Row, len(cols))
		for i, s := range rec {
			v, err := types.ParseValue(s, cols[i].Kind)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		if err := t.Append(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// SaveCSV writes the table to a file path.
func (t *Table) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadCSV reads a table from a file path.
func LoadCSV(name, path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(name, f)
}

// Catalog is a concurrency-safe registry of named tables.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Put registers or replaces a table under its own name.
func (c *Catalog) Put(t *Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[strings.ToLower(t.Name())] = t
}

// Get looks up a table by name.
func (c *Catalog) Get(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	return t, ok
}

// MustGet looks up a table and panics when missing.
func (c *Catalog) MustGet(name string) *Table {
	t, ok := c.Get(name)
	if !ok {
		panic(fmt.Sprintf("storage: table %q not in catalog", name))
	}
	return t
}

// Drop removes a table; it reports whether the table existed.
func (c *Catalog) Drop(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	_, ok := c.tables[key]
	delete(c.tables, key)
	return ok
}

// Names returns all table names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
