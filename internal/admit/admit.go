// Package admit is the serving layer's admission-control subsystem: a
// bounded priority queue in front of a fixed pool of query-execution
// slots. It replaces the flat semaphore that fronted every request in
// internal/server — under a traffic spike a semaphore queues without
// bound, sheds nothing, and lets slow queries starve fast ones; the
// controller here makes overload behavior explicit:
//
//   - At most MaxConcurrent requests execute at once. A request that
//     finds a free slot (and an empty queue) is admitted immediately.
//   - Excess requests wait in a per-class FIFO queue of bounded total
//     depth. Classes are strict priorities: a freed slot always goes to
//     the oldest waiter of the highest-priority non-empty class.
//   - A request arriving at a full queue is shed on the fast path with
//     ErrQueueFull (HTTP 429 + Retry-After upstream) — queue growth is
//     bounded by construction.
//   - A queued request that waits longer than QueueWait is shed with
//     ErrQueueWait: a queue deeper than the server can drain within the
//     wait budget only adds latency, never goodput.
//   - Drain rejects every queued waiter with ErrDraining (HTTP 503) and
//     sheds all later arrivals, so graceful shutdown never leaves parked
//     requests hanging until the grace timeout.
//
// The controller is deliberately engine-agnostic — it hands out slots,
// not queries — so the planned scale-out coordinator can reuse it
// per-worker with identical shedding semantics.
package admit

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Class is a request's SLO/priority class. Lower values are served
// first; within a class the queue is FIFO.
type Class int

const (
	// Interactive requests (dashboards, human-in-the-loop queries) jump
	// every other class.
	Interactive Class = iota
	// Normal is the default class.
	Normal
	// Batch requests (reports, bulk recomputation) yield to everything.
	Batch
	numClasses
)

// String names the class as it appears on the wire ("interactive",
// "normal", "batch").
func (c Class) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case Normal:
		return "normal"
	case Batch:
		return "batch"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ParseClass maps a wire priority string to its Class. The empty string
// selects Normal; unknown strings are an error so typos do not silently
// demote (or promote) a request.
func ParseClass(s string) (Class, error) {
	switch s {
	case "", "normal":
		return Normal, nil
	case "interactive":
		return Interactive, nil
	case "batch":
		return Batch, nil
	default:
		return Normal, fmt.Errorf("admit: unknown priority %q (use interactive, normal, or batch)", s)
	}
}

// Sentinel errors; test with errors.Is. The HTTP layer maps ErrQueueFull
// and ErrQueueWait to 429 (overload shedding, retry later) and
// ErrDraining to 503 (shutting down, try another replica).
var (
	ErrQueueFull = errors.New("admit: queue full")
	ErrQueueWait = errors.New("admit: queue-wait deadline exceeded")
	ErrDraining  = errors.New("admit: draining")
)

// Options configures a Controller.
type Options struct {
	// MaxConcurrent is the number of execution slots; must be >= 1.
	MaxConcurrent int
	// MaxQueue bounds the total number of queued (admitted-but-waiting)
	// requests across all classes. 0 selects 4*MaxConcurrent; negative
	// disables queueing entirely (every request beyond the slots is shed).
	MaxQueue int
	// QueueWait bounds how long one request may wait for a slot before it
	// is shed with ErrQueueWait. 0 selects 2s.
	QueueWait time.Duration
}

// waiter is one queued request. ready is closed exactly once, by the
// goroutine that removes the waiter from its queue (grant or drain);
// err is set before the close. elem-style membership is tracked by pos:
// a waiter still in its queue has pos >= 0.
type waiter struct {
	ready chan struct{}
	err   error
	enq   time.Time
	class Class
}

// waitRingSize is the per-class window of recent queue-wait samples the
// p95 estimate is computed over.
const waitRingSize = 256

// classState is the per-class queue plus its wait statistics.
type classState struct {
	q        []*waiter // FIFO: index 0 is the oldest
	admitted uint64
	waits    [waitRingSize]time.Duration
	nWaits   uint64
}

// Controller is the admission-control state machine. Create one with
// New; all methods are safe for concurrent use.
type Controller struct {
	opts Options

	mu       sync.Mutex
	inflight int
	queued   int
	draining bool
	classes  [numClasses]classState

	admitted  uint64
	shed      uint64
	timedOut  uint64
	cancelled uint64
	drained   uint64
	completed uint64
	degraded  uint64
}

// New builds a controller. MaxConcurrent < 1 selects 1.
func New(opts Options) *Controller {
	if opts.MaxConcurrent < 1 {
		opts.MaxConcurrent = 1
	}
	switch {
	case opts.MaxQueue == 0:
		opts.MaxQueue = 4 * opts.MaxConcurrent
	case opts.MaxQueue < 0:
		opts.MaxQueue = 0
	}
	if opts.QueueWait <= 0 {
		opts.QueueWait = 2 * time.Second
	}
	return &Controller{opts: opts}
}

// MaxConcurrent reports the slot count.
func (c *Controller) MaxConcurrent() int { return c.opts.MaxConcurrent }

// QueueWait reports the queue-wait budget.
func (c *Controller) QueueWait() time.Duration { return c.opts.QueueWait }

// RetryAfterSeconds is the Retry-After hint attached to shed responses:
// the queue-wait budget rounded up to whole seconds (at least 1) — a
// client retrying sooner would land in the same overloaded window.
func (c *Controller) RetryAfterSeconds() int {
	s := int((c.opts.QueueWait + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// Acquire takes one execution slot for a request of the given class,
// waiting in the class's FIFO queue when all slots are busy. It returns
// nil when the slot is held — the caller MUST call Release exactly once
// — or an admission error: ErrQueueFull / ErrQueueWait (shed),
// ErrDraining (shutdown), or the ctx cause when the caller disconnected
// while queued.
func (c *Controller) Acquire(ctx context.Context, class Class) error {
	if class < 0 || class >= numClasses {
		class = Normal
	}
	c.mu.Lock()
	if c.draining {
		c.drained++
		c.mu.Unlock()
		return ErrDraining
	}
	if c.inflight < c.opts.MaxConcurrent && c.queued == 0 {
		c.inflight++
		c.admitted++
		c.classes[class].admitted++
		c.recordWaitLocked(class, 0)
		c.mu.Unlock()
		return nil
	}
	if c.queued >= c.opts.MaxQueue {
		c.shed++
		inflight, queued := c.inflight, c.queued
		c.mu.Unlock()
		return fmt.Errorf("%w: %d executing, %d queued (limits %d/%d)",
			ErrQueueFull, inflight, queued, c.opts.MaxConcurrent, c.opts.MaxQueue)
	}
	w := &waiter{ready: make(chan struct{}), enq: time.Now(), class: class}
	cs := &c.classes[class]
	cs.q = append(cs.q, w)
	c.queued++
	c.mu.Unlock()

	timer := time.NewTimer(c.opts.QueueWait)
	defer timer.Stop()
	select {
	case <-w.ready:
		// Granted (err == nil, slot held) or drained (err == ErrDraining).
		return w.err
	case <-ctx.Done():
		if c.abandon(w, &c.cancelled) {
			return fmt.Errorf("admit: cancelled after queueing for %s: %w", time.Since(w.enq).Round(time.Millisecond), context.Cause(ctx))
		}
		// A grant (or drain) raced the disconnect: the close already
		// happened or is imminent. Give any granted slot straight back.
		<-w.ready
		if w.err == nil {
			c.Release()
		}
		return context.Cause(ctx)
	case <-timer.C:
		if c.abandon(w, &c.timedOut) {
			return fmt.Errorf("%w: waited %s for a slot (%d executing, limit %d)",
				ErrQueueWait, c.opts.QueueWait, c.opts.MaxConcurrent, c.opts.MaxConcurrent)
		}
		// The grant won the race by a hair — use the slot.
		<-w.ready
		return w.err
	}
}

// abandon removes w from its queue if it is still queued, bumping
// *counter. It returns false when w was already granted or drained — in
// that case w.ready is closed (or about to be) and w.err is settled.
func (c *Controller) abandon(w *waiter, counter *uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	cs := &c.classes[w.class]
	for i, q := range cs.q {
		if q == w {
			cs.q = append(cs.q[:i], cs.q[i+1:]...)
			c.queued--
			*counter++
			return true
		}
	}
	return false
}

// Release returns a slot. If any request is queued, the slot is handed
// directly to the oldest waiter of the highest-priority non-empty class
// (in-flight count unchanged); otherwise the slot frees.
func (c *Controller) Release() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.completed++
	for class := Class(0); class < numClasses; class++ {
		cs := &c.classes[class]
		if len(cs.q) == 0 {
			continue
		}
		w := cs.q[0]
		cs.q = cs.q[1:]
		c.queued--
		c.admitted++
		cs.admitted++
		c.recordWaitLocked(class, time.Since(w.enq))
		close(w.ready) // w.err stays nil: slot transferred
		return
	}
	c.inflight--
}

// NoteDegraded counts one request that completed with a degraded
// (partial, deadline-hit) result.
func (c *Controller) NoteDegraded() {
	c.mu.Lock()
	c.degraded++
	c.mu.Unlock()
}

// Drain rejects every queued waiter with ErrDraining and sheds all later
// Acquire calls. In-flight requests are unaffected; call it at the start
// of graceful shutdown so parked requests fail fast instead of hanging
// until the grace timeout.
func (c *Controller) Drain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.draining = true
	for class := range c.classes {
		cs := &c.classes[class]
		for _, w := range cs.q {
			w.err = ErrDraining
			c.drained++
			close(w.ready)
		}
		cs.q = nil
	}
	c.queued = 0
}

// ClassStats is the per-class view inside Stats.
type ClassStats struct {
	Class string `json:"class"`
	// QueueDepth is the number of requests currently waiting.
	QueueDepth int `json:"queue_depth"`
	// Admitted counts requests of this class ever granted a slot.
	Admitted uint64 `json:"admitted"`
	// WaitP95MS is the 95th-percentile queue wait over the last
	// waitRingSize admissions (milliseconds; fast-path admissions count
	// as zero wait).
	WaitP95MS float64 `json:"wait_p95_ms"`
}

// Stats is a consistent snapshot of the controller.
type Stats struct {
	MaxConcurrent int     `json:"max_concurrent"`
	MaxQueue      int     `json:"max_queue"`
	QueueWaitMS   float64 `json:"queue_wait_ms"`
	InFlight      int     `json:"in_flight"`
	QueueDepth    int     `json:"queue_depth"`
	Draining      bool    `json:"draining"`
	// Admitted counts slot grants; Completed counts Releases. Admitted -
	// Completed == InFlight at every instant.
	Admitted  uint64 `json:"admitted"`
	Completed uint64 `json:"completed"`
	// Shed counts fast-path queue-full rejections; TimedOut queue-wait
	// expiries; Cancelled client disconnects while queued; Drained
	// shutdown rejections (queued and arriving).
	Shed      uint64 `json:"shed"`
	TimedOut  uint64 `json:"timed_out"`
	Cancelled uint64 `json:"cancelled"`
	Drained   uint64 `json:"drained"`
	// Degraded counts requests that completed with a partial
	// (deadline-hit) result.
	Degraded uint64       `json:"degraded"`
	Classes  []ClassStats `json:"classes"`
}

// Stats snapshots the controller.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		MaxConcurrent: c.opts.MaxConcurrent,
		MaxQueue:      c.opts.MaxQueue,
		QueueWaitMS:   float64(c.opts.QueueWait.Microseconds()) / 1000,
		InFlight:      c.inflight,
		QueueDepth:    c.queued,
		Draining:      c.draining,
		Admitted:      c.admitted,
		Completed:     c.completed,
		Shed:          c.shed,
		TimedOut:      c.timedOut,
		Cancelled:     c.cancelled,
		Drained:       c.drained,
		Degraded:      c.degraded,
	}
	for class := Class(0); class < numClasses; class++ {
		cs := &c.classes[class]
		s.Classes = append(s.Classes, ClassStats{
			Class:      class.String(),
			QueueDepth: len(cs.q),
			Admitted:   cs.admitted,
			WaitP95MS:  waitP95MS(cs),
		})
	}
	return s
}

// recordWaitLocked folds one admission's queue wait into the class ring.
func (c *Controller) recordWaitLocked(class Class, d time.Duration) {
	cs := &c.classes[class]
	cs.waits[cs.nWaits%waitRingSize] = d
	cs.nWaits++
}

// waitP95MS computes the 95th percentile of the class's recent waits.
func waitP95MS(cs *classState) float64 {
	n := int(cs.nWaits)
	if n > waitRingSize {
		n = waitRingSize
	}
	if n == 0 {
		return 0
	}
	buf := make([]time.Duration, n)
	copy(buf, cs.waits[:n])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := (n*95 + 99) / 100
	if idx > 0 {
		idx--
	}
	return float64(buf[idx].Microseconds()) / 1000
}
