package admit

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// hold acquires a slot that the test releases explicitly.
func hold(t *testing.T, c *Controller, class Class) func() {
	t.Helper()
	if err := c.Acquire(context.Background(), class); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	var once sync.Once
	return func() { once.Do(c.Release) }
}

func TestFastPathAdmission(t *testing.T) {
	c := New(Options{MaxConcurrent: 2})
	r1 := hold(t, c, Normal)
	r2 := hold(t, c, Interactive)
	s := c.Stats()
	if s.InFlight != 2 || s.Admitted != 2 || s.QueueDepth != 0 {
		t.Fatalf("stats = %+v", s)
	}
	r1()
	r2()
	s = c.Stats()
	if s.InFlight != 0 || s.Completed != 2 {
		t.Fatalf("after release: %+v", s)
	}
}

func TestQueueFullSheds(t *testing.T) {
	c := New(Options{MaxConcurrent: 1, MaxQueue: -1, QueueWait: time.Second})
	release := hold(t, c, Normal)
	defer release()
	err := c.Acquire(context.Background(), Normal)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if s := c.Stats(); s.Shed != 1 {
		t.Fatalf("shed = %d", s.Shed)
	}
}

func TestQueueWaitDeadline(t *testing.T) {
	c := New(Options{MaxConcurrent: 1, MaxQueue: 4, QueueWait: 30 * time.Millisecond})
	release := hold(t, c, Normal)
	defer release()
	start := time.Now()
	err := c.Acquire(context.Background(), Normal)
	if !errors.Is(err, ErrQueueWait) {
		t.Fatalf("want ErrQueueWait, got %v", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("waited %s, budget was 30ms", waited)
	}
	if s := c.Stats(); s.TimedOut != 1 || s.QueueDepth != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPriorityOrderAndFIFO(t *testing.T) {
	c := New(Options{MaxConcurrent: 1, MaxQueue: 8, QueueWait: 5 * time.Second})
	release := hold(t, c, Normal)

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	queuedSoFar := 0
	enqueue := func(name string, class Class) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Acquire(context.Background(), class); err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			c.Release()
		}()
		// Deterministic enqueue order: wait until the queue has grown.
		queuedSoFar++
		deadline := time.Now().Add(5 * time.Second)
		for {
			if s := c.Stats(); s.QueueDepth >= queuedSoFar {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never queued", name)
			}
			time.Sleep(time.Millisecond)
		}
	}
	enqueue("batch-1", Batch)
	enqueue("normal-1", Normal)
	enqueue("normal-2", Normal)
	enqueue("interactive-1", Interactive)

	release()
	wg.Wait()
	want := []string{"interactive-1", "normal-1", "normal-2", "batch-1"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("service order = %v, want %v", order, want)
	}
}

func TestCancelWhileQueued(t *testing.T) {
	c := New(Options{MaxConcurrent: 1, MaxQueue: 4, QueueWait: 5 * time.Second})
	release := hold(t, c, Normal)
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- c.Acquire(ctx, Normal) }()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	err := <-errc
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if s := c.Stats(); s.Cancelled != 1 || s.QueueDepth != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDrainRejectsQueuedPromptly(t *testing.T) {
	c := New(Options{MaxConcurrent: 1, MaxQueue: 4, QueueWait: time.Minute})
	release := hold(t, c, Normal)
	errc := make(chan error, 1)
	go func() { errc <- c.Acquire(context.Background(), Normal) }()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	c.Drain()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrDraining) {
			t.Fatalf("want ErrDraining, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued waiter hung through Drain (the pre-admit-control shutdown bug)")
	}
	// Later arrivals are rejected too; the in-flight slot still releases.
	if err := c.Acquire(context.Background(), Normal); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain Acquire = %v", err)
	}
	release()
	if s := c.Stats(); s.InFlight != 0 || s.Drained != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestParseClass(t *testing.T) {
	for in, want := range map[string]Class{"": Normal, "normal": Normal, "interactive": Interactive, "batch": Batch} {
		got, err := ParseClass(in)
		if err != nil || got != want {
			t.Fatalf("ParseClass(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseClass("urgent"); err == nil {
		t.Fatal("unknown priority accepted")
	}
}

// TestHammerNoSlotLeak is the -race storm: many goroutines acquiring
// with mixed classes, random cancellation, and short queue waits, racing
// grants against timeouts and disconnects. Afterwards every slot must be
// recoverable and the counters must balance — a leaked slot here is
// exactly the bug that would brick a server after a traffic spike.
func TestHammerNoSlotLeak(t *testing.T) {
	const slots = 4
	c := New(Options{MaxConcurrent: slots, MaxQueue: 16, QueueWait: 10 * time.Millisecond})
	var wg sync.WaitGroup
	var held atomic.Int64
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 60; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				switch rng.Intn(3) {
				case 0: // disconnect while (possibly) queued
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(3))*time.Millisecond)
				case 1:
					ctx, cancel = context.WithCancel(ctx)
					go func(d time.Duration, cancel context.CancelFunc) {
						time.Sleep(d)
						cancel()
					}(time.Duration(rng.Intn(5))*time.Millisecond, cancel)
				}
				err := c.Acquire(ctx, Class(rng.Intn(int(numClasses))))
				if err == nil {
					if n := held.Add(1); n > slots {
						t.Errorf("%d slots held, limit %d", n, slots)
					}
					time.Sleep(time.Duration(rng.Intn(2)) * time.Millisecond)
					held.Add(-1)
					c.Release()
				}
				cancel()
			}
		}(g)
	}
	wg.Wait()

	s := c.Stats()
	if s.InFlight != 0 || s.QueueDepth != 0 {
		t.Fatalf("after storm: %+v", s)
	}
	if s.Admitted != s.Completed {
		t.Fatalf("admitted %d != completed %d (leaked slot)", s.Admitted, s.Completed)
	}
	// Full capacity must be immediately recoverable.
	var releases []func()
	for i := 0; i < slots; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		err := c.Acquire(ctx, Normal)
		cancel()
		if err != nil {
			t.Fatalf("slot %d unrecoverable after storm: %v", i, err)
		}
		releases = append(releases, c.Release)
	}
	for _, r := range releases {
		r()
	}
}

func TestStatsWaitP95(t *testing.T) {
	c := New(Options{MaxConcurrent: 1, MaxQueue: 4, QueueWait: time.Second})
	release := hold(t, c, Normal)
	done := make(chan error, 1)
	go func() { done <- c.Acquire(context.Background(), Normal) }()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	release()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	c.Release()
	var normal ClassStats
	for _, cs := range c.Stats().Classes {
		if cs.Class == "normal" {
			normal = cs
		}
	}
	if normal.Admitted != 2 {
		t.Fatalf("normal admitted = %d", normal.Admitted)
	}
	if normal.WaitP95MS < 10 {
		t.Fatalf("wait p95 = %gms, the queued request waited >= 20ms", normal.WaitP95MS)
	}
}
