package sqlish

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/types"
)

// Statement is a parsed SQL-ish statement.
type Statement interface{ stmt() }

// CreateRandomTable is the paper's §2 uncertain-table definition:
//
//	CREATE TABLE Losses (CID, val) AS
//	FOR EACH CID IN means
//	WITH myVal AS Normal(VALUES(m, 1.0))
//	SELECT CID, myVal.* FROM myVal
type CreateRandomTable struct {
	Name       string
	Cols       []string
	LoopVar    string
	ParamTable string
	VGAlias    string
	VGName     string
	VGParams   []expr.Expr
	// SelectItems map output columns to sources: "col" (parameter column)
	// or "alias.*" / "alias.col" (VG outputs).
	SelectItems []string
}

func (*CreateRandomTable) stmt() {}

// FromItem is one entry of a FROM clause.
type FromItem struct {
	Table string
	Alias string
}

// Domain is the conditioning clause DOMAIN name >= QUANTILE(q) (upper
// tail) or DOMAIN name <= QUANTILE(q) (lower tail).
type Domain struct {
	Name     string
	Lower    bool
	Quantile float64
}

// SelectItem is one item of an aggregation select list:
// SUM(a.x) AS loss, AVG(b.y), COUNT(*), ...
type SelectItem struct {
	Agg   string    // SUM, COUNT, AVG, MIN, MAX (upper-cased)
	Expr  expr.Expr // nil for COUNT(*)
	Alias string
}

// String renders the item in SQL-ish syntax.
func (it SelectItem) String() string {
	body := "*"
	if it.Expr != nil {
		body = it.Expr.String()
	}
	out := fmt.Sprintf("%s(%s)", it.Agg, body)
	if it.Alias != "" {
		out += " AS " + it.Alias
	}
	return out
}

// SelectStmt is an aggregation query — a multi-item aggregate select
// list, optional GROUP BY over deterministic expressions and HAVING over
// the aggregation output, and optionally the MCDB-R result-distribution
// clauses. When With is false the statement is an ordinary deterministic
// aggregate (used for follow-up queries over FTABLE).
type SelectStmt struct {
	// Items is the aggregate select list; at least one item.
	Items []SelectItem
	Froms []FromItem
	Where expr.Expr
	// GroupBy, when non-empty, holds the (deterministic) grouping
	// expressions: the query produces one result per distinct key, in a
	// single pass (paper App. A).
	GroupBy []expr.Expr
	// Having is a predicate over grouping columns and aggregate aliases.
	Having expr.Expr

	With   bool
	MCReps int
	// Adaptive, when non-nil, replaces the fixed repetition count with the
	// UNTIL ERROR stopping rule: MONTECARLO(UNTIL ERROR < 0.01 AT 95%,
	// MAX 10000). MCReps is 0 for adaptive statements.
	Adaptive  *AdaptiveSpec
	Domain    *Domain
	FreqTable string
}

// AdaptiveSpec is the parsed UNTIL ERROR stopping rule of an adaptive
// MONTECARLO clause.
type AdaptiveSpec struct {
	// TargetRelError is the relative CI half-width target (UNTIL ERROR < x).
	TargetRelError float64
	// Confidence is the CI level in (0,1); AT 95% and AT 0.95 both yield
	// 0.95. Zero when the statement omitted AT (callers apply the default).
	Confidence float64
	// MaxSamples caps total replicates; zero when MAX was omitted (callers
	// apply the default).
	MaxSamples int
}

func (*SelectStmt) stmt() {}

// ExplainStmt wraps a SELECT statement for plan display: EXPLAIN <query>
// compiles the query and reports the logical plan, the rewrite rules that
// fired, and the physical operator tree instead of executing it.
type ExplainStmt struct {
	Stmt *SelectStmt
}

func (*ExplainStmt) stmt() {}

// Parse parses one statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var s Statement
	switch {
	case p.peekKeyword("CREATE"):
		s, err = p.parseCreate()
	case p.peekKeyword("SELECT"):
		s, err = p.parseSelect()
	case p.peekKeyword("EXPLAIN"):
		p.next()
		if !p.peekKeyword("SELECT") {
			return nil, fmt.Errorf("sqlish: EXPLAIN supports SELECT statements, got %s", p.peek())
		}
		var sel *SelectStmt
		sel, err = p.parseSelect()
		s = &ExplainStmt{Stmt: sel}
	default:
		return nil, fmt.Errorf("sqlish: expected CREATE, SELECT, or EXPLAIN, got %s", p.peek())
	}
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sqlish: trailing input at %s", p.peek())
	}
	return s, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sqlish: expected %s, got %s", kw, p.peek())
	}
	return nil
}

func (p *parser) accept(sym string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(sym string) error {
	if !p.accept(sym) {
		return fmt.Errorf("sqlish: expected %q, got %s", sym, p.peek())
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sqlish: expected identifier, got %s", t)
	}
	p.next()
	return t.text, nil
}

// qualifiedName parses ident[.ident] or ident.*; the star form returns
// "name.*".
func (p *parser) qualifiedName() (string, error) {
	first, err := p.ident()
	if err != nil {
		return "", err
	}
	if p.accept(".") {
		if p.accept("*") {
			return first + ".*", nil
		}
		second, err := p.ident()
		if err != nil {
			return "", err
		}
		return first + "." + second, nil
	}
	return first, nil
}

func (p *parser) parseCreate() (*CreateRandomTable, error) {
	p.next() // CREATE
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	out := &CreateRandomTable{Name: name}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		out.Cols = append(out.Cols, c)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FOR"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("EACH"); err != nil {
		return nil, err
	}
	if out.LoopVar, err = p.ident(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("IN"); err != nil {
		return nil, err
	}
	if out.ParamTable, err = p.ident(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("WITH"); err != nil {
		return nil, err
	}
	if out.VGAlias, err = p.ident(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	if out.VGName, err = p.ident(); err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out.VGParams = append(out.VGParams, e)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	for {
		item, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		out.SelectItems = append(out.SelectItems, item)
		if !p.accept(",") {
			break
		}
	}
	// Optional trailing "FROM myVal" as in the paper; parsed and ignored.
	if p.acceptKeyword("FROM") {
		if _, err := p.ident(); err != nil {
			return nil, err
		}
	}
	if len(out.SelectItems) != len(out.Cols) && !hasStar(out.SelectItems) {
		return nil, fmt.Errorf("sqlish: CREATE TABLE %s declares %d columns but selects %d items",
			out.Name, len(out.Cols), len(out.SelectItems))
	}
	return out, nil
}

func hasStar(items []string) bool {
	for _, it := range items {
		if strings.HasSuffix(it, ".*") {
			return true
		}
	}
	return false
}

// parseSelectItem parses one aggregate of the select list.
func (p *parser) parseSelectItem() (SelectItem, error) {
	var out SelectItem
	agg, err := p.ident()
	if err != nil {
		return out, err
	}
	out.Agg = strings.ToUpper(agg)
	switch out.Agg {
	case "SUM", "COUNT", "AVG", "MIN", "MAX":
	default:
		return out, fmt.Errorf("sqlish: unsupported aggregate %q", agg)
	}
	if err := p.expect("("); err != nil {
		return out, err
	}
	if p.accept("*") {
		if out.Agg != "COUNT" {
			return out, fmt.Errorf("sqlish: %s(*) is not valid", out.Agg)
		}
	} else {
		if out.Expr, err = p.parseExpr(); err != nil {
			return out, err
		}
	}
	if err := p.expect(")"); err != nil {
		return out, err
	}
	if p.acceptKeyword("AS") {
		if out.Alias, err = p.ident(); err != nil {
			return out, err
		}
	}
	return out, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	p.next() // SELECT
	out := &SelectStmt{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		out.Items = append(out.Items, item)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	var err error
	for {
		tbl, err := p.ident()
		if err != nil {
			return nil, err
		}
		item := FromItem{Table: tbl, Alias: tbl}
		if p.acceptKeyword("AS") {
			if item.Alias, err = p.ident(); err != nil {
				return nil, err
			}
		} else if t := p.peek(); t.kind == tokIdent && !isClauseKeyword(t.text) {
			item.Alias = t.text
			p.next()
		}
		out.Froms = append(out.Froms, item)
		if !p.accept(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		if out.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			out.GroupBy = append(out.GroupBy, g)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		if len(out.GroupBy) == 0 {
			return nil, fmt.Errorf("sqlish: HAVING requires a GROUP BY clause")
		}
		if out.Having, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("WITH") {
		out.With = true
		if err := p.expectKeyword("RESULTDISTRIBUTION"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("MONTECARLO"); err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		if p.acceptKeyword("UNTIL") {
			if out.Adaptive, err = p.parseUntil(); err != nil {
				return nil, err
			}
		} else {
			nTok := p.next()
			if nTok.kind != tokNumber {
				return nil, fmt.Errorf("sqlish: MONTECARLO needs a repetition count or UNTIL clause, got %s", nTok)
			}
			n, err := strconv.Atoi(nTok.text)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("sqlish: bad MONTECARLO count %q", nTok.text)
			}
			out.MCReps = n
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if p.acceptKeyword("DOMAIN") {
			d := &Domain{}
			if d.Name, err = p.ident(); err != nil {
				return nil, err
			}
			opTok := p.next()
			switch opTok.text {
			case ">=", ">":
				d.Lower = false
			case "<=", "<":
				d.Lower = true
			default:
				return nil, fmt.Errorf("sqlish: DOMAIN needs >= or <=, got %s", opTok)
			}
			if err := p.expectKeyword("QUANTILE"); err != nil {
				return nil, err
			}
			if err := p.expect("("); err != nil {
				return nil, err
			}
			qTok := p.next()
			if qTok.kind != tokNumber {
				return nil, fmt.Errorf("sqlish: QUANTILE needs a number, got %s", qTok)
			}
			q, err := strconv.ParseFloat(qTok.text, 64)
			if err != nil || q <= 0 || q >= 1 {
				return nil, fmt.Errorf("sqlish: QUANTILE must lie in (0,1), got %q", qTok.text)
			}
			d.Quantile = q
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			out.Domain = d
		}
		if p.acceptKeyword("FREQUENCYTABLE") {
			if out.FreqTable, err = p.ident(); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// parseUntil parses the adaptive stopping rule after UNTIL has been
// consumed: ERROR < eps [AT conf[%]] [, MAX n]. The closing paren stays
// with the caller.
func (p *parser) parseUntil() (*AdaptiveSpec, error) {
	if err := p.expectKeyword("ERROR"); err != nil {
		return nil, err
	}
	if err := p.expect("<"); err != nil {
		return nil, err
	}
	tok := p.next()
	if tok.kind != tokNumber {
		return nil, fmt.Errorf("sqlish: UNTIL ERROR needs a numeric target, got %s", tok)
	}
	eps, err := strconv.ParseFloat(tok.text, 64)
	if err != nil || eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("sqlish: UNTIL ERROR target must lie in (0,1), got %q", tok.text)
	}
	spec := &AdaptiveSpec{TargetRelError: eps}
	if p.acceptKeyword("AT") {
		ct := p.next()
		if ct.kind != tokNumber {
			return nil, fmt.Errorf("sqlish: AT needs a confidence level, got %s", ct)
		}
		conf, err := strconv.ParseFloat(ct.text, 64)
		if err != nil {
			return nil, fmt.Errorf("sqlish: bad confidence level %q", ct.text)
		}
		if p.accept("%") {
			conf /= 100
		}
		if conf <= 0 || conf >= 1 {
			return nil, fmt.Errorf("sqlish: confidence level must lie in (0,1), or (0,100) with %%; got %q", ct.text)
		}
		spec.Confidence = conf
	}
	if p.accept(",") {
		if err := p.expectKeyword("MAX"); err != nil {
			return nil, err
		}
		mt := p.next()
		if mt.kind != tokNumber {
			return nil, fmt.Errorf("sqlish: MAX needs a sample cap, got %s", mt)
		}
		m, err := strconv.Atoi(mt.text)
		if err != nil || m < 1 {
			return nil, fmt.Errorf("sqlish: bad MAX sample cap %q", mt.text)
		}
		spec.MaxSamples = m
	}
	return spec, nil
}

func isClauseKeyword(s string) bool {
	switch strings.ToUpper(s) {
	case "WHERE", "WITH", "FROM", "AS", "DOMAIN", "FREQUENCYTABLE", "GROUP", "HAVING", "ORDER":
		return true
	}
	return false
}

// Expression grammar: or -> and -> not -> cmp -> add -> mul -> unary ->
// primary.
func (p *parser) parseExpr() (expr.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = expr.B(expr.OpOr, left, right)
	}
	return left, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = expr.B(expr.OpAnd, left, right)
	}
	return left, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.acceptKeyword("NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &expr.Not{Inner: inner}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (expr.Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokSymbol {
		var op expr.BinOp
		ok := true
		switch t.text {
		case "=":
			op = expr.OpEq
		case "<>", "!=":
			op = expr.OpNe
		case "<":
			op = expr.OpLt
		case "<=":
			op = expr.OpLe
		case ">":
			op = expr.OpGt
		case ">=":
			op = expr.OpGe
		default:
			ok = false
		}
		if ok {
			p.next()
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return expr.B(op, left, right), nil
		}
	}
	return left, nil
}

func (p *parser) parseAdd() (expr.Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol || (t.text != "+" && t.text != "-") {
			return left, nil
		}
		p.next()
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		if t.text == "+" {
			left = expr.B(expr.OpAdd, left, right)
		} else {
			left = expr.B(expr.OpSub, left, right)
		}
	}
}

func (p *parser) parseMul() (expr.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol || (t.text != "*" && t.text != "/") {
			return left, nil
		}
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if t.text == "*" {
			left = expr.B(expr.OpMul, left, right)
		} else {
			left = expr.B(expr.OpDiv, left, right)
		}
	}
}

func (p *parser) parseUnary() (expr.Expr, error) {
	if p.accept("-") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &expr.Neg{Inner: inner}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sqlish: bad number %q", t.text)
			}
			return &expr.Const{Val: types.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sqlish: bad number %q", t.text)
		}
		return &expr.Const{Val: types.NewInt(i)}, nil
	case tokString:
		p.next()
		return &expr.Const{Val: types.NewString(t.text)}, nil
	case tokIdent:
		switch strings.ToUpper(t.text) {
		case "TRUE":
			p.next()
			return &expr.Const{Val: types.NewBool(true)}, nil
		case "FALSE":
			p.next()
			return &expr.Const{Val: types.NewBool(false)}, nil
		}
		name, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(name, ".*") {
			return nil, fmt.Errorf("sqlish: %s is not valid in an expression", name)
		}
		return expr.C(name), nil
	case tokSymbol:
		if t.text == "(" {
			p.next()
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return inner, nil
		}
	}
	return nil, fmt.Errorf("sqlish: unexpected %s in expression", t)
}
