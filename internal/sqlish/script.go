package sqlish

import "strings"

// SplitStatements splits a script into statements on semicolons outside
// single-quoted strings, dropping pieces that contain only whitespace and
// `--` line comments. cmd/mcdbr scripts and cmd/mcdbr-serve -init files
// share this splitter.
func SplitStatements(src string) []string {
	var out []string
	var sb strings.Builder
	inStr := false
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case c == '\'':
			inStr = !inStr
			sb.WriteByte(c)
		case c == ';' && !inStr:
			out = append(out, sb.String())
			sb.Reset()
		default:
			sb.WriteByte(c)
		}
	}
	if s := strings.TrimSpace(sb.String()); s != "" {
		out = append(out, s)
	}
	var clean []string
	for _, s := range out {
		if !isBlankStatement(s) {
			clean = append(clean, s)
		}
	}
	return clean
}

// isBlankStatement reports whether a statement consists solely of
// whitespace and line comments.
func isBlankStatement(s string) bool {
	for _, line := range strings.Split(s, "\n") {
		t := strings.TrimSpace(line)
		if t != "" && !strings.HasPrefix(t, "--") {
			return false
		}
	}
	return true
}
