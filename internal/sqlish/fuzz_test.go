package sqlish

import (
	"strings"
	"testing"
)

// fuzzSeeds is the parser fuzz corpus: every statement shape the test
// corpus and the documentation exercise — CREATE TABLE ... FOR EACH,
// single- and multi-aggregate select lists, GROUP BY expression lists,
// HAVING, the MCDB-R result-distribution clauses, EXPLAIN, and a few
// known-bad inputs so the fuzzer starts near the error paths too.
var fuzzSeeds = []string{
	paperCreate,
	paperQuery,
	`SELECT SUM(val) AS totalLoss FROM Losses WITH RESULTDISTRIBUTION MONTECARLO(1000)`,
	`SELECT SUM(emp2.sal - emp1.sal) FROM emp AS emp1, emp AS emp2, sup
WHERE sup.boss = emp1.eid AND emp1.sal < 90000 AND sup.peon = emp2.eid AND emp2.sal > emp1.sal
WITH RESULTDISTRIBUTION MONTECARLO(3) DOMAIN x >= QUANTILE(0.999)`,
	`SELECT AVG(v) FROM t WITH RESULTDISTRIBUTION MONTECARLO(10) DOMAIN x <= QUANTILE(0.01)`,
	`SELECT MIN(totalLoss) FROM FTABLE`,
	`SELECT SUM(totalLoss * FRAC) FROM FTABLE;`,
	`SELECT COUNT(*) FROM t WHERE a = 'x' OR b >= 2`,
	`SELECT SUM(a + b * c - -d) FROM t WHERE NOT a > 1 AND b < 2 OR c = 3`,
	`SELECT SUM(v) AS x FROM t WHERE v > 0 GROUP BY t.region WITH RESULTDISTRIBUTION MONTECARLO(10) DOMAIN x >= QUANTILE(0.9)`,
	`SELECT SUM(v) FROM t GROUP BY t.region, t.cid / 10 WITH RESULTDISTRIBUTION MONTECARLO(5)`,
	`SELECT SUM(a.x) AS loss, AVG(b.y), COUNT(*) FROM a, b WHERE a.k = b.k WITH RESULTDISTRIBUTION MONTECARLO(10)`,
	`SELECT SUM(v) AS x FROM t GROUP BY t.g HAVING x > 100 WITH RESULTDISTRIBUTION MONTECARLO(10)`,
	`SELECT SUM(val) FROM t WITH RESULTDISTRIBUTION MONTECARLO(UNTIL ERROR < 0.01 AT 95%, MAX 10000)`,
	`SELECT SUM(val) FROM t WITH RESULTDISTRIBUTION MONTECARLO(UNTIL ERROR < 0.05)`,
	`SELECT SUM(val) AS x FROM Losses GROUP BY CID WITH RESULTDISTRIBUTION MONTECARLO(20) DOMAIN x >= QUANTILE(0.9) FREQUENCYTABLE x`,
	`EXPLAIN SELECT SUM(val) AS t FROM Losses WHERE CID < 5 WITH RESULTDISTRIBUTION MONTECARLO(10);`,
	`EXPLAIN SELECT COUNT(*) FROM ftable`,
	"SELECT SUM(v) FROM t -- trailing comment\nWHERE v > 0",
	`CREATE TABLE ok (CID, y) AS FOR EACH CID IN means WITH v AS MultiNormal2(VALUES(1, 2, 1, 1, 0.5)) SELECT CID, v.value2 FROM v`,
	// Known-bad shapes: the fuzzer mutates from the edge of each error.
	``,
	`DROP TABLE x`,
	`SELECT SUM(x FROM t`,
	`SELECT SUM('unterminated) FROM t`,
	`SELECT SUM(x) FROM t WITH RESULTDISTRIBUTION MONTECARLO(0)`,
	`SELECT SUM(v) FROM t GROUP BY`,
	`SELECT SUM(v) AS x FROM t HAVING x > 100`,
}

// FuzzParse asserts the parser's crash-freedom contract: for arbitrary
// input, Parse either returns a statement or an error — it never panics,
// and a successfully parsed statement round-trips through one more
// invariant (select statements carry at least one item; create
// statements a table name).
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			if stmt != nil {
				t.Fatalf("Parse returned both a statement and an error: %v", err)
			}
			return
		}
		switch s := stmt.(type) {
		case *SelectStmt:
			if len(s.Items) == 0 {
				t.Fatalf("parsed SELECT with no select items from %q", src)
			}
		case *ExplainStmt:
			if s.Stmt == nil || len(s.Stmt.Items) == 0 {
				t.Fatalf("parsed EXPLAIN with no inner select from %q", src)
			}
		case *CreateRandomTable:
			if s.Name == "" {
				t.Fatalf("parsed CREATE with no table name from %q", src)
			}
		default:
			t.Fatalf("Parse returned unknown statement type %T", stmt)
		}
		// SplitStatements must also be panic-free on anything Parse accepts.
		if got := SplitStatements(src); len(got) == 0 && strings.TrimSpace(src) != "" {
			t.Fatalf("SplitStatements dropped parseable input %q", src)
		}
	})
}
