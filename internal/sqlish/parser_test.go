package sqlish

import (
	"strings"
	"testing"

	"repro/internal/expr"
)

const paperCreate = `
CREATE TABLE Losses (CID, val) AS
FOR EACH CID IN means
WITH myVal AS Normal(VALUES(m, 1.0))
SELECT CID, myVal.* FROM myVal`

const paperQuery = `
SELECT SUM(val) AS totalLoss
FROM Losses
WHERE CID < 10010
WITH RESULTDISTRIBUTION MONTECARLO(100)
DOMAIN totalLoss >= QUANTILE(0.99)
FREQUENCYTABLE totalLoss`

func TestParsePaperCreate(t *testing.T) {
	s, err := Parse(paperCreate)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := s.(*CreateRandomTable)
	if !ok {
		t.Fatalf("statement type %T", s)
	}
	if c.Name != "Losses" || len(c.Cols) != 2 || c.Cols[0] != "CID" || c.Cols[1] != "val" {
		t.Fatalf("create = %+v", c)
	}
	if c.LoopVar != "CID" || c.ParamTable != "means" {
		t.Fatalf("FOR EACH = %q IN %q", c.LoopVar, c.ParamTable)
	}
	if c.VGAlias != "myVal" || c.VGName != "Normal" || len(c.VGParams) != 2 {
		t.Fatalf("VG = %+v", c)
	}
	if len(c.SelectItems) != 2 || c.SelectItems[0] != "CID" || c.SelectItems[1] != "myVal.*" {
		t.Fatalf("select items = %v", c.SelectItems)
	}
}

func TestParsePaperQuery(t *testing.T) {
	s, err := Parse(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	q, ok := s.(*SelectStmt)
	if !ok {
		t.Fatalf("statement type %T", s)
	}
	if len(q.Items) != 1 || q.Items[0].Agg != "SUM" || q.Items[0].Alias != "totalLoss" {
		t.Fatalf("items = %+v", q.Items)
	}
	if len(q.Froms) != 1 || q.Froms[0].Table != "Losses" {
		t.Fatalf("froms = %+v", q.Froms)
	}
	if q.Where == nil || !strings.Contains(q.Where.String(), "<") {
		t.Fatalf("where = %v", q.Where)
	}
	if !q.With || q.MCReps != 100 {
		t.Fatalf("MC = %v %d", q.With, q.MCReps)
	}
	if q.Domain == nil || q.Domain.Lower || q.Domain.Quantile != 0.99 || q.Domain.Name != "totalLoss" {
		t.Fatalf("domain = %+v", q.Domain)
	}
	if q.FreqTable != "totalLoss" {
		t.Fatalf("freq table = %q", q.FreqTable)
	}
}

func TestParseSalaryInversionQuery(t *testing.T) {
	src := `
SELECT SUM(emp2.sal - emp1.sal)
FROM emp AS emp1, emp AS emp2, sup
WHERE sup.boss = emp1.eid AND emp1.sal < 90000
  AND sup.peon = emp2.eid AND emp2.sal > 25000
  AND emp2.sal > emp1.sal
WITH RESULTDISTRIBUTION MONTECARLO(3)
DOMAIN x >= QUANTILE(0.999)`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q := s.(*SelectStmt)
	if len(q.Froms) != 3 || q.Froms[0].Alias != "emp1" || q.Froms[1].Alias != "emp2" || q.Froms[2].Alias != "sup" {
		t.Fatalf("froms = %+v", q.Froms)
	}
	conjs := expr.SplitConjuncts(q.Where)
	if len(conjs) != 5 {
		t.Fatalf("conjuncts = %d", len(conjs))
	}
}

func TestParseLowerDomain(t *testing.T) {
	s, err := Parse(`SELECT AVG(v) FROM t WITH RESULTDISTRIBUTION MONTECARLO(10) DOMAIN x <= QUANTILE(0.01)`)
	if err != nil {
		t.Fatal(err)
	}
	q := s.(*SelectStmt)
	if q.Domain == nil || !q.Domain.Lower || q.Domain.Quantile != 0.01 {
		t.Fatalf("domain = %+v", q.Domain)
	}
}

func TestParseDeterministicAggregate(t *testing.T) {
	s, err := Parse(`SELECT MIN(totalLoss) FROM FTABLE`)
	if err != nil {
		t.Fatal(err)
	}
	q := s.(*SelectStmt)
	if len(q.Items) != 1 || q.Items[0].Agg != "MIN" || q.With {
		t.Fatalf("q = %+v", q)
	}
	s, err = Parse(`SELECT SUM(totalLoss * FRAC) FROM FTABLE;`)
	if err != nil {
		t.Fatal(err)
	}
	q = s.(*SelectStmt)
	if len(q.Items) != 1 || q.Items[0].Agg != "SUM" || q.Items[0].Expr == nil {
		t.Fatalf("q = %+v", q)
	}
}

func TestParseCountStar(t *testing.T) {
	s, err := Parse(`SELECT COUNT(*) FROM t WHERE a = 'x' OR b >= 2`)
	if err != nil {
		t.Fatal(err)
	}
	q := s.(*SelectStmt)
	if len(q.Items) != 1 || q.Items[0].Agg != "COUNT" || q.Items[0].Expr != nil {
		t.Fatalf("q = %+v", q)
	}
	if _, err := Parse(`SELECT SUM(*) FROM t`); err == nil {
		t.Fatal("SUM(*) must fail")
	}
}

func TestParseExprPrecedence(t *testing.T) {
	s, err := Parse(`SELECT SUM(a + b * c - -d) FROM t WHERE NOT a > 1 AND b < 2 OR c = 3`)
	if err != nil {
		t.Fatal(err)
	}
	q := s.(*SelectStmt)
	if got := q.Items[0].Expr.String(); got != "((a + (b * c)) - -d)" {
		t.Fatalf("agg expr = %s", got)
	}
	if got := q.Where.String(); got != "((NOT (a > 1) AND (b < 2)) OR (c = 3))" {
		t.Fatalf("where = %s", got)
	}
}

func TestParseComments(t *testing.T) {
	src := "SELECT SUM(v) FROM t -- trailing comment\nWHERE v > 0"
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"DROP TABLE x",
		"SELECT FROM t",
		"SELECT MEDIAN(x) FROM t",
		"SELECT SUM(x FROM t",
		"SELECT SUM(x) t",            // missing FROM
		"SELECT SUM(x) FROM t WHERE", // dangling WHERE
		"SELECT SUM(x) FROM t WITH MONTECARLO(5)", // missing RESULTDISTRIBUTION
		"SELECT SUM(x) FROM t WITH RESULTDISTRIBUTION MONTECARLO(0)",
		"SELECT SUM(x) FROM t WITH RESULTDISTRIBUTION MONTECARLO(5) DOMAIN x >= QUANTILE(2)",
		"SELECT SUM(x) FROM t WITH RESULTDISTRIBUTION MONTECARLO(5) DOMAIN x = QUANTILE(0.5)",
		"CREATE TABLE t (a) AS FOR EACH a IN p WITH v AS VG(VALUES(1)) SELECT a, b, c",
		"SELECT SUM(x) FROM t extra garbage (",
		"SELECT SUM('unterminated) FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestLexerNumbers(t *testing.T) {
	toks, err := lex("1 2.5 1e-3 0.99 10010")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1", "2.5", "1e-3", "0.99", "10010"}
	for i, w := range want {
		if toks[i].kind != tokNumber || toks[i].text != w {
			t.Fatalf("token %d = %+v, want %q", i, toks[i], w)
		}
	}
}

func TestLexerRejectsGarbage(t *testing.T) {
	if _, err := lex("a @ b"); err == nil {
		t.Fatal("@ must be rejected")
	}
}

func TestParseGroupBy(t *testing.T) {
	s, err := Parse(`SELECT SUM(v) AS x FROM t WHERE v > 0 GROUP BY t.region WITH RESULTDISTRIBUTION MONTECARLO(10) DOMAIN x >= QUANTILE(0.9)`)
	if err != nil {
		t.Fatal(err)
	}
	q := s.(*SelectStmt)
	if len(q.GroupBy) != 1 || q.GroupBy[0].String() != "t.region" {
		t.Fatalf("GroupBy = %v", q.GroupBy)
	}
	if q.Domain == nil {
		t.Fatal("domain lost after GROUP BY")
	}
	if _, err := Parse(`SELECT SUM(v) FROM t GROUP BY`); err == nil {
		t.Fatal("dangling GROUP BY must error")
	}
	if _, err := Parse(`SELECT SUM(v) FROM t GROUP ORDER`); err == nil {
		t.Fatal("GROUP without BY must error")
	}
	// Multiple grouping expressions, including computed ones.
	s, err = Parse(`SELECT SUM(v) FROM t GROUP BY t.region, t.cid / 10 WITH RESULTDISTRIBUTION MONTECARLO(5)`)
	if err != nil {
		t.Fatal(err)
	}
	q = s.(*SelectStmt)
	if len(q.GroupBy) != 2 || q.GroupBy[1].String() != "(t.cid / 10)" {
		t.Fatalf("GroupBy = %v", q.GroupBy)
	}
}

func TestParseMultiAggregateSelectList(t *testing.T) {
	s, err := Parse(`SELECT SUM(a.x) AS loss, AVG(b.y), COUNT(*) FROM a, b WHERE a.k = b.k WITH RESULTDISTRIBUTION MONTECARLO(10)`)
	if err != nil {
		t.Fatal(err)
	}
	q := s.(*SelectStmt)
	if len(q.Items) != 3 {
		t.Fatalf("items = %+v", q.Items)
	}
	if q.Items[0].Agg != "SUM" || q.Items[0].Alias != "loss" {
		t.Fatalf("item 0 = %+v", q.Items[0])
	}
	if q.Items[1].Agg != "AVG" || q.Items[1].Alias != "" || q.Items[1].Expr.String() != "b.y" {
		t.Fatalf("item 1 = %+v", q.Items[1])
	}
	if q.Items[2].Agg != "COUNT" || q.Items[2].Expr != nil {
		t.Fatalf("item 2 = %+v", q.Items[2])
	}
	if len(q.Froms) != 2 {
		t.Fatalf("froms = %+v", q.Froms)
	}
	// A dangling comma must error.
	if _, err := Parse(`SELECT SUM(x), FROM t`); err == nil {
		t.Fatal("dangling select-list comma must error")
	}
}

func TestParseHaving(t *testing.T) {
	s, err := Parse(`SELECT SUM(v) AS x FROM t GROUP BY t.g HAVING x > 100 WITH RESULTDISTRIBUTION MONTECARLO(10)`)
	if err != nil {
		t.Fatal(err)
	}
	q := s.(*SelectStmt)
	if q.Having == nil || q.Having.String() != "(x > 100)" {
		t.Fatalf("Having = %v", q.Having)
	}
	// HAVING without GROUP BY is rejected with a descriptive error.
	_, err = Parse(`SELECT SUM(v) AS x FROM t HAVING x > 100`)
	if err == nil || !strings.Contains(err.Error(), "HAVING requires a GROUP BY") {
		t.Fatalf("HAVING without GROUP BY: err = %v", err)
	}
	// Dangling HAVING.
	if _, err := Parse(`SELECT SUM(v) FROM t GROUP BY g HAVING`); err == nil {
		t.Fatal("dangling HAVING must error")
	}
}

func TestParseExplain(t *testing.T) {
	s, err := Parse(`EXPLAIN SELECT SUM(val) AS t FROM Losses WHERE CID < 5 WITH RESULTDISTRIBUTION MONTECARLO(10);`)
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := s.(*ExplainStmt)
	if !ok {
		t.Fatalf("statement = %T, want *ExplainStmt", s)
	}
	if ex.Stmt.Items[0].Agg != "SUM" || !ex.Stmt.With || ex.Stmt.MCReps != 10 {
		t.Fatalf("inner select = %+v", ex.Stmt)
	}
	// EXPLAIN of a deterministic aggregate parses too.
	s, err = Parse(`EXPLAIN SELECT COUNT(*) FROM ftable`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*ExplainStmt); !ok {
		t.Fatalf("statement = %T", s)
	}
	// EXPLAIN CREATE is rejected.
	if _, err := Parse(`EXPLAIN CREATE TABLE x (a) AS FOR EACH a IN p WITH v AS Normal(VALUES(1,1)) SELECT v.*`); err == nil {
		t.Fatal("EXPLAIN CREATE must be a parse error")
	}
}

func TestParseAdaptiveMonteCarlo(t *testing.T) {
	cases := []struct {
		src  string
		want AdaptiveSpec
	}{
		{`SELECT SUM(val) FROM t WITH RESULTDISTRIBUTION MONTECARLO(UNTIL ERROR < 0.01 AT 95%, MAX 10000)`,
			AdaptiveSpec{TargetRelError: 0.01, Confidence: 0.95, MaxSamples: 10000}},
		{`SELECT SUM(val) FROM t WITH RESULTDISTRIBUTION MONTECARLO(UNTIL ERROR < 0.05 AT 0.99)`,
			AdaptiveSpec{TargetRelError: 0.05, Confidence: 0.99}},
		{`SELECT SUM(val) FROM t WITH RESULTDISTRIBUTION MONTECARLO(UNTIL ERROR < 0.02)`,
			AdaptiveSpec{TargetRelError: 0.02}},
		{`SELECT SUM(val) FROM t WITH RESULTDISTRIBUTION MONTECARLO(UNTIL ERROR < 0.02, MAX 500)`,
			AdaptiveSpec{TargetRelError: 0.02, MaxSamples: 500}},
	}
	for _, tc := range cases {
		s, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		q := s.(*SelectStmt)
		if !q.With || q.MCReps != 0 {
			t.Fatalf("%s: With=%v MCReps=%d, want adaptive", tc.src, q.With, q.MCReps)
		}
		if q.Adaptive == nil || *q.Adaptive != tc.want {
			t.Fatalf("%s: Adaptive = %+v, want %+v", tc.src, q.Adaptive, tc.want)
		}
	}
	// Adaptive composes with GROUP BY and keeps fixed-count statements
	// untouched.
	s, err := Parse(`SELECT SUM(v) AS x FROM t GROUP BY t.g WITH RESULTDISTRIBUTION MONTECARLO(UNTIL ERROR < 0.1 AT 90%)`)
	if err != nil {
		t.Fatal(err)
	}
	if q := s.(*SelectStmt); q.Adaptive == nil || len(q.GroupBy) != 1 {
		t.Fatalf("grouped adaptive: %+v", s)
	}
	bad := []string{
		`SELECT SUM(v) FROM t WITH RESULTDISTRIBUTION MONTECARLO(UNTIL ERROR < 2)`,
		`SELECT SUM(v) FROM t WITH RESULTDISTRIBUTION MONTECARLO(UNTIL ERROR < 0)`,
		`SELECT SUM(v) FROM t WITH RESULTDISTRIBUTION MONTECARLO(UNTIL ERROR 0.01)`,
		`SELECT SUM(v) FROM t WITH RESULTDISTRIBUTION MONTECARLO(UNTIL ERROR < 0.01 AT 101%)`,
		`SELECT SUM(v) FROM t WITH RESULTDISTRIBUTION MONTECARLO(UNTIL ERROR < 0.01 AT 1.5)`,
		`SELECT SUM(v) FROM t WITH RESULTDISTRIBUTION MONTECARLO(UNTIL ERROR < 0.01, MAX 0)`,
		`SELECT SUM(v) FROM t WITH RESULTDISTRIBUTION MONTECARLO(UNTIL ERROR < 0.01, MAX)`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted bad statement: %s", src)
		}
	}
}
