// Package sqlish implements the SQL-like surface syntax of MCDB-R as shown
// in the paper's §2 and Appendix D: CREATE TABLE ... FOR EACH statements
// defining uncertain tables, and SELECT queries with the
// WITH RESULTDISTRIBUTION / MONTECARLO / DOMAIN ... QUANTILE /
// FREQUENCYTABLE clauses. (The paper's prototype ships no SQL compiler and
// specifies plans directly; this package goes one step further so the
// examples read like the paper.)
package sqlish

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("'%s'", t.text)
	default:
		return t.text
	}
}

// lex tokenizes the input. Symbols cover the operator set of the grammar;
// identifiers are bare words (qualification dots are separate symbols).
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-': // line comment
			for i < n && src[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: src[i:j], pos: i})
			i = j
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < n && unicode.IsDigit(rune(src[i+1]))):
			j := i
			seenDot, seenExp := false, false
			for j < n {
				d := src[j]
				if unicode.IsDigit(rune(d)) {
					j++
					continue
				}
				if d == '.' && !seenDot && !seenExp {
					seenDot = true
					j++
					continue
				}
				if (d == 'e' || d == 'E') && !seenExp && j > i {
					seenExp = true
					j++
					if j < n && (src[j] == '+' || src[j] == '-') {
						j++
					}
					continue
				}
				break
			}
			toks = append(toks, token{kind: tokNumber, text: src[i:j], pos: i})
			i = j
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for j < n && src[j] != '\'' {
				sb.WriteByte(src[j])
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sqlish: unterminated string at offset %d", i)
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: i})
			i = j + 1
		default:
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				toks = append(toks, token{kind: tokSymbol, text: two, pos: i})
				i += 2
				continue
			}
			switch c {
			case '(', ')', ',', '.', '*', '+', '-', '/', '=', '<', '>', ';', '%':
				toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
				i++
			default:
				return nil, fmt.Errorf("sqlish: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}
