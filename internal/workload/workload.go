// Package workload generates the synthetic data sets behind the paper's
// examples and evaluation: the §2 customer-loss table, the Fig. 2 salary
// inversion database, and the Appendix D TPC-H-like orders/lineitem pair
// with its skewed join construction and inverse-gamma hyperpriors.
package workload

import (
	"fmt"
	"math"

	"repro/internal/prng"
	"repro/internal/storage"
	"repro/internal/types"
)

// LossMeans builds the paper §2 parameter table means(CID, m): the mean
// loss per customer, drawn uniformly from [lo, hi).
func LossMeans(n int, lo, hi float64, seed uint64) *storage.Table {
	t := storage.NewTable("means", types.NewSchema(
		types.Column{Name: "cid", Kind: types.KindInt},
		types.Column{Name: "m", Kind: types.KindFloat},
	))
	r := prng.NewSub(seed)
	d := prng.Uniform{Lo: lo, Hi: hi}
	for i := 0; i < n; i++ {
		t.MustAppend(types.Row{types.NewInt(int64(10000 + i)), types.NewFloat(d.Sample(r))})
	}
	return t
}

// SalaryDB builds the Fig. 2 salary-inversion database: sup(boss, peon)
// plus the parameter table empmeans(eid, msal) from which the uncertain
// emp(eid, sal) table is generated. Employee IDs are strings as in the
// paper's figure (Joe, Sue, ...).
func SalaryDB() (sup, empmeans *storage.Table) {
	sup = storage.NewTable("sup", types.NewSchema(
		types.Column{Name: "boss", Kind: types.KindString},
		types.Column{Name: "peon", Kind: types.KindString},
	))
	for _, pair := range [][2]string{{"Sue", "Joe"}, {"Jim", "Sue"}, {"Jim", "Ann"}, {"Sid", "Jim"}} {
		sup.MustAppend(types.Row{types.NewString(pair[0]), types.NewString(pair[1])})
	}
	empmeans = storage.NewTable("empmeans", types.NewSchema(
		types.Column{Name: "eid", Kind: types.KindString},
		types.Column{Name: "msal", Kind: types.KindFloat},
	))
	for _, e := range []struct {
		id  string
		sal float64
	}{{"Joe", 25000}, {"Sue", 24000}, {"Ann", 44000}, {"Jim", 76000}, {"Sid", 95000}} {
		empmeans.MustAppend(types.Row{types.NewString(e.id), types.NewFloat(e.sal)})
	}
	return sup, empmeans
}

// TPCHConfig scales the Appendix D benchmark data.
type TPCHConfig struct {
	// Orders is the number of random_ord parameter rows (the paper uses
	// 100,000 for the accuracy experiment).
	Orders int
	// Lineitems is the number of joining lineitem rows (paper: 1,000,000).
	Lineitems int
	// OrphanLineitems find no mate (the paper adds such rows).
	OrphanLineitems int
	// MeanShape/MeanScale parameterize the inverse-gamma hyperprior on the
	// per-order normal mean (paper: shape 3, scale 1).
	MeanShape, MeanScale float64
	// VarShape/VarScale parameterize the hyperprior on the variance
	// (paper: shape 3, scale 0.5).
	VarShape, VarScale float64
	// YearSplit assigns o_yr: orders alternate between 1994/1995 (matching
	// the query's predicate) and other years outside the predicate.
	FracInYears float64
	// FixedMeanVar uses o_mean = o_var = 1 for every order (the paper's
	// Appendix D *timing* benchmark) instead of the inverse-gamma
	// hyperpriors of the accuracy benchmark.
	FixedMeanVar bool
	// UniformJoin assigns lineitems to orders uniformly instead of with
	// the linearly decaying skew of the accuracy benchmark.
	UniformJoin bool
	// Seed drives the generator.
	Seed uint64
}

// TimingTPCH returns the paper's Appendix D timing-benchmark configuration
// (mean and variance of one, plain join) scaled down by the given factor.
func TimingTPCH(scaleDiv int) TPCHConfig {
	cfg := DefaultTPCH(scaleDiv)
	cfg.FixedMeanVar = true
	cfg.UniformJoin = true
	return cfg
}

// DefaultTPCH returns the paper's accuracy-experiment configuration scaled
// down by the given factor (1 = paper scale: 100k orders, 1M lineitems).
func DefaultTPCH(scaleDiv int) TPCHConfig {
	if scaleDiv < 1 {
		scaleDiv = 1
	}
	return TPCHConfig{
		Orders:          100000 / scaleDiv,
		Lineitems:       1000000 / scaleDiv,
		OrphanLineitems: 100000 / scaleDiv,
		MeanShape:       3, MeanScale: 1,
		VarShape: 3, VarScale: 0.5,
		FracInYears: 1.0,
		Seed:        7321,
	}
}

// TPCHLike generates orders(o_orderkey, o_yr, o_mean, o_var) and
// lineitem(l_orderkey, l_qty). Joining lineitems pick their order with the
// paper's linearly decaying match probability: the chance of mating with
// the i-th of K orders decreases linearly from ~2/K at i=0 to ~0 at i=K-1,
// so early orders contribute many more normal terms to the query result
// than late ones.
func TPCHLike(cfg TPCHConfig) (orders, lineitem *storage.Table, err error) {
	if cfg.Orders < 1 || cfg.Lineitems < 0 || cfg.OrphanLineitems < 0 {
		return nil, nil, fmt.Errorf("workload: invalid TPCH config %+v", cfg)
	}
	r := prng.NewSub(cfg.Seed)
	meanD := prng.InverseGamma{Shape: cfg.MeanShape, Scale: cfg.MeanScale}
	varD := prng.InverseGamma{Shape: cfg.VarShape, Scale: cfg.VarScale}

	orders = storage.NewTable("orders", types.NewSchema(
		types.Column{Name: "o_orderkey", Kind: types.KindInt},
		types.Column{Name: "o_yr", Kind: types.KindInt},
		types.Column{Name: "o_mean", Kind: types.KindFloat},
		types.Column{Name: "o_var", Kind: types.KindFloat},
	))
	inYears := int(float64(cfg.Orders) * cfg.FracInYears)
	for i := 0; i < cfg.Orders; i++ {
		yr := int64(1994 + i%2)
		if i >= inYears {
			yr = int64(1990 + i%3)
		}
		m, v := 1.0, 1.0
		if !cfg.FixedMeanVar {
			m, v = meanD.Sample(r), varD.Sample(r)
		}
		orders.MustAppend(types.Row{
			types.NewInt(int64(i)),
			types.NewInt(yr),
			types.NewFloat(m),
			types.NewFloat(v),
		})
	}

	lineitem = storage.NewTable("lineitem", types.NewSchema(
		types.Column{Name: "l_orderkey", Kind: types.KindInt},
		types.Column{Name: "l_qty", Kind: types.KindFloat},
	))
	k := float64(cfg.Orders)
	for i := 0; i < cfg.Lineitems; i++ {
		// Sample order index with P(i) proportional to K-i (triangular,
		// linearly decaying): inverse-CDF of the triangular distribution.
		// UniformJoin picks uniformly instead (timing benchmark).
		var idx int
		if cfg.UniformJoin {
			idx = r.Intn(cfg.Orders)
		} else {
			u := r.Float64()
			idx = int(k * (1 - math.Sqrt(1-u)))
			if idx >= cfg.Orders {
				idx = cfg.Orders - 1
			}
		}
		lineitem.MustAppend(types.Row{
			types.NewInt(int64(idx)),
			types.NewFloat(1 + 9*r.Float64()),
		})
	}
	for i := 0; i < cfg.OrphanLineitems; i++ {
		lineitem.MustAppend(types.Row{
			types.NewInt(int64(-1 - i)), // mates with nothing
			types.NewFloat(1 + 9*r.Float64()),
		})
	}
	return orders, lineitem, nil
}

// TPCHAnalytic computes the exact mean and variance of the Appendix D
// query result SUM(val) where each order's val ~ Normal(o_mean, o_var) is
// counted once per joining lineitem in the selected years: the paper's
// "grpsize" closed form (mean = sum grpsize*o_mean, var = sum
// grpsize^2*o_var).
func TPCHAnalytic(orders, lineitem *storage.Table, years map[int64]bool) (mu, sigma2 float64) {
	grp := map[int64]int64{}
	for _, row := range lineitem.Rows() {
		grp[row[0].Int()]++
	}
	for _, row := range orders.Rows() {
		if !years[row[1].Int()] {
			continue
		}
		g := float64(grp[row[0].Int()])
		mu += g * row[2].Float()
		sigma2 += g * g * row[3].Float()
	}
	return mu, sigma2
}

// HeavyTailMeans builds a parameter table for the Appendix B regime
// experiments: rows(id, scale) whose uncertain values are drawn by a
// caller-selected heavy- or light-tailed VG function parameterized by
// scale.
func HeavyTailMeans(n int, scale float64) *storage.Table {
	t := storage.NewTable("params", types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "scale", Kind: types.KindFloat},
	))
	for i := 0; i < n; i++ {
		t.MustAppend(types.Row{types.NewInt(int64(i)), types.NewFloat(scale)})
	}
	return t
}

// Portfolio builds instruments(iid, start, drift, vol, qty): a book of
// positions whose future values follow the RandomWalk VG function — the
// paper's motivating "future values of financial assets" workload.
func Portfolio(n int, seed uint64) *storage.Table {
	t := storage.NewTable("instruments", types.NewSchema(
		types.Column{Name: "iid", Kind: types.KindInt},
		types.Column{Name: "start", Kind: types.KindFloat},
		types.Column{Name: "drift", Kind: types.KindFloat},
		types.Column{Name: "vol", Kind: types.KindFloat},
		types.Column{Name: "qty", Kind: types.KindFloat},
	))
	r := prng.NewSub(seed)
	for i := 0; i < n; i++ {
		start := 20 + 180*r.Float64()
		t.MustAppend(types.Row{
			types.NewInt(int64(i)),
			types.NewFloat(start),
			types.NewFloat(-0.02 + 0.04*r.Float64()), // small drift either way
			types.NewFloat((0.1 + 0.4*r.Float64()) * start * 0.1),
			types.NewFloat(float64(1 + r.Intn(100))),
		})
	}
	return t
}
