package workload

import (
	"math"
	"testing"
)

func TestLossMeans(t *testing.T) {
	tbl := LossMeans(100, 2, 8, 1)
	if tbl.NumRows() != 100 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	for _, r := range tbl.Rows() {
		m := r[1].Float()
		if m < 2 || m >= 8 {
			t.Fatalf("mean %g outside [2,8)", m)
		}
	}
	// Determinism: same seed, same table.
	again := LossMeans(100, 2, 8, 1)
	for i := range tbl.Rows() {
		if !tbl.Row(i).Equal(again.Row(i)) {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestSalaryDB(t *testing.T) {
	sup, em := SalaryDB()
	if sup.NumRows() != 4 || em.NumRows() != 5 {
		t.Fatalf("rows = %d, %d", sup.NumRows(), em.NumRows())
	}
	// Every boss/peon appears in empmeans.
	known := map[string]bool{}
	for _, r := range em.Rows() {
		known[r[0].Str()] = true
	}
	for _, r := range sup.Rows() {
		if !known[r[0].Str()] || !known[r[1].Str()] {
			t.Fatalf("dangling employee in sup: %v", r)
		}
	}
}

func TestTPCHLikeShape(t *testing.T) {
	cfg := DefaultTPCH(100) // 1000 orders, 10000 lineitems, 1000 orphans
	orders, lineitem, err := TPCHLike(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if orders.NumRows() != 1000 {
		t.Fatalf("orders = %d", orders.NumRows())
	}
	if lineitem.NumRows() != 11000 {
		t.Fatalf("lineitems = %d", lineitem.NumRows())
	}
	// Orphans have negative keys.
	orphans := 0
	counts := map[int64]int{}
	for _, r := range lineitem.Rows() {
		k := r[0].Int()
		if k < 0 {
			orphans++
		} else {
			counts[k]++
		}
	}
	if orphans != 1000 {
		t.Fatalf("orphans = %d", orphans)
	}
	// Skew: the first decile of orders receives far more lineitems than
	// the last decile (linearly decaying match probability).
	first, last := 0, 0
	for k, c := range counts {
		switch {
		case k < 100:
			first += c
		case k >= 900:
			last += c
		}
	}
	if first < 3*last {
		t.Fatalf("join skew missing: first decile %d, last decile %d", first, last)
	}
	// Hyperprior sanity: inverse-gamma(3,1) has mean 0.5.
	sum := 0.0
	for _, r := range orders.Rows() {
		sum += r[2].Float()
	}
	if mean := sum / 1000; math.Abs(mean-0.5) > 0.1 {
		t.Fatalf("o_mean average = %g, want ~0.5", mean)
	}
}

func TestTPCHLikeValidation(t *testing.T) {
	if _, _, err := TPCHLike(TPCHConfig{Orders: 0}); err == nil {
		t.Fatal("zero orders must error")
	}
}

func TestTPCHAnalytic(t *testing.T) {
	cfg := DefaultTPCH(200)
	orders, lineitem, err := TPCHLike(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mu, sigma2 := TPCHAnalytic(orders, lineitem, map[int64]bool{1994: true, 1995: true})
	if mu <= 0 || sigma2 <= 0 {
		t.Fatalf("analytic moments = %g, %g", mu, sigma2)
	}
	// Every order is in 1994/1995 with FracInYears=1, so restricting to one
	// year halves-ish the mean.
	mu94, _ := TPCHAnalytic(orders, lineitem, map[int64]bool{1994: true})
	if mu94 >= mu || mu94 <= 0 {
		t.Fatalf("single-year mean %g vs both-years %g", mu94, mu)
	}
	// No years selected: zero.
	mu0, s0 := TPCHAnalytic(orders, lineitem, map[int64]bool{})
	if mu0 != 0 || s0 != 0 {
		t.Fatalf("empty years gave %g, %g", mu0, s0)
	}
}

func TestHeavyTailMeans(t *testing.T) {
	tbl := HeavyTailMeans(50, 1.5)
	if tbl.NumRows() != 50 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	if tbl.Row(7)[1].Float() != 1.5 {
		t.Fatalf("scale = %v", tbl.Row(7)[1])
	}
}

func TestPortfolio(t *testing.T) {
	tbl := Portfolio(40, 9)
	if tbl.NumRows() != 40 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	for _, r := range tbl.Rows() {
		if r[1].Float() <= 0 || r[3].Float() <= 0 || r[4].Float() < 1 {
			t.Fatalf("implausible instrument: %v", r)
		}
	}
}
