// Package naive implements the original-MCDB baseline used throughout the
// paper's comparisons (§1, Appendix D): plain Monte Carlo over tuple
// bundles, with quantile estimation by order statistics, plus the analytic
// sample-size formulas the paper's introduction quotes for why naive Monte
// Carlo fails in the tail.
package naive

import (
	"fmt"
	"math"

	"repro/internal/exec"
	"repro/internal/gibbs"
	"repro/internal/stats"
)

// MonteCarlo runs n Monte Carlo repetitions of the query and returns the n
// query-result samples (original MCDB semantics).
func MonteCarlo(ws *exec.Workspace, plan exec.Node, q gibbs.Query, n int) ([]float64, error) {
	return gibbs.MonteCarlo(ws, plan, q, n)
}

// EstimateQuantile estimates the q-quantile from Monte Carlo samples by the
// order statistic X_(ceil(q n)) — the standard technique the paper cites
// [Serfling, Sec. 2.6].
func EstimateQuantile(samples []float64, q float64) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("naive: no samples")
	}
	return stats.NewECDF(samples).Quantile(q), nil
}

// TailSamples returns the samples at or above the cutoff — what naive MCDB
// must sift its repetitions for, hit by rare hit.
func TailSamples(samples []float64, cutoff float64) []float64 {
	var out []float64
	for _, s := range samples {
		if s >= cutoff {
			out = append(out, s)
		}
	}
	return out
}

// HitRate returns the fraction of samples at or above the cutoff: the
// naive estimator of the tail probability.
func HitRate(samples []float64, cutoff float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	return float64(len(TailSamples(samples, cutoff))) / float64(len(samples))
}

// ExpectedRepsPerTailHit returns 1/p: the expected number of naive Monte
// Carlo repetitions per tail observation. For the paper's §1 example
// (normal with mean $10M, sd $1M, tail at $15M, i.e. 5 sigma), this is
// roughly 3.5 million.
func ExpectedRepsPerTailHit(p float64) float64 { return 1 / p }

// RepsForTailProbability returns the number of repetitions needed to
// estimate a tail probability p to within relative error eps with the
// given confidence: n = z^2 (1-p) / (p eps^2). For the §1 example
// (p = P(Z > 5), eps = 0.01, conf = 0.95) this is about 130 billion.
func RepsForTailProbability(p, eps, conf float64) float64 {
	z := stats.StdNormalQuantile(1 - (1-conf)/2)
	return z * z * (1 - p) / (p * eps * eps)
}

// RepsForQuantile returns the repetitions needed to estimate the
// (1-p)-quantile of a N(mu, sigma^2) distribution to within delta with the
// given confidence, using the asymptotic normality of sample quantiles:
// n = z^2 p (1-p) / (f(theta) delta)^2 with f the normal density at the
// quantile [Serfling, Sec. 2.6]. With delta = 1% of the quantile's
// sigma-distance from the mean, the §1 example (p = 0.001) needs on the
// order of ten million repetitions.
func RepsForQuantile(p, mu, sigma, delta, conf float64) float64 {
	z := stats.StdNormalQuantile(1 - (1-conf)/2)
	theta := stats.NormalQuantile(1-p, mu, sigma)
	zq := (theta - mu) / sigma
	f := math.Exp(-zq*zq/2) / (sigma * math.Sqrt(2*math.Pi))
	r := z * math.Sqrt(p*(1-p)) / (f * delta)
	return r * r
}

// RepsToFirstHit runs Monte Carlo in batches until a sample reaches the
// cutoff or maxReps is exhausted, and returns the number of repetitions
// consumed. hit reports whether the cutoff was ever reached. The E3
// benchmark uses it to measure the naive cost of a single tail observation.
func RepsToFirstHit(mk func(batch int) (*exec.Workspace, exec.Node), q gibbs.Query, cutoff float64, batch, maxReps int) (reps int, hit bool, err error) {
	if batch < 1 {
		return 0, false, fmt.Errorf("naive: batch must be >= 1, got %d", batch)
	}
	for reps < maxReps {
		ws, plan := mk(reps)
		samples, err := MonteCarlo(ws, plan, q, batch)
		if err != nil {
			return reps, false, err
		}
		for i, s := range samples {
			if s >= cutoff {
				return reps + i + 1, true, nil
			}
		}
		reps += batch
	}
	return reps, false, nil
}
