package naive

import (
	"math"
	"testing"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/gibbs"
	"repro/internal/prng"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/vg"
)

func lossSetup(t testing.TB, seed uint64, meansVals []float64, window int) (*exec.Workspace, exec.Node) {
	t.Helper()
	cat := storage.NewCatalog()
	means := storage.NewTable("means", types.NewSchema(
		types.Column{Name: "cid", Kind: types.KindInt},
		types.Column{Name: "m", Kind: types.KindFloat},
	))
	for i, m := range meansVals {
		means.MustAppend(types.Row{types.NewInt(int64(i)), types.NewFloat(m)})
	}
	cat.Put(means)
	normal, _ := vg.NewRegistry().Lookup("Normal")
	ws := exec.NewWorkspace(cat, prng.NewStream(seed), window)
	scan, err := exec.NewScan(cat, "means", "means")
	if err != nil {
		t.Fatal(err)
	}
	sd, err := exec.NewSeed(scan, normal, []expr.Expr{expr.C("m"), expr.F(1)}, []string{"val"})
	if err != nil {
		t.Fatal(err)
	}
	return ws, &exec.Instantiate{Child: sd}
}

func sumQ() gibbs.Query {
	return gibbs.Query{Agg: exec.AggSpec{Kind: exec.AggSum, Expr: expr.C("val")}}
}

func TestMonteCarloMatchesAnalyticDistribution(t *testing.T) {
	// Sum of 5 N(i,1): N(15, 5).
	ws, plan := lossSetup(t, 1, []float64{1, 2, 3, 4, 5}, 4096)
	samples, err := MonteCarlo(ws, plan, sumQ(), 4000)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 4000 {
		t.Fatalf("samples = %d", len(samples))
	}
	s := stats.Summarize(samples)
	if math.Abs(s.Mean-15) > 0.15 {
		t.Fatalf("mean = %g, want 15", s.Mean)
	}
	if math.Abs(s.Var-5) > 0.5 {
		t.Fatalf("var = %g, want 5", s.Var)
	}
	d := stats.NewECDF(samples).KSDistance(func(x float64) float64 {
		return stats.NormalCDF(x, 15, math.Sqrt(5))
	})
	if d > 0.035 {
		t.Fatalf("KS distance to analytic law = %g", d)
	}
}

func TestMonteCarloRepetitionsAreIndependentStreams(t *testing.T) {
	// Consecutive repetitions use consecutive stream elements; correlation
	// across reps should be ~0.
	ws, plan := lossSetup(t, 2, []float64{3, 4}, 2048)
	samples, err := MonteCarlo(ws, plan, sumQ(), 2000)
	if err != nil {
		t.Fatal(err)
	}
	var sx, sy, sxx, syy, sxy float64
	n := float64(len(samples) - 1)
	for i := 0; i+1 < len(samples); i++ {
		x, y := samples[i], samples[i+1]
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	corr := (sxy/n - sx/n*sy/n) / math.Sqrt((sxx/n-sx/n*sx/n)*(syy/n-sy/n*sy/n))
	if math.Abs(corr) > 0.08 {
		t.Fatalf("lag-1 correlation = %g", corr)
	}
}

func TestMonteCarloWindowSmallerThanN(t *testing.T) {
	// The engine must transparently replenish when the window cannot cover
	// all repetitions up front.
	ws, plan := lossSetup(t, 3, []float64{3}, 64)
	samples, err := MonteCarlo(ws, plan, sumQ(), 300)
	if err != nil {
		t.Fatal(err)
	}
	s := stats.Summarize(samples)
	if math.Abs(s.Mean-3) > 0.25 {
		t.Fatalf("mean = %g", s.Mean)
	}
}

func TestMonteCarloValidation(t *testing.T) {
	ws, plan := lossSetup(t, 4, []float64{3}, 64)
	if _, err := MonteCarlo(ws, plan, sumQ(), 0); err == nil {
		t.Fatal("n=0 must error")
	}
}

func TestEstimateQuantile(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	q, err := EstimateQuantile(samples, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if q != 9 {
		t.Fatalf("0.9-quantile = %g", q)
	}
	if _, err := EstimateQuantile(nil, 0.5); err == nil {
		t.Fatal("empty sample must error")
	}
}

func TestTailSamplesAndHitRate(t *testing.T) {
	samples := []float64{1, 5, 3, 8, 2}
	tail := TailSamples(samples, 4)
	if len(tail) != 2 {
		t.Fatalf("tail = %v", tail)
	}
	if hr := HitRate(samples, 4); hr != 0.4 {
		t.Fatalf("hit rate = %g", hr)
	}
	if !math.IsNaN(HitRate(nil, 1)) {
		t.Fatal("empty hit rate must be NaN")
	}
}

func TestPaperIntroNumbers(t *testing.T) {
	// §1: normal mean $10M sd $1M; $15M is 5 sigma out.
	p := 1 - stats.StdNormalCDF(5)
	// "roughly 3.5 million Monte Carlo repetitions ... before such an
	// extremely high loss is observed even once".
	reps := ExpectedRepsPerTailHit(p)
	if reps < 3e6 || reps > 4e6 {
		t.Fatalf("expected reps per hit = %g, paper says ~3.5M", reps)
	}
	// "130 billion repetitions are required to estimate the desired
	// probability to within 1% with a confidence of 95%".
	n := RepsForTailProbability(p, 0.01, 0.95)
	if n < 1e11 || n > 1.7e11 {
		t.Fatalf("reps for tail probability = %g, paper says ~130B", n)
	}
	// "roughly ten million Monte Carlo repetitions to estimate [the 0.999
	// quantile] to within 1% with a confidence of 95%" — delta read as 1%
	// of sigma.
	nq := RepsForQuantile(0.001, 10e6, 1e6, 0.01*1e6, 0.95)
	if nq < 1e6 || nq > 1e8 {
		t.Fatalf("reps for quantile = %g, paper says ~10M", nq)
	}
}

func TestHitRateMatchesAnalyticTail(t *testing.T) {
	ws, plan := lossSetup(t, 5, []float64{1, 2, 3, 4, 5}, 8192)
	samples, err := MonteCarlo(ws, plan, sumQ(), 8000)
	if err != nil {
		t.Fatal(err)
	}
	cutoff := stats.NormalQuantile(0.95, 15, math.Sqrt(5))
	hr := HitRate(samples, cutoff)
	if math.Abs(hr-0.05) > 0.012 {
		t.Fatalf("hit rate = %g, want ~0.05", hr)
	}
}

func TestRepsToFirstHit(t *testing.T) {
	mk := func(off int) (*exec.Workspace, exec.Node) {
		ws, plan := lossSetup(t, uint64(100+off), []float64{3, 4, 5}, 512)
		return ws, plan
	}
	// Cutoff at the ~0.9 quantile of N(12, 3): hits arrive within ~10 reps
	// on average.
	cutoff := stats.NormalQuantile(0.9, 12, math.Sqrt(3))
	reps, hit, err := RepsToFirstHit(mk, sumQ(), cutoff, 100, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("expected a hit")
	}
	if reps < 1 || reps > 1000 {
		t.Fatalf("reps = %d", reps)
	}
	// Unreachable cutoff exhausts the budget.
	reps, hit, err = RepsToFirstHit(mk, sumQ(), 1e12, 100, 300)
	if err != nil || hit || reps != 300 {
		t.Fatalf("unreachable: reps=%d hit=%v err=%v", reps, hit, err)
	}
	if _, _, err := RepsToFirstHit(mk, sumQ(), 0, 0, 10); err == nil {
		t.Fatal("batch=0 must error")
	}
}
