package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"repro/internal/admit"
	"repro/internal/prng"
	"repro/internal/server"
)

// SuiteScenario is one acceptance scenario's outcome: the replay report
// plus named boolean checks against the admission contract.
type SuiteScenario struct {
	Name    string          `json:"name"`
	Server  server.Options  `json:"-"`
	Checks  map[string]bool `json:"checks"`
	Report  *Report         `json:"report"`
	Comment string          `json:"comment,omitempty"`
}

// SuiteReport is the BENCH_9.json document: the three hardening
// scenarios run in-process against deterministic traces.
type SuiteReport struct {
	Preset    string          `json:"preset"`
	Scenarios []SuiteScenario `json:"scenarios"`
	Pass      bool            `json:"pass"`
}

// heavySQL is a fixed run long enough (~100 ms on the quickstart
// engine) that a 16-wide clump overflows 2 slots + 8 queue entries.
const heavySQL = `SELECT SUM(val) AS totalLoss FROM Losses WITH RESULTDISTRIBUTION MONTECARLO(100000)`

// hungrySQL is an adaptive run whose target is unreachable inside any
// reasonable deadline, so every execution degrades at the deadline.
const hungrySQL = `SELECT SUM(val) AS totalLoss FROM Losses WITH RESULTDISTRIBUTION MONTECARLO(UNTIL ERROR < 0.0000001 AT 95%, MAX 100000000)`

// RunSuite runs the three hardening acceptance scenarios from the PR 9
// issue against in-process servers over the quickstart preset:
//
//   - steady: a Poisson load that fits the queue must not shed;
//   - burst: clumps at 8x MaxConcurrent must shed with 429 and keep
//     every queue wait under the configured -queue-wait;
//   - degrade: adaptive queries hitting the server deadline must return
//     partial degraded results, not errors.
//
// The returned bool is the conjunction of every scenario check.
func RunSuite(ctx context.Context, out io.Writer) (*SuiteReport, bool, error) {
	p, err := LookupPreset("quickstart")
	if err != nil {
		return nil, false, err
	}

	steadyTrace, err := Generate(p, ArrivalPoisson, 60, 900*time.Millisecond, 11)
	if err != nil {
		return nil, false, err
	}

	// Burst trace: three clumps of 16 simultaneous heavy queries against
	// 2 slots + 8 queue entries. The clump instant itself is the test;
	// no arrival process needed.
	burstTrace := &Trace{
		Preset:  p.Name,
		Arrival: "clump",
		Seed:    29,
		Queries: []QuerySpec{{SQL: heavySQL}},
	}
	r := prng.NewSub(29)
	for clump := 0; clump < 3; clump++ {
		for i := 0; i < 16; i++ {
			burstTrace.Events = append(burstTrace.Events, Event{
				AtMS: float64(clump) * 400, Query: 0, Seed: r.Uint64(),
			})
		}
	}

	degradeTrace := &Trace{
		Preset:  p.Name,
		Arrival: "uniform",
		Seed:    31,
		Queries: []QuerySpec{{SQL: hungrySQL}},
	}
	for i := 0; i < 6; i++ {
		degradeTrace.Events = append(degradeTrace.Events, Event{
			AtMS: float64(i) * 50, Query: 0, Seed: r.Uint64(),
		})
	}

	const burstQueueWait = 250 * time.Millisecond
	scenarios := []SuiteScenario{
		{
			Name:    "steady",
			Server:  server.Options{MaxConcurrent: 4, MaxQueue: 64, QueueWait: 10 * time.Second},
			Comment: "poisson 60 qps of quickstart mix fits 4 slots + queue: nothing sheds",
		},
		{
			Name:    "burst",
			Server:  server.Options{MaxConcurrent: 2, MaxQueue: 8, QueueWait: burstQueueWait},
			Comment: "clumps of 16 heavy queries vs 2 slots + 8 queue entries: overflow sheds with 429, queue waits bounded by -queue-wait",
		},
		{
			Name:    "degrade",
			Server:  server.Options{MaxConcurrent: 2, MaxQueue: 32, QueueWait: 10 * time.Second, DefaultDeadline: 150 * time.Millisecond},
			Comment: "adaptive queries that cannot converge inside the 150 ms server deadline return partial degraded estimates",
		},
	}
	traces := []*Trace{steadyTrace, burstTrace, degradeTrace}

	suite := &SuiteReport{Preset: p.Name, Pass: true}
	for i := range scenarios {
		sc := scenarios[i]
		engine, err := p.Setup()
		if err != nil {
			return nil, false, err
		}
		ts := httptest.NewServer(server.New(engine, sc.Server).Handler())
		rep, err := Run(ctx, traces[i], Options{URL: ts.URL})
		ts.Close()
		if err != nil {
			return nil, false, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		sc.Report = rep
		sc.Checks = checkScenario(sc.Name, rep, burstQueueWait)
		for _, ok := range sc.Checks {
			suite.Pass = suite.Pass && ok
		}
		suite.Scenarios = append(suite.Scenarios, sc)
		if out != nil {
			fmt.Fprintf(out, "scenario %-8s %s\n", sc.Name, sc.Comment)
			rep.Print(out)
			names := make([]string, 0, len(sc.Checks))
			for name := range sc.Checks {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				fmt.Fprintf(out, "  check %-28s %v\n", name, sc.Checks[name])
			}
		}
	}
	return suite, suite.Pass, nil
}

func checkScenario(name string, rep *Report, queueWait time.Duration) map[string]bool {
	checks := map[string]bool{}
	switch name {
	case "steady":
		checks["no_shed"] = rep.Shed == 0 && rep.TimedOut == 0
		checks["all_completed"] = rep.Completed == rep.Requests && rep.Errors == 0
	case "burst":
		checks["sheds_with_429"] = rep.Shed > 0 && rep.ShedRate > 0
		checks["no_transport_errors"] = rep.Errors == 0
		// The contract is that nobody waits in queue much past
		// -queue-wait: the per-class p95 from the server's own stats must
		// sit under the limit plus scheduling slack.
		waitP95 := maxClassWaitP95(rep.Admission)
		limit := float64(queueWait/time.Millisecond) + 200
		checks["queue_wait_p95_bounded"] = waitP95 >= 0 && waitP95 <= limit
	case "degrade":
		checks["degraded_partials"] = rep.Degraded > 0 && rep.Degraded == rep.Completed
		checks["no_errors"] = rep.Errors == 0 && rep.TimedOut == 0 && rep.Completed == rep.Requests
	}
	return checks
}

// maxClassWaitP95 extracts the worst per-class queue-wait p95 from the
// scraped admission stats; -1 when the stats are missing.
func maxClassWaitP95(raw json.RawMessage) float64 {
	if len(raw) == 0 {
		return -1
	}
	var st admit.Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		return -1
	}
	worst := 0.0
	for _, c := range st.Classes {
		if c.WaitP95MS > worst {
			worst = c.WaitP95MS
		}
	}
	return worst
}

// WriteFile persists the suite report (BENCH_9.json).
func (s *SuiteReport) WriteFile(path string) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
