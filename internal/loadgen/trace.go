package loadgen

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/prng"
)

// Arrival names an open-loop arrival process. All three are driven by
// the trace seed through internal/prng, so the same (preset, arrival,
// rate, duration, seed) tuple always yields the identical trace.
type Arrival string

const (
	// ArrivalPoisson draws i.i.d. exponential inter-arrival times at the
	// nominal rate.
	ArrivalPoisson Arrival = "poisson"
	// ArrivalUniform spaces arrivals exactly 1/rate apart.
	ArrivalUniform Arrival = "uniform"
	// ArrivalBurst is a square-wave Poisson process: alternating 500 ms
	// phases at 2x and 1/4x the nominal rate, the overload shape the
	// admission queue exists to absorb.
	ArrivalBurst Arrival = "burst"
)

// ParseArrival maps a flag value to an Arrival.
func ParseArrival(s string) (Arrival, error) {
	switch Arrival(s) {
	case ArrivalPoisson, ArrivalUniform, ArrivalBurst:
		return Arrival(s), nil
	}
	return "", fmt.Errorf("loadgen: unknown arrival process %q (poisson, uniform, burst)", s)
}

// Event is one request in a trace. Query indexes the trace's mix; an
// Event with SQL set overrides the mix (used by mcdbr-bench -trace to
// record literal statements). Seed, Priority and DeadlineMS are sent
// verbatim in the request body.
type Event struct {
	AtMS       float64 `json:"at_ms"`
	Query      int     `json:"query"`
	SQL        string  `json:"sql,omitempty"`
	Seed       uint64  `json:"seed"`
	Priority   string  `json:"priority,omitempty"`
	DeadlineMS int     `json:"deadline_ms,omitempty"`
}

// Trace is a fully materialized request schedule. Replaying the same
// trace against the same server configuration reproduces the same
// admission decisions up to goroutine scheduling jitter, which is what
// makes the load harness usable as a regression test.
type Trace struct {
	Preset  string      `json:"preset"`
	Arrival string      `json:"arrival,omitempty"`
	RateQPS float64     `json:"rate_qps,omitempty"`
	Seed    uint64      `json:"seed"`
	Note    string      `json:"note,omitempty"`
	Queries []QuerySpec `json:"queries,omitempty"`
	Events  []Event     `json:"events"`
}

// Generate builds a deterministic trace from a preset's mix.
func Generate(p *Preset, arrival Arrival, rateQPS float64, duration time.Duration, seed uint64) (*Trace, error) {
	return GenerateMix(p.Name, p.Queries, arrival, rateQPS, duration, seed)
}

// GenerateMix is Generate for an explicit query mix; mcdbr-bench uses
// it to emit traces for statements that are not part of any preset's
// default mix.
func GenerateMix(preset string, queries []QuerySpec, arrival Arrival, rateQPS float64, duration time.Duration, seed uint64) (*Trace, error) {
	if rateQPS <= 0 {
		return nil, fmt.Errorf("loadgen: rate must be positive, got %v", rateQPS)
	}
	if duration <= 0 {
		return nil, fmt.Errorf("loadgen: duration must be positive, got %v", duration)
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("loadgen: empty query mix")
	}
	r := prng.NewSub(seed)
	durMS := float64(duration) / float64(time.Millisecond)
	times := arrivalTimes(r, arrival, rateQPS, durMS)

	weights := make([]int, len(queries))
	total := 0
	for i, q := range queries {
		w := q.Weight
		if w <= 0 {
			w = 1
		}
		weights[i] = w
		total += w
	}

	tr := &Trace{
		Preset:  preset,
		Arrival: string(arrival),
		RateQPS: rateQPS,
		Seed:    seed,
		Queries: queries,
		Events:  make([]Event, 0, len(times)),
	}
	for _, at := range times {
		qi := pickWeighted(r, weights, total)
		tr.Events = append(tr.Events, Event{
			AtMS:       at,
			Query:      qi,
			Seed:       r.Uint64(),
			Priority:   queries[qi].Priority,
			DeadlineMS: queries[qi].DeadlineMS,
		})
	}
	return tr, nil
}

// arrivalTimes draws the arrival instants (ms offsets into the run).
func arrivalTimes(r *prng.Sub, arrival Arrival, rateQPS, durMS float64) []float64 {
	var times []float64
	switch arrival {
	case ArrivalUniform:
		step := 1000 / rateQPS
		for t := step; t < durMS; t += step {
			times = append(times, t)
		}
	case ArrivalPoisson:
		t := 0.0
		for {
			t += r.Exp() / rateQPS * 1000
			if t >= durMS {
				break
			}
			times = append(times, t)
		}
	case ArrivalBurst:
		// Non-homogeneous Poisson by exponential-work consumption: each
		// arrival needs a unit-rate exponential amount of "work", consumed
		// at the phase's rate; crossing a phase boundary re-prices the
		// remainder. Memorylessness makes this exact.
		const phaseMS = 500.0
		hi, lo := 2*rateQPS, rateQPS/4
		t := 0.0
		for t < durMS {
			work := r.Exp()
			for {
				rt := hi
				if int(t/phaseMS)%2 == 1 {
					rt = lo
				}
				toBoundary := (math.Floor(t/phaseMS)+1)*phaseMS - t
				needMS := work / rt * 1000
				if needMS <= toBoundary {
					t += needMS
					break
				}
				t += toBoundary
				work -= toBoundary / 1000 * rt
			}
			if t >= durMS {
				break
			}
			times = append(times, t)
		}
	}
	return times
}

func pickWeighted(r *prng.Sub, weights []int, total int) int {
	k := r.Intn(total)
	for i, w := range weights {
		if k < w {
			return i
		}
		k -= w
	}
	return len(weights) - 1
}

// WriteFile persists the trace as indented JSON.
func (tr *Trace) WriteFile(path string) error {
	b, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadTrace loads a trace written by WriteFile (or by hand) and
// validates its event references.
func ReadTrace(path string) (*Trace, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tr Trace
	if err := json.Unmarshal(b, &tr); err != nil {
		return nil, fmt.Errorf("loadgen: parse %s: %w", path, err)
	}
	for i, ev := range tr.Events {
		if ev.SQL == "" && (ev.Query < 0 || ev.Query >= len(tr.Queries)) {
			return nil, fmt.Errorf("loadgen: %s event %d references query %d of %d", path, i, ev.Query, len(tr.Queries))
		}
		if i > 0 && ev.AtMS < tr.Events[i-1].AtMS {
			return nil, fmt.Errorf("loadgen: %s events not sorted by at_ms (event %d)", path, i)
		}
	}
	return &tr, nil
}
