package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// Options configures a replay run.
type Options struct {
	// URL is the base URL of the target server (its /query and /healthz
	// endpoints are used).
	URL string
	// Timeout bounds each HTTP request; 0 means no client-side limit
	// (the server's own deadlines still apply).
	Timeout time.Duration
	// Client overrides the HTTP client (tests); when nil a client with
	// Timeout is built.
	Client *http.Client
}

// LatencySummary holds request-latency percentiles in milliseconds,
// measured from dispatch to full response body.
type LatencySummary struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// Report is the outcome of one replay: outcome counters keyed to the
// server's admission contract (DESIGN.md §12), throughput, latency
// percentiles, and the server's final /healthz admission stats.
type Report struct {
	Preset       string          `json:"preset"`
	Arrival      string          `json:"arrival,omitempty"`
	Seed         uint64          `json:"seed"`
	Requests     int             `json:"requests"`
	Completed    int             `json:"completed"`
	Degraded     int             `json:"degraded"`
	Shed         int             `json:"shed"`
	Unavailable  int             `json:"unavailable"`
	TimedOut     int             `json:"timed_out"`
	Errors       int             `json:"errors"`
	DurationMS   float64         `json:"duration_ms"`
	QPS          float64         `json:"qps"`
	ShedRate     float64         `json:"shed_rate"`
	DegradedRate float64         `json:"degraded_rate"`
	Latency      LatencySummary  `json:"latency_ms"`
	Admission    json.RawMessage `json:"admission,omitempty"`
}

// queryRequest mirrors the server's request schema (internal/server);
// only the fields the harness drives are present.
type queryRequest struct {
	SQL        string `json:"sql"`
	Seed       uint64 `json:"seed,omitempty"`
	Priority   string `json:"priority,omitempty"`
	DeadlineMS int    `json:"deadline_ms,omitempty"`
}

// outcome is one request's classified result.
type outcome struct {
	status    int  // 0 on transport error
	degraded  bool // response carried "degraded": true
	latencyMS float64
}

// Run replays a trace open-loop against opts.URL: every event fires at
// its recorded offset regardless of how many requests are still in
// flight, which is what lets the harness push a server past
// MaxConcurrent and observe shedding.
func Run(ctx context.Context, tr *Trace, opts Options) (*Report, error) {
	if len(tr.Events) == 0 {
		return nil, fmt.Errorf("loadgen: trace has no events")
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: opts.Timeout}
	}
	base := strings.TrimRight(opts.URL, "/")

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		outcomes []outcome
	)
	start := time.Now()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	// Open-loop dispatch sweep: one goroutine per due event.
	//mcdbr:hotpath
	for _, ev := range tr.Events {
		if d := time.Until(start.Add(time.Duration(ev.AtMS * float64(time.Millisecond)))); d > 0 {
			timer.Reset(d)
			select {
			case <-ctx.Done():
				wg.Wait()
				return nil, ctx.Err()
			case <-timer.C:
			}
		}
		if err := ctx.Err(); err != nil {
			wg.Wait()
			return nil, err
		}
		wg.Add(1)
		go func(ev Event) {
			defer wg.Done()
			out := fire(ctx, client, base, tr, ev)
			mu.Lock()
			outcomes = append(outcomes, out)
			mu.Unlock()
		}(ev)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{
		Preset:     tr.Preset,
		Arrival:    tr.Arrival,
		Seed:       tr.Seed,
		Requests:   len(outcomes),
		DurationMS: float64(elapsed) / float64(time.Millisecond),
	}
	lats := make([]float64, 0, len(outcomes))
	for _, o := range outcomes {
		if o.status != 0 {
			lats = append(lats, o.latencyMS)
		}
		switch {
		case o.status == http.StatusOK:
			rep.Completed++
			if o.degraded {
				rep.Degraded++
			}
		case o.status == http.StatusTooManyRequests:
			rep.Shed++
		case o.status == http.StatusServiceUnavailable:
			rep.Unavailable++
		case o.status == http.StatusGatewayTimeout:
			rep.TimedOut++
		default:
			rep.Errors++
		}
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.QPS = float64(rep.Requests) / secs
	}
	if rep.Requests > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Requests)
		rep.DegradedRate = float64(rep.Degraded) / float64(rep.Requests)
	}
	sort.Float64s(lats)
	rep.Latency = LatencySummary{
		P50: percentile(lats, 0.50),
		P95: percentile(lats, 0.95),
		P99: percentile(lats, 0.99),
		Max: percentile(lats, 1),
	}
	rep.Admission = scrapeAdmission(ctx, client, base)
	return rep, nil
}

// fire issues one request and classifies the outcome.
func fire(ctx context.Context, client *http.Client, base string, tr *Trace, ev Event) outcome {
	sql := ev.SQL
	if sql == "" {
		sql = tr.Queries[ev.Query].SQL
	}
	body, err := json.Marshal(queryRequest{
		SQL:        sql,
		Seed:       ev.Seed,
		Priority:   ev.Priority,
		DeadlineMS: ev.DeadlineMS,
	})
	if err != nil {
		return outcome{}
	}
	t0 := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/query", bytes.NewReader(body))
	if err != nil {
		return outcome{}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return outcome{}
	}
	defer resp.Body.Close()
	var qr struct {
		Degraded bool `json:"degraded"`
	}
	dec := json.NewDecoder(resp.Body)
	_ = dec.Decode(&qr)
	_, _ = io.Copy(io.Discard, resp.Body)
	return outcome{
		status:    resp.StatusCode,
		degraded:  qr.Degraded,
		latencyMS: float64(time.Since(t0)) / float64(time.Millisecond),
	}
}

// scrapeAdmission fetches the server's final admission stats; a failed
// scrape degrades to an absent field rather than failing the run.
func scrapeAdmission(ctx context.Context, client *http.Client, base string) json.RawMessage {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return nil
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var health struct {
		Admission json.RawMessage `json:"admission"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		return nil
	}
	return health.Admission
}

// percentile returns the q-th percentile of sorted (ascending) values
// using the nearest-rank rule; 0 for an empty slice.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(float64(len(sorted))*q+0.999999) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// WriteFile persists the report as indented JSON (BENCH_9.json).
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Print writes a one-screen human summary.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "preset=%s arrival=%s seed=%d\n", r.Preset, r.Arrival, r.Seed)
	fmt.Fprintf(w, "  requests   %d in %.0f ms (%.1f queries/s)\n", r.Requests, r.DurationMS, r.QPS)
	fmt.Fprintf(w, "  completed  %d (degraded %d)\n", r.Completed, r.Degraded)
	fmt.Fprintf(w, "  shed 429   %d (rate %.3f)   timed-out 504 %d   unavailable 503 %d   errors %d\n",
		r.Shed, r.ShedRate, r.TimedOut, r.Unavailable, r.Errors)
	fmt.Fprintf(w, "  latency ms p50=%.1f p95=%.1f p99=%.1f max=%.1f\n",
		r.Latency.P50, r.Latency.P95, r.Latency.P99, r.Latency.Max)
}
