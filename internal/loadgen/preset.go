// Package loadgen is the deterministic load harness behind
// cmd/mcdbr-loadgen (DESIGN.md §12): preset workload mixes over the
// paper's example databases, seeded open-loop arrival processes with
// trace record/replay, and a latency/shed/degradation report against a
// running mcdbr-serve instance.
package loadgen

import (
	"fmt"
	"sort"

	"repro/internal/experiments"
	"repro/internal/expr"
	"repro/internal/workload"
	"repro/mcdbr"
)

// QuerySpec is one statement in a preset's mix. Weight is the relative
// draw frequency (<=0 counts as 1); Priority and DeadlineMS are copied
// onto every request generated from the spec, so a mix can combine
// interactive dashboards with batch tail queries.
type QuerySpec struct {
	SQL        string `json:"sql"`
	Weight     int    `json:"weight,omitempty"`
	Priority   string `json:"priority,omitempty"`
	DeadlineMS int    `json:"deadline_ms,omitempty"`
}

// Preset couples an engine setup with a weighted query mix. The engine
// side only matters when the harness serves in-process; against a
// remote -url only the mix is used.
type Preset struct {
	Name        string
	Description string
	Setup       func() (*mcdbr.Engine, error)
	Queries     []QuerySpec
}

// presets is the registry. Each mirrors a workload already exercised
// elsewhere in the repo so load numbers are comparable to the unit
// benchmarks: the README quickstart aggregate, the Fig. 2 salary
// inversion self-join, the grouped DOMAIN tail query, and the
// Appendix D TPC-H-like join.
var presets = []*Preset{
	{
		Name:        "quickstart",
		Description: "README quickstart loss aggregate: fixed MONTECARLO(60) plus an adaptive UNTIL ERROR run",
		Setup:       quickstartEngine,
		Queries: []QuerySpec{
			{
				SQL:      `SELECT SUM(val) AS totalLoss FROM Losses WITH RESULTDISTRIBUTION MONTECARLO(60)`,
				Weight:   3,
				Priority: "interactive",
			},
			{
				SQL:    `SELECT SUM(val) AS totalLoss FROM Losses WITH RESULTDISTRIBUTION MONTECARLO(UNTIL ERROR < 0.02 AT 95%, MAX 20000)`,
				Weight: 1,
			},
		},
	},
	{
		Name:        "fig2",
		Description: "Fig. 2 salary inversion self-join (two scans of one random table)",
		Setup:       fig2Engine,
		Queries: []QuerySpec{
			{
				SQL: `SELECT SUM(emp2.sal - emp1.sal) AS inv
FROM emp AS emp1, emp AS emp2, sup
WHERE sup.boss = emp1.eid AND sup.peon = emp2.eid AND emp2.sal > emp1.sal
WITH RESULTDISTRIBUTION MONTECARLO(128)`,
				Weight:   2,
				Priority: "interactive",
			},
			{
				SQL: `SELECT SUM(emp2.sal - emp1.sal) AS inv
FROM emp AS emp1, emp AS emp2, sup
WHERE sup.boss = emp1.eid AND sup.peon = emp2.eid AND emp2.sal > emp1.sal
WITH RESULTDISTRIBUTION MONTECARLO(UNTIL ERROR < 0.05 AT 95%, MAX 4096)`,
				Weight: 1,
			},
		},
	},
	{
		Name:        "grouped-tail",
		Description: "grouped DOMAIN tail query (per-group adaptive chains, batch class)",
		Setup:       groupedTailEngine,
		Queries: []QuerySpec{
			{
				SQL: `SELECT SUM(val) AS s FROM Losses GROUP BY cid
WITH RESULTDISTRIBUTION MONTECARLO(UNTIL ERROR < 0.01, MAX 4096)
DOMAIN s >= QUANTILE(0.9)`,
				Priority: "batch",
			},
			{
				SQL:      `SELECT SUM(val) AS s FROM Losses GROUP BY cid WITH RESULTDISTRIBUTION MONTECARLO(48)`,
				Weight:   2,
				Priority: "interactive",
			},
		},
	},
	{
		Name:        "tpch",
		Description: "Appendix D TPC-H-like join at smoke scale (links mcdbr-bench -trace to the harness)",
		Setup:       tpchEngine,
		Queries: []QuerySpec{
			{
				SQL: `SELECT SUM(r.val) FROM random_ord AS r, lineitem AS l
WHERE r.o_orderkey = l.l_orderkey AND (r.o_yr = 1994 OR r.o_yr = 1995)
WITH RESULTDISTRIBUTION MONTECARLO(32)`,
				Weight: 2,
			},
			{
				SQL: `SELECT SUM(r.val) FROM random_ord AS r, lineitem AS l
WHERE r.o_orderkey = l.l_orderkey AND (r.o_yr = 1994 OR r.o_yr = 1995)
WITH RESULTDISTRIBUTION MONTECARLO(UNTIL ERROR < 0.05 AT 95%, MAX 512)`,
				Weight:   1,
				Priority: "batch",
			},
		},
	},
}

// LookupPreset returns the named preset or an error listing the valid
// names.
func LookupPreset(name string) (*Preset, error) {
	for _, p := range presets {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("loadgen: unknown preset %q (have %v)", name, PresetNames())
}

// PresetNames lists the registered presets, sorted.
func PresetNames() []string {
	names := make([]string, len(presets))
	for i, p := range presets {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}

func quickstartEngine() (*mcdbr.Engine, error) {
	e := mcdbr.New(mcdbr.WithSeed(42), mcdbr.WithParallelism(2))
	e.RegisterTable(workload.LossMeans(30, 2, 8, 5))
	err := e.DefineRandomTable(mcdbr.RandomTable{
		Name: "losses", ParamTable: "means", VG: "Normal",
		VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
		Columns:  []mcdbr.RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
	})
	return e, err
}

func fig2Engine() (*mcdbr.Engine, error) {
	e := mcdbr.New(mcdbr.WithSeed(77), mcdbr.WithParallelism(2))
	sup, empmeans := workload.SalaryDB()
	e.RegisterTable(sup)
	e.RegisterTable(empmeans)
	err := e.DefineRandomTable(mcdbr.RandomTable{
		Name: "emp", ParamTable: "empmeans", VG: "Normal",
		VGParams: []expr.Expr{expr.C("msal"), expr.F(4e6)},
		Columns:  []mcdbr.RandomCol{{Name: "eid", FromParam: "eid"}, {Name: "sal", VGOut: 0}},
	})
	return e, err
}

func groupedTailEngine() (*mcdbr.Engine, error) {
	e := mcdbr.New(mcdbr.WithSeed(9), mcdbr.WithWindow(2048), mcdbr.WithParallelism(2))
	e.RegisterTable(workload.LossMeans(8, 2, 8, 11))
	err := e.DefineRandomTable(mcdbr.RandomTable{
		Name: "losses", ParamTable: "means", VG: "Normal",
		VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
		Columns:  []mcdbr.RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
	})
	return e, err
}

func tpchEngine() (*mcdbr.Engine, error) {
	// Smoke scale: paper scale divided by 400 keeps preset startup under
	// a second while preserving the join shape.
	return experiments.TPCHEngine(400, 42, mcdbr.WithParallelism(2))
}
