package loadgen

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/server"
)

// TestGenerateDeterministic: same tuple, same trace — the property the
// whole record/replay story rests on.
func TestGenerateDeterministic(t *testing.T) {
	p, err := LookupPreset("quickstart")
	if err != nil {
		t.Fatal(err)
	}
	for _, arrival := range []Arrival{ArrivalPoisson, ArrivalUniform, ArrivalBurst} {
		tr1, err := Generate(p, arrival, 50, 2*time.Second, 7)
		if err != nil {
			t.Fatal(err)
		}
		tr2, err := Generate(p, arrival, 50, 2*time.Second, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tr1, tr2) {
			t.Fatalf("%s: same seed produced different traces", arrival)
		}
		if len(tr1.Events) == 0 {
			t.Fatalf("%s: empty trace", arrival)
		}
		for i, ev := range tr1.Events {
			if ev.AtMS < 0 || ev.AtMS >= 2000 {
				t.Fatalf("%s: event %d at %v ms outside run window", arrival, i, ev.AtMS)
			}
			if i > 0 && ev.AtMS < tr1.Events[i-1].AtMS {
				t.Fatalf("%s: events out of order at %d", arrival, i)
			}
			if ev.Query < 0 || ev.Query >= len(p.Queries) {
				t.Fatalf("%s: event %d references query %d", arrival, i, ev.Query)
			}
		}
		tr3, err := Generate(p, arrival, 50, 2*time.Second, 8)
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(tr1.Events, tr3.Events) {
			t.Fatalf("%s: different seeds produced identical traces", arrival)
		}
	}
}

// TestGenerateRate: the arrival processes produce roughly rate*duration
// events; burst averages out near the nominal rate by construction
// (2x and 1/4x phases in equal measure -> 1.125x ceiling).
func TestGenerateRate(t *testing.T) {
	p, err := LookupPreset("quickstart")
	if err != nil {
		t.Fatal(err)
	}
	for _, arrival := range []Arrival{ArrivalPoisson, ArrivalUniform, ArrivalBurst} {
		tr, err := Generate(p, arrival, 100, 10*time.Second, 3)
		if err != nil {
			t.Fatal(err)
		}
		n := len(tr.Events)
		if n < 500 || n > 1500 {
			t.Fatalf("%s: %d events for 100 qps x 10 s", arrival, n)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	p, err := LookupPreset("fig2")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Generate(p, ArrivalPoisson, 10, time.Second, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Literal-SQL events (the mcdbr-bench -trace shape) must survive the
	// round trip too.
	tr.Events = append(tr.Events, Event{
		AtMS: 1500, Query: -1, SQL: "SELECT COUNT(*) FROM sup", Seed: 1, Priority: "batch",
	})
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("round trip mismatch:\nwrote %+v\nread  %+v", tr, got)
	}
}

func TestReadTraceRejectsBadQueryIndex(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	tr := &Trace{Preset: "quickstart", Events: []Event{{AtMS: 0, Query: 3}}}
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(path); err == nil {
		t.Fatal("want error for out-of-range query index")
	}
}

func newLocalServer(t *testing.T, preset string, opts server.Options) *httptest.Server {
	t.Helper()
	p, err := LookupPreset(preset)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := p.Setup()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(engine, opts).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestReplaySmoke: a small trace that fits comfortably under the
// admission limits completes with zero shed, twice in a row.
func TestReplaySmoke(t *testing.T) {
	p, err := LookupPreset("quickstart")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Generate(p, ArrivalPoisson, 40, 400*time.Millisecond, 7)
	if err != nil {
		t.Fatal(err)
	}
	ts := newLocalServer(t, "quickstart", server.Options{
		MaxConcurrent: 4, MaxQueue: 64, QueueWait: 30 * time.Second,
	})
	for round := 0; round < 2; round++ {
		rep, err := Run(context.Background(), tr, Options{URL: ts.URL})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Requests != len(tr.Events) {
			t.Fatalf("round %d: %d outcomes for %d events", round, rep.Requests, len(tr.Events))
		}
		if rep.Shed != 0 || rep.Errors != 0 || rep.Completed != rep.Requests {
			t.Fatalf("round %d: smoke load shed or failed: %+v", round, rep)
		}
		if len(rep.Admission) == 0 {
			t.Fatalf("round %d: no admission stats scraped", round)
		}
		if rep.Latency.P50 <= 0 || rep.Latency.Max < rep.Latency.P99 {
			t.Fatalf("round %d: implausible latency summary %+v", round, rep.Latency)
		}
	}
}

// TestReplayOverloadSheds: 10 simultaneous heavy queries against one
// slot and no queue — the overflow must come back as 429/shed.
func TestReplayOverloadSheds(t *testing.T) {
	tr := &Trace{
		Preset:  "quickstart",
		Seed:    13,
		Queries: []QuerySpec{{SQL: heavySQL}},
	}
	for i := 0; i < 10; i++ {
		tr.Events = append(tr.Events, Event{AtMS: 0, Query: 0, Seed: uint64(i + 1)})
	}
	ts := newLocalServer(t, "quickstart", server.Options{
		MaxConcurrent: 1, MaxQueue: -1,
	})
	rep, err := Run(context.Background(), tr, Options{URL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 {
		t.Fatalf("overload run shed nothing: %+v", rep)
	}
	if rep.Completed == 0 {
		t.Fatalf("overload run completed nothing: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("unexpected transport/server errors: %+v", rep)
	}
}

// TestReplayCommittedTrace: the checked-in CI smoke trace keeps
// replaying with zero shed — the record/replay regression contract.
func TestReplayCommittedTrace(t *testing.T) {
	tr, err := ReadTrace("testdata/smoke_trace.json")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Preset != "quickstart" || len(tr.Events) == 0 {
		t.Fatalf("unexpected committed trace: preset=%q events=%d", tr.Preset, len(tr.Events))
	}
	ts := newLocalServer(t, tr.Preset, server.Options{
		MaxConcurrent: 4, MaxQueue: 64, QueueWait: 10 * time.Second,
	})
	rep, err := Run(context.Background(), tr, Options{URL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed != 0 || rep.Errors != 0 || rep.Completed != len(tr.Events) {
		t.Fatalf("committed smoke trace regressed: %+v", rep)
	}
}

// TestRunSuite: the BENCH_9 acceptance suite passes end to end.
func TestRunSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("suite runs ~3s of load")
	}
	suite, ok, err := RunSuite(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("suite failed: %+v", suite)
	}
	if len(suite.Scenarios) != 3 {
		t.Fatalf("want 3 scenarios, got %d", len(suite.Scenarios))
	}
	path := filepath.Join(t.TempDir(), "BENCH_9.json")
	if err := suite.WriteFile(path); err != nil {
		t.Fatal(err)
	}
}
