package exec

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/prng"
	"repro/internal/types"
)

func TestCrossProduct(t *testing.T) {
	cat := testCatalog()
	ws := NewWorkspace(cat, prng.NewStream(1), 8)
	a, _ := NewScan(cat, "means", "a")
	b, _ := NewScan(cat, "dept", "b")
	cross := NewCross(a, b, nil)
	out, err := ws.Run(cross)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 9 { // 3 x 3
		t.Fatalf("cross rows = %d", len(out))
	}
	if cross.Schema().Len() != 4 {
		t.Fatalf("schema = %s", cross.Schema())
	}
}

func TestCrossResidual(t *testing.T) {
	cat := testCatalog()
	ws := NewWorkspace(cat, prng.NewStream(1), 8)
	a, _ := NewScan(cat, "means", "a")
	b, _ := NewScan(cat, "dept", "b")
	cross := NewCross(a, b, expr.B(expr.OpLt, expr.C("a.cid"), expr.C("b.cid")))
	out, err := ws.Run(cross)
	if err != nil {
		t.Fatal(err)
	}
	// a.cid in {1,2,3}, b.cid in {1,2,2}: pairs with a<b = (1,2),(1,2) = 2.
	if len(out) != 2 {
		t.Fatalf("residual cross rows = %d", len(out))
	}
}

func TestCrossCarriesRandomLineage(t *testing.T) {
	cat := testCatalog()
	ws := NewWorkspace(cat, prng.NewStream(1), 16)
	loss := buildLossPlan(t, ws)
	b, _ := NewScan(cat, "dept", "b")
	cross := NewCross(loss, b, nil)
	out, err := ws.Run(cross)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 9 {
		t.Fatalf("rows = %d", len(out))
	}
	for _, tu := range out {
		if len(tu.Rand) != 1 || tu.Rand[0].Slot != 2 {
			t.Fatalf("random lineage lost or misplaced: %+v", tu.Rand)
		}
	}
	// Right-side random slots must shift by the left width.
	cross2 := NewCross(b, loss, nil)
	out2, err := ws.Run(cross2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range out2 {
		if len(tu.Rand) != 1 || tu.Rand[0].Slot != 4 {
			t.Fatalf("right-side slot shift wrong: %+v", tu.Rand)
		}
	}
}

func TestRenameOperator(t *testing.T) {
	cat := testCatalog()
	ws := NewWorkspace(cat, prng.NewStream(1), 8)
	scan, _ := NewScan(cat, "means", "means")
	ren := NewRename(scan, "x")
	if ren.Schema().Lookup("x.cid") != 0 || ren.Schema().Lookup("x.m") != 1 {
		t.Fatalf("renamed schema = %s", ren.Schema())
	}
	out, err := ws.Run(ren)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("rows = %d", len(out))
	}
	if !ren.Deterministic() {
		t.Fatal("rename of a scan is deterministic")
	}
}

func TestProjectAs(t *testing.T) {
	cat := testCatalog()
	ws := NewWorkspace(cat, prng.NewStream(1), 8)
	scan, _ := NewScan(cat, "means", "means")
	p, err := NewProjectAs(scan, []string{"means.m", "means.cid"}, []string{"mean", "id"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema().Lookup("mean") != 0 || p.Schema().Lookup("id") != 1 {
		t.Fatalf("schema = %s", p.Schema())
	}
	if p.Schema().Col(0).Kind != types.KindFloat {
		t.Fatalf("kind lost: %s", p.Schema())
	}
	out, err := ws.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Det[0].Kind() != types.KindFloat || out[0].Det[1].Kind() != types.KindInt {
		t.Fatalf("row = %v", out[0].Det)
	}
	if _, err := NewProjectAs(scan, []string{"means.m"}, []string{"a", "b"}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := NewProjectAs(scan, []string{"nope"}, []string{"a"}); err == nil {
		t.Fatal("unknown column must error")
	}
}
