// Replicate-sharded parallel execution. MCDB-R represents random tables by
// pseudorandom TS-seeds, and element i of a seed's stream is a pure
// function of (seed, i) — so any Monte Carlo replicate can be regenerated
// independently, on any worker, in any order. This file exploits that: the
// N replicates are split into contiguous per-worker windows, each worker
// gets a private Workspace over the shared read-only Catalog whose
// Instantiate window covers exactly its shard, and shard results are merged
// back in replicate order. Because stream values, seed allocation order,
// and per-replicate evaluation order are all independent of the shard
// layout, the merged output is bit-for-bit identical to sequential
// execution for every worker count.

package exec

import (
	"fmt"
	"sync"
)

// Shard is one contiguous window of Monte Carlo replicates assigned to a
// worker, together with the worker's private Workspace. The workspace
// shares the prototype's Catalog and Master stream but has its own seed
// store and materialization cache, and its Instantiate window covers
// exactly the stream positions [Lo, Hi).
type Shard struct {
	// Index numbers the shard (0-based, in replicate order).
	Index int
	// Lo and Hi bound the shard's replicate window [Lo, Hi).
	Lo, Hi int
	// WS is the worker-private workspace.
	WS *Workspace
}

// Len returns the number of replicates in the shard.
func (s Shard) Len() int { return s.Hi - s.Lo }

// Shards partitions n replicates into at most workers contiguous,
// near-equal windows. Every replicate belongs to exactly one window and
// windows are returned in replicate order.
func Shards(n, workers int) [][2]int {
	if n < 1 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	out := make([][2]int, 0, workers)
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// ShardWorkspace builds the worker-private workspace for replicate window
// [lo, hi): same catalog and master stream as proto (so the deterministic
// pipeline allocates identical TS-seeds with identical SplitMix64-derived
// substreams), fresh seed store and cache, and an Instantiate window
// covering exactly the shard's stream positions.
func ShardWorkspace(proto *Workspace, lo, hi int) *Workspace {
	ws := NewWorkspace(proto.Catalog, proto.Master, hi-lo)
	ws.Base = uint64(lo)
	// Workers share the engine-level deterministic-prefix cache: the first
	// worker to reach a Materialize node computes its subtree, the others
	// wait and share the read-only result instead of re-running it.
	ws.Prefix = proto.Prefix
	// Workers inherit the run's batch size and charge the run's shared
	// memory gauge, so MaxBytes bounds the whole run, not each worker.
	ws.BatchSize = proto.BatchSize
	ws.MaxBytes = proto.MaxBytes
	ws.Slabs = proto.Slabs
	ws.Ctx = proto.Ctx
	ws.DisableKernels = proto.DisableKernels
	ws.adoptGauge(proto.Gauge)
	return ws
}

// RunSharded executes fn once per shard, concurrently, and merges the
// per-shard results in replicate order into a single slice of n values.
// fn receives a Shard whose private workspace is primed for the shard's
// replicate window and must return exactly Shard.Len() values — result i
// of the returned slice is replicate Lo+i. The prototype workspace is
// never run; it only donates its catalog and master stream.
//
// The first error from any shard is returned and the merged result
// discarded. Workers never share mutable state, so fn needs no locking as
// long as it confines itself to the shard's workspace.
func RunSharded(proto *Workspace, n, workers int, fn func(Shard) ([]float64, error)) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("exec: RunSharded needs n >= 1 replicates, got %d", n)
	}
	windows := Shards(n, workers)
	out := make([]float64, n)
	errs := make([]error, len(windows))
	var wg sync.WaitGroup
	//mcdbr:hotpath
	for i, w := range windows {
		sh := Shard{Index: i, Lo: w[0], Hi: w[1], WS: ShardWorkspace(proto, w[0], w[1])}
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			// A panic on a worker goroutine would kill the whole process
			// regardless of recovery installed by the caller; contain it
			// here so one bad query surfaces as an error instead.
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("exec: shard %d panicked: %v", sh.Index, r)
				}
			}()
			if err := sh.WS.Cancelled(); err != nil {
				errs[i] = err
				return
			}
			res, err := fn(sh)
			if err == nil && len(res) != sh.Len() {
				err = fmt.Errorf("exec: shard %d returned %d results for %d replicates", sh.Index, len(res), sh.Len())
			}
			if err != nil {
				errs[i] = err
				return
			}
			copy(out[sh.Lo:sh.Hi], res)
		}(i, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
