// Package exec implements MCDB-R's physical query plans over Gibbs tuples
// (paper §5, Fig. 2). A plan is a tree of operators — Scan, Seed,
// Instantiate, Select, Project, Join, Split — that runs once, no matter how
// many DB versions the Gibbs Looper maintains, producing the stream of
// instantiated Gibbs tuples the looper consumes.
//
// Plans support the replenishing runs of paper §9: results of fully
// deterministic subtrees are materialized on first execution and served
// from cache on re-execution, the TS-seed allocator is rewound so the same
// logical seeds are revisited in the same order, and Instantiate adds only
// new or currently-assigned stream values.
package exec

import (
	"fmt"
	"strings"

	"repro/internal/bundle"
	"repro/internal/expr"
	"repro/internal/prng"
	"repro/internal/seeds"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/vg"
)

// Workspace carries cross-operator state for one query.
type Workspace struct {
	// Master is the engine-level stream all TS-seed streams derive from.
	Master prng.Stream
	// Seeds is the query's TS-seed store.
	Seeds *seeds.Store
	// Window is the number of fresh stream values Instantiate materializes
	// per seed per run (the paper's "1000 random values initially").
	Window int
	// Base is the first stream position Instantiate materializes on a
	// non-replenishing run: the window covers [Base, Base+Window). It is 0
	// for ordinary sequential execution; replicate-sharded parallel
	// execution gives each worker a workspace whose Base is the first
	// replicate of its shard, so workers materialize disjoint slices of the
	// same streams (stream element values depend only on (seed, position),
	// never on the window they were materialized into).
	Base uint64
	// Catalog resolves Scan table names.
	Catalog *storage.Catalog
	// Replenishing is true during a §9 replenishing run.
	Replenishing bool
	// Prefix, when non-nil, is the engine-level deterministic-prefix
	// materialization cache handle: Materialize nodes store and look up
	// their subtree results there, keyed by subtree fingerprint, so
	// repeated runs (prepared queries, shard workers) skip the
	// deterministic part of the plan entirely.
	Prefix *PrefixHandle

	matCache  map[Node][]*bundle.Tuple
	scanCache map[string][]*bundle.Tuple

	// det holds allocations that must survive replenishing runs
	// (deterministic subtree outputs, TS-seed parameter rows); tmp holds
	// everything else and is recycled by BeginReplenish, when the previous
	// plan output is discarded wholesale.
	det, tmp *bundle.Slab
	// detDepth > 0 while running inside a deterministic subtree, whose
	// output is retained by matCache (and possibly the engine prefix
	// cache) and therefore must come from the pinned slab.
	detDepth int
}

// NewWorkspace builds a workspace. window <= 0 selects 1024.
func NewWorkspace(cat *storage.Catalog, master prng.Stream, window int) *Workspace {
	if window <= 0 {
		window = 1024
	}
	return &Workspace{
		Master:    master,
		Seeds:     seeds.NewStore(),
		Window:    window,
		Catalog:   cat,
		matCache:  make(map[Node][]*bundle.Tuple),
		scanCache: make(map[string][]*bundle.Tuple),
		det:       bundle.NewSlab(),
		tmp:       bundle.NewSlab(),
	}
}

// alloc returns the slab node Run methods must allocate tuples from:
// the pinned slab inside deterministic subtrees (their output outlives
// replenishing runs via the materialization caches), the recyclable slab
// everywhere else.
func (ws *Workspace) alloc() *bundle.Slab {
	if ws.detDepth > 0 {
		return ws.det
	}
	return ws.tmp
}

// Run executes the plan rooted at n. On replenishing runs, call
// BeginReplenish first.
func (ws *Workspace) Run(n Node) ([]*bundle.Tuple, error) {
	if n.Deterministic() {
		if cached, ok := ws.matCache[n]; ok {
			return cached, nil
		}
		ws.detDepth++
		out, err := n.Run(ws)
		ws.detDepth--
		if err != nil {
			return nil, err
		}
		ws.matCache[n] = out
		return out, nil
	}
	return n.Run(ws)
}

// BeginReplenish prepares the workspace for a §9 replenishing run: existing
// Gibbs tuples are discarded by the caller, the seed allocator is rewound
// so the deterministic pipeline revisits the same seeds, Instantiate
// switches to new-or-assigned materialization, and the recyclable tuple
// slab is reset — the caller has dropped every reference into it, and the
// deterministic outputs that survive (materialization caches, seed
// parameter rows) live on the pinned slab.
func (ws *Workspace) BeginReplenish() {
	ws.Replenishing = true
	ws.Seeds.ResetAlloc()
	ws.tmp.Reset()
}

// Node is one operator in a physical plan.
type Node interface {
	// Schema is the operator's output schema.
	Schema() *types.Schema
	// Run produces the operator's full output. Use Workspace.Run for
	// caching of deterministic subtrees.
	Run(ws *Workspace) ([]*bundle.Tuple, error)
	// Deterministic reports whether the subtree involves no randomness.
	Deterministic() bool
	// Children returns the operator's inputs, left to right (see
	// FormatPlan).
	Children() []Node
	// String names the operator for plan display.
	String() string
}

// Scan reads a catalog table, qualifying column names with the alias.
type Scan struct {
	Table string
	Alias string

	schema *types.Schema
}

// NewScan builds a scan node; the schema is resolved at first Run.
func NewScan(cat *storage.Catalog, table, alias string) (*Scan, error) {
	t, ok := cat.Get(table)
	if !ok {
		return nil, fmt.Errorf("exec: table %q not found", table)
	}
	if alias == "" {
		alias = table
	}
	return &Scan{Table: table, Alias: alias, schema: t.Schema().Rename(alias)}, nil
}

// Schema implements Node.
func (s *Scan) Schema() *types.Schema { return s.schema }

// Deterministic implements Node.
func (s *Scan) Deterministic() bool { return true }

func (s *Scan) String() string { return fmt.Sprintf("Scan(%s AS %s)", s.Table, s.Alias) }

// Run implements Node. Scan tuples share the catalog's immutable row
// storage (rows are never copied), and scans of the same table — e.g. the
// two aliases of a self-join — share one tuple batch per workspace via the
// scan cache: the batch depends only on the table contents, never on the
// alias, because tuples carry values, not column names.
func (s *Scan) Run(ws *Workspace) ([]*bundle.Tuple, error) {
	key := strings.ToLower(s.Table)
	if out, ok := ws.scanCache[key]; ok {
		return out, nil
	}
	t, ok := ws.Catalog.Get(s.Table)
	if !ok {
		return nil, fmt.Errorf("exec: table %q not found", s.Table)
	}
	slab := ws.alloc()
	out := make([]*bundle.Tuple, t.NumRows())
	for i := 0; i < t.NumRows(); i++ {
		tu := slab.Tuple()
		tu.Det = t.Row(i)
		out[i] = tu
	}
	ws.scanCache[key] = out
	return out, nil
}

// Seed implements the paper's Seed operator: it attaches a fresh TS-seed to
// every input tuple and appends the VG function's output columns as random
// attribute slots (values are filled in by Instantiate).
type Seed struct {
	Child Node
	// Gen is the VG function.
	Gen vg.Func
	// ParamExprs produce the VG parameter row from each input tuple; they
	// must reference deterministic attributes only.
	ParamExprs []expr.Expr
	// OutNames name the appended random columns (qualified by the caller).
	OutNames []string

	schema *types.Schema
}

// NewSeed builds a Seed node.
func NewSeed(child Node, gen vg.Func, paramExprs []expr.Expr, outNames []string) (*Seed, error) {
	kinds := gen.OutKinds()
	if len(outNames) != len(kinds) {
		return nil, fmt.Errorf("exec: VG %s emits %d columns, got %d names", gen.Name(), len(kinds), len(outNames))
	}
	if gen.Arity() >= 0 && len(paramExprs) != gen.Arity() {
		return nil, fmt.Errorf("exec: VG %s needs %d parameters, got %d", gen.Name(), gen.Arity(), len(paramExprs))
	}
	cols := make([]types.Column, len(kinds))
	for i, k := range kinds {
		cols[i] = types.Column{Name: outNames[i], Kind: k}
	}
	return &Seed{Child: child, Gen: gen, ParamExprs: paramExprs, OutNames: outNames,
		schema: child.Schema().Concat(types.NewSchema(cols...))}, nil
}

// Schema implements Node.
func (s *Seed) Schema() *types.Schema { return s.schema }

// Deterministic implements Node.
func (s *Seed) Deterministic() bool { return false }

func (s *Seed) String() string { return fmt.Sprintf("Seed(%s)", s.Gen.Name()) }

// Run implements Node.
func (s *Seed) Run(ws *Workspace) ([]*bundle.Tuple, error) {
	in, err := ws.Run(s.Child)
	if err != nil {
		return nil, err
	}
	compiled := make([]*expr.Compiled, len(s.ParamExprs))
	for i, pe := range s.ParamExprs {
		c, err := expr.Compile(pe, s.Child.Schema())
		if err != nil {
			return nil, fmt.Errorf("exec: Seed parameter %d: %w", i, err)
		}
		compiled[i] = c
	}
	childWidth := s.Child.Schema().Len()
	nOut := len(s.Gen.OutKinds())
	slab := ws.alloc()
	out := make([]*bundle.Tuple, len(in))
	for i, tu := range in {
		// The seed store retains the parameter row (and replaces it on each
		// replenishing run), so it must be an ordinary GC-managed
		// allocation: carving it from the pinned slab would leak one row
		// per seed per replenishment, since that slab is never reset.
		params := make([]types.Value, len(compiled))
		for j, c := range compiled {
			params[j] = c.Eval(tu.Det)
		}
		// Parameter expressions over random slots would read Null
		// placeholders; reject them so mistakes surface early.
		for j, p := range params {
			if p.IsNull() {
				if cols := expr.Columns(s.ParamExprs[j]); len(cols) > 0 {
					for _, cn := range cols {
						if isRandomSlot(tu, s.Child.Schema().Lookup(cn)) {
							return nil, fmt.Errorf("exec: Seed parameter %d references random attribute %q", j, cn)
						}
					}
				}
			}
		}
		seed := ws.Seeds.Alloc(ws.Master, s.Gen, params)
		det := slab.Row(childWidth + nOut)
		copy(det, tu.Det)
		nt := slab.Tuple()
		nt.Det = det
		nt.Rand = slab.RandRefs(len(tu.Rand) + nOut)
		copy(nt.Rand, tu.Rand)
		for o := 0; o < nOut; o++ {
			nt.Rand[len(tu.Rand)+o] = bundle.RandRef{Slot: childWidth + o, SeedID: seed.ID, Out: o}
		}
		// Presence lineage is shared, not copied: tuples never mutate their
		// Pres slices in place (extensions always build a fresh slice).
		nt.Pres = tu.Pres
		out[i] = nt
	}
	return out, nil
}

func isRandomSlot(tu *bundle.Tuple, slot int) bool {
	if slot < 0 {
		return false
	}
	for _, r := range tu.Rand {
		if r.Slot == slot {
			return true
		}
	}
	return false
}

// Instantiate materializes stream-value windows for every TS-seed
// referenced by the child's output (the paper's Instantiate operator). On a
// first run the window is [0, Window); on a replenishing run it is the
// never-processed range [MaxUsed+1, MaxUsed+1+Window) plus the positions
// currently assigned to DB versions (§9).
type Instantiate struct {
	Child Node
}

// Schema implements Node.
func (n *Instantiate) Schema() *types.Schema { return n.Child.Schema() }

// Deterministic implements Node.
func (n *Instantiate) Deterministic() bool { return false }

func (n *Instantiate) String() string { return "Instantiate" }

// Run implements Node.
func (n *Instantiate) Run(ws *Workspace) ([]*bundle.Tuple, error) {
	in, err := ws.Run(n.Child)
	if err != nil {
		return nil, err
	}
	done := map[uint64]bool{}
	for _, tu := range in {
		for _, r := range tu.Rand {
			if done[r.SeedID] {
				continue
			}
			done[r.SeedID] = true
			s := ws.Seeds.MustGet(r.SeedID)
			if ws.Replenishing {
				if err := s.Materialize(s.MaxUsed+1, ws.Window, s.AssignedPositions()); err != nil {
					return nil, err
				}
			} else {
				if err := s.Materialize(ws.Base, ws.Window, nil); err != nil {
					return nil, err
				}
			}
		}
	}
	return in, nil
}

// Select filters tuples by a predicate. Deterministic predicates drop
// tuples outright. A predicate that references random attributes of
// exactly one TS-seed per tuple is recorded as an isPres vector over that
// seed's materialized positions (paper §5); tuples whose vector is
// all-false are dropped. Predicates spanning random attributes of multiple
// seeds must instead be pulled up into the Gibbs Looper (paper App. A).
type Select struct {
	Child Node
	Pred  expr.Expr
}

// Schema implements Node.
func (n *Select) Schema() *types.Schema { return n.Child.Schema() }

// Deterministic implements Node.
func (n *Select) Deterministic() bool { return n.Child.Deterministic() }

func (n *Select) String() string { return fmt.Sprintf("Select(%s)", n.Pred) }

// Run implements Node.
func (n *Select) Run(ws *Workspace) ([]*bundle.Tuple, error) {
	in, err := ws.Run(n.Child)
	if err != nil {
		return nil, err
	}
	schema := n.Child.Schema()
	compiled, err := expr.Compile(n.Pred, schema)
	if err != nil {
		return nil, fmt.Errorf("exec: Select: %w", err)
	}
	refSlots := make([]int, 0, 4)
	for _, name := range expr.Columns(n.Pred) {
		refSlots = append(refSlots, schema.MustLookup(name))
	}
	slab := ws.alloc()
	scratch := make(types.Row, schema.Len())
	var refs []bundle.RandRef
	var seedIDs []uint64
	var out []*bundle.Tuple
	for _, tu := range in {
		// Which referenced slots are random in this tuple, and for which seed?
		refs = refs[:0]
		seedIDs = seedIDs[:0]
		for _, slot := range refSlots {
			for _, r := range tu.Rand {
				if r.Slot == slot {
					refs = append(refs, r)
					seen := false
					for _, id := range seedIDs {
						if id == r.SeedID {
							seen = true
							break
						}
					}
					if !seen {
						seedIDs = append(seedIDs, r.SeedID)
					}
				}
			}
		}
		switch {
		case len(refs) == 0:
			if compiled.EvalBool(tu.Det) {
				out = append(out, tu)
			}
		case len(seedIDs) == 1:
			pv, any, err := buildPresVec(ws, tu, refs, compiled, scratch)
			if err != nil {
				return nil, err
			}
			if !any {
				continue // paper §5: predicate satisfied in no DB instance
			}
			// Shallow clone: Det and Rand are shared read-only with the
			// input tuple; only the presence lineage is extended, into a
			// fresh slice so the input's Pres is never mutated.
			nt := slab.Tuple()
			nt.Det = tu.Det
			nt.Rand = tu.Rand
			nt.Pres = make([]bundle.PresVec, len(tu.Pres)+1)
			copy(nt.Pres, tu.Pres)
			nt.Pres[len(tu.Pres)] = pv
			out = append(out, nt)
		default:
			return nil, fmt.Errorf("exec: Select predicate %s spans random attributes of %d seeds; pull it up into the GibbsLooper", n.Pred, len(seedIDs))
		}
	}
	return out, nil
}

// buildPresVec evaluates the predicate for every materialized position of
// the (single) seed behind refs, substituting that position's VG outputs
// into the referenced slots. scratch is a caller-provided row buffer of
// the tuple's width, overwritten per call.
func buildPresVec(ws *Workspace, tu *bundle.Tuple, refs []bundle.RandRef, pred *expr.Compiled, scratch types.Row) (bundle.PresVec, bool, error) {
	seedID := refs[0].SeedID
	s := ws.Seeds.MustGet(seedID)
	w := &s.Window
	row := scratch
	copy(row, tu.Det)
	evalAt := func(pos uint64) (bool, error) {
		vals, ok := w.Get(pos)
		if !ok {
			return false, fmt.Errorf("exec: seed %d position %d not materialized during Select", seedID, pos)
		}
		for _, r := range refs {
			if r.Out >= len(vals) {
				return false, fmt.Errorf("exec: seed %d VG output %d of %d", seedID, r.Out, len(vals))
			}
			row[r.Slot] = vals[r.Out]
		}
		return pred.EvalBool(row), nil
	}
	pv := bundle.PresVec{SeedID: seedID, Lo: w.Lo, Bits: make([]bool, len(w.Vals))}
	any := false
	for i := range w.Vals {
		b, err := evalAt(w.Lo + uint64(i))
		if err != nil {
			return pv, false, err
		}
		pv.Bits[i] = b
		any = any || b
	}
	if len(w.Sparse) > 0 {
		pv.Sparse = make(map[uint64]bool, len(w.Sparse))
		for pos := range w.Sparse {
			b, err := evalAt(pos)
			if err != nil {
				return pv, false, err
			}
			pv.Sparse[pos] = b
			any = any || b
		}
	}
	return pv, any, nil
}

// Project narrows the schema to the named columns.
type Project struct {
	Child Node
	Cols  []string

	schema *types.Schema
	idx    []int
}

// NewProject builds a projection node.
func NewProject(child Node, cols ...string) (*Project, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := child.Schema().Lookup(c)
		if j < 0 {
			return nil, fmt.Errorf("exec: Project column %q not in %s", c, child.Schema())
		}
		idx[i] = j
	}
	return &Project{Child: child, Cols: cols, schema: child.Schema().Project(idx), idx: idx}, nil
}

// Schema implements Node.
func (n *Project) Schema() *types.Schema { return n.schema }

// Deterministic implements Node.
func (n *Project) Deterministic() bool { return n.Child.Deterministic() }

func (n *Project) String() string { return fmt.Sprintf("Project%v", n.Cols) }

// Run implements Node.
func (n *Project) Run(ws *Workspace) ([]*bundle.Tuple, error) {
	in, err := ws.Run(n.Child)
	if err != nil {
		return nil, err
	}
	slab := ws.alloc()
	out := make([]*bundle.Tuple, len(in))
	for i, tu := range in {
		det := slab.Row(len(n.idx))
		nt := slab.Tuple()
		nt.Det = det
		nRand := 0
		for _, oldSlot := range n.idx {
			for _, r := range tu.Rand {
				if r.Slot == oldSlot {
					nRand++
				}
			}
		}
		nt.Rand = slab.RandRefs(nRand)
		k := 0
		for newSlot, oldSlot := range n.idx {
			det[newSlot] = tu.Det[oldSlot]
			for _, r := range tu.Rand {
				if r.Slot == oldSlot {
					nt.Rand[k] = bundle.RandRef{Slot: newSlot, SeedID: r.SeedID, Out: r.Out}
					k++
				}
			}
		}
		// Presence lineage always survives projection: it constrains the
		// tuple's existence, not a particular column. Shared, not copied —
		// Pres slices are never mutated in place.
		nt.Pres = tu.Pres
		out[i] = nt
	}
	return out, nil
}

// HashJoin is an equi-join on deterministic attributes. Joins on random
// attributes must be rewritten with Split first (paper §8); Run rejects
// tuples whose join key is a random slot.
type HashJoin struct {
	Left, Right         Node
	LeftCols, RightCols []string
	// Residual, if non-nil, is an extra deterministic predicate evaluated
	// on the concatenated schema.
	Residual expr.Expr

	schema *types.Schema
}

// NewHashJoin builds a hash join node.
func NewHashJoin(left, right Node, leftCols, rightCols []string, residual expr.Expr) (*HashJoin, error) {
	if len(leftCols) != len(rightCols) || len(leftCols) == 0 {
		return nil, fmt.Errorf("exec: join needs matching non-empty key lists, got %d vs %d", len(leftCols), len(rightCols))
	}
	for _, c := range leftCols {
		if left.Schema().Lookup(c) < 0 {
			return nil, fmt.Errorf("exec: join key %q not in left schema %s", c, left.Schema())
		}
	}
	for _, c := range rightCols {
		if right.Schema().Lookup(c) < 0 {
			return nil, fmt.Errorf("exec: join key %q not in right schema %s", c, right.Schema())
		}
	}
	return &HashJoin{Left: left, Right: right, LeftCols: leftCols, RightCols: rightCols,
		Residual: residual, schema: left.Schema().Concat(right.Schema())}, nil
}

// Schema implements Node.
func (n *HashJoin) Schema() *types.Schema { return n.schema }

// Deterministic implements Node.
func (n *HashJoin) Deterministic() bool { return n.Left.Deterministic() && n.Right.Deterministic() }

func (n *HashJoin) String() string {
	return fmt.Sprintf("HashJoin(%v = %v)", n.LeftCols, n.RightCols)
}

// Run implements Node.
func (n *HashJoin) Run(ws *Workspace) ([]*bundle.Tuple, error) {
	left, err := ws.Run(n.Left)
	if err != nil {
		return nil, err
	}
	right, err := ws.Run(n.Right)
	if err != nil {
		return nil, err
	}
	lIdx := lookupAll(n.Left.Schema(), n.LeftCols)
	rIdx := lookupAll(n.Right.Schema(), n.RightCols)
	var residual *expr.Compiled
	if n.Residual != nil {
		residual, err = expr.Compile(n.Residual, n.schema)
		if err != nil {
			return nil, fmt.Errorf("exec: join residual: %w", err)
		}
	}
	// Build side: right.
	build := make(map[uint64][]*bundle.Tuple, len(right))
	for _, tu := range right {
		if err := checkDetKey(tu, rIdx, "right"); err != nil {
			return nil, err
		}
		h := hashKey(tu.Det, rIdx)
		build[h] = append(build[h], tu)
	}
	lw := n.Left.Schema().Len()
	slab := ws.alloc()
	var out []*bundle.Tuple
	for _, ltu := range left {
		if err := checkDetKey(ltu, lIdx, "left"); err != nil {
			return nil, err
		}
		h := hashKey(ltu.Det, lIdx)
		for _, rtu := range build[h] {
			if !keysEqual(ltu.Det, lIdx, rtu.Det, rIdx) {
				continue
			}
			det := slab.Row(lw + len(rtu.Det))
			copy(det, ltu.Det)
			copy(det[lw:], rtu.Det)
			if residual != nil && !residual.EvalBool(det) {
				continue
			}
			nt := slab.Tuple()
			nt.Det = det
			nt.Rand = concatRand(slab, ltu.Rand, rtu.Rand, lw)
			nt.Pres = concatPres(ltu.Pres, rtu.Pres)
			out = append(out, nt)
		}
	}
	return out, nil
}

// concatRand builds the joined tuple's random bindings: the left side's
// unchanged, the right side's shifted by the left schema width. The result
// comes from the slab; nil when both sides are deterministic.
func concatRand(slab *bundle.Slab, l, r []bundle.RandRef, lw int) []bundle.RandRef {
	if len(l)+len(r) == 0 {
		return nil
	}
	out := slab.RandRefs(len(l) + len(r))
	copy(out, l)
	for i, ref := range r {
		out[len(l)+i] = bundle.RandRef{Slot: ref.Slot + lw, SeedID: ref.SeedID, Out: ref.Out}
	}
	return out
}

// concatPres merges presence lineage from both join sides; nil when both
// are empty, the (shared, read-only) non-empty side when only one side
// carries lineage.
func concatPres(l, r []bundle.PresVec) []bundle.PresVec {
	switch {
	case len(l) == 0:
		return r
	case len(r) == 0:
		return l
	}
	out := make([]bundle.PresVec, len(l)+len(r))
	copy(out, l)
	copy(out[len(l):], r)
	return out
}

func lookupAll(s *types.Schema, cols []string) []int {
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = s.MustLookup(c)
	}
	return idx
}

func checkDetKey(tu *bundle.Tuple, idx []int, side string) error {
	for _, slot := range idx {
		if isRandomSlot(tu, slot) {
			return fmt.Errorf("exec: join key on %s side is a random attribute (slot %d); apply Split first (paper §8)", side, slot)
		}
	}
	return nil
}

func hashKey(row types.Row, idx []int) uint64 {
	h := uint64(1469598103934665603)
	for _, i := range idx {
		h = (h ^ row[i].Hash()) * 1099511628211
	}
	return h
}

func keysEqual(a types.Row, aIdx []int, b types.Row, bIdx []int) bool {
	for i := range aIdx {
		if !a[aIdx[i]].Equal(b[bIdx[i]]) {
			return false
		}
	}
	return true
}

// Split implements the paper's Split operation (§8): it converts a random
// attribute into a deterministic one by emitting one tuple per distinct
// materialized value, transferring the nondeterminism into an isPres
// vector. Joins on the attribute are then joins on a deterministic value.
type Split struct {
	Child Node
	Col   string
}

// Schema implements Node.
func (n *Split) Schema() *types.Schema { return n.Child.Schema() }

// Deterministic implements Node.
func (n *Split) Deterministic() bool { return n.Child.Deterministic() }

func (n *Split) String() string { return fmt.Sprintf("Split(%s)", n.Col) }

// Run implements Node.
func (n *Split) Run(ws *Workspace) ([]*bundle.Tuple, error) {
	in, err := ws.Run(n.Child)
	if err != nil {
		return nil, err
	}
	slot := n.Child.Schema().Lookup(n.Col)
	if slot < 0 {
		return nil, fmt.Errorf("exec: Split column %q not in %s", n.Col, n.Child.Schema())
	}
	slab := ws.alloc()
	var out []*bundle.Tuple
	var restRand []bundle.RandRef
	for _, tu := range in {
		ref, isRand := (*bundle.RandRef)(nil), false
		restRand = restRand[:0]
		for i := range tu.Rand {
			if tu.Rand[i].Slot == slot {
				ref, isRand = &tu.Rand[i], true
			} else {
				restRand = append(restRand, tu.Rand[i])
			}
		}
		if !isRand {
			out = append(out, tu)
			continue
		}
		s := ws.Seeds.MustGet(ref.SeedID)
		w := &s.Window
		// Enumerate distinct values in first-position order for run-to-run
		// determinism.
		type group struct {
			val types.Value
			pv  bundle.PresVec
		}
		var groups []group
		find := func(v types.Value) *group {
			for i := range groups {
				if groups[i].val.Equal(v) {
					return &groups[i]
				}
			}
			groups = append(groups, group{val: v, pv: bundle.PresVec{
				SeedID: ref.SeedID, Lo: w.Lo, Bits: make([]bool, len(w.Vals)),
			}})
			return &groups[len(groups)-1]
		}
		for i := range w.Vals {
			v := w.Vals[i][ref.Out]
			find(v).pv.Bits[i] = true
		}
		if len(w.Sparse) > 0 {
			// Visit sparse positions in ascending order so group (and
			// therefore output tuple) order is identical across runs.
			for _, pos := range w.Positions() {
				vals, ok := w.Sparse[pos]
				if !ok {
					continue
				}
				g := find(vals[ref.Out])
				if g.pv.Sparse == nil {
					g.pv.Sparse = make(map[uint64]bool)
				}
				g.pv.Sparse[pos] = true
			}
		}
		for _, g := range groups {
			det := slab.Row(len(tu.Det))
			copy(det, tu.Det)
			det[slot] = g.val
			nt := slab.Tuple()
			nt.Det = det
			nt.Rand = slab.RandRefs(len(restRand))
			copy(nt.Rand, restRand)
			nt.Pres = make([]bundle.PresVec, len(tu.Pres)+1)
			copy(nt.Pres, tu.Pres)
			nt.Pres[len(tu.Pres)] = g.pv
			out = append(out, nt)
		}
	}
	return out, nil
}
