// Package exec implements MCDB-R's physical query plans over Gibbs tuples
// (paper §5, Fig. 2). A plan is a tree of operators — Scan, Seed,
// Instantiate, Select, Project, Join, Split — that runs once, no matter how
// many DB versions the Gibbs Looper maintains, producing the stream of
// instantiated Gibbs tuples the looper consumes.
//
// Execution is a pull-based batch pipeline (DESIGN.md §9): Open builds an
// iterator tree, and each Next call hands the consumer one fixed-size,
// slab-backed batch of tuples, so a plan run's footprint is bounded by the
// batch size (plus whatever the consumer retains), not by relation size.
// Batch boundaries are semantically invisible: results are bit-for-bit
// identical to the old materialize-everything executor for every batch
// size, because TS-seed allocation, window materialization, and output
// order depend only on the tuple stream order, which batching preserves.
//
// Plans support the replenishing runs of paper §9: results of fully
// deterministic subtrees are materialized on first execution and served
// from cache on re-execution, the TS-seed allocator is rewound so the same
// logical seeds are revisited in the same order, and Instantiate adds only
// new or currently-assigned stream values.
package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/bundle"
	"repro/internal/expr"
	"repro/internal/prng"
	"repro/internal/seeds"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/vg"
)

// DefaultBatchSize is the number of tuples per streamed batch when
// Workspace.BatchSize is unset.
const DefaultBatchSize = 1024

// ErrMemoryBudget is wrapped by the error a query run fails with when its
// tuple arenas outgrow Workspace.MaxBytes (RunOptions.MaxBytes /
// mcdbr-serve -max-query-bytes). Test with errors.Is.
var ErrMemoryBudget = errors.New("exec: query memory budget exceeded")

// Batch is one unit of the streaming pipeline: a short slice of tuples,
// at most Workspace.BatchSize long. A batch (and every tuple in it) is
// valid only until the next Next or Close call on the iterator that
// returned it — producers recycle their slab arenas per batch. Consumers
// that need a tuple longer must copy it out with Workspace.Retain.
type Batch struct {
	Tuples []*bundle.Tuple
}

// Iterator is one open streaming execution of a plan subtree. Next
// returns the next non-empty batch, or (nil, nil) at end of stream (and
// keeps returning that if called again). Close releases the subtree's
// per-run resources (slab arenas return to the workspace pool); it must
// be called exactly once, after which no batch from the iterator may be
// used.
type Iterator interface {
	Next() (*Batch, error)
	Close()
}

// batchDurable is implemented by iterators whose batches stay valid for
// the whole workspace lifetime (materialized deterministic prefixes):
// consumers may reference their tuples without retaining copies.
type batchDurable interface{ durableBatches() bool }

func isDurable(it Iterator) bool {
	d, ok := it.(batchDurable)
	return ok && d.durableBatches()
}

// Workspace carries cross-operator state for one query.
type Workspace struct {
	// Master is the engine-level stream all TS-seed streams derive from.
	Master prng.Stream
	// Seeds is the query's TS-seed store.
	Seeds *seeds.Store
	// Window is the number of fresh stream values Instantiate materializes
	// per seed per run (the paper's "1000 random values initially").
	Window int
	// Base is the first stream position Instantiate materializes on a
	// non-replenishing run: the window covers [Base, Base+Window). It is 0
	// for ordinary sequential execution; replicate-sharded parallel
	// execution gives each worker a workspace whose Base is the first
	// replicate of its shard, so workers materialize disjoint slices of the
	// same streams (stream element values depend only on (seed, position),
	// never on the window they were materialized into).
	Base uint64
	// Catalog resolves Scan table names.
	Catalog *storage.Catalog
	// Replenishing is true during a §9 replenishing run.
	Replenishing bool
	// Prefix, when non-nil, is the engine-level deterministic-prefix
	// materialization cache handle: Materialize nodes store and look up
	// their subtree results there, keyed by subtree fingerprint, so
	// repeated runs (prepared queries, shard workers) skip the
	// deterministic part of the plan entirely.
	Prefix *PrefixHandle
	// BatchSize is the number of tuples per streamed batch; <= 0 selects
	// DefaultBatchSize. Results are bit-for-bit identical for every batch
	// size.
	BatchSize int
	// MaxBytes, when positive, bounds the total slab-arena bytes this
	// query run (including its replicate-shard workers, which share the
	// gauge) may allocate; a run that would exceed it fails with an error
	// wrapping ErrMemoryBudget instead of exhausting process memory.
	MaxBytes int64
	// Gauge totals the run's slab-arena bytes across all its workspaces.
	Gauge *bundle.MemGauge
	// Ctx, when non-nil, carries run cancellation: sharded execution and
	// the Gibbs version loops poll it between units of work and abort with
	// its error once it is done (client disconnect, adaptive round driver
	// stopping in-flight shards). A nil Ctx means "never cancelled" — the
	// zero workspace stays valid and the hot path pays one nil check.
	Ctx context.Context

	matCache map[Node][]*bundle.Tuple

	// det holds allocations that must survive replenishing runs
	// (deterministic subtree outputs, retained compat-Run results of
	// deterministic plans); tmp holds retained tuples of the current run
	// and is recycled by BeginReplenish, when the previous plan output is
	// discarded wholesale. Operator iterators use pooled per-operator
	// slabs instead, recycled per batch.
	det, tmp *bundle.Slab
	// pool recycles per-operator slabs across Open/Close cycles (a
	// replenishing run re-opens the plan with warm chunks). ws.det is
	// never pooled: its allocations outlive every iterator.
	pool []*bundle.Slab
	// Slabs, when non-nil, is an engine-shared pool consulted after the
	// run-local one, so a fresh workspace per query still opens with warm
	// chunks (re-growing arenas is the dominant fixed cost of a small
	// query). Pooled slabs are Reset (zeroed), so results are identical
	// with or without the pool.
	Slabs *SlabPool
	// DisableKernels forces the closure-tree expression interpreter
	// everywhere, skipping the typed vectorized kernels (DESIGN.md §13).
	// Results are bit-for-bit identical either way — the flag exists for
	// differential testing and the interpreter-vs-kernel benchmarks.
	DisableKernels bool
}

// SlabPool recycles per-operator scratch slabs across query runs. Every
// run builds a fresh Workspace, so the run-local pool starts cold; an
// engine shares one SlabPool across its runs instead. A slab adopted
// from the pool charges its full chunk capacity to the adopting run's
// gauge (bundle.Slab.AdoptGauge), so the memory budget reads the same
// whether chunks came warm or fresh. Oversized slabs (a large scan's
// arenas) and overflow beyond the pool cap are left to the GC rather
// than pinned forever.
type SlabPool struct {
	mu    sync.Mutex
	slabs []*bundle.Slab
}

const (
	maxPooledSlabBytes = 256 << 10
	maxPooledSlabs     = 32
)

// NewSlabPool returns an empty engine-level slab pool.
func NewSlabPool() *SlabPool { return &SlabPool{} }

func (p *SlabPool) get() *bundle.Slab {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.slabs); n > 0 {
		s := p.slabs[n-1]
		p.slabs[n-1] = nil
		p.slabs = p.slabs[:n-1]
		return s
	}
	return nil
}

func (p *SlabPool) put(s *bundle.Slab) bool {
	if s.CapBytes() > maxPooledSlabBytes {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.slabs) >= maxPooledSlabs {
		return false
	}
	p.slabs = append(p.slabs, s)
	return true
}

// NewWorkspace builds a workspace. window <= 0 selects 1024.
func NewWorkspace(cat *storage.Catalog, master prng.Stream, window int) *Workspace {
	if window <= 0 {
		window = 1024
	}
	ws := &Workspace{
		Master:   master,
		Seeds:    seeds.NewStore(),
		Window:   window,
		Catalog:  cat,
		Gauge:    &bundle.MemGauge{},
		matCache: make(map[Node][]*bundle.Tuple),
		det:      bundle.NewSlab(),
		tmp:      bundle.NewSlab(),
	}
	ws.det.SetGauge(ws.Gauge)
	ws.tmp.SetGauge(ws.Gauge)
	return ws
}

// Cancelled returns the context's error when the workspace's run has been
// cancelled, nil otherwise (including when no context was attached).
// Long-running loops — shard workers, Gibbs version sweeps — call it
// between units of work.
func (ws *Workspace) Cancelled() error {
	if ws.Ctx == nil {
		return nil
	}
	return context.Cause(ws.Ctx)
}

// adoptGauge points the workspace's arenas at a shared gauge, so shard
// workers charge their prototype's run-wide memory budget. Must be called
// before the workspace allocates anything.
func (ws *Workspace) adoptGauge(g *bundle.MemGauge) {
	ws.Gauge = g
	ws.det.SetGauge(g)
	ws.tmp.SetGauge(g)
}

// batchSize resolves the effective batch size.
func (ws *Workspace) batchSize() int {
	if ws.BatchSize > 0 {
		return ws.BatchSize
	}
	return DefaultBatchSize
}

// checkBudget fails the run once the arena gauge exceeds MaxBytes. Every
// producing iterator calls it at the top of Next, so a runaway query stops
// within one batch of crossing the budget.
func (ws *Workspace) checkBudget() error {
	if ws.MaxBytes > 0 {
		if used := ws.Gauge.Load(); used > ws.MaxBytes {
			return fmt.Errorf("%w: tuple arenas hold %d bytes, budget is %d bytes (raise RunOptions.MaxBytes / -max-query-bytes, or reduce what the query retains)", ErrMemoryBudget, used, ws.MaxBytes)
		}
	}
	return nil
}

// getSlab hands an iterator a per-operator slab from the workspace pool;
// putSlab resets it and returns it at Close, so a replenishing run's
// re-opened iterators reuse warm chunks instead of growing fresh ones.
func (ws *Workspace) getSlab() *bundle.Slab {
	if n := len(ws.pool); n > 0 {
		s := ws.pool[n-1]
		ws.pool = ws.pool[:n-1]
		return s
	}
	if ws.Slabs != nil {
		if s := ws.Slabs.get(); s != nil {
			s.AdoptGauge(ws.Gauge)
			return s
		}
	}
	s := bundle.NewSlab()
	s.SetGauge(ws.Gauge)
	return s
}

func (ws *Workspace) putSlab(s *bundle.Slab) {
	s.Reset()
	if ws.Slabs != nil && ws.Slabs.put(s) {
		return
	}
	ws.pool = append(ws.pool, s)
}

// Retain copies tu out of its producer's recyclable batch arena into the
// workspace's run-lifetime slab, so the caller may hold it across batches
// (the gibbs looper keeps every random tuple for the whole sampling run).
// Det and Rand are copied; Pres is shared — presence vectors are ordinary
// GC allocations and never mutated in place.
func (ws *Workspace) Retain(tu *bundle.Tuple) *bundle.Tuple {
	return retainInto(ws.tmp, tu)
}

func retainInto(slab *bundle.Slab, tu *bundle.Tuple) *bundle.Tuple {
	nt := slab.Tuple()
	nt.Det = slab.Row(len(tu.Det))
	copy(nt.Det, tu.Det)
	if len(tu.Rand) > 0 {
		nt.Rand = slab.RandRefs(len(tu.Rand))
		copy(nt.Rand, tu.Rand)
	}
	nt.Pres = tu.Pres
	return nt
}

// drainNode streams the subtree under n to completion, retaining every
// tuple in slab — except when the subtree serves durable batches (a
// materialized prefix), which are referenced without copying. It is the
// buffering primitive behind the compat Run path and the build/ordering
// buffers inside join operators.
func (ws *Workspace) drainNode(n Node, slab *bundle.Slab) ([]*bundle.Tuple, error) {
	it, err := n.Open(ws)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	durable := isDurable(it)
	var out []*bundle.Tuple
	for {
		if err := ws.checkBudget(); err != nil {
			return nil, err
		}
		b, err := it.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		if durable {
			out = append(out, b.Tuples...)
			continue
		}
		for _, tu := range b.Tuples {
			out = append(out, retainInto(slab, tu))
		}
	}
}

// Run executes the plan rooted at n and materializes its entire output —
// the compatibility wrapper over the streaming pipeline for consumers
// that want whole relations (internal/naive, tests). Deterministic roots
// are cached per workspace, so repeated and replenishing runs reuse the
// first result; their tuples live on the pinned slab and survive
// BeginReplenish. On replenishing runs, call BeginReplenish first.
func (ws *Workspace) Run(n Node) ([]*bundle.Tuple, error) {
	if n.Deterministic() {
		if cached, ok := ws.matCache[n]; ok {
			return cached, nil
		}
		out, err := ws.drainNode(n, ws.det)
		if err != nil {
			return nil, err
		}
		ws.matCache[n] = out
		return out, nil
	}
	return ws.drainNode(n, ws.tmp)
}

// BeginReplenish prepares the workspace for a §9 replenishing run: existing
// Gibbs tuples are discarded by the caller, the seed allocator is rewound
// so the deterministic pipeline revisits the same seeds, Instantiate
// switches to new-or-assigned materialization, and the recyclable tuple
// slab is reset — the caller has dropped every reference into it, and the
// deterministic outputs that survive (materialization caches, seed
// parameter rows) live on the pinned slab.
func (ws *Workspace) BeginReplenish() {
	ws.Replenishing = true
	ws.Seeds.ResetAlloc()
	ws.tmp.Reset()
}

// Node is one operator in a physical plan.
type Node interface {
	// Schema is the operator's output schema.
	Schema() *types.Schema
	// Open starts one streaming execution of the subtree, returning its
	// iterator. Use Workspace.Run to materialize a whole result with
	// caching of deterministic roots.
	Open(ws *Workspace) (Iterator, error)
	// Deterministic reports whether the subtree involves no randomness.
	Deterministic() bool
	// Children returns the operator's inputs, left to right (see
	// FormatPlan).
	Children() []Node
	// String names the operator for plan display.
	String() string
}

// Scan reads a catalog table, qualifying column names with the alias.
type Scan struct {
	Table string
	Alias string

	schema *types.Schema
}

// NewScan builds a scan node; the schema is resolved against the catalog.
func NewScan(cat *storage.Catalog, table, alias string) (*Scan, error) {
	t, ok := cat.Get(table)
	if !ok {
		return nil, fmt.Errorf("exec: table %q not found", table)
	}
	if alias == "" {
		alias = table
	}
	return &Scan{Table: table, Alias: alias, schema: t.Schema().Rename(alias)}, nil
}

// Schema implements Node.
func (s *Scan) Schema() *types.Schema { return s.schema }

// Deterministic implements Node.
func (s *Scan) Deterministic() bool { return true }

func (s *Scan) String() string { return fmt.Sprintf("Scan(%s AS %s)", s.Table, s.Alias) }

// Open implements Node. Scan batches share the catalog's immutable row
// storage (Det rows are never copied); only the tuple headers are
// batch-local.
func (s *Scan) Open(ws *Workspace) (Iterator, error) {
	t, ok := ws.Catalog.Get(s.Table)
	if !ok {
		return nil, fmt.Errorf("exec: table %q not found", s.Table)
	}
	return &scanIter{ws: ws, t: t, slab: ws.getSlab()}, nil
}

type scanIter struct {
	ws    *Workspace
	t     *storage.Table
	slab  *bundle.Slab
	pos   int
	out   []*bundle.Tuple
	batch Batch
}

func (it *scanIter) Next() (*Batch, error) {
	if err := it.ws.checkBudget(); err != nil {
		return nil, err
	}
	n := it.t.NumRows() - it.pos
	if n <= 0 {
		return nil, nil
	}
	if bs := it.ws.batchSize(); n > bs {
		n = bs
	}
	it.slab.Reset()
	it.out = it.out[:0]
	for i := 0; i < n; i++ {
		tu := it.slab.Tuple()
		tu.Det = it.t.Row(it.pos + i)
		it.out = append(it.out, tu)
	}
	it.pos += n
	it.batch.Tuples = it.out
	return &it.batch, nil
}

func (it *scanIter) Close() {
	if it.slab != nil {
		it.ws.putSlab(it.slab)
		it.slab = nil
	}
}

// Seed implements the paper's Seed operator: it attaches a fresh TS-seed to
// every input tuple and appends the VG function's output columns as random
// attribute slots (values are filled in by Instantiate).
type Seed struct {
	Child Node
	// Gen is the VG function.
	Gen vg.Func
	// ParamExprs produce the VG parameter row from each input tuple; they
	// must reference deterministic attributes only.
	ParamExprs []expr.Expr
	// OutNames name the appended random columns (qualified by the caller).
	OutNames []string

	schema *types.Schema
}

// NewSeed builds a Seed node.
func NewSeed(child Node, gen vg.Func, paramExprs []expr.Expr, outNames []string) (*Seed, error) {
	kinds := gen.OutKinds()
	if len(outNames) != len(kinds) {
		return nil, fmt.Errorf("exec: VG %s emits %d columns, got %d names", gen.Name(), len(kinds), len(outNames))
	}
	if gen.Arity() >= 0 && len(paramExprs) != gen.Arity() {
		return nil, fmt.Errorf("exec: VG %s needs %d parameters, got %d", gen.Name(), gen.Arity(), len(paramExprs))
	}
	cols := make([]types.Column, len(kinds))
	for i, k := range kinds {
		cols[i] = types.Column{Name: outNames[i], Kind: k}
	}
	return &Seed{Child: child, Gen: gen, ParamExprs: paramExprs, OutNames: outNames,
		schema: child.Schema().Concat(types.NewSchema(cols...))}, nil
}

// Schema implements Node.
func (s *Seed) Schema() *types.Schema { return s.schema }

// Deterministic implements Node.
func (s *Seed) Deterministic() bool { return false }

func (s *Seed) String() string { return fmt.Sprintf("Seed(%s)", s.Gen.Name()) }

// Open implements Node. TS-seed allocation order is the input tuple
// order, which batching preserves — that is what makes Seed's substream
// assignment (and with it every Monte Carlo sample) batch-size-invariant.
// A non-deterministic child is buffered fully at Open: the materializing
// executor evaluated the child — and allocated the child's own seeds —
// before allocating any of this operator's, and interleaving the two
// under streaming would reorder seed allocation. Deterministic children
// (the shape every planner-built pipeline has: Scan below Seed) allocate
// no seeds and stream one batch at a time.
func (s *Seed) Open(ws *Workspace) (Iterator, error) {
	it := &seedIter{
		ws:         ws,
		op:         s,
		childWidth: s.Child.Schema().Len(),
		nOut:       len(s.Gen.OutKinds()),
	}
	it.compiled = make([]*expr.Compiled, len(s.ParamExprs))
	for i, pe := range s.ParamExprs {
		c, err := expr.Compile(pe, s.Child.Schema())
		if err != nil {
			return nil, fmt.Errorf("exec: Seed parameter %d: %w", i, err)
		}
		it.compiled[i] = c
	}
	if s.Child.Deterministic() {
		child, err := s.Child.Open(ws)
		if err != nil {
			return nil, err
		}
		it.child = child
	} else {
		it.bufSlab = ws.getSlab()
		buf, err := ws.drainNode(s.Child, it.bufSlab)
		if err != nil {
			it.Close()
			return nil, err
		}
		it.buf = buf
	}
	it.slab = ws.getSlab()
	return it, nil
}

type seedIter struct {
	ws       *Workspace
	op       *Seed
	compiled []*expr.Compiled

	child   Iterator // streaming (deterministic) child; nil when buffered
	buf     []*bundle.Tuple
	bufSlab *bundle.Slab
	pos     int

	childWidth, nOut int

	slab  *bundle.Slab
	out   []*bundle.Tuple
	batch Batch
}

func (it *seedIter) Next() (*Batch, error) {
	if err := it.ws.checkBudget(); err != nil {
		return nil, err
	}
	var in []*bundle.Tuple
	if it.child != nil {
		b, err := it.child.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		in = b.Tuples
	} else {
		if it.pos >= len(it.buf) {
			return nil, nil
		}
		n := len(it.buf) - it.pos
		if bs := it.ws.batchSize(); n > bs {
			n = bs
		}
		in = it.buf[it.pos : it.pos+n]
		it.pos += n
	}
	it.slab.Reset()
	it.out = it.out[:0]
	s, ws := it.op, it.ws
	for _, tu := range in {
		// The seed store retains the parameter row (and replaces it on each
		// replenishing run), so it must be an ordinary GC-managed
		// allocation: carving it from a slab would either leak one row per
		// seed per replenishment or be recycled out from under the store.
		params := make([]types.Value, len(it.compiled))
		for j, c := range it.compiled {
			params[j] = c.Eval(tu.Det)
		}
		// Parameter expressions over random slots would read Null
		// placeholders; reject them so mistakes surface early.
		for j, p := range params {
			if p.IsNull() {
				if cols := expr.Columns(s.ParamExprs[j]); len(cols) > 0 {
					for _, cn := range cols {
						if isRandomSlot(tu, s.Child.Schema().Lookup(cn)) {
							return nil, fmt.Errorf("exec: Seed parameter %d references random attribute %q", j, cn)
						}
					}
				}
			}
		}
		seed := ws.Seeds.Alloc(ws.Master, s.Gen, params)
		// Long window fills poll the run context so cancellation lands
		// mid-materialization, not only between versions.
		seed.Cancel = ws.Cancelled
		det := it.slab.Row(it.childWidth + it.nOut)
		copy(det, tu.Det)
		nt := it.slab.Tuple()
		nt.Det = det
		nt.Rand = it.slab.RandRefs(len(tu.Rand) + it.nOut)
		copy(nt.Rand, tu.Rand)
		for o := 0; o < it.nOut; o++ {
			nt.Rand[len(tu.Rand)+o] = bundle.RandRef{Slot: it.childWidth + o, SeedID: seed.ID, Out: o}
		}
		// Presence lineage is shared, not copied: tuples never mutate their
		// Pres slices in place (extensions always build a fresh slice).
		nt.Pres = tu.Pres
		it.out = append(it.out, nt)
	}
	it.batch.Tuples = it.out
	return &it.batch, nil
}

func (it *seedIter) Close() {
	if it.child != nil {
		it.child.Close()
		it.child = nil
	}
	if it.slab != nil {
		it.ws.putSlab(it.slab)
		it.slab = nil
	}
	if it.bufSlab != nil {
		it.ws.putSlab(it.bufSlab)
		it.bufSlab = nil
		it.buf = nil
	}
}

func isRandomSlot(tu *bundle.Tuple, slot int) bool {
	if slot < 0 {
		return false
	}
	for _, r := range tu.Rand {
		if r.Slot == slot {
			return true
		}
	}
	return false
}

// Instantiate materializes stream-value windows for every TS-seed
// referenced by the child's output (the paper's Instantiate operator). On a
// first run the window is [0, Window); on a replenishing run it is the
// never-processed range [MaxUsed+1, MaxUsed+1+Window) plus the positions
// currently assigned to DB versions (§9).
type Instantiate struct {
	Child Node
}

// Schema implements Node.
func (n *Instantiate) Schema() *types.Schema { return n.Child.Schema() }

// Deterministic implements Node.
func (n *Instantiate) Deterministic() bool { return false }

func (n *Instantiate) String() string { return "Instantiate" }

// Open implements Node. Instantiate forwards its child's batches
// unchanged, materializing each newly-seen seed's window on the way
// through; the done set spans the whole run, so a seed shared by many
// batches is materialized once.
func (n *Instantiate) Open(ws *Workspace) (Iterator, error) {
	child, err := n.Child.Open(ws)
	if err != nil {
		return nil, err
	}
	return &instIter{ws: ws, child: child, done: map[uint64]bool{}}, nil
}

type instIter struct {
	ws    *Workspace
	child Iterator
	done  map[uint64]bool
}

func (it *instIter) Next() (*Batch, error) {
	b, err := it.child.Next()
	if err != nil || b == nil {
		return b, err
	}
	ws := it.ws
	for _, tu := range b.Tuples {
		for _, r := range tu.Rand {
			if it.done[r.SeedID] {
				continue
			}
			it.done[r.SeedID] = true
			s := ws.Seeds.MustGet(r.SeedID)
			if ws.Replenishing {
				if err := s.Materialize(s.MaxUsed+1, ws.Window, s.AssignedPositions()); err != nil {
					return nil, err
				}
			} else {
				if err := s.Materialize(ws.Base, ws.Window, nil); err != nil {
					return nil, err
				}
			}
		}
	}
	return b, nil
}

func (it *instIter) Close() { it.child.Close() }

// Select filters tuples by a predicate. Deterministic predicates drop
// tuples outright. A predicate that references random attributes of
// exactly one TS-seed per tuple is recorded as an isPres vector over that
// seed's materialized positions (paper §5); tuples whose vector is
// all-false are dropped. Predicates spanning random attributes of multiple
// seeds must instead be pulled up into the Gibbs Looper (paper App. A).
type Select struct {
	Child Node
	Pred  expr.Expr
}

// Schema implements Node.
func (n *Select) Schema() *types.Schema { return n.Child.Schema() }

// Deterministic implements Node.
func (n *Select) Deterministic() bool { return n.Child.Deterministic() }

func (n *Select) String() string { return fmt.Sprintf("Select(%s)", n.Pred) }

// Open implements Node.
func (n *Select) Open(ws *Workspace) (Iterator, error) {
	schema := n.Child.Schema()
	compiled, err := expr.Compile(n.Pred, schema)
	if err != nil {
		return nil, fmt.Errorf("exec: Select: %w", err)
	}
	refSlots := make([]int, 0, 4)
	for _, name := range expr.Columns(n.Pred) {
		refSlots = append(refSlots, schema.MustLookup(name))
	}
	child, err := n.Child.Open(ws)
	if err != nil {
		return nil, err
	}
	it := &selectIter{
		ws:       ws,
		op:       n,
		child:    child,
		compiled: compiled,
		refSlots: refSlots,
		scratch:  make(types.Row, schema.Len()),
		slab:     ws.getSlab(),
	}
	if !ws.DisableKernels {
		// Kernel lowering is best-effort: a predicate the kernel compiler
		// rejects keeps the interpreter (DESIGN.md §13 fallback rule).
		if k, err := expr.CompileKernel(n.Pred, schema); err == nil {
			it.kern = k
		}
	}
	return it, nil
}

type selectIter struct {
	ws       *Workspace
	op       *Select
	child    Iterator
	compiled *expr.Compiled
	kern     *expr.Kernel // nil: interpreter-only (disabled or not lowerable)
	refSlots []int
	scratch  types.Row
	refs     []bundle.RandRef
	seedIDs  []uint64
	sel      []int
	slab     *bundle.Slab
	out      []*bundle.Tuple
	batch    Batch
}

// hasRandRef reports whether any predicate-referenced slot is a random
// (VG-generated) attribute of tu.
func (it *selectIter) hasRandRef(tu *bundle.Tuple) bool {
	for _, r := range tu.Rand {
		for _, slot := range it.refSlots {
			if r.Slot == slot {
				return true
			}
		}
	}
	return false
}

// evalDetBatch filters a batch whose tuples are all deterministic w.r.t.
// the predicate through the kernel: the referenced columns are gathered
// once for the whole batch, then the fused compare-and-filter kernel
// emits a selection vector. Returns false — leaving it.out untouched —
// when a gathered value contradicts the schema's declared kind, in which
// case the caller re-runs the batch through the interpreter.
func (it *selectIter) evalDetBatch(b *Batch) bool {
	n := len(b.Tuples)
	it.kern.Begin(n)
	for _, col := range it.kern.Cols() {
		slot := col.Slot()
		for i, tu := range b.Tuples {
			if !col.Set(i, tu.Det[slot]) {
				return false
			}
		}
	}
	it.sel = it.kern.EvalSel(it.sel[:0])
	for _, i := range it.sel {
		it.out = append(it.out, b.Tuples[i])
	}
	return true
}

// Next filters one child batch at a time, pulling further batches only
// while the output is still empty: passing tuples are forwarded by
// pointer (or share Det/Rand with the input), so the iterator must never
// advance the child while holding output from an earlier child batch.
func (it *selectIter) Next() (*Batch, error) {
	if err := it.ws.checkBudget(); err != nil {
		return nil, err
	}
	it.slab.Reset()
	for {
		b, err := it.child.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		it.out = it.out[:0]
		if it.kern != nil {
			det := true
			for _, tu := range b.Tuples {
				if it.hasRandRef(tu) {
					det = false
					break
				}
			}
			if det && it.evalDetBatch(b) {
				if len(it.out) > 0 {
					it.batch.Tuples = it.out
					return &it.batch, nil
				}
				continue
			}
			it.out = it.out[:0] // evalDetBatch bailed before appending; keep it tidy
		}
		for _, tu := range b.Tuples {
			// Which referenced slots are random in this tuple, and for which seed?
			it.refs = it.refs[:0]
			it.seedIDs = it.seedIDs[:0]
			for _, slot := range it.refSlots {
				for _, r := range tu.Rand {
					if r.Slot == slot {
						it.refs = append(it.refs, r)
						seen := false
						for _, id := range it.seedIDs {
							if id == r.SeedID {
								seen = true
								break
							}
						}
						if !seen {
							it.seedIDs = append(it.seedIDs, r.SeedID)
						}
					}
				}
			}
			switch {
			case len(it.refs) == 0:
				if it.compiled.EvalBool(tu.Det) {
					it.out = append(it.out, tu)
				}
			case len(it.seedIDs) == 1:
				pv, any, err := buildPresVec(it.ws, tu, it.refs, it.compiled, it.kern, it.scratch)
				if err != nil {
					return nil, err
				}
				if !any {
					continue // paper §5: predicate satisfied in no DB instance
				}
				// Shallow clone: Det and Rand are shared read-only with the
				// input tuple; only the presence lineage is extended, into a
				// fresh slice so the input's Pres is never mutated.
				nt := it.slab.Tuple()
				nt.Det = tu.Det
				nt.Rand = tu.Rand
				nt.Pres = make([]bundle.PresVec, len(tu.Pres)+1)
				copy(nt.Pres, tu.Pres)
				nt.Pres[len(tu.Pres)] = pv
				it.out = append(it.out, nt)
			default:
				return nil, fmt.Errorf("exec: Select predicate %s spans random attributes of %d seeds; pull it up into the GibbsLooper", it.op.Pred, len(it.seedIDs))
			}
		}
		if len(it.out) > 0 {
			it.batch.Tuples = it.out
			return &it.batch, nil
		}
	}
}

func (it *selectIter) Close() {
	it.child.Close()
	if it.slab != nil {
		it.ws.putSlab(it.slab)
		it.slab = nil
	}
}

// buildPresVec evaluates the predicate for every materialized position of
// the (single) seed behind refs, substituting that position's VG outputs
// into the referenced slots. scratch is a caller-provided row buffer of
// the tuple's width, overwritten per call. When kern is non-nil the
// contiguous window segment is evaluated window-major through the kernel
// (deterministic slots broadcast once, VG outputs gathered per version);
// sparse positions always use the interpreter.
func buildPresVec(ws *Workspace, tu *bundle.Tuple, refs []bundle.RandRef, pred *expr.Compiled, kern *expr.Kernel, scratch types.Row) (bundle.PresVec, bool, error) {
	seedID := refs[0].SeedID
	s := ws.Seeds.MustGet(seedID)
	w := &s.Window
	row := scratch
	copy(row, tu.Det)
	evalAt := func(pos uint64) (bool, error) {
		vals, ok := w.Get(pos)
		if !ok {
			return false, fmt.Errorf("exec: seed %d position %d not materialized during Select", seedID, pos)
		}
		for _, r := range refs {
			if r.Out >= len(vals) {
				return false, fmt.Errorf("exec: seed %d VG output %d of %d", seedID, r.Out, len(vals))
			}
			row[r.Slot] = vals[r.Out]
		}
		return pred.EvalBool(row), nil
	}
	pv := bundle.PresVec{SeedID: seedID, Lo: w.Lo, Bits: make([]bool, len(w.Vals))}
	any := false
	vectorized := false
	if kern != nil && len(w.Vals) > 0 {
		ok, err := presBitsKernel(w, tu, refs, kern, pv.Bits)
		if err != nil {
			return pv, false, err
		}
		vectorized = ok
	}
	if vectorized {
		for _, bit := range pv.Bits {
			if bit {
				any = true
				break
			}
		}
	} else {
		for i := range w.Vals {
			b, err := evalAt(w.Lo + uint64(i))
			if err != nil {
				return pv, false, err
			}
			pv.Bits[i] = b
			any = any || b
		}
	}
	if len(w.Sparse) > 0 {
		pv.Sparse = make(map[uint64]bool, len(w.Sparse))
		for pos := range w.Sparse {
			b, err := evalAt(pos)
			if err != nil {
				return pv, false, err
			}
			pv.Sparse[pos] = b
			any = any || b
		}
	}
	return pv, any, nil
}

// presBitsKernel runs the Select predicate across a seed's contiguous
// window segment through the fused kernel: one lane per version, the
// tuple's deterministic slots broadcast once, the referenced VG outputs
// gathered per version. Returns false — bits possibly part-written, the
// caller re-runs the interpreter over all of them — when a gathered value
// contradicts the kernel's static types. It errors only where the
// interpreter would too (VG output index out of range).
func presBitsKernel(w *seeds.Window, tu *bundle.Tuple, refs []bundle.RandRef, kern *expr.Kernel, bits []bool) (bool, error) {
	n := len(w.Vals)
	kern.Begin(n)
	for _, col := range kern.Cols() {
		slot := col.Slot()
		out := -1
		for _, r := range refs { // last match wins, like the interpreter's substitution loop
			if r.Slot == slot {
				out = r.Out
			}
		}
		if out < 0 {
			if !col.Fill(n, tu.Det[slot]) {
				return false, nil
			}
			continue
		}
		for i, vals := range w.Vals {
			if out >= len(vals) {
				return false, fmt.Errorf("exec: seed %d VG output %d of %d", refs[0].SeedID, out, len(vals))
			}
			if !col.Set(i, vals[out]) {
				return false, nil
			}
		}
	}
	kern.EvalMask(bits)
	return true, nil
}

// Project narrows the schema to the named columns.
type Project struct {
	Child Node
	Cols  []string

	schema *types.Schema
	idx    []int
}

// NewProject builds a projection node.
func NewProject(child Node, cols ...string) (*Project, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := child.Schema().Lookup(c)
		if j < 0 {
			return nil, fmt.Errorf("exec: Project column %q not in %s", c, child.Schema())
		}
		idx[i] = j
	}
	return &Project{Child: child, Cols: cols, schema: child.Schema().Project(idx), idx: idx}, nil
}

// Schema implements Node.
func (n *Project) Schema() *types.Schema { return n.schema }

// Deterministic implements Node.
func (n *Project) Deterministic() bool { return n.Child.Deterministic() }

func (n *Project) String() string { return fmt.Sprintf("Project%v", n.Cols) }

// Open implements Node.
func (n *Project) Open(ws *Workspace) (Iterator, error) {
	child, err := n.Child.Open(ws)
	if err != nil {
		return nil, err
	}
	return &projIter{ws: ws, op: n, child: child, slab: ws.getSlab()}, nil
}

type projIter struct {
	ws    *Workspace
	op    *Project
	child Iterator
	slab  *bundle.Slab
	out   []*bundle.Tuple
	batch Batch
}

func (it *projIter) Next() (*Batch, error) {
	if err := it.ws.checkBudget(); err != nil {
		return nil, err
	}
	b, err := it.child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	it.slab.Reset()
	it.out = it.out[:0]
	idx := it.op.idx
	for _, tu := range b.Tuples {
		det := it.slab.Row(len(idx))
		nt := it.slab.Tuple()
		nt.Det = det
		nRand := 0
		for _, oldSlot := range idx {
			for _, r := range tu.Rand {
				if r.Slot == oldSlot {
					nRand++
				}
			}
		}
		nt.Rand = it.slab.RandRefs(nRand)
		k := 0
		for newSlot, oldSlot := range idx {
			det[newSlot] = tu.Det[oldSlot]
			for _, r := range tu.Rand {
				if r.Slot == oldSlot {
					nt.Rand[k] = bundle.RandRef{Slot: newSlot, SeedID: r.SeedID, Out: r.Out}
					k++
				}
			}
		}
		// Presence lineage always survives projection: it constrains the
		// tuple's existence, not a particular column. Shared, not copied —
		// Pres slices are never mutated in place.
		nt.Pres = tu.Pres
		it.out = append(it.out, nt)
	}
	it.batch.Tuples = it.out
	return &it.batch, nil
}

func (it *projIter) Close() {
	it.child.Close()
	if it.slab != nil {
		it.ws.putSlab(it.slab)
		it.slab = nil
	}
}

// HashJoin is an equi-join on deterministic attributes. Joins on random
// attributes must be rewritten with Split first (paper §8); execution
// rejects tuples whose join key is a random slot.
type HashJoin struct {
	Left, Right         Node
	LeftCols, RightCols []string
	// Residual, if non-nil, is an extra deterministic predicate evaluated
	// on the concatenated schema.
	Residual expr.Expr
	// BuildRows, when > 0, pre-sizes the build-side hash table from the
	// planner's row estimate (plan.Lower sets it from the right subtree's
	// cardinality), saving rehash-and-copy cycles while the build side
	// drains.
	BuildRows int

	schema *types.Schema
}

// NewHashJoin builds a hash join node.
func NewHashJoin(left, right Node, leftCols, rightCols []string, residual expr.Expr) (*HashJoin, error) {
	if len(leftCols) != len(rightCols) || len(leftCols) == 0 {
		return nil, fmt.Errorf("exec: join needs matching non-empty key lists, got %d vs %d", len(leftCols), len(rightCols))
	}
	for _, c := range leftCols {
		if left.Schema().Lookup(c) < 0 {
			return nil, fmt.Errorf("exec: join key %q not in left schema %s", c, left.Schema())
		}
	}
	for _, c := range rightCols {
		if right.Schema().Lookup(c) < 0 {
			return nil, fmt.Errorf("exec: join key %q not in right schema %s", c, right.Schema())
		}
	}
	return &HashJoin{Left: left, Right: right, LeftCols: leftCols, RightCols: rightCols,
		Residual: residual, schema: left.Schema().Concat(right.Schema())}, nil
}

// Schema implements Node.
func (n *HashJoin) Schema() *types.Schema { return n.schema }

// Deterministic implements Node.
func (n *HashJoin) Deterministic() bool { return n.Left.Deterministic() && n.Right.Deterministic() }

func (n *HashJoin) String() string {
	return fmt.Sprintf("HashJoin(%v = %v)", n.LeftCols, n.RightCols)
}

// Open implements Node. The build side (right) is drained into the hash
// table here; the probe side (left) streams batch by batch. When both
// sides are non-deterministic the left is buffered fully first instead:
// the materializing executor evaluated the left subtree — and allocated
// its TS-seeds — before the right, and streaming the probe side after the
// build drain would reverse that allocation order.
func (n *HashJoin) Open(ws *Workspace) (Iterator, error) {
	it := &hashJoinIter{
		ws:   ws,
		op:   n,
		lIdx: lookupAll(n.Left.Schema(), n.LeftCols),
		rIdx: lookupAll(n.Right.Schema(), n.RightCols),
		lw:   n.Left.Schema().Len(),
	}
	if n.Residual != nil {
		c, err := expr.Compile(n.Residual, n.schema)
		if err != nil {
			return nil, fmt.Errorf("exec: join residual: %w", err)
		}
		it.residual = c
	}
	it.bufSlab = ws.getSlab()
	if !n.Left.Deterministic() && !n.Right.Deterministic() {
		buf, err := ws.drainNode(n.Left, it.bufSlab)
		if err != nil {
			it.Close()
			return nil, err
		}
		it.leftBuf = buf
	} else {
		left, err := n.Left.Open(ws)
		if err != nil {
			it.Close()
			return nil, err
		}
		it.left = left
	}
	rows := n.BuildRows
	if rows < 0 {
		rows = 0
	}
	it.build = make(map[uint64][]*bundle.Tuple, rows)
	rit, err := n.Right.Open(ws)
	if err != nil {
		it.Close()
		return nil, err
	}
	if err := it.drainBuild(rit); err != nil {
		rit.Close()
		it.Close()
		return nil, err
	}
	rit.Close()
	it.slab = ws.getSlab()
	return it, nil
}

// drainBuild streams the build side into the hash table, retaining each
// tuple (durable materialized prefixes are referenced without copying).
func (it *hashJoinIter) drainBuild(rit Iterator) error {
	durable := isDurable(rit)
	for {
		if err := it.ws.checkBudget(); err != nil {
			return err
		}
		b, err := rit.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		for _, tu := range b.Tuples {
			if err := checkDetKey(tu, it.rIdx, "right"); err != nil {
				return err
			}
			if !durable {
				tu = retainInto(it.bufSlab, tu)
			}
			h := hashKey(tu.Det, it.rIdx)
			it.build[h] = append(it.build[h], tu)
		}
	}
}

type hashJoinIter struct {
	ws       *Workspace
	op       *HashJoin
	lIdx     []int
	rIdx     []int
	residual *expr.Compiled
	lw       int

	build   map[uint64][]*bundle.Tuple
	bufSlab *bundle.Slab // retains build-side tuples (and the buffered left)

	left    Iterator // streaming probe side; nil when buffered
	leftBuf []*bundle.Tuple
	lpos    int
	in      *Batch
	pos     int

	// Probe-side key hashes, computed batch-at-a-time (DESIGN.md §13):
	// hashes[i] pairs with in.Tuples[i]; bufHashes pairs with leftBuf,
	// filled once on first probe.
	hashes    []uint64
	bufHashes []uint64

	// Probe resume point: the current left tuple and its bucket cursor.
	ltu    *bundle.Tuple
	bucket []*bundle.Tuple
	bpos   int

	slab  *bundle.Slab
	out   []*bundle.Tuple
	batch Batch
}

// nextLeft advances to the next probe tuple, pulling child batches as
// needed, and returns the tuple together with its probe-key hash. The
// returned tuple stays valid until the next nextLeft call that crosses a
// batch boundary — the iterator finishes the tuple's bucket before
// advancing, so it never dangles. Key checks and hashes are computed for
// the whole batch up front: both touch only deterministic slots, so they
// vectorize regardless of tuple lineage.
func (it *hashJoinIter) nextLeft() (*bundle.Tuple, uint64, error) {
	if it.left == nil {
		if it.bufHashes == nil && len(it.leftBuf) > 0 {
			hashes := make([]uint64, len(it.leftBuf))
			for i, tu := range it.leftBuf {
				if err := checkDetKey(tu, it.lIdx, "left"); err != nil {
					return nil, 0, err
				}
				hashes[i] = hashKey(tu.Det, it.lIdx)
			}
			it.bufHashes = hashes
		}
		if it.lpos >= len(it.leftBuf) {
			return nil, 0, nil
		}
		tu := it.leftBuf[it.lpos]
		h := it.bufHashes[it.lpos]
		it.lpos++
		return tu, h, nil
	}
	for it.in == nil || it.pos >= len(it.in.Tuples) {
		b, err := it.left.Next()
		if err != nil {
			return nil, 0, err
		}
		if b == nil {
			return nil, 0, nil
		}
		it.hashes = it.hashes[:0]
		for _, tu := range b.Tuples {
			if err := checkDetKey(tu, it.lIdx, "left"); err != nil {
				return nil, 0, err
			}
			it.hashes = append(it.hashes, hashKey(tu.Det, it.lIdx))
		}
		it.in, it.pos = b, 0
	}
	tu := it.in.Tuples[it.pos]
	h := it.hashes[it.pos]
	it.pos++
	return tu, h, nil
}

func (it *hashJoinIter) Next() (*Batch, error) {
	if err := it.ws.checkBudget(); err != nil {
		return nil, err
	}
	it.slab.Reset()
	it.out = it.out[:0]
	limit := it.ws.batchSize()
	for len(it.out) < limit {
		if it.bpos < len(it.bucket) {
			rtu := it.bucket[it.bpos]
			it.bpos++
			if !keysEqual(it.ltu.Det, it.lIdx, rtu.Det, it.rIdx) {
				continue
			}
			det := it.slab.Row(it.lw + len(rtu.Det))
			copy(det, it.ltu.Det)
			copy(det[it.lw:], rtu.Det)
			if it.residual != nil && !it.residual.EvalBool(det) {
				continue
			}
			nt := it.slab.Tuple()
			nt.Det = det
			nt.Rand = concatRand(it.slab, it.ltu.Rand, rtu.Rand, it.lw)
			nt.Pres = concatPres(it.ltu.Pres, rtu.Pres)
			it.out = append(it.out, nt)
			continue
		}
		ltu, h, err := it.nextLeft()
		if err != nil {
			return nil, err
		}
		if ltu == nil {
			break
		}
		it.ltu = ltu
		it.bucket = it.build[h]
		it.bpos = 0
	}
	if len(it.out) == 0 {
		return nil, nil
	}
	it.batch.Tuples = it.out
	return &it.batch, nil
}

func (it *hashJoinIter) Close() {
	if it.left != nil {
		it.left.Close()
		it.left = nil
	}
	if it.slab != nil {
		it.ws.putSlab(it.slab)
		it.slab = nil
	}
	if it.bufSlab != nil {
		it.ws.putSlab(it.bufSlab)
		it.bufSlab = nil
	}
	it.build, it.leftBuf, it.bucket, it.in, it.ltu = nil, nil, nil, nil, nil
	it.hashes, it.bufHashes = nil, nil
}

// concatRand builds the joined tuple's random bindings: the left side's
// unchanged, the right side's shifted by the left schema width. The result
// comes from the slab; nil when both sides are deterministic.
func concatRand(slab *bundle.Slab, l, r []bundle.RandRef, lw int) []bundle.RandRef {
	if len(l)+len(r) == 0 {
		return nil
	}
	out := slab.RandRefs(len(l) + len(r))
	copy(out, l)
	for i, ref := range r {
		out[len(l)+i] = bundle.RandRef{Slot: ref.Slot + lw, SeedID: ref.SeedID, Out: ref.Out}
	}
	return out
}

// concatPres merges presence lineage from both join sides; nil when both
// are empty, the (shared, read-only) non-empty side when only one side
// carries lineage.
func concatPres(l, r []bundle.PresVec) []bundle.PresVec {
	switch {
	case len(l) == 0:
		return r
	case len(r) == 0:
		return l
	}
	out := make([]bundle.PresVec, len(l)+len(r))
	copy(out, l)
	copy(out[len(l):], r)
	return out
}

func lookupAll(s *types.Schema, cols []string) []int {
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = s.MustLookup(c)
	}
	return idx
}

func checkDetKey(tu *bundle.Tuple, idx []int, side string) error {
	for _, slot := range idx {
		if isRandomSlot(tu, slot) {
			return fmt.Errorf("exec: join key on %s side is a random attribute (slot %d); apply Split first (paper §8)", side, slot)
		}
	}
	return nil
}

func hashKey(row types.Row, idx []int) uint64 {
	h := uint64(1469598103934665603)
	for _, i := range idx {
		h = (h ^ row[i].Hash()) * 1099511628211
	}
	return h
}

func keysEqual(a types.Row, aIdx []int, b types.Row, bIdx []int) bool {
	for i := range aIdx {
		if !a[aIdx[i]].Equal(b[bIdx[i]]) {
			return false
		}
	}
	return true
}

// Split implements the paper's Split operation (§8): it converts a random
// attribute into a deterministic one by emitting one tuple per distinct
// materialized value, transferring the nondeterminism into an isPres
// vector. Joins on the attribute are then joins on a deterministic value.
type Split struct {
	Child Node
	Col   string
}

// Schema implements Node.
func (n *Split) Schema() *types.Schema { return n.Child.Schema() }

// Deterministic implements Node.
func (n *Split) Deterministic() bool { return n.Child.Deterministic() }

func (n *Split) String() string { return fmt.Sprintf("Split(%s)", n.Col) }

// Open implements Node.
func (n *Split) Open(ws *Workspace) (Iterator, error) {
	slot := n.Child.Schema().Lookup(n.Col)
	if slot < 0 {
		return nil, fmt.Errorf("exec: Split column %q not in %s", n.Col, n.Child.Schema())
	}
	child, err := n.Child.Open(ws)
	if err != nil {
		return nil, err
	}
	return &splitIter{ws: ws, op: n, child: child, slot: slot, slab: ws.getSlab()}, nil
}

type splitGroup struct {
	val types.Value
	pv  bundle.PresVec
}

type splitIter struct {
	ws    *Workspace
	op    *Split
	child Iterator
	slot  int

	in  *Batch
	pos int

	// Split resume point: the input tuple whose value groups are being
	// emitted, its pending groups, and its random refs minus the split
	// slot. A tuple can fan out into more groups than fit one output
	// batch, so emission pauses and resumes across Next calls.
	cur      *bundle.Tuple
	groups   []splitGroup
	gpos     int
	restRand []bundle.RandRef

	slab  *bundle.Slab
	out   []*bundle.Tuple
	batch Batch
}

func (it *splitIter) Next() (*Batch, error) {
	if err := it.ws.checkBudget(); err != nil {
		return nil, err
	}
	it.slab.Reset()
	it.out = it.out[:0]
	limit := it.ws.batchSize()
	for len(it.out) < limit {
		if it.gpos < len(it.groups) {
			g := &it.groups[it.gpos]
			it.gpos++
			tu := it.cur
			det := it.slab.Row(len(tu.Det))
			copy(det, tu.Det)
			det[it.slot] = g.val
			nt := it.slab.Tuple()
			nt.Det = det
			nt.Rand = it.slab.RandRefs(len(it.restRand))
			copy(nt.Rand, it.restRand)
			nt.Pres = make([]bundle.PresVec, len(tu.Pres)+1)
			copy(nt.Pres, tu.Pres)
			nt.Pres[len(tu.Pres)] = g.pv
			it.out = append(it.out, nt)
			continue
		}
		if it.in == nil || it.pos >= len(it.in.Tuples) {
			// Deterministic input tuples are forwarded by pointer, so the
			// child must not be advanced while the output holds any.
			if len(it.out) > 0 {
				break
			}
			b, err := it.child.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			it.in, it.pos = b, 0
			continue
		}
		tu := it.in.Tuples[it.pos]
		it.pos++
		ref, isRand := (*bundle.RandRef)(nil), false
		it.restRand = it.restRand[:0]
		for i := range tu.Rand {
			if tu.Rand[i].Slot == it.slot {
				ref, isRand = &tu.Rand[i], true
			} else {
				it.restRand = append(it.restRand, tu.Rand[i])
			}
		}
		if !isRand {
			it.out = append(it.out, tu)
			continue
		}
		s := it.ws.Seeds.MustGet(ref.SeedID)
		w := &s.Window
		// Enumerate distinct values in first-position order for run-to-run
		// determinism.
		groups := it.groups[:0]
		find := func(v types.Value) *splitGroup {
			for i := range groups {
				if groups[i].val.Equal(v) {
					return &groups[i]
				}
			}
			groups = append(groups, splitGroup{val: v, pv: bundle.PresVec{
				SeedID: ref.SeedID, Lo: w.Lo, Bits: make([]bool, len(w.Vals)),
			}})
			return &groups[len(groups)-1]
		}
		for i := range w.Vals {
			v := w.Vals[i][ref.Out]
			find(v).pv.Bits[i] = true
		}
		if len(w.Sparse) > 0 {
			// Visit sparse positions in ascending order so group (and
			// therefore output tuple) order is identical across runs.
			for _, pos := range w.Positions() {
				vals, ok := w.Sparse[pos]
				if !ok {
					continue
				}
				g := find(vals[ref.Out])
				if g.pv.Sparse == nil {
					g.pv.Sparse = make(map[uint64]bool)
				}
				g.pv.Sparse[pos] = true
			}
		}
		it.cur = tu
		it.groups = groups
		it.gpos = 0
	}
	if len(it.out) == 0 {
		return nil, nil
	}
	it.batch.Tuples = it.out
	return &it.batch, nil
}

func (it *splitIter) Close() {
	it.child.Close()
	if it.slab != nil {
		it.ws.putSlab(it.slab)
		it.slab = nil
	}
}
