package exec

import (
	"strings"
	"testing"

	"repro/internal/bundle"
	"repro/internal/expr"
	"repro/internal/prng"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/vg"
)

// coinVG deterministically maps stream elements to "heads"/"tails" floats
// (0 or 1) so Split/Select tests can predict distinct values.
type coinVG struct{}

func (coinVG) Name() string           { return "Coin" }
func (coinVG) Arity() int             { return 0 }
func (coinVG) OutKinds() []types.Kind { return []types.Kind{types.KindFloat} }
func (coinVG) Generate(_ []types.Value, sub *prng.Sub) ([]types.Value, error) {
	if sub.Float64() < 0.5 {
		return []types.Value{types.NewFloat(0)}, nil
	}
	return []types.Value{types.NewFloat(1)}, nil
}

func testCatalog() *storage.Catalog {
	cat := storage.NewCatalog()

	means := storage.NewTable("means", types.NewSchema(
		types.Column{Name: "cid", Kind: types.KindInt},
		types.Column{Name: "m", Kind: types.KindFloat},
	))
	for i, m := range []float64{3, 4, 5} {
		means.MustAppend(types.Row{types.NewInt(int64(i + 1)), types.NewFloat(m)})
	}
	cat.Put(means)

	dept := storage.NewTable("dept", types.NewSchema(
		types.Column{Name: "cid", Kind: types.KindInt},
		types.Column{Name: "dname", Kind: types.KindString},
	))
	dept.MustAppend(types.Row{types.NewInt(1), types.NewString("a")})
	dept.MustAppend(types.Row{types.NewInt(2), types.NewString("b")})
	dept.MustAppend(types.Row{types.NewInt(2), types.NewString("c")})
	cat.Put(dept)
	return cat
}

func normalFunc(t *testing.T) vg.Func {
	t.Helper()
	f, ok := vg.NewRegistry().Lookup("Normal")
	if !ok {
		t.Fatal("Normal missing")
	}
	return f
}

// buildLossPlan is the paper §2 Losses pipeline: Scan(means) -> Seed(Normal)
// -> Instantiate.
func buildLossPlan(t *testing.T, ws *Workspace) Node {
	t.Helper()
	scan, err := NewScan(ws.Catalog, "means", "means")
	if err != nil {
		t.Fatal(err)
	}
	seed, err := NewSeed(scan, normalFunc(t),
		[]expr.Expr{expr.C("means.m"), expr.F(1.0)}, []string{"losses.val"})
	if err != nil {
		t.Fatal(err)
	}
	return &Instantiate{Child: seed}
}

func TestScan(t *testing.T) {
	cat := testCatalog()
	ws := NewWorkspace(cat, prng.NewStream(1), 8)
	scan, err := NewScan(cat, "means", "mm")
	if err != nil {
		t.Fatal(err)
	}
	out, err := ws.Run(scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("rows = %d", len(out))
	}
	if scan.Schema().Lookup("mm.cid") < 0 {
		t.Fatalf("alias not applied: %s", scan.Schema())
	}
	if _, err := NewScan(cat, "missing", ""); err == nil {
		t.Fatal("missing table must error")
	}
}

func TestSeedAndInstantiate(t *testing.T) {
	cat := testCatalog()
	ws := NewWorkspace(cat, prng.NewStream(1), 8)
	plan := buildLossPlan(t, ws)
	out, err := ws.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("tuples = %d", len(out))
	}
	if ws.Seeds.Len() != 3 {
		t.Fatalf("seeds = %d", ws.Seeds.Len())
	}
	for i, tu := range out {
		if len(tu.Rand) != 1 {
			t.Fatalf("tuple %d rand refs = %d", i, len(tu.Rand))
		}
		s := ws.Seeds.MustGet(tu.Rand[i*0].SeedID)
		if len(s.Window.Vals) != 8 {
			t.Fatalf("window size = %d", len(s.Window.Vals))
		}
		// Seed parameters are the per-customer mean and variance 1.
		wantMean := tu.Det[1].Float()
		if s.Params[0].Float() != wantMean || s.Params[1].Float() != 1 {
			t.Fatalf("params = %v", s.Params)
		}
	}
	// Schema: means.cid, means.m, losses.val.
	if plan.Schema().Lookup("losses.val") != 2 {
		t.Fatalf("schema = %s", plan.Schema())
	}
}

func TestSeedRejectsRandomParams(t *testing.T) {
	cat := testCatalog()
	ws := NewWorkspace(cat, prng.NewStream(1), 8)
	inner := buildLossPlan(t, ws)
	// Seeding a second VG with the *random* losses.val as parameter must fail.
	seed2, err := NewSeed(inner, normalFunc(t),
		[]expr.Expr{expr.C("losses.val"), expr.F(1.0)}, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Run(&Instantiate{Child: seed2}); err == nil {
		t.Fatal("random VG parameter must be rejected")
	}
}

func TestSelectDeterministic(t *testing.T) {
	cat := testCatalog()
	ws := NewWorkspace(cat, prng.NewStream(1), 8)
	plan := buildLossPlan(t, ws)
	sel := &Select{Child: plan, Pred: expr.B(expr.OpLt, expr.C("means.cid"), expr.I(3))}
	out, err := ws.Run(sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("rows = %d, want 2", len(out))
	}
}

func TestSelectOnRandomAttrBuildsPresVec(t *testing.T) {
	cat := testCatalog()
	ws := NewWorkspace(cat, prng.NewStream(1), 64)
	plan := buildLossPlan(t, ws)
	// losses.val > mean: true for ~half the positions of each seed.
	sel := &Select{Child: plan, Pred: expr.B(expr.OpGt, expr.C("losses.val"), expr.C("means.m"))}
	out, err := ws.Run(sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("rows = %d", len(out))
	}
	for _, tu := range out {
		if len(tu.Pres) != 1 {
			t.Fatalf("pres vecs = %d", len(tu.Pres))
		}
		pv := tu.Pres[0]
		s := ws.Seeds.MustGet(pv.SeedID)
		trueCount := 0
		for i, b := range pv.Bits {
			vals, _ := s.Window.Get(pv.Lo + uint64(i))
			want := vals[0].Float() > s.Params[0].Float()
			if b != want {
				t.Fatalf("bit %d = %v, value %v mean %v", i, b, vals[0], s.Params[0])
			}
			if b {
				trueCount++
			}
		}
		if trueCount == 0 || trueCount == len(pv.Bits) {
			t.Fatalf("suspicious presence distribution: %d/%d", trueCount, len(pv.Bits))
		}
	}
}

func TestSelectMultiSeedPredicateRejected(t *testing.T) {
	cat := testCatalog()
	ws := NewWorkspace(cat, prng.NewStream(1), 8)
	scan, _ := NewScan(cat, "means", "means")
	seed1, err := NewSeed(scan, normalFunc(t), []expr.Expr{expr.C("m"), expr.F(1)}, []string{"v1"})
	if err != nil {
		t.Fatal(err)
	}
	seed2, err := NewSeed(seed1, normalFunc(t), []expr.Expr{expr.C("m"), expr.F(1)}, []string{"v2"})
	if err != nil {
		t.Fatal(err)
	}
	plan := &Select{Child: &Instantiate{Child: seed2},
		Pred: expr.B(expr.OpGt, expr.C("v1"), expr.C("v2"))}
	if _, err := ws.Run(plan); err == nil || !strings.Contains(err.Error(), "GibbsLooper") {
		t.Fatalf("multi-seed predicate: err = %v", err)
	}
}

func TestProjectKeepsLineage(t *testing.T) {
	cat := testCatalog()
	ws := NewWorkspace(cat, prng.NewStream(1), 16)
	plan := buildLossPlan(t, ws)
	sel := &Select{Child: plan, Pred: expr.B(expr.OpGt, expr.C("losses.val"), expr.F(-100))}
	proj, err := NewProject(sel, "losses.val", "means.cid")
	if err != nil {
		t.Fatal(err)
	}
	out, err := ws.Run(proj)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("rows = %d", len(out))
	}
	for _, tu := range out {
		if len(tu.Rand) != 1 || tu.Rand[0].Slot != 0 {
			t.Fatalf("rand refs after project: %+v", tu.Rand)
		}
		if len(tu.Pres) != 1 {
			t.Fatalf("pres lost in project")
		}
		if len(tu.Det) != 2 {
			t.Fatalf("width = %d", len(tu.Det))
		}
	}
	if _, err := NewProject(plan, "nope"); err == nil {
		t.Fatal("bad column must error")
	}
}

func TestHashJoinDeterministic(t *testing.T) {
	cat := testCatalog()
	ws := NewWorkspace(cat, prng.NewStream(1), 8)
	left := buildLossPlan(t, ws)
	right, _ := NewScan(cat, "dept", "dept")
	join, err := NewHashJoin(left, right, []string{"means.cid"}, []string{"dept.cid"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ws.Run(join)
	if err != nil {
		t.Fatal(err)
	}
	// cid 1 matches 1 dept row, cid 2 matches 2, cid 3 matches 0.
	if len(out) != 3 {
		t.Fatalf("join rows = %d, want 3", len(out))
	}
	for _, tu := range out {
		if len(tu.Rand) != 1 {
			t.Fatalf("rand lost in join")
		}
		if len(tu.Det) != join.Schema().Len() {
			t.Fatalf("width mismatch")
		}
	}
}

func TestHashJoinResidual(t *testing.T) {
	cat := testCatalog()
	ws := NewWorkspace(cat, prng.NewStream(1), 8)
	left, _ := NewScan(cat, "means", "means")
	right, _ := NewScan(cat, "dept", "dept")
	join, err := NewHashJoin(left, right, []string{"means.cid"}, []string{"dept.cid"},
		expr.B(expr.OpEq, expr.C("dept.dname"), expr.S("b")))
	if err != nil {
		t.Fatal(err)
	}
	out, err := ws.Run(join)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("residual join rows = %d, want 1", len(out))
	}
}

func TestHashJoinOnRandomKeyRejected(t *testing.T) {
	cat := testCatalog()
	ws := NewWorkspace(cat, prng.NewStream(1), 8)
	left := buildLossPlan(t, ws)
	right, _ := NewScan(cat, "dept", "dept")
	join, err := NewHashJoin(left, right, []string{"losses.val"}, []string{"dept.cid"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Run(join); err == nil || !strings.Contains(err.Error(), "Split") {
		t.Fatalf("random join key: err = %v", err)
	}
}

func TestSplitConvertsRandomToPresence(t *testing.T) {
	cat := testCatalog()
	ws := NewWorkspace(cat, prng.NewStream(1), 32)
	scan, _ := NewScan(cat, "means", "means")
	seed, err := NewSeed(scan, coinVG{}, nil, []string{"coin"})
	if err != nil {
		t.Fatal(err)
	}
	split := &Split{Child: &Instantiate{Child: seed}, Col: "coin"}
	out, err := ws.Run(split)
	if err != nil {
		t.Fatal(err)
	}
	// Each of the 3 tuples splits into 2 (values 0 and 1, both present in
	// 32 coin flips with overwhelming probability).
	if len(out) != 6 {
		t.Fatalf("split rows = %d, want 6", len(out))
	}
	for _, tu := range out {
		if len(tu.Rand) != 0 {
			t.Fatalf("split output still random: %+v", tu.Rand)
		}
		if len(tu.Pres) != 1 {
			t.Fatalf("split output pres = %d", len(tu.Pres))
		}
		v := tu.Det[2].Float()
		if v != 0 && v != 1 {
			t.Fatalf("split value = %v", v)
		}
		// Presence bits must match the window contents exactly.
		s := ws.Seeds.MustGet(tu.Pres[0].SeedID)
		for i, b := range tu.Pres[0].Bits {
			vals, _ := s.Window.Get(tu.Pres[0].Lo + uint64(i))
			if b != vals[0].Equal(tu.Det[2]) {
				t.Fatalf("bit %d inconsistent with window", i)
			}
		}
	}
	// Complementary coverage: for each seed, the two tuples' bits partition
	// all positions.
	bySeed := map[uint64][]*bundle.Tuple{}
	for _, tu := range out {
		bySeed[tu.Pres[0].SeedID] = append(bySeed[tu.Pres[0].SeedID], tu)
	}
	for id, tus := range bySeed {
		if len(tus) != 2 {
			t.Fatalf("seed %d split into %d tuples", id, len(tus))
		}
		for i := range tus[0].Pres[0].Bits {
			if tus[0].Pres[0].Bits[i] == tus[1].Pres[0].Bits[i] {
				t.Fatalf("seed %d bit %d not complementary", id, i)
			}
		}
	}
	// Split after which a join on the attribute works.
	other := storage.NewTable("coins", types.NewSchema(
		types.Column{Name: "side", Kind: types.KindFloat},
		types.Column{Name: "label", Kind: types.KindString},
	))
	other.MustAppend(types.Row{types.NewFloat(0), types.NewString("tails")})
	other.MustAppend(types.Row{types.NewFloat(1), types.NewString("heads")})
	cat.Put(other)
	scan2, _ := NewScan(cat, "coins", "coins")
	join, err := NewHashJoin(split, scan2, []string{"coin"}, []string{"coins.side"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	jout, err := ws.Run(join)
	if err != nil {
		t.Fatal(err)
	}
	if len(jout) != 6 {
		t.Fatalf("join-after-split rows = %d", len(jout))
	}
}

func TestSplitPassesDeterministicTuples(t *testing.T) {
	cat := testCatalog()
	ws := NewWorkspace(cat, prng.NewStream(1), 8)
	scan, _ := NewScan(cat, "means", "means")
	split := &Split{Child: scan, Col: "means.m"}
	out, err := ws.Run(split)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("rows = %d", len(out))
	}
}

func TestDeterministicSubplanCaching(t *testing.T) {
	cat := testCatalog()
	ws := NewWorkspace(cat, prng.NewStream(1), 8)
	scan, _ := NewScan(cat, "means", "means")
	first, err := ws.Run(scan)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the underlying catalog table; the cached materialization must
	// be served on re-run (the paper materializes deterministic parts to
	// avoid recomputation during replenishment).
	cat.MustGet("means").MustAppend(types.Row{types.NewInt(99), types.NewFloat(9)})
	second, err := ws.Run(scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("cache miss: %d vs %d", len(first), len(second))
	}
}

func TestReplenishingRunReusesSeedsAndExtendsWindows(t *testing.T) {
	cat := testCatalog()
	ws := NewWorkspace(cat, prng.NewStream(1), 8)
	plan := buildLossPlan(t, ws)
	if _, err := ws.Run(plan); err != nil {
		t.Fatal(err)
	}
	s0 := ws.Seeds.MustGet(0)
	// Simulate looper usage: versions assigned, MaxUsed advanced.
	s0.Assign = []uint64{2, 5}
	s0.MaxUsed = 7
	old2, _ := s0.Window.Get(2)

	ws.BeginReplenish()
	out, err := ws.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || ws.Seeds.Len() != 3 {
		t.Fatalf("replenish changed tuple/seed counts: %d/%d", len(out), ws.Seeds.Len())
	}
	if ws.Seeds.MustGet(0) != s0 {
		t.Fatal("seed identity lost")
	}
	// Fresh window starts at MaxUsed+1 = 8.
	if s0.Window.Lo != 8 || len(s0.Window.Vals) != 8 {
		t.Fatalf("window = [%d, +%d)", s0.Window.Lo, len(s0.Window.Vals))
	}
	// Assigned position 2 kept, identical value.
	got2, ok := s0.Window.Get(2)
	if !ok || !got2[0].Equal(old2[0]) {
		t.Fatal("assigned position lost or changed in replenish")
	}
	// Non-assigned old position gone.
	if s0.Window.Contains(3) {
		t.Fatal("processed position 3 must not be rematerialized (§9)")
	}
}

func TestSeedOutputCountValidation(t *testing.T) {
	cat := testCatalog()
	scan, _ := NewScan(cat, "means", "means")
	if _, err := NewSeed(scan, coinVG{}, nil, []string{"a", "b"}); err == nil {
		t.Fatal("output name count mismatch must error")
	}
	if _, err := NewSeed(scan, normalFunc(t), []expr.Expr{expr.F(1)}, []string{"v"}); err == nil {
		t.Fatal("arity mismatch must error")
	}
}

func TestJoinValidation(t *testing.T) {
	cat := testCatalog()
	l, _ := NewScan(cat, "means", "m")
	r, _ := NewScan(cat, "dept", "d")
	if _, err := NewHashJoin(l, r, nil, nil, nil); err == nil {
		t.Fatal("empty keys must error")
	}
	if _, err := NewHashJoin(l, r, []string{"m.cid"}, []string{"d.nope"}, nil); err == nil {
		t.Fatal("bad right key must error")
	}
	if _, err := NewHashJoin(l, r, []string{"m.nope"}, []string{"d.cid"}, nil); err == nil {
		t.Fatal("bad left key must error")
	}
}
