package exec

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bundle"
	"repro/internal/prng"
	"repro/internal/types"
)

// TestMaterializeUsesPrefixCache: the first run computes, later runs (even
// on fresh workspaces) are served from the engine-level cache.
func TestMaterializeUsesPrefixCache(t *testing.T) {
	cat := testCatalog()
	cache := NewPrefixCache(8)

	newPlan := func() (*Workspace, Node) {
		ws := NewWorkspace(cat, prng.NewStream(1), 4)
		ws.Prefix = cache.Handle(7)
		scan, err := NewScan(cat, "means", "means")
		if err != nil {
			t.Fatal(err)
		}
		return ws, &Materialize{Child: scan, Fingerprint: "fp-means"}
	}

	ws1, m1 := newPlan()
	out1, err := ws1.Run(m1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out1) != 3 {
		t.Fatalf("out1 = %d tuples", len(out1))
	}
	if h, m, s := cache.Stats(); h != 0 || m != 1 || s != 1 {
		t.Fatalf("stats after first run: hits=%d misses=%d size=%d", h, m, s)
	}

	ws2, m2 := newPlan()
	out2, err := ws2.Run(m2)
	if err != nil {
		t.Fatal(err)
	}
	if h, _, _ := cache.Stats(); h != 1 {
		t.Fatalf("second run missed the cache")
	}
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatalf("tuple %d not shared between runs", i)
		}
	}
}

// TestPrefixCacheEpochInvalidation: a handle from a later epoch never sees
// entries computed under an earlier one.
func TestPrefixCacheEpochInvalidation(t *testing.T) {
	cache := NewPrefixCache(8)
	tu := &bundle.Tuple{}
	compute := func() ([]*bundle.Tuple, error) { return []*bundle.Tuple{tu}, nil }

	if _, err := cache.Handle(1).Do("k", compute); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Handle(1).Do("k", compute); err != nil {
		t.Fatal(err)
	}
	if h, m, _ := cache.Stats(); h != 1 || m != 1 {
		t.Fatalf("same-epoch stats: hits=%d misses=%d", h, m)
	}
	// DDL happened: epoch 2 must recompute.
	if _, err := cache.Handle(2).Do("k", compute); err != nil {
		t.Fatal(err)
	}
	if h, m, s := cache.Stats(); h != 1 || m != 2 || s != 1 {
		t.Fatalf("post-DDL stats: hits=%d misses=%d size=%d", h, m, s)
	}
}

// TestPrefixCacheLRUBound: the cache never holds more than cap entries.
func TestPrefixCacheLRUBound(t *testing.T) {
	cache := NewPrefixCache(2)
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, err := cache.Handle(1).Do(key, func() ([]*bundle.Tuple, error) {
			return nil, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, size := cache.Stats(); size != 2 {
		t.Fatalf("size = %d, want 2", size)
	}
	// Most recently used survive: k4 hits, k0 misses.
	hBefore, mBefore, _ := cache.Stats()
	if _, err := cache.Handle(1).Do("k4", func() ([]*bundle.Tuple, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if h, _, _ := cache.Stats(); h != hBefore+1 {
		t.Fatal("k4 should have been retained")
	}
	if _, err := cache.Handle(1).Do("k0", func() ([]*bundle.Tuple, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if _, m, _ := cache.Stats(); m != mBefore+1 {
		t.Fatal("k0 should have been evicted")
	}
}

// TestPrefixCacheSingleFlight: concurrent first computations of one key
// collapse into one compute; everyone shares the result.
func TestPrefixCacheSingleFlight(t *testing.T) {
	cache := NewPrefixCache(8)
	var mu sync.Mutex
	computes := 0
	gate := make(chan struct{})
	const workers = 8
	results := make([][]*bundle.Tuple, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := cache.Handle(3).Do("shared", func() ([]*bundle.Tuple, error) {
				mu.Lock()
				computes++
				mu.Unlock()
				<-gate // hold every concurrent caller in the inflight path
				return []*bundle.Tuple{{}}, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = out
		}(i)
	}
	close(gate)
	wg.Wait()
	if computes != 1 {
		t.Fatalf("computes = %d, want 1", computes)
	}
	for i := 1; i < workers; i++ {
		if len(results[i]) != 1 || results[i][0] != results[0][0] {
			t.Fatalf("worker %d did not share the computed batch", i)
		}
	}
}

// TestScanStreamsCatalogRows: a streaming Scan's batches carry the
// catalog's immutable rows by reference (no copy), one batch at a time,
// in table order.
func TestScanStreamsCatalogRows(t *testing.T) {
	cat := testCatalog()
	ws := NewWorkspace(cat, prng.NewStream(1), 4)
	ws.BatchSize = 2 // force multiple batches over the 3-row table
	scan, err := NewScan(cat, "means", "a")
	if err != nil {
		t.Fatal(err)
	}
	it, err := scan.Open(ws)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	tbl, _ := cat.Get("means")
	row := 0
	for {
		b, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		if len(b.Tuples) > ws.BatchSize {
			t.Fatalf("batch of %d tuples exceeds BatchSize %d", len(b.Tuples), ws.BatchSize)
		}
		for _, tu := range b.Tuples {
			// Scan shares the catalog rows themselves (no copy).
			if &tu.Det[0] != &tbl.Row(row)[0] {
				t.Fatalf("scan row %d copied instead of shared", row)
			}
			row++
		}
	}
	if row != tbl.NumRows() {
		t.Fatalf("streamed %d rows, table has %d", row, tbl.NumRows())
	}
}

// TestJoinOutputNeverAliasesCatalog: operators above Scan copy rows, so
// mutating query output can never corrupt catalog storage even though
// scans share it — the guard for Scan's sharing semantics.
func TestJoinOutputNeverAliasesCatalog(t *testing.T) {
	cat := testCatalog()
	ws := NewWorkspace(cat, prng.NewStream(1), 4)
	s1, err := NewScan(cat, "means", "a")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewScan(cat, "means", "b")
	if err != nil {
		t.Fatal(err)
	}
	join, err := NewHashJoin(s1, s2, []string{"a.cid"}, []string{"b.cid"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ws.Run(join)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("join output = %d tuples", len(out))
	}
	tbl, _ := cat.Get("means")
	before := make([]string, tbl.NumRows())
	for i := range before {
		before[i] = tbl.Row(i).String()
	}
	// Clobber every output row.
	for _, tu := range out {
		for j := range tu.Det {
			tu.Det[j] = typesPoison()
		}
	}
	for i := range before {
		if got := tbl.Row(i).String(); got != before[i] {
			t.Fatalf("catalog row %d corrupted by output mutation: %s -> %s", i, before[i], got)
		}
	}
}

// typesPoison returns a sentinel value used to clobber output rows.
func typesPoison() types.Value { return types.NewFloat(-987654321) }
