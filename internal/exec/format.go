package exec

import "strings"

// Children implements Node for every operator; EXPLAIN uses it to render
// the physical tree.

func (s *Scan) Children() []Node        { return nil }
func (s *Seed) Children() []Node        { return []Node{s.Child} }
func (n *Instantiate) Children() []Node { return []Node{n.Child} }
func (n *Select) Children() []Node      { return []Node{n.Child} }
func (n *Project) Children() []Node     { return []Node{n.Child} }
func (n *HashJoin) Children() []Node    { return []Node{n.Left, n.Right} }
func (n *Cross) Children() []Node       { return []Node{n.Left, n.Right} }
func (n *Split) Children() []Node       { return []Node{n.Child} }
func (n *Rename) Children() []Node      { return []Node{n.Child} }

// FormatPlan renders the operator tree as an indented listing, one node
// per line, marking deterministic (materialization-cached) subtrees.
func FormatPlan(root Node) string {
	var b strings.Builder
	formatInto(&b, root, 0)
	return b.String()
}

func formatInto(b *strings.Builder, n Node, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(n.String())
	if n.Deterministic() {
		b.WriteString(" [det]")
	}
	b.WriteByte('\n')
	for _, c := range n.Children() {
		formatInto(b, c, depth+1)
	}
}
