package exec

import (
	"strings"

	"repro/internal/expr"
	"repro/internal/types"
)

// Children implements Node for every operator; EXPLAIN uses it to render
// the physical tree.

func (s *Scan) Children() []Node        { return nil }
func (s *Seed) Children() []Node        { return []Node{s.Child} }
func (n *Instantiate) Children() []Node { return []Node{n.Child} }
func (n *Select) Children() []Node      { return []Node{n.Child} }
func (n *Project) Children() []Node     { return []Node{n.Child} }
func (n *HashJoin) Children() []Node    { return []Node{n.Left, n.Right} }
func (n *Cross) Children() []Node       { return []Node{n.Left, n.Right} }
func (n *Split) Children() []Node       { return []Node{n.Child} }
func (n *Rename) Children() []Node      { return []Node{n.Child} }

// FormatPlan renders the operator tree as an indented listing, one node
// per line, marking deterministic (materialization-cached) subtrees and
// each operator's streaming mode in the pull-based batch pipeline.
func FormatPlan(root Node) string {
	var b strings.Builder
	formatInto(&b, root, 0)
	return b.String()
}

// streamMode names how an operator participates in the batch pipeline
// (DESIGN.md §9): "stream" operators forward one batch at a time,
// "build+stream" operators buffer one input side at Open and stream the
// other, and "sink" operators consume their whole input before producing.
func streamMode(n Node) string {
	switch n.(type) {
	case *Materialize, *Aggregate:
		return "sink"
	case *HashJoin, *Cross:
		return "build+stream"
	default:
		return "stream"
	}
}

// kernelCompiles reports whether e lowers to a vectorized kernel against
// schema (nil expressions trivially do).
func kernelCompiles(e expr.Expr, schema *types.Schema) bool {
	if e == nil {
		return true
	}
	_, err := expr.CompileKernel(e, schema)
	return err == nil
}

// vectorized reports whether the operator takes a kernel path at runtime
// (DESIGN.md §13): Select when its predicate lowers, HashJoin always
// (probe hashes are computed batch-at-a-time), Aggregate when it has no
// HAVING (which stays version-major) and every aggregate input lowers to
// a numeric kernel.
func vectorized(n Node) bool {
	switch op := n.(type) {
	case *Select:
		return kernelCompiles(op.Pred, op.Child.Schema())
	case *HashJoin:
		return true
	case *Aggregate:
		if op.Having != nil {
			return false
		}
		schema := op.Child.Schema()
		for _, a := range op.Aggs {
			if a.Expr == nil {
				continue
			}
			k, err := expr.CompileKernel(a.Expr, schema)
			if err != nil || k.Kind() == types.KindString {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func formatInto(b *strings.Builder, n Node, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(n.String())
	if n.Deterministic() {
		b.WriteString(" [det]")
	}
	b.WriteString(" [")
	b.WriteString(streamMode(n))
	b.WriteString("]")
	if vectorized(n) {
		b.WriteString(" [vectorized=true]")
	}
	b.WriteByte('\n')
	for _, c := range n.Children() {
		formatInto(b, c, depth+1)
	}
}
