// First-class aggregation. MCDB-R queries are aggregation queries; until
// ISSUE 5 the aggregate lived outside the plan (a single gibbs.AggKind
// carried beside the physical tree) and GROUP BY was an ad-hoc top-layer
// loop re-running the whole pipeline once per group. This file makes
// aggregation a physical operator: Aggregate is the plan root, carrying
// the grouping expressions, the (multi-item) aggregate list, and the
// optional HAVING predicate; AggEval is its single-pass evaluator — the
// plan runs once, tuples are partitioned by their deterministic group key
// once, and every Monte Carlo repetition produces one vector of aggregate
// values per group in a single sweep over the tuples.

package exec

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/bundle"
	"repro/internal/expr"
	"repro/internal/types"
)

// AggKind enumerates the aggregates the Monte Carlo layers maintain
// incrementally (moved here from internal/gibbs: the looper now consumes
// aggregate specs instead of owning them).
type AggKind uint8

const (
	// AggSum is SUM(expr).
	AggSum AggKind = iota
	// AggCount is COUNT(*) over tuples passing the final predicate.
	AggCount
	// AggAvg is AVG(expr).
	AggAvg
)

// String names the aggregate.
func (k AggKind) String() string {
	switch k {
	case AggSum:
		return "SUM"
	case AggCount:
		return "COUNT"
	case AggAvg:
		return "AVG"
	default:
		return fmt.Sprintf("AggKind(%d)", uint8(k))
	}
}

// AggSpec is one item of an aggregation select list.
type AggSpec struct {
	// Kind is the aggregate operation.
	Kind AggKind
	// Expr is the aggregated expression; nil for COUNT(*).
	Expr expr.Expr
	// Name is the output column name (the SQL alias, or the rendered
	// aggregate when none was given).
	Name string
}

// String renders the spec as it appears in EXPLAIN ("SUM(val) AS loss").
func (s AggSpec) String() string {
	body := "*"
	if s.Expr != nil {
		body = s.Expr.String()
	}
	out := fmt.Sprintf("%s(%s)", s.Kind, body)
	if s.Name != "" && s.Name != out {
		out += " AS " + s.Name
	}
	return out
}

// AggState is the incremental state of one aggregate for one DB version:
// a running sum and a contribution count. SUM reads Sum, COUNT reads
// Count, AVG reads Sum/Count. The Gibbs looper delta-maintains these
// fields during rejection sampling, which is why MIN/MAX (not expressible
// as a reversible delta) stay outside the Monte Carlo layers.
type AggState struct {
	Sum   float64
	Count int64
}

// Add folds one tuple contribution into the state.
func (a *AggState) Add(sum float64, count int64) {
	a.Sum += sum
	a.Count += count
}

// Value reads the aggregate under the given kind. An empty AVG yields
// -Inf: in the looper's cutoff comparisons an empty average can never
// beat a threshold, and result-building layers reject non-finite samples
// with a descriptive error.
func (a AggState) Value(k AggKind) float64 {
	switch k {
	case AggSum:
		return a.Sum
	case AggCount:
		return float64(a.Count)
	default: // AVG
		if a.Count == 0 {
			return math.Inf(-1)
		}
		return a.Sum / float64(a.Count)
	}
}

// Contribution evaluates one aggregate's contribution of a row that
// already passed presence and final-predicate checks, mirroring the Gibbs
// looper's accumulation exactly (NULLs are skipped per SQL semantics;
// sign is -1 for lower-tail conditioning, +1 otherwise).
func (s AggSpec) Contribution(compiled *expr.Compiled, row types.Row, sign float64) (float64, int64, error) {
	if s.Kind == AggCount {
		return 0, 1, nil
	}
	v := compiled.Eval(row)
	if v.IsNull() {
		return 0, 0, nil // SQL aggregates ignore NULLs
	}
	f, ok := v.AsFloat()
	if !ok {
		return 0, 0, fmt.Errorf("exec: aggregate expression %s produced %s, need numeric", s, v.Kind())
	}
	return sign * f, 1, nil
}

// Aggregate is the plan-root physical operator of an aggregation query.
// Open passes its child's Gibbs-tuple stream through unchanged (aggregate
// values vary per DB version, so they cannot be materialized as tuples);
// consumers — gibbs.MonteCarloGrouped for single-pass grouped Monte
// Carlo, the Gibbs looper for tail sampling — are the true sinks: they
// drain the stream once and evaluate the aggregates per version through
// OpenEval. Aggregate never appears below another operator.
type Aggregate struct {
	Child Node
	// GroupBy are the grouping expressions; they must evaluate over
	// deterministic attributes only (paper App. A). Empty means one
	// global group.
	GroupBy []expr.Expr
	// GroupNames name the grouping output columns.
	GroupNames []string
	// Aggs is the aggregate list; at least one item.
	Aggs []AggSpec
	// Having, when non-nil, is a predicate over the output row (group
	// columns followed by aggregate columns) evaluated once per group per
	// Monte Carlo repetition; repetitions where it fails are excluded
	// from that group's result distribution.
	Having expr.Expr

	schema *types.Schema
}

// NewAggregate builds the operator, validating the grouping and aggregate
// expressions against the child schema and constructing the output schema
// (group columns, then aggregate columns; duplicate names are
// disambiguated with a positional suffix).
func NewAggregate(child Node, groupBy []expr.Expr, groupNames []string, aggs []AggSpec, having expr.Expr) (*Aggregate, error) {
	if len(aggs) == 0 {
		return nil, fmt.Errorf("exec: Aggregate needs at least one aggregate")
	}
	if len(groupNames) != len(groupBy) {
		return nil, fmt.Errorf("exec: Aggregate got %d group names for %d grouping expressions", len(groupNames), len(groupBy))
	}
	for i, g := range groupBy {
		if _, err := expr.Compile(g, child.Schema()); err != nil {
			return nil, fmt.Errorf("exec: GROUP BY expression %d (%s): %w", i+1, g, err)
		}
	}
	for _, a := range aggs {
		if a.Expr != nil {
			if _, err := expr.Compile(a.Expr, child.Schema()); err != nil {
				return nil, fmt.Errorf("exec: aggregate %s: %w", a, err)
			}
		} else if a.Kind != AggCount {
			return nil, fmt.Errorf("exec: %s requires an aggregate expression", a.Kind)
		}
	}
	agg := &Aggregate{Child: child, GroupBy: groupBy, GroupNames: groupNames, Aggs: aggs, Having: having}
	cols := make([]types.Column, 0, len(groupBy)+len(aggs))
	uniq := UniqueNamer()
	for i, g := range groupBy {
		kind := types.KindFloat
		if c, ok := g.(*expr.Col); ok {
			if j := child.Schema().Lookup(c.Name); j >= 0 {
				kind = child.Schema().Col(j).Kind
			}
		}
		cols = append(cols, types.Column{Name: uniq(groupNames[i]), Kind: kind})
	}
	for _, a := range aggs {
		cols = append(cols, types.Column{Name: uniq(a.Name), Kind: types.KindFloat})
	}
	agg.schema = types.NewSchema(cols...)
	if having != nil {
		if _, err := expr.Compile(having, agg.schema); err != nil {
			return nil, fmt.Errorf("exec: HAVING may reference grouping columns and aggregate aliases %s: %w", agg.schema, err)
		}
	}
	return agg, nil
}

// UniqueNamer returns a closure that disambiguates output column names:
// the first use of a name keeps it, later collisions get an increasing
// "_N" suffix, re-probed until genuinely unused (a user alias may occupy
// the suffixed form too). Shared with the deterministic scalar path in
// mcdbr so both sides name result columns identically.
func UniqueNamer() func(string) string {
	seen := map[string]bool{}
	return func(name string) string {
		base := name
		for n := 2; seen[strings.ToLower(name)]; n++ {
			name = fmt.Sprintf("%s_%d", base, n)
		}
		seen[strings.ToLower(name)] = true
		return name
	}
}

// Schema implements Node: the aggregation output schema (group columns
// followed by aggregate columns).
func (a *Aggregate) Schema() *types.Schema { return a.schema }

// AggColNames returns the disambiguated output column names of the
// aggregate list (the schema columns after the grouping columns) — use
// these, not AggSpec.Name, when labeling results.
func (a *Aggregate) AggColNames() []string {
	out := make([]string, len(a.Aggs))
	for i := range a.Aggs {
		out[i] = a.schema.Col(len(a.GroupBy) + i).Name
	}
	return out
}

// GroupColNames returns the disambiguated grouping output column names
// (the leading schema columns) — the counterpart of AggColNames for the
// group key.
func (a *Aggregate) GroupColNames() []string {
	out := make([]string, len(a.GroupBy))
	for i := range a.GroupBy {
		out[i] = a.schema.Col(i).Name
	}
	return out
}

// Deterministic implements Node.
func (a *Aggregate) Deterministic() bool { return a.Child.Deterministic() }

// Children implements Node.
func (a *Aggregate) Children() []Node { return []Node{a.Child} }

func (a *Aggregate) String() string {
	parts := make([]string, len(a.Aggs))
	for i, s := range a.Aggs {
		parts[i] = s.String()
	}
	out := "Aggregate[" + strings.Join(parts, ", ")
	if len(a.GroupBy) > 0 {
		keys := make([]string, len(a.GroupBy))
		for i, g := range a.GroupBy {
			keys[i] = g.String()
		}
		out += "; group by " + strings.Join(keys, ", ")
	}
	if a.Having != nil {
		out += "; having " + a.Having.String()
	}
	return out + "]"
}

// Open implements Node: the child's tuple stream passes through unchanged.
func (a *Aggregate) Open(ws *Workspace) (Iterator, error) {
	return a.Child.Open(ws)
}

// aggGroup is one group's evaluation state: the key, the contributions of
// purely deterministic member tuples (computed once), and the member
// tuples with random lineage (re-evaluated per DB version).
type aggGroup struct {
	key  types.Row
	base []AggState
	rand []*bundle.Tuple
	// outRow is the group's HAVING scratch row (group columns followed by
	// aggregate columns), allocated once with the key prefix prefilled so
	// the per-version loop only overwrites the aggregate slots — keeping
	// EvalVersion at 0 allocs/version. Nil without a HAVING clause.
	outRow types.Row
}

// AggEval is the single-pass grouped-aggregation evaluator over one plan
// run's tuple stream. Build it once per run with OpenEval; EvalVersion then
// produces the vector of aggregate values for every group for one DB
// version in a single sweep over the (partitioned) tuples. Scratch rows
// and per-group state are allocated once, in contiguous backing arrays,
// and reused across versions — the evaluator adds no per-version
// allocation to the Monte Carlo hot path.
type AggEval struct {
	agg      *Aggregate
	final    *expr.Compiled
	aggExprs []*expr.Compiled
	having   *expr.Compiled
	groups   []aggGroup
	buf      types.Row  // tuple evaluation scratch
	states   []AggState // per-version scratch, reset per group

	// Window-major evaluation (DESIGN.md §13): the child schema kernels
	// are lowered against, whether the run's workspace allows kernels, and
	// the lazily built per-run kernel/scratch state. winBad latches a
	// failed kernel lowering so EvalWindow doesn't retry it per call.
	childSchema *types.Schema
	kernelsOn   bool
	win         *winEval
	winBad      bool
}

// groupKeySlots collects the schema slots the grouping expressions read;
// OpenEval uses them to reject tuples whose group key would read a random
// (VG-generated) slot — grouping columns must be deterministic (paper
// App. A).
func groupKeySlots(agg *Aggregate, schema *types.Schema) ([]int, error) {
	var slots []int
	for _, g := range agg.GroupBy {
		for _, name := range expr.Columns(g) {
			j := schema.Lookup(name)
			if j < 0 {
				return nil, fmt.Errorf("exec: GROUP BY column %q not in %s", name, schema)
			}
			slots = append(slots, j)
		}
	}
	return slots, nil
}

// OpenEval builds the evaluator by streaming one run of the child plan
// through the batch pipeline: deterministic member tuples fold into their
// group's base state as they pass, and tuples with random lineage are
// retained (Workspace.Retain) for per-version re-evaluation — the only
// part of the stream the evaluator holds on to. final is the Gibbs-looper
// final predicate (paper App. A) applied to every tuple before
// aggregation; nil means no predicate. When the query has no GROUP BY the
// evaluator always exposes exactly one group (with an empty key), even
// over an empty tuple stream.
func (a *Aggregate) OpenEval(ws *Workspace, final expr.Expr) (*AggEval, error) {
	schema := a.Child.Schema()
	ev := &AggEval{agg: a, aggExprs: make([]*expr.Compiled, len(a.Aggs)),
		childSchema: schema, kernelsOn: !ws.DisableKernels}
	var err error
	if final != nil {
		if ev.final, err = expr.Compile(final, schema); err != nil {
			return nil, fmt.Errorf("exec: final predicate: %w", err)
		}
	}
	for i, s := range a.Aggs {
		if s.Expr != nil {
			if ev.aggExprs[i], err = expr.Compile(s.Expr, schema); err != nil {
				return nil, fmt.Errorf("exec: aggregate %s: %w", s, err)
			}
		}
	}
	if a.Having != nil {
		if ev.having, err = expr.Compile(a.Having, a.schema); err != nil {
			return nil, err
		}
	}
	groupExprs := make([]*expr.Compiled, len(a.GroupBy))
	for i, g := range a.GroupBy {
		if groupExprs[i], err = expr.Compile(g, schema); err != nil {
			return nil, fmt.Errorf("exec: GROUP BY expression %s: %w", g, err)
		}
	}
	keySlots, err := groupKeySlots(a, schema)
	if err != nil {
		return nil, err
	}
	ev.buf = make(types.Row, schema.Len())

	// Partition the stream: group keys are deterministic, so the
	// tuple->group mapping is computed exactly once per plan run.
	index := map[uint64][]int{} // key hash -> group indexes (collision list)
	findGroup := func(key types.Row) *aggGroup {
		h := key.Hash()
		for _, gi := range index[h] {
			if ev.groups[gi].key.Equal(key) {
				return &ev.groups[gi]
			}
		}
		ev.groups = append(ev.groups, aggGroup{key: key.Clone(), base: make([]AggState, len(a.Aggs))})
		index[h] = append(index[h], len(ev.groups)-1)
		return &ev.groups[len(ev.groups)-1]
	}
	if len(a.GroupBy) == 0 {
		findGroup(types.Row{})
	}
	keyBuf := make(types.Row, len(groupExprs))
	it, err := a.Child.Open(ws)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	durable := isDurable(it)
	for {
		if err := ws.checkBudget(); err != nil {
			return nil, err
		}
		b, err := it.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		for _, tu := range b.Tuples {
			for _, slot := range keySlots {
				for _, r := range tu.Rand {
					if r.Slot == slot {
						return nil, fmt.Errorf("exec: GROUP BY reads the VG-generated attribute %q; grouping columns must be deterministic", schema.Col(slot).Name)
					}
				}
			}
			for i, ge := range groupExprs {
				keyBuf[i] = ge.Eval(tu.Det)
			}
			g := findGroup(keyBuf)
			if tu.IsRandom() {
				if !durable {
					tu = ws.Retain(tu)
				}
				g.rand = append(g.rand, tu)
				continue
			}
			if err := ev.contribute(tu.Det, g.base); err != nil {
				return nil, err
			}
		}
	}
	// Deterministic group order for every consumer: sort by key.
	sort.SliceStable(ev.groups, func(i, j int) bool {
		return LessRow(ev.groups[i].key, ev.groups[j].key)
	})
	if a.Having != nil {
		nk := len(a.GroupBy)
		for g := range ev.groups {
			row := make(types.Row, nk+len(a.Aggs))
			copy(row, ev.groups[g].key)
			ev.groups[g].outRow = row
		}
	}
	ev.states = make([]AggState, len(a.Aggs))
	return ev, nil
}

// LessRow orders group keys lexicographically by Value.Compare; the
// canonical group order of every aggregation surface.
func LessRow(a, b types.Row) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if c := a[i].Compare(b[i]); c != 0 {
			return c < 0
		}
	}
	return len(a) < len(b)
}

// StreamGroupKeys streams one run of the child plan and returns the
// distinct group keys in ascending order, without building the full
// evaluator — the cheap, bounded-memory discovery pass of per-group tail
// sampling (only the distinct keys are retained, never the tuples). It
// applies the same validation as OpenEval (unknown columns, random
// grouping slots). Ungrouped queries yield one empty key.
func (a *Aggregate) StreamGroupKeys(ws *Workspace) ([]types.Row, error) {
	schema := a.Child.Schema()
	if len(a.GroupBy) == 0 {
		return []types.Row{{}}, nil
	}
	groupExprs := make([]*expr.Compiled, len(a.GroupBy))
	for i, g := range a.GroupBy {
		c, err := expr.Compile(g, schema)
		if err != nil {
			return nil, fmt.Errorf("exec: GROUP BY expression %s: %w", g, err)
		}
		groupExprs[i] = c
	}
	keySlots, err := groupKeySlots(a, schema)
	if err != nil {
		return nil, err
	}
	var keys []types.Row
	index := map[uint64][]int{}
	keyBuf := make(types.Row, len(groupExprs))
	it, err := a.Child.Open(ws)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	for {
		if err := ws.checkBudget(); err != nil {
			return nil, err
		}
		b, err := it.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		for _, tu := range b.Tuples {
			for _, slot := range keySlots {
				for _, r := range tu.Rand {
					if r.Slot == slot {
						return nil, fmt.Errorf("exec: GROUP BY reads the VG-generated attribute %q; grouping columns must be deterministic", schema.Col(slot).Name)
					}
				}
			}
			for i, ge := range groupExprs {
				keyBuf[i] = ge.Eval(tu.Det)
			}
			h := keyBuf.Hash()
			known := false
			for _, ki := range index[h] {
				if keys[ki].Equal(keyBuf) {
					known = true
					break
				}
			}
			if !known {
				keys = append(keys, keyBuf.Clone())
				index[h] = append(index[h], len(keys)-1)
			}
		}
	}
	sort.SliceStable(keys, func(i, j int) bool { return LessRow(keys[i], keys[j]) })
	return keys, nil
}

// contribute folds one present row (past presence and final-predicate
// checks) into a per-aggregate state vector, in select-list order.
func (ev *AggEval) contribute(row types.Row, states []AggState) error {
	if ev.final != nil && !ev.final.EvalBool(row) {
		return nil
	}
	for i, spec := range ev.agg.Aggs {
		s, c, err := spec.Contribution(ev.aggExprs[i], row, 1)
		if err != nil {
			return err
		}
		states[i].Add(s, c)
	}
	return nil
}

// NumGroups returns the number of groups discovered in the stream.
func (ev *AggEval) NumGroups() int { return len(ev.groups) }

// Key returns group g's key values (empty for ungrouped queries).
func (ev *AggEval) Key(g int) types.Row { return ev.groups[g].key }

// EvalVersion computes the aggregate vector of every group for one DB
// version in a single pass: out[g][a] is aggregate a of group g.
// include[g] reports the HAVING outcome per group (always true without a
// HAVING clause); pass nil when the query has none. Both buffers must be
// pre-sized ([NumGroups][len(Aggs)] and [NumGroups]).
func (ev *AggEval) EvalVersion(b bundle.Binding, out [][]float64, include []bool) error {
	for g := range ev.groups {
		grp := &ev.groups[g]
		copy(ev.states, grp.base)
		for _, tu := range grp.rand {
			row, present, err := tu.Eval(b, ev.buf)
			if err != nil {
				return err
			}
			if !present {
				continue
			}
			if err := ev.contribute(row, ev.states); err != nil {
				return err
			}
		}
		for a, spec := range ev.agg.Aggs {
			out[g][a] = ev.states[a].Value(spec.Kind)
		}
		if include != nil {
			ok := true
			if ev.having != nil {
				nk := len(ev.agg.GroupBy)
				for a := range ev.agg.Aggs {
					grp.outRow[nk+a] = types.NewFloat(out[g][a])
				}
				ok = ev.having.EvalBool(grp.outRow)
			}
			include[g] = ok
		}
	}
	return nil
}

// winEval is the window-major evaluator's per-run state (DESIGN.md §13):
// one kernel per aggregate expression plus one for the final predicate,
// and the version-indexed scratch lanes they accumulate into. All slices
// are grown once and reused across groups and tuples.
type winEval struct {
	aggKerns  []*expr.Kernel // per aggregate; nil for COUNT(*)
	finalKern *expr.Kernel   // nil when there is no final predicate
	present   []bool         // per version: presence ∧ final predicate
	fmask     []bool         // final-predicate kernel output
	val       []float64      // aggregate-input kernel output
	vnull     []bool
	sums      [][]float64 // per aggregate × version running state
	counts    [][]int64
}

func (we *winEval) ensure(n int) {
	if len(we.present) < n {
		we.present = make([]bool, n)
		we.fmask = make([]bool, n)
		we.val = make([]float64, n)
		we.vnull = make([]bool, n)
		for a := range we.sums {
			we.sums[a] = make([]float64, n)
			we.counts[a] = make([]int64, n)
		}
	}
}

// buildWinEval lowers the aggregate-input expressions and the final
// predicate into kernels. False means some expression cannot be lowered
// (or has a static string result, which EvalNumeric refuses so the
// interpreter's error surfaces) and window-major evaluation is off for
// this run.
func (ev *AggEval) buildWinEval() bool {
	we := &winEval{
		aggKerns: make([]*expr.Kernel, len(ev.agg.Aggs)),
		sums:     make([][]float64, len(ev.agg.Aggs)),
		counts:   make([][]int64, len(ev.agg.Aggs)),
	}
	for i, spec := range ev.agg.Aggs {
		if spec.Expr == nil {
			continue
		}
		k, err := expr.CompileKernel(spec.Expr, ev.childSchema)
		if err != nil || k.Kind() == types.KindString {
			return false
		}
		we.aggKerns[i] = k
	}
	if ev.final != nil {
		k, err := ev.final.Kernel(ev.childSchema)
		if err != nil {
			return false
		}
		we.finalKern = k
	}
	ev.win = we
	return true
}

// windowIdentity reports whether a seed's first n version assignments are
// the identity mapping base, base+1, … over a contiguously materialized
// stretch of its window — the layout InitAssignAt produces, under which
// version v of the seed is exactly window row Assign[0]-Lo+v.
func windowIdentity(ws *Workspace, id uint64, n int) bool {
	s := ws.Seeds.MustGet(id)
	if len(s.Assign) < n {
		return false
	}
	base := s.Assign[0]
	for v := 1; v < n; v++ {
		if s.Assign[v] != base+uint64(v) {
			return false
		}
	}
	w := &s.Window
	return base >= w.Lo && base+uint64(n) <= w.End()
}

// EvalWindow computes out[g][a][v] for all n versions in a single
// window-major pass: per random tuple, the aggregate-input and
// final-predicate kernels run across the tuple's whole replicate window
// at once (the versions live contiguously in the seed window arena), and
// results accumulate into per-version running sums. Per (group,
// aggregate, version) the additions happen in exactly the order
// EvalVersion performs them — deterministic base first, then random
// tuples in plan order — so the results are bit-for-bit identical.
//
// ok=false means window-major evaluation does not apply to this run —
// HAVING needs per-version inclusion (version-major only), kernels are
// disabled, an expression cannot be lowered, or some seed's assignment /
// window / presence coverage is not the contiguous identity layout (e.g.
// n exceeds the materialized window, or a replenishing run left sparse
// positions). out may then be part-written; the caller must run the
// version-major path, which overwrites every slot and raises
// ErrNotMaterialized/replenishes exactly as before.
func (ev *AggEval) EvalWindow(ws *Workspace, n int, out [][][]float64) (bool, error) {
	if ev.having != nil || !ev.kernelsOn || ev.winBad || n < 1 {
		return false, nil
	}
	// Every referenced seed must be in identity layout, and every presence
	// vector must cover its seed's n versions in its contiguous bits.
	seedOK := map[uint64]bool{}
	check := func(id uint64) bool {
		ok, seen := seedOK[id]
		if !seen {
			ok = windowIdentity(ws, id, n)
			seedOK[id] = ok
		}
		return ok
	}
	for g := range ev.groups {
		for _, tu := range ev.groups[g].rand {
			for _, r := range tu.Rand {
				if !check(r.SeedID) {
					return false, nil
				}
			}
			for _, p := range tu.Pres {
				if !check(p.SeedID) {
					return false, nil
				}
				base := ws.Seeds.MustGet(p.SeedID).Assign[0]
				if base < p.Lo || base+uint64(n) > p.Lo+uint64(len(p.Bits)) {
					return false, nil
				}
			}
		}
	}
	if ev.win == nil && !ev.buildWinEval() {
		ev.winBad = true
		return false, nil
	}
	we := ev.win
	we.ensure(n)
	for g := range ev.groups {
		grp := &ev.groups[g]
		for a := range ev.agg.Aggs {
			sums, counts, b := we.sums[a], we.counts[a], grp.base[a]
			for v := 0; v < n; v++ {
				sums[v] = b.Sum
				counts[v] = b.Count
			}
		}
		for _, tu := range grp.rand {
			if err := ws.Cancelled(); err != nil {
				return false, err
			}
			present := we.present[:n]
			for v := range present {
				present[v] = true
			}
			for _, p := range tu.Pres {
				off := int(ws.Seeds.MustGet(p.SeedID).Assign[0] - p.Lo)
				for v, bit := range p.Bits[off : off+n] {
					if !bit {
						present[v] = false
					}
				}
			}
			// The interpreter surfaces a malformed VG-output reference as an
			// error for any version where the tuple passes its presence
			// checks (Tuple.Eval checks Pres before filling Rand); mirror
			// that before evaluating anything.
			for _, r := range tu.Rand {
				s := ws.Seeds.MustGet(r.SeedID)
				rows := s.Window.Vals[s.Assign[0]-s.Window.Lo:]
				for v := 0; v < n; v++ {
					if present[v] && r.Out >= len(rows[v]) {
						return false, fmt.Errorf("bundle: seed %d output %d of %d", r.SeedID, r.Out, len(rows[v]))
					}
				}
			}
			if we.finalKern != nil {
				if !we.gather(ws, tu, we.finalKern, n) {
					return false, nil
				}
				we.finalKern.EvalMask(we.fmask)
				for v := 0; v < n; v++ {
					if !we.fmask[v] {
						present[v] = false
					}
				}
			}
			for a, spec := range ev.agg.Aggs {
				sums, counts := we.sums[a], we.counts[a]
				if spec.Kind == AggCount {
					for v := 0; v < n; v++ {
						if present[v] {
							counts[v]++
						}
					}
					continue
				}
				k := we.aggKerns[a]
				if !we.gather(ws, tu, k, n) || !k.EvalNumeric(we.val, we.vnull) {
					return false, nil
				}
				for v := 0; v < n; v++ {
					if present[v] && !we.vnull[v] {
						sums[v] += we.val[v]
						counts[v]++
					}
				}
			}
		}
		for a, spec := range ev.agg.Aggs {
			dst, sums, counts := out[g][a], we.sums[a], we.counts[a]
			for v := 0; v < n; v++ {
				dst[v] = AggState{Sum: sums[v], Count: counts[v]}.Value(spec.Kind)
			}
		}
	}
	return true, nil
}

// gather loads one tuple's inputs into a kernel's column lanes: version v
// reads the tuple's deterministic values with each random slot overlaid
// by its seed's window row at position Assign[0]+v. Deterministic slots
// broadcast once; a random slot with a version whose VG output row is too
// short is skipped (such versions are always masked absent — gather runs
// after the bounds check above). False means a gathered value contradicts
// the kernel's static types and the caller must fall back.
func (we *winEval) gather(ws *Workspace, tu *bundle.Tuple, k *expr.Kernel, n int) bool {
	k.Begin(n)
	for _, col := range k.Cols() {
		slot := col.Slot()
		ri := -1
		for i, r := range tu.Rand { // last match wins, like Tuple.Eval's fill loop
			if r.Slot == slot {
				ri = i
			}
		}
		if ri < 0 {
			if !col.Fill(n, tu.Det[slot]) {
				return false
			}
			continue
		}
		r := tu.Rand[ri]
		s := ws.Seeds.MustGet(r.SeedID)
		off := s.Assign[0] - s.Window.Lo
		for v, row := range s.Window.Vals[off : off+uint64(n)] {
			if r.Out >= len(row) {
				continue // masked absent by the caller's bounds check
			}
			if !col.Set(v, row[r.Out]) {
				return false
			}
		}
	}
	return true
}
