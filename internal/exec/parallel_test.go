package exec

import (
	"fmt"
	"testing"

	"repro/internal/prng"
	"repro/internal/storage"
	"repro/internal/types"
)

func TestShardsPartition(t *testing.T) {
	cases := []struct{ n, workers int }{
		{1, 1}, {1, 8}, {7, 1}, {7, 2}, {7, 3}, {7, 7}, {7, 16},
		{1000, 4}, {1001, 4}, {1024, 3},
	}
	for _, tc := range cases {
		windows := Shards(tc.n, tc.workers)
		want := tc.workers
		if want > tc.n {
			want = tc.n
		}
		if len(windows) != want {
			t.Errorf("Shards(%d, %d): %d windows, want %d", tc.n, tc.workers, len(windows), want)
		}
		next := 0
		for _, w := range windows {
			if w[0] != next {
				t.Fatalf("Shards(%d, %d): window starts at %d, want %d", tc.n, tc.workers, w[0], next)
			}
			if w[1] <= w[0] {
				t.Fatalf("Shards(%d, %d): empty window %v", tc.n, tc.workers, w)
			}
			next = w[1]
		}
		if next != tc.n {
			t.Errorf("Shards(%d, %d): windows cover [0, %d), want [0, %d)", tc.n, tc.workers, next, tc.n)
		}
	}
	if got := Shards(0, 4); got != nil {
		t.Errorf("Shards(0, 4) = %v, want nil", got)
	}
}

func shardProto() *Workspace {
	cat := storage.NewCatalog()
	tbl := storage.NewTable("t", types.NewSchema(types.Column{Name: "x", Kind: types.KindInt}))
	tbl.MustAppend(types.Row{types.NewInt(1)})
	cat.Put(tbl)
	return NewWorkspace(cat, prng.NewStream(99), 512)
}

func TestShardWorkspace(t *testing.T) {
	proto := shardProto()
	ws := ShardWorkspace(proto, 100, 160)
	if ws.Base != 100 || ws.Window != 60 {
		t.Fatalf("shard workspace Base=%d Window=%d, want 100/60", ws.Base, ws.Window)
	}
	if ws.Catalog != proto.Catalog {
		t.Error("shard workspace must share the prototype catalog")
	}
	if ws.Master != proto.Master {
		t.Error("shard workspace must share the prototype master stream")
	}
	if ws.Seeds == proto.Seeds {
		t.Error("shard workspace must have a private seed store")
	}
}

func TestRunShardedMergesInReplicateOrder(t *testing.T) {
	proto := shardProto()
	for _, workers := range []int{1, 2, 3, 5, 16} {
		out, err := RunSharded(proto, 11, workers, func(sh Shard) ([]float64, error) {
			res := make([]float64, sh.Len())
			for i := range res {
				res[i] = float64(sh.Lo + i)
			}
			return res, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 11 {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v != float64(i) {
				t.Fatalf("workers=%d: out[%d] = %g, want %d", workers, i, v, i)
			}
		}
	}
}

func TestRunShardedShardWindows(t *testing.T) {
	proto := shardProto()
	_, err := RunSharded(proto, 10, 3, func(sh Shard) ([]float64, error) {
		if sh.WS.Base != uint64(sh.Lo) {
			return nil, fmt.Errorf("shard %d: Base=%d, want %d", sh.Index, sh.WS.Base, sh.Lo)
		}
		if sh.WS.Window != sh.Len() {
			return nil, fmt.Errorf("shard %d: Window=%d, want %d", sh.Index, sh.WS.Window, sh.Len())
		}
		return make([]float64, sh.Len()), nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunShardedErrors(t *testing.T) {
	proto := shardProto()
	if _, err := RunSharded(proto, 0, 2, nil); err == nil {
		t.Error("n=0 must error")
	}
	boom := fmt.Errorf("boom")
	_, err := RunSharded(proto, 10, 4, func(sh Shard) ([]float64, error) {
		if sh.Index == 2 {
			return nil, boom
		}
		return make([]float64, sh.Len()), nil
	})
	if err != boom {
		t.Errorf("worker error not propagated: %v", err)
	}
	_, err = RunSharded(proto, 10, 2, func(sh Shard) ([]float64, error) {
		return make([]float64, sh.Len()+1), nil
	})
	if err == nil {
		t.Error("wrong result length must error")
	}
}
