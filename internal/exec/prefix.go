// Deterministic-prefix materialization. MCDB-R's performance story is that
// the deterministic part of a query plan is paid once while only random
// attributes are re-instantiated per Monte Carlo repetition (paper §5).
// The planner marks maximal randomness-free subtrees and lowers them to a
// Materialize node; its result depends only on the catalog contents, never
// on the master seed, the stream window, or the replicate shard — so it
// can be shared read-only across shard workers of one run and across runs
// of one engine. The engine keeps a bounded LRU of these results keyed by
// subtree fingerprint and invalidated by the DDL epoch.

package exec

import (
	"container/list"
	"sync"

	"repro/internal/bundle"
	"repro/internal/types"
)

// Materialize caches the output of a deterministic subtree. Within one
// workspace the result is computed at most once (Workspace.Run's
// materialization cache); with an engine-level prefix cache attached to
// the workspace, re-executions — prepared queries, repeated server
// statements, sibling shard workers — skip the subtree entirely and share
// one read-only tuple batch. Tuples below a Materialize are never mutated
// by operators above it, which is what makes the sharing sound.
type Materialize struct {
	Child Node
	// Fingerprint canonically identifies the subtree (plan.Fingerprint);
	// it is the engine-level cache key. Empty disables engine-level
	// caching for this node (workspace-level caching still applies).
	Fingerprint string
}

// Schema implements Node.
func (m *Materialize) Schema() *types.Schema { return m.Child.Schema() }

// Deterministic implements Node.
func (m *Materialize) Deterministic() bool { return true }

// Children implements Node.
func (m *Materialize) Children() []Node { return []Node{m.Child} }

func (m *Materialize) String() string { return "Materialize" }

// Open implements Node. Materialize is the pipeline's deterministic sink:
// the first Open of a run drains the child subtree into the workspace's
// pinned slab (through the engine prefix cache when one is attached), and
// every Open serves the materialized result back in batches. Those batches
// are durable — valid for the whole workspace lifetime, not just until the
// next Next — so consumers above may hold their tuples without copying.
func (m *Materialize) Open(ws *Workspace) (Iterator, error) {
	out, ok := ws.matCache[m]
	if !ok {
		var err error
		compute := func() ([]*bundle.Tuple, error) {
			return ws.drainNode(m.Child, ws.det)
		}
		if ws.Prefix != nil && m.Fingerprint != "" {
			out, err = ws.Prefix.Do(m.Fingerprint, compute)
		} else {
			out, err = compute()
		}
		if err != nil {
			return nil, err
		}
		ws.matCache[m] = out
	}
	return &matIter{ws: ws, tuples: out}, nil
}

// matIter serves a materialized result in batch-size slices.
type matIter struct {
	ws     *Workspace
	tuples []*bundle.Tuple
	pos    int
	batch  Batch
}

func (it *matIter) Next() (*Batch, error) {
	if err := it.ws.checkBudget(); err != nil {
		return nil, err
	}
	if it.pos >= len(it.tuples) {
		return nil, nil
	}
	n := len(it.tuples) - it.pos
	if bs := it.ws.batchSize(); n > bs {
		n = bs
	}
	it.batch.Tuples = it.tuples[it.pos : it.pos+n]
	it.pos += n
	return &it.batch, nil
}

func (it *matIter) Close() {}

func (it *matIter) durableBatches() bool { return true }

// PrefixCache is the engine-level deterministic-prefix materialization
// cache: a bounded, mutex-guarded LRU of materialized subtree results
// keyed by plan fingerprint. Entries carry the DDL epoch they were
// computed under; a lookup from a later epoch misses (and evicts), so
// definition changes invalidate stale results. Concurrent first
// computations of one fingerprint are collapsed (single-flight): one
// caller computes, the others wait and share the result.
//
// A PrefixCache belongs to exactly one engine. Results must never be
// shared across engines — fingerprints say nothing about catalog
// contents, which the per-engine epoch tracks.
type PrefixCache struct {
	mu       sync.Mutex
	cap      int
	order    *list.List // *prefixEntry, most recently used first
	entries  map[string]*list.Element
	inflight map[string]*prefixCall
	hits     uint64
	misses   uint64
}

type prefixEntry struct {
	key    string
	epoch  uint64
	tuples []*bundle.Tuple
}

type prefixCall struct {
	epoch  uint64
	done   chan struct{}
	tuples []*bundle.Tuple
	err    error
}

// NewPrefixCache builds an empty cache; cap <= 0 selects 64.
func NewPrefixCache(cap int) *PrefixCache {
	if cap <= 0 {
		cap = 64
	}
	return &PrefixCache{
		cap:      cap,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*prefixCall),
	}
}

// Handle returns the cache view for one query run, pinned to the DDL
// epoch the run started under. Attach it to the run's Workspace (and, via
// ShardWorkspace, to every shard worker's).
func (c *PrefixCache) Handle(epoch uint64) *PrefixHandle {
	return &PrefixHandle{c: c, epoch: epoch}
}

// Stats reports lifetime hit and miss counts and the current entry count.
func (c *PrefixCache) Stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len()
}

// PrefixHandle is a PrefixCache scoped to one run's DDL epoch.
type PrefixHandle struct {
	c     *PrefixCache
	epoch uint64
}

// Do returns the cached result for key, or runs compute (at most once
// across concurrent callers of the same key and epoch) and caches it.
// Results computed under a different epoch are never returned.
func (h *PrefixHandle) Do(key string, compute func() ([]*bundle.Tuple, error)) ([]*bundle.Tuple, error) {
	c := h.c
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*prefixEntry)
		if e.epoch == h.epoch {
			c.order.MoveToFront(el)
			c.hits++
			c.mu.Unlock()
			return e.tuples, nil
		}
		// Computed under an older catalog: evict.
		c.order.Remove(el)
		delete(c.entries, key)
	}
	if call, ok := c.inflight[key]; ok && call.epoch == h.epoch {
		c.hits++
		c.mu.Unlock()
		<-call.done
		if call.err != nil {
			return nil, call.err
		}
		return call.tuples, nil
	}
	c.misses++
	call := &prefixCall{epoch: h.epoch, done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()

	tuples, err := compute()

	c.mu.Lock()
	// Only the call still registered as the in-flight computation for the
	// key may store its result: a later-epoch caller may have superseded
	// this one (replacing c.inflight[key]), and storing the stale result
	// over the fresh entry would both serve outdated data and orphan the
	// fresh entry's LRU element.
	mine := c.inflight[key] == call
	if mine {
		delete(c.inflight, key)
	}
	if err == nil && mine {
		if el, ok := c.entries[key]; ok {
			c.order.Remove(el)
			delete(c.entries, key)
		}
		c.entries[key] = c.order.PushFront(&prefixEntry{key: key, epoch: h.epoch, tuples: tuples})
		for c.order.Len() > c.cap {
			back := c.order.Back()
			c.order.Remove(back)
			delete(c.entries, back.Value.(*prefixEntry).key)
		}
	}
	call.tuples, call.err = tuples, err
	close(call.done)
	c.mu.Unlock()
	return tuples, err
}
