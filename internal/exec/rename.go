package exec

import (
	"fmt"

	"repro/internal/types"
)

// Rename re-qualifies every column of its child with a new alias; tuples
// pass through untouched. The planner uses it to expose random-table
// pipelines (Scan -> Seed -> Instantiate) under the table's alias.
type Rename struct {
	Child Node
	Alias string

	schema *types.Schema
}

// NewRename builds a rename node.
func NewRename(child Node, alias string) *Rename {
	return &Rename{Child: child, Alias: alias, schema: child.Schema().Rename(alias)}
}

// Schema implements Node.
func (n *Rename) Schema() *types.Schema { return n.schema }

// Deterministic implements Node.
func (n *Rename) Deterministic() bool { return n.Child.Deterministic() }

func (n *Rename) String() string { return fmt.Sprintf("Rename(%s)", n.Alias) }

// Open implements Node. Rename is schema-only: tuples carry values, not
// column names, so the child's iterator is returned directly and the
// operator vanishes from the streaming pipeline.
func (n *Rename) Open(ws *Workspace) (Iterator, error) {
	return n.Child.Open(ws)
}
