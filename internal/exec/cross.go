package exec

import (
	"fmt"

	"repro/internal/bundle"
	"repro/internal/expr"
	"repro/internal/types"
)

// NewProjectAs is Project with output column renaming: column cols[i] of
// the child appears as names[i] (keeping its kind). The planner uses it to
// expose random-table pipelines under the CREATE TABLE column names.
func NewProjectAs(child Node, cols, names []string) (*Project, error) {
	if len(cols) != len(names) {
		return nil, fmt.Errorf("exec: ProjectAs needs matching cols/names, got %d vs %d", len(cols), len(names))
	}
	p, err := NewProject(child, cols...)
	if err != nil {
		return nil, err
	}
	out := make([]types.Column, len(names))
	for i, n := range names {
		out[i] = types.Column{Name: n, Kind: p.schema.Col(i).Kind}
	}
	p.schema = types.NewSchema(out...)
	return p, nil
}

// Cross is the cartesian product with an optional deterministic residual
// predicate — the fallback when no equi-join key connects two plan inputs.
type Cross struct {
	Left, Right Node
	// Residual, if non-nil, filters the concatenated rows; it must
	// reference deterministic attributes only.
	Residual expr.Expr

	schema *types.Schema
}

// NewCross builds a cross-join node.
func NewCross(left, right Node, residual expr.Expr) *Cross {
	return &Cross{Left: left, Right: right, Residual: residual,
		schema: left.Schema().Concat(right.Schema())}
}

// Schema implements Node.
func (n *Cross) Schema() *types.Schema { return n.schema }

// Deterministic implements Node.
func (n *Cross) Deterministic() bool { return n.Left.Deterministic() && n.Right.Deterministic() }

func (n *Cross) String() string { return "Cross" }

// Run implements Node.
func (n *Cross) Run(ws *Workspace) ([]*bundle.Tuple, error) {
	left, err := ws.Run(n.Left)
	if err != nil {
		return nil, err
	}
	right, err := ws.Run(n.Right)
	if err != nil {
		return nil, err
	}
	var residual *expr.Compiled
	if n.Residual != nil {
		residual, err = expr.Compile(n.Residual, n.schema)
		if err != nil {
			return nil, fmt.Errorf("exec: cross residual: %w", err)
		}
	}
	lw := n.Left.Schema().Len()
	slab := ws.alloc()
	var out []*bundle.Tuple
	for _, ltu := range left {
		for _, rtu := range right {
			det := slab.Row(lw + len(rtu.Det))
			copy(det, ltu.Det)
			copy(det[lw:], rtu.Det)
			if residual != nil && !residual.EvalBool(det) {
				continue
			}
			nt := slab.Tuple()
			nt.Det = det
			nt.Rand = concatRand(slab, ltu.Rand, rtu.Rand, lw)
			nt.Pres = concatPres(ltu.Pres, rtu.Pres)
			out = append(out, nt)
		}
	}
	return out, nil
}
