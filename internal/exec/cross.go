package exec

import (
	"fmt"

	"repro/internal/bundle"
	"repro/internal/expr"
	"repro/internal/types"
)

// NewProjectAs is Project with output column renaming: column cols[i] of
// the child appears as names[i] (keeping its kind). The planner uses it to
// expose random-table pipelines under the CREATE TABLE column names.
func NewProjectAs(child Node, cols, names []string) (*Project, error) {
	if len(cols) != len(names) {
		return nil, fmt.Errorf("exec: ProjectAs needs matching cols/names, got %d vs %d", len(cols), len(names))
	}
	p, err := NewProject(child, cols...)
	if err != nil {
		return nil, err
	}
	out := make([]types.Column, len(names))
	for i, n := range names {
		out[i] = types.Column{Name: n, Kind: p.schema.Col(i).Kind}
	}
	p.schema = types.NewSchema(out...)
	return p, nil
}

// Cross is the cartesian product with an optional deterministic residual
// predicate — the fallback when no equi-join key connects two plan inputs.
type Cross struct {
	Left, Right Node
	// Residual, if non-nil, filters the concatenated rows; it must
	// reference deterministic attributes only.
	Residual expr.Expr

	schema *types.Schema
}

// NewCross builds a cross-join node.
func NewCross(left, right Node, residual expr.Expr) *Cross {
	return &Cross{Left: left, Right: right, Residual: residual,
		schema: left.Schema().Concat(right.Schema())}
}

// Schema implements Node.
func (n *Cross) Schema() *types.Schema { return n.schema }

// Deterministic implements Node.
func (n *Cross) Deterministic() bool { return n.Left.Deterministic() && n.Right.Deterministic() }

func (n *Cross) String() string { return "Cross" }

// Open implements Node. The inner (right) side is buffered fully at Open —
// it is rescanned once per left tuple. The outer (left) side streams batch
// by batch, unless both sides are non-deterministic, in which case it too
// is buffered at Open: the materializing executor evaluated the left
// subtree — and allocated its TS-seeds — before the right, and streaming
// the left after the right's buffering drain would reverse that order.
func (n *Cross) Open(ws *Workspace) (Iterator, error) {
	it := &crossIter{ws: ws, op: n, lw: n.Left.Schema().Len()}
	if n.Residual != nil {
		c, err := expr.Compile(n.Residual, n.schema)
		if err != nil {
			return nil, fmt.Errorf("exec: cross residual: %w", err)
		}
		it.residual = c
	}
	it.bufSlab = ws.getSlab()
	if !n.Left.Deterministic() && !n.Right.Deterministic() {
		buf, err := ws.drainNode(n.Left, it.bufSlab)
		if err != nil {
			it.Close()
			return nil, err
		}
		it.leftBuf = buf
	} else {
		left, err := n.Left.Open(ws)
		if err != nil {
			it.Close()
			return nil, err
		}
		it.left = left
	}
	right, err := ws.drainNode(n.Right, it.bufSlab)
	if err != nil {
		it.Close()
		return nil, err
	}
	it.right = right
	it.slab = ws.getSlab()
	return it, nil
}

type crossIter struct {
	ws       *Workspace
	op       *Cross
	residual *expr.Compiled
	lw       int

	right   []*bundle.Tuple
	bufSlab *bundle.Slab // retains the inner side (and the buffered left)

	left    Iterator // streaming outer side; nil when buffered
	leftBuf []*bundle.Tuple
	lpos    int
	in      *Batch
	pos     int

	// Resume point: the current left tuple and its right-side cursor.
	ltu *bundle.Tuple
	ri  int

	slab  *bundle.Slab
	out   []*bundle.Tuple
	batch Batch
}

func (it *crossIter) nextLeft() (*bundle.Tuple, error) {
	if it.left == nil {
		if it.lpos >= len(it.leftBuf) {
			return nil, nil
		}
		tu := it.leftBuf[it.lpos]
		it.lpos++
		return tu, nil
	}
	for it.in == nil || it.pos >= len(it.in.Tuples) {
		b, err := it.left.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		it.in, it.pos = b, 0
	}
	tu := it.in.Tuples[it.pos]
	it.pos++
	return tu, nil
}

func (it *crossIter) Next() (*Batch, error) {
	if err := it.ws.checkBudget(); err != nil {
		return nil, err
	}
	it.slab.Reset()
	it.out = it.out[:0]
	limit := it.ws.batchSize()
	for len(it.out) < limit {
		if it.ltu != nil && it.ri < len(it.right) {
			rtu := it.right[it.ri]
			it.ri++
			det := it.slab.Row(it.lw + len(rtu.Det))
			copy(det, it.ltu.Det)
			copy(det[it.lw:], rtu.Det)
			if it.residual != nil && !it.residual.EvalBool(det) {
				continue
			}
			nt := it.slab.Tuple()
			nt.Det = det
			nt.Rand = concatRand(it.slab, it.ltu.Rand, rtu.Rand, it.lw)
			nt.Pres = concatPres(it.ltu.Pres, rtu.Pres)
			it.out = append(it.out, nt)
			continue
		}
		ltu, err := it.nextLeft()
		if err != nil {
			return nil, err
		}
		if ltu == nil {
			break
		}
		it.ltu, it.ri = ltu, 0
	}
	if len(it.out) == 0 {
		return nil, nil
	}
	it.batch.Tuples = it.out
	return &it.batch, nil
}

func (it *crossIter) Close() {
	if it.left != nil {
		it.left.Close()
		it.left = nil
	}
	if it.slab != nil {
		it.ws.putSlab(it.slab)
		it.slab = nil
	}
	if it.bufSlab != nil {
		it.ws.putSlab(it.bufSlab)
		it.bufSlab = nil
	}
	it.right, it.leftBuf, it.in, it.ltu = nil, nil, nil, nil
}
