package exec

import (
	"math"
	"testing"

	"repro/internal/bundle"
	"repro/internal/expr"
	"repro/internal/prng"
)

// windowAggregate wraps the loss plan in a Select (so tuples carry
// presence vectors) under a multi-aggregate grouped Aggregate.
func windowAggregate(t *testing.T, ws *Workspace, having expr.Expr) *Aggregate {
	t.Helper()
	plan := buildLossPlan(t, ws)
	sel := &Select{Child: plan, Pred: expr.B(expr.OpGt, expr.C("losses.val"), expr.F(2.0))}
	agg, err := NewAggregate(sel,
		[]expr.Expr{expr.C("means.cid")}, []string{"cid"},
		[]AggSpec{
			{Kind: AggSum, Expr: expr.C("losses.val"), Name: "s"},
			{Kind: AggAvg, Expr: expr.B(expr.OpMul, expr.C("losses.val"), expr.F(2.0)), Name: "a"},
			{Kind: AggCount, Name: "c"},
		}, having)
	if err != nil {
		t.Fatal(err)
	}
	return agg
}

// TestEvalWindowMatchesEvalVersion: the window-major pass must apply to
// the identity layout and produce bit-identical samples to the
// version-major loop, including the final predicate and presence checks.
func TestEvalWindowMatchesEvalVersion(t *testing.T) {
	const n = 48
	final := expr.B(expr.OpLt, expr.C("losses.val"), expr.F(6.5))
	cat := testCatalog()

	ws := NewWorkspace(cat, prng.NewStream(9), n)
	ev, err := windowAggregate(t, ws, nil).OpenEval(ws, final)
	if err != nil {
		t.Fatal(err)
	}
	ws.Seeds.InitAssignAt(ws.Base, n)
	nG, nA := ev.NumGroups(), 3
	if nG != 3 {
		t.Fatalf("groups = %d", nG)
	}
	want := make([][][]float64, nG)
	vec := make([][]float64, nG)
	for g := 0; g < nG; g++ {
		want[g] = make([][]float64, nA)
		for a := 0; a < nA; a++ {
			want[g][a] = make([]float64, n)
		}
		vec[g] = make([]float64, nA)
	}
	for v := 0; v < n; v++ {
		if err := ev.EvalVersion(bundle.Bind(ws.Seeds, v), vec, nil); err != nil {
			t.Fatal(err)
		}
		for g := 0; g < nG; g++ {
			for a := 0; a < nA; a++ {
				want[g][a][v] = vec[g][a]
			}
		}
	}

	got := make([][][]float64, nG)
	for g := 0; g < nG; g++ {
		got[g] = make([][]float64, nA)
		for a := 0; a < nA; a++ {
			got[g][a] = make([]float64, n)
		}
	}
	ok, err := ev.EvalWindow(ws, n, got)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("EvalWindow declined the identity layout")
	}
	for g := 0; g < nG; g++ {
		for a := 0; a < nA; a++ {
			for v := 0; v < n; v++ {
				if math.Float64bits(got[g][a][v]) != math.Float64bits(want[g][a][v]) {
					t.Fatalf("group %d agg %d version %d: window %v vs version-major %v",
						g, a, v, got[g][a][v], want[g][a][v])
				}
			}
		}
	}
}

// TestEvalWindowDeclines: HAVING, disabled kernels, and an n exceeding
// the materialized window must all fall back (ok=false, no error).
func TestEvalWindowDeclines(t *testing.T) {
	const n = 16
	cat := testCatalog()

	decline := func(label string, ws *Workspace, agg *Aggregate, n int) {
		t.Helper()
		ev, err := agg.OpenEval(ws, nil)
		if err != nil {
			t.Fatal(err)
		}
		ws.Seeds.InitAssignAt(ws.Base, n)
		full := make([][][]float64, ev.NumGroups())
		for g := range full {
			full[g] = make([][]float64, len(agg.Aggs))
			for a := range full[g] {
				full[g][a] = make([]float64, n)
			}
		}
		ok, err := ev.EvalWindow(ws, n, full)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if ok {
			t.Fatalf("%s: EvalWindow should decline", label)
		}
	}

	ws := NewWorkspace(cat, prng.NewStream(9), n)
	decline("having", ws, windowAggregate(t, ws, expr.B(expr.OpGt, expr.C("s"), expr.F(0))), n)

	ws2 := NewWorkspace(cat, prng.NewStream(9), n)
	ws2.DisableKernels = true
	decline("kernels off", ws2, windowAggregate(t, ws2, nil), n)

	ws3 := NewWorkspace(cat, prng.NewStream(9), 4)
	decline("window too small", ws3, windowAggregate(t, ws3, nil), n)
}

// TestEvalVersionHavingZeroAllocs pins the HAVING hot loop at zero
// allocations per version: group keys are prefilled into per-group
// output rows at OpenEval, so per version only the aggregate slots are
// overwritten in place.
func TestEvalVersionHavingZeroAllocs(t *testing.T) {
	const n = 8
	cat := testCatalog()
	ws := NewWorkspace(cat, prng.NewStream(9), n)
	having := expr.B(expr.OpGt, expr.C("s"), expr.F(1.0))
	ev, err := windowAggregate(t, ws, having).OpenEval(ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	ws.Seeds.InitAssignAt(ws.Base, n)
	nG := ev.NumGroups()
	out := make([][]float64, nG)
	for g := range out {
		out[g] = make([]float64, 3)
	}
	include := make([]bool, nG)
	b := bundle.Bind(ws.Seeds, 0)
	if err := ev.EvalVersion(b, out, include); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := ev.EvalVersion(b, out, include); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("EvalVersion with HAVING allocates %v per version, want 0", allocs)
	}
}
