package detsource_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/detsource"
	"repro/internal/lint/linttest"
	"repro/internal/lint/load"
)

func TestDetPackage(t *testing.T) {
	linttest.Run(t, detsource.Analyzer, "testdata/det", "repro/internal/gibbs")
}

func TestNonDetPackageExempt(t *testing.T) {
	linttest.Run(t, detsource.Analyzer, "testdata/nondet", "repro/internal/server")
}

// TestMalformedDirectives drives the satellite rule end to end: a
// //mcdbr: comment that is not a well-formed suppression or marker is
// itself a finding, in every package, through the same driver path CI
// uses. (These live inline rather than as fixtures because the finding
// sits on the directive's own line, where a fixture cannot also carry
// a want comment.)
func TestMalformedDirectives(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"bare suppression", "//mcdbr:nondet", "needs an ok(reason) clause"},
		{"unknown name", "//mcdbr:bogus ok(x)", "unknown directive //mcdbr:bogus"},
		{"empty reason", "//mcdbr:nondet ok()", "empty reason"},
		{"empty name", "//mcdbr:", "empty //mcdbr: directive name"},
		{"trailing junk", "//mcdbr:nondet ok(x) extra", "malformed //mcdbr:nondet directive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := "package p\n\n" + tc.src + "\nfunc f() {}\n"
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			pkg, err := load.CheckFiles(fset, "repro/internal/whatever", []*ast.File{f}, nil)
			if err != nil {
				t.Fatal(err)
			}
			diags, err := load.Run([]*load.Package{pkg}, []*analysis.Analyzer{detsource.Analyzer})
			if err != nil {
				t.Fatal(err)
			}
			if len(diags) != 1 {
				t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
			}
			if !strings.Contains(diags[0].Message, tc.want) {
				t.Errorf("diagnostic %q does not mention %q", diags[0].Message, tc.want)
			}
		})
	}
}
