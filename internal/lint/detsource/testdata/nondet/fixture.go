// Fixture checked under package path repro/internal/server, which is
// NOT on the deterministic-package list: wall-clock use is fine, but
// directive hygiene still applies everywhere.
package fixtures

import "time"

func requestStart() time.Time {
	return time.Now() // fine outside the deterministic packages
}

//mcdbr:hotpath
func markerParsesFine(n int) int {
	// (the marker does nothing here; ctxpropagate interprets it — but
	// it must parse as well-formed for detsource)
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}
