// Fixture checked under package path repro/internal/gibbs, which is on
// the deterministic-package list.
package fixtures

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `time\.Now in deterministic package`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since in deterministic package`
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want `time\.Until in deterministic package`
}

func globalDraw() int {
	return rand.Int() // want `global math/rand\.Int`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand\.Shuffle`
}

func osEntropy(buf []byte) {
	_, _ = crand.Read(buf) // want `crypto/rand\.Read in deterministic package`
}

// Explicitly seeded generators are a pure function of the seed and
// stay legal (statistical tests depend on this).
func seededOK() float64 {
	rng := rand.New(rand.NewSource(1))
	return rng.Float64()
}

// The audited escape hatch: timing-only instrumentation.
func timingOK() time.Time {
	return time.Now() //mcdbr:nondet ok(progress instrumentation; value never reaches query output)
}

func timingOKAbove() time.Duration {
	//mcdbr:nondet ok(progress instrumentation on the line above)
	return time.Since(time.Time{})
}
