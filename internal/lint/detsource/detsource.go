// Package detsource forbids wall-clock and entropy sources inside the
// deterministic packages.
//
// The whole repo rests on one contract (DESIGN.md §§2, 9, 10): stream
// element i is a pure function of (seed, i), so query output is
// bit-identical at any worker count, batch size, or cache setting. A
// single time.Now() feeding a value, or a draw from the globally
// seeded math/rand source, silently breaks that — and the bit-identity
// tests only catch it probabilistically. This analyzer bans the
// sources statically in the packages that must stay deterministic:
//
//   - time.Now / time.Since / time.Until
//   - package-level math/rand and math/rand/v2 functions (the global
//     source); explicitly seeded generators via rand.New(rand.
//     NewSource(k)) remain legal, e.g. in statistical tests
//   - anything from crypto/rand
//
// Timing/progress instrumentation that never influences query output
// is suppressed with `//mcdbr:nondet ok(reason)` on or above the line.
//
// detsource also owns the //mcdbr: directive namespace: a malformed
// directive anywhere in the tree (bare //mcdbr:nondet, unknown name,
// empty reason) is reported, so suppressions stay auditable.
package detsource

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
)

// DetPackages are the import paths whose code must be a pure function
// of (seed, position). Test variants (the same path) and external test
// packages (path + "_test") are swept too.
var DetPackages = []string{
	"repro/internal/exec",
	"repro/internal/gibbs",
	"repro/internal/prng",
	"repro/internal/seeds",
	"repro/internal/vg",
	"repro/internal/stats",
}

var Analyzer = &analysis.Analyzer{
	Name:      "detsource",
	Doc:       "forbid wall-clock and entropy sources in the deterministic packages",
	Directive: "nondet",
	Run:       run,
}

// bannedFuncs maps package path -> banned package-level functions.
// For "crypto/rand" the empty name set means every reference.
var bannedTime = map[string]bool{"Now": true, "Since": true, "Until": true}

// randAllowed lists math/rand(/v2) package-level names that do not
// touch the global source: constructors for explicitly seeded
// generators.
var randAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func isDetPackage(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	for _, p := range DetPackages {
		if path == p {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	// Directive hygiene runs everywhere, not just det packages.
	for _, f := range pass.Files {
		idx := directive.ForFile(pass.Fset, f)
		for _, bad := range idx.Malformed {
			pass.Reportf(bad.Pos, "%s", bad.Msg)
		}
	}

	if !isDetPackage(pass.Pkg.Path()) {
		return nil
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if fn, ok := obj.(*types.Func); ok && fn.Type().(*types.Signature).Recv() == nil && bannedTime[fn.Name()] {
					pass.Reportf(id.Pos(), "time.%s in deterministic package %s: wall-clock values must not reach query evaluation (suppress timing-only code with //mcdbr:nondet ok(reason))", fn.Name(), pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				if fn, ok := obj.(*types.Func); ok && fn.Type().(*types.Signature).Recv() == nil && !randAllowed[fn.Name()] {
					pass.Reportf(id.Pos(), "global %s.%s in deterministic package %s: draws from the process-global source are not a function of (seed, position); use prng substreams or an explicitly seeded rand.New(rand.NewSource(k))", obj.Pkg().Path(), fn.Name(), pass.Pkg.Path())
				}
			case "crypto/rand":
				pass.Reportf(id.Pos(), "crypto/rand.%s in deterministic package %s: OS entropy is never reproducible", obj.Name(), pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
