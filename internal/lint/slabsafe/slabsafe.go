// Package slabsafe enforces the bundle.Slab aliasing rules of
// DESIGN.md §6 outside the arena implementation itself.
//
// Slab-carved slices (Slab.Row, Slab.RandRefs) are views into a shared
// arena chunk. Two operations break the model:
//
//   - append: carved slices are capacity-limited, so an append cannot
//     clobber a neighbour — instead it silently reallocates on the
//     heap, escaping the arena, double-counting the memory budget, and
//     defeating BeginReplenish recycling. Operators must carve the
//     final width up front (Slab.Row(n)) and index into it.
//
//   - storing a carved value in something that outlives the arena: the
//     recyclable slab is zeroed wholesale by Workspace.BeginReplenish
//     and Slab.Reset, so a carved slice stashed in a package-level
//     variable dangles — it will be observed as NULLs (or worse,
//     recycled rows) on the next replenishing run. Retention across
//     batches goes through ws.Retain; retention across runs through
//     the pinned slab and the prefix cache.
//
// The analysis is an intra-function taint walk: values returned by
// *bundle.Slab carving methods (and locals assigned from them, or
// reslices of those) are tainted; `append(tainted, ...)` and
// assignments of tainted values to package-level variables are
// reported. internal/bundle itself is exempt — the arena may grow its
// own chunks. Suppress deliberate escapes with
// `//mcdbr:slabsafe ok(reason)`.
package slabsafe

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// BundlePath is the arena package: taint source, and the one package
// exempt from the rules.
const BundlePath = "repro/internal/bundle"

// carvers are the *bundle.Slab methods returning arena-backed slices.
var carvers = map[string]bool{"Row": true, "RandRefs": true}

var Analyzer = &analysis.Analyzer{
	Name:      "slabsafe",
	Doc:       "flag append on slab-carved slices and slab values stored past BeginReplenish/Reset",
	Directive: "slabsafe",
	Run:       run,
}

func run(pass *analysis.Pass) error {
	if p := pass.Pkg.Path(); p == BundlePath || p == BundlePath+"_test" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn.Body)
		}
	}
	return nil
}

// isCarveCall reports whether call invokes a carving method on
// *bundle.Slab.
func isCarveCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || !carvers[fn.Name()] {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	named := derefNamed(recv.Type())
	return named != nil && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == BundlePath && named.Obj().Name() == "Slab"
}

func derefNamed(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// checkFunc runs the taint walk over one function body.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	tainted := make(map[types.Object]bool)

	var isTainted func(e ast.Expr) bool
	isTainted = func(e ast.Expr) bool {
		switch x := e.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = pass.TypesInfo.Defs[x]
			}
			return obj != nil && tainted[obj]
		case *ast.CallExpr:
			return isCarveCall(pass, x)
		case *ast.SliceExpr:
			return isTainted(x.X)
		case *ast.ParenExpr:
			return isTainted(x.X)
		}
		return false
	}

	// Propagate taint through direct assignments to a fixed point (the
	// walk is syntactic, so a couple of passes cover x := carve();
	// y := x; z := y[1:] chains regardless of statement order).
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !isTainted(as.Rhs[i]) {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj != nil && !tainted[obj] {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(x.Args) > 0 && isTainted(x.Args[0]) {
					pass.Reportf(x.Pos(), "append to a slab-carved slice: the value escapes the bundle.Slab arena and dodges the memory gauge; carve the final width up front (DESIGN.md §6)")
				}
			}
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, lhs := range x.Lhs {
				if !isTainted(x.Rhs[i]) {
					continue
				}
				if obj := rootObj(pass, lhs); obj != nil && isPackageLevel(pass, obj) {
					pass.Reportf(x.Pos(), "slab-carved value stored in package-level %q outlives Workspace.BeginReplenish/Slab.Reset and will dangle into recycled chunks; retain via ws.Retain or copy (DESIGN.md §6)", obj.Name())
				}
			}
		}
		return true
	})
}

// rootObj returns the object of the base identifier of an lvalue
// (v, v.f, v[i], v.f[i].g all root at v).
func rootObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isPackageLevel reports whether obj is declared at package scope.
func isPackageLevel(pass *analysis.Pass, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Parent() == pass.Pkg.Scope()
}
