package slabsafe_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/slabsafe"
)

func TestSlabSafe(t *testing.T) {
	linttest.Run(t, slabsafe.Analyzer, "testdata/base", "repro/internal/exec")
}

// TestBundleExempt runs the same fixture under the arena's own import
// path: the package that implements the slab may of course append to
// its chunks, so nothing is reported.
func TestBundleExempt(t *testing.T) {
	linttest.Run(t, slabsafe.Analyzer, "testdata/exempt", "repro/internal/bundle")
}
