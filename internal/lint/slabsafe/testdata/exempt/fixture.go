// Fixture checked under package path repro/internal/bundle: the arena
// implementation itself is exempt from the aliasing rules — it grows
// and recycles its own chunks.
package fixtures

import (
	"repro/internal/bundle"
	"repro/internal/types"
)

func growChunk(s *bundle.Slab) types.Row {
	row := s.Row(4)
	var v types.Value
	return append(row, v) // no finding: bundle is exempt
}
