// Fixture checked under package path repro/internal/exec — outside
// the arena package, so the aliasing rules apply. It imports the real
// repro/internal/bundle so the taint sources are the genuine carving
// methods.
package fixtures

import (
	"repro/internal/bundle"
	"repro/internal/types"
)

var leakedRow types.Row

var leakedRefs []bundle.RandRef

// append on a carved slice reallocates out of the arena.
func appendEscape(s *bundle.Slab) types.Row {
	row := s.Row(4)
	var v types.Value
	return append(row, v) // want `append to a slab-carved slice`
}

// Taint flows through plain assignment.
func appendViaAlias(s *bundle.Slab) []bundle.RandRef {
	refs := s.RandRefs(2)
	alias := refs
	return append(alias, bundle.RandRef{}) // want `append to a slab-carved slice`
}

// ... and through reslicing.
func appendViaReslice(s *bundle.Slab) types.Row {
	row := s.Row(8)
	head := row[:2]
	var v types.Value
	return append(head, v) // want `append to a slab-carved slice`
}

// A carved value in a package-level variable outlives BeginReplenish.
func storeGlobalRow(s *bundle.Slab) {
	leakedRow = s.Row(3) // want `slab-carved value stored in package-level "leakedRow"`
}

func storeGlobalRefs(s *bundle.Slab) {
	leakedRefs = s.RandRefs(1) // want `slab-carved value stored in package-level "leakedRefs"`
}

// Indexing into a carved row is the intended use.
func indexOK(s *bundle.Slab) types.Row {
	row := s.Row(4)
	var v types.Value
	row[0] = v
	return row
}

// Appending to an ordinary heap slice is unaffected.
func heapAppendOK() types.Row {
	row := make(types.Row, 0, 4)
	var v types.Value
	return append(row, v)
}

// The audited escape hatch.
func suppressedOK(s *bundle.Slab) types.Row {
	row := s.Row(1)
	var v types.Value
	return append(row, v) //mcdbr:slabsafe ok(fixture demonstrates the suppression syntax)
}
