// Package maporder flags `range` over a map whose iteration order can
// leak into ordered output — the classic merge-order bug.
//
// Go randomizes map iteration order, so a map-range body that appends
// to a slice, stores into a slice by index, or sends on a channel
// produces a different ordering every run. In this codebase that is
// exactly how a nondeterministic worker poisons a replicate merge: the
// bit-identity contract (DESIGN.md §§2, 8) requires every ordered
// result to be derived from sorted keys.
//
// A map-range MAY collect into a slice when the slice is sorted later
// in the same function (the canonical collect-keys-then-sort idiom);
// the analyzer recognizes a call to sort.* or slices.Sort* mentioning
// the slice after the loop and stays quiet. Channel sends from inside
// a map-range are always flagged. Suppress deliberate order-free uses
// with `//mcdbr:maporder ok(reason)`.
package maporder

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:      "maporder",
	Doc:       "flag map iteration whose order can leak into ordered output",
	Directive: "maporder",
	Run:       run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn.Body)
		}
	}
	return nil
}

// checkFunc examines every map-range in one function body.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	sorts := sortCalls(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !isMapType(pass, rng.X) {
			return true
		}
		checkMapRange(pass, rng, sorts)
		return true
	})
}

// sortCall records one sort.*/slices.Sort* call and the objects of the
// identifiers appearing anywhere in its arguments (sort.Slice(v, ...),
// sort.Sort(byKey(v)), slices.SortFunc(v, ...) all mention v).
type sortCall struct {
	pos  int // token.Pos as int for ordering
	args map[types.Object]bool
}

func sortCalls(pass *analysis.Pass, body *ast.BlockStmt) []sortCall {
	var out []sortCall
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		switch pkgName.Imported().Path() {
		case "sort", "slices":
			// Any exported call into these packages counts as
			// establishing an order (Sort, Stable, Slice, Strings,
			// SortFunc, ...).
		default:
			return true
		}
		sc := sortCall{pos: int(call.Pos()), args: make(map[types.Object]bool)}
		for _, a := range call.Args {
			ast.Inspect(a, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Uses[id]; obj != nil {
						sc.args[obj] = true
					}
				}
				return true
			})
		}
		out = append(out, sc)
		return true
	})
	return out
}

func isMapType(pass *analysis.Pass, x ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange flags order-leaking statements in one map-range body.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, sorts []sortCall) {
	sortedAfter := func(obj types.Object) bool {
		for _, sc := range sorts {
			if sc.pos > int(rng.End()) && sc.args[obj] {
				return true
			}
		}
		return false
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(s.Arrow, "send on a channel from inside a map range: receivers observe random map order (sort the keys first)")
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				if i >= len(s.Rhs) && len(s.Rhs) != 1 {
					break
				}
				// v = append(v, ...) with v declared outside the loop.
				if call, ok := rhsFor(s, i).(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
					if obj := outerSliceObj(pass, rng, lhs); obj != nil && !sortedAfter(obj) {
						pass.Reportf(s.Pos(), "append to %q inside a map range without a later sort: element order depends on random map iteration (collect then sort, or iterate sorted keys)", obj.Name())
					}
					continue
				}
				// v[i] = ... with v a slice declared outside the loop.
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					if tv, ok := pass.TypesInfo.Types[ix.X]; ok {
						if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice {
							if obj := outerSliceObj(pass, rng, ix.X); obj != nil && !sortedAfter(obj) {
								pass.Reportf(s.Pos(), "indexed store into slice %q inside a map range without a later sort: slot contents depend on random map iteration", obj.Name())
							}
						}
					}
				}
			}
		}
		return true
	})
}

// rhsFor returns the RHS expression paired with LHS index i (handling
// the 1:1 and n:1 assignment forms).
func rhsFor(s *ast.AssignStmt, i int) ast.Expr {
	if len(s.Rhs) == 1 {
		return s.Rhs[0]
	}
	if i < len(s.Rhs) {
		return s.Rhs[i]
	}
	return nil
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// outerSliceObj resolves expr to a variable declared OUTSIDE the range
// statement (loop-local accumulators cannot leak order out of the
// loop... unless they escape, which the assignment checks catch at the
// point of escape).
func outerSliceObj(pass *analysis.Pass, rng *ast.RangeStmt, expr ast.Expr) types.Object {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return nil
	}
	if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
		return nil // declared inside the loop
	}
	return obj
}
