package fixtures

import (
	"slices"
	"sort"
)

// The classic merge-order leak: collected in random map order, never
// sorted.
func leakOrder(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside a map range without a later sort`
	}
	return keys
}

// The canonical idiom: collect then sort.
func collectThenSortOK(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// slices.Sort counts as establishing an order too.
func collectThenSlicesSortOK(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// sort.Slice mentioning the collected slice in a closure arg counts.
func collectThenSortSliceOK(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Receivers observe random order; always flagged.
func sendLeak(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `send on a channel from inside a map range`
	}
}

// Indexed stores place values at order-dependent slots.
func indexedStoreLeak(m map[string]int, out []string) {
	i := 0
	for k := range m {
		out[i] = k // want `indexed store into slice "out" inside a map range`
		i++
	}
}

// Writing into another map is order-free.
func mapWriteOK(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

// Commutative accumulation is order-free.
func sumOK(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

// A loop-local slice cannot leak order past the iteration.
func loopLocalOK(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var widths []int
		widths = append(widths, vs...)
		total += len(widths)
	}
	return total
}

// The audited escape hatch.
func suppressedOK(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //mcdbr:maporder ok(consumer treats this as an unordered set)
	}
	return keys
}
