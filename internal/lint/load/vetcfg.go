package load

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
)

// VetConfig mirrors the JSON configuration file that `go vet` hands a
// -vettool for each package (x/tools unitchecker's Config). Fields we
// do not act on are retained so the file round-trips cleanly.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// ReadVetConfig parses a vet .cfg file.
func ReadVetConfig(path string) (*VetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("%s: parsing vet config: %v", path, err)
	}
	return cfg, nil
}

// FinishVetx writes the facts output file the go command expects from
// a vettool. The mcdbr analyzers exchange no facts, so the file is
// empty — it exists purely to satisfy the protocol.
func (cfg *VetConfig) FinishVetx() error {
	if cfg.VetxOutput == "" {
		return nil
	}
	return os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
}

// LoadVetPackage parses and type-checks the package described by a vet
// config, resolving imports through the export files in
// cfg.PackageFile (the compiler's view of the dependency graph).
func LoadVetPackage(cfg *VetConfig) (*Package, error) {
	fset := token.NewFileSet()
	var asts []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if r, ok := cfg.ImportMap[path]; ok {
			path = r
		}
		file, ok := cfg.PackageFile[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	return CheckFiles(fset, cfg.ImportPath, asts, imp)
}
