// Package load is the multichecker driver behind cmd/mcdbr-lint: it
// loads type-checked packages for the analyzers without depending on
// golang.org/x/tools/go/packages.
//
// Strategy: `go list -e -test -deps -export -json` enumerates every
// package in the build (including the `p [p.test]` test variants whose
// compiled files include the _test.go sources benchallocs needs) and
// hands us a compiled export-data file per dependency. Each target
// package is then parsed with go/parser and type-checked with go/types
// using the standard gc importer (go/importer.ForCompiler) pointed at
// those export files — the same shape as x/tools' gcexportdata driver,
// built from the standard library alone.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPackage is the subset of `go list -json` output the driver uses.
type listPackage struct {
	ImportPath      string
	Dir             string
	Export          string
	Standard        bool
	DepOnly         bool
	ForTest         string
	GoFiles         []string
	CompiledGoFiles []string
	Imports         []string
	ImportMap       map[string]string
	Module          *struct{ Path, Dir string }
	Error           *struct{ Err string }
}

// goList runs `go list` in dir with the given arguments and decodes
// the JSON package stream.
func goList(dir string, args ...string) ([]*listPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Dir loads and type-checks the packages matched by patterns,
// interpreted relative to dir (the module root). Test variants are
// loaded in place of their plain package when both match, so in-package
// _test.go files are analyzed exactly once.
func Dir(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"-e", "-test", "-deps", "-export",
		"-json=ImportPath,Dir,Export,Standard,DepOnly,ForTest,GoFiles,CompiledGoFiles,Imports,ImportMap,Module,Error",
	}, patterns...)
	listed, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}

	index := make(map[string]*listPackage, len(listed))
	for _, p := range listed {
		index[p.ImportPath] = p
	}

	// Pick targets: non-std packages named by the patterns. Skip the
	// generated `p.test` main packages, and skip a plain package when
	// its `p [p.test]` variant (a strict file superset) is present.
	hasTestVariant := make(map[string]bool)
	for _, p := range listed {
		if p.ForTest != "" && p.ImportPath == p.ForTest+" ["+p.ForTest+".test]" {
			hasTestVariant[p.ForTest] = true
		}
	}
	var targets []*listPackage
	for _, p := range listed {
		switch {
		case p.Standard || p.DepOnly:
			continue
		case strings.HasSuffix(p.ImportPath, ".test"):
			continue // generated test main
		case hasTestVariant[p.ImportPath]:
			continue // superseded by the [p.test] variant
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		targets = append(targets, p)
	}

	fset := token.NewFileSet()
	var out []*Package
	for _, t := range targets {
		pkg, err := typecheck(fset, t, index)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// exportLookup returns a gc-importer lookup function resolving import
// paths through importMap to the export-data files recorded in index.
func exportLookup(importMap map[string]string, index map[string]*listPackage) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if r, ok := importMap[path]; ok {
			path = r
		}
		p := index[path]
		if p == nil || p.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(p.Export)
	}
}

// typecheck parses and type-checks one listed package against the
// export data of its dependencies.
func typecheck(fset *token.FileSet, t *listPackage, index map[string]*listPackage) (*Package, error) {
	files := t.CompiledGoFiles
	if len(files) == 0 {
		files = t.GoFiles
	}
	var asts []*ast.File
	for _, name := range files {
		if !filepath.IsAbs(name) {
			name = filepath.Join(t.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", t.ImportPath, err)
		}
		asts = append(asts, f)
	}
	// The bare import path ("repro/internal/exec") also names the test
	// variant's types.Package, matching what analyzers key on.
	path := t.ImportPath
	if t.ForTest != "" && strings.Contains(path, " [") {
		path = path[:strings.Index(path, " [")]
	}
	imp := importer.ForCompiler(fset, "gc", exportLookup(t.ImportMap, index))
	return CheckFiles(fset, path, asts, imp)
}

// CheckFiles type-checks a parsed package with the given importer and
// wraps it for analysis. Shared by the go-list driver, the vet-config
// driver, and the linttest fixture loader.
func CheckFiles(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := &types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return &Package{ImportPath: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// A Diag is one post-suppression finding.
type Diag struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Position, d.Message, d.Analyzer)
}

// Run applies every analyzer to every package, drops suppressed
// diagnostics, deduplicates (test variants re-check non-test files),
// and returns the findings in file/line order.
func Run(pkgs []*Package, analyzers []*analysis.Analyzer) ([]Diag, error) {
	seen := make(map[string]bool)
	var out []Diag
	for _, pkg := range pkgs {
		// One directive index per file, shared across analyzers.
		indexes := make(map[*token.File]*directive.Index, len(pkg.Files))
		for _, f := range pkg.Files {
			indexes[pkg.Fset.File(f.Pos())] = directive.ForFile(pkg.Fset, f)
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if a.Directive != "" {
					if idx := indexes[pkg.Fset.File(d.Pos)]; idx != nil && idx.Suppressed(a.Directive, pos.Line) {
						return
					}
				}
				key := fmt.Sprintf("%s\x00%s\x00%s", a.Name, pos, d.Message)
				if seen[key] {
					return
				}
				seen[key] = true
				out = append(out, Diag{Analyzer: a.Name, Position: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// ExportIndex resolves import paths (and their transitive
// dependencies) to compiled export-data files via
// `go list -deps -export`, run from dir. Used by linttest to give
// fixture packages real std and repro imports.
func ExportIndex(dir string, paths ...string) (map[string]string, error) {
	if len(paths) == 0 {
		return map[string]string{}, nil
	}
	args := append([]string{"-deps", "-export", "-json=ImportPath,Export"}, paths...)
	listed, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	idx := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			idx[p.ImportPath] = p.Export
		}
	}
	return idx, nil
}

// ExportImporter wraps a path->export-file index as a types.Importer.
func ExportImporter(fset *token.FileSet, idx map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := idx[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// ModuleRoot locates the enclosing module's root directory, so tests
// and the CLI can run `go list` from anywhere inside the repo.
func ModuleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a module (go env GOMOD is empty)")
	}
	return filepath.Dir(gomod), nil
}
