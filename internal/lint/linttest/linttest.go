// Package linttest runs one analyzer over a fixture directory and
// checks its diagnostics against `// want "regexp"` expectations — the
// same contract as x/tools' analysistest, rebuilt on the standard
// library so fixtures work without a network or a vendored x/tools.
//
// Fixtures live under testdata/<case>/ as plain .go files (the
// testdata name hides them from go build and the tree-wide lint
// sweep). Because several analyzers key on the *import path* of the
// package they sweep (detsource's deterministic-package list,
// slabsafe's bundle exemption), Run type-checks the fixture under a
// caller-chosen package path rather than its on-disk location.
//
// Expectations: a comment `// want "rx"` (one or more quoted Go
// strings) on a source line asserts that each listed regexp matches a
// distinct diagnostic reported on that line. Diagnostics without a
// matching want, and wants without a matching diagnostic, fail the
// test. Suppressed diagnostics (//mcdbr:... ok(reason)) are dropped
// before matching, so suppression fixtures simply carry no want.
package linttest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Run applies analyzer a to the fixture package in dir, type-checked
// as package path pkgPath, and asserts the // want expectations.
func Run(t *testing.T, a *analysis.Analyzer, dir, pkgPath string) {
	t.Helper()
	pkg := loadFixture(t, dir, pkgPath)
	diags, err := load.Run([]*load.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	checkWants(t, pkg, diags)
}

// loadFixture parses and type-checks every .go file in dir as one
// package named pkgPath. Imports resolve against the enclosing
// module's build cache via `go list -deps -export`, so fixtures may
// import both std packages and repro/internal/... packages.
func loadFixture(t *testing.T, dir, pkgPath string) *load.Package {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				importSet[p] = true
			}
		}
	}
	if len(files) == 0 {
		t.Fatalf("no .go files in fixture dir %s", dir)
	}
	pkg, err := load.CheckFiles(fset, pkgPath, files, fixtureImporter(t, fset, importSet))
	if err != nil {
		t.Fatalf("typechecking fixture %s: %v", dir, err)
	}
	return pkg
}

// fixtureImporter builds a gc importer over the export data of the
// fixture's imports (and their dependencies), produced by the
// enclosing module's build cache.
func fixtureImporter(t *testing.T, fset *token.FileSet, importSet map[string]bool) types.Importer {
	t.Helper()
	var paths []string
	for p := range importSet {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	root, err := load.ModuleRoot(".")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	idx, err := load.ExportIndex(root, paths...)
	if err != nil {
		t.Fatalf("loading export data for fixture imports: %v", err)
	}
	return load.ExportImporter(fset, idx)
}

// checkWants matches diagnostics against // want comments.
func checkWants(t *testing.T, pkg *load.Package, diags []load.Diag) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "// want ")
				if i < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, lit := range wantLitRE.FindAllString(text[i+len("// want "):], -1) {
					s, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s: bad want literal %s: %v", pos, lit, err)
					}
					rx, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, s, err)
					}
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], rx)
				}
			}
		}
	}
	for _, d := range diags {
		k := key{d.Position.Filename, d.Position.Line}
		matched := false
		for i, rx := range wants[k] {
			if rx.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, rxs := range wants {
		for _, rx := range rxs {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, rx)
		}
	}
}

var wantLitRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
