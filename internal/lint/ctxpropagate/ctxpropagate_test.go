package ctxpropagate_test

import (
	"testing"

	"repro/internal/lint/ctxpropagate"
	"repro/internal/lint/linttest"
)

func TestCtxPropagate(t *testing.T) {
	linttest.Run(t, ctxpropagate.Analyzer, "testdata/base", "repro/internal/server")
}
