// Package ctxpropagate enforces the cancellation contract from PR 7:
// a context handed to a function must actually govern the work that
// function starts, and the annotated Monte Carlo hot loops must poll
// it, so client disconnects abort a run in ~100ms instead of after the
// next million replicates.
//
// Two rules:
//
//  1. Propagation. Inside a function that receives a context.Context,
//     passing context.Background() or context.TODO() to a callee that
//     accepts a context detaches the callee from cancellation — the
//     received ctx (or a context derived from it) must flow through.
//     Deliberate detachment (e.g. a shutdown grace period that must
//     outlive the cancelled serve context) is suppressed with
//     `//mcdbr:ctxpropagate ok(reason)`.
//
//  2. Hot-loop polling. A loop annotated `//mcdbr:hotpath` (on the
//     loop's line or the line above) is a replicate/window sweep and
//     must poll cancellation: a call to (*exec.Workspace).Cancelled
//     (or any method named Cancelled), to ctx.Err, or a use of
//     ctx.Done() somewhere inside the loop body — including inside a
//     worker closure the loop spawns. A marked loop that cannot be
//     cancelled is a bug: it is exactly the loop that makes abort
//     latency unbounded.
package ctxpropagate

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
)

var Analyzer = &analysis.Analyzer{
	Name:      "ctxpropagate",
	Doc:       "contexts must propagate to callees, and //mcdbr:hotpath loops must poll cancellation",
	Directive: "ctxpropagate",
	Run:       run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		idx := directive.ForFile(pass.Fset, f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if hasCtxParam(pass, fn) {
				checkPropagation(pass, fn)
			}
			checkHotLoops(pass, idx, fn)
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func hasCtxParam(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// checkPropagation flags context.Background()/TODO() passed as a call
// argument anywhere in a function that already has a ctx in hand.
func checkPropagation(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			inner, ok := arg.(*ast.CallExpr)
			if !ok {
				continue
			}
			sel, ok := inner.Fun.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || f.Pkg() == nil || f.Pkg().Path() != "context" {
				continue
			}
			if name := f.Name(); name == "Background" || name == "TODO" {
				pass.Reportf(inner.Pos(), "context.%s() passed to a callee inside a function that receives a context.Context: the callee detaches from cancellation; pass the received ctx (or derive from it)", name)
			}
		}
		return true
	})
}

// checkHotLoops requires every //mcdbr:hotpath-annotated loop in fn
// to contain a cancellation poll.
func checkHotLoops(pass *analysis.Pass, idx *directive.Index, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch s := n.(type) {
		case *ast.ForStmt:
			body = s.Body
		case *ast.RangeStmt:
			body = s.Body
		default:
			return true
		}
		line := pass.Fset.Position(n.Pos()).Line
		if idx.Marked("hotpath", line) && !pollsCancellation(pass, body) {
			pass.Reportf(n.Pos(), "//mcdbr:hotpath loop in %s never polls cancellation: call ws.Cancelled(), check ctx.Err(), or select on ctx.Done() each iteration (PR 7 abort-latency contract)", fn.Name.Name)
		}
		return true
	})
}

// pollsCancellation reports whether the block contains a recognized
// cancellation poll.
func pollsCancellation(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Cancelled":
			// Any method named Cancelled — in practice
			// (*exec.Workspace).Cancelled and wrappers around it.
			found = true
		case "Err", "Done":
			if tv, ok := pass.TypesInfo.Types[sel.X]; ok && isContextType(tv.Type) {
				found = true
			}
		}
		return !found
	})
	return found
}
