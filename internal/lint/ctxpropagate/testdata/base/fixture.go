package fixtures

import "context"

type workspace interface{ Cancelled() error }

// A received ctx must flow to ctx-accepting callees.
func detach(ctx context.Context, f func(context.Context) error) error {
	return f(context.Background()) // want `context\.Background\(\) passed to a callee`
}

func detachTODO(ctx context.Context, f func(context.Context) error) error {
	return f(context.TODO()) // want `context\.TODO\(\) passed to a callee`
}

func propagateOK(ctx context.Context, f func(context.Context) error) error {
	return f(ctx)
}

func deriveOK(ctx context.Context, f func(context.Context) error) error {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return f(sub)
}

// No context in hand: starting from Background is the only option.
func rootCallerOK(f func(context.Context) error) error {
	return f(context.Background())
}

// The audited escape hatch for deliberate detachment.
func suppressedDetachOK(ctx context.Context, f func(context.Context) error) error {
	//mcdbr:ctxpropagate ok(cleanup must survive the cancelled request ctx)
	return f(context.Background())
}

// An annotated hot loop must poll cancellation.
func hotLoopMissingPoll(ctx context.Context, n int) int {
	total := 0
	//mcdbr:hotpath
	for i := 0; i < n; i++ { // want `never polls cancellation`
		total += i
	}
	return total
}

func hotLoopCtxErrOK(ctx context.Context, n int) int {
	total := 0
	//mcdbr:hotpath
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		total += i
	}
	return total
}

func hotLoopCancelledOK(ws workspace, n int) (int, error) {
	total := 0
	//mcdbr:hotpath
	for i := 0; i < n; i++ {
		if err := ws.Cancelled(); err != nil {
			return 0, err
		}
		total += i
	}
	return total, nil
}

// A poll inside a worker closure spawned by the loop counts (the
// replicate-sharded fan-out shape).
func hotLoopWorkerPollOK(ws workspace, n int) {
	done := make(chan struct{}, n)
	//mcdbr:hotpath
	for i := 0; i < n; i++ {
		go func() {
			if err := ws.Cancelled(); err == nil {
				_ = err
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

func hotLoopDoneSelectOK(ctx context.Context, ch chan int) int {
	total := 0
	//mcdbr:hotpath
	for {
		select {
		case <-ctx.Done():
			return total
		case v, ok := <-ch:
			if !ok {
				return total
			}
			total += v
		}
	}
}

// Unannotated loops are not the analyzer's business.
func plainLoopOK(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}
