// Package lint assembles the mcdbr analyzer suite: the project's
// determinism, slab-safety, and cancellation invariants (DESIGN.md
// §11) as compiler-checked analyzers, run over the tree by
// cmd/mcdbr-lint in CI.
package lint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/benchallocs"
	"repro/internal/lint/ctxpropagate"
	"repro/internal/lint/detsource"
	"repro/internal/lint/kernelfallback"
	"repro/internal/lint/maporder"
	"repro/internal/lint/slabsafe"
)

// All returns the full analyzer suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detsource.Analyzer,
		maporder.Analyzer,
		slabsafe.Analyzer,
		ctxpropagate.Analyzer,
		benchallocs.Analyzer,
		kernelfallback.Analyzer,
	}
}
