package directive_test

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/lint/directive"
)

func index(t *testing.T, src string) (*token.FileSet, *directive.Index) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, directive.ForFile(fset, f)
}

func TestSuppressionPlacement(t *testing.T) {
	_, idx := index(t, `package p

func f() int {
	x := 1 //mcdbr:nondet ok(same line)
	//mcdbr:nondet ok(line above)
	y := 2
	z := 3
	return x + y + z
}
`)
	if len(idx.Malformed) != 0 {
		t.Fatalf("unexpected malformed directives: %v", idx.Malformed)
	}
	if !idx.Suppressed("nondet", 4) {
		t.Error("same-line suppression not honoured")
	}
	if !idx.Suppressed("nondet", 6) {
		t.Error("line-above suppression not honoured")
	}
	if idx.Suppressed("nondet", 7) {
		t.Error("suppression leaked to an unrelated line")
	}
	if idx.Suppressed("maporder", 4) {
		t.Error("suppression leaked to another analyzer's directive")
	}
}

func TestMarkerPlacement(t *testing.T) {
	_, idx := index(t, `package p

func f(n int) {
	//mcdbr:hotpath
	for i := 0; i < n; i++ {
		_ = i
	}
}
`)
	if len(idx.Malformed) != 0 {
		t.Fatalf("unexpected malformed directives: %v", idx.Malformed)
	}
	if !idx.Marked("hotpath", 5) {
		t.Error("marker on the line above the loop not honoured")
	}
	if idx.Suppressed("hotpath", 5) {
		t.Error("a marker must not double as a suppression")
	}
}

func TestMalformed(t *testing.T) {
	cases := []struct{ src, want string }{
		{"//mcdbr:nondet", "needs an ok(reason) clause"},
		{"//mcdbr:hotpath ok()", "empty reason"}, // marker form with empty ok() is still malformed
		{"//mcdbr:slabsafe ok()", "empty reason"},
		{"//mcdbr:wat ok(x)", "unknown directive"},
		{"//mcdbr:", "empty //mcdbr: directive name"},
		{"//mcdbr:nondet yes", "malformed //mcdbr:nondet"},
	}
	for _, tc := range cases {
		_, idx := index(t, "package p\n\n"+tc.src+"\nfunc f() {}\n")
		if len(idx.Malformed) != 1 {
			t.Errorf("%s: got %d malformed, want 1", tc.src, len(idx.Malformed))
			continue
		}
		if !strings.Contains(idx.Malformed[0].Msg, tc.want) {
			t.Errorf("%s: message %q does not mention %q", tc.src, idx.Malformed[0].Msg, tc.want)
		}
	}
}

func TestNonDirectiveCommentsIgnored(t *testing.T) {
	_, idx := index(t, `package p

// mcdbr:nondet ok(space after slashes means plain prose, not a directive)
// want "also plain prose"
func f() {}
`)
	if len(idx.Malformed) != 0 {
		t.Fatalf("prose comments misparsed as directives: %v", idx.Malformed)
	}
}
