// Package directive parses the //mcdbr: comment directives that the
// lint suite understands, and answers suppression queries.
//
// Two forms exist:
//
//	//mcdbr:<name> ok(<reason>)   suppression — silences the analyzer
//	                              owning <name> on this line and the
//	                              next; the reason is mandatory so
//	                              every suppression stays auditable.
//	//mcdbr:hotpath               marker — declares that the loop
//	                              starting on this line (or the next)
//	                              is a replicate/window hot loop that
//	                              must poll cancellation (ctxpropagate
//	                              rule 2).
//
// Anything else spelled //mcdbr:... is malformed and is itself a lint
// error (reported by detsource, which owns the directive namespace):
// a bare `//mcdbr:nondet` with no ok(reason) must not silently count
// as either a suppression or a no-op.
package directive

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Prefix is the comment prefix shared by all directives. Like
// //go:build, there is no space after "//".
const Prefix = "//mcdbr:"

// Suppression directive names, keyed by the analyzer that honours
// them. "nondet" belongs to detsource; the rest match their analyzer.
var suppressions = map[string]bool{
	"nondet":         true,
	"maporder":       true,
	"slabsafe":       true,
	"ctxpropagate":   true,
	"benchallocs":    true,
	"kernelfallback": true,
}

// Marker directive names: valid without an ok(reason) clause.
var markers = map[string]bool{
	"hotpath": true,
}

// A Directive is one parsed //mcdbr: comment.
type Directive struct {
	Name   string // "nondet", "hotpath", ...
	Reason string // ok(reason) payload; empty for the marker form
	Marker bool   // true when written without ok(...)
	Pos    token.Pos
}

// A Malformed records a //mcdbr: comment that parses as neither a
// suppression nor a marker.
type Malformed struct {
	Pos token.Pos
	Msg string
}

var directiveRE = regexp.MustCompile(`^//mcdbr:([A-Za-z0-9_-]*)(.*)$`)
var okRE = regexp.MustCompile(`^ ok\((.*)\)$`)

// parse classifies a single comment. ok reports whether the comment
// is a //mcdbr: directive at all; bad is non-nil when it is one but
// does not follow the grammar.
func parse(c *ast.Comment) (d Directive, ok bool, bad *Malformed) {
	m := directiveRE.FindStringSubmatch(c.Text)
	if m == nil {
		return Directive{}, false, nil
	}
	name, rest := m[1], strings.TrimRight(m[2], " \t")
	fail := func(format string, args ...interface{}) (Directive, bool, *Malformed) {
		return Directive{}, true, &Malformed{Pos: c.Pos(), Msg: fmt.Sprintf(format, args...)}
	}
	if name == "" {
		return fail("empty //mcdbr: directive name")
	}
	if !suppressions[name] && !markers[name] {
		return fail("unknown directive //mcdbr:%s", name)
	}
	if rest == "" {
		if markers[name] {
			return Directive{Name: name, Marker: true, Pos: c.Pos()}, true, nil
		}
		return fail("//mcdbr:%s needs an ok(reason) clause; bare suppressions are not auditable", name)
	}
	om := okRE.FindStringSubmatch(rest)
	if om == nil {
		return fail("malformed //mcdbr:%s directive: want `//mcdbr:%s ok(reason)`, got %q", name, name, c.Text)
	}
	reason := strings.TrimSpace(om[1])
	if reason == "" {
		return fail("//mcdbr:%s ok() has an empty reason", name)
	}
	return Directive{Name: name, Reason: reason, Pos: c.Pos()}, true, nil
}

// An Index holds every directive of one file, keyed by line.
type Index struct {
	fset      *token.FileSet
	byLine    map[int][]Directive
	Malformed []Malformed
}

// ForFile scans a parsed file (parser.ParseComments required) and
// indexes its directives.
func ForFile(fset *token.FileSet, f *ast.File) *Index {
	idx := &Index{fset: fset, byLine: make(map[int][]Directive)}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, isDirective, bad := parse(c)
			if !isDirective {
				continue
			}
			if bad != nil {
				idx.Malformed = append(idx.Malformed, *bad)
				continue
			}
			line := fset.Position(c.Pos()).Line
			idx.byLine[line] = append(idx.byLine[line], d)
		}
	}
	return idx
}

// Suppressed reports whether a diagnostic owned by directive name at
// the given line is silenced: a suppression directive sits on the
// same line (trailing comment) or on the line immediately above.
func (idx *Index) Suppressed(name string, line int) bool {
	for _, l := range [2]int{line, line - 1} {
		for _, d := range idx.byLine[l] {
			if !d.Marker && d.Name == name {
				return true
			}
		}
	}
	return false
}

// Marked reports whether the named marker directive is attached to
// the statement beginning at line: the marker sits on the same line or
// on the line immediately above.
func (idx *Index) Marked(name string, line int) bool {
	for _, l := range [2]int{line, line - 1} {
		for _, d := range idx.byLine[l] {
			if d.Marker && d.Name == name {
				return true
			}
		}
	}
	return false
}
