package kernelfallback_test

import (
	"testing"

	"repro/internal/lint/kernelfallback"
	"repro/internal/lint/linttest"
)

func TestKernelFallback(t *testing.T) {
	linttest.Run(t, kernelfallback.Analyzer, "testdata/base", "repro")
}
