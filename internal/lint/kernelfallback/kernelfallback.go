// Package kernelfallback keeps hot-loop operators honest about
// vectorization: a function that owns a //mcdbr:hotpath replicate loop
// and compiles an expression interpreter (expr.Compile / MustCompile)
// must also attempt kernel lowering (expr.CompileKernel or
// (*expr.Compiled).Kernel) somewhere in that function.
//
// The vectorized kernel layer (DESIGN.md §13) is deliberately
// best-effort: CompileKernel refuses expressions it cannot lower and
// the caller falls back to the row interpreter, so correctness never
// depends on a kernel existing. The failure mode this analyzer guards
// against is the silent one — a future operator wires a new hot loop
// straight to the interpreter and never even asks for a kernel, and
// every query through it quietly loses the batched path. Interpreter-
// only sites that are deliberate (e.g. HAVING, which stays
// version-major by design) are suppressed with
// `//mcdbr:kernelfallback ok(reason)`.
package kernelfallback

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
)

var Analyzer = &analysis.Analyzer{
	Name:      "kernelfallback",
	Doc:       "//mcdbr:hotpath functions that compile expressions must attempt kernel lowering",
	Directive: "kernelfallback",
	Run:       run,
}

// exprPkg is the import path of the expression compiler whose API the
// analyzer keys on.
const exprPkg = "repro/internal/expr"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		idx := directive.ForFile(pass.Fset, f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !hasHotLoop(pass, idx, fn) {
				continue
			}
			compiles, lowers := scanCompiles(pass, fn)
			if lowers {
				continue
			}
			for _, call := range compiles {
				pass.Reportf(call.Pos(), "%s owns a //mcdbr:hotpath loop and compiles an interpreter here but never attempts kernel lowering: call expr.CompileKernel (falling back on error) so the hot loop keeps the vectorized path (DESIGN.md §13)", fn.Name.Name)
			}
		}
	}
	return nil
}

// hasHotLoop reports whether fn contains a loop carrying the
// //mcdbr:hotpath marker.
func hasHotLoop(pass *analysis.Pass, idx *directive.Index, fn *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if idx.Marked("hotpath", pass.Fset.Position(n.Pos()).Line) {
				found = true
			}
		}
		return !found
	})
	return found
}

// scanCompiles walks fn once, collecting interpreter-compile call
// sites (expr.Compile / expr.MustCompile) and noting whether any
// kernel-lowering attempt (expr.CompileKernel or a Kernel method from
// the expr package) appears.
func scanCompiles(pass *analysis.Pass, fn *ast.FuncDecl) (compiles []*ast.CallExpr, lowers bool) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || f.Pkg() == nil || f.Pkg().Path() != exprPkg {
			return true
		}
		switch f.Name() {
		case "Compile", "MustCompile":
			compiles = append(compiles, call)
		case "CompileKernel", "Kernel":
			lowers = true
		}
		return true
	})
	return compiles, lowers
}
