package fixtures

import (
	"repro/internal/expr"
	"repro/internal/types"
)

// A hotpath function that compiles an interpreter and never asks for a
// kernel loses the vectorized path silently.
func interpOnly(e expr.Expr, schema *types.Schema, rows []types.Row, n int) int {
	c := expr.MustCompile(e, schema) // want `never attempts kernel lowering`
	total := 0
	//mcdbr:hotpath
	for v := 0; v < n; v++ {
		for _, r := range rows {
			if c.EvalBool(r) {
				total++
			}
		}
	}
	return total
}

// Attempting CompileKernel — even when the interpreter stays as the
// fallback — satisfies the contract.
func kernelWithFallbackOK(e expr.Expr, schema *types.Schema, rows []types.Row, n int) int {
	c := expr.MustCompile(e, schema)
	kern, err := expr.CompileKernel(e, schema)
	total := 0
	//mcdbr:hotpath
	for v := 0; v < n; v++ {
		if kern != nil && err == nil {
			continue
		}
		for _, r := range rows {
			if c.EvalBool(r) {
				total++
			}
		}
	}
	return total
}

// Lowering via the (*expr.Compiled).Kernel method counts too.
func kernelMethodOK(e expr.Expr, schema *types.Schema, n int) int {
	c := expr.MustCompile(e, schema)
	if _, err := c.Kernel(schema); err != nil {
		return 0
	}
	total := 0
	//mcdbr:hotpath
	for v := 0; v < n; v++ {
		total += v
	}
	return total
}

// No hotpath loop: interpreter-only compilation is not the analyzer's
// business.
func coldCompileOK(e expr.Expr, schema *types.Schema, row types.Row) bool {
	c, err := expr.Compile(e, schema)
	if err != nil {
		return false
	}
	return c.EvalBool(row)
}

// The audited escape hatch for loops that stay version-major by design.
func suppressedInterpOK(e expr.Expr, schema *types.Schema, rows []types.Row, n int) int {
	//mcdbr:kernelfallback ok(HAVING stays version-major per DESIGN.md §13)
	c := expr.MustCompile(e, schema)
	total := 0
	//mcdbr:hotpath
	for v := 0; v < n; v++ {
		for _, r := range rows {
			if c.EvalBool(r) {
				total++
			}
		}
	}
	return total
}
