package fixtures

import "testing"

func BenchmarkMissing(b *testing.B) { // want `BenchmarkMissing never calls b\.ReportAllocs`
	for i := 0; i < b.N; i++ {
		_ = i
	}
}

func BenchmarkDirect(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = i
	}
}

// ReportAllocs inside a sub-benchmark closure counts.
func BenchmarkSubBench(b *testing.B) {
	b.Run("case", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = i
		}
	})
}

// The audited escape hatch for deliberate wall-clock-only benchmarks.
func BenchmarkSuppressed(b *testing.B) { //mcdbr:benchallocs ok(measures end-to-end wall clock only)
	for i := 0; i < b.N; i++ {
		_ = i
	}
}

// Not benchmarks: wrong shape or wrong name.
func BenchmarkishHelper(n int) int { return n }

func helper(b *testing.B) {}

func TestNotABenchmark(t *testing.T) {}
