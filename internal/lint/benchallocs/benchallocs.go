// Package benchallocs requires every Benchmark function to call
// b.ReportAllocs().
//
// The repo's benchmark history (BENCH_4.json onward) tracks allocs/op
// across PRs; a benchmark that forgets ReportAllocs silently drops out
// of that trajectory. CI used to grep `go test -bench` output with awk
// for lines missing "allocs/op" — output scraping that broke whenever
// a benchmark was skipped or renamed. This analyzer checks the source
// instead: a `func BenchmarkX(b *testing.B)` whose body never calls
// ReportAllocs on a *testing.B (directly or inside a b.Run closure) is
// an error. Suppress a benchmark that deliberately measures wall clock
// only with `//mcdbr:benchallocs ok(reason)`.
package benchallocs

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:      "benchallocs",
	Doc:       "every Benchmark function must call b.ReportAllocs()",
	Directive: "benchallocs",
	Run:       run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv != nil {
				continue
			}
			if !isBenchmark(pass, fn) {
				continue
			}
			if !callsReportAllocs(pass, fn.Body) {
				pass.Reportf(fn.Name.Pos(), "%s never calls b.ReportAllocs(): its allocs/op drop out of the benchmark trajectory CI tracks", fn.Name.Name)
			}
		}
	}
	return nil
}

// isBenchmark matches the `go test` benchmark shape: name starts with
// "Benchmark" (followed by nothing or a non-lowercase rune) and the
// sole parameter is *testing.B.
func isBenchmark(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	name := fn.Name.Name
	if !strings.HasPrefix(name, "Benchmark") {
		return false
	}
	if rest := name[len("Benchmark"):]; rest != "" {
		r := rune(rest[0])
		if 'a' <= r && r <= 'z' {
			return false
		}
	}
	params := fn.Type.Params
	if params == nil || len(params.List) != 1 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[params.List[0].Type]
	return ok && isTestingB(tv.Type)
}

func isTestingB(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "testing" && obj.Name() == "B"
}

// callsReportAllocs reports whether the body contains a
// (*testing.B).ReportAllocs call — on the outer b or on a sub-
// benchmark's b inside a b.Run closure.
func callsReportAllocs(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "ReportAllocs" {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[sel.X]; ok && isTestingB(tv.Type) {
			found = true
		}
		return !found
	})
	return found
}
