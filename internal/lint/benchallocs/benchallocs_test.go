package benchallocs_test

import (
	"testing"

	"repro/internal/lint/benchallocs"
	"repro/internal/lint/linttest"
)

func TestBenchAllocs(t *testing.T) {
	linttest.Run(t, benchallocs.Analyzer, "testdata/base", "repro")
}
