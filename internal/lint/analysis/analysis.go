// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface that the mcdbr-lint
// analyzers need.
//
// The build environment pins the module to the standard library only
// (no vendored third-party code), so instead of importing x/tools we
// reproduce the three types the analyzers program against: Analyzer,
// Pass, and Diagnostic. The shapes match upstream closely enough that
// porting an analyzer to the real framework is a mechanical import
// swap; the drivers (internal/lint/load for the multichecker,
// cmd/mcdbr-lint for the `go vet -vettool` unit-checker protocol) play
// the role of x/tools' singlechecker/unitchecker.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is a single static check. Analyzers are stateless: Run
// may be called concurrently for different packages.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI output.
	Name string

	// Doc is the one-paragraph help text (first line is the summary).
	Doc string

	// Directive is the //mcdbr:<name> suppression directive honoured
	// for this analyzer's diagnostics, e.g. "nondet" for detsource. A
	// diagnostic on a line carrying (or immediately following)
	// `//mcdbr:<Directive> ok(reason)` is dropped by the driver.
	// Empty means the analyzer's findings cannot be suppressed.
	Directive string

	// Run applies the check to a single type-checked package.
	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package and a
// sink for diagnostics, mirroring x/tools' analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers a finding. The driver applies directive
	// suppression and deduplication; analyzers just report.
	Report func(Diagnostic)
}

// A Diagnostic is a single finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
