package bundle

import (
	"sync/atomic"
	"unsafe"

	"repro/internal/types"
)

// MemGauge is a shared, atomically-updated byte counter for slab arena
// memory. Every slab of one query run (including the private slabs of
// replicate-shard workers) points at the same gauge, so the executor's
// per-run memory budget (exec.Workspace.MaxBytes) sees the query's total
// arena footprint. Chunks are charged when freshly allocated, never on
// free-list reuse, and are never un-charged: a slab's chunks live until
// the slab itself is garbage, so the gauge tracks the high-water arena
// footprint of the run.
type MemGauge struct{ bytes atomic.Int64 }

// Load returns the bytes charged so far.
func (g *MemGauge) Load() int64 { return g.bytes.Load() }

// Add charges n bytes; nil-safe so ungauged slabs cost nothing.
func (g *MemGauge) Add(n int64) {
	if g != nil {
		g.bytes.Add(n)
	}
}

// Chunk sizing for the three slab arenas: each arena starts with a small
// chunk and doubles per growth up to the max, so a ten-tuple serving
// query does not pay for a megabyte of arena while a million-tuple scan
// settles into large chunks after a few doublings. Values dominate (every
// tuple row lives here), so their max chunk is the largest.
const (
	slabFirstChunk    = 64
	slabMaxValChunk   = 8192
	slabMaxTupleChunk = 1024
	slabMaxRefChunk   = 1024
)

// Slab is an arena allocator for the exec hot path: instead of one
// allocation per tuple (a Tuple header, a Det row, a RandRef slice), plan
// operators carve tuples, rows, and reference slices out of large chunks,
// reducing the allocation count of a plan run from O(tuples) to O(chunks).
//
// A Slab is single-goroutine (each exec.Workspace owns its slabs, and a
// workspace is confined to one worker), so no locking is needed and -race
// stays clean. Reset recycles all chunks through free lists, zeroing them
// first — the zero Value is NULL and the zero Tuple is empty, so recycled
// memory is indistinguishable from fresh memory. Callers must therefore
// only Reset a slab when nothing allocated from it is reachable anymore
// (the workspace does this when a replenishing run discards the previous
// plan output).
//
// All returned slices are capacity-limited to their length, so appending
// to one can never clobber a neighbouring allocation.
type Slab struct {
	// vals, tuples, refs are cursors into the most recently grown chunk;
	// the full chunks themselves are recorded in used* the moment they are
	// grown, so Reset can zero and recycle them wholesale.
	vals   []types.Value
	tuples []Tuple
	refs   []RandRef

	usedVals   [][]types.Value
	usedTuples [][]Tuple
	usedRefs   [][]RandRef

	freeVals   [][]types.Value
	freeTuples [][]Tuple
	freeRefs   [][]RandRef

	// next*Chunk implement the doubling schedule.
	nextValChunk   int
	nextTupleChunk int
	nextRefChunk   int

	// gauge, when non-nil, is charged for every freshly allocated chunk
	// (see MemGauge); free-list reuse is free.
	gauge *MemGauge
	// capBytes totals the bytes of every chunk the slab owns (used and
	// free); AdoptGauge charges it when the slab moves to another run.
	capBytes int64
}

// NewSlab returns an empty slab; chunks are allocated lazily.
func NewSlab() *Slab { return &Slab{} }

// SetGauge attaches the byte gauge charged for fresh chunk allocations.
func (s *Slab) SetGauge(g *MemGauge) { s.gauge = g }

// CapBytes returns the total bytes of arena chunks the slab owns.
func (s *Slab) CapBytes() int64 { return s.capBytes }

// AdoptGauge moves a recycled slab to a new run's gauge, charging the
// chunks it already owns: a pooled slab must cost the adopting run what
// a fresh slab growing the same chunks would, so the memory budget stays
// independent of pool history. No-op when the slab already charges g.
func (s *Slab) AdoptGauge(g *MemGauge) {
	if s.gauge == g {
		return
	}
	s.gauge = g
	g.Add(s.capBytes)
}

// charge records a freshly allocated chunk of n bytes.
func (s *Slab) charge(n int64) {
	s.capBytes += n
	s.gauge.Add(n)
}

// Row returns a zeroed row of width w (every slot is NULL), carved from
// the value arena.
func (s *Slab) Row(w int) types.Row {
	if w == 0 {
		return types.Row{}
	}
	if len(s.vals) < w {
		s.growVals(w)
	}
	r := s.vals[:w:w]
	s.vals = s.vals[w:]
	return types.Row(r)
}

func (s *Slab) growVals(w int) {
	var chunk []types.Value
	if k := len(s.freeVals); k > 0 && len(s.freeVals[k-1]) >= w {
		chunk = s.freeVals[k-1]
		s.freeVals = s.freeVals[:k-1]
	} else {
		if s.nextValChunk == 0 {
			s.nextValChunk = slabFirstChunk
		}
		n := s.nextValChunk
		if s.nextValChunk < slabMaxValChunk {
			s.nextValChunk *= 2
		}
		if w > n {
			n = w
		}
		chunk = make([]types.Value, n)
		s.charge(int64(n) * int64(unsafe.Sizeof(types.Value{})))
	}
	s.usedVals = append(s.usedVals, chunk)
	s.vals = chunk
}

// Tuple returns a fresh zeroed tuple from the tuple arena.
func (s *Slab) Tuple() *Tuple {
	if len(s.tuples) == 0 {
		s.growTuples()
	}
	t := &s.tuples[0]
	s.tuples = s.tuples[1:]
	return t
}

func (s *Slab) growTuples() {
	var chunk []Tuple
	if k := len(s.freeTuples); k > 0 {
		chunk = s.freeTuples[k-1]
		s.freeTuples = s.freeTuples[:k-1]
	} else {
		if s.nextTupleChunk == 0 {
			s.nextTupleChunk = slabFirstChunk
		}
		n := s.nextTupleChunk
		if s.nextTupleChunk < slabMaxTupleChunk {
			s.nextTupleChunk *= 2
		}
		chunk = make([]Tuple, n)
		s.charge(int64(n) * int64(unsafe.Sizeof(Tuple{})))
	}
	s.usedTuples = append(s.usedTuples, chunk)
	s.tuples = chunk
}

// RandRefs returns a zeroed RandRef slice of length n from the reference
// arena.
func (s *Slab) RandRefs(n int) []RandRef {
	if n == 0 {
		return nil
	}
	if len(s.refs) < n {
		s.growRefs(n)
	}
	r := s.refs[:n:n]
	s.refs = s.refs[n:]
	return r
}

func (s *Slab) growRefs(n int) {
	var chunk []RandRef
	if k := len(s.freeRefs); k > 0 && len(s.freeRefs[k-1]) >= n {
		chunk = s.freeRefs[k-1]
		s.freeRefs = s.freeRefs[:k-1]
	} else {
		if s.nextRefChunk == 0 {
			s.nextRefChunk = slabFirstChunk
		}
		c := s.nextRefChunk
		if s.nextRefChunk < slabMaxRefChunk {
			s.nextRefChunk *= 2
		}
		if n > c {
			c = n
		}
		chunk = make([]RandRef, c)
		s.charge(int64(c) * int64(unsafe.Sizeof(RandRef{})))
	}
	s.usedRefs = append(s.usedRefs, chunk)
	s.refs = chunk
}

// Reset zeroes every chunk the slab has handed allocations out of and
// moves it to the free list, so subsequent allocations reuse the memory.
// Everything previously allocated from the slab becomes invalid.
func (s *Slab) Reset() {
	s.vals, s.tuples, s.refs = nil, nil, nil
	for _, c := range s.usedVals {
		for i := range c {
			c[i] = types.Value{}
		}
		s.freeVals = append(s.freeVals, c)
	}
	s.usedVals = s.usedVals[:0]
	for _, c := range s.usedTuples {
		for i := range c {
			c[i] = Tuple{}
		}
		s.freeTuples = append(s.freeTuples, c)
	}
	s.usedTuples = s.usedTuples[:0]
	for _, c := range s.usedRefs {
		for i := range c {
			c[i] = RandRef{}
		}
		s.freeRefs = append(s.freeRefs, c)
	}
	s.usedRefs = s.usedRefs[:0]
}
