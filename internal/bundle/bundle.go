// Package bundle implements Gibbs tuples (paper §5): the MCDB tuple-bundle
// extended with the lineage the Gibbs Looper needs. A Gibbs tuple carries
// deterministic attribute values, references binding each random attribute
// slot to a TS-seed (and to a column of that seed's VG output), and isPres
// vectors recording — per materialized stream element — whether a selection
// predicate applied below the looper is satisfied.
package bundle

import (
	"fmt"
	"sort"

	"repro/internal/seeds"
	"repro/internal/types"
)

// RandRef binds one attribute slot of a tuple to a TS-seed.
type RandRef struct {
	// Slot is the column index in the tuple's schema that receives the
	// random value.
	Slot int
	// SeedID is the TS-seed handle whose stream produces the value.
	SeedID uint64
	// Out selects which column of the seed's VG output row feeds the slot
	// (VG functions may emit several correlated values per element).
	Out int
}

// PresVec records, for each materialized stream element of one seed,
// whether a selection predicate applied to this tuple below the looper is
// satisfied (paper §5: "an array of isPres values ... indicates for each DB
// instance whether or not the predicate is satisfied"; because attribute
// values change individually during Gibbs sampling, the bits are kept per
// stream element rather than per whole tuple).
type PresVec struct {
	SeedID uint64
	// Lo and Bits mirror the seed window's contiguous segment.
	Lo   uint64
	Bits []bool
	// Sparse mirrors the window's still-assigned stragglers.
	Sparse map[uint64]bool
}

// At reports the predicate outcome for a stream position; ok is false when
// the position is not covered (the caller must replenish).
func (p *PresVec) At(pos uint64) (present, ok bool) {
	if pos >= p.Lo && pos < p.Lo+uint64(len(p.Bits)) {
		return p.Bits[pos-p.Lo], true
	}
	b, ok := p.Sparse[pos]
	return b, ok
}

// Any reports whether any covered position satisfies the predicate; tuples
// with an all-false vector are dropped by Select (paper §5).
func (p *PresVec) Any() bool {
	for _, b := range p.Bits {
		if b {
			return true
		}
	}
	for _, b := range p.Sparse {
		if b {
			return true
		}
	}
	return false
}

// Tuple is one Gibbs tuple.
type Tuple struct {
	// Det holds the attribute values; random slots contain the placeholder
	// types.Null and are filled per DB version at evaluation time.
	Det types.Row
	// Rand lists the tuple's random attribute bindings, if any.
	Rand []RandRef
	// Pres lists per-seed presence vectors from Select operators applied
	// below the looper.
	Pres []PresVec
}

// NewDet returns a purely deterministic tuple.
func NewDet(row types.Row) *Tuple { return &Tuple{Det: row} }

// Clone returns a deep copy (presence sparse maps are shared: they are
// written only when rebuilt whole, never mutated in place).
func (t *Tuple) Clone() *Tuple {
	out := &Tuple{Det: t.Det.Clone()}
	out.Rand = append([]RandRef(nil), t.Rand...)
	out.Pres = append([]PresVec(nil), t.Pres...)
	return out
}

// IsRandom reports whether the tuple has any random slots or presence
// vectors (i.e., whether its contribution can vary across DB versions).
func (t *Tuple) IsRandom() bool { return len(t.Rand) > 0 || len(t.Pres) > 0 }

// SeedIDs returns the distinct TS-seed handles this tuple depends on,
// ascending — the keys under which the looper's priority queue indexes the
// tuple. A handle may appear in Rand, Pres, or both.
func (t *Tuple) SeedIDs() []uint64 {
	set := map[uint64]struct{}{}
	for _, r := range t.Rand {
		set[r.SeedID] = struct{}{}
	}
	for _, p := range t.Pres {
		set[p.SeedID] = struct{}{}
	}
	out := make([]uint64, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NextSeedAfter returns the smallest seed handle strictly greater than id,
// or ok=false when none exists; the looper uses it to re-key tuples in the
// priority queue (paper §7).
func (t *Tuple) NextSeedAfter(id uint64) (uint64, bool) {
	best := uint64(0)
	found := false
	for _, s := range t.SeedIDs() {
		if s > id && (!found || s < best) {
			best = s
			found = true
		}
	}
	return best, found
}

// Binding gives stream positions per seed for evaluation: the looper
// evaluates tuples under the current assignment of a DB version, optionally
// overriding one seed with a candidate position during rejection sampling.
type Binding struct {
	store *seeds.Store
	// version indexes each seed's Assign column.
	version int
	// override, when set, replaces the assignment of overrideSeed.
	overrideSeed uint64
	overridePos  uint64
	hasOverride  bool
}

// Bind returns a Binding for the given DB version.
func Bind(store *seeds.Store, version int) Binding {
	return Binding{store: store, version: version}
}

// WithOverride returns a copy of the binding in which seed id is pinned to
// pos instead of its current assignment.
func (b Binding) WithOverride(id, pos uint64) Binding {
	b.overrideSeed, b.overridePos, b.hasOverride = id, pos, true
	return b
}

// Pos returns the stream position the binding uses for a seed.
func (b Binding) Pos(id uint64) uint64 {
	if b.hasOverride && id == b.overrideSeed {
		return b.overridePos
	}
	return b.store.MustGet(id).Assign[b.version]
}

// ErrNotMaterialized reports an access to a stream position outside the
// materialized window; the looper reacts by triggering a replenishing run.
type ErrNotMaterialized struct {
	SeedID uint64
	Pos    uint64
}

func (e *ErrNotMaterialized) Error() string {
	return fmt.Sprintf("bundle: seed %d position %d not materialized", e.SeedID, e.Pos)
}

// Eval materializes the tuple's row under the binding and reports whether
// the tuple is present (all isPres bits true at the bound positions). The
// returned row aliases an internal buffer valid until the next Eval with
// the same buf; pass nil to allocate.
func (t *Tuple) Eval(b Binding, buf types.Row) (row types.Row, present bool, err error) {
	if cap(buf) >= len(t.Det) {
		buf = buf[:len(t.Det)]
		copy(buf, t.Det)
	} else {
		buf = t.Det.Clone()
	}
	for _, p := range t.Pres {
		pos := b.Pos(p.SeedID)
		bit, ok := p.At(pos)
		if !ok {
			return buf, false, &ErrNotMaterialized{SeedID: p.SeedID, Pos: pos}
		}
		if !bit {
			return buf, false, nil
		}
	}
	for _, r := range t.Rand {
		pos := b.Pos(r.SeedID)
		s := b.store.MustGet(r.SeedID)
		vals, ok := s.Window.Get(pos)
		if !ok {
			return buf, false, &ErrNotMaterialized{SeedID: r.SeedID, Pos: pos}
		}
		if r.Out >= len(vals) {
			return buf, false, fmt.Errorf("bundle: seed %d output %d of %d", r.SeedID, r.Out, len(vals))
		}
		buf[r.Slot] = vals[r.Out]
	}
	return buf, true, nil
}
