package bundle

import (
	"errors"
	"testing"

	"repro/internal/prng"
	"repro/internal/seeds"
	"repro/internal/types"
)

// fixedVG emits position-dependent deterministic values so tests can
// predict window contents: output = [pos, pos*10].
type fixedVG struct{}

func (fixedVG) Name() string           { return "Fixed" }
func (fixedVG) Arity() int             { return 0 }
func (fixedVG) OutKinds() []types.Kind { return []types.Kind{types.KindFloat, types.KindFloat} }
func (fixedVG) Generate(_ []types.Value, sub *prng.Sub) ([]types.Value, error) {
	// Derive the "position" from the substream deterministically: use the
	// first uniform scaled; but tests need exact values, so instead tests
	// use a real store where values are read back via ValueAt.
	u := sub.Float64()
	return []types.Value{types.NewFloat(u), types.NewFloat(u * 10)}, nil
}

func testStore(t *testing.T, nSeeds, nVersions, window int) *seeds.Store {
	t.Helper()
	st := seeds.NewStore()
	master := prng.NewStream(7)
	for i := 0; i < nSeeds; i++ {
		s := st.Alloc(master, fixedVG{}, nil)
		if err := s.Materialize(0, window, nil); err != nil {
			t.Fatal(err)
		}
	}
	st.InitAssign(nVersions)
	return st
}

func TestPresVecAt(t *testing.T) {
	p := PresVec{SeedID: 1, Lo: 4, Bits: []bool{true, false},
		Sparse: map[uint64]bool{1: true, 2: false}}
	cases := []struct {
		pos         uint64
		wantPresent bool
		wantCovered bool
	}{
		{4, true, true}, {5, false, true}, {1, true, true}, {2, false, true},
		{0, false, false}, {6, false, false},
	}
	for _, tc := range cases {
		got, ok := p.At(tc.pos)
		if got != tc.wantPresent || ok != tc.wantCovered {
			t.Errorf("At(%d) = %v,%v want %v,%v", tc.pos, got, ok, tc.wantPresent, tc.wantCovered)
		}
	}
	if !p.Any() {
		t.Fatal("Any should be true")
	}
	empty := PresVec{Bits: []bool{false}, Sparse: map[uint64]bool{9: false}}
	if empty.Any() {
		t.Fatal("Any on all-false must be false")
	}
}

func TestSeedIDsAndNextSeedAfter(t *testing.T) {
	tu := &Tuple{
		Det:  types.Row{types.Null, types.Null, types.NewInt(5)},
		Rand: []RandRef{{Slot: 0, SeedID: 3}, {Slot: 1, SeedID: 1}},
		Pres: []PresVec{{SeedID: 3}, {SeedID: 7}},
	}
	ids := tu.SeedIDs()
	want := []uint64{1, 3, 7}
	if len(ids) != 3 {
		t.Fatalf("SeedIDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("SeedIDs = %v, want %v", ids, want)
		}
	}
	if next, ok := tu.NextSeedAfter(1); !ok || next != 3 {
		t.Fatalf("NextSeedAfter(1) = %d,%v", next, ok)
	}
	if next, ok := tu.NextSeedAfter(3); !ok || next != 7 {
		t.Fatalf("NextSeedAfter(3) = %d,%v", next, ok)
	}
	if _, ok := tu.NextSeedAfter(7); ok {
		t.Fatal("NextSeedAfter(7) should be none")
	}
	if !tu.IsRandom() {
		t.Fatal("tuple with rand refs is random")
	}
	if NewDet(types.Row{types.NewInt(1)}).IsRandom() {
		t.Fatal("det tuple is not random")
	}
}

func TestEvalFillsRandomSlots(t *testing.T) {
	st := testStore(t, 2, 3, 8)
	tu := &Tuple{
		Det: types.Row{types.NewString("k"), types.Null, types.Null},
		Rand: []RandRef{
			{Slot: 1, SeedID: 0, Out: 0},
			{Slot: 2, SeedID: 1, Out: 1},
		},
	}
	for v := 0; v < 3; v++ {
		row, present, err := tu.Eval(Bind(st, v), nil)
		if err != nil || !present {
			t.Fatalf("Eval v%d: present=%v err=%v", v, present, err)
		}
		want0, _ := st.MustGet(0).Window.Get(uint64(v))
		want1, _ := st.MustGet(1).Window.Get(uint64(v))
		if !row[1].Equal(want0[0]) || !row[2].Equal(want1[1]) {
			t.Fatalf("v%d row = %v", v, row)
		}
		if row[0].Str() != "k" {
			t.Fatal("deterministic slot clobbered")
		}
	}
}

func TestEvalWithOverride(t *testing.T) {
	st := testStore(t, 1, 2, 8)
	tu := &Tuple{
		Det:  types.Row{types.Null},
		Rand: []RandRef{{Slot: 0, SeedID: 0, Out: 0}},
	}
	b := Bind(st, 0).WithOverride(0, 5)
	row, present, err := tu.Eval(b, nil)
	if err != nil || !present {
		t.Fatal(err)
	}
	want, _ := st.MustGet(0).Window.Get(5)
	if !row[0].Equal(want[0]) {
		t.Fatalf("override not applied: %v vs %v", row[0], want[0])
	}
	// Override of a different seed must not affect this one.
	b2 := Bind(st, 1).WithOverride(99, 5)
	row2, _, _ := tu.Eval(b2, nil)
	want2, _ := st.MustGet(0).Window.Get(1)
	if !row2[0].Equal(want2[0]) {
		t.Fatal("unrelated override changed binding")
	}
}

func TestEvalPresence(t *testing.T) {
	st := testStore(t, 1, 4, 8)
	tu := &Tuple{
		Det:  types.Row{types.NewInt(1)},
		Pres: []PresVec{{SeedID: 0, Lo: 0, Bits: []bool{true, false, true, false, true, true, true, true}}},
	}
	wantPresent := []bool{true, false, true, false}
	for v := 0; v < 4; v++ {
		_, present, err := tu.Eval(Bind(st, v), nil)
		if err != nil {
			t.Fatal(err)
		}
		if present != wantPresent[v] {
			t.Fatalf("v%d present = %v", v, present)
		}
	}
}

func TestEvalNotMaterialized(t *testing.T) {
	st := testStore(t, 1, 2, 4)
	st.MustGet(0).Assign[0] = 100 // outside window
	tu := &Tuple{Det: types.Row{types.Null}, Rand: []RandRef{{Slot: 0, SeedID: 0, Out: 0}}}
	_, _, err := tu.Eval(Bind(st, 0), nil)
	var nm *ErrNotMaterialized
	if !errors.As(err, &nm) {
		t.Fatalf("err = %v, want ErrNotMaterialized", err)
	}
	if nm.SeedID != 0 || nm.Pos != 100 {
		t.Fatalf("nm = %+v", nm)
	}
	// Presence vector misses must also trigger the error.
	tu2 := &Tuple{Det: types.Row{types.NewInt(1)},
		Pres: []PresVec{{SeedID: 0, Lo: 0, Bits: []bool{true, true}}}}
	st.MustGet(0).Assign[1] = 50
	_, _, err = tu2.Eval(Bind(st, 1), nil)
	if !errors.As(err, &nm) {
		t.Fatalf("pres miss err = %v", err)
	}
}

func TestEvalBufferReuseNoAlloc(t *testing.T) {
	st := testStore(t, 1, 2, 8)
	tu := &Tuple{Det: types.Row{types.Null, types.NewInt(2)},
		Rand: []RandRef{{Slot: 0, SeedID: 0, Out: 0}}}
	buf := make(types.Row, 2)
	b := Bind(st, 0)
	allocs := testing.AllocsPerRun(1000, func() {
		if _, _, err := tu.Eval(b, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("Eval with buffer allocates %v/run", allocs)
	}
}

func TestCloneIndependence(t *testing.T) {
	tu := &Tuple{
		Det:  types.Row{types.NewInt(1)},
		Rand: []RandRef{{Slot: 0, SeedID: 2}},
		Pres: []PresVec{{SeedID: 2, Bits: []bool{true}}},
	}
	cp := tu.Clone()
	cp.Det[0] = types.NewInt(9)
	cp.Rand[0].SeedID = 5
	cp.Pres[0].SeedID = 5
	if tu.Det[0].Int() != 1 || tu.Rand[0].SeedID != 2 || tu.Pres[0].SeedID != 2 {
		t.Fatal("Clone aliases the original")
	}
}
