// Package vg implements MCDB's "variable generation" (VG) functions: the
// pseudorandom black boxes that turn parameter-table rows into uncertain
// data values. A VG invocation consumes one parameter row and one PRNG
// substream element and produces one correlated row of output values; the
// substream discipline (package prng) makes every invocation reproducible
// and randomly addressable, which is what MCDB-R's TS-seeds require.
package vg

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/prng"
	"repro/internal/types"
)

// Func is a variable-generation function. Implementations must be
// stateless: all randomness comes from the supplied substream, and all
// shape information from the parameter row, so that the Gibbs Looper can
// regenerate any stream element at any time.
type Func interface {
	// Name is the identifier used in CREATE TABLE ... WITH x AS Name(...).
	Name() string
	// Arity returns the required number of parameters, or -1 for variadic.
	Arity() int
	// OutKinds returns the kinds of the output columns.
	OutKinds() []types.Kind
	// Generate produces one output row from the parameter row, drawing
	// randomness from sub. Errors indicate invalid parameters.
	Generate(params []types.Value, sub *prng.Sub) ([]types.Value, error)
}

// Sampler generates one output row per call into dst (whose length equals
// len(OutKinds())), drawing randomness from sub. It is the allocation-free
// counterpart of Func.Generate for window materialization.
type Sampler func(sub *prng.Sub, dst []types.Value) error

// Preparer is an optional fast path a Func may implement: Prepare
// validates and parses the parameter row once and returns a Sampler
// invoked per stream element. For a given parameter row, the Sampler must
// consume the substream exactly as Generate does, so that prepared and
// unprepared materialization produce bit-identical values. All built-in
// VG functions implement it; user functions that do not fall back to
// Generate.
type Preparer interface {
	Prepare(params []types.Value) (Sampler, error)
}

// Registry maps VG function names (case-insensitive) to implementations.
type Registry struct {
	mu    sync.RWMutex
	funcs map[string]Func
}

// NewRegistry returns a registry pre-populated with all built-in VG
// functions.
func NewRegistry() *Registry {
	r := &Registry{funcs: make(map[string]Func)}
	for _, f := range Builtins() {
		r.Register(f)
	}
	return r
}

// Register adds or replaces a VG function.
func (r *Registry) Register(f Func) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[strings.ToLower(f.Name())] = f
}

// Lookup finds a VG function by name.
func (r *Registry) Lookup(name string) (Func, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.funcs[strings.ToLower(name)]
	return f, ok
}

// Names returns registered names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.funcs))
	for n := range r.funcs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Builtins returns the built-in VG function set.
func Builtins() []Func {
	return []Func{
		distFunc{name: "Normal", arity: 2, build: func(p []float64) (prng.Dist, error) {
			if p[1] < 0 {
				return nil, fmt.Errorf("vg: Normal variance %g < 0", p[1])
			}
			return prng.Normal{Mu: p[0], Sigma: math.Sqrt(p[1])}, nil
		}},
		distFunc{name: "Uniform", arity: 2, build: func(p []float64) (prng.Dist, error) {
			if p[1] < p[0] {
				return nil, fmt.Errorf("vg: Uniform hi %g < lo %g", p[1], p[0])
			}
			return prng.Uniform{Lo: p[0], Hi: p[1]}, nil
		}},
		distFunc{name: "Exponential", arity: 1, build: func(p []float64) (prng.Dist, error) {
			if p[0] <= 0 {
				return nil, fmt.Errorf("vg: Exponential rate %g <= 0", p[0])
			}
			return prng.Exponential{Lambda: p[0]}, nil
		}},
		distFunc{name: "Gamma", arity: 2, build: func(p []float64) (prng.Dist, error) {
			if p[0] <= 0 || p[1] <= 0 {
				return nil, fmt.Errorf("vg: Gamma parameters must be positive, got (%g,%g)", p[0], p[1])
			}
			return prng.Gamma{Shape: p[0], Scale: p[1]}, nil
		}},
		distFunc{name: "InverseGamma", arity: 2, build: func(p []float64) (prng.Dist, error) {
			if p[0] <= 0 || p[1] <= 0 {
				return nil, fmt.Errorf("vg: InverseGamma parameters must be positive, got (%g,%g)", p[0], p[1])
			}
			return prng.InverseGamma{Shape: p[0], Scale: p[1]}, nil
		}},
		distFunc{name: "Lognormal", arity: 2, build: func(p []float64) (prng.Dist, error) {
			if p[1] <= 0 {
				return nil, fmt.Errorf("vg: Lognormal sigma %g <= 0", p[1])
			}
			return prng.Lognormal{Mu: p[0], Sigma: p[1]}, nil
		}},
		distFunc{name: "Pareto", arity: 2, build: func(p []float64) (prng.Dist, error) {
			if p[0] <= 0 || p[1] <= 0 {
				return nil, fmt.Errorf("vg: Pareto parameters must be positive, got (%g,%g)", p[0], p[1])
			}
			return prng.Pareto{Xm: p[0], Alpha: p[1]}, nil
		}},
		distFunc{name: "Bernoulli", arity: 1, build: func(p []float64) (prng.Dist, error) {
			if p[0] < 0 || p[0] > 1 {
				return nil, fmt.Errorf("vg: Bernoulli p %g outside [0,1]", p[0])
			}
			return prng.Bernoulli{P: p[0]}, nil
		}},
		distFunc{name: "Poisson", arity: 1, build: func(p []float64) (prng.Dist, error) {
			if p[0] <= 0 {
				return nil, fmt.Errorf("vg: Poisson lambda %g <= 0", p[0])
			}
			return prng.PoissonDist{Lambda: p[0]}, nil
		}},
		distFunc{name: "StudentT", arity: 3, build: func(p []float64) (prng.Dist, error) {
			if p[0] <= 0 || p[2] <= 0 {
				return nil, fmt.Errorf("vg: StudentT needs nu > 0 and sigma > 0, got (%g,%g)", p[0], p[2])
			}
			return prng.StudentT{Nu: p[0], Mu: p[1], Sigma: p[2]}, nil
		}},
		distFunc{name: "Weibull", arity: 2, build: func(p []float64) (prng.Dist, error) {
			if p[0] <= 0 || p[1] <= 0 {
				return nil, fmt.Errorf("vg: Weibull parameters must be positive, got (%g,%g)", p[0], p[1])
			}
			return prng.Weibull{Shape: p[0], Scale: p[1]}, nil
		}},
		distFunc{name: "Beta", arity: 2, build: func(p []float64) (prng.Dist, error) {
			if p[0] <= 0 || p[1] <= 0 {
				return nil, fmt.Errorf("vg: Beta parameters must be positive, got (%g,%g)", p[0], p[1])
			}
			return prng.Beta{A: p[0], B: p[1]}, nil
		}},
		distFunc{name: "PoissonGamma", arity: 2, build: func(p []float64) (prng.Dist, error) {
			if p[0] <= 0 || p[1] <= 0 {
				return nil, fmt.Errorf("vg: PoissonGamma parameters must be positive, got (%g,%g)", p[0], p[1])
			}
			return prng.PoissonGamma{Shape: p[0], Scale: p[1]}, nil
		}},
		distFunc{name: "Triangular", arity: 3, build: func(p []float64) (prng.Dist, error) {
			if !(p[0] <= p[1] && p[1] <= p[2] && p[0] < p[2]) {
				return nil, fmt.Errorf("vg: Triangular needs lo <= mode <= hi with lo < hi, got (%g,%g,%g)", p[0], p[1], p[2])
			}
			return prng.Triangular{Lo: p[0], Mode: p[1], Hi: p[2]}, nil
		}},
		discreteFunc{},
		multiNormal2Func{},
		randomWalkFunc{},
	}
}

// distFunc adapts a single-output prng.Dist into a VG function.
type distFunc struct {
	name  string
	arity int
	build func([]float64) (prng.Dist, error)
}

func (d distFunc) Name() string           { return d.name }
func (d distFunc) Arity() int             { return d.arity }
func (d distFunc) OutKinds() []types.Kind { return []types.Kind{types.KindFloat} }

func (d distFunc) Generate(params []types.Value, sub *prng.Sub) ([]types.Value, error) {
	fs, err := floats(d.name, params, d.arity)
	if err != nil {
		return nil, err
	}
	dist, err := d.build(fs)
	if err != nil {
		return nil, err
	}
	return []types.Value{types.NewFloat(dist.Sample(sub))}, nil
}

// Prepare implements Preparer: parameters are parsed and the distribution
// built once, then each element is a single allocation-free draw.
func (d distFunc) Prepare(params []types.Value) (Sampler, error) {
	fs, err := floats(d.name, params, d.arity)
	if err != nil {
		return nil, err
	}
	dist, err := d.build(fs)
	if err != nil {
		return nil, err
	}
	return func(sub *prng.Sub, dst []types.Value) error {
		dst[0] = types.NewFloat(dist.Sample(sub))
		return nil
	}, nil
}

// discreteFunc is DiscreteChoice(v1, w1, v2, w2, ...): sample value vi with
// probability proportional to wi.
type discreteFunc struct{}

func (discreteFunc) Name() string           { return "DiscreteChoice" }
func (discreteFunc) Arity() int             { return -1 }
func (discreteFunc) OutKinds() []types.Kind { return []types.Kind{types.KindFloat} }

func (discreteFunc) Generate(params []types.Value, sub *prng.Sub) ([]types.Value, error) {
	if len(params) == 0 || len(params)%2 != 0 {
		return nil, fmt.Errorf("vg: DiscreteChoice needs value/weight pairs, got %d args", len(params))
	}
	fs, err := floats("DiscreteChoice", params, len(params))
	if err != nil {
		return nil, err
	}
	n := len(fs) / 2
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = fs[2*i]
		weights[i] = fs[2*i+1]
	}
	d, err := prng.NewDiscrete(values, weights)
	if err != nil {
		return nil, err
	}
	return []types.Value{types.NewFloat(d.Sample(sub))}, nil
}

// Prepare implements Preparer.
func (discreteFunc) Prepare(params []types.Value) (Sampler, error) {
	if len(params) == 0 || len(params)%2 != 0 {
		return nil, fmt.Errorf("vg: DiscreteChoice needs value/weight pairs, got %d args", len(params))
	}
	fs, err := floats("DiscreteChoice", params, len(params))
	if err != nil {
		return nil, err
	}
	n := len(fs) / 2
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = fs[2*i]
		weights[i] = fs[2*i+1]
	}
	d, err := prng.NewDiscrete(values, weights)
	if err != nil {
		return nil, err
	}
	return func(sub *prng.Sub, dst []types.Value) error {
		dst[0] = types.NewFloat(d.Sample(sub))
		return nil
	}, nil
}

// multiNormal2Func is MultiNormal2(mu1, mu2, sigma1, sigma2, rho): one draw
// from a bivariate normal, producing two *correlated* output values — the
// paper's "table containing one or more correlated data values".
type multiNormal2Func struct{}

func (multiNormal2Func) Name() string { return "MultiNormal2" }
func (multiNormal2Func) Arity() int   { return 5 }
func (multiNormal2Func) OutKinds() []types.Kind {
	return []types.Kind{types.KindFloat, types.KindFloat}
}

func (multiNormal2Func) Generate(params []types.Value, sub *prng.Sub) ([]types.Value, error) {
	p, err := floats("MultiNormal2", params, 5)
	if err != nil {
		return nil, err
	}
	mu1, mu2, s1, s2, rho := p[0], p[1], p[2], p[3], p[4]
	if s1 < 0 || s2 < 0 || rho < -1 || rho > 1 {
		return nil, fmt.Errorf("vg: MultiNormal2 invalid parameters (s1=%g s2=%g rho=%g)", s1, s2, rho)
	}
	z1 := sub.Norm()
	z2 := sub.Norm()
	x1 := mu1 + s1*z1
	x2 := mu2 + s2*(rho*z1+math.Sqrt(1-rho*rho)*z2)
	return []types.Value{types.NewFloat(x1), types.NewFloat(x2)}, nil
}

// Prepare implements Preparer.
func (multiNormal2Func) Prepare(params []types.Value) (Sampler, error) {
	p, err := floats("MultiNormal2", params, 5)
	if err != nil {
		return nil, err
	}
	mu1, mu2, s1, s2, rho := p[0], p[1], p[2], p[3], p[4]
	if s1 < 0 || s2 < 0 || rho < -1 || rho > 1 {
		return nil, fmt.Errorf("vg: MultiNormal2 invalid parameters (s1=%g s2=%g rho=%g)", s1, s2, rho)
	}
	cross := math.Sqrt(1 - rho*rho)
	return func(sub *prng.Sub, dst []types.Value) error {
		z1 := sub.Norm()
		z2 := sub.Norm()
		dst[0] = types.NewFloat(mu1 + s1*z1)
		dst[1] = types.NewFloat(mu2 + s2*(rho*z1+cross*z2))
		return nil
	}, nil
}

// randomWalkFunc is RandomWalk(start, drift, vol, steps): the terminal value
// of an Euler-discretized arithmetic Brownian walk — the paper's motivating
// "Euler approximations to stochastic differential equations" for future
// asset values.
type randomWalkFunc struct{}

func (randomWalkFunc) Name() string           { return "RandomWalk" }
func (randomWalkFunc) Arity() int             { return 4 }
func (randomWalkFunc) OutKinds() []types.Kind { return []types.Kind{types.KindFloat} }

func (randomWalkFunc) Generate(params []types.Value, sub *prng.Sub) ([]types.Value, error) {
	p, err := floats("RandomWalk", params, 4)
	if err != nil {
		return nil, err
	}
	start, drift, vol, stepsF := p[0], p[1], p[2], p[3]
	steps := int(stepsF)
	if steps <= 0 || vol < 0 {
		return nil, fmt.Errorf("vg: RandomWalk needs steps > 0 and vol >= 0, got (%g, %g)", stepsF, vol)
	}
	x := start
	dt := 1.0 / float64(steps)
	sq := math.Sqrt(dt)
	for i := 0; i < steps; i++ {
		x += drift*dt + vol*sq*sub.Norm()
	}
	return []types.Value{types.NewFloat(x)}, nil
}

// Prepare implements Preparer.
func (randomWalkFunc) Prepare(params []types.Value) (Sampler, error) {
	p, err := floats("RandomWalk", params, 4)
	if err != nil {
		return nil, err
	}
	start, drift, vol, stepsF := p[0], p[1], p[2], p[3]
	steps := int(stepsF)
	if steps <= 0 || vol < 0 {
		return nil, fmt.Errorf("vg: RandomWalk needs steps > 0 and vol >= 0, got (%g, %g)", stepsF, vol)
	}
	dt := 1.0 / float64(steps)
	sq := math.Sqrt(dt)
	return func(sub *prng.Sub, dst []types.Value) error {
		x := start
		for i := 0; i < steps; i++ {
			x += drift*dt + vol*sq*sub.Norm()
		}
		dst[0] = types.NewFloat(x)
		return nil
	}, nil
}

func floats(name string, params []types.Value, arity int) ([]float64, error) {
	if arity >= 0 && len(params) != arity {
		return nil, fmt.Errorf("vg: %s needs %d parameters, got %d", name, arity, len(params))
	}
	out := make([]float64, len(params))
	for i, v := range params {
		f, ok := v.AsFloat()
		if !ok || v.IsNull() {
			return nil, fmt.Errorf("vg: %s parameter %d is %s, need numeric", name, i+1, v.Kind())
		}
		out[i] = f
	}
	return out, nil
}
