package vg

import (
	"math"
	"testing"

	"repro/internal/prng"
	"repro/internal/types"
)

func vals(fs ...float64) []types.Value {
	out := make([]types.Value, len(fs))
	for i, f := range fs {
		out[i] = types.NewFloat(f)
	}
	return out
}

func TestRegistryLookup(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Lookup("normal"); !ok {
		t.Fatal("case-insensitive lookup of Normal failed")
	}
	if _, ok := r.Lookup("NoSuchVG"); ok {
		t.Fatal("missing function should not resolve")
	}
	if len(r.Names()) < 10 {
		t.Fatalf("expected >= 10 builtins, got %v", r.Names())
	}
}

func TestNormalVGMoments(t *testing.T) {
	r := NewRegistry()
	f, _ := r.Lookup("Normal")
	stream := prng.NewStream(1)
	const n = 100000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		out, err := f.Generate(vals(3.0, 4.0), stream.At(uint64(i))) // mean 3, variance 4
		if err != nil {
			t.Fatal(err)
		}
		x := out[0].Float()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("mean = %g, want 3", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("variance = %g, want 4", variance)
	}
}

func TestVGReproducibility(t *testing.T) {
	// The same (stream, element) must always yield the same VG output —
	// the invariant TS-seeds depend on.
	r := NewRegistry()
	stream := prng.NewStream(99)
	for _, name := range []string{"Normal", "Gamma", "Poisson", "Lognormal", "Pareto", "RandomWalk"} {
		f, ok := r.Lookup(name)
		if !ok {
			t.Fatalf("builtin %s missing", name)
		}
		var params []types.Value
		switch f.Arity() {
		case 1:
			params = vals(2.0)
		case 2:
			params = vals(3.0, 2.0)
		case 4:
			params = vals(100, 0.05, 0.2, 16)
		case 5:
			params = vals(0, 0, 1, 1, 0.5)
		}
		a, err := f.Generate(params, stream.At(7))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := f.Generate(params, stream.At(7))
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if !a[i].Equal(b[i]) {
				t.Errorf("%s element 7 not reproducible: %v vs %v", name, a[i], b[i])
			}
		}
	}
}

func TestVGParameterValidation(t *testing.T) {
	r := NewRegistry()
	cases := []struct {
		fn     string
		params []types.Value
	}{
		{"Normal", vals(1)},                   // wrong arity
		{"Normal", vals(0, -1)},               // negative variance
		{"Uniform", vals(5, 1)},               // hi < lo
		{"Gamma", vals(-1, 1)},                // bad shape
		{"Poisson", vals(-2)},                 // bad lambda
		{"Bernoulli", vals(1.5)},              // p > 1
		{"Pareto", vals(0, 1)},                // xm <= 0
		{"DiscreteChoice", vals(1, 0.5, 2)},   // odd arg count
		{"MultiNormal2", vals(0, 0, 1, 1, 2)}, // rho > 1
		{"RandomWalk", vals(0, 0, 1, 0)},      // zero steps
		{"Normal", []types.Value{types.NewString("x"), types.NewFloat(1)}}, // non-numeric
	}
	for _, tc := range cases {
		f, ok := r.Lookup(tc.fn)
		if !ok {
			t.Fatalf("builtin %s missing", tc.fn)
		}
		if _, err := f.Generate(tc.params, prng.NewSub(1)); err == nil {
			t.Errorf("%s(%v): expected error", tc.fn, tc.params)
		}
	}
}

func TestDiscreteChoice(t *testing.T) {
	r := NewRegistry()
	f, _ := r.Lookup("DiscreteChoice")
	stream := prng.NewStream(5)
	counts := map[float64]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		out, err := f.Generate(vals(10, 1, 20, 3), stream.At(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		counts[out[0].Float()]++
	}
	if len(counts) != 2 {
		t.Fatalf("values sampled: %v", counts)
	}
	frac20 := float64(counts[20]) / n
	if math.Abs(frac20-0.75) > 0.02 {
		t.Fatalf("P(20) = %g, want 0.75", frac20)
	}
}

func TestMultiNormal2Correlation(t *testing.T) {
	r := NewRegistry()
	f, _ := r.Lookup("MultiNormal2")
	stream := prng.NewStream(8)
	const n = 100000
	rho := 0.8
	var sx, sy, sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		out, err := f.Generate(vals(1, 2, 1, 1, rho), stream.At(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		x, y := out[0].Float(), out[1].Float()
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	mx, my := sx/n, sy/n
	cov := sxy/n - mx*my
	vx, vy := sxx/n-mx*mx, syy/n-my*my
	got := cov / math.Sqrt(vx*vy)
	if math.Abs(got-rho) > 0.02 {
		t.Fatalf("sample correlation %g, want %g", got, rho)
	}
	if len(f.OutKinds()) != 2 {
		t.Fatal("MultiNormal2 must declare 2 outputs")
	}
}

func TestRandomWalkMoments(t *testing.T) {
	// Terminal value of the walk is start + drift + vol*N(0,1) in
	// distribution (sum of step increments).
	r := NewRegistry()
	f, _ := r.Lookup("RandomWalk")
	stream := prng.NewStream(3)
	const n = 50000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		out, err := f.Generate(vals(100, 5, 2, 8), stream.At(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		x := out[0].Float()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-105) > 0.1 {
		t.Errorf("mean = %g, want 105", mean)
	}
	if math.Abs(variance-4) > 0.2 {
		t.Errorf("variance = %g, want 4", variance)
	}
}

func TestCustomVGRegistration(t *testing.T) {
	r := NewRegistry()
	r.Register(constFunc{})
	f, ok := r.Lookup("AlwaysOne")
	if !ok {
		t.Fatal("custom function not registered")
	}
	out, err := f.Generate(nil, prng.NewSub(1))
	if err != nil || out[0].Float() != 1 {
		t.Fatalf("custom VG output = %v, %v", out, err)
	}
}

type constFunc struct{}

func (constFunc) Name() string           { return "AlwaysOne" }
func (constFunc) Arity() int             { return 0 }
func (constFunc) OutKinds() []types.Kind { return []types.Kind{types.KindFloat} }
func (constFunc) Generate([]types.Value, *prng.Sub) ([]types.Value, error) {
	return []types.Value{types.NewFloat(1)}, nil
}
