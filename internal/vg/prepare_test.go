package vg

import (
	"testing"

	"repro/internal/prng"
	"repro/internal/types"
)

// TestPrepareMatchesGenerate: for every built-in VG function, the prepared
// sampler (the window-materialization fast path) must produce values
// bit-identical to Generate at every stream position — the vg.Preparer
// contract that keeps cached and uncached runs reproducible.
func TestPrepareMatchesGenerate(t *testing.T) {
	cases := []struct {
		name   string
		params []types.Value
	}{
		{"Normal", vals(10, 4)},
		{"Uniform", vals(-2, 7)},
		{"Exponential", vals(0.5)},
		{"Gamma", vals(2.5, 1.5)},
		{"InverseGamma", vals(3, 2)},
		{"Lognormal", vals(0.2, 0.8)},
		{"Pareto", vals(1.5, 2)},
		{"Bernoulli", vals(0.3)},
		{"Poisson", vals(4.5)},
		{"StudentT", vals(5, 1, 2)},
		{"Weibull", vals(1.5, 2)},
		{"Beta", vals(2, 3)},
		{"PoissonGamma", vals(3, 1.5)},
		{"Triangular", vals(0, 1, 4)},
		{"DiscreteChoice", vals(1, 0.2, 5, 0.5, 9, 0.3)},
		{"MultiNormal2", vals(1, 2, 3, 4, 0.5)},
		{"RandomWalk", vals(100, 0.1, 0.3, 12)},
	}
	reg := NewRegistry()
	for _, tc := range cases {
		f, ok := reg.Lookup(tc.name)
		if !ok {
			t.Fatalf("%s not registered", tc.name)
		}
		p, ok := f.(Preparer)
		if !ok {
			t.Fatalf("%s does not implement Preparer", tc.name)
		}
		sampler, err := p.Prepare(tc.params)
		if err != nil {
			t.Fatalf("%s Prepare: %v", tc.name, err)
		}
		stream := prng.NewStream(42).Derive(7)
		nOut := len(f.OutKinds())
		dst := make([]types.Value, nOut)
		for pos := uint64(0); pos < 64; pos++ {
			want, err := f.Generate(tc.params, stream.At(pos))
			if err != nil {
				t.Fatalf("%s Generate pos %d: %v", tc.name, pos, err)
			}
			sub := stream.SubAt(pos)
			if err := sampler(&sub, dst); err != nil {
				t.Fatalf("%s sampler pos %d: %v", tc.name, pos, err)
			}
			if len(want) != nOut {
				t.Fatalf("%s Generate emitted %d values, OutKinds says %d", tc.name, len(want), nOut)
			}
			for o := range want {
				if !want[o].Equal(dst[o]) {
					t.Fatalf("%s pos %d out %d: Generate %v, prepared %v", tc.name, pos, o, want[o], dst[o])
				}
			}
		}
	}
}

// TestPrepareValidatesParams: Prepare surfaces the same parameter errors
// Generate would, once, instead of per element.
func TestPrepareValidatesParams(t *testing.T) {
	reg := NewRegistry()
	bad := map[string][]types.Value{
		"Normal":         vals(0, -1),
		"Uniform":        vals(5, 1),
		"Pareto":         vals(-1, 1),
		"DiscreteChoice": vals(1),
		"RandomWalk":     vals(0, 0, 1, 0),
	}
	for name, params := range bad {
		f, _ := reg.Lookup(name)
		if _, err := f.(Preparer).Prepare(params); err == nil {
			t.Fatalf("%s.Prepare(%v) should fail", name, params)
		}
	}
}
