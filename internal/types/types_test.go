package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Fatal("zero Value must be NULL")
	}
	if got := NewInt(-7).Int(); got != -7 {
		t.Fatalf("Int() = %d, want -7", got)
	}
	if got := NewFloat(2.5).Float(); got != 2.5 {
		t.Fatalf("Float() = %v, want 2.5", got)
	}
	if got := NewString("hi").Str(); got != "hi" {
		t.Fatalf("Str() = %q, want hi", got)
	}
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Fatal("Bool round trip failed")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"IntOnFloat", func() { NewFloat(1).Int() }},
		{"FloatOnInt", func() { NewInt(1).Float() }},
		{"StrOnInt", func() { NewInt(1).Str() }},
		{"BoolOnString", func() { NewString("x").Bool() }},
		{"MustFloatOnString", func() { NewString("x").MustFloat() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestAsFloat(t *testing.T) {
	if f, ok := NewInt(3).AsFloat(); !ok || f != 3 {
		t.Fatalf("AsFloat(INT 3) = %v,%v", f, ok)
	}
	if f, ok := NewBool(true).AsFloat(); !ok || f != 1 {
		t.Fatalf("AsFloat(true) = %v,%v", f, ok)
	}
	if f, ok := Null.AsFloat(); !ok || !math.IsNaN(f) {
		t.Fatalf("AsFloat(NULL) = %v,%v, want NaN", f, ok)
	}
	if _, ok := NewString("x").AsFloat(); ok {
		t.Fatal("AsFloat(STRING) should fail")
	}
}

func TestEqualCrossKindNumeric(t *testing.T) {
	if !NewInt(3).Equal(NewFloat(3)) {
		t.Fatal("INT 3 should equal FLOAT 3")
	}
	if NewInt(3).Equal(NewFloat(3.5)) {
		t.Fatal("INT 3 should not equal FLOAT 3.5")
	}
	if NewInt(1).Equal(NewBool(true)) {
		t.Fatal("INT 1 should not equal BOOL true")
	}
	if !Null.Equal(Null) {
		t.Fatal("NULL should equal NULL for hashing purposes")
	}
}

func TestCompareTotalOrder(t *testing.T) {
	ordered := []Value{
		Null,
		NewBool(false), NewBool(true),
		NewFloat(math.Inf(-1)), NewInt(-5), NewFloat(-1.5), NewInt(0),
		NewFloat(0.5), NewInt(2), NewFloat(math.Inf(1)),
		NewString("a"), NewString("b"),
	}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v,%v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestHashEqualConsistency(t *testing.T) {
	f := func(x int64) bool {
		return NewInt(x).Hash() == NewFloat(float64(x)).Hash() ||
			float64(x) != math.Trunc(float64(x)) // only require when exactly representable
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if NewFloat(0).Hash() != NewFloat(math.Copysign(0, -1)).Hash() {
		t.Error("-0.0 and 0.0 must hash identically")
	}
}

func TestHashSpreads(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := int64(0); i < 1000; i++ {
		seen[NewInt(i).Hash()] = true
	}
	if len(seen) < 990 {
		t.Fatalf("hash collisions too frequent: %d distinct of 1000", len(seen))
	}
}

func TestParseValue(t *testing.T) {
	cases := []struct {
		s    string
		k    Kind
		want Value
		err  bool
	}{
		{"42", KindInt, NewInt(42), false},
		{"-1.5", KindFloat, NewFloat(-1.5), false},
		{"true", KindBool, NewBool(true), false},
		{"hello", KindString, NewString("hello"), false},
		{"NULL", KindInt, Null, false},
		{"abc", KindInt, Null, true},
		{"abc", KindFloat, Null, true},
		{"2", KindBool, Null, true},
	}
	for _, tc := range cases {
		got, err := ParseValue(tc.s, tc.k)
		if tc.err != (err != nil) {
			t.Errorf("ParseValue(%q,%s) err = %v, want err=%v", tc.s, tc.k, err, tc.err)
			continue
		}
		if err == nil && !got.Equal(tc.want) {
			t.Errorf("ParseValue(%q,%s) = %v, want %v", tc.s, tc.k, got, tc.want)
		}
	}
}

func TestValueStringRendering(t *testing.T) {
	cases := map[string]Value{
		"NULL": Null, "7": NewInt(7), "2.5": NewFloat(2.5),
		"x": NewString("x"), "true": NewBool(true), "false": NewBool(false),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestSchemaLookup(t *testing.T) {
	s := NewSchema(
		Column{"t.a", KindInt},
		Column{"t.b", KindFloat},
		Column{"u.b", KindFloat},
		Column{"c", KindString},
	)
	if i := s.Lookup("t.a"); i != 0 {
		t.Errorf("Lookup(t.a) = %d", i)
	}
	if i := s.Lookup("T.A"); i != 0 {
		t.Errorf("case-insensitive Lookup(T.A) = %d", i)
	}
	if i := s.Lookup("a"); i != 0 {
		t.Errorf("suffix Lookup(a) = %d", i)
	}
	if i := s.Lookup("b"); i != -1 {
		t.Errorf("ambiguous Lookup(b) = %d, want -1", i)
	}
	if i := s.Lookup("c"); i != 3 {
		t.Errorf("Lookup(c) = %d", i)
	}
	if i := s.Lookup("missing"); i != -1 {
		t.Errorf("Lookup(missing) = %d", i)
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate column")
		}
	}()
	NewSchema(Column{"a", KindInt}, Column{"A", KindInt})
}

func TestSchemaConcatProjectRename(t *testing.T) {
	a := NewSchema(Column{"x", KindInt}, Column{"y", KindFloat})
	b := NewSchema(Column{"z", KindString})
	c := a.Concat(b)
	if c.Len() != 3 || c.Col(2).Name != "z" {
		t.Fatalf("Concat = %s", c)
	}
	p := c.Project([]int{2, 0})
	if p.Len() != 2 || p.Col(0).Name != "z" || p.Col(1).Name != "x" {
		t.Fatalf("Project = %s", p)
	}
	r := a.Rename("t")
	if r.Lookup("t.x") != 0 || r.Lookup("t.y") != 1 {
		t.Fatalf("Rename = %s", r)
	}
	r2 := r.Rename("u")
	if r2.Lookup("u.x") != 0 {
		t.Fatalf("Rename strips old qualifier: %s", r2)
	}
}

func TestRowHelpers(t *testing.T) {
	r := Row{NewInt(1), NewString("a")}
	c := r.Clone()
	c[0] = NewInt(2)
	if r[0].Int() != 1 {
		t.Fatal("Clone must not alias")
	}
	if !r.Equal(Row{NewFloat(1), NewString("a")}) {
		t.Fatal("Row.Equal should use numeric equality")
	}
	if r.Equal(Row{NewInt(1)}) {
		t.Fatal("length mismatch must not be equal")
	}
	if r.Hash() == c.Hash() {
		t.Fatal("different rows should (almost surely) hash differently")
	}
}

func TestRowHashEqualConsistency(t *testing.T) {
	f := func(a, b int64, s string) bool {
		r1 := Row{NewInt(a), NewString(s), NewFloat(float64(b))}
		r2 := Row{NewFloat(float64(a)), NewString(s), NewFloat(float64(b))}
		if float64(a) != math.Trunc(float64(a)) {
			return true
		}
		return !r1.Equal(r2) || r1.Hash() == r2.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
