// Package types defines the typed value system, schemas, and rows used
// throughout the MCDB-R engine. All data flowing through query plans —
// deterministic attributes, VG-function outputs, and aggregate results —
// is represented as Value.
package types

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the runtime types supported by the engine.
type Kind uint8

const (
	// KindNull is the type of the SQL NULL value.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE-754 float.
	KindFloat
	// KindString is an immutable byte string.
	KindString
	// KindBool is a boolean.
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed scalar. The zero Value is NULL.
//
// Value is a small immutable struct passed by value; it deliberately avoids
// interface boxing so that hot loops (Gibbs rejection sampling evaluates
// expressions millions of times) do not allocate.
type Value struct {
	kind Kind
	i    int64 // KindInt, KindBool (0/1)
	f    float64
	s    string
}

// Null is the NULL value.
var Null = Value{}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a float value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Kind reports the value's runtime type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload. It panics if the value is not an INT or
// BOOL; use AsFloat for lossy numeric access.
func (v Value) Int() int64 {
	if v.kind != KindInt && v.kind != KindBool {
		panic(fmt.Sprintf("types: Int() on %s value", v.kind))
	}
	return v.i
}

// Float returns the float payload. It panics if the value is not a FLOAT.
func (v Value) Float() float64 {
	if v.kind != KindFloat {
		panic(fmt.Sprintf("types: Float() on %s value", v.kind))
	}
	return v.f
}

// Str returns the string payload. It panics if the value is not a STRING.
func (v Value) Str() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("types: Str() on %s value", v.kind))
	}
	return v.s
}

// Bool returns the boolean payload. It panics if the value is not a BOOL.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("types: Bool() on %s value", v.kind))
	}
	return v.i != 0
}

// IsNumeric reports whether the value is INT or FLOAT.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// AsFloat converts a numeric or boolean value to float64.
// NULL converts to NaN. It returns false for strings.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt, KindBool:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	case KindNull:
		return math.NaN(), true
	default:
		return 0, false
	}
}

// MustFloat converts like AsFloat but panics on strings.
func (v Value) MustFloat() float64 {
	f, ok := v.AsFloat()
	if !ok {
		panic(fmt.Sprintf("types: MustFloat on %s value", v.kind))
	}
	return f
}

// String renders the value for display and CSV output.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Equal reports deep equality. NULL equals NULL (useful for hashing and
// grouping; SQL three-valued logic is handled in the expr package).
// Numeric values of different kinds compare by numeric value, so
// NewInt(3).Equal(NewFloat(3)) is true; this matches join-key semantics.
func (v Value) Equal(o Value) bool {
	if v.kind == o.kind {
		switch v.kind {
		case KindNull:
			return true
		case KindInt, KindBool:
			return v.i == o.i
		case KindFloat:
			return v.f == o.f
		case KindString:
			return v.s == o.s
		}
	}
	if v.IsNumeric() && o.IsNumeric() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		return a == b
	}
	return false
}

// Compare orders values: NULL < BOOL < numerics < STRING, numerics by
// value. It returns -1, 0, or +1.
func (v Value) Compare(o Value) int {
	vr, or := v.rank(), o.rank()
	if vr != or {
		if vr < or {
			return -1
		}
		return 1
	}
	switch {
	case v.kind == KindNull:
		return 0
	case v.kind == KindBool:
		return cmpInt(v.i, o.i)
	case v.kind == KindString:
		switch {
		case v.s < o.s:
			return -1
		case v.s > o.s:
			return 1
		}
		return 0
	default: // numeric
		if v.kind == KindInt && o.kind == KindInt {
			return cmpInt(v.i, o.i)
		}
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
}

func (v Value) rank() int {
	switch v.kind {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 2
	default:
		return 3
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Hash returns a 64-bit hash suitable for hash joins and grouping.
// Values that are Equal hash identically (numerics hash by float value).
func (v Value) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime }
	switch v.kind {
	case KindNull:
		mix(0)
	case KindBool:
		mix(1)
		mix(byte(v.i))
	case KindString:
		mix(2)
		for i := 0; i < len(v.s); i++ {
			mix(v.s[i])
		}
	default: // numeric: hash the float64 bits so INT(3) and FLOAT(3) collide
		f, _ := v.AsFloat()
		bits := math.Float64bits(f)
		if f == math.Trunc(f) && !math.IsInf(f, 0) {
			// normalize -0.0 to 0.0
			if bits == 1<<63 {
				bits = 0
			}
		}
		mix(3)
		for s := 0; s < 64; s += 8 {
			mix(byte(bits >> s))
		}
	}
	return h
}

// ParseValue parses a literal using the given kind, as when loading CSVs.
func ParseValue(s string, k Kind) (Value, error) {
	if s == "NULL" {
		return Null, nil
	}
	switch k {
	case KindInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Null, fmt.Errorf("types: parse %q as INT: %w", s, err)
		}
		return NewInt(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Null, fmt.Errorf("types: parse %q as FLOAT: %w", s, err)
		}
		return NewFloat(f), nil
	case KindBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Null, fmt.Errorf("types: parse %q as BOOL: %w", s, err)
		}
		return NewBool(b), nil
	case KindString:
		return NewString(s), nil
	default:
		return Null, fmt.Errorf("types: cannot parse into %s", k)
	}
}
