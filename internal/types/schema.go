package types

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns. Column names are matched
// case-insensitively but preserved as written.
type Schema struct {
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema from columns. Duplicate names panic: schemas are
// constructed by the planner, which is responsible for disambiguation.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{cols: append([]Column(nil), cols...), index: make(map[string]int, len(cols))}
	for i, c := range cols {
		key := strings.ToLower(c.Name)
		if _, dup := s.index[key]; dup {
			panic(fmt.Sprintf("types: duplicate column %q in schema", c.Name))
		}
		s.index[key] = i
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Col returns the i-th column.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Lookup returns the index of the named column, or -1.
// Names may be qualified ("t.a"); an unqualified lookup also matches a
// qualified column when the suffix after the dot is unique.
func (s *Schema) Lookup(name string) int {
	key := strings.ToLower(name)
	if i, ok := s.index[key]; ok {
		return i
	}
	if !strings.Contains(key, ".") {
		found := -1
		for i, c := range s.cols {
			cn := strings.ToLower(c.Name)
			if j := strings.LastIndexByte(cn, '.'); j >= 0 && cn[j+1:] == key {
				if found >= 0 {
					return -1 // ambiguous
				}
				found = i
			}
		}
		return found
	}
	return -1
}

// MustLookup is Lookup but panics when the column is missing; used by the
// planner after name resolution has already succeeded.
func (s *Schema) MustLookup(name string) int {
	i := s.Lookup(name)
	if i < 0 {
		panic(fmt.Sprintf("types: column %q not in schema %s", name, s))
	}
	return i
}

// Concat returns a new schema with o's columns appended to s's.
func (s *Schema) Concat(o *Schema) *Schema {
	cols := make([]Column, 0, len(s.cols)+len(o.cols))
	cols = append(cols, s.cols...)
	cols = append(cols, o.cols...)
	return NewSchema(cols...)
}

// Project returns a new schema containing the columns at the given indexes.
func (s *Schema) Project(idx []int) *Schema {
	cols := make([]Column, len(idx))
	for i, j := range idx {
		cols[i] = s.cols[j]
	}
	return NewSchema(cols...)
}

// Rename returns a copy of the schema with every column prefixed by
// "alias.", stripping any existing qualifier first.
func (s *Schema) Rename(alias string) *Schema {
	cols := make([]Column, len(s.cols))
	for i, c := range s.cols {
		base := c.Name
		if j := strings.LastIndexByte(base, '.'); j >= 0 {
			base = base[j+1:]
		}
		cols[i] = Column{Name: alias + "." + base, Kind: c.Kind}
	}
	return NewSchema(cols...)
}

// String renders the schema as "(a INT, b FLOAT)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Kind)
	}
	b.WriteByte(')')
	return b.String()
}

// Row is one tuple of values, positionally aligned with a Schema.
type Row []Value

// Clone returns a deep copy of the row.
func (r Row) Clone() Row { return append(Row(nil), r...) }

// String renders the row as "[v1 v2 ...]".
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Equal reports element-wise equality with o.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Hash combines the hashes of all values.
func (r Row) Hash() uint64 {
	h := uint64(1469598103934665603)
	for _, v := range r {
		h = (h ^ v.Hash()) * 1099511628211
	}
	return h
}
