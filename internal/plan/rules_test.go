package plan

import (
	"strings"
	"testing"

	"repro/internal/expr"
)

// fakeCat is an in-memory Catalog for rule tests.
type fakeCat struct {
	rows map[string]int
	cols map[string][]string
	rand map[string]*RandomMeta
}

func (c *fakeCat) TableRows(name string) (int, bool) {
	n, ok := c.rows[strings.ToLower(name)]
	return n, ok
}

func (c *fakeCat) TableColumns(name string) ([]string, bool) {
	cols, ok := c.cols[strings.ToLower(name)]
	return cols, ok
}

func (c *fakeCat) Random(name string) (*RandomMeta, bool) {
	rm, ok := c.rand[strings.ToLower(name)]
	return rm, ok
}

// lossCat is the §2 workload: means(cid, m) plus the random table
// losses(cid, val) with val VG-generated.
func lossCat(nMeans int) *fakeCat {
	return &fakeCat{
		rows: map[string]int{"means": nMeans},
		cols: map[string][]string{"means": {"cid", "m"}},
		rand: map[string]*RandomMeta{"losses": {
			ParamTable: "means",
			VG:         "Normal",
			VGParams:   []expr.Expr{expr.C("m"), expr.F(1)},
			NumOuts:    1,
			Columns: []RandomColMeta{
				{Name: "cid", FromParam: "cid"},
				{Name: "val", VGOut: 0},
			},
		}},
	}
}

func mustState(t *testing.T, cat Catalog, q Query) *state {
	t.Helper()
	s, err := newState(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func apply(t *testing.T, s *state, names ...string) bool {
	t.Helper()
	changed := false
	for _, name := range names {
		r := ruleByName(name)
		if r == nil {
			t.Fatalf("unknown rule %q", name)
		}
		ch, err := r.apply(s)
		if err != nil {
			t.Fatalf("rule %s: %v", name, err)
		}
		changed = changed || ch
	}
	return changed
}

func TestRuleResolveColumnsUnambiguous(t *testing.T) {
	cat := lossCat(10)
	s := mustState(t, cat, Query{
		Froms: []From{{Table: "losses", Alias: "l"}, {Table: "means", Alias: "mm"}},
		Where: []expr.Expr{expr.B(expr.OpGt, expr.C("val"), expr.F(0))},
	})
	if !apply(t, s, "resolve-columns") {
		t.Fatal("resolving an unqualified column must report a change")
	}
	if got := s.conjs[0].e.String(); got != "(l.val > 0)" {
		t.Fatalf("resolved conjunct = %s", got)
	}
	if len(s.conjs[0].aliases) != 1 || s.conjs[0].aliases[0] != "l" {
		t.Fatalf("classification = %v", s.conjs[0].aliases)
	}
	if len(s.conjs[0].rand) != 1 {
		t.Fatalf("val must classify as random, got %v", s.conjs[0].rand)
	}
}

func TestRuleResolveColumnsAmbiguous(t *testing.T) {
	cat := lossCat(10)
	s := mustState(t, cat, Query{
		Froms: []From{{Table: "losses", Alias: "l"}, {Table: "means", Alias: "mm"}},
		Where: []expr.Expr{expr.B(expr.OpGt, expr.C("cid"), expr.F(0))},
	})
	_, err := ruleByName("resolve-columns").apply(s)
	if err == nil {
		t.Fatal("ambiguous column must error")
	}
	if !strings.Contains(err.Error(), "l.cid") || !strings.Contains(err.Error(), "mm.cid") {
		t.Fatalf("error must name both candidates, got: %v", err)
	}
}

func TestRuleResolveColumnsUnknown(t *testing.T) {
	cat := lossCat(10)
	s := mustState(t, cat, Query{
		Froms: []From{{Table: "losses", Alias: "l"}},
		Where: []expr.Expr{expr.B(expr.OpGt, expr.C("nope"), expr.F(0))},
	})
	if _, err := ruleByName("resolve-columns").apply(s); err == nil {
		t.Fatal("unknown column must error")
	}
}

func TestRuleExpandRandomTables(t *testing.T) {
	cat := lossCat(10)
	s := mustState(t, cat, Query{Froms: []From{{Table: "losses", Alias: "l"}}})
	if !apply(t, s, "expand-random-tables") {
		t.Fatal("random table must expand")
	}
	ren, ok := s.subs[0].(*Rename)
	if !ok || ren.Alias != "l" {
		t.Fatalf("top = %T", s.subs[0])
	}
	proj, ok := ren.Child.(*Project)
	if !ok {
		t.Fatalf("under Rename: %T", ren.Child)
	}
	if len(proj.Cols) != 2 || proj.Cols[0] != "__param.cid" || proj.Cols[1] != "__vg0" {
		t.Fatalf("projection = %v", proj.Cols)
	}
	inst, ok := proj.Child.(*Instantiate)
	if !ok {
		t.Fatalf("under Project: %T", proj.Child)
	}
	seed, ok := inst.Child.(*Seed)
	if !ok || seed.VG != "Normal" {
		t.Fatalf("under Instantiate: %T", inst.Child)
	}
	rel, ok := seed.Child.(*Rel)
	if !ok || rel.Table != "means" || rel.Alias != "__param" {
		t.Fatalf("leaf = %+v", seed.Child)
	}
	// Ordinary tables are left alone.
	s2 := mustState(t, cat, Query{Froms: []From{{Table: "means", Alias: "m"}}})
	if apply(t, s2, "expand-random-tables") {
		t.Fatal("ordinary table must not expand")
	}
}

func TestRulePushFiltersBelowJoins(t *testing.T) {
	cat := lossCat(10)
	s := mustState(t, cat, Query{
		Froms: []From{{Table: "losses", Alias: "l"}, {Table: "means", Alias: "mm"}},
		Where: []expr.Expr{
			expr.B(expr.OpLt, expr.C("l.cid"), expr.F(5)),        // single alias: pushed
			expr.B(expr.OpEq, expr.C("l.cid"), expr.C("mm.cid")), // two aliases: left alone
			expr.B(expr.OpGt, expr.C("mm.m"), expr.C("l.val")),   // two aliases: left alone
		},
	})
	apply(t, s, "resolve-columns", "push-filters-below-joins")
	f, ok := s.subs[0].(*Filter)
	if !ok {
		t.Fatalf("subplan 0 = %T, want Filter", s.subs[0])
	}
	if f.Pred.String() != "(l.cid < 5)" {
		t.Fatalf("pushed predicate = %s", f.Pred)
	}
	if _, ok := s.subs[1].(*Rel); !ok {
		t.Fatalf("subplan 1 = %T, want bare Rel", s.subs[1])
	}
	if !s.conjs[0].used || s.conjs[1].used || s.conjs[2].used {
		t.Fatalf("conjunct usage = %v %v %v", s.conjs[0].used, s.conjs[1].used, s.conjs[2].used)
	}
}

// TestRuleOrderJoinsGreedy is the acceptance test for cost-aware join
// ordering: a 3-table query whose FROM order (big, mid, small) differs
// from the size order must be joined smallest-first, not FROM-first.
func TestRuleOrderJoinsGreedy(t *testing.T) {
	cat := &fakeCat{
		rows: map[string]int{"big": 10000, "mid": 500, "small": 20},
		cols: map[string][]string{
			"big":   {"k", "j", "x"},
			"mid":   {"j", "y"},
			"small": {"k", "z"},
		},
	}
	s := mustState(t, cat, Query{
		Froms: []From{{Table: "big", Alias: "b"}, {Table: "mid", Alias: "m"}, {Table: "small", Alias: "s"}},
		Where: []expr.Expr{
			expr.B(expr.OpEq, expr.C("b.k"), expr.C("s.k")),
			expr.B(expr.OpEq, expr.C("b.j"), expr.C("m.j")),
		},
	})
	apply(t, s, "resolve-columns", "order-joins-greedy")
	top, ok := s.root.(*Join)
	if !ok {
		t.Fatalf("root = %T", s.root)
	}
	// Greedy: start with small (20 rows), join big (the only edge), then
	// mid. Left-deep leaves in join order: small, big, mid.
	inner, ok := top.Left.(*Join)
	if !ok {
		t.Fatalf("left of top = %T, want the inner Join", top.Left)
	}
	if rel := inner.Left.(*Rel); rel.Table != "small" {
		t.Fatalf("first joined table = %s, want small (not FROM order)", rel.Table)
	}
	if rel := inner.Right.(*Rel); rel.Table != "big" {
		t.Fatalf("second joined table = %s, want big", rel.Table)
	}
	if rel := top.Right.(*Rel); rel.Table != "mid" {
		t.Fatalf("last joined table = %s, want mid", rel.Table)
	}
	// Keys must be oriented left = already-joined side.
	if inner.LeftKeys[0] != "s.k" || inner.RightKeys[0] != "b.k" {
		t.Fatalf("inner keys = %v vs %v", inner.LeftKeys, inner.RightKeys)
	}
	if top.LeftKeys[0] != "b.j" || top.RightKeys[0] != "m.j" {
		t.Fatalf("top keys = %v vs %v", top.LeftKeys, top.RightKeys)
	}
	// All join conjuncts consumed.
	for i := range s.conjs {
		if !s.conjs[i].used {
			t.Fatalf("conjunct %d not consumed by the join", i)
		}
	}
}

// TestRuleOrderJoinsUnconnectedSmallest: a tiny table with no join edge
// must not hijack the start position — the equi-joined tables join first
// and the unconnected one is cross-joined last.
func TestRuleOrderJoinsUnconnectedSmallest(t *testing.T) {
	cat := &fakeCat{
		rows: map[string]int{"a": 1000, "b": 1000, "tiny": 10},
		cols: map[string][]string{"a": {"k"}, "b": {"k"}, "tiny": {"z"}},
	}
	s := mustState(t, cat, Query{
		Froms: []From{{Table: "a", Alias: "a"}, {Table: "b", Alias: "b"}, {Table: "tiny", Alias: "t"}},
		Where: []expr.Expr{expr.B(expr.OpEq, expr.C("a.k"), expr.C("b.k"))},
	})
	apply(t, s, "resolve-columns", "order-joins-greedy")
	cross, ok := s.root.(*Cross)
	if !ok {
		t.Fatalf("root = %T, want Cross (unconnected table joined last)", s.root)
	}
	if rel := cross.Right.(*Rel); rel.Table != "tiny" {
		t.Fatalf("cross right = %s, want tiny", rel.Table)
	}
	j, ok := cross.Left.(*Join)
	if !ok {
		t.Fatalf("cross left = %T, want Join(a, b)", cross.Left)
	}
	if rel := j.Left.(*Rel); rel.Table != "a" {
		t.Fatalf("join left = %s, want a", rel.Table)
	}
}

func TestRuleOrderJoinsCrossFallback(t *testing.T) {
	cat := &fakeCat{
		rows: map[string]int{"a": 100, "b": 3},
		cols: map[string][]string{"a": {"x"}, "b": {"y"}},
	}
	s := mustState(t, cat, Query{
		Froms: []From{{Table: "a", Alias: "a"}, {Table: "b", Alias: "b"}},
	})
	apply(t, s, "resolve-columns", "order-joins-greedy")
	cross, ok := s.root.(*Cross)
	if !ok {
		t.Fatalf("root = %T, want Cross", s.root)
	}
	// The smaller table starts the left-deep chain.
	if rel := cross.Left.(*Rel); rel.Table != "b" {
		t.Fatalf("cross starts with %s, want b (smaller)", rel.Table)
	}
}

func TestRuleSplitRandomJoinKeys(t *testing.T) {
	cat := lossCat(12)
	cat.rows["riskclass"] = 2
	cat.cols["riskclass"] = []string{"rid", "premium"}
	s := mustState(t, cat, Query{
		Froms: []From{{Table: "losses", Alias: "a"}, {Table: "riskclass", Alias: "r"}},
		Where: []expr.Expr{expr.B(expr.OpEq, expr.C("a.val"), expr.C("r.rid"))},
	})
	apply(t, s, "resolve-columns", "expand-random-tables", "order-joins-greedy")
	if !apply(t, s, "split-random-join-keys") {
		t.Fatal("a random join key must insert a Split")
	}
	j := s.root.(*Join)
	var split *Split
	if sp, ok := j.Left.(*Split); ok {
		split = sp
	} else if sp, ok := j.Right.(*Split); ok {
		split = sp
	}
	if split == nil {
		t.Fatalf("no Split under the join: left=%T right=%T", j.Left, j.Right)
	}
	if split.Col != "a.val" {
		t.Fatalf("Split column = %s", split.Col)
	}
	// Deterministic keys must not fire the rule.
	s2 := mustState(t, cat, Query{
		Froms: []From{{Table: "losses", Alias: "a"}, {Table: "riskclass", Alias: "r"}},
		Where: []expr.Expr{expr.B(expr.OpEq, expr.C("a.cid"), expr.C("r.rid"))},
	})
	apply(t, s2, "resolve-columns", "expand-random-tables", "order-joins-greedy")
	if apply(t, s2, "split-random-join-keys") {
		t.Fatal("deterministic join keys must not insert a Split")
	}
}

// TestRuleExtractLooperPredicates: a conjunct over random attributes of
// two aliases (the Fig. 2 emp2.sal > emp1.sal) must leave the plan and
// become the looper's final predicate.
func TestRuleExtractLooperPredicates(t *testing.T) {
	cat := lossCat(10)
	s := mustState(t, cat, Query{
		Froms: []From{{Table: "losses", Alias: "l1"}, {Table: "losses", Alias: "l2"}},
		Where: []expr.Expr{
			expr.B(expr.OpEq, expr.C("l1.cid"), expr.C("l2.cid")),
			expr.B(expr.OpGt, expr.C("l2.val"), expr.C("l1.val")),
		},
	})
	apply(t, s, "resolve-columns", "expand-random-tables", "order-joins-greedy")
	if !apply(t, s, "extract-looper-predicates") {
		t.Fatal("multi-seed random predicate must be extracted")
	}
	if len(s.final) != 1 || s.final[0].String() != "(l2.val > l1.val)" {
		t.Fatalf("final = %v", s.final)
	}
	// It must NOT appear in the plan as a Filter.
	Walk(s.root, func(n Node) {
		if f, ok := n.(*Filter); ok && strings.Contains(f.Pred.String(), "l2.val") {
			t.Fatalf("looper predicate still in plan: %s", f.Pred)
		}
	})
}

func TestRuleLiftResidualFilters(t *testing.T) {
	cat := &fakeCat{
		rows: map[string]int{"a": 10, "b": 10},
		cols: map[string][]string{"a": {"x", "k"}, "b": {"y", "k"}},
	}
	s := mustState(t, cat, Query{
		Froms: []From{{Table: "a", Alias: "a"}, {Table: "b", Alias: "b"}},
		Where: []expr.Expr{
			expr.B(expr.OpEq, expr.C("a.k"), expr.C("b.k")),
			expr.B(expr.OpLt, expr.C("a.x"), expr.C("b.y")), // cross-alias, non-equi: residual
		},
	})
	apply(t, s, "resolve-columns", "order-joins-greedy", "extract-looper-predicates")
	if !apply(t, s, "lift-residual-filters") {
		t.Fatal("residual conjunct must lift to a Filter")
	}
	f, ok := s.root.(*Filter)
	if !ok {
		t.Fatalf("root = %T, want Filter", s.root)
	}
	if f.Pred.String() != "(a.x < b.y)" {
		t.Fatalf("residual = %s", f.Pred)
	}
}

func TestRuleMarkDeterministic(t *testing.T) {
	cat := lossCat(10)
	s := mustState(t, cat, Query{
		Froms: []From{{Table: "losses", Alias: "l"}, {Table: "means", Alias: "mm"}},
		Where: []expr.Expr{expr.B(expr.OpEq, expr.C("l.cid"), expr.C("mm.cid"))},
	})
	apply(t, s, "resolve-columns", "expand-random-tables", "order-joins-greedy", "mark-deterministic")
	// The means Rel subtree is deterministic; anything at or above a Seed
	// is not.
	Walk(s.root, func(n Node) {
		switch n := n.(type) {
		case *Rel:
			if !n.P().Det {
				t.Fatalf("Rel(%s) not marked det", n.Table)
			}
		case *Seed, *Instantiate, *Rename, *Join:
			if n.P().Det {
				t.Fatalf("%s wrongly marked det", n.Label())
			}
		}
	})
	if s.root.P().Rows <= 0 {
		t.Fatalf("row estimate missing on root: %v", s.root.P().Rows)
	}
}

// TestBuildFiredTrace: Build runs the full sequence and reports the fired
// rules in catalog order.
func TestBuildFiredTrace(t *testing.T) {
	cat := lossCat(10)
	p, err := Build(cat, Query{
		Froms: []From{{Table: "losses", Alias: "l"}},
		Where: []expr.Expr{expr.B(expr.OpLt, expr.C("cid"), expr.F(5))},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"resolve-columns", "expand-random-tables", "push-filters-below-joins", "mark-deterministic"}
	if len(p.Fired) != len(want) {
		t.Fatalf("fired = %v, want %v", p.Fired, want)
	}
	for i := range want {
		if p.Fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", p.Fired, want)
		}
	}
	if p.Root == nil || len(p.Final) != 0 {
		t.Fatalf("plan = %+v", p)
	}
}

func TestBuildErrors(t *testing.T) {
	cat := lossCat(10)
	cases := []Query{
		{},
		{Froms: []From{{Table: "nope", Alias: "n"}}},
		{Froms: []From{{Table: "means", Alias: "a"}, {Table: "means", Alias: "a"}}},
	}
	for i, q := range cases {
		if _, err := Build(cat, q); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// TestStopSpecInFingerprint: the adaptive stopping rule is part of the
// plan's identity — two statements differing only in their UNTIL clause
// must not share a fingerprint (or a plan-cache entry), while identical
// rules must.
func TestStopSpecInFingerprint(t *testing.T) {
	build := func(stop *StopSpec) string {
		p, err := Build(lossCat(10), Query{
			Froms: []From{{Table: "losses"}},
			Aggs:  []AggItem{{Kind: 0, Expr: expr.C("losses.val")}},
			Stop:  stop,
		})
		if err != nil {
			t.Fatal(err)
		}
		agg, ok := p.Root.(*Aggregate)
		if !ok {
			t.Fatalf("root is %T, want *Aggregate", p.Root)
		}
		if (stop == nil) != (agg.Stop == nil) {
			t.Fatalf("Stop not carried onto Aggregate: %+v", agg.Stop)
		}
		return Fingerprint(p.Root)
	}
	fixed := build(nil)
	a := build(&StopSpec{TargetRelError: 0.01, Confidence: 0.95, MaxSamples: 10000})
	b := build(&StopSpec{TargetRelError: 0.05, Confidence: 0.95, MaxSamples: 10000})
	a2 := build(&StopSpec{TargetRelError: 0.01, Confidence: 0.95, MaxSamples: 10000})
	if fixed == a || a == b {
		t.Errorf("distinct stopping rules share a fingerprint")
	}
	if a != a2 {
		t.Errorf("identical stopping rules should share a fingerprint")
	}
}
