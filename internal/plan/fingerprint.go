package plan

import (
	"fmt"
	"strings"
)

// Fingerprint canonically serializes a logical subtree. It is the key of
// the engine-level deterministic-prefix materialization cache: two plans
// whose deterministic prefixes fingerprint identically (same operators,
// same tables and aliases, same predicates and projections) share one
// materialized result as long as the catalog has not changed (the cache
// additionally keys on the engine's DDL epoch).
//
// The serialization covers every field that influences the subtree's
// output tuples, and is lower-cased where the engine is case-insensitive
// (table names, aliases), so reformatted copies of one query share an
// entry.
func Fingerprint(n Node) string {
	var b strings.Builder
	fingerprintInto(&b, n)
	return b.String()
}

func fingerprintInto(b *strings.Builder, n Node) {
	switch n := n.(type) {
	case *Rel:
		fmt.Fprintf(b, "rel(%s as %s)", strings.ToLower(n.Table), strings.ToLower(n.Alias))
	case *Seed:
		fmt.Fprintf(b, "seed(%s;", strings.ToLower(n.VG))
		for i, p := range n.Params {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%s", p)
		}
		b.WriteByte(';')
		b.WriteString(strings.ToLower(strings.Join(n.OutNames, ",")))
		b.WriteByte(';')
		fingerprintInto(b, n.Child)
		b.WriteByte(')')
	case *Instantiate:
		b.WriteString("inst(")
		fingerprintInto(b, n.Child)
		b.WriteByte(')')
	case *Filter:
		fmt.Fprintf(b, "filter(%s;", n.Pred)
		fingerprintInto(b, n.Child)
		b.WriteByte(')')
	case *Project:
		fmt.Fprintf(b, "project(%s=>%s;",
			strings.ToLower(strings.Join(n.Cols, ",")), strings.ToLower(strings.Join(n.Names, ",")))
		fingerprintInto(b, n.Child)
		b.WriteByte(')')
	case *Join:
		b.WriteString("join(")
		for i := range n.LeftKeys {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%s=%s", strings.ToLower(n.LeftKeys[i]), strings.ToLower(n.RightKeys[i]))
		}
		b.WriteByte(';')
		fingerprintInto(b, n.Left)
		b.WriteByte(';')
		fingerprintInto(b, n.Right)
		b.WriteByte(')')
	case *Cross:
		b.WriteString("cross(")
		fingerprintInto(b, n.Left)
		b.WriteByte(';')
		fingerprintInto(b, n.Right)
		b.WriteByte(')')
	case *Split:
		fmt.Fprintf(b, "split(%s;", strings.ToLower(n.Col))
		fingerprintInto(b, n.Child)
		b.WriteByte(')')
	case *Rename:
		fmt.Fprintf(b, "rename(%s;", strings.ToLower(n.Alias))
		fingerprintInto(b, n.Child)
		b.WriteByte(')')
	case *Aggregate:
		b.WriteString("agg(")
		for i, a := range n.Aggs {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%s", a)
		}
		b.WriteByte(';')
		for i, g := range n.GroupBy {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%s", g)
		}
		b.WriteByte(';')
		if n.Having != nil {
			fmt.Fprintf(b, "%s", n.Having)
		}
		b.WriteByte(';')
		if n.Stop != nil {
			fmt.Fprintf(b, "until(%g,%g,%d)", n.Stop.TargetRelError, n.Stop.Confidence, n.Stop.MaxSamples)
		}
		b.WriteByte(';')
		fingerprintInto(b, n.Child)
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "%T", n)
	}
}
