package plan

import (
	"fmt"
	"strings"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/vg"
)

// Lower compiles a logical tree into the physical exec operators. The
// catalog resolves Scan schemas and the registry resolves VG functions;
// schema errors (unknown tables, columns, key mismatches) surface here.
//
// Maximal deterministic subtrees (the Det marks of the mark-deterministic
// rule) other than bare table scans are lowered under an exec.Materialize
// node carrying the subtree's Fingerprint: their result is computed once,
// shared across replicate-shard workers, and — through the engine's
// deterministic-prefix cache — across runs, so prepared re-execution skips
// the deterministic scan/join/filter prefix entirely. Bare scans are left
// unwrapped: the workspace-level scan cache already shares their batches,
// and wrapping every leaf would churn the prefix LRU for no win.
func Lower(root Node, cat *storage.Catalog, vgs *vg.Registry) (exec.Node, error) {
	return lowerNode(root, cat, vgs, false)
}

// lowerNode lowers one logical node. inDet reports whether an ancestor is
// already deterministic (so this node is part of a larger materialized
// subtree and must not be wrapped again).
func lowerNode(root Node, cat *storage.Catalog, vgs *vg.Registry, inDet bool) (exec.Node, error) {
	det := root.P().Det
	childDet := inDet || det
	var node exec.Node
	var err error
	switch n := root.(type) {
	case *Rel:
		node, err = exec.NewScan(cat, n.Table, n.Alias)
	case *Seed:
		var child exec.Node
		child, err = lowerNode(n.Child, cat, vgs, childDet)
		if err != nil {
			return nil, err
		}
		gen, ok := vgs.Lookup(n.VG)
		if !ok {
			return nil, fmt.Errorf("plan: VG function %q not registered", n.VG)
		}
		node, err = exec.NewSeed(child, gen, n.Params, n.OutNames)
	case *Instantiate:
		var child exec.Node
		child, err = lowerNode(n.Child, cat, vgs, childDet)
		if err != nil {
			return nil, err
		}
		node = &exec.Instantiate{Child: child}
	case *Filter:
		var child exec.Node
		child, err = lowerNode(n.Child, cat, vgs, childDet)
		if err != nil {
			return nil, err
		}
		node = &exec.Select{Child: child, Pred: n.Pred}
	case *Project:
		var child exec.Node
		child, err = lowerNode(n.Child, cat, vgs, childDet)
		if err != nil {
			return nil, err
		}
		node, err = exec.NewProjectAs(child, n.Cols, n.Names)
	case *Join:
		var left, right exec.Node
		left, err = lowerNode(n.Left, cat, vgs, childDet)
		if err != nil {
			return nil, err
		}
		right, err = lowerNode(n.Right, cat, vgs, childDet)
		if err != nil {
			return nil, err
		}
		var hj *exec.HashJoin
		hj, err = exec.NewHashJoin(left, right, n.LeftKeys, n.RightKeys, nil)
		if err == nil {
			// Pre-size the build-side hash map from the optimizer's
			// cardinality estimate for the right subtree.
			hj.BuildRows = int(n.Right.P().Rows)
			node = hj
		}
	case *Cross:
		var left, right exec.Node
		left, err = lowerNode(n.Left, cat, vgs, childDet)
		if err != nil {
			return nil, err
		}
		right, err = lowerNode(n.Right, cat, vgs, childDet)
		if err != nil {
			return nil, err
		}
		node = exec.NewCross(left, right, nil)
	case *Split:
		var child exec.Node
		child, err = lowerNode(n.Child, cat, vgs, childDet)
		if err != nil {
			return nil, err
		}
		node = &exec.Split{Child: child, Col: n.Col}
	case *Rename:
		var child exec.Node
		child, err = lowerNode(n.Child, cat, vgs, childDet)
		if err != nil {
			return nil, err
		}
		node = exec.NewRename(child, n.Alias)
	case *Aggregate:
		// Aggregate is transparent to prefix materialization: aggregate
		// values vary per DB version, so the node itself is never wrapped;
		// its (maximal deterministic) child subtree is the wrap point.
		var child exec.Node
		child, err = lowerNode(n.Child, cat, vgs, inDet)
		if err != nil {
			return nil, err
		}
		specs := make([]exec.AggSpec, len(n.Aggs))
		for i, a := range n.Aggs {
			specs[i] = exec.AggSpec{Kind: a.Kind, Expr: a.Expr, Name: a.Name()}
		}
		names := make([]string, len(n.GroupBy))
		for i, g := range n.GroupBy {
			names[i] = groupColName(g)
		}
		return exec.NewAggregate(child, n.GroupBy, names, specs, n.Having)
	default:
		return nil, fmt.Errorf("plan: cannot lower %T", root)
	}
	if err != nil {
		return nil, err
	}
	if det && !inDet {
		if _, isRel := root.(*Rel); !isRel {
			node = &exec.Materialize{Child: node, Fingerprint: Fingerprint(root)}
		}
	}
	return node, nil
}

// groupColName derives the output column name of a grouping expression:
// the unqualified column name for a bare reference, the rendered
// expression otherwise.
func groupColName(g expr.Expr) string {
	if c, ok := g.(*expr.Col); ok {
		name := c.Name
		if i := strings.LastIndexByte(name, '.'); i >= 0 {
			name = name[i+1:]
		}
		return name
	}
	return g.String()
}
