package plan

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/vg"
)

// Lower compiles a logical tree into the physical exec operators. The
// catalog resolves Scan schemas and the registry resolves VG functions;
// schema errors (unknown tables, columns, key mismatches) surface here.
func Lower(root Node, cat *storage.Catalog, vgs *vg.Registry) (exec.Node, error) {
	switch n := root.(type) {
	case *Rel:
		return exec.NewScan(cat, n.Table, n.Alias)
	case *Seed:
		child, err := Lower(n.Child, cat, vgs)
		if err != nil {
			return nil, err
		}
		gen, ok := vgs.Lookup(n.VG)
		if !ok {
			return nil, fmt.Errorf("plan: VG function %q not registered", n.VG)
		}
		return exec.NewSeed(child, gen, n.Params, n.OutNames)
	case *Instantiate:
		child, err := Lower(n.Child, cat, vgs)
		if err != nil {
			return nil, err
		}
		return &exec.Instantiate{Child: child}, nil
	case *Filter:
		child, err := Lower(n.Child, cat, vgs)
		if err != nil {
			return nil, err
		}
		return &exec.Select{Child: child, Pred: n.Pred}, nil
	case *Project:
		child, err := Lower(n.Child, cat, vgs)
		if err != nil {
			return nil, err
		}
		return exec.NewProjectAs(child, n.Cols, n.Names)
	case *Join:
		left, err := Lower(n.Left, cat, vgs)
		if err != nil {
			return nil, err
		}
		right, err := Lower(n.Right, cat, vgs)
		if err != nil {
			return nil, err
		}
		return exec.NewHashJoin(left, right, n.LeftKeys, n.RightKeys, nil)
	case *Cross:
		left, err := Lower(n.Left, cat, vgs)
		if err != nil {
			return nil, err
		}
		right, err := Lower(n.Right, cat, vgs)
		if err != nil {
			return nil, err
		}
		return exec.NewCross(left, right, nil), nil
	case *Split:
		child, err := Lower(n.Child, cat, vgs)
		if err != nil {
			return nil, err
		}
		return &exec.Split{Child: child, Col: n.Col}, nil
	case *Rename:
		child, err := Lower(n.Child, cat, vgs)
		if err != nil {
			return nil, err
		}
		return exec.NewRename(child, n.Alias), nil
	}
	return nil, fmt.Errorf("plan: cannot lower %T", root)
}
