package plan

import (
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/vg"
)

// detJoinCatalog builds two deterministic tables joined below a random
// table: the canonical non-trivial deterministic prefix.
func detJoinCatalog() (*storageCat, *vg.Registry) {
	cat := storage.NewCatalog()
	means := storage.NewTable("means", types.NewSchema(
		types.Column{Name: "cid", Kind: types.KindInt},
		types.Column{Name: "m", Kind: types.KindFloat},
	))
	accounts := storage.NewTable("accounts", types.NewSchema(
		types.Column{Name: "aid", Kind: types.KindInt},
		types.Column{Name: "rid", Kind: types.KindInt},
	))
	regions := storage.NewTable("regions", types.NewSchema(
		types.Column{Name: "rid", Kind: types.KindInt},
		types.Column{Name: "w", Kind: types.KindFloat},
	))
	for i := 0; i < 6; i++ {
		means.MustAppend(types.Row{types.NewInt(int64(i)), types.NewFloat(3)})
		accounts.MustAppend(types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 2))})
	}
	regions.MustAppend(types.Row{types.NewInt(0), types.NewFloat(1)})
	regions.MustAppend(types.Row{types.NewInt(1), types.NewFloat(2)})
	cat.Put(means)
	cat.Put(accounts)
	cat.Put(regions)
	pcat := &storageCat{cat: cat, rand: map[string]*RandomMeta{"losses": {
		ParamTable: "means", VG: "Normal",
		VGParams: []expr.Expr{expr.C("m"), expr.F(1)},
		NumOuts:  1,
		Columns: []RandomColMeta{
			{Name: "cid", FromParam: "cid"},
			{Name: "val", VGOut: 0},
		},
	}}}
	return pcat, vg.NewRegistry()
}

func detJoinQuery() Query {
	return Query{
		Froms: []From{{Table: "losses", Alias: "losses"}, {Table: "accounts", Alias: "accounts"}, {Table: "regions", Alias: "regions"}},
		Where: []expr.Expr{
			expr.B(expr.OpEq, expr.C("losses.cid"), expr.C("accounts.aid")),
			expr.B(expr.OpEq, expr.C("accounts.rid"), expr.C("regions.rid")),
		},
	}
}

// TestLowerWrapsMaximalDetSubtrees: the deterministic accounts ⋈ regions
// prefix lowers under exactly one Materialize node with a non-empty
// fingerprint; bare scans (the parameter-table leaf) are not wrapped.
func TestLowerWrapsMaximalDetSubtrees(t *testing.T) {
	pcat, vgs := detJoinCatalog()
	p, err := Build(pcat, detJoinQuery())
	if err != nil {
		t.Fatal(err)
	}
	node, err := Lower(p.Root, pcat.cat, vgs)
	if err != nil {
		t.Fatal(err)
	}
	var mats []*exec.Materialize
	var walkExec func(exec.Node)
	walkExec = func(n exec.Node) {
		if m, ok := n.(*exec.Materialize); ok {
			mats = append(mats, m)
		}
		for _, c := range n.Children() {
			walkExec(c)
		}
	}
	walkExec(node)
	if len(mats) != 1 {
		t.Fatalf("want exactly 1 Materialize, got %d in:\n%s", len(mats), exec.FormatPlan(node))
	}
	m := mats[0]
	if m.Fingerprint == "" {
		t.Fatal("Materialize has no fingerprint")
	}
	if !m.Deterministic() {
		t.Fatal("Materialize must report deterministic")
	}
	if _, ok := m.Child.(*exec.HashJoin); !ok {
		t.Fatalf("expected the deterministic join under Materialize, got %T", m.Child)
	}
	if !strings.Contains(exec.FormatPlan(node), "Materialize [det]") {
		t.Fatalf("FormatPlan missing Materialize marker:\n%s", exec.FormatPlan(node))
	}
	// Nested deterministic nodes must not be re-wrapped.
	var inner func(exec.Node)
	inner = func(n exec.Node) {
		if _, ok := n.(*exec.Materialize); ok {
			t.Fatalf("nested Materialize inside a materialized subtree:\n%s", exec.FormatPlan(node))
		}
		for _, c := range n.Children() {
			inner(c)
		}
	}
	inner(m.Child)
}

// TestFingerprintStability: fingerprints are deterministic across
// re-plans of one query, distinguish different subtrees, and are
// case-normalized on table names and aliases.
func TestFingerprintStability(t *testing.T) {
	pcat, _ := detJoinCatalog()
	p1, err := Build(pcat, detJoinQuery())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Build(pcat, detJoinQuery())
	if err != nil {
		t.Fatal(err)
	}
	if f1, f2 := Fingerprint(p1.Root), Fingerprint(p2.Root); f1 != f2 {
		t.Fatalf("re-planning changed the fingerprint:\n%s\nvs\n%s", f1, f2)
	}
	a := &Rel{Table: "T1", Alias: "A"}
	b := &Rel{Table: "t1", Alias: "a"}
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("fingerprint must be case-insensitive on tables/aliases")
	}
	c := &Rel{Table: "t2", Alias: "a"}
	if Fingerprint(a) == Fingerprint(c) {
		t.Fatal("different tables must fingerprint differently")
	}
	j1 := &Join{Left: a, Right: c, LeftKeys: []string{"a.x"}, RightKeys: []string{"a.y"}}
	j2 := &Join{Left: a, Right: c, LeftKeys: []string{"a.x"}, RightKeys: []string{"a.z"}}
	if Fingerprint(j1) == Fingerprint(j2) {
		t.Fatal("different join keys must fingerprint differently")
	}
}
