// Package plan is the logical-plan layer between the sqlish/QueryBuilder
// surface and the physical operators of internal/exec. A query is first
// built into a tree of logical operators (Rel, Seed, Instantiate, Filter,
// Project, Join, Cross, Split, Rename), then rewritten by a sequence of
// named rules — predicate classification and pushdown (paper App. A),
// Split insertion before joins on random keys (§8), greedy size-based join
// ordering over catalog row counts, deterministic-subtree marking for the
// materialization cache — and finally lowered to exec nodes. The rewrite
// trace and both trees are exposed through EXPLAIN.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/exec"
	"repro/internal/expr"
)

// Props are planner annotations attached to every logical node.
type Props struct {
	// Det marks a randomness-free subtree; the exec layer materializes
	// such subtrees once and serves re-executions from cache.
	Det bool
	// Rows is the estimated output cardinality (catalog row counts with
	// textbook selectivity factors).
	Rows float64
}

// Node is one logical operator. Trees are immutable once built; rules
// replace subtrees rather than mutating them in place (except for the
// Props annotations).
type Node interface {
	// Children returns the operator's inputs, left to right.
	Children() []Node
	// Label renders the operator with its arguments (no annotations).
	Label() string
	// P exposes the planner annotations for rules to fill in.
	P() *Props
}

// Rel is a scan of an ordinary catalog table under an alias.
type Rel struct {
	Props
	Table string
	Alias string
}

// Seed attaches a TS-seed per input tuple and appends the VG function's
// output columns as random attribute slots (paper §5).
type Seed struct {
	Props
	Child    Node
	VG       string
	Params   []expr.Expr
	OutNames []string
}

// Instantiate materializes stream-value windows for the TS-seeds
// referenced by its input.
type Instantiate struct {
	Props
	Child Node
}

// Filter keeps tuples satisfying Pred; predicates over random attributes
// become isPres vectors at the physical layer.
type Filter struct {
	Props
	Child Node
	Pred  expr.Expr
}

// Project narrows the schema to Cols, renaming column i to Names[i].
type Project struct {
	Props
	Child Node
	Cols  []string
	Names []string
}

// Join is an equi-join: LeftKeys[i] = RightKeys[i].
type Join struct {
	Props
	Left, Right         Node
	LeftKeys, RightKeys []string
}

// Cross is the cartesian product — the fallback when no equi-join conjunct
// connects two inputs.
type Cross struct {
	Props
	Left, Right Node
}

// Split converts a random attribute into a deterministic one by emitting
// one tuple per distinct materialized value (paper §8); it must sit below
// any join on that attribute.
type Split struct {
	Props
	Child Node
	Col   string
}

// Rename re-qualifies every column of its child with a new alias.
type Rename struct {
	Props
	Child Node
	Alias string
}

// Aggregate is the aggregation root of a query: grouping expressions
// (deterministic, paper App. A), the multi-item aggregate list, and the
// optional HAVING predicate over the aggregation output. It is placed
// above the whole join/filter tree by the place-aggregate rule, so
// filters always sit below it, and it lowers to exec.Aggregate.
type Aggregate struct {
	Props
	Child   Node
	GroupBy []expr.Expr
	Aggs    []AggItem
	Having  expr.Expr
	// Stop, when non-nil, is the adaptive UNTIL ERROR stopping rule. It
	// changes how many Monte Carlo replicates run, not what each replicate
	// computes, but it is part of the plan's identity (and fingerprint):
	// two statements differing only in their stopping rule are different
	// queries.
	Stop *StopSpec
}

// StopSpec is the adaptive stopping rule carried on an Aggregate node —
// the plan-layer form of MONTECARLO(UNTIL ERROR < eps AT conf%, MAX n).
// It lives here rather than in internal/gibbs so the planner does not
// depend on the executor; the engine converts it to a gibbs.StopRule.
type StopSpec struct {
	// TargetRelError is the relative CI half-width target.
	TargetRelError float64
	// Confidence is the CI level in (0,1); 0 selects the engine default.
	Confidence float64
	// MaxSamples caps total replicates; 0 selects the engine default.
	MaxSamples int
}

// AggItem is one item of the aggregate select list.
type AggItem struct {
	// Kind is the aggregate operation (exec.AggSum/AggCount/AggAvg).
	Kind exec.AggKind
	// Expr is the aggregated expression; nil for COUNT(*).
	Expr expr.Expr
	// Alias names the output column ("" derives a name from the
	// rendered aggregate).
	Alias string
}

// String renders the item as it appears in EXPLAIN.
func (a AggItem) String() string {
	body := "*"
	if a.Expr != nil {
		body = a.Expr.String()
	}
	out := fmt.Sprintf("%s(%s)", a.Kind, body)
	if a.Alias != "" {
		out += " AS " + a.Alias
	}
	return out
}

// Name returns the output column name of the item.
func (a AggItem) Name() string {
	if a.Alias != "" {
		return a.Alias
	}
	body := "*"
	if a.Expr != nil {
		body = a.Expr.String()
	}
	return fmt.Sprintf("%s(%s)", a.Kind, body)
}

// P implements Node for every operator via the embedded Props.

func (n *Rel) P() *Props         { return &n.Props }
func (n *Seed) P() *Props        { return &n.Props }
func (n *Instantiate) P() *Props { return &n.Props }
func (n *Filter) P() *Props      { return &n.Props }
func (n *Project) P() *Props     { return &n.Props }
func (n *Join) P() *Props        { return &n.Props }
func (n *Cross) P() *Props       { return &n.Props }
func (n *Split) P() *Props       { return &n.Props }
func (n *Rename) P() *Props      { return &n.Props }
func (n *Aggregate) P() *Props   { return &n.Props }

// Children implements Node.

func (n *Rel) Children() []Node         { return nil }
func (n *Seed) Children() []Node        { return []Node{n.Child} }
func (n *Instantiate) Children() []Node { return []Node{n.Child} }
func (n *Filter) Children() []Node      { return []Node{n.Child} }
func (n *Project) Children() []Node     { return []Node{n.Child} }
func (n *Join) Children() []Node        { return []Node{n.Left, n.Right} }
func (n *Cross) Children() []Node       { return []Node{n.Left, n.Right} }
func (n *Split) Children() []Node       { return []Node{n.Child} }
func (n *Rename) Children() []Node      { return []Node{n.Child} }
func (n *Aggregate) Children() []Node   { return []Node{n.Child} }

// Label implements Node.

func (n *Rel) Label() string         { return fmt.Sprintf("Rel(%s AS %s)", n.Table, n.Alias) }
func (n *Seed) Label() string        { return fmt.Sprintf("Seed(%s)", n.VG) }
func (n *Instantiate) Label() string { return "Instantiate" }
func (n *Filter) Label() string      { return fmt.Sprintf("Filter(%s)", n.Pred) }
func (n *Project) Label() string     { return fmt.Sprintf("Project[%s]", strings.Join(n.Names, ", ")) }
func (n *Join) Label() string {
	pairs := make([]string, len(n.LeftKeys))
	for i := range n.LeftKeys {
		pairs[i] = n.LeftKeys[i] + " = " + n.RightKeys[i]
	}
	return fmt.Sprintf("Join(%s)", strings.Join(pairs, ", "))
}
func (n *Cross) Label() string  { return "Cross" }
func (n *Split) Label() string  { return fmt.Sprintf("Split(%s)", n.Col) }
func (n *Rename) Label() string { return fmt.Sprintf("Rename(%s)", n.Alias) }
func (n *Aggregate) Label() string {
	parts := make([]string, len(n.Aggs))
	for i, a := range n.Aggs {
		parts[i] = a.String()
	}
	out := "Aggregate[" + strings.Join(parts, ", ")
	if len(n.GroupBy) > 0 {
		keys := make([]string, len(n.GroupBy))
		for i, g := range n.GroupBy {
			keys[i] = g.String()
		}
		out += "; group by " + strings.Join(keys, ", ")
	}
	if n.Having != nil {
		out += "; having " + n.Having.String()
	}
	return out + "]"
}

// Format renders the logical tree as an indented listing with the Props
// annotations, one node per line — the "logical plan" block of EXPLAIN.
func Format(root Node) string {
	var b strings.Builder
	formatInto(&b, root, 0)
	return b.String()
}

func formatInto(b *strings.Builder, n Node, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(n.Label())
	p := n.P()
	b.WriteString(fmt.Sprintf(" [rows~%.0f", p.Rows))
	if p.Det {
		b.WriteString(" det")
	}
	b.WriteString("]\n")
	for _, c := range n.Children() {
		formatInto(b, c, depth+1)
	}
}

// Walk visits every node of the tree, parents before children.
func Walk(n Node, f func(Node)) {
	f(n)
	for _, c := range n.Children() {
		Walk(c, f)
	}
}
