package plan

import (
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/prng"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/vg"
)

// storageCat adapts a real storage.Catalog plus random metadata for
// end-to-end Build+Lower tests.
type storageCat struct {
	cat  *storage.Catalog
	rand map[string]*RandomMeta
}

func (c *storageCat) TableRows(name string) (int, bool) {
	t, ok := c.cat.Get(name)
	if !ok {
		return 0, false
	}
	return t.NumRows(), true
}

func (c *storageCat) TableColumns(name string) ([]string, bool) {
	t, ok := c.cat.Get(name)
	if !ok {
		return nil, false
	}
	cols := t.Schema().Columns()
	names := make([]string, len(cols))
	for i, col := range cols {
		names[i] = col.Name
	}
	return names, true
}

func (c *storageCat) Random(name string) (*RandomMeta, bool) {
	rm, ok := c.rand[strings.ToLower(name)]
	return rm, ok
}

// TestBuildLowerRun plans the §2 loss query, lowers it, and executes the
// physical plan: the logical layer must produce a runnable exec tree.
func TestBuildLowerRun(t *testing.T) {
	cat := storage.NewCatalog()
	means := storage.NewTable("means", types.NewSchema(
		types.Column{Name: "cid", Kind: types.KindInt},
		types.Column{Name: "m", Kind: types.KindFloat},
	))
	for i := 0; i < 5; i++ {
		means.MustAppend(types.Row{types.NewInt(int64(i)), types.NewFloat(3)})
	}
	cat.Put(means)
	pcat := &storageCat{cat: cat, rand: map[string]*RandomMeta{"losses": {
		ParamTable: "means",
		VG:         "Normal",
		VGParams:   []expr.Expr{expr.C("m"), expr.F(1)},
		NumOuts:    1,
		Columns: []RandomColMeta{
			{Name: "cid", FromParam: "cid"},
			{Name: "val", VGOut: 0},
		},
	}}}
	p, err := Build(pcat, Query{
		Froms: []From{{Table: "losses", Alias: "l"}},
		Where: []expr.Expr{expr.B(expr.OpLt, expr.C("cid"), expr.I(3))},
	})
	if err != nil {
		t.Fatal(err)
	}
	node, err := Lower(p.Root, cat, vg.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	ws := exec.NewWorkspace(cat, prng.NewStream(7), 32)
	out, err := ws.Run(node)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("tuples = %d, want 3 (cid < 3)", len(out))
	}
	for _, tu := range out {
		if len(tu.Rand) != 1 {
			t.Fatalf("tuple lacks its random slot: %+v", tu)
		}
	}
	// The physical tree mirrors the logical one.
	phys := exec.FormatPlan(node)
	for _, op := range []string{"Select", "Rename(l)", "Project", "Instantiate", "Seed(Normal)", "Scan(means AS __param)"} {
		if !strings.Contains(phys, op) {
			t.Fatalf("physical plan missing %s:\n%s", op, phys)
		}
	}
}

// TestLowerErrors: unknown tables and VG functions surface as errors.
func TestLowerErrors(t *testing.T) {
	cat := storage.NewCatalog()
	if _, err := Lower(&Rel{Table: "nope", Alias: "n"}, cat, vg.NewRegistry()); err == nil {
		t.Fatal("unknown table must error")
	}
	if _, err := Lower(&Seed{Child: &Rel{Table: "nope", Alias: "n"}, VG: "NoVG"}, cat, vg.NewRegistry()); err == nil {
		t.Fatal("bad child must error")
	}
}

// TestFormat renders annotations.
func TestFormat(t *testing.T) {
	n := &Filter{Child: &Rel{Table: "t", Alias: "t"}, Pred: expr.B(expr.OpLt, expr.C("t.a"), expr.I(1))}
	n.Props = Props{Det: true, Rows: 10}
	n.Child.(*Rel).Props = Props{Det: true, Rows: 100}
	got := Format(n)
	want := "Filter((t.a < 1)) [rows~10 det]\n  Rel(t AS t) [rows~100 det]\n"
	if got != want {
		t.Fatalf("Format:\n%q\nwant\n%q", got, want)
	}
}
