package plan

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
)

// From is one FROM-clause entry; an empty alias defaults to the table name.
type From struct {
	Table string
	Alias string
}

// Query is the planner's input: FROM items, WHERE conjuncts, and — since
// ISSUE 5 made aggregation a first-class operator — the aggregate select
// list with optional grouping expressions and HAVING predicate. When Aggs
// is empty the plan is a bare tuple-stream plan (used by low-level tests
// and benchmarks); otherwise the place-aggregate rule roots the tree in
// an Aggregate node.
type Query struct {
	Froms []From
	Where []expr.Expr
	// GroupBy are the grouping expressions; they must be deterministic
	// (paper App. A) — referencing a VG-generated attribute is an error.
	GroupBy []expr.Expr
	// Aggs is the aggregate select list.
	Aggs []AggItem
	// Having is a predicate over the aggregation output (grouping columns
	// and aggregate aliases), evaluated per group per Monte Carlo run.
	Having expr.Expr
	// Stop, when non-nil, carries the adaptive UNTIL ERROR stopping rule
	// onto the Aggregate node (and into the plan fingerprint).
	Stop *StopSpec
}

// Plan is the planner's output: the rewritten logical tree, the conjuncts
// that must move into the looper's final predicate (paper App. A), and the
// trace of rewrite rules that fired.
type Plan struct {
	Root Node
	// Final collects conjuncts spanning random attributes of several
	// aliases; they cannot be evaluated as presence vectors and become
	// the Gibbs looper's final predicate.
	Final []expr.Expr
	// Fired lists the names of the rewrite rules that changed the plan,
	// in application order.
	Fired []string
}

// conjunct is one WHERE conjunct with its classification (paper App. A):
// which aliases it references, and for which of them it touches
// VG-generated (random) attributes.
type conjunct struct {
	e       expr.Expr
	aliases []string // sorted, lower-cased
	rand    []string // sorted, lower-cased; subset of aliases
	used    bool
}

func (c *conjunct) touches(alias string) bool {
	for _, a := range c.aliases {
		if a == alias {
			return true
		}
	}
	return false
}

// state is the mutable planning context the rewrite rules operate on.
// Before join ordering the plan is a forest (one subtree per FROM item)
// plus the conjunct pool; order-joins-greedy collapses it into root.
type state struct {
	cat     Catalog
	froms   []From
	subs    []Node
	conjs   []conjunct
	final   []expr.Expr
	root    Node
	groupBy []expr.Expr
	aggs    []AggItem
	having  expr.Expr
	stop    *StopSpec

	aliasIdx map[string]int    // lower-cased alias -> froms index
	cols     []map[string]bool // per FROM item: lower-cased column names
	randCols []map[string]bool // per FROM item: lower-cased VG-generated columns
}

// Build plans a query: it seeds one Rel per FROM item, applies the rule
// sequence (see Rules), and returns the finished plan with its rewrite
// trace.
func Build(cat Catalog, q Query) (*Plan, error) {
	s, err := newState(cat, q)
	if err != nil {
		return nil, err
	}
	p := &Plan{}
	for _, r := range Rules {
		changed, err := r.apply(s)
		if err != nil {
			return nil, err
		}
		if changed {
			p.Fired = append(p.Fired, r.Name)
		}
	}
	p.Root = s.root
	p.Final = s.final
	return p, nil
}

// newState validates the FROM items against the catalog and seeds the
// planning context: one Rel per item, the split WHERE conjuncts, and the
// per-alias column metadata.
func newState(cat Catalog, q Query) (*state, error) {
	if len(q.Froms) == 0 {
		return nil, fmt.Errorf("plan: query has no FROM items")
	}
	s := &state{
		cat:      cat,
		froms:    q.Froms,
		subs:     make([]Node, len(q.Froms)),
		aliasIdx: make(map[string]int, len(q.Froms)),
		cols:     make([]map[string]bool, len(q.Froms)),
		randCols: make([]map[string]bool, len(q.Froms)),
	}
	for i, f := range q.Froms {
		if f.Alias == "" {
			f.Alias = f.Table
			s.froms[i].Alias = f.Table
		}
		key := strings.ToLower(f.Alias)
		if _, dup := s.aliasIdx[key]; dup {
			return nil, fmt.Errorf("plan: duplicate alias %q", f.Alias)
		}
		s.aliasIdx[key] = i
		cols := map[string]bool{}
		rand := map[string]bool{}
		if rm, ok := cat.Random(f.Table); ok {
			for _, c := range rm.Columns {
				cols[strings.ToLower(c.Name)] = true
				if c.FromParam == "" {
					rand[strings.ToLower(c.Name)] = true
				}
			}
		} else if names, ok := cat.TableColumns(f.Table); ok {
			for _, n := range names {
				cols[strings.ToLower(n)] = true
			}
		} else {
			return nil, fmt.Errorf("plan: table %q not registered", f.Table)
		}
		s.cols[i], s.randCols[i] = cols, rand
		s.subs[i] = &Rel{Table: f.Table, Alias: f.Alias}
	}
	for _, w := range q.Where {
		for _, c := range expr.SplitConjuncts(w) {
			s.conjs = append(s.conjs, conjunct{e: c})
		}
	}
	s.groupBy = append([]expr.Expr(nil), q.GroupBy...)
	s.aggs = append([]AggItem(nil), q.Aggs...)
	s.having = q.Having
	s.stop = q.Stop
	if q.Having != nil && len(q.Aggs) == 0 {
		return nil, fmt.Errorf("plan: HAVING requires an aggregate select list")
	}
	return s, nil
}

// qualifierOf splits a qualified column name, returning the lower-cased
// alias part.
func qualifierOf(col string) (string, bool) {
	i := strings.IndexByte(col, '.')
	if i < 0 {
		return "", false
	}
	return strings.ToLower(col[:i]), true
}

// isRandomColumn reports whether the qualified column names a VG-generated
// attribute of its alias.
func (s *state) isRandomColumn(col string) bool {
	a, ok := qualifierOf(col)
	if !ok {
		return false
	}
	i, ok := s.aliasIdx[a]
	if !ok {
		return false
	}
	base := strings.ToLower(col[strings.IndexByte(col, '.')+1:])
	return s.randCols[i][base]
}

// classify fills a conjunct's alias sets from its (resolved) column
// references. Every qualifier must name a FROM alias.
func (s *state) classify(c *conjunct) error {
	aliases := map[string]bool{}
	rand := map[string]bool{}
	for _, col := range expr.Columns(c.e) {
		a, ok := qualifierOf(col)
		if !ok {
			// resolve-columns runs first; reaching here means a column
			// survived unqualified, which only happens for single-table
			// queries where the sole alias is implied.
			a = strings.ToLower(s.froms[0].Alias)
		}
		if _, known := s.aliasIdx[a]; !known {
			return fmt.Errorf("plan: unknown alias %q in column %q (FROM aliases: %s)", a, col, s.aliasList())
		}
		aliases[a] = true
		if s.isRandomColumn(col) {
			rand[a] = true
		}
	}
	c.aliases, c.rand = sortedKeys(aliases), sortedKeys(rand)
	return nil
}

func (s *state) aliasList() string {
	names := make([]string, len(s.froms))
	for i, f := range s.froms {
		names[i] = f.Alias
	}
	return strings.Join(names, ", ")
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
