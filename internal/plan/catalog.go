package plan

import "repro/internal/expr"

// Catalog supplies the table metadata the planner needs: row counts for
// join ordering, column names for unqualified-reference resolution, and
// random-table definitions for the Seed/Instantiate expansion.
type Catalog interface {
	// TableRows reports the row count of an ordinary catalog table.
	TableRows(name string) (rows int, ok bool)
	// TableColumns lists an ordinary table's column names.
	TableColumns(name string) ([]string, bool)
	// Random returns the definition of a random (uncertain) table, if
	// name denotes one.
	Random(name string) (*RandomMeta, bool)
}

// RandomMeta describes a random table: the paper's
// CREATE TABLE ... FOR EACH row IN paramTable WITH alias AS VG(VALUES(...)).
type RandomMeta struct {
	// ParamTable is the ordinary table the FOR EACH clause iterates over.
	ParamTable string
	// VG names the registered variable-generation function.
	VG string
	// VGParams are evaluated against each parameter-table row.
	VGParams []expr.Expr
	// NumOuts is the VG function's output arity.
	NumOuts int
	// Columns define the random table's schema.
	Columns []RandomColMeta
}

// RandomColMeta maps one output column to its source: a parameter-table
// column (FromParam non-empty) or a VG output index.
type RandomColMeta struct {
	Name      string
	FromParam string
	VGOut     int
}
