package plan

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/expr"
)

// A Rule is one named rewrite step. Build applies the Rules sequence in
// order; each rule reports whether it changed the plan, and the names of
// the rules that did form the EXPLAIN trace.
type Rule struct {
	// Name identifies the rule in EXPLAIN output and tests.
	Name string
	// Doc is a one-line description for the rule catalog.
	Doc string

	apply func(*state) (bool, error)
}

// Rules is the rule catalog, in application order.
var Rules = []Rule{
	{"resolve-columns",
		"qualify unqualified column references against the FROM aliases; ambiguity is an error",
		ruleResolveColumns},
	{"expand-random-tables",
		"expand each random-table scan into Rename(Project(Instantiate(Seed(Rel(param)))))",
		ruleExpandRandomTables},
	{"push-filters-below-joins",
		"push single-alias conjuncts onto that alias's subtree, below all joins",
		rulePushFilters},
	{"order-joins-greedy",
		"build a left-deep join tree greedily by estimated size from catalog row counts",
		ruleOrderJoins},
	{"split-random-join-keys",
		"insert Split below joins whose keys are VG-generated attributes (paper §8)",
		ruleSplitRandomJoinKeys},
	{"extract-looper-predicates",
		"move conjuncts over random attributes of >= 2 aliases into the looper's final predicate (App. A)",
		ruleExtractLooperPreds},
	{"lift-residual-filters",
		"apply remaining conjuncts as one Filter above the join tree",
		ruleLiftResiduals},
	{"place-aggregate",
		"root the plan in an Aggregate operator (grouping exprs + aggregate list + HAVING); grouping must be deterministic",
		rulePlaceAggregate},
	{"mark-deterministic",
		"annotate randomness-free subtrees (materialization-cache candidates) and row estimates",
		ruleMarkDeterministic},
}

// ruleByName returns the named rule; it exists so unit tests can exercise
// rules individually.
func ruleByName(name string) *Rule {
	for i := range Rules {
		if Rules[i].Name == name {
			return &Rules[i]
		}
	}
	return nil
}

// ruleResolveColumns qualifies unqualified column references in WHERE
// conjuncts, grouping expressions, and aggregate expressions. A reference
// found in exactly one alias's columns resolves to that alias; one found
// in several is an error naming the candidates; one found nowhere is an
// error naming the aliases probed. It also (re)fills every conjunct's
// alias classification, which later rules rely on. HAVING is not resolved
// here: it references the aggregation output (grouping columns and
// aggregate aliases), not FROM columns.
func ruleResolveColumns(s *state) (bool, error) {
	changed := false
	resolve := func(e expr.Expr) (expr.Expr, error) {
		var resolveErr error
		out := expr.RenameColumns(e, func(name string) string {
			if resolveErr != nil {
				return name
			}
			if _, qualified := qualifierOf(name); qualified {
				return name
			}
			key := strings.ToLower(name)
			var cands []string
			for i := range s.froms {
				if s.cols[i][key] {
					cands = append(cands, s.froms[i].Alias+"."+name)
				}
			}
			switch len(cands) {
			case 1:
				changed = true
				return cands[0]
			case 0:
				resolveErr = fmt.Errorf("plan: column %q not found in any FROM alias (%s)", name, s.aliasList())
			default:
				resolveErr = fmt.Errorf("plan: ambiguous column %q: candidates %s", name, strings.Join(cands, ", "))
			}
			return name
		})
		return out, resolveErr
	}
	for j := range s.conjs {
		c := &s.conjs[j]
		var err error
		if c.e, err = resolve(c.e); err != nil {
			return false, err
		}
		if err := s.classify(c); err != nil {
			return false, err
		}
	}
	for i, g := range s.groupBy {
		resolved, err := resolve(g)
		if err != nil {
			return false, fmt.Errorf("%w (in GROUP BY)", err)
		}
		s.groupBy[i] = resolved
	}
	for i := range s.aggs {
		if s.aggs[i].Expr == nil {
			continue
		}
		resolved, err := resolve(s.aggs[i].Expr)
		if err != nil {
			return false, fmt.Errorf("%w (in aggregate %s)", err, s.aggs[i])
		}
		s.aggs[i].Expr = resolved
	}
	return changed, nil
}

// ruleExpandRandomTables replaces each Rel over a random table with the
// paper's generation pipeline: scan the parameter table, Seed with the VG
// function, Instantiate the stream windows, project to the declared
// columns, and rename under the query alias.
func ruleExpandRandomTables(s *state) (bool, error) {
	changed := false
	for i, f := range s.froms {
		rm, ok := s.cat.Random(f.Table)
		if !ok {
			continue
		}
		outNames := make([]string, rm.NumOuts)
		for o := range outNames {
			outNames[o] = fmt.Sprintf("__vg%d", o)
		}
		var node Node = &Rel{Table: rm.ParamTable, Alias: "__param"}
		node = &Seed{Child: node, VG: rm.VG, Params: rm.VGParams, OutNames: outNames}
		node = &Instantiate{Child: node}
		cols := make([]string, len(rm.Columns))
		names := make([]string, len(rm.Columns))
		for j, c := range rm.Columns {
			if c.FromParam != "" {
				cols[j] = "__param." + c.FromParam
			} else {
				cols[j] = fmt.Sprintf("__vg%d", c.VGOut)
			}
			names[j] = c.Name
		}
		node = &Project{Child: node, Cols: cols, Names: names}
		s.subs[i] = &Rename{Child: node, Alias: f.Alias}
		changed = true
	}
	return changed, nil
}

// rulePushFilters pushes every conjunct referencing exactly one alias onto
// that alias's subtree, below any join. Predicates over random attributes
// become isPres vectors at the physical layer (paper §5), so they must sit
// above the alias's Instantiate — which they do, since the whole expanded
// pipeline is below.
func rulePushFilters(s *state) (bool, error) {
	changed := false
	for j := range s.conjs {
		c := &s.conjs[j]
		if c.used || len(c.aliases) != 1 {
			continue
		}
		i := s.aliasIdx[c.aliases[0]]
		s.subs[i] = &Filter{Child: s.subs[i], Pred: c.e}
		c.used = true
		changed = true
	}
	return changed, nil
}

// Selectivity and fan-out constants for cardinality estimation. The
// planner has row counts but no value distributions, so these are the
// textbook defaults.
const (
	eqSelectivity    = 0.1
	rangeSelectivity = 0.3
	splitFanout      = 4
)

// estimate returns the node's output cardinality from catalog row counts.
func (s *state) estimate(n Node) float64 {
	switch n := n.(type) {
	case *Rel:
		rows, ok := s.cat.TableRows(n.Table)
		if !ok {
			return 1
		}
		return float64(rows)
	case *Seed:
		return s.estimate(n.Child)
	case *Instantiate:
		return s.estimate(n.Child)
	case *Project:
		return s.estimate(n.Child)
	case *Rename:
		return s.estimate(n.Child)
	case *Filter:
		sel := 1.0
		for _, c := range expr.SplitConjuncts(n.Pred) {
			if b, ok := c.(*expr.Bin); ok && b.Op == expr.OpEq {
				sel *= eqSelectivity
			} else {
				sel *= rangeSelectivity
			}
		}
		return math.Max(s.estimate(n.Child)*sel, 1)
	case *Split:
		return s.estimate(n.Child) * splitFanout
	case *Join:
		return joinEstimate(s.estimate(n.Left), s.estimate(n.Right))
	case *Cross:
		return s.estimate(n.Left) * s.estimate(n.Right)
	case *Aggregate:
		if len(n.GroupBy) == 0 {
			return 1
		}
		return math.Max(s.estimate(n.Child)*groupSelectivity, 1)
	}
	return 1
}

// joinEstimate is |L| * |R| / max(|L|, |R|): an equi-join with the larger
// side's cardinality as the distinct-count proxy.
func joinEstimate(l, r float64) float64 {
	return math.Max(l*r/math.Max(math.Max(l, r), 1), 1)
}

// joinEdges returns the indices of unused two-alias equi-conjuncts that
// connect FROM item idx to the already-joined alias set.
func (s *state) joinEdges(joined map[string]bool, idx int) []int {
	alias := strings.ToLower(s.froms[idx].Alias)
	var out []int
	for j := range s.conjs {
		c := &s.conjs[j]
		if c.used || len(c.aliases) != 2 || !c.touches(alias) {
			continue
		}
		other := c.aliases[0]
		if other == alias {
			other = c.aliases[1]
		}
		if !joined[other] {
			continue
		}
		if _, _, ok := expr.EquiJoinSides(c.e); !ok {
			continue
		}
		out = append(out, j)
	}
	return out
}

// hasJoinEdge reports whether FROM item idx participates in any unused
// two-alias equi-conjunct (with any partner).
func (s *state) hasJoinEdge(idx int) bool {
	alias := strings.ToLower(s.froms[idx].Alias)
	for j := range s.conjs {
		c := &s.conjs[j]
		if c.used || len(c.aliases) != 2 || !c.touches(alias) {
			continue
		}
		if _, _, ok := expr.EquiJoinSides(c.e); ok {
			return true
		}
	}
	return false
}

// ruleOrderJoins collapses the per-alias forest into a left-deep tree:
// start from the smallest subplan that has an equi-join edge (so an
// unconnected input cannot force an early cross product), then repeatedly
// join the equi-connected subplan that minimizes the estimated
// intermediate size, consuming the connecting conjuncts as join keys.
// Subplans with no connecting equi-conjunct are cross-joined last,
// smallest first. Ties break by FROM position, so planning is
// deterministic.
func ruleOrderJoins(s *state) (bool, error) {
	if len(s.subs) == 1 {
		s.root = s.subs[0]
		return false, nil
	}
	est := make([]float64, len(s.subs))
	for i, n := range s.subs {
		est[i] = s.estimate(n)
	}
	start := -1
	for i := range est {
		if !s.hasJoinEdge(i) {
			continue
		}
		if start < 0 || est[i] < est[start] {
			start = i
		}
	}
	if start < 0 {
		// No equi-join anywhere: pure cross-product query.
		start = 0
		for i := 1; i < len(est); i++ {
			if est[i] < est[start] {
				start = i
			}
		}
	}
	root, rootEst := s.subs[start], est[start]
	joined := map[string]bool{strings.ToLower(s.froms[start].Alias): true}
	var remaining []int
	for i := range s.subs {
		if i != start {
			remaining = append(remaining, i)
		}
	}
	for len(remaining) > 0 {
		best, bestEst := -1, math.Inf(1)
		var bestEdges []int
		for _, idx := range remaining {
			edges := s.joinEdges(joined, idx)
			if len(edges) == 0 {
				continue
			}
			if e := joinEstimate(rootEst, est[idx]); e < bestEst {
				best, bestEst, bestEdges = idx, e, edges
			}
		}
		if best < 0 {
			// No connecting equi-join: cross product, smallest first.
			best = remaining[0]
			for _, idx := range remaining[1:] {
				if est[idx] < est[best] {
					best = idx
				}
			}
			root = &Cross{Left: root, Right: s.subs[best]}
			rootEst *= est[best]
		} else {
			alias := strings.ToLower(s.froms[best].Alias)
			var lKeys, rKeys []string
			for _, j := range bestEdges {
				c := &s.conjs[j]
				l, r, _ := expr.EquiJoinSides(c.e)
				if la, _ := qualifierOf(l); la == alias {
					l, r = r, l
				}
				lKeys = append(lKeys, l)
				rKeys = append(rKeys, r)
				c.used = true
			}
			root = &Join{Left: root, Right: s.subs[best], LeftKeys: lKeys, RightKeys: rKeys}
			rootEst = bestEst
		}
		joined[strings.ToLower(s.froms[best].Alias)] = true
		next := remaining[:0]
		for _, idx := range remaining {
			if idx != best {
				next = append(next, idx)
			}
		}
		remaining = next
	}
	s.root = root
	return true, nil
}

// ruleSplitRandomJoinKeys walks the join tree and wraps either side of a
// Join in Split for every key that is a VG-generated attribute, turning
// the random join into a deterministic one (paper §8).
func ruleSplitRandomJoinKeys(s *state) (bool, error) {
	changed := false
	var rec func(n Node)
	rec = func(n Node) {
		switch n := n.(type) {
		case *Join:
			rec(n.Left)
			rec(n.Right)
			for _, k := range n.LeftKeys {
				if s.isRandomColumn(k) {
					n.Left = &Split{Child: n.Left, Col: k}
					changed = true
				}
			}
			for _, k := range n.RightKeys {
				if s.isRandomColumn(k) {
					n.Right = &Split{Child: n.Right, Col: k}
					changed = true
				}
			}
		case *Cross:
			rec(n.Left)
			rec(n.Right)
		case *Filter:
			rec(n.Child)
		}
	}
	rec(s.root)
	return changed, nil
}

// ruleExtractLooperPreds moves every remaining conjunct touching random
// attributes of two or more aliases out of the plan: such predicates
// cannot become per-seed presence vectors and must be evaluated by the
// Gibbs looper as part of its final predicate (paper App. A).
func ruleExtractLooperPreds(s *state) (bool, error) {
	changed := false
	for j := range s.conjs {
		c := &s.conjs[j]
		if c.used || len(c.rand) < 2 {
			continue
		}
		s.final = append(s.final, c.e)
		c.used = true
		changed = true
	}
	return changed, nil
}

// ruleLiftResiduals conjoins all still-unused conjuncts (cross-alias
// deterministic predicates, or random predicates of a single alias that
// were not pushable) into one Filter above the join tree.
func ruleLiftResiduals(s *state) (bool, error) {
	var rest []expr.Expr
	for j := range s.conjs {
		c := &s.conjs[j]
		if c.used {
			continue
		}
		rest = append(rest, c.e)
		c.used = true
	}
	if len(rest) == 0 {
		return false, nil
	}
	s.root = &Filter{Child: s.root, Pred: expr.And(rest...)}
	return true, nil
}

// groupSelectivity is the textbook distinct-count proxy: a grouped
// aggregation is estimated to emit one row per ~10 input rows.
const groupSelectivity = 0.1

// rulePlaceAggregate roots the plan in an Aggregate operator when the
// query has an aggregate select list. It runs after every filter and join
// rewrite, so pushed-down filters sit below the aggregation by
// construction and deterministic prefixes keep materializing into the
// prefix cache unchanged. Grouping expressions must be deterministic
// (paper App. A): referencing a VG-generated attribute is an error here,
// at plan time.
func rulePlaceAggregate(s *state) (bool, error) {
	if len(s.aggs) == 0 {
		if len(s.groupBy) > 0 {
			return false, fmt.Errorf("plan: GROUP BY requires an aggregate select list")
		}
		return false, nil
	}
	for _, g := range s.groupBy {
		for _, col := range expr.Columns(g) {
			if s.isRandomColumn(col) {
				return false, fmt.Errorf("plan: GROUP BY expression %s references VG-generated attribute %q; grouping columns must be deterministic (paper App. A)", g, col)
			}
		}
	}
	s.root = &Aggregate{Child: s.root, GroupBy: s.groupBy, Aggs: s.aggs, Having: s.having, Stop: s.stop}
	return true, nil
}

// ruleMarkDeterministic annotates every node with whether its subtree is
// randomness-free — the exec layer materializes such subtrees once and
// serves re-executions from cache — and with the row estimate shown by
// EXPLAIN.
func ruleMarkDeterministic(s *state) (bool, error) {
	changed := false
	var rec func(n Node) bool
	rec = func(n Node) bool {
		det := true
		for _, c := range n.Children() {
			if !rec(c) {
				det = false
			}
		}
		switch n.(type) {
		case *Seed, *Instantiate:
			det = false
		}
		p := n.P()
		p.Det = det
		p.Rows = s.estimate(n)
		if det {
			changed = true
		}
		return det
	}
	rec(s.root)
	return changed, nil
}
