// Package experiments regenerates every quantitative artifact of the
// paper's evaluation (see DESIGN.md §2 for the experiment index):
//
//	E1 — Appendix D timing: MCDB-R tail sampling vs naive MCDB on the
//	     TPC-H-like join query (per-iteration times, replenishment, speedup).
//	E2 — Figure 5: empirical tail CDFs vs the analytic conditional CDF on
//	     the skewed-join workload; quantile-estimate bias and SE.
//	E3 — §1 motivation: naive Monte Carlo cost in the tail.
//	E4 — Appendix C: parameter selection (Theorem 1 m*, w(N), MSRE).
//	E5 — Appendix B: light- vs heavy-tail rejection cost.
//
// Both cmd/mcdbr-bench and the root bench_test.go drive these functions.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"repro/internal/expr"
	"repro/internal/naive"
	"repro/internal/stats"
	"repro/internal/tail"
	"repro/internal/workload"
	"repro/mcdbr"
)

// TPCHEngine builds an engine loaded with the Appendix D accuracy workload
// (inverse-gamma hyperpriors, skewed join) at 1/scaleDiv of paper scale and
// defines the random_ord table (val ~ Normal(o_mean, o_var) per order).
func TPCHEngine(scaleDiv int, seed uint64, opts ...mcdbr.Option) (*mcdbr.Engine, error) {
	return tpchEngine(workload.DefaultTPCH(scaleDiv), seed, opts...)
}

// TPCHTimingEngine builds the Appendix D *timing* workload (mean and
// variance of one, plain join).
func TPCHTimingEngine(scaleDiv int, seed uint64, opts ...mcdbr.Option) (*mcdbr.Engine, error) {
	return tpchEngine(workload.TimingTPCH(scaleDiv), seed, opts...)
}

func tpchEngine(cfg workload.TPCHConfig, seed uint64, opts ...mcdbr.Option) (*mcdbr.Engine, error) {
	cfg.Seed = seed*2654435761 + 97
	orders, lineitem, err := workload.TPCHLike(cfg)
	if err != nil {
		return nil, err
	}
	e := mcdbr.New(append([]mcdbr.Option{mcdbr.WithSeed(seed), mcdbr.WithWindow(1000)}, opts...)...)
	e.RegisterTable(orders)
	e.RegisterTable(lineitem)
	err = e.DefineRandomTable(mcdbr.RandomTable{
		Name:       "random_ord",
		ParamTable: "orders",
		VG:         "Normal",
		VGParams:   []expr.Expr{expr.C("o_mean"), expr.C("o_var")},
		Columns: []mcdbr.RandomCol{
			{Name: "o_orderkey", FromParam: "o_orderkey"},
			{Name: "o_yr", FromParam: "o_yr"},
			{Name: "val", VGOut: 0},
		},
	})
	if err != nil {
		return nil, err
	}
	return e, nil
}

// TPCHQuery is the Appendix D benchmark query:
//
//	SELECT SUM(val) FROM random_ord, lineitem
//	WHERE o_orderkey = l_orderkey AND (o_yr = 1994 OR o_yr = 1995)
func TPCHQuery(e *mcdbr.Engine) *mcdbr.QueryBuilder {
	return e.Query().
		From("random_ord", "r").
		From("lineitem", "l").
		Where(expr.B(expr.OpEq, expr.C("r.o_orderkey"), expr.C("l.l_orderkey"))).
		Where(expr.B(expr.OpOr,
			expr.B(expr.OpEq, expr.C("r.o_yr"), expr.I(1994)),
			expr.B(expr.OpEq, expr.C("r.o_yr"), expr.I(1995)))).
		SelectSum(expr.C("r.val"))
}

// TPCHAnalyticMoments returns the analytic mean and sd of the benchmark
// query result (the paper's grpsize closed form).
func TPCHAnalyticMoments(e *mcdbr.Engine) (mu, sigma float64) {
	orders, _ := e.Table("orders")
	lineitem, _ := e.Table("lineitem")
	m, v := workload.TPCHAnalytic(orders, lineitem, map[int64]bool{1994: true, 1995: true})
	return m, math.Sqrt(v)
}

// E1Result holds the Appendix D timing comparison.
type E1Result struct {
	ScaleDiv       int
	P              float64
	L              int
	IterSeconds    []float64
	Replenishments int
	TailSeconds    float64
	Quantile       float64
	AnalyticQ      float64

	NaiveReps       int     // repetitions actually measured
	NaiveSeconds    float64 // time for those repetitions
	NaiveNeededReps float64 // ~L/P repetitions to collect L tail samples
	NaiveExtrapSec  float64
	SpeedupExtrap   float64
}

// RunE1 executes the Appendix D timing experiment: MCDB-R with the paper's
// parameters (m=5, p^{1/m}=0.25, N=500, l=100, window 1000) against naive
// MCDB extrapolated to the ~l/p repetitions it needs for l tail samples.
func RunE1(scaleDiv int, seed uint64, opts ...mcdbr.Option) (*E1Result, error) {
	p := math.Pow(0.25, 5) // the paper's p^(1/m)=0.25, m=5 => p ≈ 0.000977
	res := &E1Result{ScaleDiv: scaleDiv, P: p, L: 100}

	e, err := TPCHTimingEngine(scaleDiv, seed, opts...)
	if err != nil {
		return nil, err
	}
	mu, sigma := TPCHAnalyticMoments(e)
	res.AnalyticQ = stats.NormalQuantile(1-p, mu, sigma)

	start := time.Now()
	tr, err := TPCHQuery(e).TailSample(p, res.L, mcdbr.TailSampleOptions{
		TotalSamples: 500, ForceM: 5,
	})
	if err != nil {
		return nil, err
	}
	res.TailSeconds = time.Since(start).Seconds()
	res.Quantile = tr.QuantileEstimate
	res.Replenishments = tr.Diag.Replenishments
	for _, it := range tr.Diag.Iters {
		res.IterSeconds = append(res.IterSeconds, it.Duration.Seconds())
	}

	// Naive baseline: measure a feasible repetition count and extrapolate
	// to the ~L/P repetitions needed for L tail samples (the paper's
	// 18-hour datapoint).
	e2, err := TPCHTimingEngine(scaleDiv, seed+1)
	if err != nil {
		return nil, err
	}
	res.NaiveReps = 2000
	start = time.Now()
	samples, err := TPCHQuery(e2).MonteCarlo(res.NaiveReps)
	if err != nil {
		return nil, err
	}
	res.NaiveSeconds = time.Since(start).Seconds()
	_ = samples
	res.NaiveNeededReps = float64(res.L) / p
	res.NaiveExtrapSec = res.NaiveSeconds * res.NaiveNeededReps / float64(res.NaiveReps)
	if res.TailSeconds > 0 {
		res.SpeedupExtrap = res.NaiveExtrapSec / res.TailSeconds
	}
	return res, nil
}

// Print writes the experiment as a paper-style table.
func (r *E1Result) Print(w io.Writer) {
	fmt.Fprintf(w, "E1: Appendix D timing (TPC-H-like at 1/%d paper scale, p=%.6f, l=%d)\n", r.ScaleDiv, r.P, r.L)
	fmt.Fprintf(w, "  MCDB-R iteration seconds:")
	for i, s := range r.IterSeconds {
		fmt.Fprintf(w, " it%d=%.2f", i+1, s)
	}
	fmt.Fprintf(w, "  (replenishing runs: %d)\n", r.Replenishments)
	fmt.Fprintf(w, "  MCDB-R total: %.2fs, quantile estimate %.4g (analytic %.4g, rel.err %.3f%%)\n",
		r.TailSeconds, r.Quantile, r.AnalyticQ, 100*math.Abs(r.Quantile-r.AnalyticQ)/r.AnalyticQ)
	fmt.Fprintf(w, "  naive MCDB: %d reps in %.2fs -> %.0f reps needed -> %.0fs extrapolated\n",
		r.NaiveReps, r.NaiveSeconds, r.NaiveNeededReps, r.NaiveExtrapSec)
	fmt.Fprintf(w, "  speedup (extrapolated): %.0fx   [paper: 18h -> 11min ≈ 98x]\n", r.SpeedupExtrap)
}

// E2Result holds the Figure 5 accuracy study.
type E2Result struct {
	Runs      int
	TrueQ     float64
	Mu, Sigma float64
	Estimates []float64
	// ECDFs holds one empirical tail CDF per run as (xs, Fs) point lists.
	ECDFs [][2][]float64
	// KS holds, per run, the KS distance between the empirical tail CDF
	// and the analytic conditional CDF beyond TrueQ.
	KS []float64
	// Middle99Width is the width of the central 99% of the unconditioned
	// query-result distribution (the paper's 2503 yardstick).
	Middle99Width float64
}

// RunE2 executes the Figure 5 accuracy experiment: `runs` independent
// tail-sampling executions with the paper's parameters (m=5, N=1000,
// l=100, p = 1-(0.25)^5 quantile) on the skewed-join workload.
func RunE2(scaleDiv, runs int, seed uint64, opts ...mcdbr.Option) (*E2Result, error) {
	p := math.Pow(0.25, 5)
	out := &E2Result{Runs: runs}
	base, err := TPCHEngine(scaleDiv, seed, opts...) // same data for all runs
	if err != nil {
		return nil, err
	}
	out.Mu, out.Sigma = TPCHAnalyticMoments(base)
	out.TrueQ = stats.NormalQuantile(1-p, out.Mu, out.Sigma)
	out.Middle99Width = stats.NormalQuantile(0.995, out.Mu, out.Sigma) -
		stats.NormalQuantile(0.005, out.Mu, out.Sigma)
	condCDF := func(x float64) float64 {
		f0 := stats.NormalCDF(out.TrueQ, out.Mu, out.Sigma)
		if x < out.TrueQ {
			return 0
		}
		return (stats.NormalCDF(x, out.Mu, out.Sigma) - f0) / (1 - f0)
	}
	// The runs are statistically independent (only the master PRNG seed
	// varies, as in the paper's 20 repetitions), so execute them in
	// parallel; each run builds its own engine over the shared immutable
	// tables.
	out.Estimates = make([]float64, runs)
	out.ECDFs = make([][2][]float64, runs)
	out.KS = make([]float64, runs)
	var wg sync.WaitGroup
	errs := make([]error, runs)
	for run := 0; run < runs; run++ {
		wg.Add(1)
		go func(run int) {
			defer wg.Done()
			eRun := mcdbrWithSeed(base, seed+uint64(run)*7919+1, opts...)
			tr, err := TPCHQuery(eRun).TailSample(p, 100, mcdbr.TailSampleOptions{
				TotalSamples: 1000, ForceM: 5,
			})
			if err != nil {
				errs[run] = err
				return
			}
			// The paper records the minimum tail sample as the quantile
			// estimate for each run.
			out.Estimates[run] = tr.Min()
			xs, fs := tr.ECDF().Points()
			out.ECDFs[run] = [2][]float64{xs, fs}
			out.KS[run] = tr.ECDF().KSDistance(condCDF)
		}(run)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// mcdbrWithSeed clones an engine's tables and definitions under a new
// master seed; runs differ only in PRNG randomness, as in the paper.
func mcdbrWithSeed(e *mcdbr.Engine, seed uint64, opts ...mcdbr.Option) *mcdbr.Engine {
	out := mcdbr.New(append([]mcdbr.Option{mcdbr.WithSeed(seed), mcdbr.WithWindow(1000)}, opts...)...)
	for _, name := range e.Catalog().Names() {
		t, _ := e.Table(name)
		out.RegisterTable(t)
	}
	if rt, ok := e.RandomTableDef("random_ord"); ok {
		_ = out.DefineRandomTable(*rt)
	}
	return out
}

// Print writes the Figure 5 summary and per-run rows.
func (r *E2Result) Print(w io.Writer) {
	s := stats.Summarize(r.Estimates)
	fmt.Fprintf(w, "E2: Figure 5 accuracy (%d runs)\n", r.Runs)
	fmt.Fprintf(w, "  query-result distribution: N(%.4g, %.4g^2)\n", r.Mu, r.Sigma)
	fmt.Fprintf(w, "  true 0.99902-quantile: %.6g\n", r.TrueQ)
	fmt.Fprintf(w, "  mean quantile estimate: %.6g (bias %.3g)\n", s.Mean, s.Mean-r.TrueQ)
	fmt.Fprintf(w, "  empirical SE of estimates: %.4g\n", s.Std)
	fmt.Fprintf(w, "  middle-99%% width: %.4g -> SE is %.1f%% of width  [paper: 265/2503 ≈ 10%%]\n",
		r.Middle99Width, 100*s.Std/r.Middle99Width)
	for i, ks := range r.KS {
		fmt.Fprintf(w, "  run %2d: estimate %.6g, KS vs analytic tail CDF %.3f\n", i+1, r.Estimates[i], ks)
	}
}

// PrintECDFs emits the Figure 5 plot data: analytic conditional CDF plus
// every run's empirical tail CDF as x,F pairs (CSV-ish, one series block
// per run).
func (r *E2Result) PrintECDFs(w io.Writer) {
	fmt.Fprintf(w, "# Figure 5 data: analytic conditional CDF then %d empirical tail CDFs\n", r.Runs)
	f0 := stats.NormalCDF(r.TrueQ, r.Mu, r.Sigma)
	tailMass := 1 - f0
	// Span the tail from the true quantile out to where only 1% of the
	// tail mass remains.
	xMax := stats.NormalQuantile(1-tailMass/100, r.Mu, r.Sigma)
	fmt.Fprintln(w, "series,x,F")
	for i := 0; i <= 100; i++ {
		x := r.TrueQ + float64(i)/100*(xMax-r.TrueQ)
		f := (stats.NormalCDF(x, r.Mu, r.Sigma) - f0) / tailMass
		fmt.Fprintf(w, "analytic,%.6g,%.6f\n", x, f)
	}
	for run, series := range r.ECDFs {
		xs, fs := series[0], series[1]
		for i := range xs {
			fmt.Fprintf(w, "run%02d,%.6g,%.6f\n", run+1, xs[i], fs[i])
		}
	}
}

// E3Result holds the §1 motivation numbers.
type E3Result struct {
	P5Sigma         float64
	RepsPerHit      float64
	RepsTailProb    float64
	RepsQuantile    float64
	MeasuredHitReps int
	MeasuredHit     bool
	MeasuredCutoffP float64
}

// RunE3 reproduces the introduction's naive-Monte-Carlo cost numbers
// analytically and measures reps-to-first-hit at a feasible tail depth.
func RunE3(seed uint64, opts ...mcdbr.Option) (*E3Result, error) {
	out := &E3Result{}
	out.P5Sigma = 1 - stats.StdNormalCDF(5)
	out.RepsPerHit = naive.ExpectedRepsPerTailHit(out.P5Sigma)
	out.RepsTailProb = naive.RepsForTailProbability(out.P5Sigma, 0.01, 0.95)
	out.RepsQuantile = naive.RepsForQuantile(0.001, 10e6, 1e6, 0.01*1e6, 0.95)

	// Measured: 20-customer loss sum, cutoff at the 0.999 quantile; naive
	// needs ~1000 reps per hit.
	out.MeasuredCutoffP = 0.001
	e := mcdbr.New(append([]mcdbr.Option{mcdbr.WithSeed(seed), mcdbr.WithWindow(4096)}, opts...)...)
	e.RegisterTable(workload.LossMeans(20, 2, 8, seed))
	if err := e.DefineRandomTable(mcdbr.RandomTable{
		Name: "losses", ParamTable: "means", VG: "Normal",
		VGParams: []expr.Expr{expr.C("m"), expr.F(1.0)},
		Columns:  []mcdbr.RandomCol{{Name: "cid", FromParam: "cid"}, {Name: "val", VGOut: 0}},
	}); err != nil {
		return nil, err
	}
	tbl, _ := e.Table("means")
	mu := 0.0
	for _, r := range tbl.Rows() {
		mu += r[1].Float()
	}
	cutoff := stats.NormalQuantile(1-out.MeasuredCutoffP, mu, math.Sqrt(20))
	d, err := e.Query().From("losses", "").SelectSum(expr.C("val")).MonteCarlo(20000)
	if err != nil {
		return nil, err
	}
	for i, s := range d.Samples {
		if s >= cutoff {
			out.MeasuredHitReps = i + 1
			out.MeasuredHit = true
			break
		}
	}
	if !out.MeasuredHit {
		out.MeasuredHitReps = len(d.Samples)
	}
	return out, nil
}

// Print writes the motivation table.
func (r *E3Result) Print(w io.Writer) {
	fmt.Fprintf(w, "E3: §1 naive Monte Carlo cost in the tail\n")
	fmt.Fprintf(w, "  P(totalLoss >= $15M) at 5 sigma: %.3g\n", r.P5Sigma)
	fmt.Fprintf(w, "  expected reps per tail hit: %.3g   [paper: ~3.5 million]\n", r.RepsPerHit)
	fmt.Fprintf(w, "  reps for 1%%-accurate tail probability (95%% conf): %.3g   [paper: ~130 billion]\n", r.RepsTailProb)
	fmt.Fprintf(w, "  reps for 0.999-quantile to 1%% of sigma (95%% conf): %.3g   [paper: ~ten million]\n", r.RepsQuantile)
	fmt.Fprintf(w, "  measured: first hit beyond the %.3g tail after %d reps (hit=%v, E=%.0f)\n",
		r.MeasuredCutoffP, r.MeasuredHitReps, r.MeasuredHit, 1/r.MeasuredCutoffP)
}

// E4Row is one row of the parameter-selection table.
type E4Row struct {
	N          int
	P          float64
	MStar      int
	PPerStep   float64
	AnalyticU  float64
	SimulatedU float64
	WN         float64
}

// RunE4 regenerates the Appendix C parameter study: Theorem 1 m*, the
// per-step tail probability, analytic vs simulated MSRE, and w(N).
func RunE4(seed uint64) ([]E4Row, error) {
	var rows []E4Row
	for _, tc := range []struct {
		N int
		p float64
	}{
		{100, 0.01}, {200, 0.01}, {500, 0.001}, {1000, 0.001}, {2000, 0.0001},
	} {
		params, err := tail.Choose(tc.N, tc.p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, E4Row{
			N: tc.N, P: tc.p, MStar: params.M, PPerStep: params.PPerStep,
			AnalyticU:  params.MSRE,
			SimulatedU: tail.SimulateMSRE(tc.N, params.M, tc.p, 3000, seed),
			WN:         tail.W(tc.N, tc.p),
		})
	}
	return rows, nil
}

// PrintE4 writes the parameter table.
func PrintE4(w io.Writer, rows []E4Row) {
	fmt.Fprintln(w, "E4: Appendix C parameter selection")
	fmt.Fprintf(w, "  %6s %8s %4s %9s %12s %12s %10s\n", "N", "p", "m*", "p^(1/m*)", "MSRE(analytic)", "MSRE(sim)", "w(N)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %6d %8.5f %4d %9.4f %12.4g %12.4g %10.4g\n",
			r.N, r.P, r.MStar, r.PPerStep, r.AnalyticU, r.SimulatedU, r.WN)
	}
	fmt.Fprintln(w, "  [paper worked example: p=0.001, m=4 -> per-step quantile 0.82]")
}

// E5Row is one row of the heavy-tail study.
type E5Row struct {
	Dist             string
	CandidatesPerUpd float64
	GiveUpFrac       float64
	Quantile         float64
}

// RunE5 measures rejection-sampling cost per update for light- vs
// heavy-tailed marginals through the full engine (Appendix B): SUM over 10
// i.i.d. values at p=0.01, with candidates capped per update.
func RunE5(seed uint64, opts ...mcdbr.Option) ([]E5Row, error) {
	cases := []struct {
		name   string
		vgName string
		params []expr.Expr
	}{
		{"Normal(0,1)", "Normal", []expr.Expr{expr.F(0), expr.F(1)}},
		{"Lognormal(0,2)", "Lognormal", []expr.Expr{expr.F(0), expr.F(2)}},
		{"Pareto(1,1.2)", "Pareto", []expr.Expr{expr.F(1), expr.F(1.2)}},
	}
	var rows []E5Row
	for _, tc := range cases {
		e := mcdbr.New(append([]mcdbr.Option{mcdbr.WithSeed(seed), mcdbr.WithWindow(4096)}, opts...)...)
		e.RegisterTable(workload.HeavyTailMeans(10, 1))
		if err := e.DefineRandomTable(mcdbr.RandomTable{
			Name: "vals", ParamTable: "params", VG: tc.vgName,
			VGParams: tc.params,
			Columns:  []mcdbr.RandomCol{{Name: "id", FromParam: "id"}, {Name: "v", VGOut: 0}},
		}); err != nil {
			return nil, err
		}
		tr, err := e.Query().From("vals", "").SelectSum(expr.C("v")).
			TailSample(0.01, 50, mcdbr.TailSampleOptions{
				TotalSamples: 300, MaxTriesPerUpdate: 2000,
			})
		if err != nil {
			return nil, err
		}
		var cand, acc, giveups int64
		for _, it := range tr.Diag.Iters {
			cand += it.Candidates
			acc += it.Accepts
			giveups += it.GiveUps
		}
		updates := acc + giveups
		row := E5Row{Dist: tc.name, Quantile: tr.QuantileEstimate}
		if updates > 0 {
			row.CandidatesPerUpd = float64(cand) / float64(updates)
			row.GiveUpFrac = float64(giveups) / float64(updates)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// E6Result holds the adaptive-stopping study: the same query run with a
// fixed replicate budget and with UNTIL ERROR early stopping at an
// accuracy the fixed run also achieves.
type E6Result struct {
	TargetRelError float64
	Confidence     float64
	FixedN         int
	FixedSeconds   float64
	FixedMean      float64
	FixedRelErr    float64 // CI half-width / mean of the full fixed run
	AdaptSamples   int
	AdaptRounds    int
	AdaptSeconds   float64
	AdaptMean      float64
	AdaptRelErr    float64
	Converged      bool
	AnalyticMu     float64
	Speedup        float64 // FixedSeconds / AdaptSeconds
	SamplesSaved   float64 // 1 - AdaptSamples/FixedN
}

// RunE6 measures what confidence-interval early stopping buys on a
// low-variance aggregate: SUM over the TPC-H-like join, fixed at fixedN
// Monte Carlo replicates vs adaptive UNTIL ERROR < target at the given
// confidence with the same budget as a cap. Both runs share one engine
// seed, so the adaptive run's replicates are a bit-identical prefix of
// the fixed run's.
func RunE6(scaleDiv, fixedN int, target, confidence float64, seed uint64, opts ...mcdbr.Option) (*E6Result, error) {
	res := &E6Result{TargetRelError: target, Confidence: confidence, FixedN: fixedN}

	e, err := TPCHTimingEngine(scaleDiv, seed, opts...)
	if err != nil {
		return nil, err
	}
	res.AnalyticMu, _ = TPCHAnalyticMoments(e)

	start := time.Now()
	samples, err := TPCHQuery(e).MonteCarlo(fixedN)
	if err != nil {
		return nil, err
	}
	res.FixedSeconds = time.Since(start).Seconds()
	var acc stats.Welford
	acc.AddAll(samples.Samples)
	res.FixedMean = acc.Mean()
	res.FixedRelErr = acc.RelHalfWidth(confidence)

	// A fresh engine with the same seed replays the identical replicate
	// stream, so the comparison is sample-for-sample fair.
	e2, err := TPCHTimingEngine(scaleDiv, seed, opts...)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	_, rep, err := TPCHQuery(e2).Until(target, confidence, fixedN).MonteCarloAdaptive()
	if err != nil {
		return nil, err
	}
	res.AdaptSeconds = time.Since(start).Seconds()
	res.AdaptSamples = rep.SamplesUsed
	res.AdaptRounds = rep.Rounds
	res.Converged = rep.Converged
	res.AdaptMean = rep.CIs[0].Mean
	res.AdaptRelErr = rep.CIs[0].RelError
	if res.AdaptSeconds > 0 {
		res.Speedup = res.FixedSeconds / res.AdaptSeconds
	}
	res.SamplesSaved = 1 - float64(res.AdaptSamples)/float64(res.FixedN)
	return res, nil
}

// Print writes the adaptive-stopping comparison.
func (r *E6Result) Print(w io.Writer) {
	fmt.Fprintf(w, "E6: adaptive stopping (UNTIL ERROR < %g AT %.0f%%, cap %d) vs fixed MONTECARLO(%d)\n",
		r.TargetRelError, 100*r.Confidence, r.FixedN, r.FixedN)
	fmt.Fprintf(w, "  fixed:    %d samples in %.3fs, mean %.6g (rel half-width %.2e)\n",
		r.FixedN, r.FixedSeconds, r.FixedMean, r.FixedRelErr)
	status := "converged"
	if !r.Converged {
		status = "hit cap"
	}
	fmt.Fprintf(w, "  adaptive: %d samples in %.3fs over %d rounds, mean %.6g (rel half-width %.2e, %s)\n",
		r.AdaptSamples, r.AdaptSeconds, r.AdaptRounds, r.AdaptMean, r.AdaptRelErr, status)
	fmt.Fprintf(w, "  analytic mean %.6g; speedup %.1fx, samples saved %.0f%%\n",
		r.AnalyticMu, r.Speedup, 100*r.SamplesSaved)
}

// PrintE5 writes the regime table.
func PrintE5(w io.Writer, rows []E5Row) {
	fmt.Fprintln(w, "E5: Appendix B light- vs heavy-tail rejection cost (SUM of 10 iid, p=0.01)")
	fmt.Fprintf(w, "  %-16s %18s %12s %14s\n", "marginal", "candidates/update", "give-up frac", "quantile est.")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-16s %18.1f %12.3f %14.4g\n", r.Dist, r.CandidatesPerUpd, r.GiveUpFrac, r.Quantile)
	}
	fmt.Fprintln(w, "  [paper: light-tailed aggregates accept cheaply; subexponential marginals reject en masse]")
}
