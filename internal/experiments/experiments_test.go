package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// Tiny scales keep these smoke tests fast; the shape assertions mirror the
// paper's qualitative claims.

func TestRunE1Shape(t *testing.T) {
	res, err := RunE1(2000, 7) // 50 orders, 500 lineitems
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IterSeconds) != 5 {
		t.Fatalf("iterations = %d, want 5 (m=5)", len(res.IterSeconds))
	}
	// Quantile estimate within a few percent of the analytic truth.
	if rel := math.Abs(res.Quantile-res.AnalyticQ) / res.AnalyticQ; rel > 0.2 {
		t.Fatalf("quantile %g vs analytic %g (rel %g)", res.Quantile, res.AnalyticQ, rel)
	}
	// MCDB-R must beat extrapolated naive (paper: ~98x; any multiple > 1
	// establishes the shape at tiny scale).
	if res.SpeedupExtrap <= 1 {
		t.Fatalf("speedup = %g, want > 1", res.SpeedupExtrap)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "speedup") {
		t.Fatal("Print output missing speedup row")
	}
}

func TestRunE2Shape(t *testing.T) {
	res, err := RunE2(2000, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimates) != 3 || len(res.ECDFs) != 3 {
		t.Fatalf("runs recorded = %d/%d", len(res.Estimates), len(res.ECDFs))
	}
	// Estimates bracket the truth within a few sigma-of-estimator.
	for _, est := range res.Estimates {
		if math.Abs(est-res.TrueQ) > 0.25*res.Middle99Width {
			t.Fatalf("estimate %g far from true %g", est, res.TrueQ)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "true 0.99902-quantile") {
		t.Fatal("Print output missing quantile row")
	}
	buf.Reset()
	res.PrintECDFs(&buf)
	out := buf.String()
	if !strings.Contains(out, "analytic,") || !strings.Contains(out, "run01,") {
		t.Fatal("PrintECDFs missing series")
	}
}

func TestRunE3Shape(t *testing.T) {
	res, err := RunE3(5)
	if err != nil {
		t.Fatal(err)
	}
	if res.RepsPerHit < 3e6 || res.RepsPerHit > 4e6 {
		t.Fatalf("reps per hit = %g", res.RepsPerHit)
	}
	if res.RepsTailProb < 1e11 {
		t.Fatalf("reps for tail prob = %g", res.RepsTailProb)
	}
	if !res.MeasuredHit {
		t.Fatal("expected a measured hit within 20000 reps at p=0.001")
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "3.5 million") {
		t.Fatal("Print output missing paper reference")
	}
}

func TestRunE4Shape(t *testing.T) {
	rows, err := RunE4(13)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.MStar < 1 {
			t.Fatalf("m* = %d", r.MStar)
		}
		if r.AnalyticU <= 0 || r.SimulatedU <= 0 {
			t.Fatalf("MSRE values: %g %g", r.AnalyticU, r.SimulatedU)
		}
		if rel := math.Abs(r.SimulatedU-r.AnalyticU) / r.AnalyticU; rel > 0.5 {
			t.Fatalf("N=%d: simulated %g vs analytic %g", r.N, r.SimulatedU, r.AnalyticU)
		}
	}
	var buf bytes.Buffer
	PrintE4(&buf, rows)
	if !strings.Contains(buf.String(), "m*") {
		t.Fatal("PrintE4 missing header")
	}
}

func TestRunE5Shape(t *testing.T) {
	rows, err := RunE5(17)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Appendix B: heavy tails cost strictly more candidates per update.
	if rows[2].CandidatesPerUpd < 1.5*rows[0].CandidatesPerUpd {
		t.Fatalf("Pareto cost %g not clearly above Normal cost %g",
			rows[2].CandidatesPerUpd, rows[0].CandidatesPerUpd)
	}
	var buf bytes.Buffer
	PrintE5(&buf, rows)
	if !strings.Contains(buf.String(), "Pareto") {
		t.Fatal("PrintE5 missing rows")
	}
}
