package gibbs

import (
	"math"
	"testing"

	"repro/internal/bundle"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/prng"
	"repro/internal/vg"
)

// TestDeltaAggregateEqualsRecompute is the central engine invariant: after
// an entire tail-sampling run maintained per-version aggregates by deltas
// (only re-evaluating tuples affected by each seed update), a from-scratch
// recomputation over all tuples must give the same totals.
func TestDeltaAggregateEqualsRecompute(t *testing.T) {
	cat := lossCatalog([]float64{3, 4, 5, 6, 7})
	ws := exec.NewWorkspace(cat, prng.NewStream(99), 1024)
	plan := lossPlan(t, ws, 1)
	q := sumQuery()
	cfg := Config{N: 30, M: 3, P: 0.02, L: 15}
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	lp := &looper{ws: ws, plan: plan, q: q, cfg: cfg}
	if err := lp.init(); err != nil {
		t.Fatal(err)
	}
	res, err := lp.run()
	if err != nil {
		t.Fatal(err)
	}
	// Recompute every version's aggregate directly from the final seed
	// assignments and compare with the incrementally maintained states.
	for v := range lp.states {
		want := lp.base
		b := bundle.Bind(ws.Seeds, v)
		for _, tu := range lp.rand {
			s, c, err := lp.contrib(tu, b)
			if err != nil {
				t.Fatal(err)
			}
			want.Add(s, c)
		}
		got := lp.states[v]
		if math.Abs(got.Sum-want.Sum) > 1e-6*(1+math.Abs(want.Sum)) || got.Count != want.Count {
			t.Fatalf("version %d: incremental (%g,%d) vs recomputed (%g,%d)",
				v, got.Sum, got.Count, want.Sum, want.Count)
		}
		if math.Abs(res.TailSamples[v]-want.Value(q.Agg.Kind)) > 1e-6 {
			t.Fatalf("version %d: reported %g vs recomputed %g", v, res.TailSamples[v], want.Value(q.Agg.Kind))
		}
	}
}

// TestMaxUsedMonotone checks TS-seed bookkeeping: MaxUsed only advances,
// and every final assignment is a materialized, already-consumed position.
func TestMaxUsedMonotone(t *testing.T) {
	cat := lossCatalog([]float64{3, 4, 5})
	ws := exec.NewWorkspace(cat, prng.NewStream(55), 256)
	plan := lossPlan(t, ws, 1)
	res, err := Run(ws, plan, sumQuery(), Config{N: 20, M: 3, P: 0.02, L: 10})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	for _, id := range ws.Seeds.IDs() {
		s := ws.Seeds.MustGet(id)
		for v, pos := range s.Assign {
			if pos > s.MaxUsed {
				t.Fatalf("seed %d version %d assigned %d beyond MaxUsed %d", id, v, pos, s.MaxUsed)
			}
			if !s.Window.Contains(pos) {
				t.Fatalf("seed %d version %d assigned unmaterialized position %d", id, v, pos)
			}
		}
	}
}

// TestCutoffsMatchTailProbabilityTrajectory: theta_i estimates the
// (1 - p^{i/m})-quantile; for a normal sum we can check the whole
// trajectory against analytic quantiles (averaged over runs).
func TestCutoffsMatchTailProbabilityTrajectory(t *testing.T) {
	meansVals := []float64{2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	mu, sigma := 65.0, math.Sqrt(10)
	const runs = 8
	const m = 3
	avg := make([]float64, m)
	for r := 0; r < runs; r++ {
		cat := lossCatalog(meansVals)
		ws := exec.NewWorkspace(cat, prng.NewStream(uint64(300+r)), 4096)
		plan := lossPlan(t, ws, 1)
		res, err := Run(ws, plan, sumQuery(), Config{N: 150, M: m, P: 0.008, L: 50})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range res.Cutoffs {
			avg[i] += c / runs
		}
	}
	for i := 0; i < m; i++ {
		pi := math.Pow(0.008, float64(i+1)/m)
		want := mu + sigma*quantileZ(1-pi)
		if math.Abs(avg[i]-want) > 1.0 {
			t.Errorf("step %d: mean cutoff %g, analytic %g", i+1, avg[i], want)
		}
	}
}

// quantileZ is a local standard normal quantile (avoids importing stats
// into this white-box test file twice; thin wrapper).
func quantileZ(p float64) float64 {
	// Newton iteration on the CDF starting from a rough logit guess.
	x := 4.91 * (math.Pow(p, 0.14) - math.Pow(1-p, 0.14))
	for i := 0; i < 60; i++ {
		f := 0.5*math.Erfc(-x/math.Sqrt2) - p
		d := math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
		if d == 0 {
			break
		}
		x -= f / d
	}
	return x
}

// TestSeedSharedAcrossTuples exercises the 1-to-m join case of §4.1: one
// TS-seed referenced by several Gibbs tuples must be updated consistently
// — all affected tuples see the same assignment.
func TestSeedSharedAcrossTuples(t *testing.T) {
	cat := lossCatalog([]float64{4, 5})
	// Join each customer to 3 weights so each seed appears in 3 tuples.
	weights := cat.MustGet("means").Clone()
	_ = weights
	normal, _ := vg.NewRegistry().Lookup("Normal")
	ws := exec.NewWorkspace(cat, prng.NewStream(77), 2048)
	scan, err := exec.NewScan(cat, "means", "means")
	if err != nil {
		t.Fatal(err)
	}
	seed, err := exec.NewSeed(scan, normal, []expr.Expr{expr.C("m"), expr.F(1)}, []string{"val"})
	if err != nil {
		t.Fatal(err)
	}
	inst := &exec.Instantiate{Child: seed}
	// Cross with a 3-row constant table triples every tuple while sharing
	// the TS-seed.
	threes, err := exec.NewScan(cat, "means", "w") // reuse means as a 2-row table
	if err != nil {
		t.Fatal(err)
	}
	plan := exec.NewCross(inst, threes, nil)
	res, err := Run(ws, plan, Query{Agg: exec.AggSpec{Kind: exec.AggSum, Expr: expr.C("val")}},
		Config{N: 40, M: 2, P: 0.02, L: 20})
	if err != nil {
		t.Fatal(err)
	}
	// Q = 2 * (X1 + X2) since each X appears twice after the cross join:
	// mean 18, sd 2*sqrt(2). Check the quantile band.
	want := 18 + 2*math.Sqrt2*quantileZ(0.98)
	if math.Abs(res.Quantile-want) > 2.0 {
		t.Fatalf("shared-seed quantile = %g, want ≈ %g", res.Quantile, want)
	}
	for _, s := range res.TailSamples {
		if s < res.Quantile {
			t.Fatalf("tail sample below cutoff")
		}
	}
}

// TestFullRecomputeAblationAgrees: the DisableDeltaAggregates mode is a
// different implementation of the same algorithm; estimates must agree
// closely (bit-identical up to float associativity at acceptance
// boundaries).
func TestFullRecomputeAblationAgrees(t *testing.T) {
	run := func(disable bool) float64 {
		cat := lossCatalog([]float64{3, 4, 5, 6})
		ws := exec.NewWorkspace(cat, prng.NewStream(123), 2048)
		plan := lossPlan(t, ws, 1)
		res, err := Run(ws, plan, sumQuery(),
			Config{N: 60, M: 2, P: 0.02, L: 30, DisableDeltaAggregates: disable})
		if err != nil {
			t.Fatal(err)
		}
		return res.Quantile
	}
	fast, slow := run(false), run(true)
	if math.Abs(fast-slow) > 1e-9 {
		t.Fatalf("delta %g vs full recompute %g", fast, slow)
	}
}
