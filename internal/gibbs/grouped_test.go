package gibbs

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/prng"
)

// aggOver wraps a tuple plan in a single-SUM Aggregate root.
func aggOver(t testing.TB, plan exec.Node, groupBy []expr.Expr, names []string) *exec.Aggregate {
	t.Helper()
	agg, err := exec.NewAggregate(plan,
		groupBy, names,
		[]exec.AggSpec{{Kind: exec.AggSum, Expr: expr.C("losses.val"), Name: "s"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return agg
}

// TestMonteCarloGroupedMatchesMonteCarlo: for a single ungrouped
// aggregate the grouped path is bit-identical to MonteCarlo, including
// when a small workspace window forces §9 replenishing runs.
func TestMonteCarloGroupedMatchesMonteCarlo(t *testing.T) {
	const n = 40
	for _, window := range []int{n, 8} {
		cat := lossCatalog([]float64{3, 4, 5, 6})
		ws := exec.NewWorkspace(cat, prng.NewStream(77), window)
		plan := lossPlan(t, ws, 1)
		want, err := MonteCarlo(ws, plan, sumQuery(), n)
		if err != nil {
			t.Fatalf("window=%d: %v", window, err)
		}
		ws2 := exec.NewWorkspace(cat, prng.NewStream(77), window)
		plan2 := lossPlan(t, ws2, 1)
		gr, err := MonteCarloGrouped(ws2, aggOver(t, plan2, nil, nil), nil, n)
		if err != nil {
			t.Fatalf("window=%d: grouped: %v", window, err)
		}
		if len(gr.Keys) != 1 || len(gr.Samples[0]) != 1 {
			t.Fatalf("window=%d: shape %d groups", window, len(gr.Keys))
		}
		got := gr.Samples[0][0]
		if len(got) != n {
			t.Fatalf("window=%d: %d samples", window, len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("window=%d rep %d: grouped %v vs MonteCarlo %v", window, i, got[i], want[i])
			}
		}
	}
}

// TestMonteCarloGroupedReplenishGrouped: grouped keys survive the
// replenishing rebuild (small window, per-cid groups).
func TestMonteCarloGroupedReplenishGrouped(t *testing.T) {
	cat := lossCatalog([]float64{3, 4, 5})
	ws := exec.NewWorkspace(cat, prng.NewStream(5), 8)
	plan := lossPlan(t, ws, 1)
	gr, err := MonteCarloGrouped(ws, aggOver(t, plan, []expr.Expr{expr.C("means.cid")}, []string{"cid"}), nil, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(gr.Keys) != 3 {
		t.Fatalf("groups = %d", len(gr.Keys))
	}
	for g := range gr.Keys {
		if len(gr.Samples[g][0]) != 30 {
			t.Fatalf("group %d samples = %d", g, len(gr.Samples[g][0]))
		}
	}
}
