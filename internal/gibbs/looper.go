// Package gibbs implements MCDB-R's GibbsLooper (paper §4, §7, Appendix A):
// the operator that turns a stream of instantiated Gibbs tuples into (1) an
// estimate of an extreme quantile of the query-result distribution and (2)
// a set of DB versions whose query results all lie in the tail beyond it.
//
// The looper executes the paper's Algorithm 3 with the loops inverted as
// described in §7: rather than perturbing DB versions one at a time, it
// iterates over TS-seed handles in increasing order (merging a disk-based
// priority queue of Gibbs tuples with the sorted seed store) and, for each
// seed, updates every DB version via rejection sampling against the current
// cutoff, amortizing data scans.
package gibbs

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/bundle"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/pq"
	"repro/internal/types"
)

// Query describes what the looper aggregates (Appendix A inputs 2–4).
// Aggregate kinds and state live in internal/exec (exec.AggKind,
// exec.AggState) since ISSUE 5 made aggregation a plan/exec operator; the
// looper consumes one exec.AggSpec and delta-maintains its AggState per
// DB version.
type Query struct {
	// Agg is the single aggregate the looper maintains incrementally.
	// Tail sampling conditions on one aggregate; multi-aggregate select
	// lists are a plain-Monte-Carlo feature (see MonteCarloGrouped).
	Agg exec.AggSpec
	// FinalPred is the final selection predicate applied to each tuple
	// before inclusion in the aggregate — the place where predicates
	// spanning random attributes of multiple seeds must live (App. A).
	FinalPred expr.Expr
	// LowerTail samples the lower tail (losses below the p-quantile)
	// instead of the upper tail; the looper negates query results
	// internally.
	LowerTail bool
	// GroupBy, when non-empty, restricts the looper to the tuples whose
	// grouping expressions (deterministic, paper App. A) evaluate to
	// GroupKey — the per-group conditioned run of a GROUP BY ... DOMAIN
	// query. The plan still executes once per run over all groups; only
	// the aggregation is restricted.
	GroupBy  []expr.Expr
	GroupKey types.Row
}

// Config sets the sampling parameters of Algorithm 3.
type Config struct {
	// N is the number of DB versions per bootstrapping step (n_i = N).
	N int
	// M is the number of bootstrapping steps.
	M int
	// P is the target upper-tail probability (the quantile is 1-P).
	P float64
	// L is the number of tail samples to return (n_{m+1} = L).
	L int
	// K is the number of Gibbs updating steps per bootstrapping step;
	// the paper finds K=1 suffices. 0 selects 1.
	K int
	// MaxTriesPerUpdate bounds rejection-sampling candidates per
	// (seed, version) update; exceeding it keeps the current value (the
	// heavy-tail regime of Appendix B). 0 selects 100000.
	MaxTriesPerUpdate int
	// DisableDeltaAggregates makes every rejection-sampling candidate
	// recompute the aggregate over ALL tuples instead of only the tuples
	// affected by the updated seed. This is the naive implementation the
	// paper's §4.3 dismisses; it exists solely for the ablation benchmark
	// quantifying the delta-maintenance optimization.
	DisableDeltaAggregates bool
	// PQMemLimit bounds the in-memory entries of the tuple priority
	// queue; 0 selects the pq default.
	PQMemLimit int
	// SpillDir receives priority-queue spill files ("" = os.TempDir()).
	SpillDir string
	// Parallelism is the number of worker goroutines the batch
	// state-recomputation path may use; values <= 1 select the sequential
	// path. Results are bit-for-bit identical for every value: versions are
	// partitioned across workers, each version's aggregate is accumulated
	// in the same tuple order as sequential execution, and replenishing
	// runs are serialized between parallel rounds.
	Parallelism int
}

func (c *Config) validate() error {
	if c.N < 2 {
		return fmt.Errorf("gibbs: need N >= 2 DB versions, got %d", c.N)
	}
	if c.M < 1 {
		return fmt.Errorf("gibbs: need M >= 1 bootstrapping steps, got %d", c.M)
	}
	if c.P <= 0 || c.P >= 1 {
		return fmt.Errorf("gibbs: tail probability P must lie in (0,1), got %g", c.P)
	}
	if c.L < 1 {
		return fmt.Errorf("gibbs: need L >= 1 tail samples, got %d", c.L)
	}
	if c.K == 0 {
		c.K = 1
	}
	if c.K < 0 {
		return fmt.Errorf("gibbs: K must be positive, got %d", c.K)
	}
	if c.MaxTriesPerUpdate <= 0 {
		c.MaxTriesPerUpdate = 100000
	}
	return nil
}

// IterStats records one bootstrapping step for the benchmark harness.
type IterStats struct {
	// Cutoff is the elite threshold after this step's purge (theta_i).
	Cutoff float64
	// CurQuantile is p^{i/m}, the tail probability the cutoff estimates.
	CurQuantile float64
	// Duration is wall-clock time of the step (purge+clone+perturb).
	Duration time.Duration
	// Candidates counts rejection-sampling proposals; Accepts successful
	// updates; GiveUps updates abandoned at MaxTriesPerUpdate.
	Candidates, Accepts, GiveUps int64
	// Replenishments counts §9 query-plan re-runs during the step.
	Replenishments int
}

// Result is the looper's output.
type Result struct {
	// Quantile is the estimate of the (1-P)-quantile (theta_m). For
	// LowerTail queries it estimates the P-quantile.
	Quantile float64
	// TailSamples holds the L query results, all beyond Quantile.
	TailSamples []float64
	// Cutoffs is the trajectory of theta_1..theta_m.
	Cutoffs []float64
	// Iters holds per-step statistics.
	Iters []IterStats
	// Replenishments is the total number of query-plan re-runs.
	Replenishments int
}

// errNeedReplenish signals that rejection sampling ran out of materialized
// stream values (paper §9).
var errNeedReplenish = errors.New("gibbs: stream window exhausted")

// Run executes tail sampling for the plan in the workspace. The plan must
// already include Seed and Instantiate operators; Run executes it (and
// re-executes it on replenishment).
func Run(ws *exec.Workspace, plan exec.Node, q Query, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if ws.Window < cfg.N {
		return nil, fmt.Errorf("gibbs: workspace window %d smaller than N=%d initial versions", ws.Window, cfg.N)
	}
	lp := &looper{ws: ws, plan: plan, q: q, cfg: cfg}
	if err := lp.init(); err != nil {
		return nil, err
	}
	return lp.run()
}

type looper struct {
	ws   *exec.Workspace
	plan exec.Node
	q    Query
	cfg  Config

	rand       []*bundle.Tuple // retained tuples with random lineage, in plan order
	seedIDs    [][]uint64      // per rand tuple: distinct seed handles, ascending
	nTotal     int             // total plan-output tuples (after group restriction)
	base       exec.AggState   // contribution of purely deterministic tuples
	states     []exec.AggState // per-version aggregate state
	aggExpr    *expr.Compiled
	finalPred  *expr.Compiled
	groupExprs []*expr.Compiled // compiled Query.GroupBy, nil when ungrouped
	groupSlots []int            // schema slots the grouping expressions read
	keyBuf     types.Row
	buf        types.Row
	sign       float64 // -1 for lower-tail queries
	totalRepl  int
	stats      *IterStats // current step's counters
}

func (lp *looper) init() error {
	schema := lp.plan.Schema()
	if lp.q.Agg.Kind != exec.AggCount {
		if lp.q.Agg.Expr == nil {
			return fmt.Errorf("gibbs: %s requires an aggregate expression", lp.q.Agg.Kind)
		}
		c, err := expr.Compile(lp.q.Agg.Expr, schema)
		if err != nil {
			return fmt.Errorf("gibbs: aggregate expression: %w", err)
		}
		lp.aggExpr = c
	}
	if lp.q.FinalPred != nil {
		c, err := expr.Compile(lp.q.FinalPred, schema)
		if err != nil {
			return fmt.Errorf("gibbs: final predicate: %w", err)
		}
		lp.finalPred = c
	}
	if len(lp.q.GroupBy) > 0 {
		if len(lp.q.GroupKey) != len(lp.q.GroupBy) {
			return fmt.Errorf("gibbs: group key has %d values for %d grouping expressions", len(lp.q.GroupKey), len(lp.q.GroupBy))
		}
		lp.groupExprs = make([]*expr.Compiled, len(lp.q.GroupBy))
		for i, g := range lp.q.GroupBy {
			c, err := expr.Compile(g, schema)
			if err != nil {
				return fmt.Errorf("gibbs: GROUP BY expression %s: %w", g, err)
			}
			lp.groupExprs[i] = c
			for _, name := range expr.Columns(g) {
				lp.groupSlots = append(lp.groupSlots, schema.MustLookup(name))
			}
		}
		lp.keyBuf = make(types.Row, len(lp.groupExprs))
	}
	lp.sign = 1
	if lp.q.LowerTail {
		lp.sign = -1
	}
	lp.buf = make(types.Row, schema.Len())
	if err := lp.loadTuples(false); err != nil {
		return err
	}
	// A sharded workspace materializes [Base, Base+Window); start the
	// version->position mapping at the same offset so version v of this
	// shard is exactly replicate Base+v of the sequential run.
	lp.ws.Seeds.InitAssignAt(lp.ws.Base, lp.cfg.N)
	return nil
}

// loadTuples (re-)streams the query plan through the batch pipeline,
// restricts the stream to the looper's group (when the query is a
// per-group conditioned run), and classifies it on the way past: purely
// deterministic tuples fold into the base aggregate state immediately and
// are dropped, tuples with random lineage are retained (the only part of
// the plan output the looper holds for the whole sampling run).
func (lp *looper) loadTuples(replenishing bool) error {
	if replenishing {
		lp.ws.BeginReplenish()
	}
	it, err := lp.plan.Open(lp.ws)
	if err != nil {
		return err
	}
	defer it.Close()
	schema := lp.plan.Schema()
	rand := lp.rand[:0]
	lp.base = exec.AggState{}
	total := 0
	for {
		b, err := it.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for _, tu := range b.Tuples {
			if lp.groupExprs != nil {
				// Group keys are deterministic by construction; a grouping
				// expression reading a VG-generated slot is an error.
				for _, slot := range lp.groupSlots {
					for _, r := range tu.Rand {
						if r.Slot == slot {
							return fmt.Errorf("gibbs: GROUP BY reads the VG-generated attribute %q; grouping columns must be deterministic", schema.Col(slot).Name)
						}
					}
				}
				match := true
				for i, ge := range lp.groupExprs {
					lp.keyBuf[i] = ge.Eval(tu.Det)
					if !lp.keyBuf[i].Equal(lp.q.GroupKey[i]) {
						match = false
						break
					}
				}
				if !match {
					continue
				}
			}
			total++
			if tu.IsRandom() {
				rand = append(rand, lp.ws.Retain(tu))
				continue
			}
			s, c, err := lp.contribRow(tu.Det)
			if err != nil {
				return err
			}
			lp.base.Add(s, c)
		}
	}
	if replenishing && total != lp.nTotal {
		return fmt.Errorf("gibbs: replenishing run produced %d tuples, previously %d; plan is not deterministic", total, lp.nTotal)
	}
	lp.nTotal = total
	lp.rand = rand
	// Precompute each random tuple's distinct seed handles once per plan
	// run: the Gibbs pass re-keys tuples in the priority queue constantly,
	// and calling SeedIDs (a map build plus a sort) per re-key dominated
	// its allocation profile.
	if cap(lp.seedIDs) >= len(rand) {
		lp.seedIDs = lp.seedIDs[:len(rand)]
	} else {
		lp.seedIDs = make([][]uint64, len(rand))
	}
	for i, tu := range rand {
		lp.seedIDs[i] = tu.SeedIDs()
	}
	return nil
}

// contrib evaluates one tuple's aggregate contribution under a binding.
func (lp *looper) contrib(tu *bundle.Tuple, b bundle.Binding) (float64, int64, error) {
	return lp.contribBuf(tu, b, lp.buf)
}

// contribBuf is contrib with an explicit scratch row so concurrent workers
// can evaluate versions without sharing lp.buf.
func (lp *looper) contribBuf(tu *bundle.Tuple, b bundle.Binding, buf types.Row) (float64, int64, error) {
	row, present, err := tu.Eval(b, buf)
	if err != nil {
		return 0, 0, err
	}
	if !present {
		return 0, 0, nil
	}
	return lp.contribRow(row)
}

func (lp *looper) contribRow(row types.Row) (float64, int64, error) {
	if lp.finalPred != nil && !lp.finalPred.EvalBool(row) {
		return 0, 0, nil
	}
	return lp.q.Agg.Contribution(lp.aggExpr, row, lp.sign)
}

// recomputeStates rebuilds every version's aggregate state from scratch,
// replenishing if any assigned position is not materialized.
func (lp *looper) recomputeStates(nVersions int) error {
	if lp.cfg.Parallelism > 1 && nVersions > 1 {
		return lp.recomputeStatesParallel(nVersions)
	}
	lp.states = make([]exec.AggState, nVersions)
	//mcdbr:hotpath
	for v := 0; v < nVersions; {
		if err := lp.ws.Cancelled(); err != nil {
			return err
		}
		st := lp.base
		b := bundle.Bind(lp.ws.Seeds, v)
		retry := false
		for _, tu := range lp.rand {
			s, c, err := lp.contrib(tu, b)
			if err != nil {
				var nm *bundle.ErrNotMaterialized
				if !errors.As(err, &nm) {
					return err
				}
				if rerr := lp.replenish(); rerr != nil {
					return rerr
				}
				retry = true
				break
			}
			st.Add(s, c)
		}
		if retry {
			continue // re-evaluate the same version against fresh windows
		}
		lp.states[v] = st
		v++
	}
	return nil
}

// recomputeStatesParallel is the batch-recompute fast path: version states
// are independent given materialized windows, so they are partitioned into
// contiguous chunks across cfg.Parallelism workers, each with a private
// scratch row. Per-version accumulation visits tuples in the same order as
// the sequential path, so every state is bit-for-bit identical. Workers
// only read shared looper state; when any version needs stream values
// outside the materialized windows, the round is abandoned, one
// replenishing run executes serially, and the whole batch retries (the
// retry is cheap and replenishment with an unchanged MaxUsed is
// idempotent, so convergence matches the sequential path).
func (lp *looper) recomputeStatesParallel(nVersions int) error {
	//mcdbr:hotpath
	for {
		if err := lp.ws.Cancelled(); err != nil {
			return err
		}
		states := make([]exec.AggState, nVersions)
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			firstErr error
			needRepl bool
		)
		for _, w := range exec.Shards(nVersions, lp.cfg.Parallelism) {
			lo, hi := w[0], w[1]
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				// Contain worker panics (a panic here would be fatal to the
				// process even if the caller installed a recover).
				defer func() {
					if r := recover(); r != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("gibbs: recompute worker panicked: %v", r)
						}
						mu.Unlock()
					}
				}()
				buf := make(types.Row, len(lp.buf))
				for v := lo; v < hi; v++ {
					if err := lp.ws.Cancelled(); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					st := lp.base
					b := bundle.Bind(lp.ws.Seeds, v)
					for _, tu := range lp.rand {
						s, c, err := lp.contribBuf(tu, b, buf)
						if err != nil {
							mu.Lock()
							var nm *bundle.ErrNotMaterialized
							if errors.As(err, &nm) {
								needRepl = true
							} else if firstErr == nil {
								firstErr = err
							}
							mu.Unlock()
							return
						}
						st.Add(s, c)
					}
					states[v] = st
				}
			}(lo, hi)
		}
		wg.Wait()
		if firstErr != nil {
			return firstErr
		}
		if !needRepl {
			lp.states = states
			return nil
		}
		if err := lp.replenish(); err != nil {
			return err
		}
	}
}

func (lp *looper) replenish() error {
	lp.totalRepl++
	if lp.stats != nil {
		lp.stats.Replenishments++
	}
	return lp.loadTuples(true)
}

func (lp *looper) run() (*Result, error) {
	cfg := lp.cfg
	if err := lp.recomputeStates(cfg.N); err != nil {
		return nil, err
	}
	// Reject NaN aggregates before sampling: every NaN comparison against
	// the cutoff is false, so rejection sampling would burn its whole
	// MaxTriesPerUpdate budget for every (seed, version) pair and the
	// purge would select garbage elites. Surface the bad input instead.
	for v, st := range lp.states {
		if math.IsNaN(st.Value(lp.q.Agg.Kind)) {
			return nil, fmt.Errorf("gibbs: DB version %d has a NaN query result; a VG function or aggregate expression produced a non-finite value", v)
		}
	}
	res := &Result{}
	pi := math.Pow(cfg.P, 1/float64(cfg.M))
	cutoff := math.Inf(-1)
	//mcdbr:hotpath
	for i := 1; i <= cfg.M; i++ {
		if err := lp.ws.Cancelled(); err != nil {
			return nil, err
		}
		step := IterStats{CurQuantile: math.Pow(cfg.P, float64(i)/float64(cfg.M))}
		lp.stats = &step
		start := time.Now() //mcdbr:nondet ok(per-iteration progress timing; never feeds query values)

		// Purge: keep the top 100*pi% "elite" versions.
		nS := len(lp.states)
		e := int(pi*float64(nS) + 0.5)
		if e < 1 {
			e = 1
		}
		if e > nS {
			e = nS
		}
		elite := lp.eliteVersions(e)
		cutoff = lp.states[elite[len(elite)-1]].Value(lp.q.Agg.Kind)
		step.Cutoff = lp.sign * cutoff

		// Clone elite assignments into the next step's version count.
		next := cfg.N
		if i == cfg.M {
			next = cfg.L
		}
		if err := lp.ws.Seeds.CloneVersions(elite, next); err != nil {
			return nil, err
		}
		if err := lp.recomputeStates(next); err != nil {
			return nil, err
		}

		// Perturb: K systematic Gibbs updating steps.
		for k := 0; k < cfg.K; k++ {
			if err := lp.pass(cutoff); err != nil {
				return nil, err
			}
		}

		step.Duration = time.Since(start) //mcdbr:nondet ok(per-iteration progress timing; never feeds query values)
		res.Iters = append(res.Iters, step)
		res.Cutoffs = append(res.Cutoffs, step.Cutoff)
		lp.stats = nil
	}
	res.Quantile = lp.sign * cutoff
	res.TailSamples = make([]float64, len(lp.states))
	for v, st := range lp.states {
		res.TailSamples[v] = lp.sign * st.Value(lp.q.Agg.Kind)
	}
	res.Replenishments = lp.totalRepl
	return res, nil
}

// eliteVersions returns the indexes of the e versions with the largest
// aggregate values, ordered by descending value (ties by lower index).
func (lp *looper) eliteVersions(e int) []int {
	idx := make([]int, len(lp.states))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort is fine: version counts are small (N, L).
	for i := 0; i < e; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			vj := lp.states[idx[j]].Value(lp.q.Agg.Kind)
			vb := lp.states[idx[best]].Value(lp.q.Agg.Kind)
			if vj > vb {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:e]
}

// pass performs one systematic Gibbs updating step: every TS-seed in
// increasing handle order, every DB version, rejection sampling against
// cutoff (paper §7 and Appendix A.2).
func (lp *looper) pass(cutoff float64) error {
	queue := pq.New(lp.cfg.PQMemLimit, lp.cfg.SpillDir)
	defer queue.Reset()
	for i := range lp.rand {
		ids := lp.seedIDs[i]
		if len(ids) == 0 {
			continue
		}
		if err := queue.Push(pq.Entry{Key: ids[0], Payload: uint64(i)}); err != nil {
			return err
		}
	}
	//mcdbr:hotpath
	for queue.Len() > 0 {
		if err := lp.ws.Cancelled(); err != nil {
			return err
		}
		key, payloads, err := queue.PopAllWithKey()
		if err != nil {
			return err
		}
		if key == pq.MaxKey {
			break // fully processed tuples parked at the tail (App. A.2)
		}
		for v := range lp.states {
			if err := lp.updateSeedVersion(key, payloads, v, cutoff); err != nil {
				return err
			}
		}
		for _, p := range payloads {
			nk, ok := nextSeedAfter(lp.seedIDs[p], key)
			if !ok {
				nk = pq.MaxKey
			}
			if err := queue.Push(pq.Entry{Key: nk, Payload: p}); err != nil {
				return err
			}
		}
	}
	return nil
}

// updateSeedVersion performs the rejection algorithm (paper Algorithm 2 /
// Fig. 1) for one TS-seed and one DB version: propose the next unused
// stream value, accept when the updated query result still meets the
// cutoff.
func (lp *looper) updateSeedVersion(seedID uint64, payloads []uint64, v int, cutoff float64) error {
	seed := lp.ws.Seeds.MustGet(seedID)
	cur := bundle.Bind(lp.ws.Seeds, v)
	oldS, oldC, err := lp.affectedContrib(payloads, cur)
	if err != nil {
		return err
	}
	for tries := 0; tries < lp.cfg.MaxTriesPerUpdate; tries++ {
		pos := seed.MaxUsed + 1
		if !seed.Window.Contains(pos) {
			if err := lp.replenish(); err != nil {
				return err
			}
			// Windows changed; current-assignment contributions must be
			// recomputed against the rebuilt presence vectors.
			oldS, oldC, err = lp.affectedContrib(payloads, cur)
			if err != nil {
				return err
			}
			if !seed.Window.Contains(pos) {
				return fmt.Errorf("gibbs: replenishment did not cover seed %d position %d", seedID, pos)
			}
		}
		if lp.stats != nil {
			lp.stats.Candidates++
		}
		seed.MaxUsed = pos // consumed whether accepted or not (paper §6 item 4)
		cand := cur.WithOverride(seedID, pos)
		var st exec.AggState
		if lp.cfg.DisableDeltaAggregates {
			// Ablation mode: full recomputation per candidate (§4.3's
			// "obviously unacceptable" strategy, minus the plan re-run).
			st, err = lp.fullState(cand)
			if err != nil {
				return err
			}
		} else {
			newS, newC, err := lp.affectedContrib(payloads, cand)
			if err != nil {
				return err
			}
			st = lp.states[v]
			st.Sum += newS - oldS
			st.Count += newC - oldC
		}
		if st.Value(lp.q.Agg.Kind) >= cutoff {
			seed.Assign[v] = pos
			lp.states[v] = st
			if lp.stats != nil {
				lp.stats.Accepts++
			}
			return nil
		}
	}
	// Heavy-tail regime (Appendix B): no acceptable candidate within the
	// try budget; keep the current value.
	if lp.stats != nil {
		lp.stats.GiveUps++
	}
	return nil
}

// nextSeedAfter returns the first handle in ids (sorted ascending)
// strictly greater than key; the allocation-free counterpart of
// bundle.Tuple.NextSeedAfter over the looper's precomputed seed lists.
func nextSeedAfter(ids []uint64, key uint64) (uint64, bool) {
	for _, id := range ids {
		if id > key {
			return id, true
		}
	}
	return 0, false
}

// fullState recomputes one version's aggregate over every tuple under the
// given binding; used only by the DisableDeltaAggregates ablation.
func (lp *looper) fullState(b bundle.Binding) (exec.AggState, error) {
	st := lp.base
	for _, tu := range lp.rand {
		s, c, err := lp.contrib(tu, b)
		if err != nil {
			return st, err
		}
		st.Add(s, c)
	}
	return st, nil
}

// affectedContrib sums the contributions of the Gibbs tuples associated
// with the seed being updated; only these can change when the seed's
// assignment changes, so the aggregate delta needs no full recomputation.
func (lp *looper) affectedContrib(payloads []uint64, b bundle.Binding) (float64, int64, error) {
	var s float64
	var c int64
	for _, p := range payloads {
		ds, dc, err := lp.contrib(lp.rand[p], b)
		if err != nil {
			var nm *bundle.ErrNotMaterialized
			if errors.As(err, &nm) {
				// A *current* assignment fell outside the window: possible
				// only through bugs, since replenishment preserves assigned
				// positions. Surface loudly.
				return 0, 0, fmt.Errorf("gibbs: assigned position missing: %w", err)
			}
			return 0, 0, err
		}
		s += ds
		c += dc
	}
	return s, c, nil
}
