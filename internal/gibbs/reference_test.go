package gibbs

import (
	"math"
	"testing"

	"repro/internal/prng"
	"repro/internal/stats"
)

func TestGibbsStationarity(t *testing.T) {
	// If X^(0) ~ h(x; c), then X^(k) ~ h(x; c) for all k (paper §3.1,
	// citing Asmussen & Glynn Th. XIII.5.1). Start from exact conditional
	// samples (via brute-force rejection) and check the marginal of X_1
	// after Gibbs updates against brute-force conditional samples.
	const r = 4
	c := 3.0
	m := SumModel(prng.Normal{Mu: 0, Sigma: 1}, r)
	rng := prng.NewSub(11)

	drawConditional := func() []float64 {
		for {
			x := m.Draw(rng)
			if Sum(x) >= c {
				return x
			}
		}
	}
	const n = 4000
	gibbsX1 := make([]float64, 0, n)
	bruteX1 := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		x := drawConditional()
		if err := m.Update(x, 2, c, rng, 0, nil); err != nil {
			t.Fatal(err)
		}
		if Sum(x) < c {
			t.Fatal("Gibbs update left the conditioning event")
		}
		gibbsX1 = append(gibbsX1, x[0])
		bruteX1 = append(bruteX1, drawConditional()[0])
	}
	// Two-sample KS via comparing ECDFs on a grid.
	e1, e2 := stats.NewECDF(gibbsX1), stats.NewECDF(bruteX1)
	d := 0.0
	for x := -3.0; x < 5.0; x += 0.05 {
		if diff := math.Abs(e1.At(x) - e2.At(x)); diff > d {
			d = diff
		}
	}
	// KS critical value at alpha=0.001 for n=m=4000 is ~0.0437.
	if d > 0.0437 {
		t.Fatalf("stationarity violated: two-sample KS distance %g", d)
	}
}

func TestGibbsConvergenceToIndependence(t *testing.T) {
	// Two chains from the same start with independent updates decorrelate
	// as k grows (paper §3.1). Measure correlation of Q across chain pairs.
	const r = 8
	c := 4.0
	m := SumModel(prng.Normal{Mu: 0, Sigma: 1}, r)
	rng := prng.NewSub(17)
	corrAtK := func(k int) float64 {
		const pairs = 1500
		var sx, sy, sxx, syy, sxy float64
		for i := 0; i < pairs; i++ {
			var x0 []float64
			for {
				x0 = m.Draw(rng)
				if Sum(x0) >= c {
					break
				}
			}
			a := append([]float64(nil), x0...)
			b := append([]float64(nil), x0...)
			if err := m.Update(a, k, c, rng, 0, nil); err != nil {
				t.Fatal(err)
			}
			if err := m.Update(b, k, c, rng, 0, nil); err != nil {
				t.Fatal(err)
			}
			qa, qb := Sum(a), Sum(b)
			sx += qa
			sy += qb
			sxx += qa * qa
			syy += qb * qb
			sxy += qa * qb
		}
		n := float64(pairs)
		cov := sxy/n - (sx/n)*(sy/n)
		va, vb := sxx/n-(sx/n)*(sx/n), syy/n-(sy/n)*(sy/n)
		return cov / math.Sqrt(va*vb)
	}
	c1 := corrAtK(1)
	c3 := corrAtK(3)
	if c3 > c1+0.05 {
		t.Fatalf("correlation did not shrink: k=1 %g, k=3 %g", c1, c3)
	}
	if c3 > 0.35 {
		t.Fatalf("chains still strongly correlated after k=3: %g", c3)
	}
}

func TestReferenceTailSampleQuantile(t *testing.T) {
	// Quantile estimate for a sum of 10 standard normals at p = 0.01:
	// truth is sqrt(10) * 2.326.
	m := SumModel(prng.Normal{Mu: 0, Sigma: 1}, 10)
	rng := prng.NewSub(23)
	trueQ := stats.NormalQuantile(0.99, 0, math.Sqrt(10))
	const runs = 15
	ests := make([]float64, runs)
	for i := range ests {
		q, samples, err := m.ReferenceTailSample(200, 2, 0.01, 50, 1, rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		ests[i] = q
		for _, s := range samples {
			if s < q {
				t.Fatalf("reference tail sample %g below cutoff %g", s, q)
			}
		}
	}
	s := stats.Summarize(ests)
	if math.Abs(s.Mean-trueQ) > 0.6 {
		t.Fatalf("reference quantile mean %g vs true %g", s.Mean, trueQ)
	}
}

func TestHeavyTailRejectionCostGrows(t *testing.T) {
	// Appendix B: for light-tailed (normal) marginals the rejection cost
	// per update is modest; for heavy-tailed (Pareto alpha=1.2) sums the
	// extreme database is dominated by one huge component and candidates
	// are rejected en masse.
	rng := prng.NewSub(29)
	costPerAccept := func(d prng.Dist, c float64) float64 {
		m := SumModel(d, 10)
		var st GibbsStats
		count := 0
		for count < 40 {
			x := m.Draw(rng)
			if Sum(x) < c {
				continue
			}
			count++
			if err := m.Update(x, 1, c, rng, 2000, &st); err != nil {
				t.Fatal(err)
			}
		}
		return float64(st.Candidates) / float64(st.Accepts+st.GiveUps)
	}
	// Normal sum N(0,10): c at ~0.995-quantile.
	normCost := costPerAccept(prng.Normal{Mu: 0, Sigma: 1}, 2.57*math.Sqrt(10))
	// Pareto(1,1.2) sum: pick c deep in the tail (sum mean = 60).
	paretoCost := costPerAccept(prng.Pareto{Xm: 1, Alpha: 1.2}, 200)
	if paretoCost < 3*normCost {
		t.Fatalf("heavy-tail cost %g not clearly above light-tail cost %g", paretoCost, normCost)
	}
}

func TestUpdateValidation(t *testing.T) {
	m := SumModel(prng.Normal{Mu: 0, Sigma: 1}, 3)
	if err := m.Update([]float64{1, 2}, 1, 0, prng.NewSub(1), 0, nil); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, _, err := m.ReferenceTailSample(1, 1, 0.1, 1, 1, prng.NewSub(1), nil); err == nil {
		t.Fatal("n=1 must error")
	}
}

func TestCloneSlice(t *testing.T) {
	src := [][]float64{{1}, {2}}
	out := CloneSlice(src, 4)
	want := []float64{1, 1, 2, 2}
	for i, w := range want {
		if out[i][0] != w {
			t.Fatalf("CloneSlice = %v", out)
		}
	}
	// Clones must not alias their source.
	out[0][0] = 99
	if src[0][0] == 99 {
		t.Fatal("CloneSlice aliases source")
	}
}

func TestGiveUpKeepsCurrentValue(t *testing.T) {
	// With an impossible cutoff, updates must keep the current vector.
	m := SumModel(prng.Normal{Mu: 0, Sigma: 1}, 3)
	rng := prng.NewSub(31)
	x := []float64{100, 100, 100} // Q = 300, far above anything resampleable
	orig := append([]float64(nil), x...)
	var st GibbsStats
	if err := m.Update(x, 1, 299, rng, 50, &st); err != nil {
		t.Fatal(err)
	}
	if st.GiveUps == 0 {
		t.Fatal("expected give-ups at cutoff 299")
	}
	for i := range x {
		if st.GiveUps == int64(len(x)) && x[i] != orig[i] {
			t.Fatalf("gave up but value changed: %v vs %v", x, orig)
		}
	}
	if Sum(x) < 299 {
		t.Fatal("conditioning event left after give-up")
	}
}
