package gibbs

import (
	"runtime"
	"testing"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/prng"
)

// selectivePlan wraps lossPlan in a Select over the random attribute, so
// tuples carry presence vectors and the replicate value mixes SUM deltas
// with presence tests — the hardest case for shard-layout independence.
func selectivePlan(t testing.TB, ws *exec.Workspace, variance float64) exec.Node {
	t.Helper()
	return &exec.Select{
		Child: lossPlan(t, ws, variance),
		Pred:  expr.B(expr.OpGt, expr.C("losses.val"), expr.F(3.5)),
	}
}

// TestMonteCarloParallelDeterminism is the tentpole contract: the sharded
// executor's output is bit-for-bit identical to sequential execution for
// every worker count, across plain and presence-vector plans and across
// SUM and COUNT aggregates.
func TestMonteCarloParallelDeterminism(t *testing.T) {
	means := []float64{3, 4, 5, 2.5, 6, 4.5, 3.3, 5.1}
	cat := lossCatalog(means)
	const n = 257 // deliberately not a multiple of any worker count

	type mkPlan func(testing.TB, *exec.Workspace, float64) exec.Node
	plans := []struct {
		name string
		mk   mkPlan
		q    Query
	}{
		{"sum", func(t testing.TB, ws *exec.Workspace, v float64) exec.Node { return lossPlan(t, ws, v) }, sumQuery()},
		{"select-sum", selectivePlan, sumQuery()},
		{"select-count", selectivePlan, Query{Agg: exec.AggSpec{Kind: exec.AggCount}}},
	}
	for _, tc := range plans {
		t.Run(tc.name, func(t *testing.T) {
			seqWS := exec.NewWorkspace(cat, prng.NewStream(7), n)
			want, err := MonteCarlo(seqWS, tc.mk(t, seqWS, 1), tc.q, n)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 3, 5, runtime.NumCPU()} {
				ws := exec.NewWorkspace(cat, prng.NewStream(7), n)
				got, err := MonteCarloParallel(ws, tc.mk(t, ws, 1), tc.q, n, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if len(got) != len(want) {
					t.Fatalf("workers=%d: %d samples, want %d", workers, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("workers=%d: replicate %d = %v, want %v (bit-identity violated)",
							workers, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestRunParallelismDeterminism checks the looper's batch-recompute fast
// path: a full tail-sampling run must produce identical quantile
// trajectories and tail samples for every Parallelism value.
func TestRunParallelismDeterminism(t *testing.T) {
	means := []float64{3, 4, 5, 2.5, 6}
	base := Config{N: 32, M: 3, P: 0.05, L: 16, K: 1}

	run := func(parallelism int) *Result {
		t.Helper()
		cat := lossCatalog(means)
		ws := exec.NewWorkspace(cat, prng.NewStream(11), 64)
		plan := lossPlan(t, ws, 1)
		cfg := base
		cfg.Parallelism = parallelism
		res, err := Run(ws, plan, sumQuery(), cfg)
		if err != nil {
			t.Fatalf("parallelism=%d: %v", parallelism, err)
		}
		return res
	}

	want := run(1)
	for _, parallelism := range []int{2, 3, runtime.NumCPU()} {
		got := run(parallelism)
		if got.Quantile != want.Quantile {
			t.Errorf("parallelism=%d: quantile %v, want %v", parallelism, got.Quantile, want.Quantile)
		}
		if len(got.Cutoffs) != len(want.Cutoffs) {
			t.Fatalf("parallelism=%d: %d cutoffs, want %d", parallelism, len(got.Cutoffs), len(want.Cutoffs))
		}
		for i := range want.Cutoffs {
			if got.Cutoffs[i] != want.Cutoffs[i] {
				t.Errorf("parallelism=%d: cutoff %d = %v, want %v", parallelism, i, got.Cutoffs[i], want.Cutoffs[i])
			}
		}
		if len(got.TailSamples) != len(want.TailSamples) {
			t.Fatalf("parallelism=%d: %d tail samples, want %d", parallelism, len(got.TailSamples), len(want.TailSamples))
		}
		for i := range want.TailSamples {
			if got.TailSamples[i] != want.TailSamples[i] {
				t.Errorf("parallelism=%d: tail sample %d = %v, want %v", parallelism, i, got.TailSamples[i], want.TailSamples[i])
			}
		}
	}
}

// TestMonteCarloParallelSmallN exercises the degenerate shard layouts:
// more workers than replicates, and n == 1.
func TestMonteCarloParallelSmallN(t *testing.T) {
	cat := lossCatalog([]float64{3, 4})
	seqWS := exec.NewWorkspace(cat, prng.NewStream(3), 8)
	want, err := MonteCarlo(seqWS, lossPlan(t, seqWS, 1), sumQuery(), 3)
	if err != nil {
		t.Fatal(err)
	}
	ws := exec.NewWorkspace(cat, prng.NewStream(3), 8)
	got, err := MonteCarloParallel(ws, lossPlan(t, ws, 1), sumQuery(), 3, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replicate %d: %v vs %v", i, got[i], want[i])
		}
	}
	ws1 := exec.NewWorkspace(cat, prng.NewStream(3), 8)
	one, err := MonteCarloParallel(ws1, lossPlan(t, ws1, 1), sumQuery(), 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0] != want[0] {
		t.Fatalf("n=1: %v, want [%v]", one, want[0])
	}
	if _, err := MonteCarloParallel(ws1, lossPlan(t, ws1, 1), sumQuery(), 0, 4); err == nil {
		t.Error("n=0 must error")
	}
}
