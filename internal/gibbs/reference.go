package gibbs

import (
	"fmt"
	"math"

	"repro/internal/prng"
)

// This file implements the paper's Algorithm 1 (systematic Gibbs sampler)
// and Algorithm 2 (rejection GENCOND) in their textbook vector form. The
// production looper specializes these to Gibbs tuples; the reference
// implementation exists so the statistical properties — stationarity under
// the conditioned law h(x; c) and convergence to independence — can be
// tested directly, and is exported for the E4/E5 parameter studies.

// VectorModel describes the conditioned target distribution
// h(x; c) = P(X = x | Q(X) >= c) for an independent-component vector X.
type VectorModel struct {
	// Dims holds the marginal distribution of each component.
	Dims []prng.Dist
	// Q is the aggregation query; the canonical case is the sum.
	Q func(x []float64) float64
}

// SumModel returns a VectorModel with i.i.d. components and Q = sum.
func SumModel(d prng.Dist, r int) *VectorModel {
	dims := make([]prng.Dist, r)
	for i := range dims {
		dims[i] = d
	}
	return &VectorModel{Dims: dims, Q: Sum}
}

// Sum is the SUM aggregate for VectorModel.Q.
func Sum(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}

// GibbsStats counts proposals during updating, for the Appendix B
// rejection-cost experiments.
type GibbsStats struct {
	Candidates int64
	Accepts    int64
	GiveUps    int64
}

// Update performs Algorithm 1: k systematic Gibbs updating steps on x,
// in place, where each component update uses the rejection GENCOND of
// Algorithm 2 against Q(x) >= c. maxTries bounds candidates per component
// (0 = 1e6); when exhausted the current value is kept.
func (m *VectorModel) Update(x []float64, k int, c float64, r *prng.Sub, maxTries int, stats *GibbsStats) error {
	if len(x) != len(m.Dims) {
		return fmt.Errorf("gibbs: vector length %d, model has %d dims", len(x), len(m.Dims))
	}
	if maxTries <= 0 {
		maxTries = 1000000
	}
	for j := 0; j < k; j++ {
		for i := range x {
			// For the common sum-decomposable case, maintain q without the
			// i-th component (the "efficient implementation" of §3.1).
			old := x[i]
			accepted := false
			for t := 0; t < maxTries; t++ {
				if stats != nil {
					stats.Candidates++
				}
				u := m.Dims[i].Sample(r)
				x[i] = u
				if m.Q(x) >= c {
					accepted = true
					break
				}
			}
			if accepted {
				if stats != nil {
					stats.Accepts++
				}
			} else {
				x[i] = old
				if stats != nil {
					stats.GiveUps++
				}
			}
		}
	}
	return nil
}

// Draw samples one unconditioned vector from the model.
func (m *VectorModel) Draw(r *prng.Sub) []float64 {
	x := make([]float64, len(m.Dims))
	for i, d := range m.Dims {
		x[i] = d.Sample(r)
	}
	return x
}

// CloneSlice duplicates each element of src approximately n/len(src) times
// (the paper's CLONE(S, n) helper), using the same block layout as the
// TS-seed store.
func CloneSlice(src [][]float64, n int) [][]float64 {
	e := len(src)
	out := make([][]float64, n)
	for j := 0; j < n; j++ {
		out[j] = append([]float64(nil), src[j*e/n]...)
	}
	return out
}

// ReferenceTailSample runs Algorithm 3 on a VectorModel without any
// database machinery: N vectors per step, M steps, target tail probability
// P, L final samples, K Gibbs steps. It returns the quantile estimate and
// the tail sample of Q values. The E2/E4 studies use this to separate
// statistical behaviour from engine behaviour.
func (m *VectorModel) ReferenceTailSample(nVec, mSteps int, p float64, l, k int, r *prng.Sub, stats *GibbsStats) (float64, []float64, error) {
	if nVec < 2 || mSteps < 1 || l < 1 {
		return 0, nil, fmt.Errorf("gibbs: invalid reference parameters n=%d m=%d l=%d", nVec, mSteps, l)
	}
	pi := math.Pow(p, 1/float64(mSteps))
	S := make([][]float64, nVec)
	for i := range S {
		S[i] = m.Draw(r)
	}
	cutoff := 0.0
	for i := 1; i <= mSteps; i++ {
		// Purge to the elite top-100*pi%.
		e := int(pi*float64(len(S)) + 0.5)
		if e < 1 {
			e = 1
		}
		if e > len(S) {
			e = len(S)
		}
		elite := topVectors(m, S, e)
		cutoff = m.Q(elite[len(elite)-1])
		next := nVec
		if i == mSteps {
			next = l
		}
		S = CloneSlice(elite, next)
		for _, x := range S {
			if err := m.Update(x, k, cutoff, r, 0, stats); err != nil {
				return 0, nil, err
			}
		}
	}
	qs := make([]float64, len(S))
	for i, x := range S {
		qs[i] = m.Q(x)
	}
	return cutoff, qs, nil
}

func topVectors(m *VectorModel, S [][]float64, e int) [][]float64 {
	idx := make([]int, len(S))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < e; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if m.Q(S[idx[j]]) > m.Q(S[idx[best]]) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	out := make([][]float64, e)
	for i := 0; i < e; i++ {
		out[i] = S[idx[i]]
	}
	return out
}
