// Adaptive Monte Carlo: confidence-interval early stopping over the
// replicate-sharded executor. A fixed MONTECARLO(N) run spends N replicates
// regardless of estimator variance; the round driver here executes
// replicates in geometrically growing rounds over the same replicate-
// sharded windows and stops as soon as every (group, aggregate) pair's
// normal-approximation confidence interval is relatively tighter than the
// user's target. Because stream element i is a pure function of (seed, i),
// the concatenation of rounds [0,32), [32,96), [96,224), ... is exactly the
// prefix of the fixed run's replicate sequence — stopping after m
// replicates yields results bit-identical to MONTECARLO(m) at every worker
// count, so adaptive mode is still fully deterministic given the data.
package gibbs

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/stats"
	"repro/internal/types"
)

// Default stopping-rule parameters (see StopRule).
const (
	DefaultConfidence = 0.95
	DefaultMaxSamples = 65536
	DefaultFirstRound = 32
)

// StopRule is the UNTIL ERROR < eps AT conf%, MAX n stopping rule. The
// zero value of a field selects its default; TargetRelError <= 0 disables
// convergence checking entirely (the driver runs straight to MaxSamples —
// the shape the progressive-streaming path uses for fixed-N queries).
type StopRule struct {
	// TargetRelError is the relative CI half-width every aggregate of
	// every group must reach: half-width / |mean| <= TargetRelError.
	TargetRelError float64
	// Confidence is the two-sided CI level (0.95 = 95%).
	Confidence float64
	// MaxSamples caps total replicates when convergence never fires.
	MaxSamples int
	// FirstRound is the first round's replicate count; rounds double.
	FirstRound int
	// DegradeOnDeadline selects graceful degradation: when the run's
	// context deadline fires after at least one complete round, the driver
	// returns the rounds accumulated so far (bit-identical to a fixed run
	// of that count) with Degraded set, instead of an error. Cancellation
	// for any other reason — client disconnect, explicit cancel — still
	// errors: there is nobody left to want a partial answer. Fixed-N
	// execution never sets this; its bit-identical contract is strict.
	DegradeOnDeadline bool
}

// Normalized returns the rule with defaults filled in.
func (r StopRule) Normalized() StopRule {
	if r.Confidence <= 0 || r.Confidence >= 1 {
		r.Confidence = DefaultConfidence
	}
	if r.MaxSamples <= 0 {
		r.MaxSamples = DefaultMaxSamples
	}
	if r.FirstRound <= 0 {
		r.FirstRound = DefaultFirstRound
	}
	return r
}

// CISnapshot is the state of one (group, aggregate) estimate after a
// round: the running mean over replicates, its CI half-width at the rule's
// confidence, and whether the pair has met the target.
type CISnapshot struct {
	// N is the number of replicates folded in (HAVING-included only).
	N int64
	// Mean is the running point estimate.
	Mean float64
	// HalfWidth is the CI half-width at the rule's confidence level.
	HalfWidth float64
	// RelError is HalfWidth / |Mean| (+Inf when undefined).
	RelError float64
	// Converged reports whether RelError has met the target.
	Converged bool
	// ConvergedAt is the cumulative replicate count at which the pair
	// first converged; 0 while it has not.
	ConvergedAt int
}

// RoundUpdate is the progress report the driver emits after each round —
// the payload of a progressive (SSE) result event.
type RoundUpdate struct {
	// Round numbers the completed round (1-based).
	Round int
	// SamplesUsed is the cumulative replicate count.
	SamplesUsed int
	// Keys holds the group keys, parallel to CIs.
	Keys []types.Row
	// CIs[g][a] snapshots group g, aggregate a.
	CIs [][]CISnapshot
	// Converged reports whether every pair has met the target.
	Converged bool
}

// AdaptiveResult is the round driver's output.
type AdaptiveResult struct {
	// Runs holds the replicates actually executed — identical to a fixed
	// MONTECARLO(SamplesUsed) run's output.
	Runs *GroupedRuns
	// SamplesUsed is the total replicate count (m).
	SamplesUsed int
	// Rounds is the number of rounds executed.
	Rounds int
	// Converged reports whether the target was met (false: MaxSamples hit).
	Converged bool
	// Degraded reports that the run's deadline fired before convergence
	// and Runs holds the partial prefix accumulated by then (see
	// StopRule.DegradeOnDeadline).
	Degraded bool
	// CIs[g][a] is the final snapshot per (group, aggregate) pair.
	CIs [][]CISnapshot
}

// MonteCarloGroupedAdaptive runs grouped Monte Carlo in geometrically
// growing rounds, stopping once every (group, aggregate) pair's relative
// CI half-width meets rule.TargetRelError or rule.MaxSamples replicates
// have run. Each round's replicate window [lo, hi) is replicate-sharded
// across up to workers goroutines exactly like MonteCarloGroupedParallel,
// so the accumulated sample is bit-identical to MonteCarloGrouped(m) for
// every worker count and round schedule. progress, when non-nil, is
// invoked after every round with the cumulative state (from the driver's
// goroutine; it must not retain the CIs slices across calls).
//
// Convergence is judged on HAVING-included replicates only — the same
// subsample the reported result distributions are built from — so a group
// excluded in every replicate so far contributes an unbounded interval
// and keeps the driver running until MaxSamples.
func MonteCarloGroupedAdaptive(ws *exec.Workspace, agg *exec.Aggregate, final expr.Expr, rule StopRule, workers int, progress func(RoundUpdate)) (*AdaptiveResult, error) {
	rule = rule.Normalized()
	var (
		acc  *GroupedRuns
		wel  [][]stats.Welford
		cis  [][]CISnapshot
		res  = &AdaptiveResult{}
		lo   = 0
		size = rule.FirstRound
	)
	//mcdbr:hotpath
	for lo < rule.MaxSamples {
		if err := ws.Cancelled(); err != nil {
			if degradable(rule, acc, err) {
				res.Degraded = true
				break
			}
			return nil, err
		}
		hi := lo + size
		if hi > rule.MaxSamples {
			hi = rule.MaxSamples
		}
		part, err := monteCarloGroupedWindow(ws, agg, final, lo, hi, workers)
		if err != nil {
			if degradable(rule, acc, err) {
				res.Degraded = true
				break
			}
			return nil, err
		}
		if acc == nil {
			acc = part
			nG, nA := len(part.Keys), 0
			if nG > 0 {
				nA = len(part.Samples[0])
			}
			wel = make([][]stats.Welford, nG)
			cis = make([][]CISnapshot, nG)
			for g := 0; g < nG; g++ {
				wel[g] = make([]stats.Welford, nA)
				cis[g] = make([]CISnapshot, nA)
			}
		} else {
			var merr error
			if acc, merr = mergeGroupedRuns([]*GroupedRuns{acc, part}); merr != nil {
				return nil, merr
			}
		}
		res.Rounds++
		res.SamplesUsed = hi
		converged := foldRound(wel, cis, part, rule, hi)
		res.Converged = converged
		if progress != nil {
			progress(RoundUpdate{Round: res.Rounds, SamplesUsed: hi, Keys: acc.Keys, CIs: cis, Converged: converged})
		}
		if converged && rule.TargetRelError > 0 {
			break
		}
		lo = hi
		size *= 2
	}
	if acc == nil {
		return nil, fmt.Errorf("gibbs: adaptive run executed no replicates (MaxSamples=%d)", rule.MaxSamples)
	}
	res.Runs = acc
	res.CIs = cis
	return res, nil
}

// degradable reports whether a run error downgrades to a partial result:
// the rule opted in, at least one round completed (so res holds a
// bit-identical fixed-run prefix), and the cause was specifically a
// deadline — an explicit cancel means nobody is waiting for an answer.
func degradable(rule StopRule, acc *GroupedRuns, err error) bool {
	return rule.DegradeOnDeadline && acc != nil && errors.Is(err, context.DeadlineExceeded)
}

// foldRound feeds one round's replicates into the per-pair accumulators
// and refreshes the snapshots; it reports whether every pair has met the
// target. HAVING-excluded replicates are skipped, matching the subsample
// result distributions are built from.
func foldRound(wel [][]stats.Welford, cis [][]CISnapshot, part *GroupedRuns, rule StopRule, total int) bool {
	all := true
	for g := range wel {
		for a := range wel[g] {
			w := &wel[g][a]
			for r, x := range part.Samples[g][a] {
				if part.Include != nil && !part.Include[g][r] {
					continue
				}
				w.Add(x)
			}
			snap := &cis[g][a]
			snap.N = w.N()
			snap.Mean = w.Mean()
			snap.HalfWidth = w.HalfWidth(rule.Confidence)
			snap.RelError = w.RelHalfWidth(rule.Confidence)
			ok := rule.TargetRelError > 0 && snap.RelError <= rule.TargetRelError
			if ok && snap.ConvergedAt == 0 {
				snap.ConvergedAt = total
			}
			snap.Converged = ok
			if !ok {
				all = false
			}
		}
	}
	return all
}

// monteCarloGroupedWindow evaluates the replicate window [lo, hi) of the
// prototype workspace's run, replicate-sharded across up to workers
// goroutines. It is MonteCarloGroupedParallel generalized to a nonzero
// base: each shard's workspace covers a sub-window [lo+a, lo+b), so the
// merged output is replicates lo..hi-1 of the sequential run.
func monteCarloGroupedWindow(ws *exec.Workspace, agg *exec.Aggregate, final expr.Expr, lo, hi, workers int) (*GroupedRuns, error) {
	if hi <= lo {
		return nil, fmt.Errorf("gibbs: empty replicate window [%d, %d)", lo, hi)
	}
	windows := exec.Shards(hi-lo, workers)
	if len(windows) == 1 {
		sub := exec.ShardWorkspace(ws, lo, hi)
		return MonteCarloGrouped(sub, agg, final, hi-lo)
	}
	parts := make([]*GroupedRuns, len(windows))
	errs := make([]error, len(windows))
	done := make(chan int, len(windows))
	//mcdbr:hotpath
	for i, w := range windows {
		sub := exec.ShardWorkspace(ws, lo+w[0], lo+w[1])
		go func(i, n int, sub *exec.Workspace) {
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("gibbs: adaptive shard %d panicked: %v", i, r)
				}
				done <- i
			}()
			if err := sub.Cancelled(); err != nil {
				errs[i] = err
				return
			}
			parts[i], errs[i] = MonteCarloGrouped(sub, agg, final, n)
		}(i, w[1]-w[0], sub)
	}
	for range windows {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mergeGroupedRuns(parts)
}
