package gibbs

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/prng"
)

// adaptiveSetup builds a fresh workspace + single-SUM aggregate over the
// loss plan for each run (workspaces are single-use).
func adaptiveSetup(t testing.TB, seed uint64, window int, variance float64, grouped bool) (*exec.Workspace, *exec.Aggregate) {
	t.Helper()
	cat := lossCatalog([]float64{30, 40, 50, 60})
	ws := exec.NewWorkspace(cat, prng.NewStream(seed), window)
	plan := lossPlan(t, ws, variance)
	var gb []expr.Expr
	var names []string
	if grouped {
		gb, names = []expr.Expr{expr.C("means.cid")}, []string{"cid"}
	}
	return ws, aggOver(t, plan, gb, names)
}

// TestAdaptiveBitIdentity: stopping the round driver after m replicates
// must be bit-identical to a fixed MonteCarloGrouped(m) run — at every
// worker count, grouped and ungrouped.
func TestAdaptiveBitIdentity(t *testing.T) {
	rule := StopRule{TargetRelError: 0.02, Confidence: 0.95, MaxSamples: 4096, FirstRound: 32}
	for _, grouped := range []bool{false, true} {
		ws, agg := adaptiveSetup(t, 99, 64, 1, grouped)
		res, err := MonteCarloGroupedAdaptive(ws, agg, nil, rule, 1, nil)
		if err != nil {
			t.Fatalf("grouped=%v: %v", grouped, err)
		}
		if !res.Converged {
			t.Fatalf("grouped=%v: low-variance run did not converge (m=%d)", grouped, res.SamplesUsed)
		}
		m := res.SamplesUsed
		wsF, aggF := adaptiveSetup(t, 99, 64, 1, grouped)
		fixed, err := MonteCarloGrouped(wsF, aggF, nil, m)
		if err != nil {
			t.Fatalf("grouped=%v: fixed: %v", grouped, err)
		}
		for _, workers := range []int{1, 2, 5} {
			wsW, aggW := adaptiveSetup(t, 99, 64, 1, grouped)
			resW, err := MonteCarloGroupedAdaptive(wsW, aggW, nil, rule, workers, nil)
			if err != nil {
				t.Fatalf("grouped=%v workers=%d: %v", grouped, workers, err)
			}
			if resW.SamplesUsed != m {
				t.Fatalf("grouped=%v workers=%d: stopped at %d, want %d", grouped, workers, resW.SamplesUsed, m)
			}
			for g := range fixed.Keys {
				for a := range fixed.Samples[g] {
					for r := range fixed.Samples[g][a] {
						if resW.Runs.Samples[g][a][r] != fixed.Samples[g][a][r] {
							t.Fatalf("grouped=%v workers=%d g=%d a=%d r=%d: adaptive %v vs fixed %v",
								grouped, workers, g, a, r, resW.Runs.Samples[g][a][r], fixed.Samples[g][a][r])
						}
					}
				}
			}
		}
	}
}

// TestAdaptiveEarlyStopSavesSamples: a low-variance estimator must stop
// well before MaxSamples, a loose target must stop earlier than a tight
// one, and the round schedule must be geometric (32, 96, 224, ...).
func TestAdaptiveEarlyStopSavesSamples(t *testing.T) {
	ws, agg := adaptiveSetup(t, 7, 64, 0.01, false)
	var totals []int
	res, err := MonteCarloGroupedAdaptive(ws, agg, nil,
		StopRule{TargetRelError: 0.01, MaxSamples: 8192},
		2, func(u RoundUpdate) { totals = append(totals, u.SamplesUsed) })
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d samples", res.SamplesUsed)
	}
	if res.SamplesUsed >= 8192/4 {
		t.Errorf("low-variance run used %d of 8192 samples; expected large savings", res.SamplesUsed)
	}
	want := 32
	for i, got := range totals {
		if got != want {
			t.Errorf("round %d cumulative = %d, want %d", i+1, got, want)
		}
		want += 32 << uint(i+1)
	}
	// Tighter target must use at least as many samples.
	ws2, agg2 := adaptiveSetup(t, 7, 64, 0.01, false)
	res2, err := MonteCarloGroupedAdaptive(ws2, agg2, nil,
		StopRule{TargetRelError: 0.0001, MaxSamples: 8192}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.SamplesUsed < res.SamplesUsed {
		t.Errorf("tight target used %d samples, loose used %d", res2.SamplesUsed, res.SamplesUsed)
	}
}

// TestAdaptiveMaxSamplesCap: TargetRelError <= 0 disables convergence and
// the driver runs exactly to MaxSamples (the progressive fixed-N shape).
func TestAdaptiveMaxSamplesCap(t *testing.T) {
	ws, agg := adaptiveSetup(t, 3, 64, 1, false)
	res, err := MonteCarloGroupedAdaptive(ws, agg, nil,
		StopRule{TargetRelError: 0, MaxSamples: 100, FirstRound: 16}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplesUsed != 100 {
		t.Errorf("SamplesUsed = %d, want MaxSamples=100", res.SamplesUsed)
	}
	if res.Converged {
		t.Error("disabled target must never report convergence")
	}
	if n := len(res.Runs.Samples[0][0]); n != 100 {
		t.Errorf("got %d samples, want 100", n)
	}
	ci := res.CIs[0][0]
	if ci.N != 100 || math.IsNaN(ci.Mean) || ci.HalfWidth <= 0 {
		t.Errorf("final CI snapshot %+v not populated", ci)
	}
}

// TestAdaptiveCancellation: a cancelled workspace context aborts the
// round driver with the cancellation cause.
func TestAdaptiveCancellation(t *testing.T) {
	ws, agg := adaptiveSetup(t, 3, 64, 1, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ws.Ctx = ctx
	_, err := MonteCarloGroupedAdaptive(ws, agg, nil, StopRule{TargetRelError: 0.001}, 2, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestAdaptiveDegradeOnDeadline: with DegradeOnDeadline set, a deadline
// firing after a completed round yields the partial prefix — bit-identical
// to a fixed run of the same count — with Degraded set, instead of an
// error. The deadline is injected deterministically via a cancel cause
// from the progress callback, so the prefix length is exact.
func TestAdaptiveDegradeOnDeadline(t *testing.T) {
	rule := StopRule{TargetRelError: 1e-9, MaxSamples: 4096, FirstRound: 32, DegradeOnDeadline: true}
	ws, agg := adaptiveSetup(t, 11, 64, 1, true)
	ctx, cancel := context.WithCancelCause(context.Background())
	ws.Ctx = ctx
	res, err := MonteCarloGroupedAdaptive(ws, agg, nil, rule, 2, func(u RoundUpdate) {
		if u.Round == 2 {
			cancel(context.DeadlineExceeded)
		}
	})
	if err != nil {
		t.Fatalf("degradable deadline returned error: %v", err)
	}
	if !res.Degraded || res.Converged {
		t.Fatalf("Degraded=%v Converged=%v, want degraded non-converged", res.Degraded, res.Converged)
	}
	if res.SamplesUsed != 96 {
		t.Fatalf("SamplesUsed = %d, want the two completed rounds (96)", res.SamplesUsed)
	}
	wsF, aggF := adaptiveSetup(t, 11, 64, 1, true)
	fixed, err := MonteCarloGrouped(wsF, aggF, nil, 96)
	if err != nil {
		t.Fatal(err)
	}
	for g := range fixed.Keys {
		for a := range fixed.Samples[g] {
			for r := range fixed.Samples[g][a] {
				if res.Runs.Samples[g][a][r] != fixed.Samples[g][a][r] {
					t.Fatalf("g=%d a=%d r=%d: partial %v vs fixed %v",
						g, a, r, res.Runs.Samples[g][a][r], fixed.Samples[g][a][r])
				}
			}
		}
	}
	if ci := res.CIs[0][0]; ci.N == 0 || ci.HalfWidth <= 0 {
		t.Fatalf("degraded result missing CI snapshot: %+v", ci)
	}

	// Without the opt-in, the same deadline is a hard error.
	wsS, aggS := adaptiveSetup(t, 11, 64, 1, true)
	ctxS, cancelS := context.WithCancelCause(context.Background())
	wsS.Ctx = ctxS
	strict := rule
	strict.DegradeOnDeadline = false
	_, err = MonteCarloGroupedAdaptive(wsS, aggS, nil, strict, 2, func(u RoundUpdate) {
		if u.Round == 2 {
			cancelS(context.DeadlineExceeded)
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("strict rule err = %v, want DeadlineExceeded", err)
	}

	// A deadline with zero completed rounds has nothing to degrade to.
	wsZ, aggZ := adaptiveSetup(t, 11, 64, 1, true)
	ctxZ, cancelZ := context.WithCancelCause(context.Background())
	cancelZ(context.DeadlineExceeded)
	wsZ.Ctx = ctxZ
	if _, err := MonteCarloGroupedAdaptive(wsZ, aggZ, nil, rule, 2, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("zero-round deadline err = %v, want DeadlineExceeded", err)
	}
}

// TestCancelledWorkspacePropagates: plain sharded paths also honor the
// workspace context.
func TestCancelledWorkspacePropagates(t *testing.T) {
	ws, agg := adaptiveSetup(t, 3, 64, 1, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ws.Ctx = ctx
	if _, err := MonteCarloGroupedParallel(ws, agg, nil, 64, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("grouped parallel err = %v, want context.Canceled", err)
	}
	ws2, _ := adaptiveSetup(t, 3, 64, 1, false)
	plan2 := lossPlan(t, ws2, 1)
	ws2.Ctx = ctx
	if _, err := MonteCarloParallel(ws2, plan2, sumQuery(), 64, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel err = %v, want context.Canceled", err)
	}
	ws3, _ := adaptiveSetup(t, 3, 64, 1, false)
	plan3 := lossPlan(t, ws3, 1)
	ws3.Ctx = ctx
	_, err := Run(ws3, plan3, sumQuery(), Config{N: 8, M: 2, P: 0.1, L: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("looper err = %v, want context.Canceled", err)
	}
}
