package gibbs

import (
	"math"
	"testing"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/prng"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/vg"
)

// lossCatalog builds the paper §2 means table with the given per-customer
// means.
func lossCatalog(meansVals []float64) *storage.Catalog {
	cat := storage.NewCatalog()
	means := storage.NewTable("means", types.NewSchema(
		types.Column{Name: "cid", Kind: types.KindInt},
		types.Column{Name: "m", Kind: types.KindFloat},
	))
	for i, m := range meansVals {
		means.MustAppend(types.Row{types.NewInt(int64(i + 1)), types.NewFloat(m)})
	}
	cat.Put(means)
	return cat
}

// lossPlan builds Scan(means) -> Seed(Normal(m, variance)) -> Instantiate.
func lossPlan(t testing.TB, ws *exec.Workspace, variance float64) exec.Node {
	t.Helper()
	normal, _ := vg.NewRegistry().Lookup("Normal")
	scan, err := exec.NewScan(ws.Catalog, "means", "means")
	if err != nil {
		t.Fatal(err)
	}
	seed, err := exec.NewSeed(scan, normal,
		[]expr.Expr{expr.C("means.m"), expr.F(variance)}, []string{"losses.val"})
	if err != nil {
		t.Fatal(err)
	}
	return &exec.Instantiate{Child: seed}
}

func sumQuery() Query {
	return Query{Agg: exec.AggSpec{Kind: exec.AggSum, Expr: expr.C("losses.val")}}
}

func TestConfigValidation(t *testing.T) {
	cat := lossCatalog([]float64{3})
	bad := []Config{
		{N: 1, M: 5, P: 0.01, L: 4},
		{N: 4, M: 0, P: 0.01, L: 4},
		{N: 4, M: 5, P: 0, L: 4},
		{N: 4, M: 5, P: 1, L: 4},
		{N: 4, M: 5, P: 0.01, L: 0},
		{N: 4, M: 5, P: 0.01, L: 4, K: -1},
	}
	for i, cfg := range bad {
		ws := exec.NewWorkspace(cat, prng.NewStream(1), 64)
		plan := lossPlan(t, ws, 1)
		if _, err := Run(ws, plan, sumQuery(), cfg); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, cfg)
		}
	}
	// Window smaller than N must be rejected.
	ws := exec.NewWorkspace(cat, prng.NewStream(1), 2)
	plan := lossPlan(t, ws, 1)
	if _, err := Run(ws, plan, sumQuery(), Config{N: 8, M: 2, P: 0.1, L: 4}); err == nil {
		t.Error("window < N should be rejected")
	}
}

func TestFig1Mechanics(t *testing.T) {
	// The paper's Fig. 1 example: 3 customers with means {3,4,5},
	// variance 1, p = 1/32, n = 4, m = 5, k = 1. Our PRNG differs from the
	// paper's so the exact values differ, but the mechanics must hold:
	// cutoffs increase monotonically across the 5 iterations, and every
	// final sample meets the final cutoff.
	cat := lossCatalog([]float64{3, 4, 5})
	ws := exec.NewWorkspace(cat, prng.NewStream(2026), 512)
	plan := lossPlan(t, ws, 1)
	res, err := Run(ws, plan, sumQuery(), Config{N: 4, M: 5, P: 1.0 / 32, L: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cutoffs) != 5 {
		t.Fatalf("cutoffs = %v", res.Cutoffs)
	}
	for i := 1; i < len(res.Cutoffs); i++ {
		if res.Cutoffs[i] < res.Cutoffs[i-1] {
			t.Fatalf("cutoff decreased at step %d: %v", i, res.Cutoffs)
		}
	}
	if len(res.TailSamples) != 4 {
		t.Fatalf("tail samples = %d", len(res.TailSamples))
	}
	for _, q := range res.TailSamples {
		if q < res.Quantile {
			t.Fatalf("tail sample %g below quantile estimate %g", q, res.Quantile)
		}
	}
	// p^{i/m} trajectory: (1/32)^{1/5} = 1/2 per step.
	for i, it := range res.Iters {
		want := math.Pow(1.0/32, float64(i+1)/5)
		if math.Abs(it.CurQuantile-want) > 1e-12 {
			t.Fatalf("step %d CurQuantile = %g, want %g", i, it.CurQuantile, want)
		}
	}
}

func TestTailSamplingAccuracyAgainstAnalyticNormal(t *testing.T) {
	// SUM of 20 independent N(i,1) variables is N(sum, 20). Walk out to
	// the 0.99-quantile and check the estimate across independent runs.
	meansVals := make([]float64, 20)
	mu := 0.0
	for i := range meansVals {
		meansVals[i] = float64(i%5) + 1
		mu += meansVals[i]
	}
	sigma := math.Sqrt(20)
	trueQ := stats.NormalQuantile(0.99, mu, sigma)

	const runs = 12
	ests := make([]float64, 0, runs)
	var allSamples []float64
	for r := 0; r < runs; r++ {
		cat := lossCatalog(meansVals)
		ws := exec.NewWorkspace(cat, prng.NewStream(uint64(1000+r)), 4096)
		plan := lossPlan(t, ws, 1)
		res, err := Run(ws, plan, sumQuery(), Config{N: 100, M: 2, P: 0.01, L: 50})
		if err != nil {
			t.Fatal(err)
		}
		ests = append(ests, res.Quantile)
		allSamples = append(allSamples, res.TailSamples...)
	}
	s := stats.Summarize(ests)
	// The estimator should be close to truth: |bias| within a few standard
	// errors and the spread small relative to the distribution width.
	if math.Abs(s.Mean-trueQ) > 4*s.Std/math.Sqrt(runs)+0.5 {
		t.Fatalf("quantile estimate mean %g vs true %g (std %g)", s.Mean, trueQ, s.Std)
	}
	if s.Std > sigma {
		t.Fatalf("estimator std %g too large", s.Std)
	}
	// All tail samples exceed the (conservative) true quantile minus noise.
	low := 0
	for _, q := range allSamples {
		if q < trueQ-2*sigma {
			low++
		}
	}
	if low > 0 {
		t.Fatalf("%d tail samples far below the true quantile", low)
	}
}

func TestTailSamplesDistribution(t *testing.T) {
	// Tail samples should follow the conditioned law: for a normal sum
	// conditioned on exceeding the q-quantile, compare the empirical tail
	// CDF with the analytic conditional CDF via KS.
	meansVals := []float64{2, 3, 4, 5, 6, 7, 8, 9}
	mu, sigma := 44.0, math.Sqrt(8)
	cat := lossCatalog(meansVals)
	var all []float64
	for r := 0; r < 10; r++ {
		ws := exec.NewWorkspace(cat, prng.NewStream(uint64(7000+r)), 4096)
		plan := lossPlan(t, ws, 1)
		res, err := Run(ws, plan, sumQuery(), Config{N: 200, M: 2, P: 0.04, L: 100, K: 2})
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, res.TailSamples...)
	}
	trueQ := stats.NormalQuantile(0.96, mu, sigma)
	condCDF := func(x float64) float64 {
		if x < trueQ {
			return 0
		}
		f0 := stats.NormalCDF(trueQ, mu, sigma)
		return (stats.NormalCDF(x, mu, sigma) - f0) / (1 - f0)
	}
	e := stats.NewECDF(all)
	d := e.KSDistance(condCDF)
	// Samples are not fully independent across L within a run and the
	// cutoff is estimated, so allow a generous band; a broken sampler
	// produces d ~ 0.5.
	if d > 0.2 {
		t.Fatalf("KS distance to conditional law = %g", d)
	}
}

func TestCountAggregate(t *testing.T) {
	// COUNT of tuples with val > m+1: per customer ~ Bernoulli(0.159);
	// walking the count out to its upper tail must produce counts near the
	// maximum (all 12 customers in the tail).
	meansVals := make([]float64, 12)
	for i := range meansVals {
		meansVals[i] = 5
	}
	cat := lossCatalog(meansVals)
	ws := exec.NewWorkspace(cat, prng.NewStream(5), 4096)
	plan := lossPlan(t, ws, 1)
	q := Query{Agg: exec.AggSpec{Kind: exec.AggCount}, FinalPred: expr.B(expr.OpGt, expr.C("losses.val"), expr.F(6))}
	res, err := Run(ws, plan, q, Config{N: 100, M: 2, P: 0.01, L: 30})
	if err != nil {
		t.Fatal(err)
	}
	// Binomial(12, 0.159): mean 1.9, 0.99-quantile is 6.
	if res.Quantile < 4 || res.Quantile > 12 {
		t.Fatalf("count quantile = %g", res.Quantile)
	}
	for _, s := range res.TailSamples {
		if s < res.Quantile {
			t.Fatalf("tail count %g below cutoff %g", s, res.Quantile)
		}
		if s != math.Trunc(s) {
			t.Fatalf("count sample %g not integral", s)
		}
	}
}

func TestAvgAggregate(t *testing.T) {
	meansVals := []float64{3, 4, 5, 6}
	cat := lossCatalog(meansVals)
	ws := exec.NewWorkspace(cat, prng.NewStream(6), 2048)
	plan := lossPlan(t, ws, 1)
	q := Query{Agg: exec.AggSpec{Kind: exec.AggAvg, Expr: expr.C("losses.val")}}
	res, err := Run(ws, plan, q, Config{N: 100, M: 2, P: 0.01, L: 20})
	if err != nil {
		t.Fatal(err)
	}
	// AVG of 4 N(mu_i,1) has mean 4.5, sd 0.5; 0.99-quantile ≈ 5.66.
	want := stats.NormalQuantile(0.99, 4.5, 0.5)
	if math.Abs(res.Quantile-want) > 1.0 {
		t.Fatalf("avg quantile = %g, want ≈ %g", res.Quantile, want)
	}
}

func TestLowerTail(t *testing.T) {
	meansVals := []float64{3, 4, 5, 6}
	cat := lossCatalog(meansVals)
	ws := exec.NewWorkspace(cat, prng.NewStream(7), 2048)
	plan := lossPlan(t, ws, 1)
	q := Query{Agg: exec.AggSpec{Kind: exec.AggSum, Expr: expr.C("losses.val")}, LowerTail: true}
	res, err := Run(ws, plan, q, Config{N: 100, M: 2, P: 0.01, L: 20})
	if err != nil {
		t.Fatal(err)
	}
	// Lower 0.01-quantile of N(18, 4): ≈ 18 - 2*2.326 = 13.3.
	want := stats.NormalQuantile(0.01, 18, 2)
	if math.Abs(res.Quantile-want) > 1.5 {
		t.Fatalf("lower quantile = %g, want ≈ %g", res.Quantile, want)
	}
	for _, s := range res.TailSamples {
		if s > res.Quantile {
			t.Fatalf("lower-tail sample %g above cutoff %g", s, res.Quantile)
		}
	}
}

func TestReplenishmentTriggersAndPreservesCorrectness(t *testing.T) {
	// A tiny window forces repeated §9 replenishing runs.
	meansVals := []float64{3, 4, 5}
	cat := lossCatalog(meansVals)
	ws := exec.NewWorkspace(cat, prng.NewStream(8), 16)
	plan := lossPlan(t, ws, 1)
	res, err := Run(ws, plan, sumQuery(), Config{N: 16, M: 4, P: 0.01, L: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replenishments == 0 {
		t.Fatal("expected replenishing runs with window=16")
	}
	for _, s := range res.TailSamples {
		if s < res.Quantile {
			t.Fatalf("sample %g below cutoff %g after replenishment", s, res.Quantile)
		}
	}
	// Sanity: quantile in a plausible band for N(12, sqrt(3)).
	want := stats.NormalQuantile(0.99, 12, math.Sqrt(3))
	if math.Abs(res.Quantile-want) > 3 {
		t.Fatalf("quantile = %g, want ≈ %g", res.Quantile, want)
	}
}

func TestFinalPredicateSpanningSeeds(t *testing.T) {
	// Two random attributes from different seeds combined in the final
	// predicate — the case that MUST be handled in the looper (App. A).
	cat := lossCatalog([]float64{5, 5, 5})
	normal, _ := vg.NewRegistry().Lookup("Normal")
	ws := exec.NewWorkspace(cat, prng.NewStream(9), 2048)
	scan, _ := exec.NewScan(cat, "means", "means")
	seed1, err := exec.NewSeed(scan, normal, []expr.Expr{expr.C("means.m"), expr.F(1)}, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	seed2, err := exec.NewSeed(seed1, normal, []expr.Expr{expr.C("means.m"), expr.F(1)}, []string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	plan := &exec.Instantiate{Child: seed2}
	q := Query{
		Agg:       exec.AggSpec{Kind: exec.AggSum, Expr: expr.B(expr.OpSub, expr.C("b"), expr.C("a"))},
		FinalPred: expr.B(expr.OpGt, expr.C("b"), expr.C("a")),
	}
	res, err := Run(ws, plan, q, Config{N: 50, M: 2, P: 0.04, L: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quantile <= 0 {
		t.Fatalf("sum of positive parts should be positive, got %g", res.Quantile)
	}
	for _, s := range res.TailSamples {
		if s < res.Quantile {
			t.Fatalf("sample %g below cutoff %g", s, res.Quantile)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	cat := lossCatalog([]float64{3, 4, 5})
	ws := exec.NewWorkspace(cat, prng.NewStream(10), 1024)
	plan := lossPlan(t, ws, 1)
	res, err := Run(ws, plan, sumQuery(), Config{N: 20, M: 3, P: 0.05, L: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iters) != 3 {
		t.Fatalf("iters = %d", len(res.Iters))
	}
	for i, it := range res.Iters {
		if it.Candidates < it.Accepts {
			t.Fatalf("step %d: candidates %d < accepts %d", i, it.Candidates, it.Accepts)
		}
		if it.Accepts == 0 && it.GiveUps == 0 {
			t.Fatalf("step %d recorded no update outcomes", i)
		}
	}
}
