package gibbs

import (
	"fmt"

	"repro/internal/exec"
)

// MonteCarlo evaluates the query result for n independent Monte Carlo
// repetitions — the behaviour of the original MCDB system, where the i-th
// value of every stream is assigned to the i-th repetition. It runs the
// plan once over tuple bundles regardless of n and returns the n query
// results. The naive baseline engine and the E1/E3 benchmarks build on it.
func MonteCarlo(ws *exec.Workspace, plan exec.Node, q Query, n int) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("gibbs: need n >= 1 repetitions, got %d", n)
	}
	// Tail direction is irrelevant when returning the whole sample.
	q.LowerTail = false
	lp := &looper{ws: ws, plan: plan, q: q, cfg: Config{N: n, M: 1, P: 0.5, L: n, K: 1, MaxTriesPerUpdate: 1}}
	if err := lp.init(); err != nil {
		return nil, err
	}
	if err := lp.recomputeStates(n); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for v, st := range lp.states {
		out[v] = st.value(q.Agg)
	}
	return out, nil
}
