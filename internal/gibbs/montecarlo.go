package gibbs

import (
	"fmt"

	"repro/internal/exec"
)

// MonteCarlo evaluates the query result for n independent Monte Carlo
// repetitions — the behaviour of the original MCDB system, where the i-th
// value of every stream is assigned to the i-th repetition. It runs the
// plan once over tuple bundles regardless of n and returns the n query
// results. The naive baseline engine and the E1/E3 benchmarks build on it.
func MonteCarlo(ws *exec.Workspace, plan exec.Node, q Query, n int) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("gibbs: need n >= 1 repetitions, got %d", n)
	}
	// Tail direction is irrelevant when returning the whole sample.
	q.LowerTail = false
	lp := &looper{ws: ws, plan: plan, q: q, cfg: Config{N: n, M: 1, P: 0.5, L: n, K: 1, MaxTriesPerUpdate: 1}}
	if err := lp.init(); err != nil {
		return nil, err
	}
	if err := lp.recomputeStates(n); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for v, st := range lp.states {
		out[v] = st.value(q.Agg)
	}
	return out, nil
}

// MonteCarloParallel is MonteCarlo with the n repetitions replicate-sharded
// across up to workers goroutines. Each worker receives a private workspace
// over the shared catalog, re-runs the plan (allocating the same TS-seeds
// with the same SplitMix64-derived substreams, since seed allocation is a
// pure function of the deterministic pipeline and the master stream),
// materializes only its shard's stream positions, and evaluates its
// replicate window; shard outputs are merged in replicate order. Because
// stream element i is a pure function of (seed, i), the result is
// bit-for-bit identical to MonteCarlo for every worker count. workers <= 1
// selects the sequential path on ws itself.
func MonteCarloParallel(ws *exec.Workspace, plan exec.Node, q Query, n, workers int) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("gibbs: need n >= 1 repetitions, got %d", n)
	}
	if workers <= 1 || n < 2 {
		return MonteCarlo(ws, plan, q, n)
	}
	return exec.RunSharded(ws, n, workers, func(sh exec.Shard) ([]float64, error) {
		return MonteCarlo(sh.WS, plan, q, sh.Len())
	})
}
