package gibbs

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/bundle"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/types"
)

// MonteCarlo evaluates the query result for n independent Monte Carlo
// repetitions — the behaviour of the original MCDB system, where the i-th
// value of every stream is assigned to the i-th repetition. It runs the
// plan once over tuple bundles regardless of n and returns the n query
// results. The naive baseline engine and the E1/E3 benchmarks build on it.
func MonteCarlo(ws *exec.Workspace, plan exec.Node, q Query, n int) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("gibbs: need n >= 1 repetitions, got %d", n)
	}
	// Tail direction is irrelevant when returning the whole sample.
	q.LowerTail = false
	lp := &looper{ws: ws, plan: plan, q: q, cfg: Config{N: n, M: 1, P: 0.5, L: n, K: 1, MaxTriesPerUpdate: 1}}
	if err := lp.init(); err != nil {
		return nil, err
	}
	if err := lp.recomputeStates(n); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for v, st := range lp.states {
		out[v] = st.Value(q.Agg.Kind)
	}
	return out, nil
}

// MonteCarloParallel is MonteCarlo with the n repetitions replicate-sharded
// across up to workers goroutines. Each worker receives a private workspace
// over the shared catalog, re-runs the plan (allocating the same TS-seeds
// with the same SplitMix64-derived substreams, since seed allocation is a
// pure function of the deterministic pipeline and the master stream),
// materializes only its shard's stream positions, and evaluates its
// replicate window; shard outputs are merged in replicate order. Because
// stream element i is a pure function of (seed, i), the result is
// bit-for-bit identical to MonteCarlo for every worker count. workers <= 1
// selects the sequential path on ws itself.
func MonteCarloParallel(ws *exec.Workspace, plan exec.Node, q Query, n, workers int) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("gibbs: need n >= 1 repetitions, got %d", n)
	}
	if workers <= 1 || n < 2 {
		return MonteCarlo(ws, plan, q, n)
	}
	return exec.RunSharded(ws, n, workers, func(sh exec.Shard) ([]float64, error) {
		return MonteCarlo(sh.WS, plan, q, sh.Len())
	})
}

// GroupedRuns is the output of single-pass grouped Monte Carlo: one
// sample vector per (group, aggregate) pair, with groups in ascending
// key order.
type GroupedRuns struct {
	// Keys holds each group's grouping-expression values; a single group
	// with an empty key for ungrouped queries.
	Keys []types.Row
	// Samples[g][a][r] is aggregate a of group g in Monte Carlo
	// repetition r.
	Samples [][][]float64
	// Include[g][r] reports whether group g satisfied the HAVING clause
	// in repetition r; nil when the query has no HAVING.
	Include [][]bool
}

// MonteCarloGrouped evaluates a grouped (and/or multi-aggregate) query
// for n Monte Carlo repetitions in a single pass: the plan below agg runs
// once, its tuples are partitioned by their deterministic group key once,
// and each repetition produces the whole per-group aggregate vector in
// one sweep — replacing the pre-ISSUE-5 outer loop that re-ran the entire
// pipeline once per group. final is the Gibbs-looper final predicate
// (paper App. A), applied to every tuple before aggregation.
//
// For a single ungrouped aggregate the per-repetition arithmetic is
// identical, operation for operation, to MonteCarlo — deterministic
// tuples accumulate first, then random tuples in plan order — so results
// are bit-for-bit unchanged through this path.
func MonteCarloGrouped(ws *exec.Workspace, agg *exec.Aggregate, final expr.Expr, n int) (*GroupedRuns, error) {
	if n < 1 {
		return nil, fmt.Errorf("gibbs: need n >= 1 repetitions, got %d", n)
	}
	// Aggregate passes its child's stream through; OpenEval pulls it one
	// batch at a time and partitions tuples by group key as they arrive.
	ev, err := agg.OpenEval(ws, final)
	if err != nil {
		return nil, err
	}
	ws.Seeds.InitAssignAt(ws.Base, n)
	nG, nA := ev.NumGroups(), len(agg.Aggs)
	out := &GroupedRuns{Keys: make([]types.Row, nG), Samples: make([][][]float64, nG)}
	for g := 0; g < nG; g++ {
		out.Keys[g] = ev.Key(g)
		out.Samples[g] = make([][]float64, nA)
		for a := 0; a < nA; a++ {
			out.Samples[g][a] = make([]float64, n)
		}
	}
	vec := make([][]float64, nG)
	for g := range vec {
		vec[g] = make([]float64, nA)
	}
	var include []bool
	if agg.Having != nil {
		include = make([]bool, nG)
		out.Include = make([][]bool, nG)
		for g := range out.Include {
			out.Include[g] = make([]bool, n)
		}
	}
	// Window-major fast path (DESIGN.md §13): when the assignment is the
	// contiguous identity layout (always true for sharded workers, and for
	// sequential runs whose window covers all n replicates), evaluate every
	// version of each tuple in one kernel pass. Bit-identical to the
	// version-major loop below; HAVING stays version-major (per-version
	// inclusion), and any invalid layout falls through to it.
	if agg.Having == nil {
		ok, err := ev.EvalWindow(ws, n, out.Samples)
		if err != nil {
			return nil, err
		}
		if ok {
			return out, nil
		}
	}
	//mcdbr:hotpath
	for v := 0; v < n; {
		if err := ws.Cancelled(); err != nil {
			return nil, err
		}
		if err := ev.EvalVersion(bundle.Bind(ws.Seeds, v), vec, include); err != nil {
			// A workspace window smaller than n leaves some assigned
			// positions unmaterialized; run a §9 replenishing pass (which
			// covers currently-assigned positions) and retry the version,
			// exactly like the looper's recomputeStates.
			var nm *bundle.ErrNotMaterialized
			if !errors.As(err, &nm) {
				return nil, err
			}
			ws.BeginReplenish()
			if ev, err = agg.OpenEval(ws, final); err != nil {
				return nil, err
			}
			if ev.NumGroups() != nG {
				return nil, fmt.Errorf("gibbs: replenishing run discovered %d groups, previously %d; plan is not deterministic", ev.NumGroups(), nG)
			}
			for g := 0; g < nG; g++ {
				if !ev.Key(g).Equal(out.Keys[g]) {
					return nil, fmt.Errorf("gibbs: replenishing run changed group %d key (%s vs %s); plan is not deterministic", g, ev.Key(g), out.Keys[g])
				}
			}
			continue
		}
		for g := 0; g < nG; g++ {
			for a := 0; a < nA; a++ {
				out.Samples[g][a][v] = vec[g][a]
			}
			if include != nil {
				out.Include[g][v] = include[g]
			}
		}
		v++
	}
	return out, nil
}

// MonteCarloGroupedParallel is MonteCarloGrouped with the n repetitions
// replicate-sharded across up to workers goroutines, exactly like
// MonteCarloParallel: every shard re-runs the (deterministic-prefix-
// cached) plan in a private workspace, discovers the identical group
// partition, and evaluates only its replicate window; shard outputs are
// merged in replicate order, so results are bit-for-bit identical for
// every worker count.
func MonteCarloGroupedParallel(ws *exec.Workspace, agg *exec.Aggregate, final expr.Expr, n, workers int) (*GroupedRuns, error) {
	if n < 1 {
		return nil, fmt.Errorf("gibbs: need n >= 1 repetitions, got %d", n)
	}
	if workers <= 1 || n < 2 {
		return MonteCarloGrouped(ws, agg, final, n)
	}
	windows := exec.Shards(n, workers)
	parts := make([]*GroupedRuns, len(windows))
	errs := make([]error, len(windows))
	var wg sync.WaitGroup
	//mcdbr:hotpath
	for i, w := range windows {
		sh := exec.Shard{Index: i, Lo: w[0], Hi: w[1], WS: exec.ShardWorkspace(ws, w[0], w[1])}
		wg.Add(1)
		go func(i int, sh exec.Shard) {
			defer wg.Done()
			// Contain worker panics (fatal to the process regardless of
			// recovery installed by the caller).
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("gibbs: grouped shard %d panicked: %v", sh.Index, r)
				}
			}()
			if err := sh.WS.Cancelled(); err != nil {
				errs[i] = err
				return
			}
			parts[i], errs[i] = MonteCarloGrouped(sh.WS, agg, final, sh.Len())
		}(i, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mergeGroupedRuns(parts)
}

// mergeGroupedRuns concatenates per-shard grouped runs in replicate
// order. The group partition is a pure function of the deterministic
// pipeline, so every shard must discover the same keys in the same
// order; a mismatch means the plan is not deterministic and is an error.
func mergeGroupedRuns(parts []*GroupedRuns) (*GroupedRuns, error) {
	first := parts[0]
	out := &GroupedRuns{Keys: first.Keys, Samples: make([][][]float64, len(first.Keys))}
	if first.Include != nil {
		out.Include = make([][]bool, len(first.Keys))
	}
	for _, p := range parts[1:] {
		if len(p.Keys) != len(first.Keys) {
			return nil, fmt.Errorf("gibbs: shard discovered %d groups, previously %d; plan is not deterministic", len(p.Keys), len(first.Keys))
		}
		for g := range p.Keys {
			if !p.Keys[g].Equal(first.Keys[g]) {
				return nil, fmt.Errorf("gibbs: shard group %d key %s differs from %s; plan is not deterministic", g, p.Keys[g], first.Keys[g])
			}
		}
	}
	for g := range first.Keys {
		out.Samples[g] = make([][]float64, len(first.Samples[g]))
		for a := range first.Samples[g] {
			var merged []float64
			for _, p := range parts {
				merged = append(merged, p.Samples[g][a]...)
			}
			out.Samples[g][a] = merged
		}
		if out.Include != nil {
			var merged []bool
			for _, p := range parts {
				merged = append(merged, p.Include[g]...)
			}
			out.Include[g] = merged
		}
	}
	return out, nil
}
