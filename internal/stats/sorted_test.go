package stats

import (
	"math"
	"sort"
	"testing"

	"repro/internal/prng"
)

// TestSortedConstructorsMatch: the sorted-input constructors (the cached
// hot path behind Distribution) produce outputs identical to the sorting
// constructors for every quantile and table row.
func TestSortedConstructorsMatch(t *testing.T) {
	r := prng.NewSub(99)
	sample := make([]float64, 501)
	for i := range sample {
		sample[i] = math.Round(r.Norm()*8) / 4 // coarse grid forces ties
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)

	ref, cached := NewECDF(sample), NewECDFSorted(sorted)
	if ref.N() != cached.N() {
		t.Fatalf("N: %d vs %d", ref.N(), cached.N())
	}
	for q := 0.0; q <= 1.0; q += 0.001 {
		if a, b := ref.Quantile(q), cached.Quantile(q); a != b {
			t.Fatalf("Quantile(%g): %v vs %v", q, a, b)
		}
	}
	for _, x := range []float64{-5, -1, 0, 0.25, 2, 9} {
		if a, b := ref.At(x), cached.At(x); a != b {
			t.Fatalf("At(%g): %v vs %v", x, a, b)
		}
	}
	if ref.Min() != cached.Min() || ref.Max() != cached.Max() {
		t.Fatal("Min/Max differ")
	}

	ftRef, ftCached := NewFrequencyTable(sample), NewFrequencyTableSorted(sorted)
	if ftRef.Len() != ftCached.Len() {
		t.Fatalf("FT len: %d vs %d", ftRef.Len(), ftCached.Len())
	}
	for i := range ftRef.Values {
		if ftRef.Values[i] != ftCached.Values[i] || ftRef.Fracs[i] != ftCached.Fracs[i] {
			t.Fatalf("FT row %d differs", i)
		}
	}
}

// TestSortedConstructorsRejectUnsorted: handing unsorted data to the
// no-copy constructors must fail loudly, not corrupt quantiles silently.
func TestSortedConstructorsRejectUnsorted(t *testing.T) {
	for _, f := range []func(){
		func() { NewECDFSorted([]float64{2, 1}) },
		func() { NewFrequencyTableSorted([]float64{2, 1}) },
		func() { NewECDFSorted(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
