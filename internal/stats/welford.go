package stats

import "math"

// Welford is a streaming mean/variance accumulator (Welford's online
// algorithm): numerically stable single-pass moments without retaining the
// sample. The adaptive Monte Carlo driver keeps one per (group, aggregate)
// pair and feeds it each round's replicates as they arrive, so the
// confidence-interval stopping check is O(1) per round regardless of how
// many replicates have accumulated.
type Welford struct {
	n    int64
	mean float64
	m2   float64 // sum of squared deviations from the running mean
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// AddAll folds a slice of observations.
func (w *Welford) AddAll(xs []float64) {
	for _, x := range xs {
		w.Add(x)
	}
}

// Merge combines another accumulator into this one (Chan et al. parallel
// update), as if every observation of o had been Added here.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (NaN before the first observation).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Var returns the sample variance (n-1 divisor); NaN when n < 2.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation; NaN when n < 2.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// HalfWidth returns the half-width of the normal-approximation confidence
// interval for the mean at the given two-sided confidence level:
// z_{(1+conf)/2} * s / sqrt(n). It returns +Inf when n < 2 (no variance
// estimate yet — an interval of unbounded width is the honest answer, and
// it keeps the stopping rule from firing on a single observation).
func (w *Welford) HalfWidth(conf float64) float64 {
	if w.n < 2 {
		return math.Inf(1)
	}
	v := w.Var()
	if v == 0 {
		return 0
	}
	z := StdNormalQuantile(1 - (1-conf)/2)
	return z * math.Sqrt(v/float64(w.n))
}

// RelHalfWidth returns HalfWidth(conf) / |Mean()| — the relative error the
// UNTIL ERROR < eps stopping rule compares against its target. Degenerate
// cases are pinned so the rule behaves sensibly: a zero half-width (all
// observations identical) is 0 regardless of the mean, and a nonzero
// half-width around a zero mean is +Inf (relative error is undefined, so
// the rule never stops on it; use an absolute target by scaling the query
// if results are centered on zero).
func (w *Welford) RelHalfWidth(conf float64) float64 {
	hw := w.HalfWidth(conf)
	if hw == 0 {
		return 0
	}
	m := math.Abs(w.Mean())
	if m == 0 || math.IsNaN(m) {
		return math.Inf(1)
	}
	return hw / m
}
